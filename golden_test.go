package hpfperf_test

// Golden-file tests pinning the byte-exact output of the user-facing
// artifact generators: hpfexp's Table 2 (-quick) and Figure 3, hpfpc's
// ParaGraph trace and -auto directive search, and hpftrace's Gantt and
// summary renderings. The goldens under testdata/golden/ were captured
// from the seed binaries; any change to them is a behavior change that
// must be deliberate. Regenerate with:
//
//	go test -run TestGolden -update
//
// and review the diff.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpfperf"

	"hpfperf/internal/corpus"
	"hpfperf/internal/experiments"
	"hpfperf/internal/sweep"
	"hpfperf/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (run with -update to create)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (-want +got):\n%s", name, lineDiff(want, got))
	}
}

// lineDiff renders a small first-divergence diff; full outputs can be
// hundreds of lines and byte equality is all we assert.
func lineDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, wl, gl)
		}
	}
	return "(no line-level difference; trailing bytes differ)"
}

func laplaceSource(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "laplace.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGoldenTable2Quick reproduces `hpfexp -table2 -quick -quiet`.
func TestGoldenTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep still runs the full pipeline; skipped in -short")
	}
	cfg := experiments.QuickConfig()
	cfg.Runs = 3 // hpfexp's -runs default overrides QuickConfig
	cfg.Engine = sweep.New(sweep.Options{Workers: 0})
	rows, err := experiments.Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// hpfexp prints the table with Println and then a blank Println.
	out := experiments.RenderTable2(rows) + "\n" + "\n"
	checkGolden(t, "table2_quick.txt", []byte(out))
}

// TestGoldenFigure3 reproduces `hpfexp -fig3 -quiet`.
func TestGoldenFigure3(t *testing.T) {
	out, err := experiments.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3.txt", []byte(out+"\n"))
}

// TestGoldenLaplaceTrace reproduces `hpfpc -trace out testdata/laplace.hpf`
// and the hpftrace renderings of the resulting ParaGraph trace.
func TestGoldenLaplaceTrace(t *testing.T) {
	prog, err := hpfperf.Compile(laplaceSource(t))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{MaskDensity: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var trc bytes.Buffer
	if err := pred.WriteTrace(&trc); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "laplace.trc", trc.Bytes())

	tr, err := trace.Parse(bytes.NewReader(trc.Bytes()))
	if err != nil {
		t.Fatalf("parse own trace: %v", err)
	}
	// hpftrace -width 72 prints the Gantt chart with fmt.Print.
	checkGolden(t, "laplace_gantt.txt", []byte(tr.Gantt(72)))

	// hpftrace -summary.
	st := tr.Summarize()
	var sum bytes.Buffer
	fmt.Fprintf(&sum, "%d processors, %0.1fus total\n", st.Procs, st.TotalUS)
	for p := 0; p < st.Procs; p++ {
		busyPct, commPct := 0.0, 0.0
		if st.TotalUS > 0 {
			busyPct = st.BusyUS[p] / st.TotalUS * 100
			commPct = st.CommUS[p] / st.TotalUS * 100
		}
		fmt.Fprintf(&sum, "  P%-3d busy %6.1fus (%5.1f%%)  comm %6.1fus (%5.1f%%)\n",
			p, st.BusyUS[p], busyPct, st.CommUS[p], commPct)
	}
	checkGolden(t, "laplace_summary.txt", sum.Bytes())
}

// TestGoldenHpfgenLU reproduces `hpfgen -seed 1 -kernel lu -predict`:
// the generated LU program (a CYCLIC(2) block-cyclic mapping) and its
// prediction profile. Pins both the generator's byte-level output and
// the predictor's numbers for a corpus-generated program.
func TestGoldenHpfgenLU(t *testing.T) {
	p := corpus.GenerateFamily(1, corpus.LU, 1)[0]
	checkGolden(t, "hpfgen_lu.hpf", []byte(p.Source))

	prog, err := hpfperf.Compile(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{MaskDensity: p.MaskDensity()})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "hpfgen_lu_profile.txt", []byte(pred.Profile()))
}

// TestGoldenAutotuneLaplace reproduces `hpfpc -auto 4 testdata/laplace.hpf`.
func TestGoldenAutotuneLaplace(t *testing.T) {
	opts := &hpfperf.PredictOptions{MaskDensity: 1.0}
	cands, err := hpfperf.AutoDistribute(laplaceSource(t), 4,
		&hpfperf.AutoDistributeOptions{Predict: opts})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "directive search for %d processors:\n", 4)
	for i, c := range cands {
		if c.Err != nil {
			continue
		}
		marker := "  "
		if i == 0 {
			marker = "=>"
		}
		fmt.Fprintf(&out, "%s %-44s %12.3fms\n", marker, c.Desc, c.EstUS/1e3)
	}
	checkGolden(t, "autotune_laplace.txt", out.Bytes())
}
