package chaos

// Kill-9 crash-recovery harness for the durable jobs subsystem. The
// parent test re-executes this test binary as a helper process
// (TestCrashHelper, gated on HPF_CRASH_HELPER) that opens a jobs
// manager on a shared directory and SIGKILLs itself at one seeded crash
// site — after the running record, mid-checkpoint, or after the work
// but before the done record. A second helper generation then recovers
// from the journal and must finish the job with output byte-identical
// to an uninterrupted baseline run. SIGKILL, not a polite error return:
// no deferred cleanup, no journal close, no flushes beyond what fsync
// already made durable.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hpfperf/internal/jobs"
	"hpfperf/internal/server"
)

// TestCrashHelper is the re-executed child, not a test in its own
// right: it opens (and thereby recovers) the jobs directory, optionally
// submits one deterministic validate job, optionally arms a SIGKILL at
// a crash site, waits for the job to finish, and prints its state and
// result behind greppable markers.
func TestCrashHelper(t *testing.T) {
	if os.Getenv("HPF_CRASH_HELPER") != "1" {
		t.Skip("crash-recovery helper process; driven by TestCrashRecovery*")
	}
	dir := os.Getenv("HPF_CRASH_DIR")
	if site := os.Getenv("HPF_CRASH_SITE"); site != "" {
		after, _ := strconv.Atoi(os.Getenv("HPF_CRASH_AFTER"))
		if after <= 0 {
			after = 1
		}
		var hits atomic.Int64
		jobs.SetCrashHook(func(s string) {
			if s == site && hits.Add(1) == int64(after) {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // SIGKILL delivery is asynchronous; never proceed past the site
			}
		})
		defer jobs.SetCrashHook(nil)
	}

	s := server.New(server.Config{Workers: 2})
	if err := s.OpenJobs(jobs.Config{Dir: dir, Workers: 1}); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	m := s.Jobs()
	met := m.Metrics()
	fmt.Printf("CRASHTRUNC %d\n", met.ReplayTruncations)
	fmt.Printf("CRASHRECOVERY %.6f\n", met.RecoverySeconds)

	if os.Getenv("HPF_CRASH_SUBMIT") == "1" {
		raw, err := json.Marshal(server.JobSubmitRequest{
			Kind:     server.JobKindValidate,
			Options:  &server.JobOptions{FlushEvery: 1},
			Validate: &server.ValidateJobRequest{Seed: 7, Count: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Submit(server.JobKindValidate, raw, jobs.Options{FlushEvery: 1}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}

	start := time.Now()
	deadline := start.Add(90 * time.Second)
	var v jobs.JobView
	for {
		if list := m.List(); len(list) > 0 && list[0].State.Terminal() {
			v = list[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached a terminal state: %+v", m.List())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("CRASHWAIT %.6f\n", time.Since(start).Seconds())
	fmt.Printf("CRASHSTATE %s\n", v.State)
	fmt.Printf("CRASHRESUMES %d\n", v.Resumes)
	fmt.Printf("CRASHCKPTS %d\n", v.Checkpoints)
	fmt.Printf("CRASHRESULT %s\n", v.Result)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = m.Drain(ctx)
}

type crashRun struct {
	out    string
	killed bool // died by SIGKILL (the armed crash site fired)
}

// runCrashHelper re-executes the test binary as one helper generation.
func runCrashHelper(t *testing.T, dir, site string, after int, submit bool) crashRun {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"HPF_CRASH_HELPER=1",
		"HPF_CRASH_DIR="+dir,
		"HPF_CRASH_SITE="+site,
		"HPF_CRASH_AFTER="+strconv.Itoa(after),
	)
	if submit {
		cmd.Env = append(cmd.Env, "HPF_CRASH_SUBMIT=1")
	} else {
		cmd.Env = append(cmd.Env, "HPF_CRASH_SUBMIT=0")
	}
	out, err := cmd.CombinedOutput()
	r := crashRun{out: string(out)}
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			r.killed = true
		}
	}
	if err != nil && !r.killed {
		t.Fatalf("helper (site=%q): %v\n%s", site, err, r.out)
	}
	return r
}

// marker extracts the value of one "NAME value" helper-output line.
func marker(t *testing.T, out, name string) string {
	t.Helper()
	for _, ln := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(ln, name+" "); ok {
			return strings.TrimSpace(v)
		}
	}
	t.Fatalf("helper output lacks %s marker:\n%s", name, out)
	return ""
}

// crashBaseline runs one uninterrupted helper generation and caches its
// result bytes — the reference every recovered run must reproduce.
var (
	crashBaselineOnce   sync.Once
	crashBaselineResult string
)

func crashBaseline(t *testing.T) string {
	crashBaselineOnce.Do(func() {
		r := runCrashHelper(t, t.TempDir(), "", 0, true)
		if st := marker(t, r.out, "CRASHSTATE"); st != "done" {
			t.Fatalf("baseline job state %s:\n%s", st, r.out)
		}
		crashBaselineResult = marker(t, r.out, "CRASHRESULT")
	})
	if crashBaselineResult == "" {
		t.Fatal("baseline generation failed earlier in this run")
	}
	return crashBaselineResult
}

// recordCrashArtifact appends one JSON line per recovered case to the
// HPFPERF_CRASH_ARTIFACT file (CI uploads it as the recovery-latency
// artifact). No-op when the variable is unset.
func recordCrashArtifact(t *testing.T, name string, out string) {
	path := os.Getenv("HPFPERF_CRASH_ARTIFACT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("crash artifact: %v", err)
		return
	}
	defer f.Close()
	json.NewEncoder(f).Encode(map[string]string{
		"case":             name,
		"recovery_seconds": marker(t, out, "CRASHRECOVERY"),
		"wait_seconds":     marker(t, out, "CRASHWAIT"),
		"resumes":          marker(t, out, "CRASHRESUMES"),
		"checkpoints":      marker(t, out, "CRASHCKPTS"),
	})
}

// TestCrashRecoveryKillMatrix kills a helper generation at each seeded
// crash site and asserts the next generation finishes the job with
// byte-identical output.
func TestCrashRecoveryKillMatrix(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL self-delivery harness is unix-only")
	}
	base := crashBaseline(t)
	cases := []struct {
		name  string
		site  string
		after int
		// wantResumes: the crash landed at or after the running record,
		// so recovery must count a resume.
		wantResumes bool
	}{
		{"kill-after-submit", "append:submitted", 1, false},
		{"kill-after-running", "append:running", 1, true},
		{"kill-mid-checkpoint", "append:checkpointed", 2, true},
		{"kill-before-done", "exec:before-done", 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			gen0 := runCrashHelper(t, dir, tc.site, tc.after, true)
			if !gen0.killed {
				t.Fatalf("crash site %s never fired; helper exited cleanly:\n%s", tc.site, gen0.out)
			}
			gen1 := runCrashHelper(t, dir, "", 0, false)
			if st := marker(t, gen1.out, "CRASHSTATE"); st != "done" {
				t.Fatalf("recovered job state %s:\n%s", st, gen1.out)
			}
			if got := marker(t, gen1.out, "CRASHRESULT"); got != base {
				t.Errorf("recovered result differs from uninterrupted baseline\n got: %s\nwant: %s", got, base)
			}
			resumes, _ := strconv.Atoi(marker(t, gen1.out, "CRASHRESUMES"))
			if tc.wantResumes && resumes < 1 {
				t.Errorf("resumes = %d, want >= 1 (job was mid-run when killed)", resumes)
			}
			recordCrashArtifact(t, tc.name, gen1.out)
		})
	}
}

// TestCrashRecoveryTornJournalTail damages the journal the way a crash
// mid-write would — a half-record with a bad checksum and no newline at
// the tail — and asserts the next generation truncates it, boots, and
// still reproduces the baseline output.
func TestCrashRecoveryTornJournalTail(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL self-delivery harness is unix-only")
	}
	base := crashBaseline(t)
	dir := t.TempDir()
	gen0 := runCrashHelper(t, dir, "append:checkpointed", 2, true)
	if !gen0.killed {
		t.Fatalf("crash site never fired:\n%s", gen0.out)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00c0ffee {"job":"torn","state":"running"`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	gen1 := runCrashHelper(t, dir, "", 0, false)
	if n, _ := strconv.Atoi(marker(t, gen1.out, "CRASHTRUNC")); n < 1 {
		t.Errorf("replay truncations = %d, want >= 1 (torn tail must be counted)", n)
	}
	if st := marker(t, gen1.out, "CRASHSTATE"); st != "done" {
		t.Fatalf("recovered job state %s:\n%s", st, gen1.out)
	}
	if got := marker(t, gen1.out, "CRASHRESULT"); got != base {
		t.Errorf("recovered result differs from baseline after torn-tail boot\n got: %s\nwant: %s", got, base)
	}
	recordCrashArtifact(t, "torn-journal-tail", gen1.out)
}
