package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hpfperf/internal/faults"
	"hpfperf/internal/sweep"
)

const tinyProgram = `      PROGRAM TINY
!HPF$ PROCESSORS P(4)
      REAL A(32)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
      A = 1.0
      PRINT *, A(1)
      END PROGRAM TINY
`

func withServerFaults(t *testing.T, spec string, seed int64) {
	t.Helper()
	inj, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(inj)
	t.Cleanup(faults.Deactivate)
}

// TestQueueFullShedsImmediately pins the load-shedding satellite: with
// one worker slot and queue depth 1, a third concurrent request must be
// shed at once with 429 + Retry-After and counted in hpfserve_shed_total
// (not in the drain/abandon counter).
func TestQueueFullShedsImmediately(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueueDepth: 1,
		QueueWait:     5 * time.Second,
	})

	// Fire four concurrent slow requests at a gate with one slot and
	// one queue seat: one runs, one queues, the surplus must be shed
	// immediately (not held for QueueWait — the 5s budget vs. the
	// ~700ms a slow request takes bounds the distinction).
	const concurrent = 4
	slow := map[string]any{"source": bigSource(60), "runs": 2}
	type outcome struct {
		resp *http.Response
		body []byte
	}
	results := make(chan outcome, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/measure", slow)
			results <- outcome{resp, body}
		}()
	}
	wg.Wait()
	close(results)

	shed := 0
	for out := range results {
		if out.resp.StatusCode != http.StatusTooManyRequests {
			continue
		}
		shed++
		if ra := out.resp.Header.Get("Retry-After"); ra == "" {
			t.Error("shed response missing Retry-After")
		}
		var er ErrorResponse
		if err := json.Unmarshal(out.body, &er); err != nil || er.Stage != "overload" {
			t.Errorf("shed body = %s (stage %q), want overload stage", out.body, er.Stage)
		}
	}
	if shed == 0 {
		t.Fatal("gate never shed a request with slot and queue both full")
	}

	metricsBody := string(mustReadAll(t, ts.URL+"/metrics"))
	if !strings.Contains(metricsBody, "hpfserve_shed_total") {
		t.Fatalf("metrics missing shed counter:\n%s", metricsBody)
	}
	for _, line := range strings.Split(metricsBody, "\n") {
		if strings.HasPrefix(line, "hpfserve_shed_total ") {
			if strings.TrimPrefix(line, "hpfserve_shed_total ") == "0" {
				t.Errorf("shed counter is zero after a 429: %s", line)
			}
		}
	}
}

func mustReadAll(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestQueueWaitExpiryShed: a queued request whose wait expires is shed
// with 429 (not left hanging and not 503).
func TestQueueWaitExpiryShed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueueDepth: 4,
		QueueWait:     50 * time.Millisecond,
	})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Hold the only slot long enough for the probe's wait to expire.
		resp, _ := post(t, ts.URL+"/v1/measure", map[string]any{"source": bigSource(80), "runs": 3})
		resp.Body.Close()
		close(release)
	}()
	time.Sleep(30 * time.Millisecond) // let the slow request take the slot
	resp, body := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
	if resp.StatusCode == http.StatusOK {
		t.Skip("slow request finished before the probe queued; nothing to assert")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-expiry shed missing Retry-After")
	}
	<-release
	wg.Wait()
}

// TestBreakerOpensAndRecovers drives a route to threshold consecutive
// 500s via fault injection, asserts the breaker opens (503 overload
// without invoking the pipeline), then waits out the cooldown with
// faults off and asserts a half-open probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	const threshold = 3
	withServerFaults(t, "server.predict:1:error", 1)
	_, ts := newTestServer(t, Config{
		BreakerThreshold: threshold,
		BreakerCooldown:  100 * time.Millisecond,
	})
	body := map[string]any{"source": tinyProgram}

	for i := 0; i < threshold; i++ {
		resp, raw := post(t, ts.URL+"/v1/predict", body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d body %s, want 500", i, resp.StatusCode, raw)
		}
	}
	// The breaker is now open: next request is refused without running
	// the handler (stage "overload", Retry-After set).
	resp, raw := post(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-threshold status = %d body %s, want 503", resp.StatusCode, raw)
	}
	var er ErrorResponse
	if json.Unmarshal(raw, &er) != nil || er.Stage != "overload" || !strings.Contains(er.Error, "circuit breaker") {
		t.Errorf("breaker rejection body = %s", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After")
	}

	// Other routes are unaffected (per-route breakers).
	if resp, raw := post(t, ts.URL+"/v1/analyze", map[string]any{"source": tinyProgram}); resp.StatusCode != http.StatusOK {
		t.Errorf("analyze status = %d body %s while predict breaker open", resp.StatusCode, raw)
	}

	// The open state is visible in /metrics.
	metrics := string(mustReadAll(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, `hpfserve_breaker_state{route="predict"} 2`) {
		t.Errorf("metrics do not show predict breaker open:\n%s", grepLines(metrics, "breaker"))
	}

	// Heal the route and wait out the cooldown: the half-open probe
	// succeeds and the breaker closes.
	faults.Deactivate()
	time.Sleep(150 * time.Millisecond)
	if resp, raw := post(t, ts.URL+"/v1/predict", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status = %d body %s, want 200", resp.StatusCode, raw)
	}
	if resp, raw := post(t, ts.URL+"/v1/predict", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d body %s, want 200", resp.StatusCode, raw)
	}
	metrics = string(mustReadAll(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, `hpfserve_breaker_state{route="predict"} 0`) {
		t.Errorf("breaker did not close after successful probe:\n%s", grepLines(metrics, "breaker"))
	}
	if !strings.Contains(metrics, `hpfserve_breaker_opens_total{route="predict"} 1`) {
		t.Errorf("open transition not counted:\n%s", grepLines(metrics, "breaker"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestBreakerIgnoresClientErrors: 4xx responses must not open the
// breaker — only internal (500) failures count.
func TestBreakerIgnoresClientErrors(t *testing.T) {
	const threshold = 2
	_, ts := newTestServer(t, Config{BreakerThreshold: threshold})
	for i := 0; i < threshold*3; i++ {
		resp, _ := post(t, ts.URL+"/v1/predict", map[string]any{"source": ""})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	}
	resp, raw := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body %s after client errors, want 200 (breaker must stay closed)", resp.StatusCode, raw)
	}
}

// TestTypedPanicClassification is the satellite fix for the brittle
// strings.Contains(err.Error(), "internal panic") match: a wrapped
// *sweep.PanicError classifies as 500 internal, while an ordinary error
// whose text merely contains "internal panic" does not.
func TestTypedPanicClassification(t *testing.T) {
	pe := fmt.Errorf("interpret: %w", &sweep.PanicError{Stage: "interpret tiny", Value: "boom"})
	aerr := ctxErr(pe, http.StatusUnprocessableEntity, "interpret")
	if aerr.status != http.StatusInternalServerError || aerr.stage != "internal" {
		t.Errorf("typed panic → %d %q, want 500 internal", aerr.status, aerr.stage)
	}

	impostor := errors.New(`user program printed "internal panic: oops"`)
	aerr = ctxErr(impostor, http.StatusUnprocessableEntity, "interpret")
	if aerr.status != http.StatusUnprocessableEntity || aerr.stage != "interpret" {
		t.Errorf("impostor text → %d %q, want fallback 422 interpret", aerr.status, aerr.stage)
	}

	tr := fmt.Errorf("point: %w", &faults.InjectedError{Site: "sweep"})
	aerr = ctxErr(tr, http.StatusUnprocessableEntity, "interpret")
	if aerr.status != http.StatusServiceUnavailable || aerr.stage != "transient" {
		t.Errorf("transient → %d %q, want 503 transient", aerr.status, aerr.stage)
	}

	dl := fmt.Errorf("sweep: %w", context.DeadlineExceeded)
	aerr = ctxErr(dl, http.StatusUnprocessableEntity, "interpret")
	if aerr.status != http.StatusGatewayTimeout || aerr.stage != "deadline" {
		t.Errorf("deadline → %d %q, want 504 deadline", aerr.status, aerr.stage)
	}
}

// TestInjectedServerPanicRecovered: the panic fault kind exercises the
// handler's recover path end to end and is counted in /metrics.
func TestInjectedServerPanicRecovered(t *testing.T) {
	withServerFaults(t, "server.analyze:1:panic", 3)
	_, ts := newTestServer(t, Config{BreakerThreshold: -1})
	resp, raw := post(t, ts.URL+"/v1/analyze", map[string]any{"source": tinyProgram})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d body %s, want 500 from injected panic", resp.StatusCode, raw)
	}
	var er ErrorResponse
	if json.Unmarshal(raw, &er) != nil || er.Stage != "internal" {
		t.Errorf("body = %s, want internal stage", raw)
	}
	metrics := string(mustReadAll(t, ts.URL+"/metrics"))
	if strings.Contains(metrics, "hpfserve_panics_total 0\n") {
		t.Error("injected panic not counted in hpfserve_panics_total")
	}
	// The server survives: faults off, the same route works.
	faults.Deactivate()
	if resp, raw := post(t, ts.URL+"/v1/analyze", map[string]any{"source": tinyProgram}); resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d body %s after recovery", resp.StatusCode, raw)
	}
}

// TestDrainRejectionAdvertisesRetryAfter: the drain refusal is an
// overload signal clients may retry against a peer, so it carries
// Retry-After now.
func TestDrainRejectionAdvertisesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, raw := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body %s, want 503 while draining", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain rejection missing Retry-After")
	}
	var er ErrorResponse
	if json.Unmarshal(raw, &er) != nil || er.Stage != "overload" {
		t.Errorf("drain body = %s, want overload stage", raw)
	}
}

// TestRefusalsCarryCorrelationIDs is the regression test for the
// request-ID gap: shed (429), breaker-open (503), and drain (503)
// refusals used to omit request_id/trace_id, leaving refused requests
// uncorrelatable with server logs. Every refusal path must now carry
// both fields in the body and the X-HPF-Request-Id header.
func TestRefusalsCarryCorrelationIDs(t *testing.T) {
	checkIDs := func(t *testing.T, resp *http.Response, raw []byte) {
		t.Helper()
		if resp.Header.Get("X-HPF-Request-Id") == "" {
			t.Error("refusal missing X-HPF-Request-Id header")
		}
		if resp.Header.Get("traceparent") == "" {
			t.Error("refusal missing traceparent header")
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("refusal body not JSON: %v: %s", err, raw)
		}
		if er.RequestID == "" {
			t.Errorf("refusal body missing request_id: %s", raw)
		}
		if er.TraceID == "" {
			t.Errorf("refusal body missing trace_id: %s", raw)
		}
		if got := resp.Header.Get("X-HPF-Request-Id"); got != er.RequestID {
			t.Errorf("header request ID %q != body request_id %q", got, er.RequestID)
		}
	}

	t.Run("shed-429", func(t *testing.T) {
		_, ts := newTestServer(t, Config{
			MaxConcurrent: 1,
			MaxQueueDepth: 1,
			QueueWait:     5 * time.Second,
		})
		slow := map[string]any{"source": bigSource(60), "runs": 2}
		type outcome struct {
			resp *http.Response
			body []byte
		}
		const concurrent = 4
		results := make(chan outcome, concurrent)
		var wg sync.WaitGroup
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := post(t, ts.URL+"/v1/measure", slow)
				results <- outcome{resp, body}
			}()
		}
		wg.Wait()
		close(results)
		shed := 0
		for out := range results {
			if out.resp.StatusCode != http.StatusTooManyRequests {
				continue
			}
			shed++
			checkIDs(t, out.resp, out.body)
		}
		if shed == 0 {
			t.Fatal("gate never shed a request; cannot assert the 429 path")
		}
	})

	t.Run("breaker-open-503", func(t *testing.T) {
		const threshold = 2
		withServerFaults(t, "server.predict:1:error", 7)
		_, ts := newTestServer(t, Config{
			BreakerThreshold: threshold,
			BreakerCooldown:  time.Minute,
		})
		body := map[string]any{"source": tinyProgram}
		for i := 0; i < threshold; i++ {
			resp, raw := post(t, ts.URL+"/v1/predict", body)
			if resp.StatusCode != http.StatusInternalServerError {
				t.Fatalf("request %d: status = %d body %s, want 500", i, resp.StatusCode, raw)
			}
			checkIDs(t, resp, raw) // 500s carry IDs too
		}
		resp, raw := post(t, ts.URL+"/v1/predict", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-threshold status = %d body %s, want 503", resp.StatusCode, raw)
		}
		checkIDs(t, resp, raw)
	})

	t.Run("drain-503", func(t *testing.T) {
		s, ts := newTestServer(t, Config{})
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		resp, raw := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d body %s, want 503 while draining", resp.StatusCode, raw)
		}
		checkIDs(t, resp, raw)
	})

	t.Run("method-not-allowed-405", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		resp, err := http.Get(ts.URL + "/v1/predict")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
		checkIDs(t, resp, raw)
	})
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
