package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer("t1")
	root := tr.Root("server.predict")
	c1 := root.StartChild("compile")
	c1.SetAttr("src_hash", "abc")
	g1 := c1.StartChild("parse")
	g1.End()
	c1.End()
	c2 := root.StartChild("interp")
	c2.SetAttrInt("procs", 8)
	c2.End()
	root.End()

	tree := tr.Tree()
	if tree.TraceID != "t1" {
		t.Errorf("trace ID = %q", tree.TraceID)
	}
	if tree.Spans != 4 {
		t.Errorf("spans = %d, want 4", tree.Spans)
	}
	if tree.Orphans != 0 {
		t.Errorf("orphans = %d, want 0", tree.Orphans)
	}
	if tree.Root == nil || tree.Root.Name != "server.predict" {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Root.Children))
	}
	compile := tree.Root.Children[0]
	if compile.Name != "compile" || compile.Attrs["src_hash"] != "abc" {
		t.Errorf("compile node = %+v", compile)
	}
	if len(compile.Children) != 1 || compile.Children[0].Name != "parse" {
		t.Errorf("compile children = %+v", compile.Children)
	}
	if tree.Root.Children[1].Attrs["procs"] != "8" {
		t.Errorf("interp attrs = %+v", tree.Root.Children[1].Attrs)
	}
	if tree.DurUS != tree.Root.DurUS {
		t.Errorf("tree dur %v != root dur %v", tree.DurUS, tree.Root.DurUS)
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTracer("t")
	root := tr.Root("r")
	c := root.StartChild("c")
	time.Sleep(2 * time.Millisecond)
	c.End()
	root.End()
	tree := tr.Tree()
	if tree.Root.DurUS < 1000 {
		t.Errorf("root dur %v us, want >= 2ms-ish", tree.Root.DurUS)
	}
	child := tree.Root.Children[0]
	if child.DurUS > tree.Root.DurUS {
		t.Errorf("child dur %v > root dur %v", child.DurUS, tree.Root.DurUS)
	}
	// End is idempotent: the first duration sticks.
	d := child.DurUS
	c.End()
	if got := tr.Tree().Root.Children[0].DurUS; got != d {
		t.Errorf("second End changed duration: %v -> %v", d, got)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	if s.Active() {
		t.Error("nil span reports active")
	}
	if c := s.StartChild("x"); c != nil {
		t.Errorf("nil.StartChild = %v, want nil", c)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatalf("background context has span %v", s)
	}
	// Untraced Start is a no-op returning the same context.
	ctx2, s := Start(ctx, "x")
	if s != nil || ctx2 != ctx {
		t.Fatalf("untraced Start = (%v, %v)", ctx2, s)
	}

	tr := NewTracer("t")
	root := tr.Root("root")
	ctx = ContextWithSpan(ctx, root)
	ctx3, child := Start(ctx, "child")
	if child == nil {
		t.Fatal("traced Start returned nil span")
	}
	if got := SpanFromContext(ctx3); got != child {
		t.Errorf("derived context carries %v, want child", got)
	}
	child.End()
	root.End()
	tree := tr.Tree()
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "child" {
		t.Errorf("tree = %+v", tree.Root)
	}
}

func TestOrphanSpans(t *testing.T) {
	tr := NewTracer("t")
	root := tr.Root("root")
	extra := tr.Root("stray-root") // second root: counted as orphan
	extra.End()
	root.End()
	tree := tr.Tree()
	if tree.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", tree.Orphans)
	}
	// Orphans are reattached under the root, not dropped.
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "stray-root" {
		t.Errorf("root children = %+v", tree.Root.Children)
	}
}

func TestEmptyTracerTree(t *testing.T) {
	tree := NewTracer("t").Tree()
	if tree.Spans != 0 || tree.Root != nil {
		t.Errorf("empty tree = %+v", tree)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("t")
	root := tr.Root("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.StartChild("worker")
			s.SetAttrInt("i", i)
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	tree := tr.Tree()
	if tree.Spans != 17 || len(tree.Root.Children) != 16 {
		t.Errorf("spans=%d children=%d", tree.Spans, len(tree.Root.Children))
	}
	if tree.Orphans != 0 {
		t.Errorf("orphans = %d", tree.Orphans)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tr := NewTracer("abc")
	root := tr.Root("server.predict")
	root.StartChild("compile").End()
	root.End()
	data, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != "abc" || back.Root.Name != "server.predict" {
		t.Errorf("round trip = %+v", back)
	}
	if !strings.Contains(string(data), `"start_us"`) {
		t.Errorf("JSON missing snake_case keys: %s", data)
	}
}

func TestWalk(t *testing.T) {
	tr := NewTracer("t")
	root := tr.Root("a")
	b := root.StartChild("b")
	b.StartChild("c").End()
	b.End()
	root.End()
	var names []string
	var depths []int
	tr.Tree().Root.Walk(func(d int, n *Node) {
		names = append(names, n.Name)
		depths = append(depths, d)
	})
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("walk order = %v", names)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 {
		t.Errorf("depths = %v", depths)
	}
}

func TestIDs(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	if len(tid) != 32 {
		t.Errorf("trace ID %q: len %d, want 32", tid, len(tid))
	}
	if len(sid) != 16 {
		t.Errorf("span ID %q: len %d, want 16", sid, len(sid))
	}
	if NewTraceID() == tid {
		t.Error("two trace IDs collided")
	}
}

func TestParseTraceparent(t *testing.T) {
	id := NewTraceID()
	h := FormatTraceparent(id)
	got, err := ParseTraceparent(h)
	if err != nil || got != id {
		t.Errorf("ParseTraceparent(%q) = %q, %v; want %q", h, got, err, id)
	}
	for _, bad := range []string{
		"",
		"00-short",
		"00-0000000000000000000000000000000000-0000000000000000-01", // wrong separators
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero ID
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", bad)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("fresh ring snapshot = %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{TraceID: string(rune('a' + i - 1)), Status: 200})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Newest first: e, d, c survive.
	if snap[0].TraceID != "e" || snap[1].TraceID != "d" || snap[2].TraceID != "c" {
		t.Errorf("snapshot order = %v %v %v", snap[0].TraceID, snap[1].TraceID, snap[2].TraceID)
	}
	// Clamping.
	r0 := NewRing(0)
	r0.Add(TraceRecord{TraceID: "x"})
	r0.Add(TraceRecord{TraceID: "y"})
	if snap := r0.Snapshot(); len(snap) != 1 || snap[0].TraceID != "y" {
		t.Errorf("clamped ring = %v", snap)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(TraceRecord{TraceID: "x"})
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Debug("hidden")
	lg.Info("visible", "request_id", "r1")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("debug line emitted at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "visible" || rec["request_id"] != "r1" {
		t.Errorf("log record = %v", rec)
	}
}
