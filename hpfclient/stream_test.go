package hpfclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hpfperf/internal/jobs"
)

// TestFirstWaitJitter pins the herd-desync fix: the first poll of a
// fresh wait loop must not fire at a fixed offset. Regression for the
// jitterless first poll — every waiter used to hit the server at t=0.
func TestFirstWaitJitter(t *testing.T) {
	p := PollPolicy{Interval: 100 * time.Millisecond}.normalized()
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		w := p.firstWait()
		if w < 0 || w > 50*time.Millisecond {
			t.Fatalf("firstWait %v outside [0, interval/2]", w)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatal("firstWait shows no jitter")
	}
}

// TestWatchJobStreams runs WatchJob against a real server: the events
// must arrive in journal order, end terminal, and match the server's
// retained history — and the returned view must carry the result
// payload (events do not).
func TestWatchJobStreams(t *testing.T) {
	s, c := newJobServer(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, &JobSubmitRequest{
		Kind:    JobKindPredict,
		Predict: &PredictRequest{Source: jobSrc},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	var got []JobEvent
	v, err := c.WatchJob(ctx, sub.Job.ID, PollPolicy{Interval: 10 * time.Millisecond}, func(ev JobEvent) {
		got = append(got, ev)
	})
	if err != nil {
		t.Fatalf("WatchJob: %v", err)
	}
	if v.State != jobs.StateDone || len(v.Result) == 0 {
		t.Fatalf("view: %+v", v)
	}
	want, err := s.Jobs().Events(sub.Job.ID)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, server history has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].State != want[i].State || got[i].Done != want[i].Done {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if !got[len(got)-1].Terminal {
		t.Fatalf("last event not terminal: %+v", got[len(got)-1])
	}
}

// TestWaitJobFallsBackToPolling: a server without the events endpoint
// (any non-SSE answer) must degrade to the poll path — exactly one
// stream attempt, then status polls.
func TestWaitJobFallsBackToPolling(t *testing.T) {
	var streamCalls, pollCalls atomic.Int64
	view := jobs.JobView{ID: "x", Kind: "predict", State: jobs.StateDone}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs/x/events" {
			streamCalls.Add(1)
			http.NotFound(w, r)
			return
		}
		pollCalls.Add(1)
		json.NewEncoder(w).Encode(view)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	v, err := c.WaitJob(context.Background(), "x", PollPolicy{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("state = %s", v.State)
	}
	if streamCalls.Load() != 1 || pollCalls.Load() != 1 {
		t.Fatalf("stream/poll calls = %d/%d, want 1/1", streamCalls.Load(), pollCalls.Load())
	}
}

// sseEvent writes one SSE frame.
func sseEvent(w http.ResponseWriter, ev jobs.Event) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.State, data)
	w.(http.Flusher).Flush()
}

// TestWatchJobResumesAfterDrop: a stream cut mid-way reconnects with
// Last-Event-ID and receives only the missed tail — no duplicates, no
// gaps — then fetches the terminal snapshot over the status endpoint.
func TestWatchJobResumesAfterDrop(t *testing.T) {
	events := []jobs.Event{
		{Seq: 1, Job: "x", State: jobs.StateSubmitted},
		{Seq: 2, Job: "x", State: jobs.StateRunning},
		{Seq: 3, Job: "x", State: jobs.StateCheckpointed, Done: 4},
		{Seq: 4, Job: "x", State: jobs.StateDone, Terminal: true},
	}
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/x/events" {
			json.NewEncoder(w).Encode(jobs.JobView{ID: "x", State: jobs.StateDone})
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		switch attempts.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Errorf("first attempt sent Last-Event-ID %q", r.Header.Get("Last-Event-ID"))
			}
			// Two events, then the connection dies without a terminal.
			sseEvent(w, events[0])
			sseEvent(w, events[1])
		default:
			if got := r.Header.Get("Last-Event-ID"); got != "2" {
				t.Errorf("resume cursor = %q, want \"2\"", got)
			}
			sseEvent(w, events[2])
			sseEvent(w, events[3])
		}
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	var got []JobEvent
	v, err := c.WatchJob(context.Background(), "x", PollPolicy{Interval: 5 * time.Millisecond}, func(ev JobEvent) {
		got = append(got, ev)
	})
	if err != nil {
		t.Fatalf("WatchJob: %v", err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("state = %s", v.State)
	}
	if len(got) != len(events) {
		t.Fatalf("delivered %d events, want %d (no gaps, no duplicates)", len(got), len(events))
	}
	for i, ev := range got {
		if ev.Seq != events[i].Seq || ev.State != events[i].State {
			t.Fatalf("event %d: %+v, want %+v", i, ev, events[i])
		}
	}
	if attempts.Load() != 2 {
		t.Fatalf("stream attempts = %d, want 2", attempts.Load())
	}
}

// TestWatchJobDegradesAfterRepeatedDrops: a stream that keeps dying
// without delivering anything falls back to polling after MaxTransient
// reconnects instead of spinning forever.
func TestWatchJobDegradesAfterRepeatedDrops(t *testing.T) {
	var streamAttempts, polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs/x/events" {
			streamAttempts.Add(1)
			w.Header().Set("Content-Type", "text/event-stream")
			// Headers only; the body ends immediately — a dead stream.
			return
		}
		polls.Add(1)
		json.NewEncoder(w).Encode(jobs.JobView{ID: "x", State: jobs.StateDone})
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	v, err := c.WaitJob(context.Background(), "x", PollPolicy{Interval: time.Millisecond, MaxTransient: 3})
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("state = %s", v.State)
	}
	if n := streamAttempts.Load(); n != 3 {
		t.Fatalf("stream attempts = %d, want MaxTransient (3)", n)
	}
	if polls.Load() == 0 {
		t.Fatal("never degraded to polling")
	}
}

// TestClientBatch round-trips POST /v1/batch through the typed client.
func TestClientBatch(t *testing.T) {
	_, c := newJobServer(t)
	br, err := c.Batch(context.Background(), &BatchRequest{Points: []BatchPoint{
		{Predict: &PredictRequest{Source: jobSrc}},
		{Measure: &MeasureRequest{Source: jobSrc, Runs: 1}},
		{Predict: &PredictRequest{Source: "not fortran"}},
	}})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if br.OK != 2 || br.Failed != 1 {
		t.Fatalf("ok/failed = %d/%d", br.OK, br.Failed)
	}
	if br.Results[0].Predict == nil || br.Results[0].Predict.EstUS <= 0 {
		t.Fatalf("predict point: %+v", br.Results[0])
	}
	if br.Results[1].Measure == nil || br.Results[1].Measure.MeasuredUS <= 0 {
		t.Fatalf("measure point: %+v", br.Results[1])
	}
	if br.Results[2].Error == nil || br.Results[2].Error.Stage != "compile" {
		t.Fatalf("invalid point: %+v", br.Results[2])
	}
}
