package sem

import (
	"context"
	"fmt"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/obs"
	"hpfperf/internal/token"
)

// Analyze runs semantic analysis over a parsed program: declarations,
// implicit typing, directive resolution (into dist descriptors), and a
// full typing/shape pass over all statements.
func Analyze(prog *ast.Program) (*Info, error) {
	return AnalyzeContext(context.Background(), prog)
}

// AnalyzeContext is Analyze under a context. With an active obs span it
// records directive resolution — the data-partitioning step of the
// compilation model — as a child "partition" span.
func AnalyzeContext(ctx context.Context, prog *ast.Program) (*Info, error) {
	a := &analyzer{
		info: &Info{
			Prog:      prog,
			Symbols:   make(map[string]*Symbol),
			Templates: make(map[string][]dist.DimDist),
			Types:     make(map[ast.Expr]ast.BaseType),
			Shapes:    make(map[ast.Expr]*Shape),
			Consts:    make(map[string]Value),
		},
	}
	a.collectDecls()
	_, ps := obs.Start(ctx, "partition")
	a.resolveDirectives()
	ps.End()
	a.checkStmts(prog.Body, nil)
	if len(a.errs) > 0 {
		return a.info, a.errs[0]
	}
	return a.info, nil
}

type analyzer struct {
	info         *Info
	errs         []*Error
	implicitNone bool
}

func (a *analyzer) errorf(pos token.Pos, format string, args ...any) {
	a.errs = append(a.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Declarations

func (a *analyzer) collectDecls() {
	prog := a.info.Prog
	// First pass: named constants, in order (later params may reference
	// earlier ones).
	for _, d := range prog.Decls {
		switch x := d.(type) {
		case *ast.ImplicitNoneDecl:
			a.implicitNone = true
		case *ast.ParameterDecl:
			for i, name := range x.Names {
				v, err := EvalConst(x.Values[i], a.info.Consts)
				if err != nil {
					a.errorf(x.Pos(), "PARAMETER %s: %v", name, err)
					continue
				}
				a.info.Consts[name] = v
				a.info.Symbols[name] = &Symbol{Name: name, Kind: SymConst, Type: v.Type, Const: v}
			}
		}
	}
	// Second pass: typed entities.
	for _, d := range prog.Decls {
		td, ok := d.(*ast.TypeDecl)
		if !ok {
			continue
		}
		for _, e := range td.Entities {
			a.declareEntity(e, td.Type)
		}
	}
	// DIMENSION declarations (type comes from earlier decl or implicit).
	for _, d := range prog.Decls {
		dd, ok := d.(*ast.DimensionDecl)
		if !ok {
			continue
		}
		for _, e := range dd.Entities {
			typ := a.implicitType(e.Name, e.Pos)
			if s := a.info.Symbols[e.Name]; s != nil {
				typ = s.Type
			}
			a.declareEntity(e, typ)
		}
	}
}

func (a *analyzer) declareEntity(e ast.Entity, typ ast.BaseType) {
	if s, exists := a.info.Symbols[e.Name]; exists {
		if s.Kind == SymConst {
			a.errorf(e.Pos, "%s already declared as a constant", e.Name)
			return
		}
		if s.Kind == SymScalar && len(e.Dims) > 0 {
			// DIMENSION after type decl upgrades scalar to array.
		} else if len(e.Dims) == 0 {
			s.Type = typ
			return
		}
	}
	sym := &Symbol{Name: e.Name, Type: typ}
	if len(e.Dims) == 0 {
		sym.Kind = SymScalar
	} else {
		sym.Kind = SymArray
		for _, b := range e.Dims {
			lo := 1
			if b.Lo != nil {
				v, err := EvalConstInt(b.Lo, a.info.Consts)
				if err != nil {
					a.errorf(e.Pos, "array %s: non-constant lower bound: %v", e.Name, err)
					return
				}
				lo = v
			}
			hi, err := EvalConstInt(b.Hi, a.info.Consts)
			if err != nil {
				a.errorf(e.Pos, "array %s: non-constant upper bound: %v", e.Name, err)
				return
			}
			if hi < lo {
				a.errorf(e.Pos, "array %s: empty dimension %d:%d", e.Name, lo, hi)
				return
			}
			sym.Bounds = append(sym.Bounds, [2]int{lo, hi})
		}
	}
	a.info.Symbols[e.Name] = sym
}

// implicitType applies Fortran implicit typing (I-N integer, else real).
func (a *analyzer) implicitType(name string, pos token.Pos) ast.BaseType {
	if a.implicitNone {
		a.errorf(pos, "%s is not declared (IMPLICIT NONE in effect)", name)
	}
	c := name[0]
	if c >= 'I' && c <= 'N' {
		return ast.TInteger
	}
	return ast.TReal
}

// lookupOrImplicit returns the symbol for a name, creating an implicitly
// typed scalar when permitted.
func (a *analyzer) lookupOrImplicit(name string, pos token.Pos) *Symbol {
	if s, ok := a.info.Symbols[name]; ok {
		return s
	}
	s := &Symbol{Name: name, Kind: SymScalar, Type: a.implicitType(name, pos)}
	a.info.Symbols[name] = s
	return s
}

// ---------------------------------------------------------------------------
// Statement checking

// loopScope tracks names bound by enclosing DO/FORALL indices.
type loopScope struct {
	parent *loopScope
	name   string
}

func (l *loopScope) bound(name string) bool {
	for s := l; s != nil; s = s.parent {
		if s.name == name {
			return true
		}
	}
	return false
}

func (a *analyzer) checkStmts(stmts []ast.Stmt, scope *loopScope) {
	for _, s := range stmts {
		a.checkStmt(s, scope)
	}
}

func (a *analyzer) checkStmt(s ast.Stmt, scope *loopScope) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		a.checkAssign(x, scope)
	case *ast.IfStmt:
		ct := a.checkExpr(x.Cond, scope)
		if ct != ast.TLogical && ct != ast.TUnknown {
			a.errorf(x.Pos(), "IF condition must be LOGICAL, got %s", ct)
		}
		if sh := a.info.ShapeOf(x.Cond); sh != nil {
			a.errorf(x.Pos(), "IF condition must be scalar")
		}
		a.checkStmts(x.Then, scope)
		a.checkStmts(x.Else, scope)
	case *ast.DoStmt:
		sym := a.lookupOrImplicit(x.Var, x.Pos())
		if sym.Kind != SymScalar || sym.Type != ast.TInteger {
			a.errorf(x.Pos(), "DO variable %s must be an INTEGER scalar", x.Var)
		}
		a.checkExpr(x.From, scope)
		a.checkExpr(x.To, scope)
		if x.Step != nil {
			a.checkExpr(x.Step, scope)
		}
		a.checkStmts(x.Body, &loopScope{parent: scope, name: x.Var})
	case *ast.DoWhileStmt:
		a.checkExpr(x.Cond, scope)
		a.checkStmts(x.Body, scope)
	case *ast.ForallStmt:
		inner := scope
		for _, ix := range x.Indices {
			a.checkExpr(ix.Lo, scope)
			a.checkExpr(ix.Hi, scope)
			if ix.Stride != nil {
				a.checkExpr(ix.Stride, scope)
			}
			// Forall indices are statement-scoped integer names.
			if sym, ok := a.info.Symbols[ix.Name]; ok && sym.Kind == SymArray {
				a.errorf(x.Pos(), "FORALL index %s conflicts with array", ix.Name)
			}
			inner = &loopScope{parent: inner, name: ix.Name}
		}
		if x.Mask != nil {
			mt := a.checkExpr(x.Mask, inner)
			if mt != ast.TLogical && mt != ast.TUnknown {
				a.errorf(x.Mask.Pos(), "FORALL mask must be LOGICAL, got %s", mt)
			}
		}
		for _, body := range x.Body {
			as, ok := body.(*ast.AssignStmt)
			if !ok {
				a.errorf(body.Pos(), "FORALL body must contain only assignments")
				continue
			}
			a.checkAssign(as, inner)
		}
	case *ast.WhereStmt:
		mt := a.checkExpr(x.Mask, scope)
		if mt != ast.TLogical && mt != ast.TUnknown {
			a.errorf(x.Mask.Pos(), "WHERE mask must be LOGICAL, got %s", mt)
		}
		if a.info.ShapeOf(x.Mask) == nil {
			a.errorf(x.Mask.Pos(), "WHERE mask must be an array expression")
		}
		for _, body := range append(append([]ast.Stmt{}, x.Body...), x.ElseBody...) {
			as, ok := body.(*ast.AssignStmt)
			if !ok {
				a.errorf(body.Pos(), "WHERE body must contain only array assignments")
				continue
			}
			a.checkAssign(as, scope)
		}
	case *ast.CallStmt:
		for _, arg := range x.Args {
			a.checkExpr(arg, scope)
		}
	case *ast.PrintStmt:
		for _, arg := range x.Args {
			a.checkExpr(arg, scope)
		}
	case *ast.StopStmt, *ast.ContinueStmt:
	}
}

func (a *analyzer) checkAssign(x *ast.AssignStmt, scope *loopScope) {
	lt := a.checkExpr(x.Lhs, scope)
	rt := a.checkExpr(x.Rhs, scope)
	switch lhs := x.Lhs.(type) {
	case *ast.Ident:
		if s, ok := a.info.Symbols[lhs.Name]; ok && s.Kind == SymConst {
			a.errorf(x.Pos(), "cannot assign to constant %s", lhs.Name)
		}
		if scope.bound(lhs.Name) {
			// assigning to a loop index is legal Fortran only outside the
			// loop; flag it as an error to keep the subset strict.
			a.errorf(x.Pos(), "assignment to active loop index %s", lhs.Name)
		}
	case *ast.CallOrIndex:
		if lhs.Resolved != ast.RefArray {
			a.errorf(x.Pos(), "left side %s is not an array reference", lhs.Name)
		}
	}
	// Numeric assignments convert freely; logical must match.
	if lt == ast.TLogical && rt != ast.TLogical && rt != ast.TUnknown {
		a.errorf(x.Pos(), "cannot assign %s to LOGICAL", rt)
	}
	if rt == ast.TLogical && lt != ast.TLogical && lt != ast.TUnknown {
		a.errorf(x.Pos(), "cannot assign LOGICAL to %s", lt)
	}
	// Shape conformance: scalar RHS broadcasts; array RHS must conform.
	ls, rs := a.info.ShapeOf(x.Lhs), a.info.ShapeOf(x.Rhs)
	if rs != nil {
		if ls == nil {
			a.errorf(x.Pos(), "cannot assign array value to scalar %s", ast.ExprString(x.Lhs))
		} else if !ls.Conforms(rs) {
			a.errorf(x.Pos(), "non-conforming array assignment: %v vs %v", ls.Dims, rs.Dims)
		}
	}
}

// ---------------------------------------------------------------------------
// Expression checking: returns the type, records type and shape.

func (a *analyzer) checkExpr(e ast.Expr, scope *loopScope) ast.BaseType {
	t, sh := a.typeAndShape(e, scope)
	a.info.Types[e] = t
	if sh != nil {
		a.info.Shapes[e] = sh
	}
	return t
}

func (a *analyzer) typeAndShape(e ast.Expr, scope *loopScope) (ast.BaseType, *Shape) {
	switch x := e.(type) {
	case *ast.IntLit:
		return ast.TInteger, nil
	case *ast.RealLit:
		if x.Double {
			return ast.TDouble, nil
		}
		return ast.TReal, nil
	case *ast.LogicalLit:
		return ast.TLogical, nil
	case *ast.StringLit:
		return ast.TCharacter, nil
	case *ast.Ident:
		if scope.bound(x.Name) {
			return ast.TInteger, nil
		}
		sym := a.lookupOrImplicit(x.Name, x.Pos())
		if sym.Kind == SymArray {
			return sym.Type, &Shape{Dims: sym.Bounds}
		}
		return sym.Type, nil
	case *ast.UnaryExpr:
		t := a.checkExpr(x.X, scope)
		sh := a.info.ShapeOf(x.X)
		if x.Op == token.NOT && t != ast.TLogical && t != ast.TUnknown {
			a.errorf(x.Pos(), ".NOT. requires LOGICAL operand, got %s", t)
		}
		if x.Op == token.MINUS && t == ast.TLogical {
			a.errorf(x.Pos(), "unary minus on LOGICAL operand")
		}
		return t, sh
	case *ast.BinaryExpr:
		return a.binaryTypeAndShape(x, scope)
	case *ast.Section:
		// Bare sections are handled inside CallOrIndex; seeing one here is
		// a parser artifact.
		a.errorf(x.Pos(), "unexpected section outside array reference")
		return ast.TUnknown, nil
	case *ast.CallOrIndex:
		return a.callTypeAndShape(x, scope)
	}
	return ast.TUnknown, nil
}

func (a *analyzer) binaryTypeAndShape(x *ast.BinaryExpr, scope *loopScope) (ast.BaseType, *Shape) {
	lt := a.checkExpr(x.X, scope)
	rt := a.checkExpr(x.Y, scope)
	ls, rs := a.info.ShapeOf(x.X), a.info.ShapeOf(x.Y)
	// Result shape: elementwise ops broadcast scalars.
	var sh *Shape
	switch {
	case ls != nil && rs != nil:
		if !ls.Conforms(rs) {
			a.errorf(x.Pos(), "non-conforming operands: %v vs %v", ls.Dims, rs.Dims)
		}
		sh = ls
	case ls != nil:
		sh = ls
	case rs != nil:
		sh = rs
	}
	if x.Op.IsRelational() {
		a.requireNumeric(lt, x.X.Pos())
		a.requireNumeric(rt, x.Y.Pos())
		return ast.TLogical, sh
	}
	switch x.Op {
	case token.AND, token.OR, token.EQV, token.NEQV:
		if lt != ast.TLogical && lt != ast.TUnknown {
			a.errorf(x.X.Pos(), "%s requires LOGICAL operands, got %s", x.Op, lt)
		}
		if rt != ast.TLogical && rt != ast.TUnknown {
			a.errorf(x.Y.Pos(), "%s requires LOGICAL operands, got %s", x.Op, rt)
		}
		return ast.TLogical, sh
	}
	a.requireNumeric(lt, x.X.Pos())
	a.requireNumeric(rt, x.Y.Pos())
	return promote(lt, rt), sh
}

func (a *analyzer) requireNumeric(t ast.BaseType, pos token.Pos) {
	switch t {
	case ast.TInteger, ast.TReal, ast.TDouble, ast.TUnknown:
	default:
		a.errorf(pos, "numeric operand required, got %s", t)
	}
}

// promote implements Fortran numeric type promotion.
func promote(aT, bT ast.BaseType) ast.BaseType {
	if aT == ast.TDouble || bT == ast.TDouble {
		return ast.TDouble
	}
	if aT == ast.TReal || bT == ast.TReal {
		return ast.TReal
	}
	return ast.TInteger
}

func (a *analyzer) callTypeAndShape(x *ast.CallOrIndex, scope *loopScope) (ast.BaseType, *Shape) {
	sym, declared := a.info.Symbols[x.Name]
	if declared && sym.Kind == SymArray {
		x.Resolved = ast.RefArray
		return a.arrayRefTypeAndShape(x, sym, scope)
	}
	if info, ok := Intrinsics[x.Name]; ok {
		x.Resolved = ast.RefIntrinsic
		return a.intrinsicTypeAndShape(x, info, scope)
	}
	a.errorf(x.Pos(), "%s is neither a declared array nor a supported intrinsic", x.Name)
	return ast.TUnknown, nil
}

func (a *analyzer) arrayRefTypeAndShape(x *ast.CallOrIndex, sym *Symbol, scope *loopScope) (ast.BaseType, *Shape) {
	if len(x.Args) != sym.Rank() {
		a.errorf(x.Pos(), "array %s has rank %d, referenced with %d subscripts", x.Name, sym.Rank(), len(x.Args))
		return sym.Type, nil
	}
	var dims [][2]int
	for i, arg := range x.Args {
		if sec, ok := arg.(*ast.Section); ok {
			lo, hi := sym.Bounds[i][0], sym.Bounds[i][1]
			stride := 1
			if sec.Lo != nil {
				a.checkExpr(sec.Lo, scope)
				if v, err := EvalConstInt(sec.Lo, a.info.Consts); err == nil {
					lo = v
				}
			}
			if sec.Hi != nil {
				a.checkExpr(sec.Hi, scope)
				if v, err := EvalConstInt(sec.Hi, a.info.Consts); err == nil {
					hi = v
				}
			}
			if sec.Stride != nil {
				a.checkExpr(sec.Stride, scope)
				if v, err := EvalConstInt(sec.Stride, a.info.Consts); err == nil && v != 0 {
					stride = v
				}
			}
			// Extent of the section; for non-constant bounds this is a
			// conservative estimate using declared bounds.
			n := (hi - lo) / stride
			if n < 0 {
				n = 0
			}
			dims = append(dims, [2]int{1, n + 1})
			continue
		}
		t := a.checkExpr(arg, scope)
		if t != ast.TInteger && t != ast.TUnknown {
			a.errorf(arg.Pos(), "subscript %d of %s must be INTEGER, got %s", i+1, x.Name, t)
		}
	}
	if dims != nil {
		return sym.Type, &Shape{Dims: dims}
	}
	return sym.Type, nil
}

func (a *analyzer) intrinsicTypeAndShape(x *ast.CallOrIndex, info IntrinsicInfo, scope *loopScope) (ast.BaseType, *Shape) {
	if len(x.Args) < info.MinArgs || len(x.Args) > info.MaxArgs {
		a.errorf(x.Pos(), "%s expects %d..%d arguments, got %d", info.Name, info.MinArgs, info.MaxArgs, len(x.Args))
	}
	var argTypes []ast.BaseType
	var argShapes []*Shape
	for _, arg := range x.Args {
		argTypes = append(argTypes, a.checkExpr(arg, scope))
		argShapes = append(argShapes, a.info.ShapeOf(arg))
	}
	firstShape := func() *Shape {
		if len(argShapes) > 0 {
			return argShapes[0]
		}
		return nil
	}
	resultType := ast.TReal
	if len(argTypes) > 0 {
		resultType = argTypes[0]
		for _, t := range argTypes[1:] {
			if t == ast.TInteger || t == ast.TReal || t == ast.TDouble {
				resultType = promote(resultType, t)
			}
		}
	}
	if info.ReturnsInt {
		resultType = ast.TInteger
	}
	if info.ReturnsLogical {
		resultType = ast.TLogical
	}
	switch info.Class {
	case Elemental:
		return resultType, firstShape()
	case Reduction, Location, Transformational, Inquiry:
		if info.Class != Inquiry && firstShape() == nil {
			a.errorf(x.Pos(), "%s requires an array argument", info.Name)
		}
		return resultType, nil
	case Shift:
		if firstShape() == nil {
			a.errorf(x.Pos(), "%s requires an array argument", info.Name)
		}
		return resultType, firstShape()
	}
	return resultType, nil
}
