package hpfperf_test

// Tests of the static-analysis layer's user-facing surfaces: the golden
// files pin hpflint's text and JSON renderings (the -json schema is a
// compatibility contract for CI consumers), the corpus sweep keeps every
// checked-in program free of error-severity findings, and the
// traced-bounds test demonstrates the acceptance criterion that a
// program whose loop bound previously demanded PredictOptions.IntValues
// now predicts with no user-supplied values.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hpfperf"

	"hpfperf/internal/analysis"
	"hpfperf/internal/compiler"
)

func lintReport(t *testing.T, file string) *analysis.Report {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(string(src))
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return analysis.NewReport(file, prog)
}

// TestGoldenLintLaplace pins hpflint's text output on the laplace
// program — a clean program, so this is the shape of an all-clear run.
func TestGoldenLintLaplace(t *testing.T) {
	rep := lintReport(t, filepath.Join("testdata", "laplace.hpf"))
	checkGolden(t, "lint_laplace.txt", []byte(rep.Text()))
}

// TestGoldenLintShowcase pins hpflint's text and JSON output on the
// showcase program that fires most diagnostic codes. The JSON golden is
// the schema-stability contract for `hpflint -json`.
func TestGoldenLintShowcase(t *testing.T) {
	rep := lintReport(t, filepath.Join("testdata", "lint.hpf"))
	checkGolden(t, "lint_showcase.txt", []byte(rep.Text()))
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "lint_showcase.json", append(b, '\n'))
}

// TestLintCorpusClean mirrors the CI step `hpflint -severity error` over
// every checked-in program: the corpus must stay free of error-severity
// findings (and must all compile).
func TestLintCorpusClean(t *testing.T) {
	var files []string
	for _, pattern := range []string{
		filepath.Join("testdata", "*.hpf"),
		filepath.Join("examples", "*", "*.hpf"),
	} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) < 5 {
		t.Fatalf("corpus glob found only %d files: %v", len(files), files)
	}
	for _, f := range files {
		rep := lintReport(t, f)
		for _, d := range rep.Diagnostics {
			if d.Severity >= analysis.SevError {
				t.Errorf("%s: error-severity finding: %s", f, d)
			}
		}
	}
}

// TestTracedBoundsPredictsWithoutValues proves the acceptance criterion:
// examples/traced-bounds/bounds.hpf has its main loop bound (NITER)
// assigned inside an earlier loop, which the interpretation engine's
// inline propagation loses — definition tracing resolves it, so Predict
// succeeds with no IntValues and no TripCounts.
func TestTracedBoundsPredictsWithoutValues(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "traced-bounds", "bounds.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := hpfperf.Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}

	// The analyzer reports the resolution (HPF0003) so users can see
	// tracing did the work.
	var traced *hpfperf.Diagnostic
	for _, d := range hpfperf.AnalyzeProgram(prog) {
		if d.Code == "HPF0003" {
			dd := d
			traced = &dd
		}
	}
	if traced == nil {
		t.Fatal("want an HPF0003 resolved-by-tracing diagnostic")
	}

	pred, err := hpfperf.Predict(prog, nil)
	if err != nil {
		t.Fatalf("Predict with no user-supplied values: %v", err)
	}
	if pred.Microseconds() <= 0 {
		t.Fatalf("want positive predicted time, got %v", pred.Microseconds())
	}
}
