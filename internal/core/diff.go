package core

import "fmt"

// DiffReports compares two interpretation reports for exact — bit for
// bit — equality and returns a description of the first divergence, or
// "" when the reports are identical. The compiled prediction core
// replays the tree-walker's accumulation sequence exactly, so float
// comparisons here are strict equality with no tolerance; this is the
// contract the differential equivalence suite and the corpus validation
// harness both enforce.
func DiffReports(tree, comp *Report) string {
	if tree.Program != comp.Program {
		return fmt.Sprintf("Program %q != %q", tree.Program, comp.Program)
	}
	if tree.Procs != comp.Procs {
		return fmt.Sprintf("Procs %d != %d", tree.Procs, comp.Procs)
	}
	if tree.Total != comp.Total {
		return fmt.Sprintf("Total %+v != %+v", tree.Total, comp.Total)
	}
	if len(tree.ByLine) != len(comp.ByLine) {
		return fmt.Sprintf("ByLine sizes %d != %d", len(tree.ByLine), len(comp.ByLine))
	}
	for l, tm := range tree.ByLine {
		cm, ok := comp.ByLine[l]
		if !ok {
			return fmt.Sprintf("ByLine[%d] missing from compiled", l)
		}
		if *tm != *cm {
			return fmt.Sprintf("ByLine[%d] %+v != %+v", l, *tm, *cm)
		}
	}
	if len(tree.Warnings) != len(comp.Warnings) {
		return fmt.Sprintf("Warnings %q != %q", tree.Warnings, comp.Warnings)
	}
	for i := range tree.Warnings {
		if tree.Warnings[i] != comp.Warnings[i] {
			return fmt.Sprintf("Warnings[%d] %q != %q", i, tree.Warnings[i], comp.Warnings[i])
		}
	}
	return diffSAAG(tree.SAAG, comp.SAAG)
}

// diffSAAG compares two interpreted abstraction graphs node by node and
// communication record by communication record.
func diffSAAG(tree, comp *SAAG) string {
	var treeNodes, compNodes []*AAU
	tree.Walk(func(a *AAU) { treeNodes = append(treeNodes, a) })
	comp.Walk(func(a *AAU) { compNodes = append(compNodes, a) })
	if len(treeNodes) != len(compNodes) {
		return fmt.Sprintf("AAU count %d != %d", len(treeNodes), len(compNodes))
	}
	for i := range treeNodes {
		tn, cn := treeNodes[i], compNodes[i]
		if tn.ID != cn.ID || tn.Kind != cn.Kind || tn.Label != cn.Label ||
			tn.Line != cn.Line || tn.ElseStart != cn.ElseStart || len(tn.Children) != len(cn.Children) {
			return fmt.Sprintf("AAU %d structure: tree {id %d %s %q line %d} != compiled {id %d %s %q line %d}",
				i, tn.ID, tn.Kind, tn.Label, tn.Line, cn.ID, cn.Kind, cn.Label, cn.Line)
		}
		if tn.Metrics != cn.Metrics {
			return fmt.Sprintf("AAU %d (%s line %d) metrics %+v != %+v", tn.ID, tn.Kind, tn.Line, tn.Metrics, cn.Metrics)
		}
		if tn.ClockUS != cn.ClockUS {
			return fmt.Sprintf("AAU %d (%s line %d) clock %v != %v", tn.ID, tn.Kind, tn.Line, tn.ClockUS, cn.ClockUS)
		}
	}
	if len(tree.Table) != len(comp.Table) {
		return fmt.Sprintf("comm table length %d != %d", len(tree.Table), len(comp.Table))
	}
	for i := range tree.Table {
		tr, cr := tree.Table[i], comp.Table[i]
		if tr.ID != cr.ID || tr.Kind != cr.Kind || tr.Array != cr.Array || tr.Dim != cr.Dim ||
			tr.Line != cr.Line || tr.Consumer != cr.Consumer ||
			tr.Bytes != cr.Bytes || tr.CostUS != cr.CostUS || tr.Count != cr.Count {
			return fmt.Sprintf("comm rec %d: tree %+v != compiled %+v", i, *tr, *cr)
		}
	}
	return ""
}
