// Package ipsc simulates the timing behaviour of an iPSC/860 hypercube
// multicomputer: per-node clocks, an e-cube routed hypercube network with
// the NX short/long message protocol, the collective communication library
// (shift exchange, global reduction, broadcast, concatenation), a data
// cache model, and seeded per-run load fluctuation.
//
// The simulator deliberately layers second-order effects (cache misses,
// protocol switching, per-hop latency, synchronization skew, load noise)
// on top of the same base parameters that the interpretation engine sees
// through the SAU abstraction, so that the gap between "estimated" and
// "measured" times reproduces the structure reported in the paper.
package ipsc

import (
	"fmt"
	"math"
	"math/rand"

	"hpfperf/internal/sysmodel"
)

// AccessClass classifies the spatial locality of an array access stream.
type AccessClass int

const (
	// Unit-stride streams (contiguous in Fortran column-major order).
	Unit AccessClass = iota
	// Strided streams (stride exceeding one cache line).
	Strided
	// Random / data-dependent (indirection, gathered shadow copies).
	Random
)

// Config parameterizes one simulated machine instance.
type Config struct {
	// Nodes is the number of compute nodes in use (≤ the physical cube).
	Nodes int
	// Base supplies the shared machine parameters.
	Base *sysmodel.Machine
	// CacheModel enables the data-cache miss model.
	CacheModel bool
	// PerturbAmp is the relative amplitude of per-run compute-time load
	// fluctuation (0 disables; the paper's measurements averaged 1000 runs
	// whose variance typically exceeded the interpretation error).
	PerturbAmp float64
	// TimerResUS is the resolution/tolerance of the timing routine.
	TimerResUS float64
	// Seed drives the deterministic noise generator.
	Seed int64
}

// DefaultConfig returns the detailed simulation configuration for n nodes.
func DefaultConfig(n int) Config {
	return Config{
		Nodes:      n,
		Base:       sysmodel.IPSC860(),
		CacheModel: true,
		PerturbAmp: 0.01,
		TimerResUS: 2.0,
		Seed:       1994,
	}
}

// Machine is a simulated iPSC/860: per-node clocks in microseconds plus
// the cost models consulted by the SPMD executor.
type Machine struct {
	cfg    Config
	node   *sysmodel.SAU
	clocks []float64
	factor []float64 // per-run per-node compute slowdown factors
	rng    *rand.Rand
	// Stats accumulates simulator-level counters.
	Stats Stats
}

// Stats counts simulated events.
type Stats struct {
	Messages    int
	BytesMoved  int
	Collectives int
	ComputeUS   float64
	CommWaitUS  float64
}

// New builds a simulated machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Base == nil {
		cfg.Base = sysmodel.IPSC860()
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("ipsc: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Nodes > cfg.Base.MaxNodes {
		return nil, fmt.Errorf("ipsc: %d nodes exceed the %d-node %s", cfg.Nodes, cfg.Base.MaxNodes, cfg.Base.Name)
	}
	m := &Machine{
		cfg:    cfg,
		node:   cfg.Base.Node,
		clocks: make([]float64, cfg.Nodes),
		factor: make([]float64, cfg.Nodes),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	m.NewRun()
	return m, nil
}

// Nodes returns the number of simulated nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Node returns the node SAU (shared base parameters).
func (m *Machine) Node() *sysmodel.SAU { return m.node }

// CloneForRun builds an independent machine with the same configuration
// whose noise stream is deterministically derived from the run index, so
// timed runs can execute concurrently while remaining reproducible.
func (m *Machine) CloneForRun(run int) *Machine {
	cfg := m.cfg
	cfg.Seed = m.cfg.Seed + int64(run)*7919 // decorrelate run streams
	c := &Machine{
		cfg:    cfg,
		node:   m.node,
		clocks: make([]float64, cfg.Nodes),
		factor: make([]float64, cfg.Nodes),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	c.NewRun()
	return c
}

// NewRun resets the clocks and resamples the load-fluctuation factors,
// modeling an independent timed run on a loaded system.
func (m *Machine) NewRun() {
	for i := range m.clocks {
		m.clocks[i] = 0
		m.factor[i] = 1
		if m.cfg.PerturbAmp > 0 {
			m.factor[i] = 1 + m.cfg.PerturbAmp*(2*m.rng.Float64()-1)
		}
	}
}

// Time returns node rank's clock in microseconds.
func (m *Machine) Time(rank int) float64 { return m.clocks[rank] }

// MaxTime returns the latest clock: the loosely synchronous completion
// time of the program.
func (m *Machine) MaxTime() float64 {
	t := 0.0
	for _, c := range m.clocks {
		if c > t {
			t = c
		}
	}
	return t
}

// MeasuredTimeUS returns the program completion time as the timing routine
// would report it (with tolerance noise).
func (m *Machine) MeasuredTimeUS() float64 {
	t := m.MaxTime()
	if m.cfg.TimerResUS > 0 {
		t += m.rng.Float64() * m.cfg.TimerResUS
	}
	return t
}

// ---------------------------------------------------------------------------
// Computation

// Compute advances rank's clock by the given cycle count, applying the
// node's clock rate and the per-run load factor.
func (m *Machine) Compute(rank int, cycles float64) {
	us := m.node.P.CyclesToUS(cycles) * m.factor[rank]
	m.clocks[rank] += us
	m.Stats.ComputeUS += us
}

// ComputeAll advances every clock (redundant replicated computation).
func (m *Machine) ComputeAll(cycles float64) {
	for r := range m.clocks {
		m.Compute(r, cycles)
	}
}

// MemAccessCycles returns the per-access cycle cost of a load or store
// stream with the given access class, given the loop's per-node data
// footprint in bytes.
func (m *Machine) MemAccessCycles(store bool, cls AccessClass, footprintBytes, elemBytes int) float64 {
	return m.MemAccessCyclesScaled(store, cls, footprintBytes, elemBytes, 1)
}

// MemAccessCyclesScaled is MemAccessCycles with the miss rate scaled by
// missScale (line sharing across grouped references).
func (m *Machine) MemAccessCyclesScaled(store bool, cls AccessClass, footprintBytes, elemBytes int, missScale float64) float64 {
	mem := m.node.M
	base := mem.LoadCycles
	if store {
		base = mem.StoreCycles
	}
	if !m.cfg.CacheModel {
		return base
	}
	missRate := 0.0
	switch cls {
	case Unit:
		if footprintBytes > mem.DCacheBytes {
			// Streaming: one miss per cache line.
			missRate = float64(elemBytes) / float64(mem.LineBytes)
		} else {
			missRate = 0.04 // warm-cache residual misses
		}
	case Strided:
		if footprintBytes > mem.DCacheBytes {
			missRate = 1.0
		} else {
			missRate = 0.10
		}
	case Random:
		if footprintBytes > mem.DCacheBytes {
			missRate = 0.85
		} else {
			missRate = 0.25
		}
	}
	return base + missScale*missRate*mem.MissPenaltyCycles
}

// ---------------------------------------------------------------------------
// Network

// hops returns the e-cube hop count between two node ranks.
func (m *Machine) hops(a, b int) int {
	h := sysmodel.HypercubeHops(a, b)
	if h < 1 {
		h = 1
	}
	return h
}

// msgUS returns the one-message transfer time including packing.
func (m *Machine) msgUS(bytes, hops int) float64 {
	c := m.node.C
	t := c.MsgTimeUS(bytes, hops)
	t += c.PackStartupUS + float64(bytes)*c.PackPerByteUS
	m.Stats.Messages++
	m.Stats.BytesMoved += bytes
	return t
}

// syncTo aligns a set of ranks to a common start time (loosely synchronous
// phase boundary), recording the skew as communication wait.
func (m *Machine) syncTo(ranks []int) float64 {
	t := 0.0
	for _, r := range ranks {
		if m.clocks[r] > t {
			t = m.clocks[r]
		}
	}
	for _, r := range ranks {
		m.Stats.CommWaitUS += t - m.clocks[r]
		m.clocks[r] = t
	}
	return t
}

func (m *Machine) allRanks() []int {
	rs := make([]int, m.cfg.Nodes)
	for i := range rs {
		rs[i] = i
	}
	return rs
}

// ShiftExchange models a nearest-neighbour halo/shift exchange: each
// participating rank exchanges bytes[r] bytes with the ranks given by
// partner(r) (send) and its inverse (receive). Each pair synchronizes
// locally; the cost is one send plus one receive per node.
func (m *Machine) ShiftExchange(bytes func(rank int) int, partner func(rank int) int) {
	if m.cfg.Nodes == 1 {
		return
	}
	m.Stats.Collectives++
	old := append([]float64(nil), m.clocks...)
	for r := 0; r < m.cfg.Nodes; r++ {
		p := partner(r)
		if p == r || p < 0 {
			continue
		}
		start := math.Max(old[r], old[p])
		m.Stats.CommWaitUS += start - old[r]
		send := m.msgUS(bytes(r), m.hops(r, p))
		recv := m.msgUS(bytes(p), m.hops(p, r))
		// Send and receive overlap partially on the NX interface.
		m.clocks[r] = start + math.Max(send, recv) + 0.35*math.Min(send, recv)
	}
}

// AllReduce models the global combining tree of the reduction library
// (sum, product, maxloc, ...) over all nodes: log2(P) exchange stages on
// a small fixed-size message, fully synchronizing.
func (m *Machine) AllReduce(bytes int) {
	if m.cfg.Nodes == 1 {
		return
	}
	m.Stats.Collectives++
	stages := sysmodel.Log2Ceil(m.cfg.Nodes)
	t := m.syncTo(m.allRanks())
	cost := 0.0
	for s := 0; s < stages; s++ {
		cost += m.msgUS(bytes, 1) + m.node.C.ReduceStageUS
	}
	for r := range m.clocks {
		m.clocks[r] = t + cost
	}
}

// Broadcast models a one-to-all broadcast from root along a spanning tree.
func (m *Machine) Broadcast(root, bytes int) {
	if m.cfg.Nodes == 1 {
		return
	}
	m.Stats.Collectives++
	stages := sysmodel.Log2Ceil(m.cfg.Nodes)
	// Receivers cannot proceed before the root sends; the tree pipeline
	// completes after `stages` message steps.
	t := m.syncTo(m.allRanks())
	cost := 0.0
	for s := 0; s < stages; s++ {
		cost += m.msgUS(bytes, 1) + m.node.C.BcastStageUS
	}
	for r := range m.clocks {
		m.clocks[r] = t + cost
	}
}

// AllGatherV models the concatenation collective building a full copy of
// a distributed array on every node (recursive doubling).
func (m *Machine) AllGatherV(localBytes func(rank int) int) {
	if m.cfg.Nodes == 1 {
		return
	}
	m.Stats.Collectives++
	total := 0
	maxLocal := 0
	for r := 0; r < m.cfg.Nodes; r++ {
		b := localBytes(r)
		total += b
		if b > maxLocal {
			maxLocal = b
		}
	}
	stages := sysmodel.Log2Ceil(m.cfg.Nodes)
	t := m.syncTo(m.allRanks())
	// Recursive doubling: stage i exchanges ~2^i × maxLocal bytes.
	cost := 0.0
	vol := maxLocal
	for s := 0; s < stages; s++ {
		cost += m.msgUS(vol, 1) + m.node.C.GatherStageUS
		vol *= 2
		if vol > total {
			vol = total
		}
	}
	for r := range m.clocks {
		m.clocks[r] = t + cost
	}
}

// FetchBroadcast models one element fetched from its owner and broadcast
// to all nodes.
func (m *Machine) FetchBroadcast(owner, bytes int) {
	m.Broadcast(owner, bytes)
}

// HostIO models list-directed output: node 0 ships bytes to the SRM host.
func (m *Machine) HostIO(bytes int) {
	io := m.node.IO
	m.clocks[0] += io.HostStartupUS + float64(bytes)*io.HostPerByteUS
}

// Barrier fully synchronizes all nodes.
func (m *Machine) Barrier() { m.syncTo(m.allRanks()) }
