package obs

import "context"

type ctxKey int

const spanKey ctxKey = 0

// ContextWithSpan returns a context carrying the span as the current
// parent for instrumentation further down the call stack.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the context's current span, or nil when the
// request is untraced. Callers on hot paths cache the result once and
// branch on nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start opens a child of the context's current span and returns a
// derived context carrying the new span. On an untraced context it
// returns (ctx, nil) without allocating.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return ContextWithSpan(ctx, s), s
}
