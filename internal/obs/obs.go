// Package obs is the observability layer of the prediction framework
// itself. The paper's Output Module profiles the *interpreted program*
// per AAU, per sub-graph and per source line (§5); this package applies
// the same idea to the predictor: per-request traces decompose a
// prediction's latency into compile / analyze / interpret / execute /
// sweep phases, and structured logs correlate them with request IDs.
//
// The package is stdlib-only and dependency-free within the module (it
// sits below compiler, core, exec, sweep and server, all of which open
// spans through it). Tracing is opt-in per context: when no span is
// active, Start and the nil-safe Span methods cost one nil check, so
// hot paths are unaffected by the instrumentation.
//
// Span taxonomy (see DESIGN.md §11):
//
//	server.<route>   one API request (root)
//	cache.lookup     sweep-cache probe (attrs: kind, outcome)
//	compile          phase-1 compilation; children parse, sem, comm-insert
//	partition        directive resolution inside sem
//	analyze          static-analysis passes
//	calibrate        off-line collective calibration
//	interp           one interpretation run; children interp.<aau-kind>
//	exec.vm          simulated execution
//	sweep.point      one point of a parallel sweep
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer collects the spans of one trace. It is safe for concurrent use:
// sweep workers sharing a request context append spans from several
// goroutines.
type Tracer struct {
	mu      sync.Mutex
	traceID string
	start   time.Time
	spans   []*Span
	nextID  int
}

// NewTracer returns an empty tracer for the given trace ID (use
// NewTraceID for a fresh W3C-compatible one).
func NewTracer(traceID string) *Tracer {
	return &Tracer{traceID: traceID, start: time.Now()}
}

// TraceID returns the tracer's identity.
func (t *Tracer) TraceID() string { return t.traceID }

// Span is one named, timed region of a trace. All methods are safe on a
// nil receiver, which is what an untraced context hands out: disabled
// tracing is a nil check, not a branchy fast path.
type Span struct {
	tr     *Tracer
	id     int
	parent int // 0 = no parent (root)
	name   string
	start  time.Time
	durUS  float64
	ended  bool
	attrs  map[string]string
}

func (t *Tracer) newSpan(name string, parent int) *Span {
	s := &Span{tr: t, parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Root opens the trace's root span. A well-formed trace has exactly one.
func (t *Tracer) Root(name string) *Span { return t.newSpan(name, 0) }

// StartChild opens a child span. Nil-safe: on an untraced path it
// returns nil, and every Span method tolerates that.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durUS = float64(time.Since(s.start)) / float64(time.Microsecond)
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches a key attribute (source hash, procs, distribution,
// cache outcome, retry count ...).
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = val
	s.tr.mu.Unlock()
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, val int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(val))
}

// Active reports whether the span records anything (false on nil).
func (s *Span) Active() bool { return s != nil }

// ---------------------------------------------------------------------------
// Span tree (the JSON surface: X-HPF-Trace responses, -trace-out files,
// /v1/traces ring entries, and the input of the gantt renderer).

// Node is one span rendered into the trace tree.
type Node struct {
	Name     string            `json:"name"`
	StartUS  float64           `json:"start_us"`
	DurUS    float64           `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// Walk visits the node and its descendants depth-first.
func (n *Node) Walk(f func(depth int, n *Node)) {
	var rec func(depth int, n *Node)
	rec = func(depth int, n *Node) {
		f(depth, n)
		for _, c := range n.Children {
			rec(depth+1, c)
		}
	}
	rec(0, n)
}

// Tree is a complete trace: the root span with its descendants plus
// integrity counters (a well-formed trace has Orphans == 0 and exactly
// the advertised span count).
type Tree struct {
	TraceID string  `json:"trace_id"`
	Spans   int     `json:"spans"`
	Orphans int     `json:"orphans,omitempty"`
	DurUS   float64 `json:"dur_us"`
	Root    *Node   `json:"root"`
}

// Tree renders the tracer's spans as a tree. Span start times are
// offsets (µs) from the trace start. Unended spans are closed at the
// rendering instant. Spans whose parent was never recorded count as
// orphans and are attached under the root so no timing is lost.
func (t *Tracer) Tree() *Tree {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &Tree{TraceID: t.traceID, Spans: len(t.spans)}
	if len(t.spans) == 0 {
		return out
	}
	nodes := make(map[int]*Node, len(t.spans))
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].id < spans[j].id })
	for _, s := range spans {
		dur := s.durUS
		if !s.ended {
			dur = float64(time.Since(s.start)) / float64(time.Microsecond)
		}
		n := &Node{
			Name:    s.name,
			StartUS: float64(s.start.Sub(t.start)) / float64(time.Microsecond),
			DurUS:   dur,
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				n.Attrs[k] = v
			}
		}
		nodes[s.id] = n
	}
	var root *Node
	var orphaned []*Node
	for _, s := range spans {
		n := nodes[s.id]
		switch {
		case s.parent == 0 && root == nil:
			root = n
		case s.parent == 0:
			out.Orphans++
			orphaned = append(orphaned, n)
		default:
			p, ok := nodes[s.parent]
			if !ok {
				out.Orphans++
				orphaned = append(orphaned, n)
				break
			}
			p.Children = append(p.Children, n)
		}
	}
	if root == nil {
		// Degenerate trace: every span was an orphan. Surface them under
		// a synthetic root rather than dropping the data.
		root = &Node{Name: "(orphans)"}
	}
	root.Children = append(root.Children, orphaned...)
	out.Root = root
	out.DurUS = root.DurUS
	return out
}

// ---------------------------------------------------------------------------
// ID generation (W3C trace-context compatible widths).

func randHex(nBytes int) string {
	b := make([]byte, nBytes)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// degrade to a constant non-zero ID rather than panicking a
		// serving path.
		for i := range b {
			b[i] = 0xab
		}
	}
	return hex.EncodeToString(b)
}

// NewTraceID returns a 16-byte (32 hex digit) trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns an 8-byte (16 hex digit) span/request ID.
func NewSpanID() string { return randHex(8) }
