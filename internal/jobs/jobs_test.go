package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hpfperf/internal/obs"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
}

// echoExec completes immediately, echoing the payload back as result.
func echoExec(_ context.Context, job JobView, _ ExecEnv) (json.RawMessage, error) {
	return job.Payload, nil
}

func openTest(t *testing.T, dir string, exec Executor, mutate ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Dir: dir, Workers: 2, Exec: exec, Log: testLogger()}
	for _, f := range mutate {
		f(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func waitState(t *testing.T, m *Manager, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
	return JobView{}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestSubmitRunDone(t *testing.T) {
	m := openTest(t, t.TempDir(), echoExec)
	v, err := m.Submit("predict", json.RawMessage(`{"n":42}`), Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.State != StateSubmitted || v.ID == "" {
		t.Fatalf("submit view: %+v", v)
	}
	got := waitState(t, m, v.ID, StateDone)
	if string(got.Result) != `{"n":42}` {
		t.Fatalf("result = %s", got.Result)
	}
	if got.FinishedAt == nil || got.StartedAt == nil {
		t.Fatalf("timestamps missing: %+v", got)
	}
	mm := m.Metrics()
	if mm.SubmittedTotal != 1 || mm.DoneTotal != 1 || mm.ByState[StateDone] != 1 {
		t.Fatalf("metrics: %+v", mm)
	}
	drain(t, m)
}

func TestFailedJob(t *testing.T) {
	m := openTest(t, t.TempDir(), func(context.Context, JobView, ExecEnv) (json.RawMessage, error) {
		return nil, errors.New("boom")
	})
	v, _ := m.Submit("predict", json.RawMessage(`{}`), Options{})
	got := waitState(t, m, v.ID, StateFailed)
	if got.Error != "boom" {
		t.Fatalf("error = %q", got.Error)
	}
	if m.Metrics().FailedTotal != 1 {
		t.Fatalf("FailedTotal = %d", m.Metrics().FailedTotal)
	}
	drain(t, m)
}

func TestGetListNotFound(t *testing.T) {
	m := openTest(t, t.TempDir(), echoExec)
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown: %v", err)
	}
	a, _ := m.Submit("predict", json.RawMessage(`1`), Options{})
	b, _ := m.Submit("autotune", json.RawMessage(`2`), Options{})
	waitState(t, m, a.ID, StateDone)
	waitState(t, m, b.ID, StateDone)
	l := m.List()
	if len(l) != 2 {
		t.Fatalf("List len = %d", len(l))
	}
	drain(t, m)
}

func TestCancelQueued(t *testing.T) {
	block := make(chan struct{})
	m := openTest(t, t.TempDir(), func(ctx context.Context, _ JobView, _ ExecEnv) (json.RawMessage, error) {
		<-block
		return json.RawMessage(`{}`), nil
	}, func(c *Config) { c.Workers = 1 })
	first, _ := m.Submit("predict", json.RawMessage(`1`), Options{})
	waitState(t, m, first.ID, StateRunning)
	queued, _ := m.Submit("predict", json.RawMessage(`2`), Options{})
	v, err := m.Cancel(queued.ID)
	if err != nil || v.State != StateCancelled {
		t.Fatalf("Cancel queued: %+v, %v", v, err)
	}
	close(block)
	waitState(t, m, first.ID, StateDone)
	if m.Metrics().CancelledTotal != 1 {
		t.Fatalf("CancelledTotal = %d", m.Metrics().CancelledTotal)
	}
	drain(t, m)
}

func TestCancelRunning(t *testing.T) {
	m := openTest(t, t.TempDir(), func(ctx context.Context, _ JobView, _ ExecEnv) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	v, _ := m.Submit("predict", json.RawMessage(`1`), Options{})
	waitState(t, m, v.ID, StateRunning)
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, m, v.ID, StateCancelled)
	if !got.CancelRequested {
		t.Fatalf("CancelRequested not set: %+v", got)
	}
	drain(t, m)
}

func TestSubmitWhileDrainingRefused(t *testing.T) {
	m := openTest(t, t.TempDir(), echoExec)
	drain(t, m)
	if _, err := m.Submit("predict", json.RawMessage(`1`), Options{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: %v", err)
	}
}

func TestRecoveryResumesRunningJob(t *testing.T) {
	dir := t.TempDir()
	// First process: the job is mid-flight (journal says running) when
	// the process dies without any drain.
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	m1 := openTest(t, dir, func(ctx context.Context, _ JobView, _ ExecEnv) (json.RawMessage, error) {
		started <- struct{}{}
		<-block
		return nil, ctx.Err()
	})
	v, _ := m1.Submit("predict", json.RawMessage(`{"n":7}`), Options{})
	<-started
	// Simulated crash: abandon the manager without draining (the
	// journal file stays as the dead process left it).
	close(block)

	m2 := openTest(t, dir, echoExec)
	got := waitState(t, m2, v.ID, StateDone)
	if string(got.Result) != `{"n":7}` {
		t.Fatalf("recovered result = %s", got.Result)
	}
	if got.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", got.Resumes)
	}
	mm := m2.Metrics()
	if mm.ResumedTotal != 1 || mm.ReplayRecords == 0 {
		t.Fatalf("recovery metrics: %+v", mm)
	}
	drain(t, m2)
}

func TestDrainHandoff(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	m1 := openTest(t, dir, func(ctx context.Context, _ JobView, env ExecEnv) (json.RawMessage, error) {
		env.Progress(3)
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	v, _ := m1.Submit("autotune", json.RawMessage(`{"q":1}`), Options{})
	<-started
	drain(t, m1)
	if m1.Metrics().HandoffTotal != 1 {
		t.Fatalf("HandoffTotal = %d", m1.Metrics().HandoffTotal)
	}

	// Next process picks the job up and finishes it; progress made
	// before the handoff is visible after replay.
	m2 := openTest(t, dir, echoExec)
	got := waitState(t, m2, v.ID, StateDone)
	if string(got.Result) != `{"q":1}` {
		t.Fatalf("handoff result = %s", got.Result)
	}
	if got.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", got.Resumes)
	}
	drain(t, m2)
}

func TestProgressJournalsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, func(_ context.Context, _ JobView, env ExecEnv) (json.RawMessage, error) {
		env.Progress(2)
		env.Progress(5)
		return json.RawMessage(`{}`), nil
	})
	v, _ := m.Submit("validate", json.RawMessage(`{}`), Options{})
	got := waitState(t, m, v.ID, StateDone)
	if got.Done != 5 || got.Checkpoints != 2 {
		t.Fatalf("done=%d checkpoints=%d", got.Done, got.Checkpoints)
	}
	drain(t, m)

	// Progress survives replay.
	m2 := openTest(t, dir, echoExec)
	got, err := m2.Get(v.ID)
	if err != nil || got.Done != 5 {
		t.Fatalf("replayed done = %d (%v)", got.Done, err)
	}
	drain(t, m2)
}

func TestCheckpointDirLifecycle(t *testing.T) {
	dir := t.TempDir()
	var sawDir atomic.Value
	m := openTest(t, dir, func(_ context.Context, _ JobView, env ExecEnv) (json.RawMessage, error) {
		if err := os.MkdirAll(env.CheckpointDir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(env.CheckpointDir, "ckpt.json"), []byte("{}"), 0o644); err != nil {
			return nil, err
		}
		sawDir.Store(env.CheckpointDir)
		return json.RawMessage(`{}`), nil
	})
	v, _ := m.Submit("predict", json.RawMessage(`{}`), Options{})
	waitState(t, m, v.ID, StateDone)
	drain(t, m)
	ckptDir, _ := sawDir.Load().(string)
	if ckptDir == "" {
		t.Fatal("executor never ran")
	}
	if _, err := os.Stat(ckptDir); !os.IsNotExist(err) {
		t.Fatalf("checkpoint dir survived terminal state: %v", err)
	}
}

func TestRetentionBoundsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	m := openTest(t, dir, echoExec, func(c *Config) {
		c.RetainTerminal = 3
		c.MaxJournalBytes = 1 // compact after every terminal transition
	})
	var last JobView
	for i := 0; i < 8; i++ {
		v, err := m.Submit("predict", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)), Options{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		last = waitState(t, m, v.ID, StateDone)
	}
	mm := m.Metrics()
	if mm.ByState[StateDone] > 3 {
		t.Fatalf("retention kept %d terminal jobs, cap 3", mm.ByState[StateDone])
	}
	if mm.RetentionDropped == 0 || mm.Compactions == 0 {
		t.Fatalf("retention metrics: %+v", mm)
	}
	// The newest job is among the survivors.
	if _, err := m.Get(last.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	drain(t, m)

	// On disk: exactly one segment.
	names, _ := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if len(names) != 1 {
		t.Fatalf("segments on disk after retention: %v", names)
	}
}

func TestJobOptionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var gotFlush atomic.Int64
	m := openTest(t, dir, func(_ context.Context, job JobView, _ ExecEnv) (json.RawMessage, error) {
		gotFlush.Store(int64(job.Options.FlushEvery))
		return json.RawMessage(`{}`), nil
	})
	v, _ := m.Submit("predict", json.RawMessage(`{}`), Options{FlushEvery: 16})
	waitState(t, m, v.ID, StateDone)
	if gotFlush.Load() != 16 {
		t.Fatalf("executor saw FlushEvery=%d", gotFlush.Load())
	}
	drain(t, m)
}

func TestOnTraceDeliversSpanTree(t *testing.T) {
	trees := make(chan *obs.Tree, 1)
	m := openTest(t, t.TempDir(), func(ctx context.Context, _ JobView, _ ExecEnv) (json.RawMessage, error) {
		_, span := obs.Start(ctx, "inner")
		span.End()
		return json.RawMessage(`{}`), nil
	}, func(c *Config) {
		c.OnTrace = func(_ JobView, tree *obs.Tree) {
			select {
			case trees <- tree:
			default:
			}
		}
	})
	v, _ := m.Submit("predict", json.RawMessage(`{}`), Options{})
	waitState(t, m, v.ID, StateDone)
	select {
	case tree := <-trees:
		if tree.Root == nil || tree.Root.Name != "jobs.run" {
			t.Fatalf("trace tree root: %+v", tree.Root)
		}
		if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "inner" {
			t.Fatalf("executor span not nested under jobs.run: %+v", tree.Root)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnTrace never called")
	}
	drain(t, m)
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Exec: echoExec}); err == nil {
		t.Fatal("Open accepted empty Dir")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open accepted nil Exec")
	}
}
