package report

import (
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
)

func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	src := `PROGRAM sample
PARAMETER (N = 256)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) B(K) = REAL(K)
FORALL (K=2:N-1) A(K) = B(K-1) + B(K+1)
S = SUM(A)
PRINT *, S
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it, err := core.New(prog, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := it.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFormatUS(t *testing.T) {
	cases := map[float64]string{
		12.3:    "12.3us",
		4500:    "4.50ms",
		2500000: "2.500s",
	}
	for in, want := range cases {
		if got := FormatUS(in); got != want {
			t.Errorf("FormatUS(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestProfile(t *testing.T) {
	rep := sampleReport(t)
	p := Profile(rep)
	for _, want := range []string{"SAMPLE", "computation", "communication", "overhead", "%"} {
		if !strings.Contains(p, want) {
			t.Errorf("profile missing %q:\n%s", want, p)
		}
	}
}

func TestPhaseProfile(t *testing.T) {
	rep := sampleReport(t)
	phases := PhaseProfile(rep, []Phase{
		{Name: "init", FromLine: 9, ToLine: 9},
		{Name: "stencil", FromLine: 10, ToLine: 10},
	})
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	if phases[0].Metrics.TotalUS() <= 0 || phases[1].Metrics.TotalUS() <= 0 {
		t.Error("empty phase metrics")
	}
	// The stencil phase communicates (halo shifts); init does not.
	if phases[0].Metrics.CommUS != 0 {
		t.Error("init phase should not communicate")
	}
	if phases[1].Metrics.CommUS <= 0 {
		t.Error("stencil phase should include shift communication")
	}
	txt := RenderPhaseProfile("test", phases)
	if !strings.Contains(txt, "init") || !strings.Contains(txt, "#") {
		t.Errorf("rendering:\n%s", txt)
	}
}

func TestCommTable(t *testing.T) {
	rep := sampleReport(t)
	txt := CommTable(rep)
	if !strings.Contains(txt, "shift") || !strings.Contains(txt, "reduce") {
		t.Errorf("comm table:\n%s", txt)
	}
}

func TestAAGView(t *testing.T) {
	rep := sampleReport(t)
	full := AAGView(rep, 0)
	shallow := AAGView(rep, 1)
	if len(shallow) >= len(full) {
		t.Error("depth limit should shorten the view")
	}
	if !strings.Contains(full, "IterD") {
		t.Error("AAG view missing loop AAUs")
	}
}

func TestLineQueryAndHotLines(t *testing.T) {
	rep := sampleReport(t)
	q := LineQuery(rep, 10)
	if !strings.Contains(q, "line 10") {
		t.Errorf("line query: %s", q)
	}
	hot := HotLines(rep, 2)
	if len(strings.Split(strings.TrimSpace(hot), "\n")) != 2 {
		t.Errorf("hot lines:\n%s", hot)
	}
}

func TestTable(t *testing.T) {
	txt := Table([]string{"a", "bbb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing separator")
	}
}

func TestChart(t *testing.T) {
	txt := Chart("title", "x", "y", []Series{
		{Label: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Label: "b", X: []float64{1, 2, 3}, Y: []float64{2, 3, 4}},
	})
	if !strings.Contains(txt, "title") || !strings.Contains(txt, "o = a") {
		t.Errorf("chart:\n%s", txt)
	}
}

func TestBars(t *testing.T) {
	txt := Bars("bars", "min", []string{"x", "y"}, []float64{10, 40})
	if !strings.Contains(txt, "####") {
		t.Errorf("bars:\n%s", txt)
	}
}

func TestChartDegenerate(t *testing.T) {
	// Single point, zero range: must not panic or divide by zero.
	txt := Chart("t", "x", "y", []Series{{Label: "a", X: []float64{5}, Y: []float64{0}}})
	if txt == "" {
		t.Error("empty chart")
	}
}

func TestAAUQuery(t *testing.T) {
	rep := sampleReport(t)
	var id int
	rep.SAAG.Walk(func(a *core.AAU) {
		if id == 0 && a.Kind == core.IterD {
			id = a.ID
		}
	})
	q := AAUQuery(rep, id)
	if !strings.Contains(q, "IterD") || !strings.Contains(q, "clock") {
		t.Errorf("AAU query: %s", q)
	}
	if !strings.Contains(AAUQuery(rep, 99999), "not found") {
		t.Error("missing-AAU message")
	}
}
