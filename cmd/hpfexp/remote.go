// hpfexp's remote mode: run artifacts as durable async jobs on an
// hpfserve instance (-server) instead of in-process. -submit journals
// the job server-side before returning, so a crash between submission
// and completion cannot lose it; -job re-attaches to a submitted job by
// ID — after such a crash, from another terminal, or across a server
// restart (the result is byte-identical either way).

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"hpfperf/hpfclient"
	"hpfperf/internal/jobs"
	"hpfperf/internal/server"
)

// remoteArtifacts orders the artifact flags hpfserve can run as jobs.
// -fig3 needs no sweep and -ablations has no job executor; both stay
// local-only.
var remoteArtifacts = []string{"table2", "fig4", "fig5", "fig7", "fig8"}

// selectArtifact maps the artifact flags to the single wire name a job
// submission needs.
func selectArtifact(sel map[string]bool) (string, error) {
	var picked []string
	for _, name := range remoteArtifacts {
		if sel[name] {
			picked = append(picked, name)
		}
	}
	if len(picked) != 1 {
		return "", fmt.Errorf("-submit needs exactly one of -table2, -fig4, -fig5, -fig7, -fig8 (got %d)", len(picked))
	}
	return picked[0], nil
}

// runRemote submits and/or watches a job on the -server instance.
// Status goes to stderr; the artifact output (or a JSON snapshot of a
// non-terminal job) goes to stdout, mirroring local mode.
func runRemote(baseURL, artifact string, quick bool, runs int, jobID string, wait bool) error {
	c := hpfclient.New(hpfclient.Config{BaseURL: baseURL})
	ctx := context.Background()

	if jobID == "" {
		sub, err := c.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
			Kind:       hpfclient.JobKindExperiment,
			Experiment: &hpfclient.ExperimentJobRequest{Artifact: artifact, Quick: quick, Runs: runs},
		})
		if err != nil {
			return fmt.Errorf("submitting %s: %w", artifact, err)
		}
		jobID = sub.Job.ID
		fmt.Fprintf(os.Stderr, "hpfexp: job %s submitted (%s)\n", jobID, artifact)
		if !wait {
			// The ID is the durable handle: re-attach later with -job.
			fmt.Println(jobID)
			return nil
		}
	}

	v, err := c.Job(ctx, jobID)
	if err != nil {
		return err
	}
	if wait && !v.State.Terminal() {
		// WatchJob rides the server's SSE event stream (falling back to
		// polling against older servers), so progress lands on stderr as
		// it happens instead of on the next poll.
		v, err = c.WatchJob(ctx, jobID, hpfclient.PollPolicy{}, func(ev hpfclient.JobEvent) {
			if ev.State == jobs.StateCheckpointed {
				fmt.Fprintf(os.Stderr, "hpfexp: job %s checkpointed (%d points durable)\n", jobID, ev.Done)
				return
			}
			fmt.Fprintf(os.Stderr, "hpfexp: job %s %s\n", jobID, ev.State)
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "hpfexp: job %s %s (checkpoints %d, resumes %d)\n",
		v.ID, v.State, v.Checkpoints, v.Resumes)

	switch v.State {
	case jobs.StateDone:
		var res server.ExperimentJobResult
		if v.Kind == hpfclient.JobKindExperiment &&
			json.Unmarshal(v.Result, &res) == nil && res.Output != "" {
			fmt.Println(res.Output)
		} else if len(v.Result) > 0 {
			os.Stdout.Write(append(v.Result, '\n'))
		}
		return nil
	case jobs.StateFailed:
		return fmt.Errorf("job %s failed: %s", v.ID, v.Error)
	case jobs.StateCancelled:
		return fmt.Errorf("job %s was cancelled", v.ID)
	default:
		// Not terminal (checked with -wait=false): print the snapshot so
		// scripts can inspect progress.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
}
