package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	inj, err := Parse("compile:0.05,server.predict:0.1:panic,exec:0.02:delay:5ms,sweep:1:error", 42)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	st := inj.Stats()
	if len(st) != 4 {
		t.Fatalf("rules = %d, want 4", len(st))
	}
	byKey := map[string]SiteStats{}
	for _, s := range st {
		byKey[s.Site] = s
	}
	if byKey["server.predict"].Kind != KindPanic {
		t.Errorf("server.predict kind = %v, want panic", byKey["server.predict"].Kind)
	}
	if byKey["exec"].Kind != KindDelay {
		t.Errorf("exec kind = %v, want delay", byKey["exec"].Kind)
	}
	if byKey["sweep"].Rate != 1 {
		t.Errorf("sweep rate = %g, want 1", byKey["sweep"].Rate)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nosuchsite:0.1",        // unknown site
		"compile:1.5",           // rate out of range
		"compile:-0.1",          // negative rate
		"compile:x",             // unparsable rate
		"compile",               // missing rate
		"compile:0.1:frob",      // unknown kind
		"compile:0.1:error:5ms", // delay on non-delay kind
		"exec:0.1:delay:zzz",    // bad duration
		"a:b:c:d:e",             // too many fields
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestEmptySpecFiresNothing(t *testing.T) {
	inj, err := Parse("", 1)
	if err != nil {
		t.Fatal(err)
	}
	Activate(inj)
	defer Deactivate()
	for i := 0; i < 100; i++ {
		if err := Fire(SiteCompile); err != nil {
			t.Fatalf("empty injector fired: %v", err)
		}
	}
}

func TestInactiveFireIsNil(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("Enabled() after Deactivate")
	}
	if err := Fire(SiteSweep); err != nil {
		t.Fatalf("inactive Fire = %v, want nil", err)
	}
}

func TestErrorKindReturnsTypedTransientError(t *testing.T) {
	inj := New(7)
	if err := inj.Add(Rule{Site: SiteCompile, Rate: 1, Kind: KindError}); err != nil {
		t.Fatal(err)
	}
	err := inj.fire(SiteCompile)
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InjectedError", err, err)
	}
	if ie.Site != SiteCompile || !ie.Transient() {
		t.Errorf("InjectedError = %+v, want transient at %s", ie, SiteCompile)
	}
	if !strings.Contains(err.Error(), SiteCompile) {
		t.Errorf("error text %q does not name the site", err)
	}
}

func TestPanicKindPanics(t *testing.T) {
	inj := New(7)
	if err := inj.Add(Rule{Site: SiteExec, Rate: 1, Kind: KindPanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("rate-1 panic rule did not panic")
		}
	}()
	inj.fire(SiteExec)
}

func TestDelayKindSleeps(t *testing.T) {
	inj := New(7)
	if err := inj.Add(Rule{Site: SiteInterp, Rate: 1, Kind: KindDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := inj.fire(SiteInterp); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay slept %v, want >= 20ms", d)
	}
}

func TestDecisionRateAndDeterminism(t *testing.T) {
	const n = 20000
	count := func(seed int64) int {
		inj := New(seed)
		if err := inj.Add(Rule{Site: SiteSweep, Rate: 0.1, Kind: KindError}); err != nil {
			t.Fatal(err)
		}
		fired := 0
		for i := 0; i < n; i++ {
			if inj.fire(SiteSweep) != nil {
				fired++
			}
		}
		return fired
	}
	a, b := count(42), count(42)
	if a != b {
		t.Errorf("same seed fired %d then %d times; decisions not deterministic", a, b)
	}
	// 10% of 20000 = 2000; allow a generous band around it.
	if a < 1600 || a > 2400 {
		t.Errorf("rate 0.1 fired %d/%d times, want ~2000", a, n)
	}
	if c := count(43); c == a {
		t.Logf("different seeds coincided (%d) — unlikely but not an error", c)
	}
}

func TestStatsCountsCallsAndFires(t *testing.T) {
	inj := New(1)
	if err := inj.Add(Rule{Site: SiteCache, Rate: 0.5, Kind: KindError}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		inj.fire(SiteCache)
	}
	st := inj.Stats()
	if len(st) != 1 || st[0].Calls != 100 {
		t.Fatalf("stats = %+v, want one rule with 100 calls", st)
	}
	if st[0].Fired == 0 || st[0].Fired == 100 {
		t.Errorf("fired = %d at rate 0.5 over 100 calls; decision looks degenerate", st[0].Fired)
	}
}

func TestSitesListsKnownSites(t *testing.T) {
	sites := Sites()
	want := map[string]bool{"compile": true, "cache": true, "interp": true, "exec": true, "sweep": true}
	for _, s := range sites {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("Sites() missing %v (got %v)", want, sites)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindError: "error", KindPanic: "panic", KindDelay: "delay", Kind(99): "Kind(99)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
