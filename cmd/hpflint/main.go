// Command hpflint is the static analyzer for HPF/Fortran 90D programs:
// it compiles each source file and runs the analysis passes — critical-
// variable definition tracing, communication anti-pattern lints, FORALL
// dependence tests, directive hygiene, and degenerate control-flow
// detection — reporting structured diagnostics instead of predictions.
//
// Usage:
//
//	hpflint [flags] file.hpf [file2.hpf ...]
//
//	-json             emit one JSON report per file instead of text
//	-price            print the static cost pre-estimate after each report
//	-severity LEVEL   exit non-zero when a diagnostic at or above LEVEL
//	                  (info, warning, error) is found; default warning
//
// Exit status: 0 clean (below threshold), 1 findings at or above the
// threshold, 2 usage or I/O errors. Programs that fail to compile
// produce an HPF0000 error diagnostic rather than aborting the run, so
// a corpus sweep reports every file.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"hpfperf/internal/analysis"
	"hpfperf/internal/compiler"
	"hpfperf/internal/parser"
	"hpfperf/internal/scanner"
	"hpfperf/internal/sem"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hpflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit JSON reports instead of text")
	priceOut := fs.Bool("price", false, "print the static cost pre-estimate after each report")
	sevFlag := fs.String("severity", "warning", "exit threshold: info, warning or error")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	threshold, err := analysis.ParseSeverity(*sevFlag)
	if err != nil {
		fmt.Fprintln(stderr, "hpflint:", err)
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "hpflint: no input files (usage: hpflint [-json] [-severity level] file.hpf ...)")
		return 2
	}

	exit := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "hpflint:", err)
			return 2
		}
		rep := lintSource(file, string(src))
		if *jsonOut {
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, "hpflint:", err)
				return 2
			}
			fmt.Fprintln(stdout, string(b))
		} else {
			fmt.Fprint(stdout, rep.Text())
			if *priceOut && rep.Price != nil {
				fmt.Fprint(stdout, rep.Price.String())
			}
		}
		if max, ok := rep.Max(); ok && max >= threshold && exit == 0 {
			exit = 1
		}
	}
	return exit
}

// lintSource compiles and analyzes one source file. Compile failures
// become an HPF0000 error diagnostic carrying the frontend's message and
// source line, keeping the report schema uniform.
func lintSource(file, src string) *analysis.Report {
	prog, err := compiler.Compile(src)
	if err != nil {
		return &analysis.Report{
			File:    file,
			Program: "",
			Diagnostics: []analysis.Diagnostic{{
				Code:     "HPF0000",
				Severity: analysis.SevError,
				Pass:     "compile",
				Line:     errorLine(err),
				Message:  err.Error(),
			}},
		}
	}
	return analysis.NewReport(file, prog)
}

// errorLine extracts the source line from any of the frontend's
// positioned error types.
func errorLine(err error) int {
	var (
		ce *compiler.Error
		se *sem.Error
		pl parser.ErrorList
		pe *parser.Error
		le *scanner.Error
	)
	switch {
	case errors.As(err, &ce):
		return ce.Pos.Line
	case errors.As(err, &se):
		return se.Pos.Line
	case errors.As(err, &pl) && len(pl) > 0:
		return pl[0].Pos.Line
	case errors.As(err, &pe):
		return pe.Pos.Line
	case errors.As(err, &le):
		return le.Pos.Line
	}
	return 0
}
