package sem

import (
	"fmt"
	"math"

	"hpfperf/internal/ast"
	"hpfperf/internal/token"
)

// EvalConst evaluates a constant expression over named constants.
// It supports the arithmetic operators, unary minus, and a few numeric
// intrinsics (MOD, MIN, MAX, INT, REAL, SQRT) on constant arguments.
func EvalConst(e ast.Expr, consts map[string]Value) (Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntVal(x.Value), nil
	case *ast.RealLit:
		return RealVal(x.Value), nil
	case *ast.LogicalLit:
		return LogicalVal(x.Value), nil
	case *ast.Ident:
		if v, ok := consts[x.Name]; ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("%s: %s is not a named constant", x.Pos(), x.Name)
	case *ast.UnaryExpr:
		v, err := EvalConst(x.X, consts)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case token.MINUS:
			if v.Type == ast.TInteger {
				return IntVal(-v.I), nil
			}
			return RealVal(-v.R), nil
		case token.NOT:
			return LogicalVal(!v.B), nil
		}
		return Value{}, fmt.Errorf("%s: unsupported constant unary op %s", x.Pos(), x.Op)
	case *ast.BinaryExpr:
		a, err := EvalConst(x.X, consts)
		if err != nil {
			return Value{}, err
		}
		b, err := EvalConst(x.Y, consts)
		if err != nil {
			return Value{}, err
		}
		return evalConstBinop(x.Op, a, b, x.Pos())
	case *ast.CallOrIndex:
		return evalConstCall(x, consts)
	}
	return Value{}, fmt.Errorf("%s: expression is not constant", e.Pos())
}

func evalConstBinop(op token.Kind, a, b Value, pos token.Pos) (Value, error) {
	bothInt := a.Type == ast.TInteger && b.Type == ast.TInteger
	switch op {
	case token.PLUS:
		if bothInt {
			return IntVal(a.I + b.I), nil
		}
		return RealVal(a.AsFloat() + b.AsFloat()), nil
	case token.MINUS:
		if bothInt {
			return IntVal(a.I - b.I), nil
		}
		return RealVal(a.AsFloat() - b.AsFloat()), nil
	case token.STAR:
		if bothInt {
			return IntVal(a.I * b.I), nil
		}
		return RealVal(a.AsFloat() * b.AsFloat()), nil
	case token.SLASH:
		if bothInt {
			if b.I == 0 {
				return Value{}, fmt.Errorf("%s: constant division by zero", pos)
			}
			return IntVal(a.I / b.I), nil
		}
		return RealVal(a.AsFloat() / b.AsFloat()), nil
	case token.POW:
		if bothInt && b.I >= 0 {
			r := int64(1)
			for i := int64(0); i < b.I; i++ {
				r *= a.I
			}
			return IntVal(r), nil
		}
		return RealVal(math.Pow(a.AsFloat(), b.AsFloat())), nil
	case token.EQ:
		return LogicalVal(a.AsFloat() == b.AsFloat()), nil
	case token.NE:
		return LogicalVal(a.AsFloat() != b.AsFloat()), nil
	case token.LT:
		return LogicalVal(a.AsFloat() < b.AsFloat()), nil
	case token.LE:
		return LogicalVal(a.AsFloat() <= b.AsFloat()), nil
	case token.GT:
		return LogicalVal(a.AsFloat() > b.AsFloat()), nil
	case token.GE:
		return LogicalVal(a.AsFloat() >= b.AsFloat()), nil
	case token.AND:
		return LogicalVal(a.B && b.B), nil
	case token.OR:
		return LogicalVal(a.B || b.B), nil
	}
	return Value{}, fmt.Errorf("%s: unsupported constant operator %s", pos, op)
}

func evalConstCall(x *ast.CallOrIndex, consts map[string]Value) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := EvalConst(a, consts)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: %s expects %d constant arguments, got %d", x.Pos(), x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "MOD":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if args[0].Type == ast.TInteger && args[1].Type == ast.TInteger {
			if args[1].I == 0 {
				return Value{}, fmt.Errorf("%s: MOD by zero", x.Pos())
			}
			return IntVal(args[0].I % args[1].I), nil
		}
		return RealVal(math.Mod(args[0].AsFloat(), args[1].AsFloat())), nil
	case "MIN":
		v := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() < v.AsFloat() {
				v = a
			}
		}
		return v, nil
	case "MAX":
		v := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() > v.AsFloat() {
				v = a
			}
		}
		return v, nil
	case "INT":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return IntVal(args[0].AsInt()), nil
	case "REAL", "FLOAT", "DBLE":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return RealVal(args[0].AsFloat()), nil
	case "SQRT":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return RealVal(math.Sqrt(args[0].AsFloat())), nil
	}
	return Value{}, fmt.Errorf("%s: %s is not a constant intrinsic", x.Pos(), x.Name)
}

// EvalConstInt evaluates a constant expression and coerces it to int.
func EvalConstInt(e ast.Expr, consts map[string]Value) (int, error) {
	v, err := EvalConst(e, consts)
	if err != nil {
		return 0, err
	}
	if v.Type != ast.TInteger {
		return 0, fmt.Errorf("%s: expected integer constant", e.Pos())
	}
	return int(v.I), nil
}
