package dist

import (
	"math/rand"
	"testing"
)

// randDist draws a random valid DimDist over each Kind, small enough to
// brute-force but varied enough to hit block remainders, single-element
// dims, more processors than elements, explicit BLOCK(n) sizes, and
// block-cyclic CYCLIC(k) chunks.
func randDist(rng *rand.Rand) DimDist {
	kind := Kind(rng.Intn(3))
	lo := rng.Intn(5) - 2 // bounds need not start at 1
	extent := 1 + rng.Intn(40)
	d := DimDist{Kind: kind, Lo: lo, Hi: lo + extent - 1, ProcDim: -1, NProc: 1}
	if kind != Collapsed {
		d.ProcDim = rng.Intn(2)
		d.NProc = 1 + rng.Intn(8)
		if kind == Block && rng.Intn(3) == 0 {
			// Explicit BLOCK(n): any n with n*NProc >= extent is legal.
			minBlk := ceilDiv(extent, d.NProc)
			d.Blk = minBlk + rng.Intn(3)
		}
		if kind == Cyclic && rng.Intn(2) == 0 {
			// CYCLIC(k): any positive chunk is legal (rounds wrap), and k
			// beyond the extent degenerates to everything on processor 0.
			d.Blk = 1 + rng.Intn(extent+2)
		}
	}
	return d
}

func TestPropertyRoundTripIdentity(t *testing.T) {
	// For every global index g: ToGlobal(Owner(g), ToLocal(g)) == g, the
	// owner is a valid processor coordinate, and the local offset lies
	// inside the owner's local allocation.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		d := randDist(rng)
		for g := d.Lo; g <= d.Hi; g++ {
			p := d.Owner(g)
			if p < 0 || p >= d.procCount() {
				t.Fatalf("%v: Owner(%d) = %d out of [0,%d)", d, g, p, d.procCount())
			}
			l := d.ToLocal(g)
			if l < 0 || l >= d.LocalSize(p) {
				t.Fatalf("%v: ToLocal(%d) = %d outside local size %d of p%d",
					d, g, l, d.LocalSize(p), p)
			}
			if back := d.ToGlobal(p, l); back != g {
				t.Fatalf("%v: ToGlobal(%d,%d) = %d, want %d", d, p, l, back, g)
			}
		}
	}
}

func TestPropertyLocalSizesPartitionExtent(t *testing.T) {
	// Local sizes sum to the extent (every element owned exactly once),
	// none exceeds MaxLocalSize, and some processor attains the max.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		d := randDist(rng)
		sum, maxSeen := 0, 0
		for p := 0; p < d.procCount(); p++ {
			sz := d.LocalSize(p)
			if sz < 0 {
				t.Fatalf("%v: LocalSize(%d) = %d negative", d, p, sz)
			}
			if sz > d.MaxLocalSize() {
				t.Fatalf("%v: LocalSize(%d) = %d exceeds MaxLocalSize %d",
					d, p, sz, d.MaxLocalSize())
			}
			if sz > maxSeen {
				maxSeen = sz
			}
			sum += sz
		}
		if sum != d.Extent() {
			t.Fatalf("%v: local sizes sum to %d, want extent %d", d, sum, d.Extent())
		}
		if maxSeen != d.MaxLocalSize() {
			t.Fatalf("%v: max attained local size %d != MaxLocalSize %d",
				d, maxSeen, d.MaxLocalSize())
		}
	}
}

func TestPropertyOwnedRangeMatchesOwner(t *testing.T) {
	// For Block/Collapsed, OwnedRange(p) must contain exactly the global
	// indices with Owner(g) == p.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		d := randDist(rng)
		if d.Kind == Cyclic {
			if _, _, ok := d.OwnedRange(0); ok {
				t.Fatalf("%v: OwnedRange must report not-contiguous for CYCLIC", d)
			}
			continue
		}
		for p := 0; p < d.procCount(); p++ {
			lo, hi, ok := d.OwnedRange(p)
			if !ok {
				if d.LocalSize(p) != 0 {
					t.Fatalf("%v: OwnedRange(%d) not ok but LocalSize %d", d, p, d.LocalSize(p))
				}
				continue
			}
			if hi-lo+1 != d.LocalSize(p) {
				t.Fatalf("%v: OwnedRange(%d) = [%d,%d] disagrees with LocalSize %d",
					d, p, lo, hi, d.LocalSize(p))
			}
			for g := lo; g <= hi; g++ {
				if d.Owner(g) != p {
					t.Fatalf("%v: g=%d in OwnedRange(%d) but Owner = %d", d, g, p, d.Owner(g))
				}
			}
		}
	}
}

// bruteLoopCount counts iterations of lo:hi:step owned by p directly.
func bruteLoopCount(d DimDist, p, lo, hi, step int) int {
	n := 0
	if step > 0 {
		for g := lo; g <= hi; g += step {
			if g >= d.Lo && g <= d.Hi && d.Owner(g) == p {
				n++
			}
		}
	} else if step < 0 {
		for g := lo; g >= hi; g += step {
			if g >= d.Lo && g <= d.Hi && d.Owner(g) == p {
				n++
			}
		}
	}
	return n
}

func TestPropertyLoopCountOwnerComputes(t *testing.T) {
	// Owner-computes partitioning must cover each loop iteration exactly
	// once: per-processor LoopCounts match brute force, sum to the serial
	// trip count, and MaxLoopCount bounds (and is attained by) the most
	// loaded processor. This is the load-balance quantity the interpreter
	// charges (max-loaded processor under loose synchrony).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		d := randDist(rng)
		// Random loop bounds straddling (and sometimes exceeding) the dim.
		lo := d.Lo + rng.Intn(d.Extent()+4) - 2
		hi := lo + rng.Intn(d.Extent()+4) - 2
		step := 1
		switch rng.Intn(4) {
		case 1:
			step = 1 + rng.Intn(3)
		case 2:
			step = -1 - rng.Intn(3)
			lo, hi = hi, lo
		}

		serial := 0
		if step > 0 {
			for g := lo; g <= hi; g += step {
				if g >= d.Lo && g <= d.Hi {
					serial++
				}
			}
		} else {
			for g := lo; g >= hi; g += step {
				if g >= d.Lo && g <= d.Hi {
					serial++
				}
			}
		}

		sum, maxSeen := 0, 0
		for p := 0; p < d.procCount(); p++ {
			got := d.LoopCount(p, lo, hi, step)
			want := bruteLoopCount(d, p, lo, hi, step)
			if got != want {
				t.Fatalf("%v: LoopCount(p=%d, %d:%d:%d) = %d, brute force %d",
					d, p, lo, hi, step, got, want)
			}
			if got > maxSeen {
				maxSeen = got
			}
			sum += got
		}
		if sum != serial {
			t.Fatalf("%v: loop %d:%d:%d iterations covered %d times, serial count %d",
				d, lo, hi, step, sum, serial)
		}
		if mx := d.MaxLoopCount(lo, hi, step); mx != maxSeen {
			t.Fatalf("%v: MaxLoopCount(%d:%d:%d) = %d, attained max %d",
				d, lo, hi, step, mx, maxSeen)
		}
	}
}

func TestPropertyGridRankCoordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		ndim := 1 + rng.Intn(3)
		shape := make([]int, ndim)
		for i := range shape {
			shape[i] = 1 + rng.Intn(5)
		}
		g, err := NewGrid("P", shape...)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < g.Size(); r++ {
			c := g.Coords(r)
			if back := g.Rank(c); back != r {
				t.Fatalf("grid %v: Rank(Coords(%d)) = %d", shape, r, back)
			}
		}
	}
}
