// Package hpfclient is the Go client for the hpfserve HTTP API. It
// wraps the /v1 endpoints with context-aware retries: transient
// failures — network errors, 429 shed responses, 503 overload/breaker
// rejections, 502s from intermediaries — are retried with full-jitter
// exponential backoff, honoring the server's Retry-After header when
// present. Permanent failures (4xx client errors, 500 internal
// errors, 504 deadline expiries) surface immediately as *APIError.
package hpfclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hpfperf/internal/server"
)

// Re-exported request/response types so callers need not import the
// internal server package (which they cannot, from outside the module).
type (
	// PredictRequest is the body of POST /v1/predict.
	PredictRequest = server.PredictRequest
	// PredictResponse is the body of a successful predict call.
	PredictResponse = server.PredictResponse
	// PredictOptions selects the model options of one request.
	PredictOptions = server.PredictOptions
	// MeasureRequest is the body of POST /v1/measure.
	MeasureRequest = server.MeasureRequest
	// MeasureResponse is the body of a successful measure call.
	MeasureResponse = server.MeasureResponse
	// AutotuneRequest is the body of POST /v1/autotune.
	AutotuneRequest = server.AutotuneRequest
	// AutotuneResponse is the body of a successful autotune call.
	AutotuneResponse = server.AutotuneResponse
	// AnalyzeRequest is the body of POST /v1/analyze.
	AnalyzeRequest = server.AnalyzeRequest
	// AnalyzeResponse is the body of a successful analyze call.
	AnalyzeResponse = server.AnalyzeResponse
	// BatchRequest is the body of POST /v1/batch.
	BatchRequest = server.BatchRequest
	// BatchPoint is one predict-or-measure point of a batch.
	BatchPoint = server.BatchPoint
	// BatchResponse is the body of a successful batch call.
	BatchResponse = server.BatchResponse
	// BatchResult is one point's outcome within a batch response.
	BatchResult = server.BatchResult
	// BatchPointError is the isolated failure object of one batch point.
	BatchPointError = server.BatchPointError
	// HealthResponse is the body of GET /healthz.
	HealthResponse = server.HealthResponse
	// TracesResponse is the body of GET /v1/traces.
	TracesResponse = server.TracesResponse
)

// APIError is a non-2xx response from hpfserve.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Stage is the server-reported pipeline stage ("compile",
	// "overload", "transient", ...). Empty when the body was not a
	// structured error.
	Stage string
	// Message is the server-reported error text.
	Message string

	// retryAfter is the server-advertised Retry-After wait (0 = none);
	// advice for the retry loop, not part of the error's identity.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("hpfserve: %d (%s): %s", e.Status, e.Stage, e.Message)
	}
	return fmt.Sprintf("hpfserve: %d: %s", e.Status, e.Message)
}

// Temporary reports whether the request is worth retrying: the server
// shed it (429), refused it while overloaded or draining (503), or an
// intermediary failed (502). 500s are real pipeline failures and 504s
// already consumed the request's deadline, so neither is temporary.
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// RetryPolicy bounds the client-side retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// 0 means DefaultRetryPolicy's value; 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (full jitter).
	BaseDelay time.Duration
	// MaxDelay caps both the computed backoff and any server-advertised
	// Retry-After wait.
	MaxDelay time.Duration
	// MaxElapsed is the total retry budget measured from the first
	// attempt: once exceeded, no further retry is scheduled and the
	// last error returns. 0 means DefaultRetryPolicy's value; negative
	// disables the budget (attempts alone bound the loop).
	MaxElapsed time.Duration
}

// DefaultRetryPolicy retries up to 4 attempts with 100ms..2s backoff
// inside a 15s total budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		MaxElapsed:  15 * time.Second,
	}
}

func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = d.MaxDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.MaxElapsed == 0 {
		p.MaxElapsed = d.MaxElapsed
	}
	if p.MaxElapsed < 0 {
		p.MaxElapsed = 0 // negative sentinel: no total budget
	}
	return p
}

// backoff returns a full-jitter delay for the given retry (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	max := p.BaseDelay << uint(retry-1)
	if max > p.MaxDelay || max <= 0 {
		max = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(max)) + 1)
}

// Config configures a Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport (nil = a client with a 60s timeout).
	HTTPClient *http.Client
	// Retry bounds the retry loop (zero value = DefaultRetryPolicy).
	Retry RetryPolicy
	// Trace opts every request into server-side tracing (the X-HPF-Trace
	// header): responses carry their span tree in the trace field.
	Trace bool
}

// Client talks to one hpfserve instance.
type Client struct {
	base  string
	hc    *http.Client
	sc    *http.Client // hc without the overall timeout, for SSE streams
	retry RetryPolicy
	trace bool
}

// New returns a client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	// http.Client.Timeout covers the whole body read, which would cut a
	// long-lived event stream mid-job; streaming uses the same transport
	// without it (the stream is bounded by ctx and server heartbeats).
	sc := &http.Client{
		Transport:     hc.Transport,
		CheckRedirect: hc.CheckRedirect,
		Jar:           hc.Jar,
	}
	return &Client{
		base:  strings.TrimRight(cfg.BaseURL, "/"),
		hc:    hc,
		sc:    sc,
		retry: cfg.Retry.normalized(),
		trace: cfg.Trace,
	}
}

// Predict calls POST /v1/predict.
func (c *Client) Predict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	var resp PredictResponse
	if err := c.do(ctx, "/v1/predict", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Measure calls POST /v1/measure.
func (c *Client) Measure(ctx context.Context, req *MeasureRequest) (*MeasureResponse, error) {
	var resp MeasureResponse
	if err := c.do(ctx, "/v1/measure", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Autotune calls POST /v1/autotune.
func (c *Client) Autotune(ctx context.Context, req *AutotuneRequest) (*AutotuneResponse, error) {
	var resp AutotuneResponse
	if err := c.do(ctx, "/v1/autotune", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch calls POST /v1/batch: many predict/measure points in one
// request. Points sharing a source share one compile on the server,
// the whole batch passes cost admission in a single decision, and each
// point fails in isolation (inspect per-point Error objects in the
// results — a non-nil error here means the batch itself was refused).
func (c *Client) Batch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, "/v1/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Analyze calls POST /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.do(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health calls GET /healthz. A draining server answers 503 with a
// valid body; that is returned as a response, not an error.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer drain(hresp.Body)
	var out HealthResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("healthz: decoding %d response: %w", hresp.StatusCode, err)
	}
	return &out, nil
}

// Traces calls GET /v1/traces: the server's ring of recent request
// traces, newest first. Against an hpfserve daemon the endpoint lives
// on the -debug-addr listener, not the API address — point BaseURL
// there (embedded servers may opt into server.Config.ExposeTraces
// instead).
func (c *Client) Traces(ctx context.Context) (*TracesResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/traces", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer drain(hresp.Body)
	lr := io.LimitReader(hresp.Body, 8<<20)
	if hresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(lr)
		return nil, &APIError{Status: hresp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	var out TracesResponse
	if err := json.NewDecoder(lr).Decode(&out); err != nil {
		return nil, fmt.Errorf("traces: decoding response: %w", err)
	}
	return &out, nil
}

// do POSTs req as JSON to path, retrying temporary failures, and
// decodes a 200 body into out.
func (c *Client) do(ctx context.Context, path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encoding request: %w", err)
	}
	start := time.Now()
	var last error
	for attempt := 1; ; attempt++ {
		last = c.once(ctx, path, body, out)
		if last == nil || attempt >= c.retry.MaxAttempts || !retryable(last) {
			return last
		}
		wait := c.retry.backoff(attempt)
		var ae *APIError
		if errors.As(last, &ae) && ae.retryAfter > 0 {
			// Honor the server's advice, plus up to 25% additive jitter
			// so a herd shed at the same instant does not return in
			// lockstep, still capped by MaxDelay.
			wait = ae.retryAfter + time.Duration(rand.Int64N(int64(ae.retryAfter)/4+1))
			if wait > c.retry.MaxDelay {
				wait = c.retry.MaxDelay
			}
		}
		// A sleep that overruns the total retry budget or the request
		// deadline cannot lead to another attempt; return now instead
		// of burning the caller's time.
		if c.retry.MaxElapsed > 0 && time.Since(start)+wait > c.retry.MaxElapsed {
			return last
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= wait {
			return last
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return last
		}
	}
}

func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.trace {
		hreq.Header.Set("X-HPF-Trace", "1")
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		// Network-level failure: retryable unless the context ended.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &netError{err: err}
	}
	defer drain(hresp.Body)
	lr := io.LimitReader(hresp.Body, 8<<20)
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(lr).Decode(out); err != nil {
			return fmt.Errorf("decoding response: %w", err)
		}
		return nil
	}
	return readAPIError(hresp.StatusCode, parseRetryAfter(hresp.Header.Get("Retry-After")), lr)
}

// netError wraps a transport failure so the retry loop can tell it
// apart from encode/decode bugs (which retrying cannot fix).
type netError struct{ err error }

func (e *netError) Error() string   { return e.err.Error() }
func (e *netError) Unwrap() error   { return e.err }
func (e *netError) Temporary() bool { return true }

func retryable(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// parseRetryAfter reads a Retry-After header value: integer seconds or
// an HTTP date. Returns 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func drain(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	_ = rc.Close()
}
