// Quickstart: compile an HPF/Fortran 90D program, predict its performance
// on the abstracted iPSC/860 through the interpretive framework, then
// verify against the simulated machine's measurement.
package main

import (
	"fmt"
	"log"

	"hpfperf"
)

const src = `PROGRAM quickstart
PARAMETER (N = 1024)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) B(K) = REAL(K) * 0.001
FORALL (K=2:N-1) A(K) = 0.5*(B(K-1) + B(K+1))
S = SUM(A)
PRINT *, S
END`

func main() {
	// Phase 1: parse, partition, sequentialize, detect communication.
	prog, err := hpfperf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s for %d processors\n", prog.Name(), prog.Processors())
	fmt.Println("data mappings:")
	for _, m := range prog.Mappings() {
		fmt.Println("  " + m)
	}

	// Phase 2: source-driven performance interpretation — no execution.
	pred, err := hpfperf.Predict(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(pred.Profile())
	fmt.Println()
	fmt.Println("communication table:")
	fmt.Print(pred.CommTable())

	// Validate against the simulated iPSC/860 ("measured" time).
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Runs: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("measured on the simulated iPSC/860: %.6fs\n", meas.Seconds())
	fmt.Printf("prediction error: %+.2f%%\n",
		(pred.Microseconds()-meas.Microseconds())/meas.Microseconds()*100)
	fmt.Printf("program output: %v\n", meas.Printed())
}
