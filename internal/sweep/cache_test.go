package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/ipsc"
)

// tinySource generates a distinct-but-valid program per n so churn tests
// can exercise eviction with thousands of unique cache keys cheaply.
func tinySource(n int) string {
	return fmt.Sprintf(`      PROGRAM T%d
!HPF$ PROCESSORS P(4)
      REAL A(%d)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
      A = %d.0
      PRINT *, A(1)
      END PROGRAM T%d
`, n, 32+n%8, n, n)
}

func TestCacheBoundedUnderChurn(t *testing.T) {
	// Acceptance criterion: memory stays bounded when 10k distinct
	// sources stream through a small cache, and evictions are counted.
	const cap = 64
	const distinct = 10000
	c := NewCacheSize(cap)
	var stats Stats
	ctx := context.Background()
	for i := 0; i < distinct; i++ {
		if _, err := c.Compile(ctx, tinySource(i), compiler.Options{}, &stats); err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
	}
	cs := c.CacheStats()
	if cs.CompileEntries > cap {
		t.Errorf("compile entries = %d, exceeds cap %d", cs.CompileEntries, cap)
	}
	if cs.CompileEntries != cap {
		t.Errorf("compile entries = %d, want full cache %d", cs.CompileEntries, cap)
	}
	if want := int64(distinct - cap); cs.CompileEvictions != want {
		t.Errorf("compile evictions = %d, want %d", cs.CompileEvictions, want)
	}
	if got := stats.Compiles.Load(); got != distinct {
		t.Errorf("compiles = %d, want %d (every source distinct)", got, distinct)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// With cap 2: insert A, B, touch A, insert C -> B (least recent) is
	// evicted, A and C survive and hit.
	c := NewCacheSize(2)
	var stats Stats
	ctx := context.Background()
	srcA, srcB, srcC := tinySource(1), tinySource(2), tinySource(3)

	for _, src := range []string{srcA, srcB, srcA, srcC} {
		if _, err := c.Compile(ctx, src, compiler.Options{}, &stats); err != nil {
			t.Fatal(err)
		}
	}
	// 3 misses (A, B, C) + 1 hit (A's second lookup).
	if got := stats.CompileMisses.Load(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
	if got := stats.CompileHits.Load(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}

	// A and C should still be cached; B was evicted and recompiles.
	before := stats.Compiles.Load()
	c.Compile(ctx, srcA, compiler.Options{}, &stats)
	c.Compile(ctx, srcC, compiler.Options{}, &stats)
	if got := stats.Compiles.Load(); got != before {
		t.Errorf("A/C lookups recompiled (%d -> %d); LRU touch not honored", before, got)
	}
	c.Compile(ctx, srcB, compiler.Options{}, &stats)
	if got := stats.Compiles.Load(); got != before+1 {
		t.Errorf("B lookup after eviction: compiles %d -> %d, want +1", before, got)
	}
	if ev := c.CacheStats().CompileEvictions; ev < 1 {
		t.Errorf("evictions = %d, want >= 1", ev)
	}
}

func TestReportCacheBoundedUnderChurn(t *testing.T) {
	const cap = 16
	c := NewCacheSize(cap)
	var stats Stats
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := c.Interpret(ctx, tinySource(i), compiler.Options{}, core.DefaultOptions(), "", &stats); err != nil {
			t.Fatalf("interpret %d: %v", i, err)
		}
	}
	cs := c.CacheStats()
	if cs.ReportEntries > cap {
		t.Errorf("report entries = %d, exceeds cap %d", cs.ReportEntries, cap)
	}
	if want := int64(100 - cap); cs.ReportEvictions != want {
		t.Errorf("report evictions = %d, want %d", cs.ReportEvictions, want)
	}
}

func TestCompileWaiterHonorsContext(t *testing.T) {
	// A waiter whose context is already cancelled must not park on a
	// builder that never finishes. Simulate by inserting a never-done
	// entry the way a concurrent builder would hold it.
	c := NewCacheSize(8)
	src := tinySource(0)
	key := compileKey(src, compiler.Options{})
	e := &compileEntry{done: make(chan struct{})} // never closed
	c.mu.Lock()
	e.elem = c.compileLRU.PushFront(key)
	c.compiles[key] = e
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compile(ctx, src, compiler.Options{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("waiter did not honor its context promptly")
	}
}

func TestCancelledInterpretNotCached(t *testing.T) {
	// An interpret whose build is cancelled mid-way must not leave a
	// poisoned ctx-error entry: the next request with a live context
	// should rebuild and succeed.
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(7)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Interpret(ctx, src, compiler.Options{}, core.DefaultOptions(), "", &stats)
	if err == nil {
		t.Fatal("want error from cancelled interpret")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	rep, err := c.Interpret(context.Background(), src, compiler.Options{}, core.DefaultOptions(), "", &stats)
	if err != nil {
		t.Fatalf("retry after cancellation: %v (poisoned cache?)", err)
	}
	if rep == nil || rep.TotalUS() <= 0 {
		t.Fatalf("retry produced no report")
	}
}

func TestCompilePanicBecomesError(t *testing.T) {
	// recoverToErr must turn a front-end panic into an error and still
	// close the single-flight channel (a second lookup returns the same
	// cached error instead of hanging).
	c := NewCacheSize(8)
	var stats Stats
	// A NUL byte makes the scanner's column arithmetic safe but exercises
	// robustness; if nothing in the pipeline panics on this input the test
	// still verifies error (not hang) semantics end to end.
	src := "      PROGRAM P\n\x00\x00\xff garbage \n      END\n"
	done := make(chan struct{})
	var err1, err2 error
	go func() {
		defer close(done)
		_, err1 = c.Compile(context.Background(), src, compiler.Options{}, &stats)
		_, err2 = c.Compile(context.Background(), src, compiler.Options{}, &stats)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("compile hung on malformed input")
	}
	if err1 == nil || err2 == nil {
		t.Fatalf("errs = %v / %v, want errors for garbage input", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("second lookup returned different error: %v vs %v", err1, err2)
	}
}

func TestMapCtxCancellation(t *testing.T) {
	// Cancelling mid-sweep stops feeding new items and returns the
	// context error rather than running all n points.
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	_, err := MapCtx(ctx, e, 1000, func(i int) (int, error) {
		select {
		case started <- struct{}{}:
			cancel()
		default:
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestInterpretMachineKeyedSeparately(t *testing.T) {
	// The same source on two machine abstractions must produce two
	// distinct cached reports, not one shadowing the other.
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(5)
	ctx := context.Background()
	r1, err := c.Interpret(ctx, src, compiler.Options{}, core.DefaultOptions(), "", &stats)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Interpret(ctx, src, compiler.Options{}, core.DefaultOptions(), "paragon", &stats)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalUS() == r2.TotalUS() {
		t.Errorf("iPSC/860 and Paragon predictions identical (%v us); machine missing from key?", r1.TotalUS())
	}
	if got := stats.ReportMisses.Load(); got != 2 {
		t.Errorf("report misses = %d, want 2 (distinct keys)", got)
	}
}

func TestInterpFingerprintUncacheableCommLibrary(t *testing.T) {
	opts := core.DefaultOptions()
	if _, ok := interpFingerprint(opts); !ok {
		t.Fatal("default options should be fingerprintable")
	}
	opts.CommLibrary = &ipsc.CommLibrary{}
	if _, ok := interpFingerprint(opts); ok {
		t.Fatal("injected CommLibrary must not be fingerprintable")
	}
}

func TestSnapshotIncludesEvictions(t *testing.T) {
	// Engine snapshot and cache stats stay consistent after churn.
	eng := New(Options{Workers: 2, Cache: NewCacheSize(4)})
	for i := 0; i < 12; i++ {
		if _, err := eng.CompileContext(context.Background(), tinySource(i), compiler.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	cs := eng.Cache().CacheStats()
	if cs.CompileEntries != 4 || cs.CompileEvictions != 8 {
		t.Errorf("entries/evictions = %d/%d, want 4/8", cs.CompileEntries, cs.CompileEvictions)
	}
	snap := eng.Snapshot()
	if snap.Compiles != 12 {
		t.Errorf("compiles = %d, want 12", snap.Compiles)
	}
	if !strings.Contains(snap.String(), "compile") {
		t.Errorf("snapshot string missing stage names: %s", snap)
	}
}

func TestMeasureCachedDeterministic(t *testing.T) {
	// Two identical measure requests run the simulator once and share
	// the result; changing any spec field is a distinct key.
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(3)
	spec := DefaultMeasureSpec(1, 0.01)

	r1, err := c.Measure(context.Background(), src, compiler.Options{}, spec, &stats)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Measure(context.Background(), src, compiler.Options{}, spec, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical specs did not share one cached result")
	}
	if got := stats.Execs.Load(); got != 1 {
		t.Errorf("execs = %d, want 1", got)
	}
	if stats.ExecHits.Load() != 1 || stats.ExecMisses.Load() != 1 {
		t.Errorf("exec cache = %d hit / %d miss, want 1/1",
			stats.ExecHits.Load(), stats.ExecMisses.Load())
	}

	reseeded := spec
	reseeded.Seed++
	r3, err := c.Measure(context.Background(), src, compiler.Options{}, reseeded, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different seeds shared one cache entry")
	}
	if got := stats.Execs.Load(); got != 2 {
		t.Errorf("execs after reseed = %d, want 2", got)
	}
}

func TestMeasureRunsNormalizedBeforeKeying(t *testing.T) {
	// runs <= 0 means one timed run everywhere; the zero and one forms
	// must land on the same cache entry.
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(4)
	r1, err := c.Measure(context.Background(), src, compiler.Options{}, DefaultMeasureSpec(0, 0), &stats)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Measure(context.Background(), src, compiler.Options{}, DefaultMeasureSpec(1, 0), &stats)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("runs=0 and runs=1 produced distinct cache entries")
	}
}

func TestCancelledMeasureNotCached(t *testing.T) {
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Measure(ctx, src, compiler.Options{}, DefaultMeasureSpec(1, 0), &stats); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, err := c.Measure(context.Background(), src, compiler.Options{}, DefaultMeasureSpec(1, 0), &stats)
	if err != nil {
		t.Fatalf("retry after cancellation: %v (poisoned cache?)", err)
	}
	if res == nil || res.MeasuredUS <= 0 {
		t.Fatal("retry produced no measurement")
	}
}

func TestCompiledPredictionSharedAcrossValues(t *testing.T) {
	// The compiled form is keyed by static options only: requests that
	// differ in Values/TripCounts share one form and miss only the
	// report cache, exercising the incremental EvaluateWith path.
	c := NewCacheSize(16)
	var stats Stats
	src := tinySource(6)

	a := core.DefaultOptions()
	if _, err := c.Interpret(context.Background(), src, compiler.Options{}, a, "", &stats); err != nil {
		t.Fatal(err)
	}
	b := core.DefaultOptions()
	b.TripCounts = map[int]int{5: 9}
	if _, err := c.Interpret(context.Background(), src, compiler.Options{}, b, "", &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.ReportMisses.Load(); got != 2 {
		t.Errorf("report misses = %d, want 2 (distinct dynamic options)", got)
	}
	if stats.PredictMisses.Load() != 1 || stats.PredictHits.Load() != 1 {
		t.Errorf("predict cache = %d hit / %d miss, want 1/1 (one shared form)",
			stats.PredictHits.Load(), stats.PredictMisses.Load())
	}
}

func TestCacheInterpretMatchesTreeWalk(t *testing.T) {
	// The cached compiled-form evaluation must be byte-identical to a
	// fresh tree-walking interpretation of the same program.
	c := NewCacheSize(8)
	var stats Stats
	src := tinySource(8)
	rep, err := c.Interpret(context.Background(), src, compiler.Options{}, core.DefaultOptions(), "", &stats)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it, err := core.New(prog, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := it.InterpretTree()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != ref.Total || rep.TotalUS() != ref.TotalUS() {
		t.Errorf("cached compiled report diverges: %+v vs tree-walk %+v", rep.Total, ref.Total)
	}
}
