package e2e

// Jobs-surface gap coverage: terminal-DELETE idempotence, listing-order
// determinism across journal compaction and restart, streaming waiters
// under server drain, and an SSE fan-out soak (sized up in nightly CI
// via HPFPERF_SSE_STREAMS).

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"hpfperf/hpfclient"
	"hpfperf/internal/jobs"
	"hpfperf/internal/server"
)

// newJobsHarnessAt is newJobsHarness with a caller-owned jobs dir and
// config, for restart tests that reopen the same WAL.
func newJobsHarnessAt(t *testing.T, jcfg jobs.Config) *harness {
	t.Helper()
	h := newHarness(t, server.Config{}, hpfclient.Config{})
	if err := h.srv.OpenJobs(jcfg); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	return h
}

func drainJobs(t *testing.T, h *harness) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Jobs().Drain(ctx); err != nil {
		t.Fatalf("jobs drain: %v", err)
	}
}

// TestCancelTerminalJobIdempotent: DELETE on an already-terminal job is
// a 200 no-op returning the unchanged terminal state — twice.
func TestCancelTerminalJobIdempotent(t *testing.T) {
	h := newJobsHarness(t)
	ctx := context.Background()

	sub, err := h.cli.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
		Kind:    hpfclient.JobKindPredict,
		Predict: &hpfclient.PredictRequest{Source: laplace()},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done, err := h.cli.WaitJob(ctx, sub.Job.ID, hpfclient.PollPolicy{Interval: 10 * time.Millisecond})
	if err != nil || done.State != jobs.StateDone {
		t.Fatalf("wait: %+v %v", done, err)
	}
	for i := 0; i < 2; i++ {
		v, err := h.cli.CancelJob(ctx, sub.Job.ID)
		if err != nil {
			t.Fatalf("cancel #%d on terminal job: %v", i+1, err)
		}
		if v.State != jobs.StateDone || v.CancelRequested {
			t.Fatalf("cancel #%d mutated the job: %+v", i+1, v)
		}
		if string(v.Result) != string(done.Result) {
			t.Fatalf("cancel #%d changed the result payload", i+1)
		}
	}
}

// TestJobListOrderStableAcrossCompaction: the jobs listing must come
// back in the same order after the journal compacts and the server
// restarts on the rewritten WAL — newest first, ID as the tiebreak.
func TestJobListOrderStableAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment bound forces compaction on nearly every append.
	h := newJobsHarnessAt(t, jobs.Config{Dir: dir, MaxJournalBytes: 512})
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		sub, err := h.cli.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
			Kind:    hpfclient.JobKindPredict,
			Predict: &hpfclient.PredictRequest{Source: laplace()},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := h.cli.WaitJob(ctx, sub.Job.ID, hpfclient.PollPolicy{Interval: 5 * time.Millisecond}); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if h.srv.Jobs().Metrics().Compactions == 0 {
		t.Fatal("journal never compacted; the test exercises nothing")
	}
	before, err := h.cli.Jobs(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(before.Jobs) != 5 {
		t.Fatalf("listed %d jobs, want 5", len(before.Jobs))
	}
	drainJobs(t, h)

	// Restart: replay the compacted WAL and list again.
	h2 := newJobsHarnessAt(t, jobs.Config{Dir: dir, MaxJournalBytes: 512})
	defer drainJobs(t, h2)
	after, err := h2.cli.Jobs(ctx)
	if err != nil {
		t.Fatalf("list after restart: %v", err)
	}
	if len(after.Jobs) != len(before.Jobs) {
		t.Fatalf("restart changed the listing length: %d -> %d", len(before.Jobs), len(after.Jobs))
	}
	for i := range before.Jobs {
		if before.Jobs[i].ID != after.Jobs[i].ID {
			t.Fatalf("position %d: %s before restart, %s after", i, before.Jobs[i].ID, after.Jobs[i].ID)
		}
		if !before.Jobs[i].SubmittedAt.Equal(after.Jobs[i].SubmittedAt) {
			t.Fatalf("job %s: submitted_at drifted across compaction", before.Jobs[i].ID)
		}
	}
}

// TestWaitJobNoLeakUnderDrain: a streaming waiter whose server drains
// mid-job must unwind — no goroutine may survive the wait's context.
func TestWaitJobNoLeakUnderDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	h := newJobsHarnessAt(t, jobs.Config{Dir: t.TempDir()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sub, err := h.cli.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
		Kind:     hpfclient.JobKindValidate,
		Validate: &hpfclient.ValidateJobRequest{Seed: 5, Count: 400},
		Options:  &hpfclient.JobOptions{FlushEvery: 1},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	waitDone := make(chan error, 1)
	go func() {
		_, err := h.cli.WaitJob(ctx, sub.Job.ID, hpfclient.PollPolicy{Interval: 20 * time.Millisecond})
		waitDone <- err
	}()

	// Let the stream attach, then drain the jobs layer out from under
	// it. The job hands off (state back to submitted), so the waiter
	// degrades to polling a job that will never finish this generation —
	// cancelling the context must still unwind it completely.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := h.cli.Job(ctx, sub.Job.ID)
		if err != nil {
			t.Fatalf("job status: %v", err)
		}
		if v.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainJobs(t, h)
	cancel()
	select {
	case err := <-waitDone:
		if err == nil {
			t.Fatal("WaitJob returned nil after drain+cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitJob still blocked after drain+cancel")
	}

	h.ts.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after drained wait\n%s",
				before, runtime.NumGoroutine(), firstLines(string(buf[:n]), 80))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSSESoak opens many concurrent streaming waiters over a handful of
// jobs and requires every one to observe the terminal state and unwind.
// Nightly CI sizes it up with HPFPERF_SSE_STREAMS; the default keeps
// the inner-loop run light.
func TestSSESoak(t *testing.T) {
	streams := 8
	if v := os.Getenv("HPFPERF_SSE_STREAMS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("HPFPERF_SSE_STREAMS=%q: %v", v, err)
		}
		streams = n
	}
	before := runtime.NumGoroutine()
	h := newJobsHarnessAt(t, jobs.Config{Dir: t.TempDir(), MaxSubscribers: streams})
	ctx := context.Background()

	const njobs = 4
	ids := make([]string, njobs)
	for i := range ids {
		sub, err := h.cli.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
			Kind:     hpfclient.JobKindValidate,
			Validate: &hpfclient.ValidateJobRequest{Seed: int64(i + 1), Count: 20},
			Options:  &hpfclient.JobOptions{FlushEvery: 5},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = sub.Job.ID
	}

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := h.cli.WatchJob(ctx, ids[i%njobs], hpfclient.PollPolicy{Interval: 20 * time.Millisecond}, nil)
			if err != nil {
				errs <- err
				return
			}
			if v.State != jobs.StateDone {
				errs <- &hpfclient.APIError{Message: "job " + v.ID + " ended " + string(v.State)}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak waiter: %v", err)
	}

	drainJobs(t, h)
	h.ts.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after soak\n%s",
				before, runtime.NumGoroutine(), firstLines(string(buf[:n]), 80))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
