package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/suite"
)

// FuzzAnalyze runs every analysis pass (including the definition tracer's
// fixpoint) over arbitrary compilable input, asserting the analyzer never
// panics, terminates within its budget, and emits only well-formed
// diagnostics. Inputs that fail to compile are simply skipped — hpflint
// reports those as HPF0000 without ever reaching the passes.
func FuzzAnalyze(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("seed %s: %v", p, err)
		}
		f.Add(string(b))
	}
	for _, prog := range suite.All() {
		f.Add(prog.Source(prog.Sizes[0], prog.Procs[0]))
	}
	// Shapes that stress individual passes: deep loop nests (trace budget),
	// zero-trip loops, self-referential bounds, whole-array shifts.
	f.Add("PROGRAM P\nREAL A(8)\nM = 0\nDO K = 1, 4\nM = M + 1\nEND DO\nDO I = 1, M\nX = X + 1.0\nEND DO\nEND\n")
	f.Add("PROGRAM P\nREAL A(8), B(8)\nB = CSHIFT(A, 2)\nDO I = 10, 1\nX = 1.0\nEND DO\nEND\n")
	f.Add("PROGRAM P\nREAL A(8)\nFORALL (I=2:7) A(I) = A(I-1)\nEND\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := compiler.Compile(src)
		if err != nil {
			return
		}
		for _, d := range Analyze(prog) {
			if d.Code == "" || d.Pass == "" || d.Message == "" {
				t.Fatalf("malformed diagnostic %+v", d)
			}
			if d.Line < 0 {
				t.Fatalf("diagnostic with negative line: %+v", d)
			}
			if s := d.Severity; s != SevInfo && s != SevWarning && s != SevError {
				t.Fatalf("diagnostic with invalid severity: %+v", d)
			}
		}
	})
}
