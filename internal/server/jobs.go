// Async job surfaces: POST /v1/jobs submits a long-running request
// (predict, autotune, corpus validation or a paper experiment) into the
// durable jobs subsystem (package jobs); GET /v1/jobs/{id} polls it,
// DELETE /v1/jobs/{id} cancels it. Jobs survive SIGKILL: a restarted
// server replays the journal and resumes each in-flight job from its
// last sweep checkpoint, producing byte-identical final output.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hpfperf/internal/autotune"
	"hpfperf/internal/corpus"
	"hpfperf/internal/experiments"
	"hpfperf/internal/jobs"
	"hpfperf/internal/obs"
	"hpfperf/internal/report"
	"hpfperf/internal/sweep"
	"hpfperf/internal/sysmodel"
)

// Job kinds accepted by POST /v1/jobs.
const (
	JobKindPredict    = "predict"
	JobKindAutotune   = "autotune"
	JobKindValidate   = "validate"
	JobKindExperiment = "experiment"
)

// JobSubmitRequest is the body of POST /v1/jobs: a kind selector, the
// matching sub-request, and job options. The whole body is journaled as
// the job's payload, so it must stay self-describing.
type JobSubmitRequest struct {
	// Kind selects the work: "predict", "autotune", "validate"
	// (generated-corpus differential validation) or "experiment" (a
	// paper artifact sweep).
	Kind string `json:"kind"`
	// Options tune the job's durability behavior.
	Options *JobOptions `json:"options,omitempty"`

	Predict    *PredictRequest       `json:"predict,omitempty"`
	Autotune   *AutotuneRequest      `json:"autotune,omitempty"`
	Validate   *ValidateJobRequest   `json:"validate,omitempty"`
	Experiment *ExperimentJobRequest `json:"experiment,omitempty"`
}

// JobOptions are the submitter-visible jobs.Options.
type JobOptions struct {
	// FlushEvery bounds completed sweep points between durable
	// checkpoint writes (0 = every point).
	FlushEvery int `json:"flush_every,omitempty"`
}

// ValidateJobRequest runs the corpus differential-validation harness
// over Count generated programs.
type ValidateJobRequest struct {
	// Seed selects the deterministic corpus (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Count is the number of programs to generate and validate
	// (required, capped at 500).
	Count int `json:"count"`
	// Family restricts generation to one kernel family ("" = all).
	Family string `json:"family,omitempty"`
}

// ExperimentJobRequest regenerates one paper artifact.
type ExperimentJobRequest struct {
	// Artifact names the figure or table: "table2", "fig4", "fig5",
	// "fig7" or "fig8".
	Artifact string `json:"artifact"`
	// Quick restricts the sweep to the smoke-test subset.
	Quick bool `json:"quick,omitempty"`
	// Runs overrides the measured-run average count (0 = config default).
	Runs int `json:"runs,omitempty"`
}

// JobSubmitResponse is the body of a successful job submission.
type JobSubmitResponse struct {
	ResponseMeta
	Job jobs.JobView `json:"job"`
}

// JobListResponse is the body of GET /v1/jobs.
type JobListResponse struct {
	Jobs []jobs.JobView `json:"jobs"`
}

// ValidateJobResult is the terminal result of a "validate" job.
type ValidateJobResult struct {
	Report *corpus.Report `json:"report"`
}

// ExperimentJobResult is the terminal result of an "experiment" job.
type ExperimentJobResult struct {
	Artifact string `json:"artifact"`
	Output   string `json:"output"`
}

// OpenJobs attaches the durable async job subsystem: the journal in
// cfg.Dir is replayed (resuming any job a previous process left
// running), and the /v1/jobs surfaces registered by New start serving.
// Unless overridden, cfg.Exec is the server's own executor and cfg.Log
// the server's logger; traced job runs land in the /v1/traces ring.
// Call before serving traffic.
func (s *Server) OpenJobs(cfg jobs.Config) error {
	if cfg.Exec == nil {
		cfg.Exec = s.executeJob
	}
	if cfg.Log == nil && s.cfg.Log != nil {
		cfg.Log = s.cfg.Log
	}
	if cfg.OnTrace == nil {
		cfg.OnTrace = s.recordJobTrace
	}
	m, err := jobs.Open(cfg)
	if err != nil {
		return err
	}
	s.jobs = m
	return nil
}

// Jobs returns the attached job manager (nil when OpenJobs was not
// called).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// recordJobTrace feeds a finished job's span tree into the trace ring,
// so GET /v1/traces (or the debug listener) shows job executions next
// to synchronous requests.
func (s *Server) recordJobTrace(v jobs.JobView, tree *obs.Tree) {
	status := http.StatusOK
	if v.State == jobs.StateFailed {
		status = http.StatusInternalServerError
	}
	start := time.Now()
	if v.StartedAt != nil {
		start = *v.StartedAt
	}
	s.ring.Add(obs.TraceRecord{
		TraceID: tree.TraceID,
		Route:   "jobs:" + v.Kind,
		Status:  status,
		DurUS:   tree.DurUS,
		Start:   start,
		Tree:    tree,
	})
}

// handleJobSubmit is the POST /v1/jobs handler body (wrapped by api()).
func (s *Server) handleJobSubmit(_ context.Context, body []byte) (any, *apiError) {
	if s.jobs == nil {
		return nil, errf(http.StatusNotImplemented, "jobs", "async jobs are disabled (start hpfserve with -jobs-dir)")
	}
	var req JobSubmitRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if aerr := validateJobRequest(&req); aerr != nil {
		return nil, aerr
	}
	var opts jobs.Options
	if req.Options != nil {
		opts.FlushEvery = req.Options.FlushEvery
	}
	view, err := s.jobs.Submit(req.Kind, json.RawMessage(body), opts)
	if err != nil {
		if err == jobs.ErrDraining {
			return nil, errf(http.StatusServiceUnavailable, "overload", "server is draining")
		}
		return nil, errf(http.StatusInternalServerError, "jobs", "submitting job: %v", err)
	}
	return &JobSubmitResponse{Job: view}, nil
}

// validateJobRequest rejects malformed submissions before anything is
// journaled, so every journaled payload re-decodes at execution time.
func validateJobRequest(req *JobSubmitRequest) *apiError {
	bad := func(format string, args ...any) *apiError {
		return errf(http.StatusBadRequest, "decode", format, args...)
	}
	subs := 0
	for _, set := range []bool{req.Predict != nil, req.Autotune != nil, req.Validate != nil, req.Experiment != nil} {
		if set {
			subs++
		}
	}
	if subs > 1 {
		return bad("exactly one of predict/autotune/validate/experiment must be set")
	}
	switch req.Kind {
	case JobKindPredict:
		if req.Predict == nil {
			return bad(`kind "predict" requires the predict sub-request`)
		}
		if strings.TrimSpace(req.Predict.Source) == "" {
			return bad("predict.source is required")
		}
		if req.Predict.Machine != "" {
			if _, err := sysmodel.MachineByName(req.Predict.Machine); err != nil {
				return bad("%v", err)
			}
		}
	case JobKindAutotune:
		if req.Autotune == nil {
			return bad(`kind "autotune" requires the autotune sub-request`)
		}
		if strings.TrimSpace(req.Autotune.Source) == "" {
			return bad("autotune.source is required")
		}
		if req.Autotune.Procs <= 0 {
			return bad("autotune.procs must be positive")
		}
	case JobKindValidate:
		if req.Validate == nil {
			return bad(`kind "validate" requires the validate sub-request`)
		}
		if req.Validate.Count <= 0 || req.Validate.Count > 500 {
			return bad("validate.count must be in 1..500")
		}
		if req.Validate.Family != "" {
			if _, err := corpus.FamilyByName(req.Validate.Family); err != nil {
				return bad("%v", err)
			}
		}
	case JobKindExperiment:
		if req.Experiment == nil {
			return bad(`kind "experiment" requires the experiment sub-request`)
		}
		switch req.Experiment.Artifact {
		case "table2", "fig4", "fig5", "fig7", "fig8":
		default:
			return bad("experiment.artifact must be one of table2, fig4, fig5, fig7, fig8")
		}
	case "":
		return bad("kind is required")
	default:
		return bad("unknown job kind %q", req.Kind)
	}
	return nil
}

// jobMeta mints correlation headers for the GET/DELETE job surfaces
// (which sit outside the api() wrapper) and counts the request.
func (s *Server) jobMeta(w http.ResponseWriter, r *http.Request) reqMeta {
	meta := s.newMeta(r)
	meta.tracer = nil // status polls are not worth spanning
	w.Header().Set("X-HPF-Request-Id", meta.reqID)
	w.Header().Set("traceparent", obs.FormatTraceparent(meta.traceID))
	return meta
}

func (s *Server) jobsDisabled(w http.ResponseWriter, meta reqMeta) bool {
	if s.jobs != nil {
		return false
	}
	s.recordRequest(routeJobs, http.StatusNotImplemented)
	writeError(w, http.StatusNotImplemented, "jobs",
		fmt.Errorf("async jobs are disabled (start hpfserve with -jobs-dir)"), meta)
	return true
}

// handleJobList serves GET /v1/jobs: every retained job, newest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	meta := s.jobMeta(w, r)
	if s.jobsDisabled(w, meta) {
		return
	}
	s.recordRequest(routeJobs, http.StatusOK)
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

// handleJobGet serves GET /v1/jobs/{id}: one job's status snapshot.
// Non-terminal states advertise a poll interval via Retry-After.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	meta := s.jobMeta(w, r)
	if s.jobsDisabled(w, meta) {
		return
	}
	view, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.recordRequest(routeJobs, http.StatusNotFound)
		writeError(w, http.StatusNotFound, "jobs", err, meta)
		return
	}
	if !view.State.Terminal() {
		retryAfterHeader(w, time.Second)
	}
	s.recordRequest(routeJobs, http.StatusOK)
	writeJSON(w, http.StatusOK, view)
}

// handleJobCancel serves DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	meta := s.jobMeta(w, r)
	if s.jobsDisabled(w, meta) {
		return
	}
	view, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.recordRequest(routeJobs, http.StatusNotFound)
		writeError(w, http.StatusNotFound, "jobs", err, meta)
		return
	}
	s.recordRequest(routeJobs, http.StatusOK)
	writeJSON(w, http.StatusOK, view)
}

// executeJob is the server's jobs.Executor: it re-decodes the journaled
// submission and runs the matching pipeline on the shared sweep engine,
// threading the job's private checkpoint directory and the Progress
// journal hook through the sweep checkpoint machinery. Results exclude
// wall-clock fields (ElapsedUS stays zero), which is what keeps a
// crash-recovered job byte-identical to an uninterrupted one.
func (s *Server) executeJob(ctx context.Context, job jobs.JobView, env jobs.ExecEnv) (json.RawMessage, error) {
	var req JobSubmitRequest
	if err := json.Unmarshal(job.Payload, &req); err != nil {
		return nil, fmt.Errorf("decoding journaled payload: %w", err)
	}
	if err := os.MkdirAll(env.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("creating checkpoint dir: %w", err)
	}
	flushEvery := job.Options.FlushEvery
	var resp any
	switch job.Kind {
	case JobKindPredict:
		r, err := s.runJobPredict(ctx, req.Predict)
		if err != nil {
			return nil, err
		}
		resp = r
	case JobKindAutotune:
		r, err := s.runJobAutotune(ctx, req.Autotune, env, flushEvery)
		if err != nil {
			return nil, err
		}
		resp = r
	case JobKindValidate:
		r, err := s.runJobValidate(ctx, req.Validate, env, flushEvery)
		if err != nil {
			return nil, err
		}
		resp = r
	case JobKindExperiment:
		r, err := s.runJobExperiment(ctx, req.Experiment, env, flushEvery)
		if err != nil {
			return nil, err
		}
		resp = r
	default:
		return nil, fmt.Errorf("unknown job kind %q", job.Kind)
	}
	return json.Marshal(resp)
}

func (s *Server) runJobPredict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	copts := req.Options.compilerOptions()
	rep, err := s.eng.InterpretMachine(ctx, req.Machine, req.Source, copts, req.Options.coreOptions())
	if err != nil {
		return nil, err
	}
	resp := &PredictResponse{
		Program:  rep.Program,
		Procs:    rep.Procs,
		EstUS:    rep.TotalUS(),
		Seconds:  rep.EstimatedSeconds(),
		CompUS:   rep.Total.CompUS,
		CommUS:   rep.Total.CommUS,
		OvhdUS:   rep.Total.OvhdUS,
		Warnings: rep.Warnings,
	}
	if req.Profile {
		resp.Profile = report.Profile(rep)
	}
	if req.HotLines > 0 {
		resp.HotLines = report.HotLines(rep, req.HotLines)
	}
	return resp, nil
}

func (s *Server) runJobAutotune(ctx context.Context, req *AutotuneRequest, env jobs.ExecEnv, flushEvery int) (*AutotuneResponse, error) {
	cands, err := autotune.SearchContext(ctx, req.Source, autotune.Options{
		Procs:                req.Procs,
		NoCyclic:             req.NoCyclic,
		Interp:               req.Options.coreOptions(),
		Engine:               s.eng,
		Checkpoint:           filepath.Join(env.CheckpointDir, "autotune.ckpt"),
		CheckpointFlushEvery: flushEvery,
		CheckpointOnFlush:    env.Progress,
	})
	if err != nil {
		return nil, err
	}
	resp := &AutotuneResponse{}
	for i, c := range cands {
		if req.Limit > 0 && i >= req.Limit {
			break
		}
		ac := AutotuneCandidate{Desc: c.Desc()}
		if c.Err != nil {
			ac.Error = c.Err.Error()
		} else {
			ac.EstUS = c.EstUS
		}
		resp.Candidates = append(resp.Candidates, ac)
	}
	if req.IncludeSource && len(cands) > 0 && cands[0].Err == nil {
		resp.BestSource = cands[0].Source
	}
	return resp, nil
}

func (s *Server) runJobValidate(ctx context.Context, req *ValidateJobRequest, env jobs.ExecEnv, flushEvery int) (*ValidateJobResult, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var progs []corpus.Program
	if req.Family != "" {
		fam, err := corpus.FamilyByName(req.Family)
		if err != nil {
			return nil, err
		}
		progs = corpus.GenerateFamily(seed, fam, req.Count)
	} else {
		progs = corpus.Generate(seed, req.Count)
	}
	report, err := corpus.Validate(ctx, progs, corpus.Options{
		Engine: s.eng,
		Checkpoint: &sweep.Checkpoint{
			Path:       filepath.Join(env.CheckpointDir, "validate.ckpt"),
			Key:        fmt.Sprintf("validate|seed=%d|n=%d|family=%s", seed, req.Count, req.Family),
			FlushEvery: flushEvery,
			OnFlush:    env.Progress,
		},
	})
	if err != nil {
		return nil, err
	}
	return &ValidateJobResult{Report: report}, nil
}

func (s *Server) runJobExperiment(ctx context.Context, req *ExperimentJobRequest, env jobs.ExecEnv, flushEvery int) (*ExperimentJobResult, error) {
	cfg := experiments.DefaultConfig()
	if req.Quick {
		cfg = experiments.QuickConfig()
	}
	if req.Runs > 0 {
		cfg.Runs = req.Runs
	}
	cfg.Engine = s.eng
	cfg.Ctx = ctx
	cfg.CheckpointDir = env.CheckpointDir
	cfg.CheckpointFlush = func(_ string, done int) { env.Progress(done) }
	_ = flushEvery // experiments flush every point; the grid is coarse

	var out string
	switch req.Artifact {
	case "table2":
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return nil, err
		}
		out = experiments.RenderTable2(rows)
	case "fig4", "fig5":
		procs := 4
		if req.Artifact == "fig5" {
			procs = 8
		}
		series, err := experiments.Figure45(procs, cfg)
		if err != nil {
			return nil, err
		}
		fig := 4
		if procs == 8 {
			fig = 5
		}
		out = experiments.RenderFigure45(fig, procs, series)
	case "fig7":
		phases, err := experiments.Figure7(cfg)
		if err != nil {
			return nil, err
		}
		out = experiments.RenderFigure7(phases)
	case "fig8":
		times, err := experiments.Figure8(cfg)
		if err != nil {
			return nil, err
		}
		out = experiments.RenderFigure8(times)
	default:
		return nil, fmt.Errorf("unknown experiment artifact %q", req.Artifact)
	}
	return &ExperimentJobResult{Artifact: req.Artifact, Output: out}, nil
}

// renderJobsMetrics appends the job subsystem's /metrics series.
func renderJobsMetrics(b *strings.Builder, jm jobs.Metrics) {
	fmt.Fprintf(b, "# HELP hpfjobs_jobs Retained jobs by state.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_jobs gauge\n")
	for _, st := range []jobs.State{jobs.StateSubmitted, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled} {
		fmt.Fprintf(b, "hpfjobs_jobs{state=%q} %d\n", st, jm.ByState[st])
	}
	fmt.Fprintf(b, "# HELP hpfjobs_submitted_total Jobs accepted (durably journaled).\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_submitted_total counter\n")
	fmt.Fprintf(b, "hpfjobs_submitted_total %d\n", jm.SubmittedTotal)
	fmt.Fprintf(b, "# HELP hpfjobs_finished_total Jobs reaching a terminal state, by outcome.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_finished_total counter\n")
	fmt.Fprintf(b, "hpfjobs_finished_total{outcome=\"done\"} %d\n", jm.DoneTotal)
	fmt.Fprintf(b, "hpfjobs_finished_total{outcome=\"failed\"} %d\n", jm.FailedTotal)
	fmt.Fprintf(b, "hpfjobs_finished_total{outcome=\"cancelled\"} %d\n", jm.CancelledTotal)
	fmt.Fprintf(b, "# HELP hpfjobs_resumed_total Jobs resumed from the journal after a crash.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_resumed_total counter\n")
	fmt.Fprintf(b, "hpfjobs_resumed_total %d\n", jm.ResumedTotal)
	fmt.Fprintf(b, "# HELP hpfjobs_handoff_total Running jobs re-marked submitted by a graceful drain.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_handoff_total counter\n")
	fmt.Fprintf(b, "hpfjobs_handoff_total %d\n", jm.HandoffTotal)
	fmt.Fprintf(b, "# HELP hpfjobs_replay_records_total Journal records applied at startup.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_replay_records_total counter\n")
	fmt.Fprintf(b, "hpfjobs_replay_records_total %d\n", jm.ReplayRecords)
	fmt.Fprintf(b, "# HELP hpfjobs_replay_truncated_total Torn or corrupt journal records truncated during replay.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_replay_truncated_total counter\n")
	fmt.Fprintf(b, "hpfjobs_replay_truncated_total %d\n", jm.ReplayTruncations)
	fmt.Fprintf(b, "# HELP hpfjobs_compactions_total Journal segment compactions.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_compactions_total counter\n")
	fmt.Fprintf(b, "hpfjobs_compactions_total %d\n", jm.Compactions)
	fmt.Fprintf(b, "# HELP hpfjobs_retention_dropped_total Terminal jobs dropped by journal retention.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_retention_dropped_total counter\n")
	fmt.Fprintf(b, "hpfjobs_retention_dropped_total %d\n", jm.RetentionDropped)
	fmt.Fprintf(b, "# HELP hpfjobs_journal_bytes Size of the active journal segment.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_journal_bytes gauge\n")
	fmt.Fprintf(b, "hpfjobs_journal_bytes %d\n", jm.JournalBytes)
	fmt.Fprintf(b, "# HELP hpfjobs_recovery_seconds Journal replay plus resume time at last startup.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_recovery_seconds gauge\n")
	fmt.Fprintf(b, "hpfjobs_recovery_seconds %g\n", jm.RecoverySeconds)
	fmt.Fprintf(b, "# HELP hpfjobs_event_subscribers Live event-feed subscriptions.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_event_subscribers gauge\n")
	fmt.Fprintf(b, "hpfjobs_event_subscribers %d\n", jm.Subscribers)
	fmt.Fprintf(b, "# HELP hpfjobs_events_total Job state-transition events recorded.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_events_total counter\n")
	fmt.Fprintf(b, "hpfjobs_events_total %d\n", jm.EventsTotal)
	fmt.Fprintf(b, "# HELP hpfjobs_subscriber_drops_total Slow event consumers dropped from the fan-out.\n")
	fmt.Fprintf(b, "# TYPE hpfjobs_subscriber_drops_total counter\n")
	fmt.Fprintf(b, "hpfjobs_subscriber_drops_total %d\n", jm.SubscriberDrops)
}
