// Streaming job progress: GET /v1/jobs/{id}/events serves one job's
// state transitions — submitted, running, checkpointed(n), and the
// terminal states — as a Server-Sent Events stream, replacing the
// GET /v1/jobs/{id} busy-poll loop. Framing follows the SSE wire
// format: each event carries `id:` (the per-job sequence number,
// which the browser EventSource and hpfclient echo back as
// Last-Event-ID on reconnect), `event:` (the state name) and one
// `data:` JSON line (jobs.Event). Idle streams emit `: hb` comment
// heartbeats so intermediaries keep the connection open. A dropped
// subscriber resumes from its last seen id: the jobs layer replays the
// retained history (rebuilt from the WAL on startup) past that cursor,
// and a cursor from a previous server generation replays from the
// start. The stream ends after a terminal event, when the jobs layer
// drops a slow consumer, or at server drain — clients fall back to
// polling on any non-SSE answer.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hpfperf/internal/jobs"
)

// handleJobEvents serves GET /v1/jobs/{id}/events. It sits outside the
// api() wrapper (the gate and breaker are sized for request/response
// work, not long-lived streams) but registers with the drain group so
// Shutdown waits for streams to tear down — which they do promptly,
// because jobs.Drain closes every subscription first.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	meta := s.jobMeta(w, r)
	if s.jobsDisabled(w, meta) {
		return
	}
	after := 0
	cursor := r.Header.Get("Last-Event-ID")
	if cursor == "" {
		cursor = r.URL.Query().Get("after")
	}
	if cursor != "" {
		n, err := strconv.Atoi(cursor)
		if err != nil || n < 0 {
			s.recordRequest(routeEvents, http.StatusBadRequest)
			writeError(w, http.StatusBadRequest, "decode",
				fmt.Errorf("Last-Event-ID must be a non-negative event sequence number, got %q", cursor), meta)
			return
		}
		after = n
	}
	sub, err := s.jobs.Subscribe(r.PathValue("id"), after)
	switch {
	case err == nil:
	case err == jobs.ErrNotFound:
		s.recordRequest(routeEvents, http.StatusNotFound)
		writeError(w, http.StatusNotFound, "jobs", err, meta)
		return
	case err == jobs.ErrDraining:
		s.recordRequest(routeEvents, http.StatusServiceUnavailable)
		retryAfterHeader(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "overload", err, meta)
		return
	case err == jobs.ErrSubscriberLimit:
		s.recordRequest(routeEvents, http.StatusTooManyRequests)
		retryAfterHeader(w, time.Second)
		writeError(w, http.StatusTooManyRequests, "overload", err, meta)
		return
	default:
		s.recordRequest(routeEvents, http.StatusInternalServerError)
		writeError(w, http.StatusInternalServerError, "jobs", err, meta)
		return
	}
	defer sub.Cancel()

	s.inflight.Add(1)
	defer s.inflight.Done()
	s.met.sseStreams.Add(1)
	defer s.met.sseStreams.Add(-1)
	s.recordRequest(routeEvents, http.StatusOK)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxy buffering defeats streaming
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				// Subscription ended without a terminal event: drain, or
				// this consumer fell behind and was dropped. The client
				// reconnects with its Last-Event-ID (or falls back to
				// polling during drain).
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.State, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
			s.met.sseEvents.Add(1)
			if ev.Terminal {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
			s.met.sseHeartbeats.Add(1)
		case <-r.Context().Done():
			return
		}
	}
}
