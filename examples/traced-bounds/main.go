// Critical-variable definition tracing (paper §4.2): the main loop bound
// NITER is assigned inside an earlier loop, so the interpretation
// engine's one-pass inline propagation loses it — before the static
// analysis layer, predicting this program required supplying NITER by
// hand through PredictOptions.IntValues. The definition tracer runs loop
// bodies to a fixpoint, proves NITER = 25 on every exit path, and the
// prediction needs no user-supplied values at all.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"hpfperf"
)

//go:embed bounds.hpf
var source string

func main() {
	prog, err := hpfperf.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	// What would the user have had to supply? The static analyzer knows:
	// every traced loop bound is reported (HPF0003), every untraceable
	// one names its blocking definitions (HPF0001).
	fmt.Println("static analysis:")
	for _, d := range hpfperf.AnalyzeProgram(prog) {
		fmt.Printf("  line %d: %s: %s [%s]\n", d.Line, d.Severity, d.Message, d.Code)
	}

	// No PredictOptions.IntValues, no TripCounts: definition tracing
	// resolves NITER = 25.
	pred, err := hpfperf.Predict(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted time on %d processors: %.3f ms (no user-supplied critical values)\n",
		prog.Processors(), pred.Microseconds()/1e3)
}
