// Package dep implements classic array-subscript dependence testing:
// subscript normalization to affine form, the ZIV/GCD screens, the exact
// strong-SIV test, weak-zero and weak-crossing SIV, and a separable-MIV
// Banerjee bound evaluated per direction vector. It answers the question
// the paper's interpretation framework keeps asking statically: can two
// references to the same array touch the same element on different
// iterations of an index space, and if so in which direction?
//
// The package is deliberately minimal in its inputs — ast expressions, a
// constant environment, and the index space — so both the compiler (to
// honor proven INDEPENDENT directives) and the analysis passes (to
// explain refuted ones) can share it without import cycles.
package dep

import (
	"strings"

	"hpfperf/internal/ast"
	"hpfperf/internal/token"
)

// Sub is a subscript normalized to affine form c + Σ Coeffs[v]·v over the
// index variables. OK is false when the expression is not affine in the
// indices (the tests then degrade to Unknown).
type Sub struct {
	Coeffs map[string]int64
	Const  int64
	OK     bool
}

// Coeff returns the coefficient of index v (0 when absent).
func (s Sub) Coeff(v string) int64 { return s.Coeffs[v] }

// Normalize classifies e as affine in the index variables idx, folding
// all other terms through the named integer constants. Anything else
// (array reads, unresolved scalars, nonlinear products) yields OK=false.
func Normalize(e ast.Expr, consts map[string]int64, idx map[string]bool) Sub {
	switch x := e.(type) {
	case *ast.IntLit:
		return Sub{Const: x.Value, OK: true}
	case *ast.Ident:
		if idx[x.Name] {
			return Sub{Coeffs: map[string]int64{x.Name: 1}, OK: true}
		}
		if v, ok := consts[x.Name]; ok {
			return Sub{Const: v, OK: true}
		}
		return Sub{}
	case *ast.UnaryExpr:
		l := Normalize(x.X, consts, idx)
		if !l.OK {
			return Sub{}
		}
		switch x.Op {
		case token.PLUS:
			return l
		case token.MINUS:
			return l.scale(-1)
		}
		return Sub{}
	case *ast.BinaryExpr:
		a := Normalize(x.X, consts, idx)
		b := Normalize(x.Y, consts, idx)
		if !a.OK || !b.OK {
			return Sub{}
		}
		switch x.Op {
		case token.PLUS:
			return a.add(b, 1)
		case token.MINUS:
			return a.add(b, -1)
		case token.STAR:
			if len(a.Coeffs) == 0 {
				return b.scale(a.Const)
			}
			if len(b.Coeffs) == 0 {
				return a.scale(b.Const)
			}
		}
		return Sub{}
	}
	return Sub{}
}

func (s Sub) scale(k int64) Sub {
	out := Sub{Const: s.Const * k, OK: true}
	if len(s.Coeffs) > 0 {
		out.Coeffs = make(map[string]int64, len(s.Coeffs))
		for v, a := range s.Coeffs {
			if a*k != 0 {
				out.Coeffs[v] = a * k
			}
		}
	}
	return out
}

func (s Sub) add(o Sub, sign int64) Sub {
	out := Sub{Const: s.Const + sign*o.Const, OK: true, Coeffs: make(map[string]int64)}
	for v, a := range s.Coeffs {
		out.Coeffs[v] = a
	}
	for v, a := range o.Coeffs {
		out.Coeffs[v] += sign * a
	}
	for v, a := range out.Coeffs {
		if a == 0 {
			delete(out.Coeffs, v)
		}
	}
	return out
}

// Index describes one dimension of the iteration space. Bounds are
// optional: tests that need them degrade soundly when Bounded is false.
type Index struct {
	Name    string
	Lo, Hi  int64
	Bounded bool
}

// Dir is one component of a direction vector relating the "source"
// iteration (the write) to the "sink" iteration.
type Dir int

const (
	DirLT Dir = iota // source iteration earlier  (carried forward)
	DirEQ            // same iteration
	DirGT            // source iteration later    (carried backward)
)

func (d Dir) String() string {
	switch d {
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	}
	return "?"
}

// DirVector formats a direction vector as "(<,=)".
func DirVector(ds []Dir) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Carried reports whether the vector has any non-"=" component, i.e.
// represents a loop-carried dependence.
func Carried(ds []Dir) bool {
	for _, d := range ds {
		if d != DirEQ {
			return true
		}
	}
	return false
}

// Kind is the three-valued outcome of a dependence test.
type Kind int

const (
	Independent Kind = iota // dependence disproven
	Dependent               // an integer solution was exhibited
	Unknown                 // tests could not decide
)

func (k Kind) String() string {
	switch k {
	case Independent:
		return "independent"
	case Dependent:
		return "dependent"
	}
	return "unknown"
}

// Result is the outcome of testing one (write, read) reference pair over
// an index space.
type Result struct {
	Kind Kind
	// Dirs lists the direction vectors (over the Index order given to
	// TestPair) that remain feasible; empty when Kind == Independent.
	Dirs [][]Dir
	// Dist is the constant dependence distance of the innermost carried
	// index when the tests pinned one exactly (strong SIV).
	Dist      int64
	DistKnown bool
	// Dim is the subscript dimension (0-based) that decided the verdict:
	// for Independent, the dimension that disproved dependence; for
	// Dependent, the dimension exhibiting the solution.
	Dim int
	// CarriedProven reports that a loop-carried solution was exhibited
	// (Kind == Dependent can also mean only same-iteration reuse).
	CarriedProven bool
}

// CarriedDirs returns only the loop-carried feasible vectors.
func (r Result) CarriedDirs() [][]Dir {
	var out [][]Dir
	for _, ds := range r.Dirs {
		if Carried(ds) {
			out = append(out, ds)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Extended integers: ±∞ with saturating arithmetic, for Banerjee bounds
// over possibly-unbounded index ranges.

type ext struct {
	inf int // -1 = -∞, 0 = finite, +1 = +∞
	v   int64
}

func fin(v int64) ext { return ext{v: v} }

var (
	negInf = ext{inf: -1}
	posInf = ext{inf: +1}
)

func (a ext) add(b ext) ext {
	if a.inf != 0 {
		return a
	}
	if b.inf != 0 {
		return b
	}
	return fin(a.v + b.v)
}

// mul multiplies an extended value by a finite scalar.
func (a ext) mul(k int64) ext {
	if k == 0 {
		return fin(0)
	}
	if a.inf != 0 {
		if k < 0 {
			return ext{inf: -a.inf}
		}
		return a
	}
	return fin(a.v * k)
}

func (a ext) le(v int64) bool { return a.inf < 0 || (a.inf == 0 && a.v <= v) }
func (a ext) ge(v int64) bool { return a.inf > 0 || (a.inf == 0 && a.v >= v) }
func extMin(a, b ext) ext {
	if a.inf < b.inf || (a.inf == b.inf && a.inf == 0 && a.v < b.v) {
		return a
	}
	return b
}
func extMax(a, b ext) ext {
	if a.inf > b.inf || (a.inf == b.inf && a.inf == 0 && a.v > b.v) {
		return a
	}
	return b
}

// rangeOf bounds a*i for i in the index range.
func rangeOf(a int64, ix Index) (lo, hi ext) {
	if a == 0 {
		return fin(0), fin(0)
	}
	if !ix.Bounded {
		return negInf, posInf
	}
	x, y := fin(a*ix.Lo), fin(a*ix.Hi)
	return extMin(x, y), extMax(x, y)
}

// ---------------------------------------------------------------------------
// Per-dimension tests

// gcd of non-negative operands.
func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pin records that a dimension proved the distance i' − i of one index
// exactly (strong SIV). TestPair intersects pins across dimensions: two
// dimensions pinning different distances on the same index make the
// direction vector infeasible.
type pin struct {
	idx int
	d   int64
}

// dimFeasible tests one subscript dimension under one direction vector:
// does an integer solution of w(i) = r(i') exist with i, i' in bounds and
// each index pair related per dirs? It bounds h = w(i) - r(i') by the
// Banerjee-style box relaxation per direction (sound for disproving:
// the true solution set is contained in the relaxed box). exact reports
// that the test additionally *proved* this dimension's constraint is
// satisfied (ZIV equality, or strong SIV with an in-span constant
// distance, returned as p).
func dimFeasible(w, r Sub, idxs []Index, dirs []Dir) (feasible, exact bool, p *pin) {
	if !w.OK || !r.OK {
		return true, false, nil
	}
	// GCD screen (direction-independent): h = Σ a_k i_k - Σ b_k i'_k
	// must bridge r.Const - w.Const.
	var g int64
	for _, ix := range idxs {
		g = gcd(g, w.Coeff(ix.Name))
		g = gcd(g, r.Coeff(ix.Name))
	}
	diff := r.Const - w.Const
	if g == 0 {
		// ZIV: constant subscripts on both sides. When equal, every
		// direction stays feasible (and a solution exists whenever the
		// dir-constrained iterations do — TestPair checks the spans).
		return diff == 0, diff == 0, nil
	}
	if diff%g != 0 {
		return false, false, nil
	}

	// Strong SIV exactness: a single common index with equal coefficients
	// pins the distance d = i' - i = (w.Const - r.Const)/a exactly.
	if si, ok := singleIndex(w, r, idxs); ok {
		a, b := w.Coeff(idxs[si].Name), r.Coeff(idxs[si].Name)
		if a == b && a != 0 && diff%a == 0 {
			d := -diff / a // i' - i for a solution
			if !sivDirOK(d, dirs[si]) {
				return false, false, nil
			}
			ix := idxs[si]
			if ix.Bounded {
				span := ix.Hi - ix.Lo
				if span < 0 {
					span = 0
				}
				if d > span || d < -span {
					return false, false, nil
				}
				return true, true, &pin{idx: si, d: d}
			}
			// Distance pinned but existence over an unbounded range is not
			// proven (the range may be empty or too short).
			return true, false, &pin{idx: si, d: d}
		}
	}

	// Banerjee per-direction box bounds: for each index k, bound the
	// contribution a_k·i_k − b_k·i'_k under the direction constraint.
	lo, hi := fin(0), fin(0)
	for k, ix := range idxs {
		a, b := w.Coeff(ix.Name), r.Coeff(ix.Name)
		tlo, thi := termBounds(a, b, ix, dirs[k])
		lo = lo.add(tlo)
		hi = hi.add(thi)
	}
	// Feasible iff diff ∈ [lo, hi].
	return lo.le(diff) && hi.ge(diff), false, nil
}

// singleIndex reports the sole index appearing in either subscript, if
// exactly one does.
func singleIndex(w, r Sub, idxs []Index) (int, bool) {
	found, n := -1, 0
	for k, ix := range idxs {
		if w.Coeff(ix.Name) != 0 || r.Coeff(ix.Name) != 0 {
			found = k
			n++
		}
	}
	return found, n == 1
}

// sivDirOK checks a constant distance d = i' - i against a direction
// constraint on (i, i').
func sivDirOK(d int64, dir Dir) bool {
	switch dir {
	case DirLT:
		return d > 0
	case DirEQ:
		return d == 0
	case DirGT:
		return d < 0
	}
	return true
}

// termBounds bounds a·i − b·i' for index ix under direction dir.
// For "=" the term collapses to (a−b)·t exactly. For "<" and ">" the
// coupled constraint i' ≥ i+1 (resp. i ≥ i'+1) is handled exactly when
// the coefficients match (strong-SIV shape) and by box relaxation
// otherwise — still sound for disproving dependence.
func termBounds(a, b int64, ix Index, dir Dir) (lo, hi ext) {
	switch dir {
	case DirEQ:
		return rangeOf(a-b, ix)
	case DirLT:
		// i' = i + d, d ≥ 1: term = (a−b)·i − b·d.
		return coupledBounds(a, b, ix)
	case DirGT:
		// i = i' + d, d ≥ 1: term = (a−b)·i' + a·d, which is exactly the
		// shape coupledBounds(−b, −a) computes: (−b−(−a))·i' − (−a)·d.
		return coupledBounds(-b, -a, ix)
	}
	lo1, hi1 := rangeOf(a, ix)
	lo2, hi2 := rangeOf(b, ix)
	return lo1.add(hi2.mul(-1)), hi1.add(lo2.mul(-1))
}

// coupledBounds bounds (a−b)·i − b·d over i ∈ [Lo, Hi−1], d ∈ [1, Hi−i−…]
// relaxed to d ∈ [1, span]; unbounded ranges relax to ±∞ except when the
// expression is constant.
func coupledBounds(a, b int64, ix Index) (lo, hi ext) {
	c := a - b
	if c == 0 && b == 0 {
		return fin(0), fin(0)
	}
	if !ix.Bounded {
		// (a−b)·i unbounded unless c == 0; −b·d with d ≥ 1 unbounded above
		// or below per sign of b unless b == 0.
		lo, hi = fin(0), fin(0)
		if c != 0 {
			lo, hi = negInf, posInf
		}
		switch {
		case b > 0:
			lo = negInf
			hi = hi.add(fin(-b)) // d ≥ 1 ⇒ −b·d ≤ −b
		case b < 0:
			hi = posInf
			lo = lo.add(fin(-b))
		}
		return lo, hi
	}
	span := ix.Hi - ix.Lo
	if span < 1 {
		// No pair of distinct iterations exists: infeasible range.
		return fin(1), fin(0)
	}
	iLo, iHi := ix.Lo, ix.Hi-1
	clo, chi := fin(c*iLo), fin(c*iHi)
	if c < 0 {
		clo, chi = chi, clo
	}
	dlo, dhi := fin(-b*1), fin(-b*span)
	if b > 0 {
		dlo, dhi = dhi, dlo
	}
	return clo.add(dlo), chi.add(dhi)
}

// ---------------------------------------------------------------------------
// Pair testing

// TestPair tests one (write, read) pair of same-array references with
// subscripts w and r over the index space idxs. It enumerates direction
// vectors hierarchically and keeps those no dimension can disprove.
func TestPair(w, r []Sub, idxs []Index) Result {
	if len(w) != len(r) {
		return Result{Kind: Unknown}
	}
	n := len(idxs)
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	res := Result{Kind: Independent}
	carriedExact := false
	eqExact := false
	var exactDist int64
	exactDim := 0
	for code := 0; code < total; code++ {
		dirs := make([]Dir, n)
		c := code
		for i := 0; i < n; i++ {
			dirs[i] = Dir(c % 3)
			c /= 3
		}
		feasible := true
		exactAll := true
		decidedDim := 0
		pins := make(map[int]int64) // index -> proven distance
		pinDim := make(map[int]int) // index -> dimension that pinned it
		for d := range w {
			f, ex, p := dimFeasible(w[d], r[d], idxs, dirs)
			if !f {
				feasible = false
				decidedDim = d
				break
			}
			if p != nil {
				if prev, ok := pins[p.idx]; ok && prev != p.d {
					// Two dimensions demand different distances on the same
					// index: no simultaneous solution under this vector.
					feasible = false
					decidedDim = d
					break
				}
				pins[p.idx] = p.d
				pinDim[p.idx] = d
			}
			if !ex {
				exactAll = false
			}
		}
		if !feasible {
			if len(res.Dirs) == 0 {
				res.Dim = decidedDim
			}
			continue
		}
		res.Dirs = append(res.Dirs, dirs)
		// An exact vector proves a solution only if every dir-constrained
		// index actually admits two distinct iterations.
		if exactAll && spansOK(idxs, dirs) {
			if Carried(dirs) {
				carriedExact = true
				if !res.DistKnown {
					// Report the distance of the first carried pinned index.
					for k, dr := range dirs {
						if dr == DirEQ {
							continue
						}
						if d, ok := pins[k]; ok {
							exactDist, exactDim = d, pinDim[k]
							res.DistKnown = true
							break
						}
					}
				}
			} else {
				eqExact = true
			}
		}
	}
	if len(res.Dirs) == 0 {
		res.Kind = Independent
		return res
	}
	switch {
	case carriedExact:
		res.Kind = Dependent
		res.CarriedProven = true
		res.Dist, res.Dim = exactDist, exactDim
	case eqExact:
		// Only loop-independent dependence proven (same-iteration reuse).
		res.Kind = Dependent
	default:
		res.Kind = Unknown
	}
	return res
}

// spansOK checks that every index constrained to distinct iterations by
// the vector has a range admitting them.
func spansOK(idxs []Index, dirs []Dir) bool {
	for k, d := range dirs {
		if d == DirEQ {
			continue
		}
		if !idxs[k].Bounded || idxs[k].Hi <= idxs[k].Lo {
			return false
		}
	}
	return true
}
