package compiler

import (
	"hpfperf/internal/ast"
	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
)

// lowerAssign dispatches an assignment: scalar assignments stay replicated
// statements; array-shaped assignments are normalized into forall loops
// (§4.3: "array assignments are special cases of the forall statement").
func (lw *lowerer) lowerAssign(x *ast.AssignStmt, env *idxEnv) ([]hir.Stmt, error) {
	if lw.info.ShapeOf(x.Lhs) == nil {
		return lw.lowerScalarAssign(x, env)
	}
	return lw.lowerArrayAssign(x, nil, env, "ARRAY-ASSIGN")
}

func (lw *lowerer) lowerScalarAssign(x *ast.AssignStmt, env *idxEnv) ([]hir.Stmt, error) {
	rhs, pre, err := lw.lowerScalarExpr(x.Rhs, env)
	if err != nil {
		return nil, err
	}
	var cost hir.OpCount
	cost.Add(hir.CountExpr(rhs), 1)
	cost.Store++
	switch lhs := x.Lhs.(type) {
	case *ast.Ident:
		sym := lw.info.Sym(lhs.Name)
		st := &hir.Assign{
			Lhs:     &hir.ScalarLV{Name: lhs.Name, Kind: hir.Replicated, Typ: sym.Type},
			Rhs:     rhs,
			SrcLine: x.Pos().Line,
			Cost:    cost,
		}
		return append(pre, st), nil
	case *ast.CallOrIndex:
		sym := lw.info.Sym(lhs.Name)
		subs := make([]hir.Expr, len(lhs.Args))
		for i, a := range lhs.Args {
			e, p, err := lw.lowerScalarExpr(a, env)
			if err != nil {
				return nil, err
			}
			pre = append(pre, p...)
			subs[i] = e
			cost.Add(hir.CountExpr(e), 1)
		}
		guard := sym.Map != nil && !sym.Map.Replicated
		cost.Elems++
		st := &hir.Assign{
			Lhs:     &hir.ElemLV{Array: lhs.Name, Subs: subs, Typ: sym.Type},
			Rhs:     rhs,
			Guard:   guard,
			SrcLine: x.Pos().Line,
			Cost:    cost,
		}
		return append(pre, st), nil
	}
	return nil, lw.errf(x.Pos(), "unsupported assignment target")
}

// ---------------------------------------------------------------------------
// Shift intrinsic extraction

// rewriteShifts replaces CSHIFT/EOSHIFT/TSHIFT calls in an array-valued
// expression by references to shifted temporaries, emitting the CShift /
// EOShift collective statements (the paper's parallel intrinsic library).
func (lw *lowerer) rewriteShifts(e ast.Expr, env *idxEnv, pre *[]hir.Stmt) (ast.Expr, error) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		a, err := lw.rewriteShifts(x.X, env, pre)
		if err != nil {
			return nil, err
		}
		b, err := lw.rewriteShifts(x.Y, env, pre)
		if err != nil {
			return nil, err
		}
		if a == x.X && b == x.Y {
			return x, nil
		}
		n := *x
		n.X, n.Y = a, b
		lw.copyShapeType(x, &n)
		return &n, nil
	case *ast.UnaryExpr:
		a, err := lw.rewriteShifts(x.X, env, pre)
		if err != nil {
			return nil, err
		}
		if a == x.X {
			return x, nil
		}
		n := *x
		n.X = a
		lw.copyShapeType(x, &n)
		return &n, nil
	case *ast.CallOrIndex:
		info, isIntr := sem.Intrinsics[x.Name]
		if x.Resolved == ast.RefIntrinsic && isIntr && info.Class == sem.Shift {
			return lw.extractShift(x, env, pre)
		}
		if x.Resolved == ast.RefIntrinsic && isIntr && info.Class == sem.Elemental {
			changed := false
			args := make([]ast.Expr, len(x.Args))
			for i, a := range x.Args {
				na, err := lw.rewriteShifts(a, env, pre)
				if err != nil {
					return nil, err
				}
				args[i] = na
				if na != a {
					changed = true
				}
			}
			if !changed {
				return x, nil
			}
			n := *x
			n.Args = args
			lw.copyShapeType(x, &n)
			return &n, nil
		}
		return x, nil
	default:
		return e, nil
	}
}

// copyShapeType propagates recorded sem info to a rewritten node.
func (lw *lowerer) copyShapeType(old, new ast.Expr) {
	if t, ok := lw.info.Types[old]; ok {
		lw.info.Types[new] = t
	}
	if s, ok := lw.info.Shapes[old]; ok {
		lw.info.Shapes[new] = s
	}
}

// extractShift materializes one shift intrinsic into a temporary array.
func (lw *lowerer) extractShift(x *ast.CallOrIndex, env *idxEnv, pre *[]hir.Stmt) (ast.Expr, error) {
	arg0, err := lw.rewriteShifts(x.Args[0], env, pre)
	if err != nil {
		return nil, err
	}
	src, ok := arg0.(*ast.Ident)
	if !ok {
		return nil, lw.errf(x.Pos(), "%s argument must be a whole array", x.Name)
	}
	sym := lw.info.Sym(src.Name)
	if sym == nil || sym.Kind != sem.SymArray {
		return nil, lw.errf(x.Pos(), "%s argument %s is not an array", x.Name, src.Name)
	}
	shift, p, err := lw.lowerScalarExpr(x.Args[1], env)
	if err != nil {
		return nil, err
	}
	*pre = append(*pre, p...)

	dimArgPos := 2
	var boundary hir.Expr
	if x.Name == "EOSHIFT" && len(x.Args) >= 3 {
		// EOSHIFT(ARRAY, SHIFT [, BOUNDARY [, DIM]])
		boundary, p, err = lw.lowerScalarExpr(x.Args[2], env)
		if err != nil {
			return nil, err
		}
		*pre = append(*pre, p...)
		dimArgPos = 3
	}
	dim := 1
	if len(x.Args) > dimArgPos {
		dim, err = sem.EvalConstInt(x.Args[dimArgPos], lw.info.Consts)
		if err != nil {
			return nil, lw.errf(x.Pos(), "%s DIM argument must be constant", x.Name)
		}
	}
	if dim < 1 || dim > sym.Rank() {
		return nil, lw.errf(x.Pos(), "%s DIM %d out of range for rank-%d array", x.Name, dim, sym.Rank())
	}
	dst := lw.newTempArray(src.Name)
	line := x.Pos().Line
	if x.Name == "CSHIFT" {
		*pre = append(*pre, &hir.CShift{Dst: dst, Src: src.Name, Dim: dim - 1, Shift: shift, SrcLine: line})
	} else {
		*pre = append(*pre, &hir.EOShift{Dst: dst, Src: src.Name, Dim: dim - 1, Shift: shift, Boundary: boundary, SrcLine: line})
	}
	id := &ast.Ident{Name: dst, NamePos: x.Pos()}
	lw.info.Types[id] = sym.Type
	lw.info.Shapes[id] = &sem.Shape{Dims: sym.Bounds}
	return id, nil
}

// directShiftAssign recognizes "B = CSHIFT(A, s [,d])" with identically
// mapped whole arrays and emits the collective directly.
func (lw *lowerer) directShiftAssign(x *ast.AssignStmt, env *idxEnv) ([]hir.Stmt, bool, error) {
	lhs, ok := x.Lhs.(*ast.Ident)
	if !ok {
		return nil, false, nil
	}
	call, ok := x.Rhs.(*ast.CallOrIndex)
	if !ok || call.Resolved != ast.RefIntrinsic {
		return nil, false, nil
	}
	info, isIntr := sem.Intrinsics[call.Name]
	if !isIntr || info.Class != sem.Shift {
		return nil, false, nil
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false, nil
	}
	lsym, ssym := lw.info.Sym(lhs.Name), lw.info.Sym(src.Name)
	if lsym == nil || ssym == nil || lsym.Kind != sem.SymArray || ssym.Kind != sem.SymArray {
		return nil, false, nil
	}
	if lhs.Name == src.Name || lsym.Map == nil || ssym.Map == nil || !lsym.Map.SameMapping(ssym.Map) || lsym.Type != ssym.Type {
		return nil, false, nil
	}
	var pre []hir.Stmt
	shift, p, err := lw.lowerScalarExpr(call.Args[1], env)
	if err != nil {
		return nil, false, err
	}
	pre = append(pre, p...)
	dimArgPos := 2
	var boundary hir.Expr
	if call.Name == "EOSHIFT" && len(call.Args) >= 3 {
		boundary, p, err = lw.lowerScalarExpr(call.Args[2], env)
		if err != nil {
			return nil, false, err
		}
		pre = append(pre, p...)
		dimArgPos = 3
	}
	dim := 1
	if len(call.Args) > dimArgPos {
		dim, err = sem.EvalConstInt(call.Args[dimArgPos], lw.info.Consts)
		if err != nil {
			return nil, false, nil // fall back to the general path
		}
	}
	if dim < 1 || dim > ssym.Rank() {
		return nil, false, lw.errf(x.Pos(), "%s DIM %d out of range", call.Name, dim)
	}
	line := x.Pos().Line
	if call.Name == "CSHIFT" {
		pre = append(pre, &hir.CShift{Dst: lhs.Name, Src: src.Name, Dim: dim - 1, Shift: shift, SrcLine: line})
	} else {
		pre = append(pre, &hir.EOShift{Dst: lhs.Name, Src: src.Name, Dim: dim - 1, Shift: shift, Boundary: boundary, SrcLine: line})
	}
	return pre, true, nil
}
