package hpfclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hpfperf/internal/jobs"
	"hpfperf/internal/server"
)

const jobSrc = `      PROGRAM J
!HPF$ PROCESSORS P(4)
      REAL U(32,32)
!HPF$ DISTRIBUTE U(BLOCK,*) ONTO P
      U = 1.0
      U = U * 2.0
      PRINT *, U(16,16)
      END PROGRAM J
`

// newJobServer stands up a real hpfserve with jobs enabled.
func newJobServer(t *testing.T) (*server.Server, *Client) {
	t.Helper()
	s := server.New(server.Config{})
	if err := s.OpenJobs(jobs.Config{Dir: t.TempDir()}); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Jobs().Drain(ctx)
		ts.Close()
	})
	return s, New(Config{BaseURL: ts.URL})
}

func TestSubmitWaitJob(t *testing.T) {
	_, c := newJobServer(t)
	ctx := context.Background()
	sub, err := c.SubmitJob(ctx, &JobSubmitRequest{
		Kind:    JobKindPredict,
		Predict: &PredictRequest{Source: jobSrc},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if sub.Job.ID == "" || sub.Job.State != jobs.StateSubmitted {
		t.Fatalf("submit view: %+v", sub.Job)
	}
	v, err := c.WaitJob(ctx, sub.Job.ID, PollPolicy{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("state = %s (err %q)", v.State, v.Error)
	}
	var pr PredictResponse
	if err := json.Unmarshal(v.Result, &pr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if pr.EstUS <= 0 {
		t.Fatalf("result: %+v", pr)
	}

	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("list: %+v", list.Jobs)
	}
	got, err := c.Job(ctx, sub.Job.ID)
	if err != nil || got.State != jobs.StateDone {
		t.Fatalf("Job: %+v %v", got, err)
	}
}

func TestCancelJobHelper(t *testing.T) {
	_, c := newJobServer(t)
	ctx := context.Background()
	// Queue one job behind another so it is cancellable while queued:
	// default workers = 2, so saturate with two slow experiment jobs.
	for i := 0; i < 2; i++ {
		if _, err := c.SubmitJob(ctx, &JobSubmitRequest{
			Kind:       JobKindExperiment,
			Experiment: &ExperimentJobRequest{Artifact: "table2", Quick: true},
		}); err != nil {
			t.Fatalf("SubmitJob blocker: %v", err)
		}
	}
	sub, err := c.SubmitJob(ctx, &JobSubmitRequest{
		Kind:    JobKindPredict,
		Predict: &PredictRequest{Source: jobSrc},
	})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	v, err := c.CancelJob(ctx, sub.Job.ID)
	if err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	// Queued → cancelled immediately; already-running → cancel
	// requested and terminal shortly after.
	if v.State != jobs.StateCancelled && !v.CancelRequested {
		t.Fatalf("cancel view: %+v", v)
	}
	if _, err := c.Job(ctx, "no-such-job"); err == nil {
		t.Fatal("Job on unknown ID succeeded")
	}
}

func TestWaitJobToleratesTransientPolls(t *testing.T) {
	var calls atomic.Int64
	view := jobs.JobView{ID: "x", Kind: "predict", State: jobs.StateDone}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(view)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	v, err := c.WaitJob(context.Background(), "x", PollPolicy{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if v.State != jobs.StateDone || calls.Load() != 3 {
		t.Fatalf("state=%s calls=%d", v.State, calls.Load())
	}
}

func TestWaitJobGivesUpAfterMaxTransient(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	_, err := c.WaitJob(context.Background(), "x", PollPolicy{Interval: time.Millisecond, MaxTransient: 3})
	if err == nil {
		t.Fatal("WaitJob succeeded against an always-503 server")
	}
}

func TestWaitJobStopsOnPermanentError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "no such job", Stage: "jobs"})
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	_, err := c.WaitJob(context.Background(), "x", PollPolicy{Interval: time.Millisecond})
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want immediate 404", err)
	}
}

func TestRetryBudgetMaxElapsed(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	// 10 attempts allowed, but the 30ms total budget only fits a few
	// 20ms backoffs.
	c := New(Config{BaseURL: ts.URL, Retry: RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		MaxElapsed:  30 * time.Millisecond,
	}})
	start := time.Now()
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{Source: "x"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v; budget not enforced", elapsed)
	}
	if n := calls.Load(); n >= 10 {
		t.Fatalf("server saw %d attempts; budget should stop earlier", n)
	}
}

func TestRetrySleepCappedAtDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// Advertise a wait far beyond the caller's deadline.
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Retry: RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Minute,
		MaxElapsed:  -1, // attempts/deadline bound the loop, not the budget
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Analyze(ctx, &AnalyzeRequest{Source: "x"})
	if err == nil {
		t.Fatal("expected failure")
	}
	// The client must not sleep into the dead deadline: it returns the
	// 503 as soon as it sees the wait cannot complete.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v; sleep was not capped at the deadline", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (wait exceeds deadline)", calls.Load())
	}
}

func TestPollPolicyWaitJitter(t *testing.T) {
	p := PollPolicy{Interval: 100 * time.Millisecond, MaxInterval: time.Second}.normalized()
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		w := p.wait(0)
		if w < 50*time.Millisecond || w > 100*time.Millisecond {
			t.Fatalf("wait %v outside [interval/2, interval]", w)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatal("wait shows no jitter")
	}
	// Server advice wins over the base interval, still jittered and
	// capped.
	if w := p.wait(10 * time.Second); w > time.Second {
		t.Fatalf("advice wait %v exceeds MaxInterval", w)
	}
	if w := p.wait(400 * time.Millisecond); w < 200*time.Millisecond || w > 400*time.Millisecond {
		t.Fatalf("advice wait %v outside jitter band", w)
	}
}
