package server

// Cost-based admission control: every predict/measure request is
// pre-priced with the static analyzer (analysis.Price over the compiled
// program and its definition trace) before any interpretation or
// simulated execution runs. Two budgets apply: a per-request ceiling
// (Config.MaxCostUnits) and an aggregate in-flight budget
// (Config.MaxInflightCostUnits) — the priced variant of the bounded
// queue, which distinguishes one 10^9-unit sweep from fifty 10^3-unit
// line queries where the raw concurrency gate cannot. Rejections are
// 429s carrying the estimate and the violated budget in the body.

import (
	"fmt"
	"math"
	"net/http"

	"hpfperf/internal/analysis"
	"hpfperf/internal/hir"
)

// costMilli converts cost units to the integer milli-units the atomic
// in-flight accumulator tracks, saturating instead of overflowing: a
// pathological price (deeply nested unresolved loops at assumed trips
// compound to ~1e15+ units) converted unguarded is implementation-
// defined in Go and goes negative on amd64, which would corrupt the
// in-flight accumulator and bypass the gate. Saturation is at half of
// MaxInt64 so cur+milli in the admission CAS loop can never overflow
// (cur itself is bounded by one saturated admission against an idle
// budget plus a budget below the saturation point).
func costMilli(units float64) int64 {
	const satMilli = math.MaxInt64 / 2
	if units >= float64(satMilli)/1000 {
		return satMilli
	}
	if units < 0 {
		return 0
	}
	return int64(units * 1000)
}

// maxPriceEntries bounds the price memo; the engine's compile LRU keeps
// far fewer programs alive, so eviction here is a pathological-churn
// backstop, not a working-set limit.
const maxPriceEntries = 1024

// priceOf memoizes analysis.PriceProgram per compiled program. Pricing
// re-runs definition tracing, which would otherwise cost more than a
// cache-hot predict request it gates; the engine's LRU returns
// pointer-identical programs for cached sources, so program identity is
// a sound memo key.
func (s *Server) priceOf(prog *hir.Program) *analysis.PriceReport {
	s.priceMu.Lock()
	if p, ok := s.prices[prog]; ok {
		s.priceMu.Unlock()
		return p
	}
	s.priceMu.Unlock()
	price := analysis.PriceProgram(prog)
	s.priceMu.Lock()
	if s.prices == nil || len(s.prices) >= maxPriceEntries {
		s.prices = make(map[*hir.Program]*analysis.PriceReport, 64)
	}
	s.prices[prog] = price
	s.priceMu.Unlock()
	return price
}

// ceiling checks a single point's price against the per-request budget.
// Batch requests apply it per point — one over-budget point yields a
// per-point error object — while the aggregate goes through admitUnits.
func (s *Server) ceiling(price *analysis.PriceReport) *apiError {
	if s.cfg.MaxCostUnits > 0 && price.CostUnits > s.cfg.MaxCostUnits {
		s.met.costRejected.Add(1)
		return &apiError{
			status:    http.StatusTooManyRequests,
			stage:     "admission",
			err:       fmt.Errorf("program prices at %.0f cost units, over the per-request budget of %.0f", price.CostUnits, s.cfg.MaxCostUnits),
			estCost:   price.CostUnits,
			costLimit: s.cfg.MaxCostUnits,
		}
	}
	return nil
}

// admitUnits reserves already-priced work against the aggregate
// in-flight budget in one CAS. what names the unit of work ("program",
// "batch") in the rejection message. On admission the returned release
// must be deferred; on rejection the 429 carries the estimate.
func (s *Server) admitUnits(what string, units float64) (func(), *apiError) {
	milli := costMilli(units)
	if s.cfg.MaxInflightCostUnits <= 0 {
		s.met.costAdmittedMilli.Add(milli)
		return func() {}, nil
	}
	maxMilli := costMilli(s.cfg.MaxInflightCostUnits)
	for {
		cur := s.met.costInflightMilli.Load()
		// Always admit against an idle budget so one request larger than
		// the aggregate budget cannot starve forever.
		if cur > 0 && cur+milli > maxMilli {
			s.met.costRejected.Add(1)
			return nil, &apiError{
				status:    http.StatusTooManyRequests,
				stage:     "admission",
				err:       fmt.Errorf("%s prices at %.0f cost units but only %.0f of the %.0f in-flight budget is free", what, units, s.cfg.MaxInflightCostUnits-float64(cur)/1000, s.cfg.MaxInflightCostUnits),
				estCost:   units,
				costLimit: s.cfg.MaxInflightCostUnits,
			}
		}
		if s.met.costInflightMilli.CompareAndSwap(cur, cur+milli) {
			break
		}
	}
	s.met.costAdmittedMilli.Add(milli)
	return func() { s.met.costInflightMilli.Add(-milli) }, nil
}

// admitCost prices a compiled program and runs it through both cost
// budgets. On admission it returns the price and a release func the
// caller must defer; on rejection it returns a 429 apiError carrying
// the estimate.
func (s *Server) admitCost(prog *hir.Program) (*analysis.PriceReport, func(), *apiError) {
	if s.cfg.MaxCostUnits <= 0 && s.cfg.MaxInflightCostUnits <= 0 {
		return nil, func() {}, nil
	}
	price := s.priceOf(prog)
	if aerr := s.ceiling(price); aerr != nil {
		return nil, nil, aerr
	}
	release, aerr := s.admitUnits("program", price.CostUnits)
	if aerr != nil {
		return nil, nil, aerr
	}
	return price, release, nil
}
