package sweep

// Crash-atomicity and skip-accounting tests for the checkpoint
// machinery: a crash between the temp-file write and the rename, a torn
// (truncated) checkpoint file, and results that do not survive a JSON
// round-trip must all degrade to re-evaluation — never to a wrong or
// refused resume.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// runCheckpointed sweeps n points recording which indices evaluated.
func runCheckpointed(t *testing.T, e *Engine, n int, ck *Checkpoint) (evaluated []int32, res []float64) {
	t.Helper()
	ran := make([]int32, n)
	res, err := MapCheckpoint(e, n, ck, func(i int) (float64, error) {
		atomic.AddInt32(&ran[i], 1)
		return float64(i) * 1.5, nil
	})
	if err != nil {
		t.Fatalf("MapCheckpoint: %v", err)
	}
	return ran, res
}

func TestCheckpointStrayTempFileIgnored(t *testing.T) {
	// A crash between the temp write and the rename leaves a .ckpt-*
	// temp file next to the (old or absent) checkpoint. The next run
	// must ignore it and still produce correct results.
	e := New(Options{Workers: 2})
	dir := t.TempDir()
	ck := &Checkpoint{Path: filepath.Join(dir, "sweep.ckpt"), Key: "k"}
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-12345"), []byte(`{"key":"k","n":3,`), 0o644); err != nil {
		t.Fatal(err)
	}
	ran, res := runCheckpointed(t, e, 3, ck)
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("point %d evaluated %d times", i, n)
		}
	}
	if res[2] != 3.0 {
		t.Fatalf("res = %v", res)
	}
}

func TestCheckpointTornFileDegradesToReevaluation(t *testing.T) {
	// Write a valid checkpoint for 2 of 4 points, then truncate it
	// mid-JSON as a crash during a non-atomic write would. Resume must
	// start fresh (re-evaluating all points) rather than erroring or
	// resuming wrong.
	e := New(Options{Workers: 2})
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck := &Checkpoint{Path: path, Key: "k", FlushEvery: 10}
	boom := fmt.Errorf("stop after two")
	_, err := MapCheckpoint(e, 4, ck, func(i int) (float64, error) {
		if i >= 2 {
			return 0, boom
		}
		return float64(i), nil
	})
	if err == nil {
		t.Fatal("expected point failure")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint not flushed on error path: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	ran, res := runCheckpointed(t, e, 4, ck)
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("point %d evaluated %d times after torn checkpoint", i, n)
		}
	}
	if res[3] != 4.5 {
		t.Fatalf("res = %v", res)
	}
	// The completed run removed the file.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived success: %v", err)
	}
}

func TestCheckpointUnreadableEntrySkippedAndCounted(t *testing.T) {
	// A stored result that no longer unmarshals (e.g. the result type
	// changed shape between releases) is dropped: the point re-evaluates
	// and the skip is counted, not silent.
	e := New(Options{Workers: 2})
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ck := &Checkpoint{Path: path, Key: "k"}
	file := ckptFile{Key: "k", N: 3, Done: map[string]json.RawMessage{
		"0": json.RawMessage(`1.5`),
		"1": json.RawMessage(`"not a float"`),
	}}
	raw, _ := json.Marshal(file)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var warns atomic.Int32
	ck.Warnf = func(format string, args ...any) {
		warns.Add(1)
		if !strings.Contains(fmt.Sprintf(format, args...), "re-evaluated on resume") {
			t.Errorf("warn message lacks re-evaluation hint")
		}
	}
	before := e.Stats().CheckpointSkips.Load()
	ran, res := runCheckpointed(t, e, 3, ck)
	if ran[0] != 0 {
		t.Fatal("valid stored point was re-evaluated")
	}
	if ran[1] != 1 || ran[2] != 1 {
		t.Fatalf("evaluation mask: %v", ran)
	}
	if res[1] != 1.5 {
		t.Fatalf("re-evaluated point result %v", res[1])
	}
	if got := e.Stats().CheckpointSkips.Load() - before; got != 1 {
		t.Fatalf("CheckpointSkips delta = %d, want 1", got)
	}
	if warns.Load() != 1 {
		t.Fatalf("warned %d times, want once per run", warns.Load())
	}
}

func TestCheckpointUnmarshalableResultWarnsOnceAndCounts(t *testing.T) {
	// Results that cannot marshal (NaN/Inf through a float — or here, a
	// channel field) are excluded from the checkpoint: counted once per
	// point, logged once per run, sweep output unaffected.
	type bad struct {
		V  int
		Ch chan int `json:"ch,omitempty"`
	}
	e := New(Options{Workers: 2})
	ck := &Checkpoint{Path: filepath.Join(t.TempDir(), "sweep.ckpt"), Key: "k"}
	var warns atomic.Int32
	ck.Warnf = func(format string, args ...any) { warns.Add(1) }
	before := e.Stats().CheckpointSkips.Load()
	res, err := MapCheckpoint(e, 3, ck, func(i int) (bad, error) {
		return bad{V: i, Ch: make(chan int)}, nil
	})
	if err != nil {
		t.Fatalf("MapCheckpoint: %v", err)
	}
	if len(res) != 3 || res[2].V != 2 {
		t.Fatalf("res = %v", res)
	}
	if got := e.Stats().CheckpointSkips.Load() - before; got != 3 {
		t.Fatalf("CheckpointSkips delta = %d, want 3", got)
	}
	if warns.Load() != 1 {
		t.Fatalf("warned %d times, want exactly once per run", warns.Load())
	}
}

func TestCheckpointOnFlushReportsDurableCounts(t *testing.T) {
	e := New(Options{Workers: 1})
	var flushes []int
	ck := &Checkpoint{
		Path:    filepath.Join(t.TempDir(), "sweep.ckpt"),
		Key:     "k",
		OnFlush: func(done int) { flushes = append(flushes, done) },
	}
	if _, err := MapCheckpoint(e, 3, ck, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if len(flushes) != 3 {
		t.Fatalf("OnFlush fired %d times, want 3 (FlushEvery default 1): %v", len(flushes), flushes)
	}
	// Counts are monotonically non-decreasing and end at n.
	last := 0
	for _, n := range flushes {
		if n < last {
			t.Fatalf("flush counts regressed: %v", flushes)
		}
		last = n
	}
	if last != 3 {
		t.Fatalf("final durable count = %d, want 3", last)
	}
}

func TestCheckpointFlushEveryBatches(t *testing.T) {
	e := New(Options{Workers: 1})
	var flushes atomic.Int32
	ck := &Checkpoint{
		Path:       filepath.Join(t.TempDir(), "sweep.ckpt"),
		Key:        "k",
		FlushEvery: 4,
		OnFlush:    func(int) { flushes.Add(1) },
	}
	if _, err := MapCheckpoint(e, 8, ck, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := flushes.Load(); got != 2 {
		t.Fatalf("flushes = %d, want 2 (8 points / FlushEvery 4)", got)
	}
}
