package analysis

import (
	"fmt"
	"strings"
)

// critVarPass reports on critical-variable resolution (§4.2): loop bounds
// and DO WHILE conditions the definition tracer could or could not
// resolve. Unresolved bounds are the values the interpreter will demand
// via Options.Values/TripCounts, so surfacing them (with the blocking
// definitions and their source lines) tells the user exactly what to
// supply — or that nothing is needed because tracing succeeded.
//
// Codes: HPF0001 unresolved loop bounds, HPF0002 untraceable DO WHILE
// trip count, HPF0003 bounds resolved by definition tracing (info, only
// for bounds that actually referenced scalars).
type critVarPass struct{}

func (critVarPass) Name() string { return "critical-variables" }

func (critVarPass) Run(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, l := range u.Trace.LoopOrder {
		lt := u.Trace.Loops[l]
		if lt.Resolved {
			if lt.Dynamic {
				out = append(out, Diagnostic{
					Code:     "HPF0003",
					Severity: SevInfo,
					Line:     lt.Line,
					Message: fmt.Sprintf("loop bounds of %s resolved by definition tracing: %d..%d step %d (%d trips)",
						lt.Var, lt.Lo, lt.Hi, lt.Step, lt.Trips),
				})
			}
			continue
		}
		out = append(out, Diagnostic{
			Code:     "HPF0001",
			Severity: SevWarning,
			Line:     lt.Line,
			Message: fmt.Sprintf("loop bounds of %s cannot be traced statically; blocked by: %s",
				lt.Var, blockerList(lt.Blockers)),
			Hint: fmt.Sprintf("supply the blocking values via PredictOptions.IntValues or a trip count via TripCounts[%d]", lt.Line),
		})
	}
	for _, w := range u.Trace.WhileOrder {
		wt := u.Trace.Whiles[w]
		if wt.CondResolved && !wt.CondValue {
			continue // degenerate pass reports never-entered loops
		}
		msg := "DO WHILE trip count is not statically determinable"
		if len(wt.Blockers) > 0 {
			msg += "; condition blocked by: " + blockerList(wt.Blockers)
		}
		out = append(out, Diagnostic{
			Code:     "HPF0002",
			Severity: SevWarning,
			Line:     wt.Line,
			Message:  msg,
			Hint:     fmt.Sprintf("supply an iteration count via PredictOptions.TripCounts[%d]", wt.Line),
		})
	}
	return out
}

func blockerList(bs []Blocker) string {
	if len(bs) == 0 {
		return "run-time data"
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.String()
	}
	return strings.Join(parts, "; ")
}
