package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustAppend(t *testing.T, j *journal, rec record) {
	t.Helper()
	if err := j.append(rec); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	rec := record{Job: "j1", State: StateSubmitted, Time: time.Unix(100, 0).UTC(), Kind: "predict"}
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	line := frame(payload)
	if line[len(line)-1] != '\n' {
		t.Fatalf("frame must end in newline: %q", line)
	}
	got, ok := parseLine(line[:len(line)-1])
	if !ok {
		t.Fatalf("parseLine rejected freshly framed line %q", line)
	}
	if got.Job != "j1" || got.State != StateSubmitted || got.Kind != "predict" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestParseLineRejectsDamage(t *testing.T) {
	payload, _ := json.Marshal(record{Job: "j1", State: StateDone})
	line := frame(payload)
	line = line[:len(line)-1] // strip newline as replay does

	cases := map[string][]byte{
		"empty":        nil,
		"too short":    []byte("0123"),
		"no space":     bytes.Replace(line, []byte(" "), []byte("x"), 1),
		"bad hex":      append([]byte("zzzzzzzz "), line[9:]...),
		"flipped bit":  append(append([]byte{}, line[:len(line)-2]...), line[len(line)-2]^0x40, line[len(line)-1]),
		"empty job":    frameRec(t, record{State: StateDone}),
		"empty state":  frameRec(t, record{Job: "j1"}),
		"not json":     frame([]byte("hello"))[:14],
		"crc mismatch": append([]byte("00000000 "), line[9:]...),
	}
	for name, c := range cases {
		if _, ok := parseLine(c); ok {
			t.Errorf("%s: parseLine accepted %q", name, c)
		}
	}
}

func frameRec(t *testing.T, rec record) []byte {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	line := frame(payload)
	return line[:len(line)-1]
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	mustAppend(t, j, record{Job: "a", State: StateSubmitted, Kind: "predict"})
	mustAppend(t, j, record{Job: "a", State: StateRunning, Runs: 1})
	mustAppend(t, j, record{Job: "a", State: StateCheckpointed, Done: 7})
	mustAppend(t, j, record{Job: "a", State: StateDone, Result: json.RawMessage(`{"x":1}`)})
	j.close()

	j2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if recs[2].Done != 7 || recs[3].State != StateDone {
		t.Fatalf("replay order/content wrong: %+v", recs)
	}
	if j2.ntrunc != 0 {
		t.Fatalf("clean journal reported %d truncations", j2.ntrunc)
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, record{Job: "a", State: StateSubmitted})
	mustAppend(t, j, record{Job: "a", State: StateRunning, Runs: 1})
	j.close()

	// Tear the last record: drop its trailing bytes, as a crash
	// mid-write legitimately leaves behind.
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatalf("journal refused to boot on torn tail: %v", err)
	}
	if len(recs) != 1 || recs[0].State != StateSubmitted {
		t.Fatalf("want 1 surviving record, got %+v", recs)
	}
	if j2.ntrunc != 1 {
		t.Fatalf("ntrunc = %d, want 1", j2.ntrunc)
	}
	// The damage is repaired on disk: appending continues from the
	// truncation point and a further replay is clean.
	mustAppend(t, j2, record{Job: "a", State: StateRunning, Runs: 1})
	j2.close()
	j3, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if len(recs) != 2 || j3.ntrunc != 0 {
		t.Fatalf("post-repair replay: %d records, %d truncations", len(recs), j3.ntrunc)
	}
}

func TestJournalTruncatesCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, record{Job: "a", State: StateSubmitted})
	mustAppend(t, j, record{Job: "b", State: StateSubmitted})
	mustAppend(t, j, record{Job: "c", State: StateSubmitted})
	j.close()

	// Flip a byte inside the SECOND record: replay must stop there and
	// drop record three as well (no resynchronization past damage).
	path := filepath.Join(dir, segName(1))
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines[1][len(lines[1])/2] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(recs) != 1 || recs[0].Job != "a" {
		t.Fatalf("want only record a to survive, got %+v", recs)
	}
	if j2.ntrunc != 1 {
		t.Fatalf("ntrunc = %d, want 1", j2.ntrunc)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, j, record{Job: fmt.Sprintf("j%d", i), State: StateSubmitted})
	}
	snapshot := []record{
		{Job: "keep1", State: StateDone, Kind: "predict"},
		{Job: "keep2", State: StateSubmitted, Kind: "autotune"},
	}
	if err := j.compact(snapshot); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if j.seq != 2 || j.ncomp != 1 {
		t.Fatalf("seq=%d ncomp=%d after compaction", j.seq, j.ncomp)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("old segment survived compaction: %v", err)
	}
	// The new segment remains appendable and replays snapshot + tail.
	mustAppend(t, j, record{Job: "keep2", State: StateRunning, Runs: 1})
	j.close()

	j2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after compaction, want 3", len(recs))
	}
	if recs[0].Job != "keep1" || recs[2].State != StateRunning {
		t.Fatalf("compacted replay content wrong: %+v", recs)
	}
	if j2.seq != 2 {
		t.Fatalf("reopened seq = %d, want 2", j2.seq)
	}
}

func TestJournalMultiSegmentReplay(t *testing.T) {
	// A crash between "rename new segment" and "remove old" leaves both
	// on disk; replay applies them in order so snapshot records win.
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, record{Job: "a", State: StateSubmitted})
	j.close()
	// Simulate the half-finished compaction: write segment 2 directly.
	payload, _ := json.Marshal(record{Job: "a", State: StateDone})
	if err := os.WriteFile(filepath.Join(dir, segName(2)), frame(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(recs) != 2 || recs[1].State != StateDone {
		t.Fatalf("multi-segment replay wrong: %+v", recs)
	}
	if j2.seq != 2 {
		t.Fatalf("active seq = %d, want newest (2)", j2.seq)
	}
}
