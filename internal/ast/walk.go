package ast

// Inspect traverses the AST rooted at n in depth-first order, calling f for
// each node. If f returns false, children of the node are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *BinaryExpr:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *UnaryExpr:
		Inspect(x.X, f)
	case *Section:
		inspectExprs(f, x.Lo, x.Hi, x.Stride)
	case *CallOrIndex:
		inspectExprs(f, x.Args...)
	case *AssignStmt:
		Inspect(x.Lhs, f)
		Inspect(x.Rhs, f)
	case *IfStmt:
		Inspect(x.Cond, f)
		inspectStmts(f, x.Then)
		inspectStmts(f, x.Else)
	case *DoStmt:
		inspectExprs(f, x.From, x.To, x.Step)
		inspectStmts(f, x.Body)
	case *DoWhileStmt:
		Inspect(x.Cond, f)
		inspectStmts(f, x.Body)
	case *ForallStmt:
		for _, ix := range x.Indices {
			inspectExprs(f, ix.Lo, ix.Hi, ix.Stride)
		}
		if x.Mask != nil {
			Inspect(x.Mask, f)
		}
		inspectStmts(f, x.Body)
	case *WhereStmt:
		Inspect(x.Mask, f)
		inspectStmts(f, x.Body)
		inspectStmts(f, x.ElseBody)
	case *CallStmt:
		inspectExprs(f, x.Args...)
	case *PrintStmt:
		inspectExprs(f, x.Args...)
	case *TypeDecl:
		for _, e := range x.Entities {
			for _, b := range e.Dims {
				inspectExprs(f, b.Lo, b.Hi)
			}
		}
	case *ParameterDecl:
		inspectExprs(f, x.Values...)
	case *DimensionDecl:
		for _, e := range x.Entities {
			for _, b := range e.Dims {
				inspectExprs(f, b.Lo, b.Hi)
			}
		}
	case *ProcessorsDir:
		inspectExprs(f, x.Shape...)
	case *TemplateDir:
		for _, b := range x.Dims {
			inspectExprs(f, b.Lo, b.Hi)
		}
	case *AlignDir:
		inspectExprs(f, x.TargetSubs...)
	case *DistributeDir:
		for _, df := range x.Formats {
			if df.Arg != nil {
				Inspect(df.Arg, f)
			}
		}
	case *Program:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
		for _, d := range x.Directives {
			Inspect(d, f)
		}
		inspectStmts(f, x.Body)
	}
}

func inspectExprs(f func(Node) bool, exprs ...Expr) {
	for _, e := range exprs {
		if e != nil {
			Inspect(e, f)
		}
	}
}

func inspectStmts(f func(Node) bool, stmts []Stmt) {
	for _, s := range stmts {
		Inspect(s, f)
	}
}
