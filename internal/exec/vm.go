package exec

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/obs"
	"hpfperf/internal/sem"
)

// Options controls program execution.
type Options struct {
	// Runs is the number of independently perturbed timed runs to average
	// (the paper averaged 1000 measured runs; a handful reproduces the
	// same statistics on the deterministic simulator). Default 1.
	Runs int
	// MaxSteps bounds statement executions as a runaway guard.
	MaxSteps int64
	// Sequential forces the timed runs to execute one after another on a
	// single goroutine (they run concurrently by default when Runs > 1;
	// results are identical either way — each run gets its own
	// deterministically seeded machine clone).
	Sequential bool
}

// Result of executing a program on the simulated machine.
type Result struct {
	// MeasuredUS is the mean measured completion time in microseconds.
	MeasuredUS float64
	// RunsUS holds the per-run measured times.
	RunsUS []float64
	// PerNodeUS holds the final clock of every node (last run).
	PerNodeUS []float64
	// Printed collects list-directed output lines.
	Printed []string
	// Stats holds simulator counters from the last run.
	Stats ipsc.Stats
	// Steps is the number of executed statements (last run).
	Steps int64
}

// VM executes an SPMD node program against the machine model.
type VM struct {
	prog    *hir.Program
	mach    *ipsc.Machine
	grid    *dist.Grid
	ctx     context.Context
	arrays  map[string]*array
	env     map[string]val
	costs   map[hir.Stmt]*stCost
	coords  [][]int
	printed []string
	steps   int64
	maxStep int64
	curLine int
}

// Run compiles-in and executes the program, averaging opts.Runs timed runs.
func Run(prog *hir.Program, mach *ipsc.Machine, opts Options) (*Result, error) {
	return RunContext(context.Background(), prog, mach, opts)
}

// RunContext is Run with cooperative cancellation: the statement loop
// checks ctx every ctxCheckSteps executed statements, so a cancelled or
// timed-out request escapes a long simulation mid-sweep instead of
// running it to completion.
func RunContext(ctx context.Context, prog *hir.Program, mach *ipsc.Machine, opts Options) (*Result, error) {
	if opts.Runs <= 0 {
		opts.Runs = 1
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 2_000_000_000
	}
	_, span := obs.Start(ctx, "exec.vm")
	defer span.End()
	span.SetAttrInt("runs", opts.Runs)
	grid := prog.Info.Grid
	span.SetAttrInt("procs", grid.Size())
	if grid.Size() != mach.Nodes() {
		return nil, fmt.Errorf("exec: program grid %s has %d processors but machine has %d nodes",
			grid, grid.Size(), mach.Nodes())
	}
	res := &Result{}
	res.RunsUS = make([]float64, opts.Runs)

	type runOut struct {
		vm  *VM
		err error
	}
	outs := make([]runOut, opts.Runs)
	oneRun := func(run int) {
		m := mach.CloneForRun(run)
		vm := &VM{prog: prog, mach: m, grid: grid, ctx: ctx, maxStep: opts.MaxSteps}
		vm.coords = make([][]int, grid.Size())
		for r := 0; r < grid.Size(); r++ {
			vm.coords[r] = grid.Coords(r)
		}
		vm.analyzeCosts()
		vm.arrays = make(map[string]*array)
		for name, sym := range prog.Info.Symbols {
			if sym.Kind == sem.SymArray {
				vm.arrays[name] = newArray(name, sym.Type, sym.Bounds)
			}
		}
		vm.env = make(map[string]val)
		if err := vm.execStmts(prog.Body, vm.freePC()); err != nil {
			outs[run] = runOut{err: err}
			return
		}
		res.RunsUS[run] = m.MeasuredTimeUS()
		outs[run] = runOut{vm: vm}
	}
	if opts.Sequential || opts.Runs == 1 {
		for run := 0; run < opts.Runs; run++ {
			oneRun(run)
		}
	} else {
		// Timed runs are independent: fan them out, bounded by the CPU
		// count (share memory by communicating completion, not state).
		sem := make(chan struct{}, maxParallel())
		var wg sync.WaitGroup
		for run := 0; run < opts.Runs; run++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(run int) {
				defer wg.Done()
				defer func() { <-sem }()
				oneRun(run)
			}(run)
		}
		wg.Wait()
	}
	var vm *VM
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		vm = o.vm
	}
	for _, t := range res.RunsUS {
		res.MeasuredUS += t / float64(opts.Runs)
	}
	res.PerNodeUS = make([]float64, mach.Nodes())
	for r := 0; r < mach.Nodes(); r++ {
		res.PerNodeUS[r] = vm.mach.Time(r)
	}
	res.Printed = vm.printed
	res.Stats = vm.mach.Stats
	res.Steps = vm.steps
	return res, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// freePC returns an unconstrained partition context (one slot per grid
// dimension, -1 = unconstrained).
func (vm *VM) freePC() []int {
	pc := make([]int, len(vm.grid.Shape))
	for i := range pc {
		pc[i] = -1
	}
	return pc
}

// matches reports whether a rank satisfies the partition constraints.
func (vm *VM) matches(pc []int, rank int) bool {
	c := vm.coords[rank]
	for d, want := range pc {
		if want >= 0 && c[d] != want {
			return false
		}
	}
	return true
}

// charge adds cycles to every rank matching the partition context.
func (vm *VM) charge(pc []int, cycles float64) {
	if cycles == 0 {
		return
	}
	for r := 0; r < vm.grid.Size(); r++ {
		if vm.matches(pc, r) {
			vm.mach.Compute(r, cycles)
		}
	}
}

func (vm *VM) execStmts(ss []hir.Stmt, pc []int) error {
	for _, s := range ss {
		if err := vm.execStmt(s, pc); err != nil {
			return err
		}
	}
	return nil
}

// ctxCheckSteps is how many executed statements may pass between
// cooperative cancellation checks; at simulator speeds this bounds
// cancellation latency well below a millisecond.
const ctxCheckSteps = 1024

func (vm *VM) tick() error {
	vm.steps++
	if vm.steps > vm.maxStep {
		return vm.rtErrf("execution exceeded %d statements (runaway loop?)", vm.maxStep)
	}
	if vm.steps%ctxCheckSteps == 0 {
		if err := vm.ctx.Err(); err != nil {
			return err
		}
		// Chaos hook: shares the stride so the statement loop stays at
		// one modulo per statement when chaos is off.
		if err := faults.Fire(faults.SiteExec); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) execStmt(s hir.Stmt, pc []int) error {
	vm.curLine = s.Line()
	if err := vm.tick(); err != nil {
		return err
	}
	switch x := s.(type) {
	case *hir.Assign:
		return vm.execAssign(x, pc)
	case *hir.Loop:
		return vm.execLoop(x, pc)
	case *hir.While:
		return vm.execWhile(x, pc)
	case *hir.If:
		cost := vm.costs[s]
		vm.charge(pc, cost.cycles)
		cond, err := vm.eval(x.Cond)
		if err != nil {
			return err
		}
		if cond.asB() {
			return vm.execStmts(x.Then, pc)
		}
		return vm.execStmts(x.Else, pc)
	case *hir.Reduce:
		return vm.execReduce(x)
	case *hir.Shift:
		return vm.execShift(x)
	case *hir.AllGather:
		return vm.execAllGather(x)
	case *hir.CShift:
		return vm.execCShift(s, x.Dst, x.Src, x.Dim, x.Shift, nil, true)
	case *hir.EOShift:
		return vm.execCShift(s, x.Dst, x.Src, x.Dim, x.Shift, x.Boundary, false)
	case *hir.FetchElem:
		return vm.execFetch(x, pc)
	case *hir.Print:
		return vm.execPrint(x, pc)
	}
	return vm.rtErrf("unsupported statement %T", s)
}

func (vm *VM) execAssign(x *hir.Assign, pc []int) error {
	cost := vm.costs[x]
	rhs, err := vm.eval(x.Rhs)
	if err != nil {
		return err
	}
	switch lhs := x.Lhs.(type) {
	case *hir.ScalarLV:
		vm.env[lhs.Name] = convertTo(rhs, lhs.Typ)
		vm.charge(pc, cost.cycles)
	case *hir.ElemLV:
		a, ok := vm.arrays[lhs.Array]
		if !ok {
			return vm.rtErrf("array %s has no storage", lhs.Array)
		}
		idx, err := vm.evalSubs(lhs.Subs)
		if err != nil {
			return err
		}
		if err := a.set(idx, rhs); err != nil {
			return vm.rtErrf("%v", err)
		}
		if x.Guard {
			vm.charge(pc, cost.guardCycles)
			m := vm.prog.Info.ArrayMap(lhs.Array)
			for r := 0; r < vm.grid.Size(); r++ {
				if vm.matches(pc, r) && m.Owns(r, idx) {
					vm.mach.Compute(r, cost.cycles)
				}
			}
		} else {
			vm.charge(pc, cost.cycles)
		}
	}
	return nil
}

func (vm *VM) execLoop(x *hir.Loop, pc []int) error {
	cost := vm.costs[x]
	vm.charge(pc, cost.cycles)
	lo, err := vm.eval(x.Lo)
	if err != nil {
		return err
	}
	hi, err := vm.eval(x.Hi)
	if err != nil {
		return err
	}
	step, err := vm.eval(x.Step)
	if err != nil {
		return err
	}
	l, h, st := lo.asI(), hi.asI(), step.asI()
	if st == 0 {
		return vm.rtErrf("loop %s has zero step", x.Var)
	}
	P := vm.mach.Node().P
	if x.Par == nil {
		for i := l; (st > 0 && i <= h) || (st < 0 && i >= h); i += st {
			if err := vm.tick(); err != nil {
				return err
			}
			vm.env[x.Var] = intV(i)
			vm.charge(pc, P.LoopOverheadCycles)
			if err := vm.execStmts(x.Body, pc); err != nil {
				return err
			}
		}
		return nil
	}
	m := vm.prog.Info.ArrayMap(x.Par.Array)
	if m == nil {
		return vm.rtErrf("partitioned loop references unmapped array %s", x.Par.Array)
	}
	dd := m.Dims[x.Par.Dim]
	pd := dd.ProcDim
	inner := append([]int(nil), pc...)
	for i := l; (st > 0 && i <= h) || (st < 0 && i >= h); i += st {
		if err := vm.tick(); err != nil {
			return err
		}
		g := int(i) + x.Par.Offset
		if g < dd.Lo || g > dd.Hi {
			return vm.rtErrf("partitioned index %d outside dimension [%d,%d] of %s", g, dd.Lo, dd.Hi, x.Par.Array)
		}
		inner[pd] = dd.Owner(g)
		vm.env[x.Var] = intV(i)
		vm.charge(inner, P.LoopOverheadCycles)
		if err := vm.execStmts(x.Body, inner); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) execWhile(x *hir.While, pc []int) error {
	cost := vm.costs[x]
	for iter := 0; ; iter++ {
		if iter > 100_000_000 {
			return vm.rtErrf("DO WHILE exceeded 1e8 iterations")
		}
		if err := vm.tick(); err != nil {
			return err
		}
		vm.charge(pc, cost.cycles)
		cond, err := vm.eval(x.Cond)
		if err != nil {
			return err
		}
		if !cond.asB() {
			return nil
		}
		if err := vm.execStmts(x.Body, pc); err != nil {
			return err
		}
	}
}

func (vm *VM) execReduce(x *hir.Reduce) error {
	src, ok := vm.env[x.Src]
	if !ok {
		src = convertTo(val{}, x.Typ)
	}
	vm.env[x.Dst] = convertTo(src, x.Typ)
	bytes := 8
	if x.LocSrc != "" {
		loc := vm.env[x.LocSrc]
		vm.env[x.LocDst] = convertTo(loc, ast.TInteger)
		bytes = 16
	}
	vm.mach.AllReduce(bytes)
	vm.charge(vm.freePC(), vm.costs[x].cycles)
	return nil
}

// stripBytes computes the per-rank halo volume of a shift of array m along
// dimension dim by delta: the number of boundary elements exchanged with
// the neighbour, times the local extent of every other dimension.
func (vm *VM) stripBytes(m *dist.ArrayMap, elemBytes, dim, delta, rank int) int {
	if delta < 0 {
		delta = -delta
	}
	shape := m.LocalShape(rank)
	dd := m.Dims[dim]
	rows := delta
	switch dd.Kind {
	case dist.Block:
		if rows > dd.BlockSize() {
			rows = dd.BlockSize()
		}
	case dist.Cyclic:
		rows = dist.CyclicShiftRows(shape[dim], dd.BlockSize(), delta)
	}
	vol := rows
	for d, e := range shape {
		if d != dim {
			vol *= e
		}
	}
	return vol * elemBytes
}

func (vm *VM) execShift(x *hir.Shift) error {
	sym := vm.prog.Info.Sym(x.Array)
	m := sym.Map
	dd := m.Dims[x.Dim]
	pd := dd.ProcDim
	if pd < 0 || dd.NProc == 1 {
		return nil
	}
	dir := 1
	if x.Offset < 0 {
		dir = -1
	}
	vm.mach.ShiftExchange(
		func(rank int) int { return vm.stripBytes(m, sym.Type.Bytes(), x.Dim, x.Offset, rank) },
		func(rank int) int {
			c := append([]int(nil), vm.coords[rank]...)
			c[pd] += dir
			if c[pd] < 0 || c[pd] >= vm.grid.Shape[pd] {
				return -1 // boundary: no wraparound for halo shifts
			}
			return vm.grid.Rank(c)
		},
	)
	return nil
}

func (vm *VM) execAllGather(x *hir.AllGather) error {
	sym := vm.prog.Info.Sym(x.Array)
	m := sym.Map
	vm.mach.AllGatherV(func(rank int) int {
		return m.LocalCount(rank) * sym.Type.Bytes()
	})
	return nil
}

// execCShift implements CSHIFT (circular=true) and EOSHIFT/TSHIFT
// functionally and charges the exchange plus the local copy.
func (vm *VM) execCShift(stmt hir.Stmt, dstName, srcName string, dim int, shiftE, boundary hir.Expr, circular bool) error {
	dst, ok := vm.arrays[dstName]
	if !ok {
		return vm.rtErrf("array %s has no storage", dstName)
	}
	src, ok := vm.arrays[srcName]
	if !ok {
		return vm.rtErrf("array %s has no storage", srcName)
	}
	sv, err := vm.eval(shiftE)
	if err != nil {
		return err
	}
	shift := int(sv.asI())
	bval := 0.0
	if boundary != nil {
		bv, err := vm.eval(boundary)
		if err != nil {
			return err
		}
		bval = bv.asF()
	}
	// Functional copy: dst(..., i, ...) = src(..., i+shift, ...) with
	// circular wraparound or boundary fill.
	b := src.bounds[dim]
	n := b[1] - b[0] + 1
	idx := make([]int, len(src.bounds))
	for d := range idx {
		idx[d] = src.bounds[d][0]
	}
	total := src.elems()
	srcIdx := make([]int, len(idx))
	for k := 0; k < total; k++ {
		copy(srcIdx, idx)
		j := idx[dim] - b[0] + shift
		inRange := true
		if circular {
			j = ((j % n) + n) % n
		} else if j < 0 || j >= n {
			inRange = false
		}
		var v float64
		if inRange {
			srcIdx[dim] = b[0] + j
			off, err := src.offset(srcIdx)
			if err != nil {
				return vm.rtErrf("%v", err)
			}
			v = src.data[off]
		} else {
			v = bval
		}
		off, err := dst.offset(idx)
		if err != nil {
			return vm.rtErrf("%v", err)
		}
		dst.data[off] = v
		// Advance the index vector (column-major order).
		for d := 0; d < len(idx); d++ {
			idx[d]++
			if idx[d] <= src.bounds[d][1] {
				break
			}
			idx[d] = src.bounds[d][0]
		}
	}

	// Timing: boundary exchange with the neighbour in the shift direction
	// plus the local data movement.
	sym := vm.prog.Info.Sym(srcName)
	m := sym.Map
	if m != nil && !m.Replicated && dim < len(m.Dims) && m.Dims[dim].ProcDim >= 0 && m.Dims[dim].NProc > 1 {
		pd := m.Dims[dim].ProcDim
		dir := 1
		if shift < 0 {
			dir = -1
		}
		vm.mach.ShiftExchange(
			func(rank int) int { return vm.stripBytes(m, sym.Type.Bytes(), dim, shift, rank) },
			func(rank int) int {
				c := append([]int(nil), vm.coords[rank]...)
				c[pd] += dir
				if circular {
					c[pd] = ((c[pd] % vm.grid.Shape[pd]) + vm.grid.Shape[pd]) % vm.grid.Shape[pd]
				} else if c[pd] < 0 || c[pd] >= vm.grid.Shape[pd] {
					return -1
				}
				r := vm.grid.Rank(c)
				if r == rank {
					return -1
				}
				return r
			},
		)
	}
	M := vm.mach.Node().M
	copyCycles := M.LoadCycles + M.StoreCycles + 2
	for r := 0; r < vm.grid.Size(); r++ {
		local := src.elems()
		if m != nil && !m.Replicated {
			local = m.LocalCount(r)
		}
		vm.mach.Compute(r, float64(local)*copyCycles)
	}
	vm.charge(vm.freePC(), vm.costs[stmt].cycles)
	return nil
}

func (vm *VM) execFetch(x *hir.FetchElem, pc []int) error {
	a, ok := vm.arrays[x.Array]
	if !ok {
		return vm.rtErrf("array %s has no storage", x.Array)
	}
	idx, err := vm.evalSubs(x.Subs)
	if err != nil {
		return err
	}
	v, err := a.get(idx)
	if err != nil {
		return vm.rtErrf("%v", err)
	}
	vm.env[x.Dst] = convertTo(v, x.Typ)
	m := vm.prog.Info.ArrayMap(x.Array)
	owner := 0
	if m != nil {
		owner = m.PrimaryOwner(idx)
	}
	vm.mach.FetchBroadcast(owner, x.Typ.Bytes())
	vm.charge(pc, vm.costs[x].cycles)
	return nil
}

func (vm *VM) execPrint(x *hir.Print, pc []int) error {
	var parts []string
	for _, a := range x.Args {
		if c, ok := a.(*hir.Const); ok && c.Val.Type == ast.TCharacter {
			continue
		}
		v, err := vm.eval(a)
		if err != nil {
			return err
		}
		parts = append(parts, v.String())
	}
	vm.printed = append(vm.printed, strings.Join(parts, " "))
	vm.charge(pc, vm.costs[x].cycles)
	vm.mach.HostIO(16 * len(x.Args))
	return nil
}
