// Package faults is a deterministic, seeded fault-injection layer for
// resilience testing. Named injection sites are threaded through the
// pipeline (compile, interpreter AAU loop, simulated-execution VM step,
// sweep cache build, sweep worker, each hpfserve handler); when an
// injector is active, each site rolls a seeded pseudo-random decision
// per call and — at the configured rate — returns a typed transient
// error, panics, or sleeps. With no active injector every site is a
// single atomic pointer load, so production paths pay essentially
// nothing.
//
// Activation is process-global (chaos is a process-level property):
// hpfserve's -chaos flag and the HPFPERF_FAULTS environment variable
// both parse a spec of the form
//
//	site:rate[:kind[:delay]][,site:rate...]
//
// e.g. "compile:0.05,server.predict:0.1:panic,exec:0.02:delay:5ms".
// Kinds are "error" (default), "panic" and "delay". Decisions are
// driven by a per-rule call counter mixed with the injector seed, so
// the number of injections over N calls to a site is reproducible for
// a given seed regardless of goroutine interleaving.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind selects what an injection does at its site.
type Kind int

const (
	// KindError makes the site return an *InjectedError (transient).
	KindError Kind = iota
	// KindPanic makes the site panic (exercising recovery paths).
	KindPanic
	// KindDelay makes the site sleep for the rule's delay.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection site names threaded through the pipeline.
const (
	SiteCompile = "compile" // front-end pipeline inside the sweep cache
	SiteCache   = "cache"   // interpretation-report cache build
	SiteInterp  = "interp"  // interpreter AAU loop
	SiteExec    = "exec"    // simulated-execution VM statement loop
	SiteSweep   = "sweep"   // sweep worker, once per point attempt
)

// ServerSite names the injection site of one hpfserve route.
func ServerSite(route string) string { return "server." + route }

// knownSites validates specs against the sites actually threaded
// through the code, so a typo in a chaos spec fails loudly instead of
// silently injecting nothing.
var knownSites = map[string]bool{
	SiteCompile:            true,
	SiteCache:              true,
	SiteInterp:             true,
	SiteExec:               true,
	SiteSweep:              true,
	ServerSite("predict"):  true,
	ServerSite("measure"):  true,
	ServerSite("autotune"): true,
	ServerSite("analyze"):  true,
}

// Sites returns the valid injection-site names, sorted.
func Sites() []string {
	out := make([]string, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// InjectedError is the typed error returned by KindError injections.
// It is transient: retry layers (sweep point retry, hpfclient) treat it
// as retryable, and caches must not memoize it.
type InjectedError struct {
	Site string
}

func (e *InjectedError) Error() string {
	return "faults: injected error at site " + e.Site
}

// Transient marks the error retryable (see sweep.IsTransient).
func (e *InjectedError) Transient() bool { return true }

// DefaultDelay is the sleep applied by KindDelay rules that carry no
// explicit duration.
const DefaultDelay = 2 * time.Millisecond

// Rule is one site's injection configuration.
type Rule struct {
	Site  string
	Rate  float64 // injection probability per call, in [0, 1]
	Kind  Kind
	Delay time.Duration // KindDelay only; 0 = DefaultDelay
}

// rule pairs a Rule with its live counters (never copied after Add).
type rule struct {
	Rule
	calls atomic.Uint64
	fired atomic.Uint64
}

// Injector holds an immutable rule set plus per-rule counters. Build
// one with New/Parse, then install it with Activate. A nil *Injector
// fires nothing.
type Injector struct {
	seed  uint64
	rules map[string][]*rule
}

// New returns an empty injector with the given decision seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), rules: make(map[string][]*rule)}
}

// Add appends a rule. The site must be one of Sites(); rate must be in
// [0, 1]. Multiple rules per site compose (each rolls independently).
func (inj *Injector) Add(r Rule) error {
	if !knownSites[r.Site] {
		return fmt.Errorf("faults: unknown site %q (valid: %s)", r.Site, strings.Join(Sites(), ", "))
	}
	if r.Rate < 0 || r.Rate > 1 {
		return fmt.Errorf("faults: site %s: rate %g out of [0,1]", r.Site, r.Rate)
	}
	if r.Kind == KindDelay && r.Delay <= 0 {
		r.Delay = DefaultDelay
	}
	inj.rules[r.Site] = append(inj.rules[r.Site], &rule{Rule: r})
	return nil
}

// Parse builds an injector from a comma-separated spec
// ("site:rate[:kind[:delay]],...") and seed. An empty spec yields an
// injector that fires nothing.
func Parse(spec string, seed int64) (*Injector, error) {
	inj := New(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("faults: bad spec entry %q (want site:rate[:kind[:delay]])", entry)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad rate in %q: %v", entry, err)
		}
		r := Rule{Site: parts[0], Rate: rate}
		if len(parts) >= 3 {
			switch parts[2] {
			case "error":
				r.Kind = KindError
			case "panic":
				r.Kind = KindPanic
			case "delay":
				r.Kind = KindDelay
			default:
				return nil, fmt.Errorf("faults: bad kind %q in %q (error|panic|delay)", parts[2], entry)
			}
		}
		if len(parts) == 4 {
			if r.Kind != KindDelay {
				return nil, fmt.Errorf("faults: delay given for non-delay rule %q", entry)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("faults: bad delay in %q: %v", entry, err)
			}
			r.Delay = d
		}
		if err := inj.Add(r); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// splitmix64 is the decision hash: counter-indexed so decisions are a
// pure function of (seed, site, kind, call number).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(site string, kind Kind) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h ^ uint64(kind)<<56
}

// decide returns whether call number n of a rule injects.
func decide(seed, site uint64, n uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := splitmix64(seed ^ site ^ n)
	return float64(h>>11)/float64(1<<53) < rate
}

// fire rolls every rule of one site.
func (inj *Injector) fire(site string) error {
	for _, r := range inj.rules[site] {
		n := r.calls.Add(1)
		if !decide(inj.seed, siteHash(site, r.Kind), n, r.Rate) {
			continue
		}
		r.fired.Add(1)
		switch r.Kind {
		case KindPanic:
			panic(fmt.Sprintf("faults: injected panic at site %s", site))
		case KindDelay:
			time.Sleep(r.Delay)
		default:
			return &InjectedError{Site: site}
		}
	}
	return nil
}

// SiteStats reports one rule's activity.
type SiteStats struct {
	Site  string
	Kind  Kind
	Rate  float64
	Calls uint64
	Fired uint64
}

// Stats returns per-rule call/injection counts, sorted by site then kind.
func (inj *Injector) Stats() []SiteStats {
	if inj == nil {
		return nil
	}
	var out []SiteStats
	for site, rs := range inj.rules {
		for _, r := range rs {
			out = append(out, SiteStats{
				Site: site, Kind: r.Kind, Rate: r.Rate,
				Calls: r.calls.Load(), Fired: r.fired.Load(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// active is the process-global injector; nil when chaos is off.
var active atomic.Pointer[Injector]

// Activate installs inj as the process-global injector (nil disables).
func Activate(inj *Injector) { active.Store(inj) }

// Deactivate removes the process-global injector.
func Deactivate() { active.Store(nil) }

// Enabled reports whether an injector is active.
func Enabled() bool { return active.Load() != nil }

// Fire is the injection point called from instrumented sites: a no-op
// (one atomic load) unless an injector is active, in which case it may
// return an *InjectedError, panic, or sleep per the site's rules.
func Fire(site string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(site)
}
