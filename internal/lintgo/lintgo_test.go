package lintgo

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lint(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return File(fset, f)
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

const header = `package p

import (
	"context"

	"hpfperf/internal/obs"
)
`

func TestSpanEndDefer(t *testing.T) {
	fs := lint(t, header+`
func ok(ctx context.Context) {
	ctx, span := obs.Start(ctx, "x")
	defer span.End()
	_ = ctx
}
`)
	if len(fs) != 0 {
		t.Errorf("defer End must be clean; got %v", fs)
	}
}

func TestSpanEndMissing(t *testing.T) {
	fs := lint(t, header+`
func leak(ctx context.Context) {
	_, span := obs.Start(ctx, "x")
	_ = span
}
`)
	if len(fs) != 1 || fs[0].Rule != "span-end" {
		t.Fatalf("want one span-end finding; got %v", fs)
	}
	if !strings.Contains(fs[0].Message, "span") {
		t.Errorf("message should name the span: %q", fs[0].Message)
	}
}

func TestSpanEndEarlyReturnLeaks(t *testing.T) {
	fs := lint(t, header+`
func leak(ctx context.Context, b bool) error {
	_, span := obs.Start(ctx, "x")
	if b {
		return nil
	}
	span.End()
	return nil
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "span-end" {
		t.Fatalf("early return without End must flag; got %v", fs)
	}
}

func TestSpanEndAllBranches(t *testing.T) {
	fs := lint(t, header+`
func ok(ctx context.Context, b bool) error {
	_, span := obs.Start(ctx, "x")
	if b {
		span.End()
		return nil
	}
	span.End()
	return nil
}
`)
	if len(fs) != 0 {
		t.Errorf("End on both branches must be clean; got %v", fs)
	}
}

func TestSpanEndInsideLoopNotCredited(t *testing.T) {
	fs := lint(t, header+`
func leak(ctx context.Context, n int) {
	_, span := obs.Start(ctx, "x")
	for i := 0; i < n; i++ {
		span.End()
	}
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "span-end" {
		t.Fatalf("End only inside a loop must flag; got %v", fs)
	}
}

func TestSpanEndReturnInsideLoopLeaks(t *testing.T) {
	fs := lint(t, header+`
func leak(ctx context.Context, n int) error {
	_, span := obs.Start(ctx, "x")
	for i := 0; i < n; i++ {
		if i == 3 {
			return nil
		}
	}
	span.End()
	return nil
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "span-end" {
		t.Fatalf("return from inside a loop without End must flag; got %v", fs)
	}
}

func TestSpanEndStartChild(t *testing.T) {
	fs := lint(t, header+`
func leak(parent *obs.Span) {
	child := parent.StartChild("x")
	_ = child
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "span-end" {
		t.Fatalf("unended StartChild must flag; got %v", fs)
	}
}

func TestSpanEndClosureIsolated(t *testing.T) {
	// A span opened inside a closure must end inside the closure; the
	// enclosing function's defer does not reach it.
	fs := lint(t, header+`
func leak(ctx context.Context) {
	go func() {
		_, span := obs.Start(ctx, "x")
		_ = span
	}()
}
`)
	if got := rules(fs); len(got) != 1 || got[0] != "span-end" {
		t.Fatalf("closure-opened span without End must flag; got %v", fs)
	}
	fs = lint(t, header+`
func ok(ctx context.Context) {
	go func() {
		_, span := obs.Start(ctx, "x")
		defer span.End()
	}()
}
`)
	if len(fs) != 0 {
		t.Errorf("closure with its own defer must be clean; got %v", fs)
	}
}

func TestCtxFirst(t *testing.T) {
	fs := lint(t, header+`
func RunContext(ctx context.Context, n int) error { return nil }
`)
	if len(fs) != 0 {
		t.Errorf("ctx-first compliant function flagged: %v", fs)
	}

	fs = lint(t, header+`
func BadContext(n int, ctx context.Context) error { return nil }
`)
	if got := rules(fs); len(got) != 1 || got[0] != "ctx-first" {
		t.Fatalf("ctx not first must flag; got %v", fs)
	}

	fs = lint(t, header+`
func AlsoBadContext(n int) error { return nil }
`)
	if got := rules(fs); len(got) != 1 || got[0] != "ctx-first" {
		t.Fatalf("missing ctx must flag; got %v", fs)
	}

	// Unexported and non-Context-suffixed functions are out of scope.
	fs = lint(t, header+`
func runContext(n int) error { return nil }
func Runner(n int) error     { return nil }
`)
	if len(fs) != 0 {
		t.Errorf("out-of-scope functions flagged: %v", fs)
	}

	// Methods are covered too.
	fs = lint(t, header+`
type T struct{}

func (T) DoContext(n int) error { return nil }
`)
	if got := rules(fs); len(got) != 1 || got[0] != "ctx-first" {
		t.Fatalf("method missing ctx must flag; got %v", fs)
	}
}

// TestRepoClean runs the vet over this repository's own sources: the
// invariants the checks encode must actually hold here.
func TestRepoClean(t *testing.T) {
	fs, err := Dir("../..")
	if err != nil {
		t.Fatalf("Dir: %v", err)
	}
	if len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("%s", f)
		}
	}
}

func TestSpanEndOwnershipTransfer(t *testing.T) {
	// Returning the span hands End responsibility to the caller, as
	// obs.Start itself does with the child span it creates.
	fs := lint(t, header+`
func Open(ctx context.Context) (context.Context, *obs.Span) {
	s := obs.SpanFromContext(ctx).StartChild("x")
	return ctx, s
}
`)
	if len(fs) != 0 {
		t.Errorf("ownership-transferring return must be clean; got %v", fs)
	}
}

func TestSpanEndNilGuard(t *testing.T) {
	// `if s == nil { return }` exits the untraced case: a nil span has
	// nothing to end.
	fs := lint(t, header+`
func ok(ctx context.Context) {
	_, s := obs.Start(ctx, "x")
	if s == nil {
		return
	}
	s.SetAttr("k", "v")
	s.End()
}
`)
	if len(fs) != 0 {
		t.Errorf("nil-guarded span must be clean; got %v", fs)
	}
}

func TestCtxFirstSkipsTestFuncs(t *testing.T) {
	fs := lint(t, header+`
import "testing"

func TestSomethingContext(t *testing.T) {}
`)
	if len(fs) != 0 {
		t.Errorf("go-test entry points are out of scope; got %v", fs)
	}
}
