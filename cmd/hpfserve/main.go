// Command hpfserve runs the HPF/Fortran 90D performance-interpretation
// framework as a long-running HTTP/JSON service: POST /v1/predict
// interprets a program, /v1/measure executes it on the simulated
// iPSC/860, /v1/autotune searches directive variants; GET /healthz and
// /metrics expose liveness and counters. Requests share one bounded
// worker pool and one bounded LRU compile/report cache, honor
// per-request deadlines, and drain gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	hpfserve -addr :8080
//	curl -s localhost:8080/v1/predict -d '{"source":"..."}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpfperf/internal/faults"
	"hpfperf/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 0, "LRU cache capacity in entries per kind (0 = default)")
		maxBody    = flag.Int64("max-body", 1<<20, "request body size cap in bytes")
		maxConc    = flag.Int("max-concurrent", 0, "simultaneous request cap (0 = 4x workers)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested timeouts")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
		quiet      = flag.Bool("quiet", false, "suppress request logging")
		queueWait  = flag.Duration("queue-wait", 0, "how long a request may wait for a worker slot before being shed (0 = 10s)")
		queueDepth = flag.Int("queue-depth", 0, "waiting requests admitted before immediate shedding (0 = 4x max-concurrent)")
		brThresh   = flag.Int("breaker-threshold", 0, "consecutive internal failures that open a route's circuit breaker (0 = 8, negative disables)")
		brCooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker sheds a route before probing (0 = 5s)")
		chaos      = flag.String("chaos", "", "fault-injection spec site:rate[:kind[:delay]],... (default from HPFPERF_FAULTS; kinds: error, panic, delay)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "deterministic seed for fault injection decisions")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "hpfserve: ", log.LstdFlags|log.Lmicroseconds)
	var reqLog *log.Logger
	if !*quiet {
		reqLog = logger
	}

	spec := *chaos
	if spec == "" {
		spec = os.Getenv("HPFPERF_FAULTS")
	}
	if spec != "" {
		inj, err := faults.Parse(spec, *chaosSeed)
		if err != nil {
			logger.Fatalf("chaos: %v", err)
		}
		faults.Activate(inj)
		logger.Printf("CHAOS MODE: injecting faults (%s, seed=%d) — not for production use", spec, *chaosSeed)
	}

	srv := server.New(server.Config{
		Workers:          *workers,
		CacheEntries:     *cacheSize,
		MaxBodyBytes:     *maxBody,
		MaxConcurrent:    *maxConc,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		QueueWait:        *queueWait,
		MaxQueueDepth:    *queueDepth,
		BreakerThreshold: *brThresh,
		BreakerCooldown:  *brCooldown,
		Log:              reqLog,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d)", *addr, srv.Engine().Workers())

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
	}

	logger.Printf("shutting down; draining in-flight requests (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	snap := srv.Engine().Snapshot()
	fmt.Fprintf(os.Stderr, "%s\n", snap)
	logger.Printf("bye")
}
