// Closure-compiled prediction core (ROADMAP: "lower the AAG to a
// compact prediction IR"). The tree-walking interpreter re-dispatches on
// hir.Stmt types at every AAU for every sweep point; this file compiles
// the SAAG once per (program, machine, static options) into a tree of
// cost thunks ("cnodes") whose statically determinable inputs — op
// costs, loop triplets without scalar references, communication volumes,
// partition maps, kill sets — are resolved at compile time. A sweep then
// evaluates pre-compiled closures against a tiny per-point state instead
// of re-walking HIR.
//
// Evaluation is bit-identical to the tree walker by construction: every
// floating-point accumulation the walker performs (per-AAU add order,
// clock advance, by-line accumulation) is replayed in exactly the same
// sequence, and the differential suite in equiv_test.go enforces it.
//
// Incremental re-evaluation: EvaluateWith memoizes each top-level
// subtree under a key formed from the resolved critical-variable values
// that feed it (entry values of its scalar read set, pinned-ness of its
// write set, trip-count overrides and traced bounds of its loops). When
// only inputs that feed other subtrees change between sweep points, the
// untouched subtrees replay a recorded op log — the same adds in the
// same order — rather than re-evaluating their closures.
package core

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"

	"hpfperf/internal/analysis"
	"hpfperf/internal/dist"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/sem"
	"hpfperf/internal/sysmodel"
)

// treeWalkOnly forces the reference tree-walking interpreter for every
// Interpret call (the differential-testing escape hatch).
var treeWalkOnly = os.Getenv("HPFPERF_TREEWALK") == "1"

// memoCap bounds the number of memoized subtree evaluations kept per
// compiled program; traceCap bounds memoized definition-tracing runs.
const (
	memoCap  = 4096
	traceCap = 64
)

// Compiled is the closure-compiled form of one (program, machine, static
// options) triple. It is immutable after compilation apart from its
// internal memo tables and safe for concurrent Evaluate/EvaluateWith.
type Compiled struct {
	prog  *hir.Program
	mach  *sysmodel.Machine
	lib   *ipsc.CommLibrary
	opts  Options // Values/TripCounts act as Evaluate defaults
	costs map[hir.Stmt]costParts

	tmpl  *SAAG // metric-free template, cloned per evaluation
	maxID int
	tops  []cnode
	meta  []topMeta

	mu     sync.Mutex
	traces map[string]*analysis.Trace
	memo   map[string]*memoEntry
}

// cnode is one compiled AAU: a cost thunk plus the identifiers needed to
// attribute its results.
type cnode struct {
	id   int
	line int
	fn   func(st *evalState, mult float64) (Metrics, error)
}

// topMeta is the memoization interface of one top-level subtree: the
// dynamic inputs that can change its evaluation between points.
type topMeta struct {
	reads  []string // scalar names the subtree may read from the env
	writes []string // scalar names it may kill or assign (pin-sensitive)
	lines  []int    // loop/while lines consulting Options.TripCounts
	loops  []*hir.Loop
	whiles []*hir.While
}

// memoOp is one replayable side effect of a subtree evaluation.
type memoOp struct {
	kind uint8
	id   int // AAU ID (add/clock) or comm-table index (comm)
	line int
	m    Metrics // scaled metrics for add; (bytes, cost, count) for comm
	s    string  // warning text / env name
	v    sem.Value
}

const (
	mopAdd uint8 = iota
	mopClock
	mopComm
	mopWarn
	mopEnvSet
	mopEnvDel
)

// memoEntry is a recorded subtree evaluation: its op log and the metrics
// the subtree returned.
type memoEntry struct {
	ops   []memoOp
	total Metrics
}

// evalState is the per-evaluation mutable state — the compiled
// counterpart of the Interpreter's byLine/warnings/clock/env fields.
type evalState struct {
	c      *Compiled
	ctx    context.Context
	env    absEnv
	pinned map[string]bool
	trips  map[int]int
	trace  *analysis.Trace

	byID     []*AAU
	recs     []*CommRec
	byLine   map[int]*Metrics
	warnings []string
	clock    float64
	stride   int

	rec *[]memoOp // non-nil while recording a memoizable subtree
}

// ---------------------------------------------------------------------------
// Public API

// CompilePrediction builds the closure-compiled prediction form of prog
// for mach under opts. The returned Compiled can be evaluated repeatedly
// (and concurrently) with varying critical-variable values and trip
// counts; static options (memory model, load model, mask density, branch
// probability, comm model, machine) are bound at compile time.
func CompilePrediction(ctx context.Context, prog *hir.Program, mach *sysmodel.Machine, opts Options) (*Compiled, error) {
	it, err := NewContext(ctx, prog, mach, opts)
	if err != nil {
		return nil, err
	}
	return compile(it)
}

// Evaluate runs the compiled prediction under the Values/TripCounts
// bound at compile time.
func (c *Compiled) Evaluate(ctx context.Context) (*Report, error) {
	return c.evaluate(ctx, c.opts.Values, c.opts.TripCounts, false)
}

// EvaluateWith re-evaluates the prediction under new critical-variable
// values and trip counts, reusing memoized subtree evaluations whose
// resolved inputs are unchanged (the incremental-sweep path).
func (c *Compiled) EvaluateWith(ctx context.Context, values map[string]sem.Value, trips map[int]int) (*Report, error) {
	return c.evaluate(ctx, values, trips, true)
}

// Procs returns the processor-grid size the program was compiled for.
func (c *Compiled) Procs() int { return c.prog.Info.Grid.Size() }

// Program returns the compiled program's name.
func (c *Compiled) Program() string { return c.prog.Name }

// ---------------------------------------------------------------------------
// Compilation

func compile(it *Interpreter) (*Compiled, error) {
	it.costs = make(map[hir.Stmt]costParts)
	it.prepass(it.prog.Body, 0)
	c := &Compiled{
		prog:   it.prog,
		mach:   it.mach,
		lib:    it.lib,
		opts:   it.opts,
		costs:  it.costs,
		tmpl:   BuildSAAG(it.prog),
		traces: make(map[string]*analysis.Trace),
		memo:   make(map[string]*memoEntry),
	}
	c.tmpl.Walk(func(a *AAU) {
		if a.ID > c.maxID {
			c.maxID = a.ID
		}
	})
	c.tops = c.compileAAUs(c.tmpl.Root.Children)
	for _, a := range c.tmpl.Root.Children {
		c.meta = append(c.meta, subtreeMeta(a.Stmt))
	}
	return c, nil
}

func (c *Compiled) compileAAUs(aaus []*AAU) []cnode {
	out := make([]cnode, len(aaus))
	for i, a := range aaus {
		out[i] = c.compileAAU(a)
	}
	return out
}

func (c *Compiled) compileAAU(a *AAU) cnode {
	switch a.Kind {
	case Seq:
		return c.compileSeq(a)
	case Iter, IterD:
		if _, ok := a.Stmt.(*hir.While); ok {
			return c.compileWhile(a)
		}
		return c.compileLoop(a)
	case Condt, CondtD:
		return c.compileCondt(a)
	case Comm:
		return c.compileComm(a)
	case IO:
		return c.compileIO(a)
	}
	err := fmt.Errorf("core: cannot interpret AAU kind %s", a.Kind)
	return cnode{id: a.ID, line: a.Line, fn: func(*evalState, float64) (Metrics, error) {
		return Metrics{}, err
	}}
}

func (c *Compiled) compileSeq(a *AAU) cnode {
	x := a.Stmt.(*hir.Assign)
	parts := c.costs[a.Stmt]
	P := c.mach.Node.P
	base := Metrics{CompUS: parts.compUS, OvhdUS: parts.ovhdUS, Execs: 1}
	if x.Guard {
		base.OvhdUS += P.CyclesToUS(P.GuardCycles)
	}
	var lhs string
	if lv, ok := x.Lhs.(*hir.ScalarLV); ok {
		lhs = lv.Name
	}
	rhs := x.Rhs
	// A right-hand side without scalar references evaluates identically
	// in every environment; resolve it once.
	var staticVal sem.Value
	staticKnown := false
	static := lhs != "" && len(hir.ScalarRefs(rhs)) == 0
	if static {
		staticVal, staticKnown = evalScalar(rhs, nil)
	}
	id, line := a.ID, a.Line
	return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
		if lhs != "" && !st.pinned[lhs] {
			if static {
				if staticKnown {
					st.envSet(lhs, staticVal)
				} else {
					st.envDel(lhs)
				}
			} else if v, ok := evalScalar(rhs, st.env); ok {
				st.envSet(lhs, v)
			} else {
				st.envDel(lhs)
			}
		}
		return st.add(id, line, mult, base), nil
	}}
}

func (c *Compiled) compileWhile(a *AAU) cnode {
	w := a.Stmt.(*hir.While)
	condParts := c.costs[a.Stmt]
	children := c.compileAAUs(a.Children)
	kills := killSet(w.Body)
	id, line := a.ID, a.Line
	return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
		trips, ok := st.trips[line]
		if !ok {
			if wt := st.trace.Whiles[w]; wt != nil && wt.CondResolved && !wt.CondValue {
				trips = 0
			} else {
				return Metrics{}, fmt.Errorf("core: line %d: DO WHILE trip count is a critical value; supply Options.TripCounts[%d]", line, line)
			}
		}
		m := Metrics{CompUS: condParts.compUS * float64(trips+1), OvhdUS: condParts.ovhdUS * float64(trips+1), Execs: 1}
		self := st.add(id, line, mult, m)
		body, err := st.run(children, mult*float64(trips))
		if err != nil {
			return Metrics{}, err
		}
		st.kill(kills)
		self.Accumulate(body)
		return self, nil
	}}
}

func (c *Compiled) compileLoop(a *AAU) cnode {
	x := a.Stmt.(*hir.Loop)
	bound := c.costs[a.Stmt]
	children := c.compileAAUs(a.Children)
	kills := killSet(x.Body)
	P := c.mach.Node.P
	loopOvhdUS := P.CyclesToUS(P.LoopOverheadCycles)
	load := c.opts.LoadModel
	var parMap *dist.ArrayMap
	if x.Par != nil {
		parMap = c.prog.Info.ArrayMap(x.Par.Array)
	}
	// Triplets without scalar references resolve identically in every
	// environment; bind them at compile time.
	static := len(hir.ScalarRefs(x.Lo))+len(hir.ScalarRefs(x.Hi))+len(hir.ScalarRefs(x.Step)) == 0
	var sLo, sHi, sStep int
	var sResolved bool
	if static {
		sLo, sHi, sStep, sResolved = resolveTriplet(x, nil)
	}
	id, line := a.ID, a.Line
	return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
		var lo, hi, step int
		var resolved bool
		if static {
			lo, hi, step, resolved = sLo, sHi, sStep, sResolved
		} else {
			lo, hi, step, resolved = resolveTriplet(x, st.env)
		}
		if !resolved {
			if lt := st.trace.Loops[x]; lt != nil && lt.Resolved {
				lo, hi, step, resolved = lt.Lo, lt.Hi, lt.Step, true
			}
		}
		var localTrips float64
		if !resolved {
			if t, ok := st.trips[line]; ok {
				localTrips = float64(t)
				if x.Par != nil {
					localTrips = partitionTrips(parMap, x.Par, load, 1, t, 1)
				}
			} else {
				return Metrics{}, loopBoundsErr(st.trace, line, x, st.env)
			}
		} else {
			localTrips = float64(countTrips(lo, hi, step))
			if x.Par != nil {
				localTrips = partitionTrips(parMap, x.Par, load, lo, hi, step)
			}
		}
		m := Metrics{CompUS: bound.compUS, OvhdUS: bound.ovhdUS + localTrips*loopOvhdUS, Execs: 1}
		self := st.add(id, line, mult, m)
		if resolved {
			st.envSet(x.Var, sem.IntVal(int64((lo+hi)/2)))
		} else {
			st.envDel(x.Var)
		}
		body, err := st.run(children, mult*localTrips)
		if err != nil {
			return Metrics{}, err
		}
		st.kill(kills)
		st.envDel(x.Var)
		self.Accumulate(body)
		return self, nil
	}}
}

func (c *Compiled) compileCondt(a *AAU) cnode {
	x := a.Stmt.(*hir.If)
	parts := c.costs[a.Stmt]
	P := c.mach.Node.P
	base := Metrics{CompUS: parts.compUS, OvhdUS: parts.ovhdUS + P.CyclesToUS(P.BranchCycles), Execs: 1}
	then := c.compileAAUs(a.Children[:a.ElseStart])
	els := c.compileAAUs(a.Children[a.ElseStart:])
	killsThen := killSet(x.Then)
	killsElse := killSet(x.Else)
	isD := a.Kind == CondtD
	d := c.opts.MaskDensity
	bp := c.opts.BranchProb
	cond := x.Cond
	static := len(hir.ScalarRefs(cond)) == 0
	var sVal sem.Value
	sKnown := false
	if static {
		sVal, sKnown = evalScalar(cond, nil)
	}
	warn := fmt.Sprintf("line %d: IF condition depends on run-time data; weighting branches %.2f/%.2f", a.Line, bp, 1-bp)
	id, line := a.ID, a.Line
	return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
		self := st.add(id, line, mult, base)
		if isD {
			tm, err := st.run(then, mult*d)
			if err != nil {
				return Metrics{}, err
			}
			em, err := st.run(els, mult*(1-d))
			if err != nil {
				return Metrics{}, err
			}
			st.kill(killsThen)
			st.kill(killsElse)
			self.Accumulate(tm)
			self.Accumulate(em)
			return self, nil
		}
		v, ok := sVal, sKnown
		if !static {
			v, ok = evalScalar(cond, st.env)
		}
		if ok {
			branch := then
			if !v.B {
				branch = els
			}
			bm, err := st.run(branch, mult)
			if err != nil {
				return Metrics{}, err
			}
			self.Accumulate(bm)
			return self, nil
		}
		st.warnf(warn)
		tm, err := st.run(then, mult*bp)
		if err != nil {
			return Metrics{}, err
		}
		em, err := st.run(els, mult*(1-bp))
		if err != nil {
			return Metrics{}, err
		}
		st.kill(killsThen)
		st.kill(killsElse)
		self.Accumulate(tm)
		self.Accumulate(em)
		return self, nil
	}}
}

func (c *Compiled) compileComm(a *AAU) cnode {
	recIdx := a.CommRec.ID - 1
	simple := c.opts.SimpleCommModel
	id, line := a.ID, a.Line
	switch x := a.Stmt.(type) {
	case *hir.Shift:
		// Fully static: the offset is part of the HIR node.
		var commUS, bytes float64
		var warn string
		sym := c.prog.Info.Sym(x.Array)
		switch {
		case sym == nil:
			warn = fmt.Sprintf("line %d: shift of unknown array %s ignored", line, x.Array)
		case sym.Map != nil && (x.Dim < 0 || x.Dim >= len(sym.Map.Dims)):
			warn = fmt.Sprintf("line %d: shift of %s along invalid dimension %d ignored", line, x.Array, x.Dim)
		case sym.Map != nil && !sym.Map.Replicated && sym.Map.Dims[x.Dim].NProc > 1:
			vol := stripBytesMax(sym.Map, sym.Type.Bytes(), x.Dim, x.Offset)
			bytes = float64(vol)
			commUS = evalPW(simple, c.lib.Shift, vol)
		}
		return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
			if warn != "" {
				st.warnf(warn)
			}
			st.comm(recIdx, bytes, commUS, mult)
			return st.add(id, line, mult, Metrics{CommUS: commUS, Execs: 1}), nil
		}}
	case *hir.CShift, *hir.EOShift:
		var src string
		var dim int
		var shiftE hir.Expr
		if cs, ok := x.(*hir.CShift); ok {
			src, dim, shiftE = cs.Src, cs.Dim, cs.Shift
		} else {
			eo := x.(*hir.EOShift)
			src, dim, shiftE = eo.Src, eo.Dim, eo.Shift
		}
		sym := c.prog.Info.Sym(src)
		if sym == nil {
			warn := fmt.Sprintf("line %d: shift of unknown array %s ignored", line, src)
			return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
				st.warnf(warn)
				st.comm(recIdx, 0, 0, mult)
				return st.add(id, line, mult, Metrics{Execs: 1}), nil
			}}
		}
		// Local data movement of the shifted copy is shift-independent.
		M := c.mach.Node.M
		local := sym.Elems()
		if sym.Map != nil && !sym.Map.Replicated {
			local = sym.Map.MaxLocalCount()
		}
		compUS := c.mach.Node.P.CyclesToUS(float64(local) * (M.LoadCycles + M.StoreCycles + 2))
		distributed := sym.Map != nil && !sym.Map.Replicated && dim < len(sym.Map.Dims) && sym.Map.Dims[dim].NProc > 1
		elemBytes := sym.Type.Bytes()
		symMap := sym.Map
		lib := c.lib
		unresolvedWarn := fmt.Sprintf("line %d: shift amount unresolved; assuming 1", line)
		volFor := func(shift int) (bytes, commUS float64) {
			if !distributed {
				return 0, 0
			}
			vol := stripBytesMax(symMap, elemBytes, dim, shift)
			return float64(vol), evalPW(simple, lib.Shift, vol)
		}
		if len(hir.ScalarRefs(shiftE)) == 0 {
			// Shift amount is environment-independent: bind it now.
			shift := 1
			known := true
			if v, ok := evalScalar(shiftE, nil); ok {
				shift = int(v.AsInt())
			} else {
				known = false
			}
			bytes, commUS := volFor(shift)
			return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
				if !known {
					st.warnf(unresolvedWarn)
				}
				st.comm(recIdx, bytes, commUS, mult)
				return st.add(id, line, mult, Metrics{CompUS: compUS, CommUS: commUS, Execs: 1}), nil
			}}
		}
		return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
			shift := 1
			if v, ok := evalScalar(shiftE, st.env); ok {
				shift = int(v.AsInt())
			} else {
				st.warnf(unresolvedWarn)
			}
			bytes, commUS := volFor(shift)
			st.comm(recIdx, bytes, commUS, mult)
			return st.add(id, line, mult, Metrics{CompUS: compUS, CommUS: commUS, Execs: 1}), nil
		}}
	case *hir.Reduce:
		b := 8
		if x.LocSrc != "" {
			b = 16
		}
		bytes := float64(b)
		commUS := c.lib.Reduce.Eval(b)
		return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
			st.comm(recIdx, bytes, commUS, mult)
			return st.add(id, line, mult, Metrics{CommUS: commUS, Execs: 1}), nil
		}}
	case *hir.AllGather:
		sym := c.prog.Info.Sym(x.Array)
		total := sym.Elems() * sym.Type.Bytes()
		bytes := float64(total)
		commUS := evalPW(simple, c.lib.Gather, total)
		return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
			st.comm(recIdx, bytes, commUS, mult)
			return st.add(id, line, mult, Metrics{CommUS: commUS, Execs: 1}), nil
		}}
	case *hir.FetchElem:
		bytes := float64(x.Typ.Bytes())
		commUS := evalPW(simple, c.lib.Bcast, x.Typ.Bytes())
		compUS := c.costs[a.Stmt].compUS
		return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
			st.comm(recIdx, bytes, commUS, mult)
			return st.add(id, line, mult, Metrics{CompUS: compUS, CommUS: commUS, Execs: 1}), nil
		}}
	}
	err := fmt.Errorf("core: cannot interpret Comm AAU for %T", a.Stmt)
	return cnode{id: id, line: line, fn: func(*evalState, float64) (Metrics, error) {
		return Metrics{}, err
	}}
}

func (c *Compiled) compileIO(a *AAU) cnode {
	x := a.Stmt.(*hir.Print)
	io := c.mach.Node.IO
	parts := c.costs[a.Stmt]
	commUS := io.HostStartupUS + float64(16*len(x.Args))*io.HostPerByteUS
	bytes := float64(16 * len(x.Args))
	recIdx := a.CommRec.ID - 1
	id, line := a.ID, a.Line
	return cnode{id: id, line: line, fn: func(st *evalState, mult float64) (Metrics, error) {
		st.comm(recIdx, bytes, commUS, mult)
		return st.add(id, line, mult, Metrics{CompUS: parts.compUS, CommUS: commUS, Execs: 1}), nil
	}}
}

// ---------------------------------------------------------------------------
// Evaluation

func (c *Compiled) evaluate(ctx context.Context, values map[string]sem.Value, trips map[int]int, memoize bool) (*Report, error) {
	// Chaos hook at entry, matching the tree walker.
	if err := faults.Fire(faults.SiteInterp); err != nil {
		return nil, err
	}
	trace := c.traceFor(values)
	g, byID, recs := c.instantiate()
	st := &evalState{
		c:      c,
		ctx:    ctx,
		env:    make(absEnv, len(values)),
		pinned: make(map[string]bool, len(values)),
		trips:  trips,
		trace:  trace,
		byID:   byID,
		recs:   recs,
		byLine: make(map[int]*Metrics),
	}
	for k, v := range values {
		st.env[k] = v
		st.pinned[k] = true
	}
	total, err := st.runTop(memoize)
	if err != nil {
		return nil, err
	}
	g.Root.ClockUS = st.clock
	return &Report{
		Program:  c.prog.Name,
		Procs:    c.prog.Info.Grid.Size(),
		SAAG:     g,
		Total:    total,
		ByLine:   st.byLine,
		Warnings: st.warnings,
	}, nil
}

// instantiate clones the SAAG template into a fresh metric-free graph
// with its own communication table.
func (c *Compiled) instantiate() (*SAAG, []*AAU, []*CommRec) {
	byID := make([]*AAU, c.maxID+1)
	recs := make([]*CommRec, len(c.tmpl.Table))
	var clone func(a *AAU) *AAU
	clone = func(a *AAU) *AAU {
		n := &AAU{ID: a.ID, Kind: a.Kind, Label: a.Label, Line: a.Line, Stmt: a.Stmt, ElseStart: a.ElseStart}
		if a.CommRec != nil {
			r := *a.CommRec
			r.AAU = n
			n.CommRec = &r
			recs[r.ID-1] = &r
		}
		if len(a.Children) > 0 {
			n.Children = make([]*AAU, len(a.Children))
			for i, ch := range a.Children {
				n.Children[i] = clone(ch)
			}
		}
		byID[a.ID] = n
		return n
	}
	root := clone(c.tmpl.Root)
	g := &SAAG{Program: c.tmpl.Program, Root: root, Table: recs, nextID: c.tmpl.nextID}
	return g, byID, recs
}

// traceFor returns the (memoized) definition-tracing result for a pinned
// value set.
func (c *Compiled) traceFor(values map[string]sem.Value) *analysis.Trace {
	key := valuesFP(values)
	c.mu.Lock()
	if t, ok := c.traces[key]; ok {
		c.mu.Unlock()
		return t
	}
	c.mu.Unlock()
	t := analysis.TraceProgram(c.prog, values)
	c.mu.Lock()
	if len(c.traces) >= traceCap {
		c.traces = make(map[string]*analysis.Trace)
	}
	c.traces[key] = t
	c.mu.Unlock()
	return t
}

// runTop evaluates the root's children, consulting the subtree memo when
// memoize is set. Mirrors interpAAUs at the root level.
func (st *evalState) runTop(memoize bool) (Metrics, error) {
	var total Metrics
	for i, n := range st.c.tops {
		if st.stride++; st.stride >= ctxCheckStride {
			st.stride = 0
			if err := st.ctx.Err(); err != nil {
				return total, err
			}
			if err := faults.Fire(faults.SiteInterp); err != nil {
				return total, err
			}
		}
		var m Metrics
		var err error
		if memoize {
			key := st.c.memoKey(i, st)
			if e := st.c.memoGet(key); e != nil {
				m = st.replay(e)
			} else {
				var ops []memoOp
				st.rec = &ops
				m, err = n.fn(st, 1)
				st.rec = nil
				if err == nil {
					st.c.memoPut(key, &memoEntry{ops: ops, total: m})
				}
			}
		} else {
			m, err = n.fn(st, 1)
		}
		if err != nil {
			return total, err
		}
		st.setClock(n.id)
		total.Accumulate(m)
	}
	return total, nil
}

// run evaluates nested children, mirroring interpAAUs: per-AAU stride
// checks, per-child clock stamps, metric accumulation.
func (st *evalState) run(ns []cnode, mult float64) (Metrics, error) {
	var total Metrics
	for _, n := range ns {
		if st.stride++; st.stride >= ctxCheckStride {
			st.stride = 0
			if err := st.ctx.Err(); err != nil {
				return total, err
			}
			if err := faults.Fire(faults.SiteInterp); err != nil {
				return total, err
			}
		}
		m, err := n.fn(st, mult)
		if err != nil {
			return total, err
		}
		st.setClock(n.id)
		total.Accumulate(m)
	}
	return total, nil
}

// add mirrors Interpreter.add: scale by multiplicity, accumulate into
// the AAU, the clock and the line index.
func (st *evalState) add(id, line int, mult float64, m Metrics) Metrics {
	m.CompUS *= mult
	m.CommUS *= mult
	m.OvhdUS *= mult
	m.Execs *= mult
	st.applyAdd(id, line, m)
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopAdd, id: id, line: line, m: m})
	}
	return m
}

func (st *evalState) applyAdd(id, line int, m Metrics) {
	a := st.byID[id]
	a.Metrics.Accumulate(m)
	st.clock += m.TotalUS()
	if line > 0 {
		lm, ok := st.byLine[line]
		if !ok {
			lm = &Metrics{}
			st.byLine[line] = lm
		}
		lm.Accumulate(m)
	}
}

func (st *evalState) setClock(id int) {
	st.byID[id].ClockUS = st.clock
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopClock, id: id})
	}
}

func (st *evalState) comm(recIdx int, bytes, costUS, mult float64) {
	r := st.recs[recIdx]
	r.Bytes = bytes
	r.CostUS = costUS
	r.Count += mult
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopComm, id: recIdx, m: Metrics{CompUS: bytes, CommUS: costUS, OvhdUS: mult}})
	}
}

func (st *evalState) warnf(text string) {
	st.warnings = append(st.warnings, text)
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopWarn, s: text})
	}
}

func (st *evalState) envSet(name string, v sem.Value) {
	st.env[name] = v
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopEnvSet, s: name, v: v})
	}
}

func (st *evalState) envDel(name string) {
	delete(st.env, name)
	if st.rec != nil {
		*st.rec = append(*st.rec, memoOp{kind: mopEnvDel, s: name})
	}
}

// kill is the compiled counterpart of Interpreter.killAssigned: remove
// every non-pinned name of a precomputed kill set.
func (st *evalState) kill(names []string) {
	for _, n := range names {
		if st.pinned[n] {
			continue
		}
		st.envDel(n)
	}
}

// replay re-applies a recorded subtree evaluation: the same adds in the
// same order (so clocks, by-line sums and totals stay bit-identical),
// plus env/comm/warning side effects.
func (st *evalState) replay(e *memoEntry) Metrics {
	for i := range e.ops {
		op := &e.ops[i]
		switch op.kind {
		case mopAdd:
			st.applyAdd(op.id, op.line, op.m)
		case mopClock:
			st.byID[op.id].ClockUS = st.clock
		case mopComm:
			r := st.recs[op.id]
			r.Bytes = op.m.CompUS
			r.CostUS = op.m.CommUS
			r.Count += op.m.OvhdUS
		case mopWarn:
			st.warnings = append(st.warnings, op.s)
		case mopEnvSet:
			st.env[op.s] = op.v
		case mopEnvDel:
			delete(st.env, op.s)
		}
	}
	return e.total
}

// ---------------------------------------------------------------------------
// Memoization keys

func (c *Compiled) memoGet(key string) *memoEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memo[key]
}

func (c *Compiled) memoPut(key string, e *memoEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.memo) >= memoCap {
		c.memo = make(map[string]*memoEntry)
	}
	c.memo[key] = e
}

// memoKey fingerprints every dynamic input of top-level subtree i: the
// entry values of its scalar read set, the pinned-ness of its write set,
// trip-count overrides for its loop lines, and the traced bounds of its
// loops and whiles. Two evaluations with equal keys take identical paths
// through the subtree's closures.
func (c *Compiled) memoKey(i int, st *evalState) string {
	meta := &c.meta[i]
	var b strings.Builder
	fmt.Fprintf(&b, "%d", i)
	for _, n := range meta.reads {
		if v, ok := st.env[n]; ok {
			b.WriteString("|r:")
			b.WriteString(n)
			b.WriteByte('=')
			b.WriteString(valKey(v))
		} else {
			b.WriteString("|r:")
			b.WriteString(n)
			b.WriteString("=?")
		}
	}
	for _, n := range meta.writes {
		if st.pinned[n] {
			b.WriteString("|p:")
			b.WriteString(n)
		}
	}
	for _, l := range meta.lines {
		if t, ok := st.trips[l]; ok {
			fmt.Fprintf(&b, "|t:%d=%d", l, t)
		}
	}
	for _, lp := range meta.loops {
		if lt := st.trace.Loops[lp]; lt != nil && lt.Resolved {
			fmt.Fprintf(&b, "|L%d:%d:%d:%d", lp.SrcLine, lt.Lo, lt.Hi, lt.Step)
		}
	}
	for _, w := range meta.whiles {
		if wt := st.trace.Whiles[w]; wt != nil && wt.CondResolved {
			fmt.Fprintf(&b, "|W%d:%t", w.SrcLine, wt.CondValue)
		}
	}
	return b.String()
}

// valKey canonicalizes a sem.Value for fingerprinting (bit-exact on
// reals).
func valKey(v sem.Value) string {
	return fmt.Sprintf("%d:%d:%x:%t", v.Type, v.I, math.Float64bits(v.R), v.B)
}

// valuesFP fingerprints a whole pinned-value set (the tracing memo key).
func valuesFP(values map[string]sem.Value) string {
	if len(values) == 0 {
		return ""
	}
	names := make([]string, 0, len(values))
	for k := range values {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(valKey(values[n]))
		b.WriteByte(';')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Subtree metadata

// subtreeMeta computes the dynamic-input interface of one top-level
// statement subtree.
func subtreeMeta(s hir.Stmt) topMeta {
	var m topMeta
	readSeen := make(map[string]bool)
	lineSeen := make(map[int]bool)
	addReads := func(es ...hir.Expr) {
		for _, e := range es {
			if e == nil {
				continue
			}
			for _, n := range hir.ScalarRefs(e) {
				if !readSeen[n] {
					readSeen[n] = true
					m.reads = append(m.reads, n)
				}
			}
		}
	}
	addLine := func(l int) {
		if !lineSeen[l] {
			lineSeen[l] = true
			m.lines = append(m.lines, l)
		}
	}
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				addReads(x.Rhs)
			case *hir.Loop:
				addReads(x.Lo, x.Hi, x.Step)
				addLine(x.SrcLine)
				m.loops = append(m.loops, x)
				scan(x.Body)
			case *hir.While:
				addLine(x.SrcLine)
				m.whiles = append(m.whiles, x)
				scan(x.Body)
			case *hir.If:
				addReads(x.Cond)
				scan(x.Then)
				scan(x.Else)
			case *hir.CShift:
				addReads(x.Shift)
			case *hir.EOShift:
				addReads(x.Shift)
			}
		}
	}
	scan([]hir.Stmt{s})
	m.writes = killSet([]hir.Stmt{s})
	return m
}

// killSet lists, in deterministic order, every scalar name the
// tree-walker's killAssigned would delete for this subtree.
func killSet(ss []hir.Stmt) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				if lv, ok := x.Lhs.(*hir.ScalarLV); ok {
					add(lv.Name)
				}
			case *hir.Loop:
				add(x.Var)
				scan(x.Body)
			case *hir.While:
				scan(x.Body)
			case *hir.If:
				scan(x.Then)
				scan(x.Else)
			case *hir.Reduce:
				add(x.Dst)
				add(x.LocDst)
			case *hir.FetchElem:
				add(x.Dst)
			}
		}
	}
	scan(ss)
	return out
}
