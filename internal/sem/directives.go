package sem

import (
	"fmt"
	"sort"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/token"
)

// alignTerm is the resolved mapping of one source-array dimension onto a
// target (array or template) dimension: srcDim ↦ targetDim with an
// additive constant offset (A(I) WITH T(I+off)).
type alignTerm struct {
	srcDim, dstDim, off int
}

// alignRec records an ALIGN directive after syntactic resolution.
type alignRec struct {
	target string
	terms  []alignTerm
	pos    token.Pos
}

// resolveDirectives processes PROCESSORS, TEMPLATE, ALIGN and DISTRIBUTE
// directives, producing the processor grid and a dist.ArrayMap for every
// array symbol (replicated by default, per the paper's compiler).
func (a *analyzer) resolveDirectives() {
	prog := a.info.Prog
	aligns := make(map[string]alignRec)
	type distRec struct {
		dir *ast.DistributeDir
	}
	var distributes []distRec

	// Pass 1: PROCESSORS and TEMPLATE.
	for _, d := range prog.Directives {
		switch x := d.(type) {
		case *ast.ProcessorsDir:
			if a.info.Grid != nil {
				a.errorf(x.Pos(), "multiple PROCESSORS directives (already have %s)", a.info.Grid.Name)
				continue
			}
			shape := make([]int, 0, len(x.Shape))
			for _, e := range x.Shape {
				v, err := EvalConstInt(e, a.info.Consts)
				if err != nil {
					a.errorf(x.Pos(), "PROCESSORS %s: %v", x.Name, err)
					return
				}
				shape = append(shape, v)
			}
			if len(shape) == 0 {
				shape = []int{1}
			}
			g, err := dist.NewGrid(x.Name, shape...)
			if err != nil {
				a.errorf(x.Pos(), "%v", err)
				continue
			}
			a.info.Grid = g
			a.info.Symbols[x.Name] = &Symbol{Name: x.Name, Kind: SymProcs}
		case *ast.TemplateDir:
			if _, dup := a.info.Templates[x.Name]; dup {
				a.errorf(x.Pos(), "template %s declared twice", x.Name)
				continue
			}
			var dims []dist.DimDist
			for i, b := range x.Dims {
				lo := 1
				if b.Lo != nil {
					v, err := EvalConstInt(b.Lo, a.info.Consts)
					if err != nil {
						a.errorf(x.Pos(), "template %s dim %d: %v", x.Name, i+1, err)
						return
					}
					lo = v
				}
				hi, err := EvalConstInt(b.Hi, a.info.Consts)
				if err != nil {
					a.errorf(x.Pos(), "template %s dim %d: %v", x.Name, i+1, err)
					return
				}
				dims = append(dims, dist.DimDist{Kind: dist.Collapsed, Lo: lo, Hi: hi, ProcDim: -1, NProc: 1})
			}
			a.info.Templates[x.Name] = dims
			a.info.Symbols[x.Name] = &Symbol{Name: x.Name, Kind: SymTemplate}
		}
	}

	// Pass 2: collect ALIGN and DISTRIBUTE.
	for _, d := range prog.Directives {
		switch x := d.(type) {
		case *ast.AlignDir:
			rec, ok := a.resolveAlignSyntax(x)
			if ok {
				aligns[x.Array] = rec
			}
		case *ast.DistributeDir:
			distributes = append(distributes, distRec{dir: x})
		}
	}

	// Default grid when distributions exist without PROCESSORS: one
	// processor per distributed dimension count (degenerate but legal).
	if a.info.Grid == nil {
		nd := 1
		if len(distributes) > 0 {
			nd = 0
			for _, f := range distributes[0].dir.Formats {
				if f.Kind != ast.DistStar {
					nd++
				}
			}
			if nd == 0 {
				nd = 1
			}
		}
		shape := make([]int, nd)
		for i := range shape {
			shape[i] = 1
		}
		g, _ := dist.NewGrid("P_DEFAULT", shape...)
		a.info.Grid = g
	}

	// Pass 3: apply DISTRIBUTE to templates (or directly to arrays, which
	// get an implicit identity template).
	for _, dr := range distributes {
		a.applyDistribute(dr.dir, aligns)
	}

	// Pass 4: build per-array maps.
	names := make([]string, 0, len(a.info.Symbols))
	for name := range a.info.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sym := a.info.Symbols[name]
		if sym.Kind != SymArray {
			continue
		}
		m := a.buildArrayMap(sym, aligns, make(map[string]bool))
		if m == nil {
			bounds := append([][2]int(nil), sym.Bounds...)
			m = dist.NewReplicated(sym.Name, sym.Type.Bytes(), a.info.Grid, bounds)
		}
		if err := m.Validate(); err != nil {
			a.errorf(token.Pos{Line: 1, Col: 1}, "mapping of %s: %v", sym.Name, err)
			continue
		}
		sym.Map = m
	}
}

// resolveAlignSyntax checks an ALIGN directive and extracts its terms.
func (a *analyzer) resolveAlignSyntax(x *ast.AlignDir) (alignRec, bool) {
	rec := alignRec{target: x.Target, pos: x.Pos()}
	dummyDim := make(map[string]int)
	for i, d := range x.Dummies {
		if _, dup := dummyDim[d]; dup {
			a.errorf(x.Pos(), "ALIGN %s: duplicate dummy %s", x.Array, d)
			return rec, false
		}
		dummyDim[d] = i
	}
	if len(x.Dummies) == 0 && len(x.TargetSubs) == 0 {
		// Whole-array identity alignment: ALIGN A WITH T.
		sym := a.info.Symbols[x.Array]
		rank := 0
		if sym != nil {
			rank = sym.Rank()
		}
		for i := 0; i < rank; i++ {
			rec.terms = append(rec.terms, alignTerm{srcDim: i, dstDim: i})
		}
		return rec, true
	}
	for k, sub := range x.TargetSubs {
		if sub == nil { // '*': replicate over that target dimension
			continue
		}
		srcDim, off, ok := alignSubscript(sub, dummyDim)
		if !ok {
			a.errorf(x.Pos(), "ALIGN %s: unsupported target subscript %s (must be dummy ± constant)",
				x.Array, ast.ExprString(sub))
			return rec, false
		}
		rec.terms = append(rec.terms, alignTerm{srcDim: srcDim, dstDim: k, off: off})
	}
	return rec, true
}

// alignSubscript decomposes an alignment subscript of the form
// dummy, dummy+c, dummy-c, or c+dummy.
func alignSubscript(e ast.Expr, dummyDim map[string]int) (srcDim, off int, ok bool) {
	switch x := e.(type) {
	case *ast.Ident:
		d, ok := dummyDim[x.Name]
		return d, 0, ok
	case *ast.BinaryExpr:
		if id, isIdent := x.X.(*ast.Ident); isIdent {
			if c, isInt := x.Y.(*ast.IntLit); isInt {
				d, found := dummyDim[id.Name]
				if !found {
					return 0, 0, false
				}
				switch x.Op {
				case token.PLUS:
					return d, int(c.Value), true
				case token.MINUS:
					return d, -int(c.Value), true
				}
			}
		}
		if c, isInt := x.X.(*ast.IntLit); isInt && x.Op == token.PLUS {
			if id, isIdent := x.Y.(*ast.Ident); isIdent {
				d, found := dummyDim[id.Name]
				return d, int(c.Value), found
			}
		}
	}
	return 0, 0, false
}

// applyDistribute resolves a DISTRIBUTE directive onto its target.
func (a *analyzer) applyDistribute(x *ast.DistributeDir, aligns map[string]alignRec) {
	grid := a.info.Grid
	// Validate ONTO.
	if x.Onto != "" && grid != nil && x.Onto != grid.Name {
		a.errorf(x.Pos(), "DISTRIBUTE ONTO %s: unknown processor arrangement (have %s)", x.Onto, grid.Name)
		return
	}
	dims, isTemplate := a.info.Templates[x.Target]
	if !isTemplate {
		// Direct distribution of an array: create an implicit template with
		// the array's bounds and an identity alignment.
		sym := a.info.Symbols[x.Target]
		if sym == nil || sym.Kind != SymArray {
			a.errorf(x.Pos(), "DISTRIBUTE target %s is not a template or array", x.Target)
			return
		}
		tname := "$TMPL_" + x.Target
		for i, b := range sym.Bounds {
			_ = i
			dims = append(dims, dist.DimDist{Kind: dist.Collapsed, Lo: b[0], Hi: b[1], ProcDim: -1, NProc: 1})
		}
		a.info.Templates[tname] = dims
		var terms []alignTerm
		for i := range sym.Bounds {
			terms = append(terms, alignTerm{srcDim: i, dstDim: i})
		}
		aligns[x.Target] = alignRec{target: tname, terms: terms, pos: x.Pos()}
		x = &ast.DistributeDir{Target: tname, Formats: x.Formats, Onto: x.Onto, DPos: x.DPos}
		dims = a.info.Templates[tname]
	}
	if len(x.Formats) != len(dims) {
		a.errorf(x.Pos(), "DISTRIBUTE %s: %d formats for rank-%d target", x.Target, len(x.Formats), len(dims))
		return
	}
	// Count distributed dims and match against grid rank.
	nDist := 0
	for _, f := range x.Formats {
		if f.Kind != ast.DistStar {
			nDist++
		}
	}
	if nDist != len(grid.Shape) {
		a.errorf(x.Pos(), "DISTRIBUTE %s: %d distributed dimensions but processor grid %s has rank %d",
			x.Target, nDist, grid, len(grid.Shape))
		return
	}
	gdim := 0
	for i, f := range x.Formats {
		switch f.Kind {
		case ast.DistStar:
			dims[i].Kind = dist.Collapsed
			dims[i].ProcDim = -1
			dims[i].NProc = 1
		case ast.DistBlock:
			dims[i].Kind = dist.Block
			dims[i].ProcDim = gdim
			dims[i].NProc = grid.Shape[gdim]
			if f.Arg != nil {
				blk, err := EvalConstInt(f.Arg, a.info.Consts)
				if err != nil || blk <= 0 {
					a.errorf(x.Pos(), "DISTRIBUTE %s: BLOCK size must be a positive constant", x.Target)
					return
				}
				if blk*dims[i].NProc < dims[i].Extent() {
					a.errorf(x.Pos(), "DISTRIBUTE %s: BLOCK(%d) over %d processors cannot hold %d elements",
						x.Target, blk, dims[i].NProc, dims[i].Extent())
					return
				}
				dims[i].Blk = blk
			}
			gdim++
		case ast.DistCyclic:
			dims[i].Kind = dist.Cyclic
			dims[i].ProcDim = gdim
			dims[i].NProc = grid.Shape[gdim]
			gdim++
			if f.Arg != nil {
				blk, err := EvalConstInt(f.Arg, a.info.Consts)
				if err != nil || blk <= 0 {
					a.errorf(x.Pos(), "DISTRIBUTE %s: CYCLIC block size must be a positive constant", x.Target)
					return
				}
				dims[i].Blk = blk
			}
		}
	}
	a.info.Templates[x.Target] = dims
}

// buildArrayMap follows the ALIGN chain from an array to a template and
// constructs its ArrayMap. Returns nil when the array is not aligned
// (caller applies the replicated default).
func (a *analyzer) buildArrayMap(sym *Symbol, aligns map[string]alignRec, visiting map[string]bool) *dist.ArrayMap {
	rec, ok := aligns[sym.Name]
	if !ok {
		return nil
	}
	if visiting[sym.Name] {
		a.errorf(rec.pos, "ALIGN cycle involving %s", sym.Name)
		return nil
	}
	visiting[sym.Name] = true
	defer delete(visiting, sym.Name)

	// Resolve the chain to (template, per-dim terms).
	tname, terms, ok := a.chainToTemplate(sym.Name, aligns, visiting)
	if !ok {
		return nil
	}
	tdims := a.info.Templates[tname]
	m := &dist.ArrayMap{Name: sym.Name, ElemBytes: sym.Type.Bytes(), Grid: a.info.Grid}
	m.Dims = make([]dist.DimDist, sym.Rank())
	mapped := make([]bool, sym.Rank())
	for _, t := range terms {
		if t.srcDim >= sym.Rank() || t.dstDim >= len(tdims) {
			a.errorf(rec.pos, "ALIGN %s: dimension out of range", sym.Name)
			return nil
		}
		td := tdims[t.dstDim]
		m.Dims[t.srcDim] = dist.DimDist{
			Kind:    td.Kind,
			Lo:      td.Lo - t.off,
			Hi:      td.Hi - t.off,
			ProcDim: td.ProcDim,
			NProc:   td.NProc,
			Blk:     td.Blk,
		}
		mapped[t.srcDim] = true
		// The array must fit within the aligned template section.
		b := sym.Bounds[t.srcDim]
		if b[0] < td.Lo-t.off || b[1] > td.Hi-t.off {
			a.errorf(rec.pos, "ALIGN %s: array bounds [%d,%d] outside template %s range [%d,%d] (offset %d)",
				sym.Name, b[0], b[1], tname, td.Lo-t.off, td.Hi-t.off, t.off)
			return nil
		}
	}
	// Unmapped array dimensions stay on-processor (collapsed over the
	// array's own bounds).
	distributedAny := false
	for i := range m.Dims {
		if !mapped[i] {
			b := sym.Bounds[i]
			m.Dims[i] = dist.DimDist{Kind: dist.Collapsed, Lo: b[0], Hi: b[1], ProcDim: -1, NProc: 1}
		}
		if m.Dims[i].Kind != dist.Collapsed {
			distributedAny = true
		}
	}
	// Distributed template dims not used by the array would leave partial
	// replication; reject as unsupported.
	used := make(map[int]bool)
	for _, t := range terms {
		used[t.dstDim] = true
	}
	for k, td := range tdims {
		if td.Kind != dist.Collapsed && !used[k] {
			a.errorf(rec.pos, "ALIGN %s WITH %s: distributed template dimension %d is not aligned (partial replication unsupported)",
				sym.Name, tname, k+1)
			return nil
		}
	}
	if !distributedAny {
		m.Replicated = true
	}
	return m
}

// chainToTemplate composes alignment records until a template is reached.
func (a *analyzer) chainToTemplate(array string, aligns map[string]alignRec, visiting map[string]bool) (string, []alignTerm, bool) {
	rec := aligns[array]
	terms := rec.terms
	target := rec.target
	for {
		if _, isTemplate := a.info.Templates[target]; isTemplate {
			return target, terms, true
		}
		next, ok := aligns[target]
		if !ok {
			// Aligned to an unaligned array: both share the default
			// replicated mapping; treat as unaligned.
			tsym := a.info.Symbols[target]
			if tsym == nil || tsym.Kind != SymArray {
				a.errorf(rec.pos, "ALIGN %s WITH %s: target is not a template or array", array, target)
			}
			return "", nil, false
		}
		if visiting[target] {
			a.errorf(rec.pos, "ALIGN cycle involving %s", target)
			return "", nil, false
		}
		visiting[target] = true
		// Compose terms: src ↦ mid (terms), mid ↦ dst (next.terms).
		midToDst := make(map[int]alignTerm)
		for _, t := range next.terms {
			midToDst[t.srcDim] = t
		}
		var composed []alignTerm
		for _, t := range terms {
			if u, ok := midToDst[t.dstDim]; ok {
				composed = append(composed, alignTerm{srcDim: t.srcDim, dstDim: u.dstDim, off: t.off + u.off})
			}
		}
		terms = composed
		target = next.target
	}
}

// GridString returns a printable description of the processor grid.
func (in *Info) GridString() string {
	if in.Grid == nil {
		return "<no grid>"
	}
	return fmt.Sprint(in.Grid)
}
