package exec

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/ipsc"
)

// run compiles and executes src on nprocs simulated nodes, returning the
// result.
func run(t *testing.T, src string, nprocs int) *Result {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.Info.Grid.Size() != nprocs {
		t.Fatalf("program grid has %d procs, test expects %d", prog.Info.Grid.Size(), nprocs)
	}
	cfg := ipsc.DefaultConfig(nprocs)
	cfg.PerturbAmp = 0 // deterministic timing for functional tests
	cfg.TimerResUS = 0
	m, err := ipsc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, m, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// lastPrinted parses the final printed line's single value.
func lastPrinted(t *testing.T, res *Result) float64 {
	t.Helper()
	if len(res.Printed) == 0 {
		t.Fatal("nothing printed")
	}
	line := res.Printed[len(res.Printed)-1]
	fields := strings.Fields(line)
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("cannot parse printed value %q", line)
	}
	return v
}

func wantNear(t *testing.T, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("got %g, want %g (±%g)", got, want, tol)
	}
}

func TestScalarArithmetic(t *testing.T) {
	res := run(t, `PROGRAM p
!HPF$ PROCESSORS P(1)
X = 2.0
Y = X**2 + 3.0*X - 1.0
PRINT *, Y
END`, 1)
	wantNear(t, lastPrinted(t, res), 9.0, 1e-9)
}

func TestIntegerDivisionTruncates(t *testing.T) {
	res := run(t, `PROGRAM p
!HPF$ PROCESSORS P(1)
INTEGER K
K = 7 / 2
PRINT *, K
END`, 1)
	wantNear(t, lastPrinted(t, res), 3, 0)
}

func TestDoLoopAccumulation(t *testing.T) {
	res := run(t, `PROGRAM p
!HPF$ PROCESSORS P(1)
S = 0.0
DO I = 1, 100
  S = S + REAL(I)
END DO
PRINT *, S
END`, 1)
	wantNear(t, lastPrinted(t, res), 5050, 1e-9)
}

const sumHdr = `PROGRAM p
PARAMETER (N = 64)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
`

func TestDistributedSum(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K)
S = SUM(A)
PRINT *, S
END`, 4)
	wantNear(t, lastPrinted(t, res), 64*65/2, 1e-9)
}

func TestDistributedDotProduct(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = 2.0
FORALL (K=1:N) B(K) = 3.0
S = DOT_PRODUCT(A, B)
PRINT *, S
END`, 4)
	wantNear(t, lastPrinted(t, res), 64*6, 1e-9)
}

func TestMaxvalAndMaxloc(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K)
A(17) = 1000.0
X = MAXVAL(A)
K = MAXLOC(A)
PRINT *, X
PRINT *, K
END`, 4)
	if len(res.Printed) != 2 {
		t.Fatalf("printed = %v", res.Printed)
	}
	if res.Printed[0] != "1000" {
		t.Errorf("maxval = %s", res.Printed[0])
	}
	if res.Printed[1] != "17" {
		t.Errorf("maxloc = %s", res.Printed[1])
	}
}

func TestForallRHSEvaluatedBeforeAssignment(t *testing.T) {
	// X(K) = X(K-1) + X(K+1) must use OLD values of X on both sides.
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = 1.0
FORALL (K=2:N-1) A(K) = A(K-1) + A(K+1)
S = SUM(A)
PRINT *, S
END`, 4)
	// Interior elements become 2.0, boundary stay 1.0: 62*2 + 2 = 126.
	wantNear(t, lastPrinted(t, res), 126, 1e-9)
}

func TestMaskedForall(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K) - 32.5
FORALL (K=1:N, A(K) .GT. 0.0) A(K) = 0.0
S = SUM(A)
PRINT *, S
END`, 4)
	// Negative values (K=1..32) survive: sum = sum(k-32.5, k=1..32).
	want := 0.0
	for k := 1; k <= 32; k++ {
		want += float64(k) - 32.5
	}
	wantNear(t, lastPrinted(t, res), want, 1e-9)
}

func TestWhereElsewhere(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K) - 32.0
WHERE (A .GT. 0.0)
  B = 1.0
ELSEWHERE
  B = -1.0
END WHERE
S = SUM(B)
PRINT *, S
END`, 4)
	// 32 positive (33..64), 32 non-positive: sum = 32 - 32 = 0.
	wantNear(t, lastPrinted(t, res), 0, 1e-9)
}

func TestCshiftSemantics(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K)
B = CSHIFT(A, 1)
X = B(1)
Y = B(N)
PRINT *, X
PRINT *, Y
END`, 4)
	// CSHIFT(A,1): B(i) = A(i+1) circularly: B(1)=2, B(64)=1.
	if res.Printed[0] != "2" || res.Printed[1] != "1" {
		t.Errorf("cshift = %v", res.Printed)
	}
}

func TestEoshiftBoundary(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K)
B = EOSHIFT(A, 1, -5.0)
X = B(N)
PRINT *, X
END`, 4)
	wantNear(t, lastPrinted(t, res), -5, 0)
}

func TestStencilArraySyntax(t *testing.T) {
	res := run(t, sumHdr+`FORALL (K=1:N) A(K) = REAL(K)
B(2:N-1) = A(1:N-2) + A(3:N)
X = B(10)
PRINT *, X
END`, 4)
	// B(10) = A(9) + A(11) = 20.
	wantNear(t, lastPrinted(t, res), 20, 1e-9)
}

func TestSequentialRecurrence(t *testing.T) {
	res := run(t, sumHdr+`A(1) = 1.0
DO I = 2, N
  A(I) = A(I-1) * 1.1
END DO
X = A(5)
PRINT *, X
END`, 4)
	wantNear(t, lastPrinted(t, res), math.Pow(1.1, 4), 1e-9)
}

func TestIndirectionGather(t *testing.T) {
	src := `PROGRAM p
PARAMETER (N = 16)
REAL A(N), EX(N)
INTEGER IX(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN IX(I) WITH T(I)
!HPF$ ALIGN EX(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) EX(K) = REAL(K) * 10.0
FORALL (K=1:N) IX(K) = N + 1 - K
FORALL (K=1:N) A(K) = EX(IX(K))
X = A(1)
PRINT *, X
END`
	res := run(t, src, 4)
	// A(1) = EX(IX(1)) = EX(16) = 160.
	wantNear(t, lastPrinted(t, res), 160, 1e-9)
}

func TestLaplace2DConverges(t *testing.T) {
	src := `PROGRAM lap
PARAMETER (N = 8)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
FORALL (J=1:N) U(1,J) = 100.0
DO ITER = 1, 200
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
X = U(2, 4)
PRINT *, X
END`
	res := run(t, src, 4)
	got := lastPrinted(t, res)
	// Interior point adjacent to the hot wall must be warm but below 100.
	if got < 20 || got > 90 {
		t.Errorf("U(2,4) = %g, expected a relaxed interior value", got)
	}
}

func TestGuardedElementAssign(t *testing.T) {
	res := run(t, sumHdr+`A(50) = 7.0
X = A(50)
PRINT *, X
END`, 4)
	wantNear(t, lastPrinted(t, res), 7, 0)
}

func TestPiQuadrature(t *testing.T) {
	src := `PROGRAM pi
PARAMETER (N = 1024)
REAL F(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
H = 1.0 / REAL(N)
FORALL (K=1:N) F(K) = 4.0 / (1.0 + ((REAL(K)-0.5)*H)**2)
API = H * SUM(F)
PRINT *, API
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), math.Pi, 1e-4)
}

// ---------------------------------------------------------------------------
// Timing sanity

func timeOf(t *testing.T, src string, nprocs int, perturb float64) float64 {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := ipsc.DefaultConfig(nprocs)
	cfg.PerturbAmp = perturb
	cfg.TimerResUS = 0
	m, err := ipsc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, m, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.MeasuredUS
}

func piSrc(nprocs int) string {
	return `PROGRAM pi
PARAMETER (N = 4096)
REAL F(N)
!HPF$ PROCESSORS P(` + strconv.Itoa(nprocs) + `)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
H = 1.0 / REAL(N)
FORALL (K=1:N) F(K) = 4.0 / (1.0 + ((REAL(K)-0.5)*H)**2)
API = H * SUM(F)
PRINT *, API
END`
}

func TestParallelSpeedup(t *testing.T) {
	t1 := timeOf(t, piSrc(1), 1, 0)
	t4 := timeOf(t, piSrc(4), 4, 0)
	t8 := timeOf(t, piSrc(8), 8, 0)
	if t4 >= t1 {
		t.Errorf("no speedup: t1=%g t4=%g", t1, t4)
	}
	if t8 >= t4 {
		t.Errorf("no speedup 4->8: t4=%g t8=%g", t4, t8)
	}
	if t4 < t1/4 {
		t.Errorf("superlinear speedup t1=%g t4=%g suggests missing comm costs", t1, t4)
	}
}

func TestCommunicationCounted(t *testing.T) {
	prog, err := compiler.Compile(piSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ipsc.New(ipsc.DefaultConfig(4))
	res, err := Run(prog, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages == 0 || res.Stats.Collectives == 0 {
		t.Errorf("stats = %+v, expected reduction traffic", res.Stats)
	}
}

func TestPerturbationChangesRuns(t *testing.T) {
	prog, err := compiler.Compile(piSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ipsc.DefaultConfig(4)
	cfg.PerturbAmp = 0.02
	m, _ := ipsc.New(cfg)
	res, err := Run(prog, m, Options{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunsUS) != 5 {
		t.Fatalf("runs = %d", len(res.RunsUS))
	}
	same := true
	for _, r := range res.RunsUS[1:] {
		if r != res.RunsUS[0] {
			same = false
		}
	}
	if same {
		t.Error("perturbed runs should differ")
	}
}

func TestDeterministicWithoutPerturbation(t *testing.T) {
	a := timeOf(t, piSrc(4), 4, 0)
	b := timeOf(t, piSrc(4), 4, 0)
	if a != b {
		t.Errorf("deterministic runs differ: %g vs %g", a, b)
	}
}

func TestRuntimeBoundsError(t *testing.T) {
	src := sumHdr + `X = A(100)
PRINT *, X
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ipsc.New(ipsc.DefaultConfig(4))
	_, err = Run(prog, m, Options{})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("want bounds error, got %v", err)
	}
}

func TestGridMachineMismatch(t *testing.T) {
	prog, err := compiler.Compile(piSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ipsc.New(ipsc.DefaultConfig(2))
	if _, err := Run(prog, m, Options{}); err == nil {
		t.Error("want mismatch error")
	}
}

func TestDoWhile(t *testing.T) {
	res := run(t, `PROGRAM p
!HPF$ PROCESSORS P(1)
X = 1.0
DO WHILE (X .LT. 100.0)
  X = X * 2.0
END DO
PRINT *, X
END`, 1)
	wantNear(t, lastPrinted(t, res), 128, 0)
}

func TestBlockStarVsStarBlockBothRun(t *testing.T) {
	mk := func(d string) string {
		return `PROGRAM lap
PARAMETER (N = 16)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T` + d + ` ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = REAL(I+J)
FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
X = V(5,5)
PRINT *, X
END`
	}
	r1 := run(t, mk("(BLOCK,*)"), 4)
	r2 := run(t, mk("(*,BLOCK)"), 4)
	v1, v2 := lastPrinted(t, r1), lastPrinted(t, r2)
	if v1 != v2 {
		t.Errorf("distribution changed the answer: %g vs %g", v1, v2)
	}
	wantNear(t, v1, 10, 1e-9)
}

// Direct unit checks of scalar evaluation semantics.
func TestIntrinsicEvalSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"SIGN(3.0, -1.0)", -3},
		{"SIGN(-3.0, 2.0)", 3},
		{"ABS(-7)", 7},
		{"MOD(7.5, 2.0)", 1.5},
		{"MOD(-7, 3)", -1}, // Fortran MOD keeps the dividend's sign
		{"MIN(3.0, 1.0, 2.0)", 1},
		{"MAX(3, 9, 2)", 9},
		{"INT(3.9)", 3},
		{"INT(-3.9)", -3},
		{"2 ** 10", 1024},
		{"2 ** (-1)", 0}, // integer power truncates
		{"7 / 2", 3},
		{"(-7) / 2", -3}, // Fortran integer division truncates toward zero
		{"ATAN(1.0) * 4.0", math.Pi},
		{"LOG(EXP(2.0))", 2},
	}
	for _, tc := range cases {
		src := "PROGRAM e\n!HPF$ PROCESSORS P(1)\nX = " + tc.expr + "\nPRINT *, X\nEND"
		res := run(t, src, 1)
		got := lastPrinted(t, res)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", tc.expr, got, tc.want)
		}
	}
}

func TestLogicalShortOps(t *testing.T) {
	src := `PROGRAM l
!HPF$ PROCESSORS P(1)
LOGICAL A, B, C
A = .TRUE.
B = .FALSE.
C = A .AND. .NOT. B
IF (C) THEN
  X = 1.0
ELSE
  X = 0.0
END IF
PRINT *, X
END`
	res := run(t, src, 1)
	wantNear(t, lastPrinted(t, res), 1, 0)
}

func TestUninitializedScalarReadsZero(t *testing.T) {
	res := run(t, "PROGRAM u\n!HPF$ PROCESSORS P(1)\nY = X + 1.0\nPRINT *, Y\nEND", 1)
	wantNear(t, lastPrinted(t, res), 1, 0)
}

func TestDivisionByZeroInteger(t *testing.T) {
	src := "PROGRAM z\n!HPF$ PROCESSORS P(1)\nINTEGER K\nJ = 0\nK = 5 / J\nPRINT *, K\nEND"
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ipsc.New(ipsc.DefaultConfig(1))
	if _, err := Run(prog, m, Options{}); err == nil {
		t.Error("want integer division by zero error")
	}
}

func TestParallelRunsMatchSequential(t *testing.T) {
	prog, err := compiler.Compile(piSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *ipsc.Machine {
		cfg := ipsc.DefaultConfig(4)
		cfg.PerturbAmp = 0.02
		m, _ := ipsc.New(cfg)
		return m
	}
	par, err := Run(prog, mk(), Options{Runs: 6})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(prog, mk(), Options{Runs: 6, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.RunsUS {
		if par.RunsUS[i] != seq.RunsUS[i] {
			t.Fatalf("run %d differs: parallel %g vs sequential %g", i, par.RunsUS[i], seq.RunsUS[i])
		}
	}
}
