// Scalability study: use the interpretive framework to sweep the system
// size for the systolic N-Body application before touching the machine —
// the kind of design-space exploration the paper's framework enables
// (predicting speedup curves from the workstation).
package main

import (
	"fmt"
	"log"

	"hpfperf"
)

func main() {
	nbody, err := hpfperf.SuiteProgramByName("N-Body")
	if err != nil {
		log.Fatal(err)
	}
	const n = 256

	fmt.Printf("N-Body (systolic CSHIFT), %d bodies — predicted scaling:\n\n", n)
	fmt.Printf("%5s %12s %12s %12s %10s %10s\n",
		"procs", "total", "comp", "comm", "speedup", "efficiency")

	var t1 float64
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		prog, err := hpfperf.Compile(nbody.Source(n, procs))
		if err != nil {
			log.Fatal(err)
		}
		// Beyond the paper's 8-node testbed, predict on a larger cube
		// configuration of the same machine (the iPSC/860 shipped up to
		// 128 nodes).
		pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{Machine: "ipsc860:32"})
		if err != nil {
			log.Fatal(err)
		}
		comp, comm, _ := pred.Breakdown()
		total := pred.Microseconds()
		if procs == 1 {
			t1 = total
		}
		speedup := t1 / total
		fmt.Printf("%5d %10.2fms %10.2fms %10.2fms %9.2fx %9.1f%%\n",
			procs, total/1e3, comp/1e3, comm/1e3, speedup, speedup/float64(procs)*100)
	}

	// Verify the 8-processor prediction against simulated measurement.
	prog, err := hpfperf.Compile(nbody.Source(n, 8))
	if err != nil {
		log.Fatal(err)
	}
	pred, _ := hpfperf.Predict(prog, nil)
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Runs: 3})
	if err != nil {
		log.Fatal(err)
	}
	e, m := pred.Microseconds(), meas.Microseconds()
	fmt.Printf("\nverification at 8 procs: est %.2fms, meas %.2fms (err %+.2f%%)\n",
		e/1e3, m/1e3, (e-m)/m*100)
}
