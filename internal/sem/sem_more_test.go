package sem

import (
	"strings"
	"testing"

	"hpfperf/internal/ast"
	"hpfperf/internal/parser"
)

func TestDimensionDeclUpgradesScalar(t *testing.T) {
	info := analyze(t, "PROGRAM d\nREAL A\nDIMENSION A(10)\nA(1) = 0.0\nEND")
	s := info.Sym("A")
	if s.Kind != SymArray || s.Rank() != 1 || s.Type != ast.TReal {
		t.Errorf("A = %+v", s)
	}
}

func TestDimensionDeclImplicitType(t *testing.T) {
	info := analyze(t, "PROGRAM d\nDIMENSION KV(5)\nKV(1) = 2\nEND")
	s := info.Sym("KV")
	if s.Type != ast.TInteger {
		t.Errorf("KV type = %v, want INTEGER (implicit)", s.Type)
	}
}

func TestEmptyArrayDimension(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nREAL A(5:2)\nA(1) = 0.0\nEND")
}

func TestParameterChain(t *testing.T) {
	info := analyze(t, "PROGRAM d\nPARAMETER (A=2, B=A*A, C=B+A)\nX = 1.0\nEND")
	if info.Consts["C"].I != 6 {
		t.Errorf("C = %v", info.Consts["C"])
	}
}

func TestParameterForwardReferenceFails(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nPARAMETER (A=B+1, B=2)\nX = 1.0\nEND")
}

func TestConstDivisionByZero(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nPARAMETER (A=1/0)\nX = 1.0\nEND")
}

func TestConstModByZero(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nPARAMETER (A=MOD(3,0))\nX = 1.0\nEND")
}

func TestConstLogicalOps(t *testing.T) {
	info := analyze(t, "PROGRAM d\nPARAMETER (B = 1 .LT. 2 .AND. .NOT. (3 .GT. 4))\nX = 1.0\nEND")
	if !info.Consts["B"].B {
		t.Error("B should be true")
	}
}

func TestConstPow(t *testing.T) {
	info := analyze(t, "PROGRAM d\nPARAMETER (A=2**10, B=2.0**0.5)\nX = 1.0\nEND")
	if info.Consts["A"].I != 1024 {
		t.Errorf("A = %v", info.Consts["A"])
	}
	if b := info.Consts["B"].R; b < 1.41 || b > 1.42 {
		t.Errorf("B = %v", info.Consts["B"])
	}
}

func TestUnaryMinusConst(t *testing.T) {
	info := analyze(t, "PROGRAM d\nPARAMETER (A=-5, B=-2.5)\nX = 1.0\nEND")
	if info.Consts["A"].I != -5 || info.Consts["B"].R != -2.5 {
		t.Errorf("consts = %v %v", info.Consts["A"], info.Consts["B"])
	}
}

func TestIntrinsicArgCountErrors(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nX = SQRT(1.0, 2.0)\nEND")
	analyzeErr(t, "PROGRAM d\nX = MOD(1.0)\nEND")
}

func TestReductionNeedsArray(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nX = SUM(1.0)\nEND")
}

func TestShiftNeedsArray(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nX = 2.0\nY = CSHIFT(X, 1)\nEND")
}

func TestNotOnNumeric(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nLOGICAL B\nB = .NOT. 1.5\nEND")
}

func TestLogicalOperandsChecked(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nLOGICAL B\nB = 1.0 .AND. 2.0\nEND")
}

func TestUnaryMinusOnLogical(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nLOGICAL B\nX = -B\nEND")
}

func TestNumericOperandRequired(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nLOGICAL B\nX = B + 1.0\nEND")
}

func TestSubscriptMustBeInteger(t *testing.T) {
	analyzeErr(t, "PROGRAM d\nREAL A(10)\nX = A(1.5)\nEND")
}

func TestWhereBodyNonAssignment(t *testing.T) {
	analyzeErr(t, `PROGRAM d
REAL A(8)
WHERE (A .GT. 0.0)
PRINT *, 1
END WHERE
END`)
}

func TestAlignDuplicateDummy(t *testing.T) {
	analyzeErr(t, `PROGRAM d
REAL A(4,4)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE T(4,4)
!HPF$ ALIGN A(I,I) WITH T(I,I)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
A(1,1) = 0.0
END`)
}

func TestAlignToNothing(t *testing.T) {
	err := analyzeErr(t, `PROGRAM d
REAL A(4)
!HPF$ PROCESSORS P(2)
!HPF$ ALIGN A(I) WITH NOPE(I)
A(1) = 0.0
END`)
	if !strings.Contains(err.Error(), "not a template or array") {
		t.Errorf("err = %v", err)
	}
}

func TestPartialReplicationRejected(t *testing.T) {
	// A rank-1 array aligned into one dim of a fully distributed 2-D
	// template would be partially replicated.
	analyzeErr(t, `PROGRAM d
REAL A(4)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T(4,4)
!HPF$ ALIGN A(I) WITH T(I,*)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
A(1) = 0.0
END`)
}

func TestStarAlignToCollapsedDimOK(t *testing.T) {
	info := analyze(t, `PROGRAM d
REAL A(4)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE T(4,4)
!HPF$ ALIGN A(I) WITH T(I,*)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
A(1) = 0.0
END`)
	m := info.ArrayMap("A")
	if m == nil || m.Replicated {
		t.Errorf("A map = %v", m)
	}
}

func TestGridStringHelpers(t *testing.T) {
	info := analyze(t, "PROGRAM d\n!HPF$ PROCESSORS P(2,3)\nX = 1.0\nEND")
	if got := info.GridString(); got != "P(2,3)" {
		t.Errorf("grid string = %q", got)
	}
	var empty Info
	if empty.GridString() != "<no grid>" {
		t.Error("empty grid string")
	}
}

func TestSymKindStrings(t *testing.T) {
	for k, want := range map[SymKind]string{
		SymScalar: "scalar", SymArray: "array", SymConst: "constant",
		SymTemplate: "template", SymProcs: "processors",
	} {
		if k.String() != want {
			t.Errorf("%v = %q", k, k.String())
		}
	}
}

func TestValueStrings(t *testing.T) {
	if IntVal(3).String() != "3" || LogicalVal(true).String() != ".TRUE." {
		t.Error("value strings")
	}
	if RealVal(2.5).String() != "2.5" {
		t.Errorf("real string = %q", RealVal(2.5).String())
	}
	if LogicalVal(false).String() != ".FALSE." {
		t.Error("false string")
	}
}

func TestShapeHelpers(t *testing.T) {
	var nilShape *Shape
	if nilShape.Rank() != 0 || nilShape.Elems() != 1 {
		t.Error("nil shape semantics")
	}
	s := &Shape{Dims: [][2]int{{1, 4}, {0, 2}}}
	if s.Rank() != 2 || s.Elems() != 12 {
		t.Errorf("shape = rank %d elems %d", s.Rank(), s.Elems())
	}
	o := &Shape{Dims: [][2]int{{2, 5}, {1, 3}}}
	if !s.Conforms(o) {
		t.Error("extent-equal shapes should conform")
	}
	if s.Conforms(nilShape) {
		t.Error("array should not conform to scalar")
	}
}

func TestSectionWithStrideShape(t *testing.T) {
	info := analyze(t, "PROGRAM d\nPARAMETER (N=10)\nREAL A(N), B(5)\nB = A(1:N:2)\nEND")
	rhs := info.Prog.Body[0].(*ast.AssignStmt).Rhs
	if sh := info.ShapeOf(rhs); sh.Elems() != 5 {
		t.Errorf("strided section shape = %+v", sh)
	}
}

func TestIntegerParameterInBounds(t *testing.T) {
	// Attribute-form parameter feeding an array bound.
	info := analyze(t, "PROGRAM d\nINTEGER, PARAMETER :: N = 7\nREAL A(N)\nA(1) = 0.0\nEND")
	if info.Sym("A").Bounds[0] != [2]int{1, 7} {
		t.Errorf("bounds = %v", info.Sym("A").Bounds)
	}
}

func TestAnalyzeParseErrorPropagates(t *testing.T) {
	if _, err := parser.Parse("PROGRAM d\nX = ("); err == nil {
		t.Error("want parse error")
	}
}
