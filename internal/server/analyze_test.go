package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// lintySource fires multiple diagnostics: an all-to-all gather inside a
// loop (warning) and a zero-trip loop (warning).
const lintySource = `PROGRAM LINTY
PARAMETER (N = 64)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
!HPF$ DISTRIBUTE B(BLOCK) ONTO P
DO K = 1, 2
  FORALL (I=1:N) B(I) = A(N-I+1)
END DO
DO I = 10, 1
  X = X + 1.0
END DO
END
`

func TestAnalyzeHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 16 << 10})

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantStage  string
	}{
		{"empty body", ``, http.StatusBadRequest, "decode"},
		{"invalid json", `{`, http.StatusBadRequest, "decode"},
		{"unknown field", `{"sauce":"x"}`, http.StatusBadRequest, "decode"},
		{"missing source", `{"timeout_ms":5}`, http.StatusBadRequest, "decode"},
		{"blank source", `{"source":"   "}`, http.StatusBadRequest, "decode"},
		{"bad source", `{"source":"this is not fortran"}`, http.StatusBadRequest, "compile"},
		{"oversized body", `{"source":"` + strings.Repeat("x", 20<<10) + `"}`, http.StatusRequestEntityTooLarge, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body: %v", err)
			}
			if e.Stage != tc.wantStage {
				t.Errorf("stage = %q (%s), want %q", e.Stage, e.Error, tc.wantStage)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/analyze")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestAnalyzeSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: lintySource})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ar.Program != "LINTY" || ar.Procs != 4 {
		t.Errorf("program/procs = %q/%d, want LINTY/4", ar.Program, ar.Procs)
	}
	if ar.Warnings < 2 {
		t.Errorf("warnings = %d, want >= 2 (gather-in-loop and zero-trip)", ar.Warnings)
	}
	codes := map[string]bool{}
	for _, d := range ar.Diagnostics {
		codes[d.Code] = true
	}
	for _, want := range []string{"HPF0101", "HPF0401"} {
		if !codes[want] {
			t.Errorf("diagnostics missing %s: %s", want, body)
		}
	}
	if ar.Errors != 0 {
		t.Errorf("errors = %d, want 0", ar.Errors)
	}
	if ar.ElapsedUS <= 0 {
		t.Errorf("elapsed_us = %v, want > 0", ar.ElapsedUS)
	}
}

// TestAnalyzeCleanProgramEmptyDiagnostics: the diagnostics field must be
// present (an empty array, not null) when nothing fires — part of the
// JSON schema contract.
func TestAnalyzeCleanProgramEmptyDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: bigSource(5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	ds, ok := raw["diagnostics"]
	if !ok || string(ds) == "null" {
		t.Fatalf("diagnostics must be a JSON array, got %s", body)
	}
}

func TestAnalyzeDeadline(t *testing.T) {
	// A fresh server has a cold compile cache, and a program with tens of
	// thousands of statements takes well over 1ms to compile, so the
	// deadline is expired by the time the analysis passes would start.
	var b strings.Builder
	b.WriteString("PROGRAM SLOW\nPARAMETER (N = 64)\nREAL A(N)\n")
	b.WriteString("!HPF$ PROCESSORS P(4)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\n")
	for i := 0; i < 30000; i++ {
		b.WriteString("X = X + 1.0\n")
	}
	b.WriteString("END\n")
	_, ts := newTestServer(t, Config{MaxBodyBytes: 4 << 20})
	resp, body := post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: b.String(), TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Stage != "deadline" {
		t.Errorf("stage = %q, want deadline", e.Stage)
	}
}

func TestAnalyzeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: lintySource})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	text := sb.String()
	for _, want := range []string{
		`hpfserve_requests_total{route="analyze",code="200"} 1`,
		`hpfserve_request_duration_seconds_count{route="analyze"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
