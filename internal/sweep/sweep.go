// Package sweep is the shared point-level evaluation engine behind the
// experiment harness (§5's tables and figures) and the autotune
// directive search. It flattens arbitrary (program × size × procs)
// point grids — and directive-candidate lists — into one bounded worker
// pool with deterministic result ordering, and memoizes the compilation
// pipeline (and whole interpretation runs) so repeated variants of the
// same source skip scanner→parser→sem→compiler entirely.
//
// The paper's central claim (§5.3, Figure 8) is that interpretation is
// cheap enough to replace measurement in the experimentation loop; this
// package is what keeps the reproduction's own loop cheap: hundreds of
// sweep points share one pool and one cache instead of recompiling from
// scratch point by point.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/exec"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/obs"
)

// Engine couples a bounded worker pool with a compile/prediction cache
// and a stats block. Engines are cheap; several engines may share one
// Cache and/or one Stats.
type Engine struct {
	workers int
	cache   *Cache
	stats   *Stats
	retry   RetryPolicy
}

// Options configure a new engine.
type Options struct {
	// Workers bounds pool concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Cache supplies a shared memoization cache; nil creates a private one.
	Cache *Cache
	// Stats receives counters; nil creates a private block.
	Stats *Stats
	// Retry bounds the per-point retry loop for transient failures
	// (zero value selects DefaultRetryPolicy).
	Retry RetryPolicy
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{workers: opts.Workers, cache: opts.Cache, stats: opts.Stats, retry: opts.Retry.normalized()}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.cache == nil {
		e.cache = NewCache()
	}
	if e.stats == nil {
		e.stats = &Stats{}
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine. Its cache is what
// lets Figure 8 reuse the Laplace programs already compiled for
// Figures 4/5, and repeated autotune searches reuse each other's
// variants.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's memoization cache.
func (e *Engine) Cache() *Cache { return e.cache }

// Stats returns the engine's live counter block.
func (e *Engine) Stats() *Stats { return e.stats }

// Snapshot returns a consistent copy of the engine's counters.
func (e *Engine) Snapshot() Snapshot { return e.stats.Snapshot() }

// Map evaluates fn(0..n-1) on the engine's worker pool and returns the
// results in index order: results[i] is fn(i) regardless of completion
// order, so sweeps stay byte-identical to their serial form. On
// failures the error of the lowest failing index is returned (matching
// what a serial loop would have surfaced first); results of successful
// points are still filled in.
//
// Each point runs isolated: a panicking fn is recovered into a
// *PanicError instead of crashing the pool, and transient failures
// (IsTransient) are retried under the engine's RetryPolicy with
// exponential backoff and jitter. Deterministic errors fail the point
// on the first attempt, so happy-path sweeps behave exactly as before.
func Map[T any](e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), e, n, fn)
}

// guardPoint runs one attempt of one point, recovering panics into
// typed errors so a single bad point cannot take down the process.
func guardPoint[T any](e *Engine, i int, fn func(i int) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.stats.PointPanics.Add(1)
			err = &PanicError{Stage: fmt.Sprintf("sweep point %d", i), Value: r}
		}
	}()
	if err := faults.Fire(faults.SiteSweep); err != nil {
		return res, err
	}
	return fn(i)
}

// runPoint is the per-point body of MapCtx: panic isolation plus
// bounded retry of transient failures.
func runPoint[T any](ctx context.Context, e *Engine, i int, fn func(i int) (T, error)) (T, error) {
	_, span := obs.Start(ctx, "sweep.point")
	span.SetAttrInt("index", i)
	defer span.End()
	for attempt := 1; ; attempt++ {
		res, err := guardPoint(e, i, fn)
		if err == nil || attempt >= e.retry.MaxAttempts || !IsTransient(err) {
			if attempt > 1 {
				span.SetAttrInt("retries", attempt-1)
			}
			return res, err
		}
		e.stats.Retries.Add(1)
		t := time.NewTimer(e.retry.backoff(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return res, err // report the attempt's failure, not ctx.Err()
		}
	}
}

// MapCtx is Map with cooperative cancellation: once ctx ends, no new
// points are dispatched and every undispatched index carries ctx.Err().
// Points already running are left to finish (fn should itself observe
// ctx for long-running bodies).
func MapCtx[T any](ctx context.Context, e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	start := time.Now()
	errs := make([]error, n)
	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = runPoint(ctx, e, i, fn)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	e.stats.Points.Add(int64(n))
	e.stats.WallNS.Add(int64(time.Since(start)))
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Compile returns the compiled program for src via the engine's cache.
func (e *Engine) Compile(src string, opts compiler.Options) (*hir.Program, error) {
	return e.CompileContext(context.Background(), src, opts)
}

// CompileContext is Compile with cooperative cancellation: a caller
// whose ctx ends while another worker builds the same key stops
// waiting and returns the ctx error.
func (e *Engine) CompileContext(ctx context.Context, src string, opts compiler.Options) (*hir.Program, error) {
	return e.cache.Compile(ctx, src, opts, e.stats)
}

// Interpret compiles (cached) and interprets (cached when the options
// are fingerprintable) src on the default machine abstraction.
func (e *Engine) Interpret(src string, copts compiler.Options, iopts core.Options) (*core.Report, error) {
	return e.InterpretContext(context.Background(), src, copts, iopts)
}

// InterpretContext is Interpret with cooperative cancellation.
func (e *Engine) InterpretContext(ctx context.Context, src string, copts compiler.Options, iopts core.Options) (*core.Report, error) {
	return e.cache.Interpret(ctx, src, copts, iopts, "", e.stats)
}

// InterpretMachine interprets src on the named machine abstraction
// ("" = default iPSC/860), caching per (source, options, machine).
func (e *Engine) InterpretMachine(ctx context.Context, machine, src string, copts compiler.Options, iopts core.Options) (*core.Report, error) {
	return e.cache.Interpret(ctx, src, copts, iopts, machine, e.stats)
}

// Measure executes src on the simulated machine selected by spec,
// memoizing the deterministic result per (source, options, spec). The
// returned *exec.Result is shared — treat it as read-only.
func (e *Engine) Measure(src string, copts compiler.Options, spec MeasureSpec) (*exec.Result, error) {
	return e.MeasureContext(context.Background(), src, copts, spec)
}

// MeasureContext is Measure with cooperative cancellation: the
// simulator's statement loop observes ctx, and a cancelled run is not
// cached.
func (e *Engine) MeasureContext(ctx context.Context, src string, copts compiler.Options, spec MeasureSpec) (*exec.Result, error) {
	return e.cache.Measure(ctx, src, copts, spec, e.stats)
}

// EstimateAndMeasure is the per-point body of every accuracy sweep: it
// compiles src once (cached), interprets it for the estimated time
// (cached) and executes it on the simulated iPSC/860 for the measured
// time (also cached — the simulator is deterministic per MeasureSpec).
// runs <= 0 means one timed run; perturb is the measured-run load
// fluctuation amplitude.
func (e *Engine) EstimateAndMeasure(src string, runs int, perturb float64) (estUS, measUS float64, err error) {
	return e.EstimateAndMeasureContext(context.Background(), src, runs, perturb)
}

// EstimateAndMeasureContext is EstimateAndMeasure with cooperative
// cancellation of both the interpretation and the simulated execution.
func (e *Engine) EstimateAndMeasureContext(ctx context.Context, src string, runs int, perturb float64) (estUS, measUS float64, err error) {
	rep, err := e.InterpretContext(ctx, src, compiler.Options{}, core.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	res, err := e.MeasureContext(ctx, src, compiler.Options{}, DefaultMeasureSpec(runs, perturb))
	if err != nil {
		return 0, 0, err
	}
	return rep.TotalUS(), res.MeasuredUS, nil
}
