package experiments

import (
	"strings"
	"testing"

	"hpfperf/internal/suite"
)

func TestEstimateAndMeasure(t *testing.T) {
	src := suite.PI().Source(512, 4)
	est, meas, err := EstimateAndMeasure(src, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || meas <= 0 {
		t.Fatalf("est=%g meas=%g", est, meas)
	}
}

func TestTable2RowQuick(t *testing.T) {
	row, err := Table2Row(suite.PI(), QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Points) != 4 { // 2 sizes × 2 proc counts
		t.Fatalf("points = %d", len(row.Points))
	}
	if row.MaxErrPct() > 25 {
		t.Errorf("PI max error %.1f%% exceeds the paper's worst case band", row.MaxErrPct())
	}
	if row.MinErrPct() > row.MaxErrPct() {
		t.Error("min > max")
	}
}

func TestTable2AccuracyBandsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep in -short mode")
	}
	cfg := QuickConfig()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	worst := 0.0
	worstName := ""
	for _, r := range rows {
		if e := r.MaxErrPct(); e > worst {
			worst, worstName = e, r.Name
		}
	}
	// Paper: "in the worst case, the interpreted performance is within 20%
	// of the measured value".
	if worst > 30 {
		t.Errorf("worst-case error %.1f%% (%s) far outside the paper's band", worst, worstName)
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "LFK 1") || !strings.Contains(text, "Max Abs Error") {
		t.Errorf("table rendering incomplete:\n%s", text)
	}
}

func TestFigure3(t *testing.T) {
	out, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(Block,Block)", "(Block,*)", "(*,Block)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3 missing %s", want)
		}
	}
	// The (Block,Block) picture must show 4 distinct owners.
	if !strings.Contains(out, " 3 ") {
		t.Error("figure 3 should show processor 3 owning a tile")
	}
}

func TestFigure45Quick(t *testing.T) {
	series, err := Figure45(4, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 3 variants × (estimated + measured)
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for i, v := range s.TimeUS {
			if v <= 0 {
				t.Errorf("%s %s size %d: nonpositive time", s.Kind, s.Label, s.Sizes[i])
			}
		}
		// Times must grow with the problem size.
		if s.TimeUS[len(s.TimeUS)-1] <= s.TimeUS[0] {
			t.Errorf("%s %s: no growth across sizes", s.Kind, s.Label)
		}
	}
	txt := RenderFigure45(4, 4, series)
	if !strings.Contains(txt, "Figure 4") {
		t.Error("render missing title")
	}
}

func TestFigure45EstimatesTrackMeasurements(t *testing.T) {
	series, err := Figure45(4, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pair estimated/measured per variant and check the relative error at
	// the largest size (the paper reports <1% for Laplace; we accept a
	// wider simulator band).
	for i := 0; i < len(series); i += 2 {
		est := series[i]
		mea := series[i+1]
		last := len(est.TimeUS) - 1
		e := est.TimeUS[last]
		m := mea.TimeUS[last]
		if d := abs(e-m) / m * 100; d > 15 {
			t.Errorf("%s: est %.0f vs meas %.0f (%.1f%%)", est.Label, e, m, d)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFigure7PhaseShape(t *testing.T) {
	phases, err := Figure7(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	p1, p2 := phases[0].Metrics, phases[1].Metrics
	// Figure 6/7 structure: Phase 1 communicates (shift); Phase 2 does not.
	if p1.CommUS <= 0 {
		t.Error("phase 1 should include shift communication")
	}
	if p2.CommUS != 0 {
		t.Errorf("phase 2 should be communication-free, got %.1fus", p2.CommUS)
	}
	if p2.CompUS <= 0 {
		t.Error("phase 2 should compute call prices")
	}
	txt := RenderFigure7(phases)
	if !strings.Contains(txt, "Phase 1") || !strings.Contains(txt, "Phase 2") {
		t.Error("render missing phases")
	}
}

func TestFigure8Shape(t *testing.T) {
	times, err := Figure8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("variants = %d", len(times))
	}
	for _, e := range times {
		// §5.3: the interpretive approach is significantly more
		// cost-effective than measurement on the shared machine.
		if e.InterpreterMin >= e.IPSCMin {
			t.Errorf("%s: interpreter %.1fmin not cheaper than iPSC %.1fmin",
				e.Impl, e.InterpreterMin, e.IPSCMin)
		}
	}
	txt := RenderFigure8(times)
	if !strings.Contains(txt, "Figure 8") {
		t.Error("render missing title")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	for _, r := range rows {
		// Every ablation must make the model measurably worse.
		if abs(r.VariantErr) <= abs(r.DefaultErr) {
			t.Errorf("%s: ablated %.1f%% not worse than default %.1f%%",
				r.Name, r.VariantErr, r.DefaultErr)
		}
	}
	txt := RenderAblations(rows)
	if !strings.Contains(txt, "memory model") {
		t.Error("render incomplete")
	}
}
