// BENCH_PR8.json harness: the priced-admission overhead snapshot.
//
// The cost-admission gate statically prices every predict/measure
// request before interpretation (internal/server/admission.go). Its
// whole value proposition is that pricing is cheap relative to the
// work it gates, so TestEmitBenchPR8 (HPFPERF_EMIT_BENCH) records the
// /v1/predict p50 with and without an admitting gate next to the sweep
// throughput, and TestCheckBenchPR8 (HPFPERF_CHECK_BENCH) fails when
// the gate costs more than 2% on the p50 — the CI bench job's gate.
// Samples against the two servers are interleaved so host drift
// affects both sides equally.
package hpfperf_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"hpfperf/internal/server"
)

const benchPR8File = "BENCH_PR8.json"

// admissionBenchRecord is one row of BENCH_PR8.json.
type admissionBenchRecord struct {
	Name         string  `json:"name"`
	P50US        float64 `json:"p50_us,omitempty"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	OverheadPct  float64 `json:"overhead_pct,omitempty"`
}

// admissionBenchSource is the predict workload: a 64x64 Laplace sweep,
// large enough that one request does real interpretation work.
const admissionBenchSource = `      PROGRAM BENCH
!HPF$ PROCESSORS P(4)
      REAL U(64,64), V(64,64)
!HPF$ TEMPLATE T(64,64)
!HPF$ ALIGN U WITH T
!HPF$ ALIGN V WITH T
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
      INTEGER I
      U = 1.0
      V = 0.0
      DO I = 1, 20
        V(2:63,2:63) = 0.25 * (U(1:62,2:63) + U(3:64,2:63) + U(2:63,1:62) + U(2:63,3:64))
        U = V
      END DO
      PRINT *, U(32,32)
      END PROGRAM BENCH
`

func predictOnce(t testing.TB, url string, body []byte) time.Duration {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	return elapsed
}

func p50(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)/2].Microseconds())
}

// measureAdmissionOverhead interleaves /v1/predict requests against an
// ungated server and one whose cost gate is active (with budgets high
// enough to admit everything, so the full pricing + CAS reservation
// path runs on every request), and returns both p50s in microseconds.
func measureAdmissionOverhead(t testing.TB, samples int) (ungatedUS, gatedUS float64) {
	t.Helper()
	open := httptest.NewServer(server.New(server.Config{}).Handler())
	defer open.Close()
	gated := httptest.NewServer(server.New(server.Config{
		MaxCostUnits:         1e15,
		MaxInflightCostUnits: 1e15,
	}).Handler())
	defer gated.Close()

	body, err := json.Marshal(server.PredictRequest{Source: admissionBenchSource})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // warm caches and connections on both sides
		predictOnce(t, open.URL, body)
		predictOnce(t, gated.URL, body)
	}
	a := make([]time.Duration, 0, samples)
	b := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		a = append(a, predictOnce(t, open.URL, body))
		b = append(b, predictOnce(t, gated.URL, body))
	}
	return p50(a), p50(b)
}

func overheadPct(ungatedUS, gatedUS float64) float64 {
	return (gatedUS - ungatedUS) / ungatedUS * 100
}

// TestEmitBenchPR8 writes the admission-overhead snapshot (plus the
// sweep throughput for context) to BENCH_PR8.json when
// HPFPERF_EMIT_BENCH is set.
func TestEmitBenchPR8(t *testing.T) {
	if os.Getenv("HPFPERF_EMIT_BENCH") == "" {
		t.Skip("set HPFPERF_EMIT_BENCH=1 to emit " + benchPR8File)
	}
	ungated, gated := measureAdmissionOverhead(t, 150)
	sweep := sweepCachedRecord(t)
	records := []admissionBenchRecord{
		{Name: "PredictP50Ungated", P50US: ungated},
		{Name: "PredictP50Gated", P50US: gated, OverheadPct: overheadPct(ungated, gated)},
		{Name: sweep.Name, PointsPerSec: sweep.PointsPerSec},
	}
	f, err := os.Create(benchPR8File)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		t.Logf("%s: p50 %.0fus, overhead %.2f%%, %.1f points/sec", r.Name, r.P50US, r.OverheadPct, r.PointsPerSec)
	}
}

// TestCheckBenchPR8 re-measures the admission overhead and fails when
// the active gate costs more than 2% on the /v1/predict p50. The
// overhead is a same-run ratio, so the check needs no host
// normalization against the committed snapshot; the snapshot is still
// required to exist and parse so the committed numbers stay honest.
func TestCheckBenchPR8(t *testing.T) {
	if os.Getenv("HPFPERF_CHECK_BENCH") == "" {
		t.Skip("set HPFPERF_CHECK_BENCH=1 to check the admission-gate overhead")
	}
	data, err := os.ReadFile(benchPR8File)
	if err != nil {
		t.Fatalf("no committed snapshot: %v", err)
	}
	var committed []admissionBenchRecord
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("malformed %s: %v", benchPR8File, err)
	}
	if len(committed) < 2 {
		t.Fatalf("snapshot incomplete: %+v", committed)
	}

	// Best-of-three keeps scheduler hiccups from failing a gate whose
	// true cost is a few microseconds of static pricing.
	best := 100.0
	for i := 0; i < 3; i++ {
		ungated, gated := measureAdmissionOverhead(t, 100)
		pct := overheadPct(ungated, gated)
		t.Logf("round %d: ungated p50 %.0fus, gated p50 %.0fus, overhead %.2f%%", i+1, ungated, gated, pct)
		if pct < best {
			best = pct
		}
		if best < 2.0 {
			break
		}
	}
	if best >= 2.0 {
		t.Errorf("admission gate costs %.2f%% on /v1/predict p50, over the 2%% budget", best)
	}
}
