package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// bigSource returns a Laplace-style program whose simulated execution
// runs long enough to be mid-sweep when a short deadline fires.
func bigSource(iters int) string {
	return fmt.Sprintf(`      PROGRAM BIG
!HPF$ PROCESSORS P(4)
      REAL U(64,64), V(64,64)
!HPF$ TEMPLATE T(64,64)
!HPF$ ALIGN U WITH T
!HPF$ ALIGN V WITH T
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
      INTEGER I
      U = 1.0
      V = 0.0
      DO I = 1, %d
        V(2:63,2:63) = 0.25 * (U(1:62,2:63) + U(3:64,2:63) + U(2:63,1:62) + U(2:63,3:64))
        U = V
      END DO
      PRINT *, U(32,32)
      END PROGRAM BIG
`, iters)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestPredictHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 16 << 10})

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantStage  string
	}{
		{"empty body", ``, http.StatusBadRequest, "decode"},
		{"invalid json", `{`, http.StatusBadRequest, "decode"},
		{"unknown field", `{"sauce":"x"}`, http.StatusBadRequest, "decode"},
		{"missing source", `{"machine":"ipsc860"}`, http.StatusBadRequest, "decode"},
		{"bad machine", `{"source":"x","machine":"cray"}`, http.StatusBadRequest, "decode"},
		{"bad source", `{"source":"this is not fortran"}`, http.StatusBadRequest, "compile"},
		{"oversized body", `{"source":"` + strings.Repeat("x", 20<<10) + `"}`, http.StatusRequestEntityTooLarge, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body: %v", err)
			}
			if e.Stage != tc.wantStage {
				t.Errorf("stage = %q (%s), want %q", e.Stage, e.Error, tc.wantStage)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/predict")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestPredictSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/predict", PredictRequest{Source: bigSource(10), HotLines: 2, Profile: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pr.Program != "BIG" || pr.Procs != 4 {
		t.Errorf("program/procs = %q/%d, want BIG/4", pr.Program, pr.Procs)
	}
	if pr.EstUS <= 0 || pr.Seconds <= 0 {
		t.Errorf("est = %v us / %v s, want positive", pr.EstUS, pr.Seconds)
	}
	if pr.Profile == "" || pr.HotLines == "" {
		t.Errorf("profile/hot_lines missing from response")
	}
}

func TestMeasureDeadlineMidSweep(t *testing.T) {
	// A 1ms deadline on a multi-second simulation must return a timeout
	// error promptly instead of hanging until the sweep completes.
	_, ts := newTestServer(t, Config{})
	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/measure", MeasureRequest{Source: bigSource(2000), TimeoutMS: 1})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if e.Stage != "deadline" {
		t.Errorf("stage = %q, want deadline", e.Stage)
	}
	if elapsed > 5*time.Second {
		t.Errorf("timeout took %v; cancellation is not cooperative", elapsed)
	}
}

func TestPredictDeadline(t *testing.T) {
	// Interpretation + calibration under a zero-ish budget must also
	// honor the deadline (the interpreter loop checks ctx).
	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, aerr := s.handlePredict(ctx, []byte(`{"source":"`+`x`+`"}`))
	if aerr == nil {
		t.Fatal("want error from cancelled ctx")
	}
}

func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := bigSource(5)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(PredictRequest{Source: src})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	snap := s.Engine().Snapshot()
	if snap.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (single-flight)", snap.Compiles)
	}
	if snap.Interps != 1 {
		t.Errorf("interps = %d, want 1 (report cache single-flight)", snap.Interps)
	}
	if snap.ReportHits < n-1 {
		t.Errorf("report hits = %d, want >= %d", snap.ReportHits, n-1)
	}
}

func TestEndToEndPredictAutotuneFlow(t *testing.T) {
	// The interactive workflow of §5.2: predict a program, search for a
	// better distribution, then predict the recommended variant and
	// confirm it is no slower.
	_, ts := newTestServer(t, Config{})
	src := bigSource(10)

	resp, body := post(t, ts.URL+"/v1/predict", PredictRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, body)
	}
	var before PredictResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatalf("decode: %v", err)
	}

	resp, body = post(t, ts.URL+"/v1/autotune", AutotuneRequest{Source: src, Procs: 4, IncludeSource: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("autotune: status %d: %s", resp.StatusCode, body)
	}
	var at AutotuneResponse
	if err := json.Unmarshal(body, &at); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(at.Candidates) == 0 || at.BestSource == "" {
		t.Fatalf("autotune returned no candidates or no source: %s", body)
	}

	resp, body = post(t, ts.URL+"/v1/predict", PredictRequest{Source: at.BestSource})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict best: status %d: %s", resp.StatusCode, body)
	}
	var after PredictResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if after.EstUS > before.EstUS*1.0001 {
		t.Errorf("recommended variant slower: %v us > %v us", after.EstUS, before.EstUS)
	}
	if after.EstUS != at.Candidates[0].EstUS {
		t.Errorf("predict of best source (%v us) disagrees with autotune rank (%v us)",
			after.EstUS, at.Candidates[0].EstUS)
	}
}

func TestMeasureSuccessAndDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := MeasureRequest{Source: bigSource(3), NoPerturb: true}
	_, body1 := post(t, ts.URL+"/v1/measure", req)
	_, body2 := post(t, ts.URL+"/v1/measure", req)
	var m1, m2 MeasureResponse
	if err := json.Unmarshal(body1, &m1); err != nil {
		t.Fatalf("decode: %v (%s)", err, body1)
	}
	if err := json.Unmarshal(body2, &m2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m1.MeasuredUS <= 0 {
		t.Errorf("measured = %v, want positive", m1.MeasuredUS)
	}
	if m1.MeasuredUS != m2.MeasuredUS {
		t.Errorf("noise-free runs differ: %v vs %v", m1.MeasuredUS, m2.MeasuredUS)
	}
	if len(m1.Printed) == 0 {
		t.Errorf("no program output captured")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}

	post(t, ts.URL+"/v1/predict", PredictRequest{Source: bigSource(5)})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`hpfserve_requests_total{route="predict",code="200"} 1`,
		`hpfserve_request_duration_seconds_count{route="predict"} 1`,
		`sweep_cache_evictions_total{kind="compile"} 0`,
		`sweep_cache_evictions_total{kind="report"} 0`,
		`sweep_stage_runs_total{stage="compile"} 1`,
		`hpfserve_inflight_requests 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	_ = s
}

func TestDrainRefusesNewRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, body := post(t, ts.URL+"/v1/predict", PredictRequest{Source: "x"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 during drain", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d, want 503 during drain", hresp.StatusCode)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	// A slow request admitted before Shutdown must complete; Shutdown
	// must block until it does.
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(MeasureRequest{Source: bigSource(50), NoPerturb: true})
		close(started)
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json", bytes.NewReader(raw))
		if err != nil {
			result <- -1
			return
		}
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the request be admitted
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if code := <-result; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
}

func TestConcurrencyGateBounds(t *testing.T) {
	// With MaxConcurrent=1, two slow requests serialize; both succeed.
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(MeasureRequest{Source: bigSource(20), NoPerturb: true})
			resp, err := http.Post(ts.URL+"/v1/measure", "application/json", bytes.NewReader(raw))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d, want 200", i, c)
		}
	}
}
