package e2e

// End-to-end durable-jobs path: submit through the public client, poll
// with Retry-After-honoring backoff, collect the result, and observe
// the job in the trace ring and /metrics — the same surface an
// operator scripts against hpfserve -jobs-dir.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hpfperf/hpfclient"
	"hpfperf/internal/jobs"
	"hpfperf/internal/server"
)

func newJobsHarness(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t, server.Config{}, hpfclient.Config{})
	if err := h.srv.OpenJobs(jobs.Config{Dir: t.TempDir()}); err != nil {
		t.Fatalf("OpenJobs: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := h.srv.Jobs().Drain(ctx); err != nil {
			t.Errorf("jobs drain: %v", err)
		}
	})
	return h
}

func TestJobsLifecycleThroughClient(t *testing.T) {
	h := newJobsHarness(t)
	ctx := context.Background()

	sub, err := h.cli.SubmitJob(ctx, &hpfclient.JobSubmitRequest{
		Kind:     hpfclient.JobKindValidate,
		Validate: &hpfclient.ValidateJobRequest{Seed: 3, Count: 3},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if sub.Job.ID == "" {
		t.Fatal("submission returned no job ID")
	}

	v, err := h.cli.WaitJob(ctx, sub.Job.ID, hpfclient.PollPolicy{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.State != jobs.StateDone {
		t.Fatalf("job state %s (error %q)", v.State, v.Error)
	}
	var res server.ValidateJobResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Report == nil || res.Report.Count != 3 {
		t.Fatalf("validate report: %+v", res.Report)
	}

	list, err := h.cli.Jobs(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("job list: %+v", list.Jobs)
	}

	// The job's execution landed in the trace ring under its own route.
	tr, err := h.cli.Traces(ctx)
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	found := false
	for _, rec := range tr.Traces {
		if rec.Route == "jobs:validate" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace ring lacks the jobs:validate record: %+v", tr.Traces)
	}

	// /metrics exposes the jobs series next to the server's own.
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`hpfjobs_jobs{state="done"} 1`,
		"hpfjobs_submitted_total 1",
		`hpfjobs_finished_total{outcome="done"} 1`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("metrics output lacks %q", series)
		}
	}
}
