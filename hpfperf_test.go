package hpfperf_test

import (
	"bytes"
	"strings"
	"testing"

	"hpfperf"
)

const quickSrc = `PROGRAM quick
PARAMETER (N = 256)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) B(K) = REAL(K)
FORALL (K=2:N-1) A(K) = 0.5*(B(K-1) + B(K+1))
S = SUM(A)
PRINT *, S
END`

func TestCompile(t *testing.T) {
	p, err := hpfperf.Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "QUICK" || p.Processors() != 4 {
		t.Errorf("name=%s procs=%d", p.Name(), p.Processors())
	}
	if !strings.Contains(p.SPMD(), "SPMD PROGRAM") {
		t.Error("SPMD dump empty")
	}
	maps := p.Mappings()
	if len(maps) != 2 {
		t.Fatalf("mappings = %v", maps)
	}
	if !strings.Contains(maps[0], "BLOCK") {
		t.Errorf("mapping = %s", maps[0])
	}
}

func TestCompileError(t *testing.T) {
	if _, err := hpfperf.Compile("PROGRAM x\nY = )\nEND"); err == nil {
		t.Error("want syntax error")
	}
}

func TestPredictAndMeasureAgree(t *testing.T) {
	p, err := hpfperf.Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := hpfperf.Predict(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := hpfperf.Measure(p, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		t.Fatal(err)
	}
	e, m := pred.Microseconds(), meas.Microseconds()
	if e <= 0 || m <= 0 {
		t.Fatalf("est=%g meas=%g", e, m)
	}
	diff := (e - m) / m
	if diff < -0.25 || diff > 0.25 {
		t.Errorf("prediction off by %.1f%%", diff*100)
	}
}

func TestPredictionOutputs(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	pred, err := hpfperf.Predict(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pred.Profile(), "computation") {
		t.Error("profile missing breakdown")
	}
	comp, comm, _ := pred.Breakdown()
	if comp <= 0 || comm <= 0 {
		t.Errorf("breakdown comp=%g comm=%g", comp, comm)
	}
	if !strings.Contains(pred.AAG(2), "IterD") {
		t.Error("AAG view missing loops")
	}
	if !strings.Contains(pred.CommTable(), "shift") {
		t.Error("comm table missing shift")
	}
	if !strings.Contains(pred.Line(10), "line 10") {
		t.Error("line query broken")
	}
	if pred.HotLines(3) == "" {
		t.Error("hot lines empty")
	}
}

func TestTraceOutput(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	pred, _ := hpfperf.Predict(p, nil)
	var buf bytes.Buffer
	if err := pred.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-3 ") || !strings.Contains(out, "-21 ") {
		t.Errorf("trace missing records:\n%.300s", out)
	}
}

func TestMeasureFunctionalOutput(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	meas, err := hpfperf.Measure(p, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Printed()) != 1 {
		t.Fatalf("printed = %v", meas.Printed())
	}
	if len(meas.PerNode()) != 4 {
		t.Errorf("per-node clocks = %d", len(meas.PerNode()))
	}
}

func TestMeasureRunsAveraging(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	meas, err := hpfperf.Measure(p, &hpfperf.MeasureOptions{Runs: 4, Perturb: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Runs()) != 4 {
		t.Errorf("runs = %d", len(meas.Runs()))
	}
}

func laplaceVariant(d, grid string) string {
	return `PROGRAM lap
PARAMETER (N = 64, MAXIT = 4)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P` + grid + `
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T` + d + ` ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
DO ITER = 1, MAXIT
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
END`
}

func TestSelectDistribution(t *testing.T) {
	ranked, err := hpfperf.SelectDistribution([]hpfperf.Candidate{
		{Name: "(Block,Block)", Source: laplaceVariant("(BLOCK,BLOCK)", "(2,2)")},
		{Name: "(Block,*)", Source: laplaceVariant("(BLOCK,*)", "(4)")},
		{Name: "(*,Block)", Source: laplaceVariant("(*,BLOCK)", "(4)")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Prediction.Microseconds() > ranked[i].Prediction.Microseconds() {
			t.Error("ranking not sorted")
		}
	}
	if ranked[len(ranked)-1].Name != "(Block,Block)" {
		t.Errorf("expected (Block,Block) to rank worst, got order %s, %s, %s",
			ranked[0].Name, ranked[1].Name, ranked[2].Name)
	}
}

func TestSuiteAccess(t *testing.T) {
	all := hpfperf.Suite()
	if len(all) != 16 {
		t.Fatalf("suite = %d", len(all))
	}
	pi, err := hpfperf.SuiteProgramByName("PI")
	if err != nil {
		t.Fatal(err)
	}
	src := pi.Source(128, 2)
	if !strings.Contains(src, "PROCESSORS P(2)") {
		t.Error("suite source not parameterized")
	}
	if _, err := hpfperf.SuiteProgramByName("nope"); err == nil {
		t.Error("want error for unknown program")
	}
}

func TestPredictOptionsAblation(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	off := false
	noMem, err := hpfperf.Predict(p, &hpfperf.PredictOptions{MemoryModel: &off})
	if err != nil {
		t.Fatal(err)
	}
	def, _ := hpfperf.Predict(p, nil)
	if noMem.Microseconds() >= def.Microseconds() {
		t.Error("disabling the memory model should lower the estimate")
	}
	avg, err := hpfperf.Predict(p, &hpfperf.PredictOptions{AverageLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Microseconds() > def.Microseconds() {
		t.Error("average load model should not exceed max-loaded")
	}
}

func TestPhaseMetrics(t *testing.T) {
	p, _ := hpfperf.Compile(quickSrc)
	pred, _ := hpfperf.Predict(p, nil)
	comp, _, _ := pred.PhaseMetrics(9, 10)
	if comp <= 0 {
		t.Error("phase metrics empty")
	}
	txt := pred.PhaseProfile("phases", []hpfperf.Phase{{Name: "init", FromLine: 9, ToLine: 9}})
	if !strings.Contains(txt, "init") {
		t.Error("phase profile missing name")
	}
}

func TestAutoDistribute(t *testing.T) {
	src := laplaceVariant("(BLOCK,BLOCK)", "(2,2)")
	cands, err := hpfperf.AutoDistribute(src, 4, &hpfperf.AutoDistributeOptions{NoCyclic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	best := cands[0]
	if best.Err != nil || best.EstUS <= 0 {
		t.Fatalf("best candidate invalid: %+v", best)
	}
	if _, err := hpfperf.Compile(best.Source); err != nil {
		t.Fatalf("best source does not compile: %v", err)
	}
	// The 5-point stencil must not pick (BLOCK,BLOCK): a 1-D distribution
	// halves the message count.
	if strings.Contains(best.Desc, "(BLOCK,BLOCK)") {
		t.Errorf("best = %s", best.Desc)
	}
}

func TestMachineSelection(t *testing.T) {
	if len(hpfperf.Machines()) < 2 {
		t.Fatalf("machines = %v", hpfperf.Machines())
	}
	p, _ := hpfperf.Compile(quickSrc)
	ipsc, err := hpfperf.Predict(p, &hpfperf.PredictOptions{Machine: "ipsc860"})
	if err != nil {
		t.Fatal(err)
	}
	para, err := hpfperf.Predict(p, &hpfperf.PredictOptions{Machine: "paragon"})
	if err != nil {
		t.Fatal(err)
	}
	if para.Microseconds() >= ipsc.Microseconds() {
		t.Errorf("paragon (%g) should beat the iPSC/860 (%g)", para.Microseconds(), ipsc.Microseconds())
	}
	if _, err := hpfperf.Predict(p, &hpfperf.PredictOptions{Machine: "cray"}); err == nil {
		t.Error("want error for unknown machine")
	}
	mp, err := hpfperf.Measure(p, &hpfperf.MeasureOptions{Machine: "paragon", Perturb: -1})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := hpfperf.Measure(p, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Microseconds() >= mi.Microseconds() {
		t.Errorf("measured paragon (%g) should beat iPSC (%g)", mp.Microseconds(), mi.Microseconds())
	}
	// Cross-machine prediction error stays sane.
	e := (para.Microseconds() - mp.Microseconds()) / mp.Microseconds() * 100
	if e > 25 || e < -25 {
		t.Errorf("paragon prediction error %.1f%%", e)
	}
}

// dynSrc has an untraceable critical variable (NITER arrives from a
// reduction-guarded IF), so EvaluateWith actually changes the outcome.
const dynSrc = `PROGRAM dyn
PARAMETER (N = 128)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
S = SUM(A)
IF (S .GT. 0.5) THEN
NITER = 3
ELSE
NITER = 9
ENDIF
DO IT = 1, NITER
FORALL (K=1:N) A(K) = A(K) + 1.5
ENDDO
R = SUM(A)
PRINT *, R
END`

func TestCompiledPredictionMatchesPredict(t *testing.T) {
	p, err := hpfperf.Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := hpfperf.Predict(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.CompilePrediction(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Microseconds() != pred.Microseconds() {
		t.Errorf("compiled form = %g us, tree interpretation = %g us", got.Microseconds(), pred.Microseconds())
	}
}

func TestCompiledPredictionIncrementalValues(t *testing.T) {
	p, err := hpfperf.Compile(dynSrc)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.CompilePrediction(nil)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i, niter := range []int64{2, 8, 2} {
		vals := map[string]int64{"NITER": niter}
		got, err := cp.EvaluateWith(vals, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := hpfperf.Predict(p, &hpfperf.PredictOptions{IntValues: vals})
		if err != nil {
			t.Fatal(err)
		}
		if got.Microseconds() != ref.Microseconds() {
			t.Errorf("NITER=%d: compiled %g us, reference %g us", niter, got.Microseconds(), ref.Microseconds())
		}
		if i == 1 && got.Microseconds() == last {
			t.Error("changing NITER did not change the prediction; values ignored?")
		}
		last = got.Microseconds()
	}
}
