package core

import (
	"math"

	"hpfperf/internal/ast"
	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
)

// absEnv is the abstract scalar store used to resolve critical variables
// (§4.2: "a critical variable being defined as a variable whose value
// effects the flow of execution, e.g. a loop limit"). Only variables with
// statically traceable values are present.
type absEnv map[string]sem.Value

// evalScalar abstractly evaluates an expression; ok is false when the
// value depends on run-time data (array elements, reduction results, ...).
func evalScalar(e hir.Expr, env absEnv) (sem.Value, bool) {
	switch x := e.(type) {
	case *hir.Const:
		return x.Val, true
	case *hir.Ref:
		v, ok := env[x.Name]
		return v, ok
	case *hir.Elem:
		return sem.Value{}, false
	case *hir.Un:
		v, ok := evalScalar(x.X, env)
		if !ok {
			return v, false
		}
		switch x.Op {
		case hir.OpNeg:
			if v.Type == ast.TInteger {
				return sem.IntVal(-v.I), true
			}
			return sem.RealVal(-v.AsFloat()), true
		case hir.OpNot:
			return sem.LogicalVal(!v.B), true
		}
		return sem.Value{}, false
	case *hir.Bin:
		a, ok := evalScalar(x.X, env)
		if !ok {
			return a, false
		}
		b, ok := evalScalar(x.Y, env)
		if !ok {
			return b, false
		}
		return evalBinAbs(x, a, b)
	case *hir.Intr:
		args := make([]sem.Value, len(x.Args))
		for i, a := range x.Args {
			v, ok := evalScalar(a, env)
			if !ok {
				return v, false
			}
			args[i] = v
		}
		return evalIntrAbs(x.Name, args)
	}
	return sem.Value{}, false
}

func evalBinAbs(x *hir.Bin, a, b sem.Value) (sem.Value, bool) {
	switch x.Op {
	case hir.OpAnd:
		return sem.LogicalVal(a.B && b.B), true
	case hir.OpOr:
		return sem.LogicalVal(a.B || b.B), true
	}
	if x.Op.IsCompare() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case hir.OpEq:
			return sem.LogicalVal(af == bf), true
		case hir.OpNe:
			return sem.LogicalVal(af != bf), true
		case hir.OpLt:
			return sem.LogicalVal(af < bf), true
		case hir.OpLe:
			return sem.LogicalVal(af <= bf), true
		case hir.OpGt:
			return sem.LogicalVal(af > bf), true
		case hir.OpGe:
			return sem.LogicalVal(af >= bf), true
		}
	}
	if x.Typ == ast.TInteger {
		ai, bi := a.AsInt(), b.AsInt()
		switch x.Op {
		case hir.OpAdd:
			return sem.IntVal(ai + bi), true
		case hir.OpSub:
			return sem.IntVal(ai - bi), true
		case hir.OpMul:
			return sem.IntVal(ai * bi), true
		case hir.OpDiv:
			if bi == 0 {
				return sem.Value{}, false
			}
			return sem.IntVal(ai / bi), true
		case hir.OpPow:
			if bi < 0 {
				return sem.IntVal(0), true
			}
			r := int64(1)
			for k := int64(0); k < bi; k++ {
				r *= ai
			}
			return sem.IntVal(r), true
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch x.Op {
	case hir.OpAdd:
		return sem.RealVal(af + bf), true
	case hir.OpSub:
		return sem.RealVal(af - bf), true
	case hir.OpMul:
		return sem.RealVal(af * bf), true
	case hir.OpDiv:
		return sem.RealVal(af / bf), true
	case hir.OpPow:
		return sem.RealVal(math.Pow(af, bf)), true
	}
	return sem.Value{}, false
}

func evalIntrAbs(name string, args []sem.Value) (sem.Value, bool) {
	f1 := func(fn func(float64) float64) (sem.Value, bool) {
		return sem.RealVal(fn(args[0].AsFloat())), true
	}
	switch name {
	case "ABS":
		if args[0].Type == ast.TInteger {
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return sem.IntVal(v), true
		}
		return f1(math.Abs)
	case "SQRT":
		return f1(math.Sqrt)
	case "EXP":
		return f1(math.Exp)
	case "LOG":
		return f1(math.Log)
	case "SIN":
		return f1(math.Sin)
	case "COS":
		return f1(math.Cos)
	case "TAN":
		return f1(math.Tan)
	case "ATAN":
		return f1(math.Atan)
	case "INT":
		return sem.IntVal(args[0].AsInt()), true
	case "REAL", "FLOAT", "DBLE":
		return sem.RealVal(args[0].AsFloat()), true
	case "MOD":
		if args[0].Type == ast.TInteger && args[1].Type == ast.TInteger {
			if args[1].I == 0 {
				return sem.Value{}, false
			}
			return sem.IntVal(args[0].I % args[1].I), true
		}
		return sem.RealVal(math.Mod(args[0].AsFloat(), args[1].AsFloat())), true
	case "MIN":
		out := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() < out.AsFloat() {
				out = a
			}
		}
		return out, true
	case "MAX":
		out := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() > out.AsFloat() {
				out = a
			}
		}
		return out, true
	}
	return sem.Value{}, false
}

// killAssigned removes from env every scalar assigned anywhere in the
// statement subtree (used after interpreting loop bodies once: values
// written inside a loop are iteration-dependent).
func killAssigned(ss []hir.Stmt, env absEnv) {
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				if lv, ok := x.Lhs.(*hir.ScalarLV); ok {
					delete(env, lv.Name)
				}
			case *hir.Loop:
				delete(env, x.Var)
				scan(x.Body)
			case *hir.While:
				scan(x.Body)
			case *hir.If:
				scan(x.Then)
				scan(x.Else)
			case *hir.Reduce:
				delete(env, x.Dst)
				if x.LocDst != "" {
					delete(env, x.LocDst)
				}
			case *hir.FetchElem:
				delete(env, x.Dst)
			}
		}
	}
	scan(ss)
}

// exprVars lists replicated scalar names referenced by an expression
// (for critical-variable diagnostics).
func exprVars(e hir.Expr) []string {
	var out []string
	var walk func(e hir.Expr)
	walk = func(e hir.Expr) {
		switch x := e.(type) {
		case *hir.Ref:
			out = append(out, x.Name)
		case *hir.Bin:
			walk(x.X)
			walk(x.Y)
		case *hir.Un:
			walk(x.X)
		case *hir.Intr:
			for _, a := range x.Args {
				walk(a)
			}
		case *hir.Elem:
			for _, s := range x.Subs {
				walk(s)
			}
		}
	}
	walk(e)
	return out
}
