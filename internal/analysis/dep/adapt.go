package dep

import "hpfperf/internal/ast"

// IndexFromRange builds the Index descriptor for one loop or forall
// dimension. Bounds are recorded only when the range provably iterates
// every integer in [lo, hi]: constant bounds with a unit stride (stride
// nil means 1). Anything else stays unbounded, which keeps the exactness
// proofs (and therefore Refuted verdicts) sound.
func IndexFromRange(name string, lo, hi, stride ast.Expr, consts map[string]int64) Index {
	ix := Index{Name: name}
	unit := stride == nil
	if !unit {
		s := Normalize(stride, consts, nil)
		unit = s.OK && len(s.Coeffs) == 0 && s.Const == 1
	}
	l := Normalize(lo, consts, nil)
	h := Normalize(hi, consts, nil)
	if unit && l.OK && len(l.Coeffs) == 0 && h.OK && len(h.Coeffs) == 0 {
		ix.Lo, ix.Hi, ix.Bounded = l.Const, h.Const, true
	}
	return ix
}
