package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hpfperf/internal/faults"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestMapRetriesTransientFailures(t *testing.T) {
	e := New(Options{Workers: 4, Retry: fastRetry(4)})
	var calls [8]atomic.Int64
	res, err := Map(e, 8, func(i int) (int, error) {
		if calls[i].Add(1) < 3 {
			return 0, &faults.InjectedError{Site: "test"}
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*10 {
			t.Errorf("res[%d] = %d", i, v)
		}
		if n := calls[i].Load(); n != 3 {
			t.Errorf("point %d evaluated %d times, want 3", i, n)
		}
	}
	if got := e.Snapshot().Retries; got != 16 {
		t.Errorf("retries = %d, want 16", got)
	}
}

func TestMapDoesNotRetryPermanentErrors(t *testing.T) {
	e := New(Options{Workers: 2, Retry: fastRetry(5)})
	var calls atomic.Int64
	wantErr := errors.New("compile: bad program")
	_, err := Map(e, 1, func(i int) (int, error) {
		calls.Add(1)
		return 0, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("permanent error evaluated %d times, want 1", n)
	}
	if got := e.Snapshot().Retries; got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

func TestMapRecoversPointPanics(t *testing.T) {
	// MaxAttempts 1: panics are transient, so a retrying policy would
	// recover (and count) the deterministic re-panic several times.
	e := New(Options{Workers: 4, Retry: fastRetry(1)})
	_, err := Map(e, 10, func(i int) (int, error) {
		if i == 6 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if got := e.Snapshot().PointPanics; got != 1 {
		t.Errorf("point panics = %d, want 1", got)
	}
}

func TestPanicsAreTransientAndRetried(t *testing.T) {
	e := New(Options{Workers: 2, Retry: fastRetry(3)})
	var calls atomic.Int64
	res, err := Map(e, 1, func(i int) (int, error) {
		if calls.Add(1) == 1 {
			panic("first attempt dies")
		}
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Errorf("res[0] = %d", res[0])
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("evaluated %d times, want 2", n)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{&faults.InjectedError{Site: "compile"}, true},
		{&PanicError{Stage: "x", Value: "v"}, true},
		{errors.Join(errors.New("wrap"), &faults.InjectedError{Site: "s"}), true},
		{context.Canceled, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %t, want %t", c.err, got, c.want)
		}
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}
	for retry := 1; retry <= 20; retry++ {
		d := p.backoff(retry)
		if d <= 0 || d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v out of (0, %v]", retry, d, p.MaxDelay)
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

func ckptAt(t *testing.T, key string) *Checkpoint {
	t.Helper()
	return &Checkpoint{Path: filepath.Join(t.TempDir(), "sweep.ckpt"), Key: key}
}

func TestCheckpointResumeSkipsCompletedPoints(t *testing.T) {
	e := New(Options{Workers: 1})
	ck := ckptAt(t, "resume-test")
	const n = 10

	// First run fails at point 6; Map evaluates every point (lowest-
	// index error semantics), so all points except 6 are recorded.
	var firstCalls atomic.Int64
	_, err := MapCheckpoint(e, n, ck, func(i int) (float64, error) {
		firstCalls.Add(1)
		if i == 6 {
			return 0, errors.New("crash here")
		}
		return float64(i) * 1.5, nil
	})
	if err == nil {
		t.Fatal("first run should fail")
	}
	if _, err := os.Stat(ck.Path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run must only evaluate the point the first one did not
	// record.
	var secondCalls atomic.Int64
	res, err := MapCheckpoint(e, n, ck, func(i int) (float64, error) {
		secondCalls.Add(1)
		if i != 6 {
			t.Errorf("point %d re-evaluated despite checkpoint", i)
		}
		return float64(i) * 1.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != float64(i)*1.5 {
			t.Errorf("res[%d] = %g, want %g", i, v, float64(i)*1.5)
		}
	}
	if got := secondCalls.Load(); got != 1 {
		t.Errorf("second run evaluated %d points, want 1", got)
	}
	if _, err := os.Stat(ck.Path); !os.IsNotExist(err) {
		t.Errorf("checkpoint file not removed after success: %v", err)
	}
}

func TestCheckpointKeyMismatchStartsFresh(t *testing.T) {
	e := New(Options{Workers: 2})
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")

	ck1 := &Checkpoint{Path: path, Key: "config-A"}
	_, err := MapCheckpoint(e, 4, ck1, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("fail to keep the file")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want failure")
	}

	// A different key must ignore the stale file.
	ck2 := &Checkpoint{Path: path, Key: "config-B"}
	var calls atomic.Int64
	if _, err := MapCheckpoint(e, 4, ck2, func(i int) (int, error) {
		calls.Add(1)
		return i + 100, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("evaluated %d points with mismatched key, want all 4", got)
	}
}

func TestCheckpointCorruptFileStartsFresh(t *testing.T) {
	e := New(Options{Workers: 2})
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Path: path, Key: "k"}
	res, err := MapCheckpoint(e, 3, ck, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*2 {
			t.Errorf("res[%d] = %d", i, v)
		}
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	e := New(Options{Workers: 2})
	const n = 8
	point := func(i int) (float64, error) {
		// Exercise non-trivial float values (JSON round trip must be exact).
		return float64(i) / 7.0 * 1e6, nil
	}
	clean, err := Map(e, n, point)
	if err != nil {
		t.Fatal(err)
	}

	ck := ckptAt(t, "identical")
	// Interrupted run: cancel after a few points complete.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, _ = MapCheckpointCtx(ctx, e, n, ck, func(i int) (float64, error) {
		v, _ := point(i)
		if done.Add(1) == 3 {
			cancel()
		}
		return v, nil
	})
	cancel()

	resumed, err := MapCheckpoint(e, n, ck, point)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(clean)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Errorf("resumed output differs:\nclean   %s\nresumed %s", a, b)
	}
}

func TestCheckpointNilDegradesToMapCtx(t *testing.T) {
	e := New(Options{Workers: 2})
	res, err := MapCheckpoint(e, 3, nil, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
}

func TestCheckpointRequiresPath(t *testing.T) {
	e := New(Options{Workers: 1})
	_, err := MapCheckpoint(e, 1, &Checkpoint{Key: "k"}, func(i int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("want error for checkpoint without path")
	}
}

func TestPanicErrorString(t *testing.T) {
	pe := &PanicError{Stage: "sweep point 3", Value: "boom"}
	if got := pe.Error(); got != "sweep point 3: internal panic: boom" {
		t.Errorf("Error() = %q", got)
	}
}
