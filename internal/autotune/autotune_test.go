package autotune

import (
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/exec"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/suite"
)

const tuneSrc = `PROGRAM lap
PARAMETER (N = 64, MAXIT = 4)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
DO ITER = 1, MAXIT
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
END`

func TestSearchEnumeratesAndRanks(t *testing.T) {
	cands, err := Search(tuneSrc, Options{Procs: 4, Interp: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 6 {
		t.Fatalf("candidates = %d, want a real search space", len(cands))
	}
	valid := 0
	for i, c := range cands {
		if c.Err == nil {
			valid++
			if c.EstUS <= 0 {
				t.Errorf("candidate %d (%s) has no estimate", i, c.Desc())
			}
		}
	}
	if valid < 4 {
		t.Fatalf("valid candidates = %d", valid)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].EstUS > cands[i].EstUS {
			t.Fatal("candidates not sorted by estimate")
		}
	}
	// The winner must be a 1-D row/column distribution (matching §5.2.1's
	// conclusion that a 1-D distribution beats (Block,Block)).
	best := cands[0]
	f := best.Formats["T"]
	if !strings.Contains(f, "*") {
		t.Errorf("best format = %s; expected a collapsed dimension", f)
	}
}

func TestSearchBestIsMeasurablyGood(t *testing.T) {
	cands, err := Search(tuneSrc, Options{Procs: 4, Interp: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	best, worst := cands[0], cands[0]
	for _, c := range cands {
		if c.Err == nil {
			worst = c
		}
	}
	measure := func(src string) float64 {
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ipsc.DefaultConfig(prog.Info.Grid.Size())
		cfg.PerturbAmp = 0
		cfg.TimerResUS = 0
		m, _ := ipsc.New(cfg)
		res, err := exec.Run(prog, m, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeasuredUS
	}
	mb, mw := measure(best.Source), measure(worst.Source)
	if mb > mw*1.02 {
		t.Errorf("predicted best (%s: %.0fus) measured worse than predicted worst (%s: %.0fus)",
			best.Desc(), mb, worst.Desc(), mw)
	}
}

func TestSearchRewritesSourceCorrectly(t *testing.T) {
	cands, err := Search(tuneSrc, Options{Procs: 8, NoCyclic: true, Interp: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		if !strings.Contains(c.Source, "!HPF$ PROCESSORS P"+c.GridSpec) {
			t.Errorf("source missing grid spec %s", c.GridSpec)
		}
		if !strings.Contains(c.Source, "!HPF$ DISTRIBUTE T"+c.Formats["T"]) {
			t.Errorf("source missing format %s", c.Formats["T"])
		}
		// The rewritten source must still be a valid program.
		if _, err := compiler.Compile(c.Source); err != nil {
			t.Errorf("%s: rewritten source does not compile: %v", c.Desc(), err)
		}
	}
}

func TestSearchNoCyclic(t *testing.T) {
	cands, err := Search(tuneSrc, Options{Procs: 4, NoCyclic: true, Interp: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if strings.Contains(c.Formats["T"], "CYCLIC") {
			t.Errorf("cyclic candidate %s despite NoCyclic", c.Desc())
		}
	}
}

func TestSearchRequiresDirectives(t *testing.T) {
	src := "PROGRAM p\n!HPF$ PROCESSORS P(2)\nX = 1.0\nEND"
	if _, err := Search(src, Options{Procs: 2}); err == nil {
		t.Error("want error for program without DISTRIBUTE")
	}
	src2 := "PROGRAM p\nX = 1.0\nEND"
	if _, err := Search(src2, Options{Procs: 2}); err == nil {
		t.Error("want error for program without PROCESSORS")
	}
	if _, err := Search(tuneSrc, Options{}); err == nil {
		t.Error("want error for missing Procs")
	}
}

func TestSearchOneDimensionalProgram(t *testing.T) {
	src := suite.PI().Source(512, 4)
	cands, err := Search(src, Options{Procs: 4, Interp: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// Rank-1 array: BLOCK and CYCLIC on a 1-D grid.
	validDescs := map[string]bool{}
	for _, c := range cands {
		if c.Err == nil {
			validDescs[c.Formats["F"]] = true
		}
	}
	if !validDescs["(BLOCK)"] || !validDescs["(CYCLIC)"] {
		t.Errorf("valid formats = %v", validDescs)
	}
}

func TestGridShapes(t *testing.T) {
	got := gridShapes(8, 2)
	want := map[string]bool{"[8]": true, "[2 4]": true, "[4 2]": true}
	if len(got) != len(want) {
		t.Fatalf("shapes = %v", got)
	}
	got1 := gridShapes(8, 1)
	if len(got1) != 1 {
		t.Errorf("rank-1 shapes = %v", got1)
	}
}

func TestFormatCombos(t *testing.T) {
	// rank 2, 1 distributed dim, no cyclic: (BLOCK,*) and (*,BLOCK).
	combos := formatCombos(2, 1, true)
	if len(combos) != 2 {
		t.Fatalf("combos = %v", combos)
	}
	// rank 2, 2 distributed dims, with cyclic: 2×2 kinds = 4.
	combos = formatCombos(2, 2, false)
	if len(combos) != 4 {
		t.Fatalf("combos = %v", combos)
	}
	if formatCombos(1, 2, true) != nil {
		t.Error("cannot distribute 2 dims of a rank-1 target")
	}
}
