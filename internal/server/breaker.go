package server

import (
	"sync"
	"time"
)

// BreakerState is a per-route circuit breaker state, exported in
// /metrics as a gauge.
type BreakerState int32

const (
	// BreakerClosed admits all requests (healthy).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits a single probe request.
	BreakerHalfOpen
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-route circuit breaker: after threshold consecutive
// internal failures (HTTP 500 — panics and injected faults, never
// client errors or deadline expiries) it opens and sheds the route's
// requests for cooldown, then admits a single half-open probe whose
// outcome closes or re-opens it. This keeps a route whose pipeline is
// persistently crashing from burning worker slots that healthy routes
// need — load shedding by failure history rather than by queue depth.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	opens    int64     // lifetime count of closed/half-open -> open
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed. When it may not, retry
// is how long the caller should advertise in Retry-After.
func (b *breaker) allow(now time.Time) (retry time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if since := now.Sub(b.openedAt); since >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return 0, true // this request is the probe
		} else {
			return b.cooldown - since, false
		}
	case BreakerHalfOpen:
		if b.probing {
			return b.cooldown, false // one probe at a time
		}
		b.probing = true
		return 0, true
	}
	return 0, true
}

// report records a request outcome. failure means an internal server
// failure (HTTP 500), not any non-2xx.
func (b *breaker) report(failure bool, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !failure:
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
	case b.state == BreakerHalfOpen:
		// The probe failed: re-open and restart the cooldown.
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
	default:
		b.fails++
		if b.state == BreakerClosed && b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
		}
	}
}

// snapshot returns the state and lifetime open count for /metrics.
func (b *breaker) snapshot() (BreakerState, int64) {
	if b == nil {
		return BreakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
