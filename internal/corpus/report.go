package corpus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Row is one program's metrics in the HPL benchmark-report shape
// (N/NB/P/Q/time/Gflops plus a validity check), extended with the
// prediction-side columns the differential harness adds.
type Row struct {
	Name     string  `json:"name"`
	Kernel   string  `json:"kernel"`
	N        int     `json:"N"`
	NB       int     `json:"NB"` // CYCLIC(k)/BLOCK(n) chunk; 0 = format default
	P        int     `json:"P"`  // processor grid rows
	Q        int     `json:"Q"`  // processor grid cols (1 for 1-D grids)
	Time     float64 `json:"time"`   // measured (simulated) seconds
	Gflops   float64 `json:"Gflops"` // nominal kernel flops / time
	PredTime float64 `json:"pred_time"`
	RelErr   float64 `json:"rel_err"`
	Bound    float64 `json:"bound"`
	Valid    bool    `json:"valid"`
	Err      string  `json:"err,omitempty"`
}

// FamilySummary aggregates one kernel family's verdicts.
type FamilySummary struct {
	Count     int     `json:"count"`
	Passed    int     `json:"passed"`
	MaxRelErr float64 `json:"max_rel_err"`
	Bound     float64 `json:"bound"`
}

// Report is the corpus validation report: per-program rows in
// generation order plus per-family aggregates. Serialization is
// deterministic (slices ordered, map keys sorted by encoding/json), so
// two runs over the same corpus — resumed or not — emit the same bytes.
type Report struct {
	Count    int                      `json:"count"`
	Passed   int                      `json:"passed"`
	Failed   int                      `json:"failed"`
	Families map[string]FamilySummary `json:"families"`
	Rows     []Row                    `json:"rows"`
}

// Pass reports whether every program validated.
func (r *Report) Pass() bool { return r.Failed == 0 }

// BuildReport aggregates verdicts (in generation order) into a Report.
func BuildReport(verdicts []Verdict) *Report {
	r := &Report{Families: make(map[string]FamilySummary)}
	for _, v := range verdicts {
		pq := [2]int{v.GridP, 1}
		if v.GridQ > 0 {
			pq[1] = v.GridQ
		}
		row := Row{
			Name:     v.Name,
			Kernel:   string(v.Family),
			N:        v.N,
			NB:       v.NB,
			P:        pq[0],
			Q:        pq[1],
			Time:     v.MeasUS / 1e6,
			PredTime: v.PredUS / 1e6,
			RelErr:   v.RelErr,
			Bound:    v.Bound,
			Valid:    v.Pass(),
			Err:      v.Err,
		}
		if v.MeasUS > 0 {
			row.Gflops = v.Flops() / v.MeasUS / 1e3
		}
		r.Rows = append(r.Rows, row)
		r.Count++
		fs := r.Families[row.Kernel]
		fs.Count++
		fs.Bound = v.Bound
		if row.Valid {
			fs.Passed++
			r.Passed++
		} else {
			r.Failed++
		}
		if v.Err == "" && v.RelErr > fs.MaxRelErr {
			fs.MaxRelErr = v.RelErr
		}
		r.Families[row.Kernel] = fs
	}
	return r
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Report contains only marshalable field types.
		panic(fmt.Sprintf("corpus: marshal report: %v", err))
	}
	return append(b, '\n')
}

// Text renders the human summary: one HPL-style line per program and a
// per-family roll-up.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %6s %4s %3s %3s %12s %10s %8s %s\n",
		"name", "kernel", "N", "NB", "P", "Q", "time(s)", "Gflops", "relerr", "valid")
	for _, row := range r.Rows {
		status := "PASS"
		if !row.Valid {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-16s %-10s %6d %4d %3d %3d %12.6f %10.6f %7.2f%% %s\n",
			row.Name, row.Kernel, row.N, row.NB, row.P, row.Q,
			row.Time, row.Gflops, row.RelErr*100, status)
		if row.Err != "" {
			fmt.Fprintf(&b, "    %s\n", row.Err)
		}
	}
	fams := make([]string, 0, len(r.Families))
	for f := range r.Families {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	b.WriteString("\nper-family max relative error:\n")
	for _, f := range fams {
		fs := r.Families[f]
		fmt.Fprintf(&b, "  %-10s %3d/%3d passed, max |pred-meas|/meas %5.2f%% (bound %.0f%%)\n",
			f, fs.Passed, fs.Count, fs.MaxRelErr*100, fs.Bound*100)
	}
	fmt.Fprintf(&b, "\n%d programs: %d passed, %d failed\n", r.Count, r.Passed, r.Failed)
	return b.String()
}
