// Package parser implements a recursive-descent parser for the HPF/Fortran
// 90D subset, producing the AST of package ast. This is the first step of
// compilation phase 1 in the paper (§4.1 step 1).
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"hpfperf/internal/ast"
	"hpfperf/internal/scanner"
	"hpfperf/internal/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of parse errors implementing error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Parse parses a complete HPF/Fortran 90D program unit.
func Parse(src string) (*ast.Program, error) {
	toks, scanErrs := scanner.ScanAll(src)
	p := &parser{toks: toks}
	for _, e := range scanErrs {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

type parser struct {
	toks []token.Token
	i    int
	errs ErrorList
}

// bailout is used with panic/recover for unrecoverable statement errors;
// the statement loop resynchronizes at the next NEWLINE.
type bailout struct{}

func (p *parser) cur() token.Token { return p.toks[p.i] }
func (p *parser) kind() token.Kind { return p.toks[p.i].Kind }
func (p *parser) peek() token.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	panic(bailout{})
}

func (p *parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) > 50 {
		panic(bailout{}) // avoid error cascades on badly corrupt input
	}
}

// skipNewlines consumes any run of statement separators.
func (p *parser) skipNewlines() {
	for p.at(token.NEWLINE) || p.at(token.SEMI) {
		p.advance()
	}
}

// syncLine skips to just after the next statement separator.
func (p *parser) syncLine() {
	for !p.at(token.NEWLINE) && !p.at(token.SEMI) && !p.at(token.EOF) {
		p.advance()
	}
	p.skipNewlines()
}

// endOfStmt consumes the mandatory statement separator (or EOF).
func (p *parser) endOfStmt() {
	if p.at(token.EOF) {
		return
	}
	if p.at(token.NEWLINE) || p.at(token.SEMI) {
		p.skipNewlines()
		return
	}
	p.errorf("unexpected %s at end of statement", p.cur())
	p.syncLine()
}

// ---------------------------------------------------------------------------
// Program structure

func (p *parser) parseProgram() *ast.Program {
	defer p.recoverBail()
	p.skipNewlines()
	prog := &ast.Program{Name: "MAIN", NamePos: p.cur().Pos}
	if p.accept(token.KwPROGRAM) {
		prog.Name = p.expect(token.IDENT).Text
		p.endOfStmt()
	}
	// Specification part: declarations and directives.
	for {
		p.skipNewlines()
		switch p.kind() {
		case token.KwINTEGER, token.KwREAL, token.KwDOUBLE, token.KwLOGICAL, token.KwCHARACTER:
			p.withRecover(func() { prog.Decls = append(prog.Decls, p.parseTypeDecl()) })
		case token.KwPARAMETER:
			p.withRecover(func() { prog.Decls = append(prog.Decls, p.parseParameterDecl()) })
		case token.KwDIMENSION:
			p.withRecover(func() { prog.Decls = append(prog.Decls, p.parseDimensionDecl()) })
		case token.KwIMPLICIT:
			p.withRecover(func() {
				pos := p.advance().Pos
				p.expect(token.KwNONE)
				p.endOfStmt()
				prog.Decls = append(prog.Decls, &ast.ImplicitNoneDecl{ImpPos: pos})
			})
		case token.KwHPF:
			if p.peek().Kind == token.KwINDEPENDENT {
				// INDEPENDENT opens the execution part: it attaches to the
				// DO/FORALL statement that follows it.
				goto body
			}
			p.withRecover(func() {
				if d := p.parseDirective(); d != nil {
					prog.Directives = append(prog.Directives, d)
				}
			})
		default:
			goto body
		}
	}
body:
	// Execution part.
	for {
		p.skipNewlines()
		if p.at(token.EOF) {
			p.errorf("missing END statement")
			return prog
		}
		if p.at(token.KwEND) {
			p.advance()
			p.accept(token.KwPROGRAM)
			p.accept(token.IDENT) // optional program name
			return prog
		}
		if p.at(token.KwHPF) {
			if p.peek().Kind == token.KwINDEPENDENT {
				// INDEPENDENT attaches to the following DO/FORALL statement.
				p.withRecover(func() {
					if s := p.parseStmt(); s != nil {
						prog.Body = append(prog.Body, s)
					}
				})
				continue
			}
			// Executable-part directives (e.g. REDISTRIBUTE) are parsed and
			// recorded with the others.
			p.withRecover(func() {
				if d := p.parseDirective(); d != nil {
					prog.Directives = append(prog.Directives, d)
				}
			})
			continue
		}
		p.withRecover(func() {
			if s := p.parseStmt(); s != nil {
				prog.Body = append(prog.Body, s)
			}
		})
	}
}

func (p *parser) withRecover(f func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			p.syncLine()
		}
	}()
	f()
}

func (p *parser) recoverBail() {
	if r := recover(); r != nil {
		if _, ok := r.(bailout); !ok {
			panic(r)
		}
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseTypeDecl() ast.Decl {
	pos := p.cur().Pos
	var bt ast.BaseType
	switch p.advance().Kind {
	case token.KwINTEGER:
		bt = ast.TInteger
	case token.KwREAL:
		bt = ast.TReal
	case token.KwDOUBLE:
		p.expect(token.KwPRECISION)
		bt = ast.TDouble
	case token.KwLOGICAL:
		bt = ast.TLogical
	case token.KwCHARACTER:
		bt = ast.TCharacter
	}
	// Attribute form: INTEGER, PARAMETER :: N = 4
	if p.accept(token.COMMA) {
		p.expect(token.KwPARAMETER)
		p.expect(token.DCOLON)
		pd := &ast.ParameterDecl{ParPos: pos}
		for {
			name := p.expect(token.IDENT).Text
			p.expect(token.ASSIGN)
			pd.Names = append(pd.Names, name)
			pd.Values = append(pd.Values, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.endOfStmt()
		return pd
	}
	p.accept(token.DCOLON)
	d := &ast.TypeDecl{Type: bt, TypePos: pos}
	for {
		d.Entities = append(d.Entities, p.parseEntity())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.endOfStmt()
	return d
}

func (p *parser) parseEntity() ast.Entity {
	tok := p.expect(token.IDENT)
	e := ast.Entity{Name: tok.Text, Pos: tok.Pos}
	if p.accept(token.LPAREN) {
		for {
			e.Dims = append(e.Dims, p.parseArrayBound())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	return e
}

func (p *parser) parseArrayBound() ast.ArrayBound {
	first := p.parseExpr()
	if p.accept(token.COLON) {
		return ast.ArrayBound{Lo: first, Hi: p.parseExpr()}
	}
	return ast.ArrayBound{Hi: first}
}

func (p *parser) parseParameterDecl() ast.Decl {
	pos := p.expect(token.KwPARAMETER).Pos
	p.expect(token.LPAREN)
	d := &ast.ParameterDecl{ParPos: pos}
	for {
		name := p.expect(token.IDENT).Text
		p.expect(token.ASSIGN)
		d.Names = append(d.Names, name)
		d.Values = append(d.Values, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	p.endOfStmt()
	return d
}

func (p *parser) parseDimensionDecl() ast.Decl {
	pos := p.expect(token.KwDIMENSION).Pos
	d := &ast.DimensionDecl{DimPos: pos}
	for {
		d.Entities = append(d.Entities, p.parseEntity())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.endOfStmt()
	return d
}

// ---------------------------------------------------------------------------
// Directives

func (p *parser) parseDirective() ast.Directive {
	pos := p.expect(token.KwHPF).Pos
	switch p.kind() {
	case token.KwPROCESSORS:
		p.advance()
		d := &ast.ProcessorsDir{DPos: pos}
		d.Name = p.expect(token.IDENT).Text
		if p.accept(token.LPAREN) {
			for {
				d.Shape = append(d.Shape, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		p.endOfStmt()
		return d
	case token.KwTEMPLATE:
		p.advance()
		d := &ast.TemplateDir{DPos: pos}
		d.Name = p.expect(token.IDENT).Text
		p.expect(token.LPAREN)
		for {
			d.Dims = append(d.Dims, p.parseArrayBound())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.endOfStmt()
		return d
	case token.KwALIGN:
		p.advance()
		d := &ast.AlignDir{DPos: pos}
		d.Array = p.expect(token.IDENT).Text
		if p.accept(token.LPAREN) {
			for {
				d.Dummies = append(d.Dummies, p.expect(token.IDENT).Text)
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		p.expect(token.KwWITH)
		d.Target = p.expect(token.IDENT).Text
		if p.accept(token.LPAREN) {
			for {
				if p.at(token.STAR) {
					p.advance()
					d.TargetSubs = append(d.TargetSubs, nil)
				} else {
					d.TargetSubs = append(d.TargetSubs, p.parseExpr())
				}
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		p.endOfStmt()
		return d
	case token.KwDISTRIBUTE, token.KwREDISTRIBUTE:
		p.advance()
		d := &ast.DistributeDir{DPos: pos}
		d.Target = p.expect(token.IDENT).Text
		p.expect(token.LPAREN)
		for {
			d.Formats = append(d.Formats, p.parseDistFormat())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		if p.accept(token.KwONTO) {
			d.Onto = p.expect(token.IDENT).Text
		}
		p.endOfStmt()
		return d
	}
	p.errorf("unknown HPF directive starting with %s", p.cur())
	p.syncLine()
	return nil
}

func (p *parser) parseDistFormat() ast.DistFormat {
	switch p.kind() {
	case token.KwBLOCK:
		p.advance()
		f := ast.DistFormat{Kind: ast.DistBlock}
		if p.accept(token.LPAREN) {
			f.Arg = p.parseExpr()
			p.expect(token.RPAREN)
		}
		return f
	case token.KwCYCLIC:
		p.advance()
		f := ast.DistFormat{Kind: ast.DistCyclic}
		if p.accept(token.LPAREN) {
			f.Arg = p.parseExpr()
			p.expect(token.RPAREN)
		}
		return f
	case token.STAR:
		p.advance()
		return ast.DistFormat{Kind: ast.DistStar}
	}
	p.errorf("expected BLOCK, CYCLIC or '*' in DISTRIBUTE, found %s", p.cur())
	panic(bailout{})
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmt() ast.Stmt {
	switch p.kind() {
	case token.KwHPF:
		return p.parseIndependent()
	case token.KwDO:
		return p.parseDo()
	case token.KwIF:
		return p.parseIf()
	case token.KwFORALL:
		return p.parseForall()
	case token.KwWHERE:
		return p.parseWhere()
	case token.KwCALL:
		return p.parseCall()
	case token.KwPRINT:
		return p.parsePrint()
	case token.KwWRITE, token.KwREAD:
		// Treated like PRINT for abstraction purposes.
		return p.parseWriteRead()
	case token.KwSTOP:
		pos := p.advance().Pos
		if p.at(token.INTLIT) || p.at(token.STRINGLIT) {
			p.advance()
		}
		p.endOfStmt()
		return &ast.StopStmt{StopPos: pos}
	case token.KwCONTINUE:
		pos := p.advance().Pos
		p.endOfStmt()
		return &ast.ContinueStmt{ContPos: pos}
	case token.IDENT:
		return p.parseAssign()
	case token.INTLIT:
		// Statement label: "10 CONTINUE" — accept and ignore the label.
		p.advance()
		return p.parseStmt()
	}
	p.errorf("unexpected %s at start of statement", p.cur())
	panic(bailout{})
}

// parseIndependent parses an executable-position !HPF$ INDEPENDENT
// directive and attaches it to the DO or FORALL statement that must
// immediately follow it.
func (p *parser) parseIndependent() ast.Stmt {
	pos := p.expect(token.KwHPF).Pos
	if !p.at(token.KwINDEPENDENT) {
		p.errorf("unknown HPF directive %s in executable block", p.cur())
		p.syncLine()
		return nil
	}
	p.advance()
	p.endOfStmt()
	p.skipNewlines()
	switch p.kind() {
	case token.KwDO:
		s := p.parseDo()
		if d, ok := s.(*ast.DoStmt); ok {
			d.Independent = true
		} else {
			p.errs = append(p.errs, &Error{Pos: pos, Msg: "INDEPENDENT directive cannot apply to DO WHILE"})
		}
		return s
	case token.KwFORALL:
		s := p.parseForall()
		if f, ok := s.(*ast.ForallStmt); ok {
			f.Independent = true
		}
		return s
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: "INDEPENDENT directive must immediately precede a DO or FORALL statement"})
	return nil
}

func (p *parser) parseAssign() ast.Stmt {
	lhs := p.parsePrimary()
	switch lhs.(type) {
	case *ast.Ident, *ast.CallOrIndex:
	default:
		p.errorf("invalid assignment target")
		panic(bailout{})
	}
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	p.endOfStmt()
	return &ast.AssignStmt{Lhs: lhs, Rhs: rhs}
}

func (p *parser) parseDo() ast.Stmt {
	pos := p.expect(token.KwDO).Pos
	if p.accept(token.KwWHILE) {
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.endOfStmt()
		body := p.parseBlockUntil(p.isEndDo)
		p.consumeEndDo()
		return &ast.DoWhileStmt{Cond: cond, Body: body, DoPos: pos}
	}
	// Optional label form "DO 10 I = ..." — skip the label.
	p.acceptLabel()
	v := p.expect(token.IDENT).Text
	p.expect(token.ASSIGN)
	from := p.parseExpr()
	p.expect(token.COMMA)
	to := p.parseExpr()
	var step ast.Expr
	if p.accept(token.COMMA) {
		step = p.parseExpr()
	}
	p.endOfStmt()
	body := p.parseBlockUntil(p.isEndDo)
	p.consumeEndDo()
	return &ast.DoStmt{Var: v, From: from, To: to, Step: step, Body: body, DoPos: pos}
}

func (p *parser) acceptLabel() {
	if p.at(token.INTLIT) && p.peek().Kind == token.IDENT {
		p.advance()
	}
}

func (p *parser) isEndDo() bool {
	if p.at(token.KwENDDO) {
		return true
	}
	return p.at(token.KwEND) && p.peek().Kind == token.KwDO
}

func (p *parser) consumeEndDo() {
	if p.accept(token.KwENDDO) {
		p.endOfStmt()
		return
	}
	p.expect(token.KwEND)
	p.expect(token.KwDO)
	p.endOfStmt()
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	if !p.at(token.KwTHEN) {
		// Logical IF: one statement on the same line.
		inner := p.parseStmt()
		return &ast.IfStmt{Cond: cond, Then: []ast.Stmt{inner}, IfPos: pos}
	}
	p.expect(token.KwTHEN)
	p.endOfStmt()
	s := &ast.IfStmt{Cond: cond, Block: true, IfPos: pos}
	s.Then = p.parseBlockUntil(p.isIfBranchEnd)
	p.parseIfTail(s)
	return s
}

// isIfBranchEnd reports whether the current token starts ELSE / ELSE IF /
// ELSEIF / END IF / ENDIF.
func (p *parser) isIfBranchEnd() bool {
	switch p.kind() {
	case token.KwELSE, token.KwELSEIF, token.KwENDIF:
		return true
	case token.KwEND:
		return p.peek().Kind == token.KwIF
	}
	return false
}

func (p *parser) parseIfTail(s *ast.IfStmt) {
	switch {
	case p.at(token.KwENDIF):
		p.advance()
		p.endOfStmt()
	case p.at(token.KwEND):
		p.advance()
		p.expect(token.KwIF)
		p.endOfStmt()
	case p.at(token.KwELSEIF), p.at(token.KwELSE) && p.peek().Kind == token.KwIF:
		// ELSE IF (cond) THEN — build a nested IfStmt in Else.
		pos := p.advance().Pos
		if p.kind() == token.KwIF {
			p.advance()
		}
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.KwTHEN)
		p.endOfStmt()
		nested := &ast.IfStmt{Cond: cond, Block: true, IfPos: pos}
		nested.Then = p.parseBlockUntil(p.isIfBranchEnd)
		p.parseIfTail(nested)
		s.Else = []ast.Stmt{nested}
	case p.at(token.KwELSE):
		p.advance()
		p.endOfStmt()
		s.Else = p.parseBlockUntil(p.isIfBranchEnd)
		if p.at(token.KwENDIF) {
			p.advance()
		} else {
			p.expect(token.KwEND)
			p.expect(token.KwIF)
		}
		p.endOfStmt()
	default:
		p.errorf("expected ELSE or END IF, found %s", p.cur())
		panic(bailout{})
	}
}

func (p *parser) parseForall() ast.Stmt {
	pos := p.expect(token.KwFORALL).Pos
	p.expect(token.LPAREN)
	s := &ast.ForallStmt{ForPos: pos}
	for {
		// Index-spec (IDENT '=' triplet) or trailing mask expression.
		if p.at(token.IDENT) && p.peek().Kind == token.ASSIGN {
			name := p.advance().Text
			p.advance() // '='
			lo := p.parseExpr()
			p.expect(token.COLON)
			hi := p.parseExpr()
			var stride ast.Expr
			if p.accept(token.COLON) {
				stride = p.parseExpr()
			}
			s.Indices = append(s.Indices, ast.ForallIndex{Name: name, Lo: lo, Hi: hi, Stride: stride})
		} else {
			if s.Mask != nil {
				p.errorf("multiple mask expressions in FORALL")
			}
			s.Mask = p.parseExpr()
		}
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if len(s.Indices) == 0 {
		p.errorf("FORALL requires at least one index specification")
	}
	if p.at(token.NEWLINE) || p.at(token.SEMI) {
		// FORALL construct.
		s.Construct = true
		p.endOfStmt()
		s.Body = p.parseBlockUntil(p.isEndForall)
		p.consumeEndForall()
		return s
	}
	inner := p.parseStmt()
	s.Body = []ast.Stmt{inner}
	return s
}

func (p *parser) isEndForall() bool {
	if p.at(token.KwENDFORALL) {
		return true
	}
	return p.at(token.KwEND) && p.peek().Kind == token.KwFORALL
}

func (p *parser) consumeEndForall() {
	if p.accept(token.KwENDFORALL) {
		p.endOfStmt()
		return
	}
	p.expect(token.KwEND)
	p.expect(token.KwFORALL)
	p.endOfStmt()
}

func (p *parser) parseWhere() ast.Stmt {
	pos := p.expect(token.KwWHERE).Pos
	p.expect(token.LPAREN)
	mask := p.parseExpr()
	p.expect(token.RPAREN)
	s := &ast.WhereStmt{Mask: mask, WherePos: pos}
	if p.at(token.NEWLINE) || p.at(token.SEMI) {
		s.Construct = true
		p.endOfStmt()
		s.Body = p.parseBlockUntil(p.isWhereBranchEnd)
		if p.at(token.KwELSEWHERE) {
			p.advance()
			p.endOfStmt()
			s.ElseBody = p.parseBlockUntil(p.isWhereBranchEnd)
		}
		if p.accept(token.KwENDWHERE) {
			p.endOfStmt()
		} else {
			p.expect(token.KwEND)
			p.expect(token.KwWHERE)
			p.endOfStmt()
		}
		return s
	}
	inner := p.parseStmt()
	s.Body = []ast.Stmt{inner}
	return s
}

func (p *parser) isWhereBranchEnd() bool {
	switch p.kind() {
	case token.KwELSEWHERE, token.KwENDWHERE:
		return true
	case token.KwEND:
		return p.peek().Kind == token.KwWHERE
	}
	return false
}

func (p *parser) parseCall() ast.Stmt {
	pos := p.expect(token.KwCALL).Pos
	name := p.expect(token.IDENT).Text
	s := &ast.CallStmt{Name: name, CallPos: pos}
	if p.accept(token.LPAREN) {
		if !p.at(token.RPAREN) {
			for {
				s.Args = append(s.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
		}
		p.expect(token.RPAREN)
	}
	p.endOfStmt()
	return s
}

func (p *parser) parsePrint() ast.Stmt {
	pos := p.expect(token.KwPRINT).Pos
	p.expect(token.STAR)
	s := &ast.PrintStmt{PrintPos: pos}
	for p.accept(token.COMMA) {
		s.Args = append(s.Args, p.parseExpr())
	}
	p.endOfStmt()
	return s
}

// parseWriteRead accepts WRITE(*,*) list / READ(*,*) list and models them
// as PRINT for abstraction purposes.
func (p *parser) parseWriteRead() ast.Stmt {
	pos := p.advance().Pos // WRITE or READ
	p.expect(token.LPAREN)
	p.expect(token.STAR)
	p.expect(token.COMMA)
	p.expect(token.STAR)
	p.expect(token.RPAREN)
	s := &ast.PrintStmt{PrintPos: pos}
	if !p.at(token.NEWLINE) && !p.at(token.SEMI) && !p.at(token.EOF) {
		for {
			s.Args = append(s.Args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.endOfStmt()
	return s
}

// parseBlockUntil parses statements until stop() reports a terminator
// (which is left unconsumed) or EOF.
func (p *parser) parseBlockUntil(stop func() bool) []ast.Stmt {
	var body []ast.Stmt
	for {
		p.skipNewlines()
		if p.at(token.EOF) || stop() {
			return body
		}
		if p.at(token.KwEND) {
			// A bare END here means a missing terminator; stop to let the
			// enclosing construct report it.
			switch p.peek().Kind {
			case token.KwDO, token.KwIF, token.KwFORALL, token.KwWHERE:
			default:
				return body
			}
		}
		p.withRecover(func() {
			if s := p.parseStmt(); s != nil {
				body = append(body, s)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec := token.Precedence(p.kind())
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.advance()
		// '**' is right-associative; everything else left-associative.
		next := prec + 1
		if op.Kind == token.POW {
			next = prec
		}
		rhs := p.parseBinary(next)
		lhs = &ast.BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, OpPos: op.Pos}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.kind() {
	case token.MINUS, token.PLUS, token.NOT:
		op := p.advance()
		x := p.parseUnary()
		if op.Kind == token.PLUS {
			return x
		}
		return &ast.UnaryExpr{Op: op.Kind, X: x, OpPos: op.Pos}
	}
	return p.parsePower()
}

// parsePower handles the Fortran quirk that -A**2 is -(A**2) but A**-B is
// allowed after **; our parseBinary handles ** via precedence, so this just
// forwards to primary.
func (p *parser) parsePower() ast.Expr {
	base := p.parsePrimary()
	if p.at(token.POW) {
		op := p.advance()
		exp := p.parseUnary() // allow A ** -2
		return &ast.BinaryExpr{Op: token.POW, X: base, Y: exp, OpPos: op.Pos}
	}
	return base
}

func (p *parser) parsePrimary() ast.Expr {
	tok := p.cur()
	switch tok.Kind {
	case token.INTLIT:
		p.advance()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			p.errorf("invalid integer literal %q", tok.Text)
		}
		return &ast.IntLit{Value: v, Text: tok.Text, ValuePos: tok.Pos}
	case token.REALLIT:
		p.advance()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			p.errorf("invalid real literal %q", tok.Text)
		}
		return &ast.RealLit{Value: v, Text: tok.Text, ValuePos: tok.Pos}
	case token.LOGICALLIT:
		p.advance()
		return &ast.LogicalLit{Value: tok.Text == "TRUE", ValuePos: tok.Pos}
	case token.STRINGLIT:
		p.advance()
		return &ast.StringLit{Value: tok.Text, ValuePos: tok.Pos}
	case token.IDENT:
		p.advance()
		if p.at(token.LPAREN) {
			return p.parseCallOrIndex(tok)
		}
		return &ast.Ident{Name: tok.Text, NamePos: tok.Pos}
	case token.KwREAL:
		// REAL is both a type keyword and the conversion intrinsic; in
		// expression position it must be the intrinsic call REAL(x).
		p.advance()
		if p.at(token.LPAREN) {
			return p.parseCallOrIndex(token.Token{Kind: token.IDENT, Text: "REAL", Pos: tok.Pos})
		}
		p.errorf("REAL keyword in expression position")
		panic(bailout{})
	case token.LPAREN:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf("unexpected %s in expression", tok)
	panic(bailout{})
}

func (p *parser) parseCallOrIndex(name token.Token) ast.Expr {
	p.expect(token.LPAREN)
	c := &ast.CallOrIndex{Name: name.Text, NamePos: name.Pos}
	if !p.at(token.RPAREN) {
		for {
			c.Args = append(c.Args, p.parseArgOrSection())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	return c
}

// parseArgOrSection parses one argument which may be a section triplet
// (lo:hi:stride with any part omitted) or an ordinary expression.
func (p *parser) parseArgOrSection() ast.Expr {
	pos := p.cur().Pos
	if p.at(token.COLON) {
		// ":..." — section with omitted lower bound.
		p.advance()
		sec := &ast.Section{ColonPos: pos}
		if !p.sectionEnd() {
			sec.Hi = p.parseExpr()
		}
		if p.accept(token.COLON) {
			sec.Stride = p.parseExpr()
		}
		return sec
	}
	first := p.parseExpr()
	if !p.at(token.COLON) {
		return first
	}
	p.advance()
	sec := &ast.Section{Lo: first, ColonPos: pos}
	if !p.sectionEnd() {
		sec.Hi = p.parseExpr()
	}
	if p.accept(token.COLON) {
		sec.Stride = p.parseExpr()
	}
	return sec
}

func (p *parser) sectionEnd() bool {
	return p.at(token.COMMA) || p.at(token.RPAREN) || p.at(token.COLON)
}
