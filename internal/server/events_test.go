package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"hpfperf/internal/jobs"
)

// sseClient reads one GET /v1/jobs/{id}/events stream.
type sseClient struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

// openSSE starts a stream; lastEventID > 0 sends the resume cursor.
func openSSE(t *testing.T, base, id string, lastEventID int) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("open stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		body := make([]byte, 512)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		cancel()
		t.Fatalf("stream status = %d: %s", resp.StatusCode, body[:n])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads SSE frames until one full event arrives, returning it plus
// how many heartbeat comments passed by. ok=false means the stream
// ended.
func (c *sseClient) next(t *testing.T) (ev jobs.Event, heartbeats int, ok bool) {
	t.Helper()
	var data string
	var sawID, sawEvent string
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue
			}
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("event data %q: %v", data, err)
			}
			// The id:/event: framing must agree with the JSON payload —
			// that is what EventSource exposes and what Last-Event-ID
			// echoes back.
			if sawID != strconv.Itoa(ev.Seq) {
				t.Fatalf("id: line %q, payload seq %d", sawID, ev.Seq)
			}
			if sawEvent != string(ev.State) {
				t.Fatalf("event: line %q, payload state %s", sawEvent, ev.State)
			}
			return ev, heartbeats, true
		case strings.HasPrefix(line, ": hb"):
			heartbeats++
		case strings.HasPrefix(line, "id: "):
			sawID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			sawEvent = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	return jobs.Event{}, heartbeats, false
}

// collectSSE reads events until the stream closes or a terminal event.
func (c *sseClient) collectSSE(t *testing.T) []jobs.Event {
	t.Helper()
	var out []jobs.Event
	for {
		ev, _, ok := c.next(t)
		if !ok {
			return out
		}
		out = append(out, ev)
		if ev.Terminal {
			return out
		}
	}
}

func submitPredictJob(t *testing.T, base string, iters int) string {
	t.Helper()
	resp, body := post(t, base+"/v1/jobs", JobSubmitRequest{
		Kind:    JobKindPredict,
		Predict: &PredictRequest{Source: bigSource(iters)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	return sub.Job.ID
}

// TestJobEventsStreamReplaysJournal: the SSE stream of a finished job
// is exactly the job's retained event history — the same sequence the
// WAL records — and a dropped connection resumes with Last-Event-ID
// without duplicating or skipping transitions.
func TestJobEventsStreamReplaysJournal(t *testing.T) {
	s, base := newJobsServer(t, Config{}, jobs.Config{})
	id := submitPredictJob(t, base, 5)
	pollJob(t, base, id)

	// Full stream from the start.
	got := openSSE(t, base, id, 0).collectSSE(t)
	want, err := s.Jobs().Events(id)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, history has %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		g.Time, w.Time = time.Time{}, time.Time{} // JSON round-trip monotonic-clock loss
		if g != w {
			t.Fatalf("event %d: streamed %+v, history %+v", i, g, w)
		}
	}
	if !got[len(got)-1].Terminal || got[len(got)-1].State != jobs.StateDone {
		t.Fatalf("stream end: %+v", got[len(got)-1])
	}

	// Drop after the second event, resume with Last-Event-ID: the tail
	// must butt-join the prefix exactly.
	c := openSSE(t, base, id, 0)
	var prefix []jobs.Event
	for len(prefix) < 2 {
		ev, _, ok := c.next(t)
		if !ok {
			t.Fatal("stream ended before 2 events")
		}
		prefix = append(prefix, ev)
	}
	c.close() // dropped connection

	tail := openSSE(t, base, id, prefix[1].Seq).collectSSE(t)
	joined := append(prefix, tail...)
	if len(joined) != len(want) {
		t.Fatalf("prefix+tail = %d events, want %d", len(joined), len(want))
	}
	for i := range joined {
		if joined[i].Seq != want[i].Seq || joined[i].State != want[i].State {
			t.Fatalf("resumed event %d: %+v, want seq %d state %s", i, joined[i], want[i].Seq, want[i].State)
		}
	}

	// A cursor from a previous server generation replays everything.
	if again := openSSE(t, base, id, 10_000).collectSSE(t); len(again) != len(want) {
		t.Fatalf("stale cursor replayed %d events, want %d", len(again), len(want))
	}
}

func TestJobEventsErrors(t *testing.T) {
	_, base := newJobsServer(t, Config{}, jobs.Config{})

	resp, err := http.Get(base + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}

	id := submitPredictJob(t, base, 2)
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(er.Error, "Last-Event-ID") {
		t.Fatalf("error: %q", er.Error)
	}
}

func TestJobEventsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/x/events")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("jobs-disabled stream: %d, want 501 (same answer as every other jobs route)", resp.StatusCode)
	}
}

// TestJobEventsHeartbeat: an idle stream (job queued behind a busy
// worker) emits comment heartbeats so intermediaries keep the
// connection open, then ends with the terminal event when the job is
// cancelled.
func TestJobEventsHeartbeat(t *testing.T) {
	s, base := newJobsServer(t, Config{SSEHeartbeat: 5 * time.Millisecond}, jobs.Config{Workers: 1})

	// Park the single worker on a validation job big enough to outlive
	// the assertions below, then queue a second job behind it.
	resp, body := post(t, base+"/v1/jobs", JobSubmitRequest{
		Kind:     JobKindValidate,
		Validate: &ValidateJobRequest{Seed: 1, Count: 400},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit blocker: %d %s", resp.StatusCode, body)
	}
	id := submitPredictJob(t, base, 2)

	c := openSSE(t, base, id, 0)
	ev, _, ok := c.next(t)
	if !ok || ev.State != jobs.StateSubmitted {
		t.Fatalf("first event: %+v ok=%v", ev, ok)
	}

	// The queued job produces no transitions; heartbeats must flow.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.sseHeartbeats.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat on an idle stream")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Cancel the queued job: the stream delivers cancelled and ends.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	dresp.Body.Close()
	ev, hb, ok := c.next(t)
	if !ok || ev.State != jobs.StateCancelled || !ev.Terminal {
		t.Fatalf("after cancel: %+v ok=%v", ev, ok)
	}
	if hb == 0 {
		t.Error("no heartbeat comment observed on the wire before the terminal event")
	}
	if _, _, ok := c.next(t); ok {
		t.Fatal("stream kept going after the terminal event")
	}
}
