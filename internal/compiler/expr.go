package compiler

import (
	"hpfperf/internal/ast"
	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
	"hpfperf/internal/token"
)

// mapOp converts an AST operator token to an HIR operator.
func mapOp(k token.Kind) hir.Op {
	switch k {
	case token.PLUS:
		return hir.OpAdd
	case token.MINUS:
		return hir.OpSub
	case token.STAR:
		return hir.OpMul
	case token.SLASH:
		return hir.OpDiv
	case token.POW:
		return hir.OpPow
	case token.EQ:
		return hir.OpEq
	case token.NE:
		return hir.OpNe
	case token.LT:
		return hir.OpLt
	case token.LE:
		return hir.OpLe
	case token.GT:
		return hir.OpGt
	case token.GE:
		return hir.OpGe
	case token.AND:
		return hir.OpAnd
	case token.OR:
		return hir.OpOr
	case token.NOT:
		return hir.OpNot
	}
	panic("compiler: unmapped operator " + k.String())
}

// gatherCtx tracks, within an enclosing sequential loop, which arrays are
// written (and therefore may not use a loop-hoisted gather) and which have
// already been gathered.
type gatherCtx struct {
	written  map[string]bool
	gathered map[string]bool
	hoisted  []hir.Stmt
}

// writtenArrays collects the names of arrays assigned anywhere in stmts.
func (lw *lowerer) writtenArrays(stmts []ast.Stmt) map[string]bool {
	w := make(map[string]bool)
	var scan func(ss []ast.Stmt)
	scan = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *ast.AssignStmt:
				switch lhs := x.Lhs.(type) {
				case *ast.Ident:
					w[lhs.Name] = true
				case *ast.CallOrIndex:
					w[lhs.Name] = true
				}
			case *ast.DoStmt:
				scan(x.Body)
			case *ast.DoWhileStmt:
				scan(x.Body)
			case *ast.IfStmt:
				scan(x.Then)
				scan(x.Else)
			case *ast.ForallStmt:
				scan(x.Body)
			case *ast.WhereStmt:
				scan(x.Body)
				scan(x.ElseBody)
			}
		}
	}
	scan(stmts)
	return w
}

// lowerScalarExpr lowers a scalar-valued expression in replicated
// (sequential) context. Reads of distributed array elements become
// FetchElem broadcasts (or shadow reads after a loop-hoisted AllGather);
// reduction intrinsics are expanded into partitioned loops + Reduce.
// The returned statements must execute immediately before the consumer.
func (lw *lowerer) lowerScalarExpr(e ast.Expr, env *idxEnv) (hir.Expr, []hir.Stmt, error) {
	var pre []hir.Stmt
	out, err := lw.scalarExpr(e, env, &pre)
	return out, pre, err
}

func (lw *lowerer) scalarExpr(e ast.Expr, env *idxEnv, pre *[]hir.Stmt) (hir.Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return &hir.Const{Val: sem.IntVal(x.Value)}, nil
	case *ast.RealLit:
		v := sem.RealVal(x.Value)
		if x.Double {
			v.Type = ast.TDouble
		}
		return &hir.Const{Val: v}, nil
	case *ast.LogicalLit:
		return &hir.Const{Val: sem.LogicalVal(x.Value)}, nil
	case *ast.StringLit:
		return nil, lw.errf(x.Pos(), "character values are not supported in expressions")
	case *ast.Ident:
		if env.bound(x.Name) {
			return &hir.Ref{Name: x.Name, Kind: hir.Private, Typ: ast.TInteger}, nil
		}
		sym := lw.info.Sym(x.Name)
		if sym == nil {
			return nil, lw.errf(x.Pos(), "undeclared name %s", x.Name)
		}
		switch sym.Kind {
		case sem.SymConst:
			return &hir.Const{Val: sym.Const}, nil
		case sem.SymScalar:
			return &hir.Ref{Name: x.Name, Kind: hir.Replicated, Typ: sym.Type}, nil
		case sem.SymArray:
			return nil, lw.errf(x.Pos(), "whole array %s in scalar context", x.Name)
		}
		return nil, lw.errf(x.Pos(), "%s (%s) cannot appear in an expression", x.Name, sym.Kind)
	case *ast.UnaryExpr:
		in, err := lw.scalarExpr(x.X, env, pre)
		if err != nil {
			return nil, err
		}
		op := hir.OpNeg
		if x.Op == token.NOT {
			op = hir.OpNot
		}
		return &hir.Un{Op: op, X: in, Typ: in.Type()}, nil
	case *ast.BinaryExpr:
		a, err := lw.scalarExpr(x.X, env, pre)
		if err != nil {
			return nil, err
		}
		b, err := lw.scalarExpr(x.Y, env, pre)
		if err != nil {
			return nil, err
		}
		return mkBin(mapOp(x.Op), a, b), nil
	case *ast.CallOrIndex:
		return lw.scalarCall(x, env, pre)
	}
	return nil, lw.errf(e.Pos(), "unsupported expression %T in scalar context", e)
}

// mkBin builds a binary node computing the promoted result type.
func mkBin(op hir.Op, a, b hir.Expr) hir.Expr {
	t := promoteHIR(a.Type(), b.Type())
	if op.IsCompare() || op == hir.OpAnd || op == hir.OpOr {
		t = ast.TLogical
	}
	return &hir.Bin{Op: op, X: a, Y: b, Typ: t}
}

func promoteHIR(a, b ast.BaseType) ast.BaseType {
	if a == ast.TDouble || b == ast.TDouble {
		return ast.TDouble
	}
	if a == ast.TReal || b == ast.TReal {
		return ast.TReal
	}
	if a == ast.TLogical && b == ast.TLogical {
		return ast.TLogical
	}
	return ast.TInteger
}

func (lw *lowerer) scalarCall(x *ast.CallOrIndex, env *idxEnv, pre *[]hir.Stmt) (hir.Expr, error) {
	if x.Resolved == ast.RefArray {
		return lw.scalarArrayRead(x, env, pre)
	}
	info, ok := sem.Intrinsics[x.Name]
	if !ok {
		return nil, lw.errf(x.Pos(), "unknown function %s", x.Name)
	}
	switch info.Class {
	case sem.Reduction, sem.Location, sem.Transformational:
		return lw.lowerReduction(x, env, pre)
	case sem.Inquiry:
		return lw.lowerInquiry(x)
	case sem.Shift:
		return nil, lw.errf(x.Pos(), "%s in scalar context", x.Name)
	}
	// Elemental intrinsic on scalars.
	args := make([]hir.Expr, len(x.Args))
	t := ast.TReal
	for i, a := range x.Args {
		e, err := lw.scalarExpr(a, env, pre)
		if err != nil {
			return nil, err
		}
		args[i] = e
		if i == 0 {
			t = e.Type()
		} else {
			t = promoteHIR(t, e.Type())
		}
	}
	if info.ReturnsInt {
		t = ast.TInteger
	}
	if x.Name == "REAL" || x.Name == "FLOAT" {
		t = ast.TReal
	}
	if x.Name == "DBLE" {
		t = ast.TDouble
	}
	return &hir.Intr{Name: x.Name, Args: args, Typ: t}, nil
}

// lowerInquiry folds SIZE(A[,dim]) to a constant.
func (lw *lowerer) lowerInquiry(x *ast.CallOrIndex) (hir.Expr, error) {
	arr, ok := x.Args[0].(*ast.Ident)
	if !ok {
		return nil, lw.errf(x.Pos(), "SIZE requires a whole-array argument")
	}
	sym := lw.info.Sym(arr.Name)
	if sym == nil || sym.Kind != sem.SymArray {
		return nil, lw.errf(x.Pos(), "SIZE argument %s is not an array", arr.Name)
	}
	if len(x.Args) == 2 {
		d, err := sem.EvalConstInt(x.Args[1], lw.info.Consts)
		if err != nil || d < 1 || d > sym.Rank() {
			return nil, lw.errf(x.Pos(), "SIZE dimension must be a constant in 1..%d", sym.Rank())
		}
		return &hir.Const{Val: sem.IntVal(int64(sym.Bounds[d-1][1] - sym.Bounds[d-1][0] + 1))}, nil
	}
	return &hir.Const{Val: sem.IntVal(int64(sym.Elems()))}, nil
}

// scalarArrayRead lowers an element read A(subs) in replicated context.
func (lw *lowerer) scalarArrayRead(x *ast.CallOrIndex, env *idxEnv, pre *[]hir.Stmt) (hir.Expr, error) {
	sym := lw.info.Sym(x.Name)
	subs := make([]hir.Expr, len(x.Args))
	for i, a := range x.Args {
		if _, isSec := a.(*ast.Section); isSec {
			return nil, lw.errf(x.Pos(), "array section %s in scalar context", x.Name)
		}
		e, err := lw.scalarExpr(a, env, pre)
		if err != nil {
			return nil, err
		}
		subs[i] = e
	}
	if sym.Map == nil || sym.Map.Replicated {
		return &hir.Elem{Array: x.Name, Subs: subs, Typ: sym.Type}, nil
	}
	// Distributed array: inside a sequential loop that does not write the
	// array, hoist one AllGather and read the shadow; otherwise broadcast
	// the single element from its owner.
	if g := lw.gctx; g != nil && !g.written[x.Name] {
		if !g.gathered[x.Name] {
			g.gathered[x.Name] = true
			g.hoisted = append(g.hoisted, &hir.AllGather{Array: x.Name, SrcLine: x.Pos().Line})
		}
		return &hir.Elem{Array: x.Name, Subs: subs, Shadow: true, Typ: sym.Type}, nil
	}
	dst := lw.newRepl("F", sym.Type)
	var cost hir.OpCount
	for _, s := range subs {
		cost.Add(hir.CountExpr(s), 1)
	}
	*pre = append(*pre, &hir.FetchElem{
		Array: x.Name, Subs: subs, Dst: dst, Typ: sym.Type, SrcLine: x.Pos().Line, Cost: cost,
	})
	return &hir.Ref{Name: dst, Kind: hir.Replicated, Typ: sym.Type}, nil
}
