package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Checkpoint configures durable progress for a long sweep: each
// completed point's result is marshaled to a JSON file so a killed run
// (process crash, SIGKILL, exhausted fault budget) restarts from the
// completed points instead of from scratch. Point evaluation in this
// module is deterministic, so a resumed sweep yields byte-identical
// results to an uninterrupted one.
type Checkpoint struct {
	// Path is the checkpoint file. Written atomically (temp file +
	// rename) so a crash mid-write never corrupts an existing file.
	Path string
	// Key identifies the sweep (artifact name, configuration
	// fingerprint). A file whose key or point count mismatches is
	// discarded, never partially reused.
	Key string
	// FlushEvery bounds completions between writes (<= 0 = 1, i.e.
	// flush after every completed point).
	FlushEvery int
	// OnFlush, when set, observes every durable write of the checkpoint
	// file with the number of completed points on file. Long-running
	// callers (the async jobs subsystem) journal these as
	// checkpointed(n) state transitions.
	OnFlush func(done int)
	// Warnf receives checkpoint diagnostics (results skipped because
	// they do not round-trip through JSON). Nil routes them to
	// slog.Default. Skips are logged once per run — the count is on the
	// engine's CheckpointSkips counter.
	Warnf func(format string, args ...any)
}

// warnf routes a checkpoint diagnostic to the configured sink.
func (ck *Checkpoint) warnf(format string, args ...any) {
	if ck.Warnf != nil {
		ck.Warnf(format, args...)
		return
	}
	slog.Default().Warn(fmt.Sprintf(format, args...))
}

// ckptFile is the on-disk format: results are kept as raw JSON so the
// loader never needs to re-marshal values it did not produce.
type ckptFile struct {
	Key  string                     `json:"key"`
	N    int                        `json:"n"`
	Done map[string]json.RawMessage `json:"done"`
}

// ckptState tracks completion during one checkpointed Map run.
type ckptState struct {
	ck      *Checkpoint
	n       int
	stats   *Stats
	mu      sync.Mutex
	done    map[string]json.RawMessage
	pending int // completions since the last flush

	warnOnce sync.Once // one skip diagnostic per run; the counter has the rest
}

// skip records one result excluded from the checkpoint (it does not
// survive a JSON round-trip): counted on the engine stats so resumed
// runs that re-evaluate points are explainable, logged once per run.
func (st *ckptState) skip(i int, cause string, err error) {
	if st.stats != nil {
		st.stats.CheckpointSkips.Add(1)
	}
	st.warnOnce.Do(func() {
		st.ck.warnf("sweep: checkpoint %s: point %d %s (%v); such points will be re-evaluated on resume (counted on sweep_checkpoint_skipped_total)",
			st.ck.Path, i, cause, err)
	})
}

// loadCheckpointInto reads ck.Path and fills results for every point
// whose result is on file, returning the resume state and a skip mask.
// A missing, unreadable, corrupt or mismatched file yields an empty
// state (fresh start) — resuming must never be less robust than
// rerunning. Stored entries that no longer unmarshal are dropped (the
// point is re-evaluated), counted and logged like record-side skips.
func loadCheckpointInto[T any](ck *Checkpoint, n int, stats *Stats, results []T) (*ckptState, []bool) {
	st := &ckptState{ck: ck, n: n, stats: stats, done: make(map[string]json.RawMessage)}
	skip := make([]bool, n)
	raw, err := os.ReadFile(ck.Path)
	if err != nil {
		return st, skip
	}
	var f ckptFile
	if err := json.Unmarshal(raw, &f); err != nil || f.Key != ck.Key || f.N != n {
		return st, skip
	}
	for key, msg := range f.Done {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || i >= n {
			continue
		}
		var v T
		if err := json.Unmarshal(msg, &v); err != nil {
			st.skip(i, "has an unreadable stored result", err)
			continue
		}
		results[i] = v
		st.done[key] = msg
		skip[i] = true
	}
	return st, skip
}

// record stores one completed point and flushes per policy.
func (st *ckptState) record(i int, v any) {
	msg, err := json.Marshal(v)
	if err != nil {
		// The result cannot be checkpointed; the sweep still returns it,
		// but a resumed run will re-evaluate this point.
		st.skip(i, "does not marshal", err)
		return
	}
	every := st.ck.FlushEvery
	if every <= 0 {
		every = 1
	}
	st.mu.Lock()
	st.done[strconv.Itoa(i)] = msg
	st.pending++
	flush := st.pending >= every
	if flush {
		st.pending = 0
	}
	st.mu.Unlock()
	if flush {
		st.flush()
	}
}

// flush writes the checkpoint file atomically (temp + rename) and
// notifies OnFlush with the number of points now durable.
func (st *ckptState) flush() error {
	st.mu.Lock()
	raw, err := json.Marshal(ckptFile{Key: st.ck.Key, N: st.n, Done: st.done})
	count := len(st.done)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	dir := filepath.Dir(st.ck.Path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.ck.Path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if st.ck.OnFlush != nil {
		st.ck.OnFlush(count)
	}
	return nil
}

// MapCheckpoint is MapCheckpointCtx without cancellation.
func MapCheckpoint[T any](e *Engine, n int, ck *Checkpoint, fn func(i int) (T, error)) ([]T, error) {
	return MapCheckpointCtx(context.Background(), e, n, ck, fn)
}

// MapCheckpointCtx is MapCtx with durable progress: points already
// recorded in ck's file are returned without re-evaluating fn, each
// newly completed point is recorded, and the file is flushed on every
// exit path (success, point failure, cancellation). On full success
// the file is removed — a complete sweep needs no resume state. A nil
// ck degrades to plain MapCtx.
//
// T must round-trip through encoding/json for resumed results to be
// identical to freshly computed ones (true for the numeric point types
// this module sweeps: Go prints floats in their shortest form that
// parses back exactly). Results that do not round-trip are skipped from
// the checkpoint — counted on Stats.CheckpointSkips and logged once per
// run — so a resumed sweep re-evaluates them instead of resuming wrong.
func MapCheckpointCtx[T any](ctx context.Context, e *Engine, n int, ck *Checkpoint, fn func(i int) (T, error)) ([]T, error) {
	if ck == nil {
		return MapCtx(ctx, e, n, fn)
	}
	if ck.Path == "" {
		return nil, fmt.Errorf("sweep: checkpoint has no path")
	}
	prefill := make([]T, n)
	st, skip := loadCheckpointInto(ck, n, e.stats, prefill)
	res, err := MapCtx(ctx, e, n, func(i int) (T, error) {
		if skip[i] {
			return prefill[i], nil
		}
		v, ferr := fn(i)
		if ferr == nil {
			st.record(i, v)
		}
		return v, ferr
	})
	if err != nil {
		// Keep resume state for the completed points.
		if ferr := st.flush(); ferr != nil {
			return res, fmt.Errorf("%w (checkpoint flush also failed: %v)", err, ferr)
		}
		return res, err
	}
	os.Remove(ck.Path)
	return res, nil
}
