package core

import (
	"sort"

	"hpfperf/internal/hir"
)

// CriticalVariable describes one critical variable of the application:
// a variable whose value affects the flow of execution (§4.2 — loop
// limits, strides, scalar branch conditions, shift amounts).
type CriticalVariable struct {
	// Name of the scalar variable.
	Name string
	// Lines where it controls execution flow.
	Lines []int
	// Uses counts controlling references.
	Uses int
}

// CriticalVariables identifies the critical variables of a compiled
// program: the abstraction parse walks the node program and collects
// every scalar controlling loop bounds, branch conditions and shift
// amounts. (Whether each can be resolved by definition tracing is decided
// during interpretation; unresolved ones must be supplied through
// Options.Values or Options.TripCounts.)
func CriticalVariables(p *hir.Program) []CriticalVariable {
	byName := make(map[string]*CriticalVariable)
	record := func(e hir.Expr, line int) {
		for _, name := range exprVars(e) {
			if name == "" || name[0] == '$' {
				continue // compiler temporaries are internal
			}
			cv := byName[name]
			if cv == nil {
				cv = &CriticalVariable{Name: name}
				byName[name] = cv
			}
			cv.Uses++
			if len(cv.Lines) == 0 || cv.Lines[len(cv.Lines)-1] != line {
				cv.Lines = append(cv.Lines, line)
			}
		}
	}
	var walk func(ss []hir.Stmt)
	walk = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Loop:
				record(x.Lo, x.SrcLine)
				record(x.Hi, x.SrcLine)
				record(x.Step, x.SrcLine)
				walk(x.Body)
			case *hir.While:
				record(x.Cond, x.SrcLine)
				walk(x.Body)
			case *hir.If:
				// Only replicated scalar conditions are critical; masked
				// element conditionals are data parallel, not control flow.
				if !exprIsElemental(x.Cond) {
					record(x.Cond, x.SrcLine)
				}
				walk(x.Then)
				walk(x.Else)
			case *hir.CShift:
				record(x.Shift, x.SrcLine)
			case *hir.EOShift:
				record(x.Shift, x.SrcLine)
			}
		}
	}
	walk(p.Body)
	out := make([]CriticalVariable, 0, len(byName))
	for _, cv := range byName {
		out = append(out, *cv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
