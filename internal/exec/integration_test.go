package exec

import (
	"math"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/ipsc"
)

// Integration tests: whole-feature paths through parser → sem → compiler
// → VM, checked against closed-form results.

func TestAlignmentOffsetEndToEnd(t *testing.T) {
	// A(I) aligned with T(I+1): ownership shifts by one template cell,
	// but element values must be unaffected.
	src := `PROGRAM off
PARAMETER (N = 16)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(0:N)
!HPF$ ALIGN A(I) WITH T(I-1)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) A(K) = REAL(K)
FORALL (K=1:N) B(K) = A(K) * 2.0
S = SUM(B)
PRINT *, S
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), 2*16*17/2, 1e-9)
}

func TestAlignmentChainEndToEnd(t *testing.T) {
	src := `PROGRAM chain
PARAMETER (N = 32)
REAL A(N), B(N), C(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH A(I)
!HPF$ ALIGN C(I) WITH B(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) A(K) = 1.0
FORALL (K=1:N) B(K) = A(K) + 1.0
FORALL (K=1:N) C(K) = B(K) + 1.0
S = SUM(C)
PRINT *, S
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), 3*32, 1e-9)
	if res.Stats.Collectives > 1 {
		// Only the final SUM should communicate: the chain is aligned.
		t.Errorf("aligned chain performed %d collectives", res.Stats.Collectives)
	}
}

func TestDoublePrecisionEndToEnd(t *testing.T) {
	src := `PROGRAM dp
PARAMETER (N = 64)
DOUBLE PRECISION X(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE X(BLOCK) ONTO P
FORALL (K=1:N) X(K) = 1.0 / REAL(K)
S = SUM(X)
PRINT *, S
END`
	res := run(t, src, 4)
	want := 0.0
	for k := 1; k <= 64; k++ {
		want += 1.0 / float64(k)
	}
	wantNear(t, lastPrinted(t, res), want, 1e-6)
}

func TestEoshiftNegative(t *testing.T) {
	src := sumHdr + `FORALL (K=1:N) A(K) = REAL(K)
B = EOSHIFT(A, -1, 0.0)
X = B(1)
Y = B(2)
PRINT *, X
PRINT *, Y
END`
	res := run(t, src, 4)
	// EOSHIFT(A,-1): B(i) = A(i-1), B(1) = boundary.
	if res.Printed[0] != "0" || res.Printed[1] != "1" {
		t.Errorf("eoshift -1 = %v", res.Printed)
	}
}

func TestCshiftByTwo(t *testing.T) {
	src := sumHdr + `FORALL (K=1:N) A(K) = REAL(K)
B = CSHIFT(A, 2)
X = B(63)
PRINT *, X
END`
	res := run(t, src, 4)
	// B(63) = A(65 mod 64) = A(1) = 1.
	wantNear(t, lastPrinted(t, res), 1, 0)
}

func TestNegativeStepDo(t *testing.T) {
	src := `PROGRAM neg
!HPF$ PROCESSORS P(1)
S = 0.0
DO I = 10, 1, -2
  S = S + REAL(I)
END DO
PRINT *, S
END`
	res := run(t, src, 1)
	wantNear(t, lastPrinted(t, res), 10+8+6+4+2, 1e-9)
}

func TestIntegerArrayMod(t *testing.T) {
	src := `PROGRAM im
PARAMETER (N = 24)
INTEGER IV(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE IV(BLOCK) ONTO P
FORALL (K=1:N) IV(K) = MOD(K, 5)
M = MAXVAL(IV)
PRINT *, M
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), 4, 0)
}

func TestMinvalAndMinloc(t *testing.T) {
	src := sumHdr + `FORALL (K=1:N) A(K) = ABS(REAL(K) - 40.0) + 3.0
X = MINVAL(A)
K = MINLOC(A)
PRINT *, X
PRINT *, K
END`
	res := run(t, src, 4)
	if res.Printed[0] != "3" || res.Printed[1] != "40" {
		t.Errorf("minval/minloc = %v", res.Printed)
	}
}

func TestCountIntrinsic(t *testing.T) {
	src := sumHdr + `FORALL (K=1:N) A(K) = REAL(K) - 10.5
NC = COUNT(A .GT. 0.0)
PRINT *, NC
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), 54, 0) // K=11..64
}

func TestNestedWhereAndForall(t *testing.T) {
	src := `PROGRAM nw
PARAMETER (N = 32)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N) A(K) = REAL(K) - 16.0
DO IPASS = 1, 2
  WHERE (A .GT. 0.0)
    B = A
  ELSEWHERE
    B = -A
  END WHERE
  FORALL (K=1:N) A(K) = B(K) - 1.0
END DO
S = SUM(B)
PRINT *, S
END`
	res := run(t, src, 4)
	// Verify against a direct Go reimplementation.
	a := make([]float64, 33)
	b := make([]float64, 33)
	for k := 1; k <= 32; k++ {
		a[k] = float64(k) - 16
	}
	for pass := 0; pass < 2; pass++ {
		for k := 1; k <= 32; k++ {
			if a[k] > 0 {
				b[k] = a[k]
			} else {
				b[k] = -a[k]
			}
		}
		for k := 1; k <= 32; k++ {
			a[k] = b[k] - 1
		}
	}
	want := 0.0
	for k := 1; k <= 32; k++ {
		want += b[k]
	}
	wantNear(t, lastPrinted(t, res), want, 1e-9)
}

func TestTrapezoidMatchesClosedForm(t *testing.T) {
	// PBS 1 shape: integral of exp(-x^2) over [0,2] by trapezoid.
	src := `PROGRAM trap
PARAMETER (N = 512)
REAL F(N)
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
A = 0.0
B = 2.0
H = (B - A)/REAL(N-1)
FORALL (K=1:N) F(K) = EXP(-(A + REAL(K-1)*H)**2)
T1 = SUM(F)
E1 = F(1)
E2 = F(N)
TRAP = H*(T1 - 0.5*E1 - 0.5*E2)
PRINT *, TRAP
END`
	res := run(t, src, 8)
	// Reference trapezoid in Go.
	n := 512
	h := 2.0 / float64(n-1)
	sum := 0.0
	for k := 1; k <= n; k++ {
		x := float64(k-1) * h
		sum += math.Exp(-x * x)
	}
	want := h * (sum - 0.5*math.Exp(0) - 0.5*math.Exp(-4))
	wantNear(t, lastPrinted(t, res), want, 1e-4)
}

func TestTwoDimCollapsedSecondDim(t *testing.T) {
	// PBS 3 shape: (BLOCK,*) alignment of a 2-D array to a 1-D template.
	src := `PROGRAM p3
PARAMETER (N = 16, M = 4)
REAL A2(N,M), PRD(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN PRD(I) WITH T(I)
!HPF$ ALIGN A2(I,J) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (I=1:N, J=1:M) A2(I,J) = 2.0
FORALL (I=1:N) PRD(I) = 1.0
DO J = 1, M
  FORALL (I=1:N) PRD(I) = PRD(I)*A2(I,J)
END DO
S = SUM(PRD)
PRINT *, S
END`
	res := run(t, src, 4)
	wantNear(t, lastPrinted(t, res), 16*16, 1e-9) // 2^4 per row × 16 rows
}

func TestMaxStepsGuard(t *testing.T) {
	src := `PROGRAM inf
!HPF$ PROCESSORS P(1)
S = 0.0
DO I = 1, 100000
  S = S + 1.0
END DO
PRINT *, S
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ipsc.DefaultConfig(1)
	m, _ := ipsc.New(cfg)
	if _, err := Run(prog, m, Options{MaxSteps: 1000}); err == nil {
		t.Error("want MaxSteps error")
	}
}

func TestExplicitBlockSizeEndToEnd(t *testing.T) {
	// BLOCK(10) over 4 processors for 32 elements: shares 10,10,10,2.
	src := `PROGRAM eb
PARAMETER (N = 32)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK(10)) ONTO P
FORALL (K=1:N) A(K) = REAL(K)
FORALL (K=2:N-1) B(K) = A(K-1) + A(K+1)
S = SUM(B)
PRINT *, S
END`
	res := run(t, src, 4)
	want := 0.0
	for k := 2; k <= 31; k++ {
		want += float64(k-1) + float64(k+1)
	}
	wantNear(t, lastPrinted(t, res), want, 1e-9)
}

func TestExplicitBlockTooSmallRejected(t *testing.T) {
	src := `PROGRAM eb
PARAMETER (N = 32)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK(2)) ONTO P
A(1) = 0.0
END`
	if _, err := compiler.Compile(src); err == nil {
		t.Error("BLOCK(2)×4 cannot hold 32 elements; want error")
	}
}

// TestBlockCyclicExecutes replaces the historical rejection test:
// CYCLIC(k) entered the accepted subset with the corpus generator, so a
// block-cyclic program must compile and execute end-to-end, and its
// reduction must see exactly the same global values as a BLOCK run.
func TestBlockCyclicExecutes(t *testing.T) {
	render := func(distSpec string) string {
		return `PROGRAM bc
PARAMETER (N = 32)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(` + distSpec + `) ONTO P
FORALL (K=1:N) A(K) = REAL(K)
S = SUM(A)
PRINT *, S
END`
	}
	printed := func(distSpec string) string {
		prog, err := compiler.Compile(render(distSpec))
		if err != nil {
			t.Fatalf("%s: compile: %v", distSpec, err)
		}
		cfg := ipsc.DefaultConfig(4)
		cfg.PerturbAmp = 0
		cfg.TimerResUS = 0
		m, err := ipsc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(prog, m, Options{})
		if err != nil {
			t.Fatalf("%s: run: %v", distSpec, err)
		}
		if len(res.Printed) != 1 {
			t.Fatalf("%s: printed %v", distSpec, res.Printed)
		}
		return res.Printed[0]
	}
	want := printed("BLOCK")
	for _, spec := range []string{"CYCLIC", "CYCLIC(2)", "CYCLIC(5)"} {
		if got := printed(spec); got != want {
			t.Errorf("%s printed %q, BLOCK printed %q", spec, got, want)
		}
	}
}
