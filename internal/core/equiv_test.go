package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/sem"
	"hpfperf/internal/suite"
)

// The differential equivalence suite: the closure-compiled prediction
// core must produce exactly — bit for bit — the report the reference
// tree-walking interpreter produces, across every program we can get our
// hands on (testdata, the paper's validation suite, the fuzz corpora,
// randomized control-flow programs) and across repeated memoized
// evaluations. InterpretTree is the flagged reference implementation;
// Interpret takes the compiled path.

// diffOne asserts tree-walking and compiled interpretation of src agree
// exactly — same report or same error — and reports whether the pair
// actually ran. Sources that do not compile are skipped (fuzz corpora
// contain plenty).
func diffOne(t *testing.T, name, src string, opts Options) bool {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		return false
	}
	itTree, err := New(prog, nil, opts)
	if err != nil {
		return false
	}
	treeRep, treeErr := itTree.InterpretTree()

	itComp, err := New(prog, nil, opts)
	if err != nil {
		t.Fatalf("%s: second New failed where first succeeded: %v", name, err)
	}
	compRep, compErr := itComp.Interpret()

	if (treeErr == nil) != (compErr == nil) {
		t.Fatalf("%s: error divergence: tree=%v compiled=%v", name, treeErr, compErr)
	}
	if treeErr != nil {
		if treeErr.Error() != compErr.Error() {
			t.Fatalf("%s: error text divergence:\n tree:     %v\n compiled: %v", name, treeErr, compErr)
		}
		return true
	}
	if d := DiffReports(treeRep, compRep); d != "" {
		t.Fatalf("%s: report divergence: %s", name, d)
	}
	return true
}

// equivOptionVariants are the interpretation configurations every
// program is differentially tested under.
func equivOptionVariants() map[string]Options {
	trips := make(map[int]int)
	for l := 1; l <= 400; l++ {
		trips[l] = 7
	}
	ablation := Options{
		MemoryModel:     false,
		LoadModel:       Average,
		MaskDensity:     0.3,
		BranchProb:      0.7,
		TripCounts:      trips,
		SimpleCommModel: true,
	}
	pinned := DefaultOptions()
	pinned.Values = map[string]sem.Value{
		"N": sem.IntVal(12), "M": sem.IntVal(5), "ITERS": sem.IntVal(4), "NITER": sem.IntVal(3),
	}
	pinned.TripCounts = map[int]int{}
	for l := 1; l <= 400; l++ {
		pinned.TripCounts[l] = 3
	}
	return map[string]Options{
		"default":  DefaultOptions(),
		"ablation": ablation,
		"pinned":   pinned,
	}
}

func TestEquivTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	variants := equivOptionVariants()
	ran := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for vn, opts := range variants {
			if diffOne(t, filepath.Base(f)+"/"+vn, string(b), opts) {
				ran++
			}
		}
	}
	if ran < len(files) {
		t.Errorf("only %d of %d testdata programs x variants ran", ran, len(files)*len(variants))
	}
}

func TestEquivSuitePrograms(t *testing.T) {
	variants := equivOptionVariants()
	for _, p := range suite.All() {
		sizes := []int{p.Sizes[0], p.Sizes[len(p.Sizes)-1]}
		procs := []int{p.Procs[0], p.Procs[len(p.Procs)-1]}
		for _, n := range sizes {
			for _, np := range procs {
				src := p.Source(n, np)
				for vn, opts := range variants {
					diffOne(t, fmt.Sprintf("%s/n%d/p%d/%s", p.Name, n, np, vn), src, opts)
				}
			}
		}
	}
}

// TestEquivFuzzCorpus replays the committed compiler fuzz corpus (go
// fuzz v1 format) through both engines.
func TestEquivFuzzCorpus(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("..", "compiler", "testdata", "fuzz", "FuzzCompile", "*"))
	if len(files) == 0 {
		t.Skip("no compiler fuzz corpus present")
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				continue
			}
			diffOne(t, filepath.Base(f), src, DefaultOptions())
		}
	}
}

// randomControlProgram generates a random program with loops (resolved,
// pinned and runtime-bounded), scalar and elemental conditionals,
// distributed FORALLs and reductions — the control-flow shapes whose
// interpretation paths the straight-line cross-validation generator
// never exercises.
func randomControlProgram(rng *rand.Rand, trial int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM chaos%d\n", trial)
	fmt.Fprintf(&b, "REAL A(%d), B(%d)\n", 32+16*rng.Intn(4), 64)
	b.WriteString("!HPF$ PROCESSORS P(4)\n!HPF$ DISTRIBUTE A(BLOCK) ONTO P\n")
	if rng.Intn(2) == 0 {
		b.WriteString("!HPF$ DISTRIBUTE B(CYCLIC) ONTO P\n")
	}
	// A mix of resolvable and runtime-valued scalars.
	fmt.Fprintf(&b, "N = %d\n", 2+rng.Intn(9))
	b.WriteString("S = SUM(A)\n")
	if rng.Intn(2) == 0 {
		b.WriteString("M = N * 2\n")
	} else {
		b.WriteString("M = S\n") // runtime-dependent: unresolvable
	}
	nest := 1 + rng.Intn(2)
	for d := 0; d < nest; d++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "DO I%d = 1, %d\n", d, 2+rng.Intn(6))
		case 1:
			fmt.Fprintf(&b, "DO I%d = 1, N\n", d)
		default:
			fmt.Fprintf(&b, "DO I%d = 1, M\n", d) // may need TripCounts
		}
	}
	b.WriteString("X = X + 1.5\n")
	if rng.Intn(2) == 0 {
		b.WriteString("IF (S .GT. 1.0) THEN\nY = 1.0\nELSE\nY = 2.0\nN = 4\nENDIF\n")
	}
	if rng.Intn(2) == 0 {
		b.WriteString("FORALL (K=2:31) A(K) = A(K-1) * 0.5\n")
	}
	for d := nest - 1; d >= 0; d-- {
		b.WriteString("ENDDO\n")
	}
	if rng.Intn(2) == 0 {
		b.WriteString("IF (N .GT. 3) THEN\nZ = N * 1.0\nENDIF\n")
	}
	b.WriteString("R = SUM(A)\nPRINT *, R\nEND\n")
	return b.String()
}

// TestEquivRandomPrograms is the chaos leg of the differential suite:
// seeded random control-flow programs under every option variant.
func TestEquivRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	variants := equivOptionVariants()
	rng := rand.New(rand.NewSource(1994))
	ran := 0
	for trial := 0; trial < trials; trial++ {
		src := randomControlProgram(rng, trial)
		for vn, opts := range variants {
			if diffOne(t, fmt.Sprintf("chaos%d/%s", trial, vn), src, opts) {
				ran++
			}
		}
	}
	if ran < trials {
		t.Errorf("only %d of %d chaos program x variant pairs ran — generator emits uncompilable sources", ran, trials*len(variants))
	}
	// The straight-line cross-validation generator, too.
	for trial := 0; trial < trials; trial++ {
		src, _ := randomScalarProgram(rng, 1000+trial)
		diffOne(t, fmt.Sprintf("scalar%d", trial), src, DefaultOptions())
	}
}

// incrementalSrc has two independent sweeps over distinct critical
// variables, so changing one leaves the other's subtree memo-reusable.
const incrementalSrc = `PROGRAM inc
REAL A(256)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
DO I = 1, N
FORALL (K=1:256) A(K) = A(K) * 1.5
ENDDO
DO J = 1, M
X = X + 2.0
ENDDO
S = SUM(A)
PRINT *, S
END`

// TestEquivIncrementalMemo drives the memoized EvaluateWith path across
// a sweep of critical-variable points — including repeats, which replay
// recorded subtree op logs — and checks every point against a fresh
// tree-walking run.
func TestEquivIncrementalMemo(t *testing.T) {
	prog, err := compiler.Compile(incrementalSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompilePrediction(context.Background(), prog, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	points := [][2]int64{{5, 5}, {5, 6}, {9, 6}, {5, 5}, {9, 6}, {2, 11}, {5, 6}}
	for i, pt := range points {
		values := map[string]sem.Value{"N": sem.IntVal(pt[0]), "M": sem.IntVal(pt[1])}
		got, err := c.EvaluateWith(context.Background(), values, nil)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		opts := DefaultOptions()
		opts.Values = values
		itTree, err := New(prog, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := itTree.InterpretTree()
		if err != nil {
			t.Fatalf("point %d tree: %v", i, err)
		}
		if d := DiffReports(want, got); d != "" {
			t.Fatalf("point %d (N=%d M=%d): %s", i, pt[0], pt[1], d)
		}
	}
	c.mu.Lock()
	entries := len(c.memo)
	c.mu.Unlock()
	if entries == 0 {
		t.Fatal("memo never populated — EvaluateWith is not memoizing")
	}
	// 7 points x 7 top-level subtrees would be 49 distinct evaluations
	// without sharing; unchanged subtrees must be reused across points.
	if entries >= len(points)*len(c.tops) {
		t.Errorf("memo holds %d entries for %d points x %d subtrees — no incremental reuse",
			entries, len(points), len(c.tops))
	}
}

// TestEquivConcurrentEvaluate exercises concurrent memoized evaluations
// of one Compiled (the sweep engine's sharing pattern) under -race.
func TestEquivConcurrentEvaluate(t *testing.T) {
	prog, err := compiler.Compile(incrementalSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompilePrediction(context.Background(), prog, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int]float64)
	for n := 1; n <= 4; n++ {
		values := map[string]sem.Value{"N": sem.IntVal(int64(n)), "M": sem.IntVal(3)}
		rep, err := c.EvaluateWith(context.Background(), values, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref[n] = rep.TotalUS()
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			n := g%4 + 1
			values := map[string]sem.Value{"N": sem.IntVal(int64(n)), "M": sem.IntVal(3)}
			rep, err := c.EvaluateWith(context.Background(), values, nil)
			if err == nil && rep.TotalUS() != ref[n] {
				err = fmt.Errorf("goroutine %d: total %v != %v", g, rep.TotalUS(), ref[n])
			}
			done <- err
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
