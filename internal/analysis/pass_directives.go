package analysis

import (
	"fmt"
	"sort"
	"strings"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/sem"
)

// directivePass checks HPF mapping-directive hygiene: declared
// arrangements and templates that map nothing, ALIGNs whose target never
// acquires a distribution (leaving the array replicated despite the
// directive), and BLOCK distributions whose extents split unevenly over
// the processor grid (load imbalance the predicted profile will show as
// idle time).
//
// Codes: HPF0301 unreferenced TEMPLATE, HPF0302 ALIGN to an
// undistributed template, HPF0303 unused PROCESSORS, HPF0304 ALIGN left
// the array replicated, HPF0305 uneven BLOCK distribution.
type directivePass struct{}

func (directivePass) Name() string { return "directive-hygiene" }

func (directivePass) Run(u *Unit) []Diagnostic {
	info := u.Prog.Info
	var out []Diagnostic

	alignsTo := make(map[string][]*ast.AlignDir)   // template -> ALIGNs targeting it
	distLine := make(map[string]int)               // target -> DISTRIBUTE line
	var procs []*ast.ProcessorsDir                 // declared arrangements
	var templates []*ast.TemplateDir               // declared templates
	var aligns []*ast.AlignDir                     // all ALIGNs
	usedProcs := make(map[string]bool)             // arrangements named in ONTO
	distributed := make(map[string]bool)           // targets of DISTRIBUTE
	anonymousDistribute := false                   // DISTRIBUTE without ONTO
	for _, d := range info.Prog.Directives {
		switch x := d.(type) {
		case *ast.ProcessorsDir:
			procs = append(procs, x)
		case *ast.TemplateDir:
			templates = append(templates, x)
		case *ast.AlignDir:
			aligns = append(aligns, x)
			alignsTo[x.Target] = append(alignsTo[x.Target], x)
		case *ast.DistributeDir:
			distributed[x.Target] = true
			distLine[x.Target] = x.DPos.Line
			if x.Onto != "" {
				usedProcs[x.Onto] = true
			} else {
				anonymousDistribute = true
			}
		}
	}

	for _, td := range templates {
		if len(alignsTo[td.Name]) == 0 && !distributed[td.Name] {
			out = append(out, Diagnostic{
				Code:     "HPF0301",
				Severity: SevWarning,
				Line:     td.DPos.Line,
				Message:  fmt.Sprintf("TEMPLATE %s is never aligned to or distributed: the directive has no effect", td.Name),
				Hint:     "remove the directive, or ALIGN arrays with it and DISTRIBUTE it",
			})
			continue
		}
		if dims, ok := info.Templates[td.Name]; ok && len(alignsTo[td.Name]) > 0 {
			allCollapsed := true
			for _, dd := range dims {
				if dd.Kind != dist.Collapsed && dd.NProc > 1 {
					allCollapsed = false
					break
				}
			}
			if allCollapsed {
				out = append(out, Diagnostic{
					Code:     "HPF0302",
					Severity: SevWarning,
					Line:     td.DPos.Line,
					Message:  fmt.Sprintf("TEMPLATE %s is an ALIGN target but no dimension is distributed over processors: aligned arrays stay replicated", td.Name),
					Hint:     fmt.Sprintf("add !HPF$ DISTRIBUTE %s(BLOCK) ONTO a processor arrangement", td.Name),
				})
			}
		}
	}

	for _, pd := range procs {
		if !usedProcs[pd.Name] && !anonymousDistribute {
			out = append(out, Diagnostic{
				Code:     "HPF0303",
				Severity: SevWarning,
				Line:     pd.DPos.Line,
				Message:  fmt.Sprintf("PROCESSORS %s is never used by a DISTRIBUTE ... ONTO: the arrangement maps nothing", pd.Name),
				Hint:     "remove the directive or distribute a template/array onto it",
			})
		}
	}

	for _, ad := range aligns {
		sym := info.Sym(ad.Array)
		if sym == nil || sym.Map == nil {
			continue
		}
		if sym.Map.Replicated {
			out = append(out, Diagnostic{
				Code:     "HPF0304",
				Severity: SevWarning,
				Line:     ad.DPos.Line,
				Message:  fmt.Sprintf("ALIGN left %s fully replicated: its align target %s has no distributed dimension", ad.Array, ad.Target),
				Hint:     fmt.Sprintf("DISTRIBUTE %s so the alignment partitions %s", ad.Target, ad.Array),
			})
		}
	}

	// Uneven BLOCK splits: report once per mapped array, at the line of
	// the directive that governs its mapping.
	for _, name := range sortedSymbols(info) {
		sym := info.Sym(name)
		if sym == nil || sym.Map == nil || sym.Map.Replicated || isCompilerTemp(name) {
			continue
		}
		for di, dd := range sym.Map.Dims {
			if dd.Kind != dist.Block || dd.NProc <= 1 {
				continue
			}
			if dd.Extent()%dd.NProc == 0 {
				continue
			}
			line := distLine[name]
			if line == 0 {
				for _, ad := range aligns {
					if ad.Array == name {
						line = ad.DPos.Line
						break
					}
				}
			}
			out = append(out, Diagnostic{
				Code:     "HPF0305",
				Severity: SevInfo,
				Line:     line,
				Message: fmt.Sprintf("BLOCK distribution of %s dimension %d is uneven: %d elements over %d processors (last block holds %d)",
					name, di+1, dd.Extent(), dd.NProc, dd.Extent()-(dd.NProc-1)*dd.BlockSize()),
			})
		}
	}
	return out
}

// sortedSymbols returns the user-declared array names in deterministic
// order.
func sortedSymbols(info *sem.Info) []string {
	var names []string
	for n, s := range info.Symbols {
		if s.Kind == sem.SymArray {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// isCompilerTemp reports a compiler-introduced name ($A1, $I2, ...).
func isCompilerTemp(name string) bool { return strings.HasPrefix(name, "$") }
