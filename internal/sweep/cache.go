package sweep

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/exec"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/obs"
	"hpfperf/internal/sysmodel"
)

// DefaultCacheEntries bounds each of the cache's two maps (compiled
// programs and interpretation reports) when no explicit capacity is
// given. The bound keeps a long-running process (hpfserve) from growing
// without limit while still holding every artifact of a full experiment
// reproduction.
const DefaultCacheEntries = 4096

// Cache memoizes the results of the compilation pipeline (and of whole
// interpretation runs) across sweep points. It is safe for concurrent
// use; a key being built by one worker blocks other workers asking for
// the same key (single-flight), so each distinct (source, options) pair
// is compiled exactly once no matter how many workers race for it.
// Waiters park on the builder's completion channel and honor their own
// context, so a cancelled request stops waiting without disturbing the
// build.
//
// Four artifact kinds are cached, one bounded map each: compiled
// programs (*hir.Program), closure-compiled prediction forms
// (*core.Compiled, keyed by the static interpretation options only, so
// one form serves every Values/TripCounts combination through its
// incremental EvaluateWith path), whole interpretation reports
// (*core.Report), and simulated-execution results (*exec.Result — the
// simulator is deterministic for a fixed MeasureSpec, which is what
// makes measurement memoizable at all).
//
// The cache is a bounded LRU: each map holds at most cap entries and
// evicts the least recently used entry beyond that, counting evictions.
// Evicted entries remain valid for goroutines already holding them;
// only the memoization is lost.
//
// Cached values are shared between callers: all four kinds are treated
// as immutable after construction everywhere in this module (the
// simulator, the evaluators and the report renderers only read them),
// which is what makes the memoization sound.
type Cache struct {
	mu         sync.Mutex
	cap        int
	compiles   map[string]*compileEntry
	compileLRU *list.List // of string keys; front = most recent
	predicts   map[string]*predictEntry
	predictLRU *list.List
	reports    map[string]*reportEntry
	reportLRU  *list.List
	measures   map[string]*measureEntry
	measureLRU *list.List

	compileEvictions atomic.Int64
	predictEvictions atomic.Int64
	reportEvictions  atomic.Int64
	measureEvictions atomic.Int64
}

// NewCache returns an empty cache bounded at DefaultCacheEntries
// entries per map.
func NewCache() *Cache { return NewCacheSize(DefaultCacheEntries) }

// NewCacheSize returns an empty cache holding at most n compiled
// programs and n interpretation reports (n <= 0 selects the default).
func NewCacheSize(n int) *Cache {
	if n <= 0 {
		n = DefaultCacheEntries
	}
	return &Cache{
		cap:        n,
		compiles:   make(map[string]*compileEntry),
		compileLRU: list.New(),
		predicts:   make(map[string]*predictEntry),
		predictLRU: list.New(),
		reports:    make(map[string]*reportEntry),
		reportLRU:  list.New(),
		measures:   make(map[string]*measureEntry),
		measureLRU: list.New(),
	}
}

type compileEntry struct {
	done chan struct{} // closed when prog/err are final
	elem *list.Element // LRU position; nil once evicted
	prog *hir.Program
	err  error
}

type predictEntry struct {
	done chan struct{}
	elem *list.Element
	cp   *core.Compiled
	err  error
}

type reportEntry struct {
	done chan struct{}
	elem *list.Element
	rep  *core.Report
	err  error
}

type measureEntry struct {
	done chan struct{}
	elem *list.Element
	res  *exec.Result
	err  error
}

// CacheStats is a point-in-time view of the cache occupancy and its
// eviction counters (served by hpfserve's /metrics).
type CacheStats struct {
	Cap              int
	CompileEntries   int
	PredictEntries   int
	ReportEntries    int
	MeasureEntries   int
	CompileEvictions int64
	PredictEvictions int64
	ReportEvictions  int64
	MeasureEvictions int64
}

// Stats returns the cache occupancy and eviction counters.
func (c *Cache) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Cap:              c.cap,
		CompileEntries:   len(c.compiles),
		PredictEntries:   len(c.predicts),
		ReportEntries:    len(c.reports),
		MeasureEntries:   len(c.measures),
		CompileEvictions: c.compileEvictions.Load(),
		PredictEvictions: c.predictEvictions.Load(),
		ReportEvictions:  c.reportEvictions.Load(),
		MeasureEvictions: c.measureEvictions.Load(),
	}
}

// srcHash fingerprints source text. Sources are generated per (size,
// procs) point and can be tens of kilobytes; hashing keeps the key map
// small and comparison O(1).
func srcHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:16])
}

// compileKey is srcHash + the compile options that affect the produced
// program.
func compileKey(src string, opts compiler.Options) string {
	return fmt.Sprintf("%s|commopt=%t|reorder=%t", srcHash(src), !opts.NoCommOpt, !opts.NoLoopReorder)
}

// predictFingerprint renders the *static* interpretation options — the
// ones core.CompilePrediction binds into the compiled form. Values and
// TripCounts are deliberately excluded: they are per-evaluation inputs
// of Compiled.EvaluateWith, so one cached form serves every combination
// of them. An injected CommLibrary has no stable identity across
// mutations, so such runs are never cached.
func predictFingerprint(opts core.Options) (string, bool) {
	if opts.CommLibrary != nil {
		return "", false
	}
	return fmt.Sprintf("mem=%t|load=%d|mask=%g|branch=%g|simple=%t",
		opts.MemoryModel, opts.LoadModel, opts.MaskDensity, opts.BranchProb, opts.SimpleCommModel), true
}

// interpFingerprint renders core.Options deterministically, or reports
// that the options cannot be fingerprinted. It extends the static
// predict fingerprint with the dynamic inputs (trip counts, pinned
// values), since a whole report is specific to both.
func interpFingerprint(opts core.Options) (string, bool) {
	static, ok := predictFingerprint(opts)
	if !ok {
		return "", false
	}
	var b strings.Builder
	b.WriteString(static)
	if len(opts.TripCounts) > 0 {
		lines := make([]int, 0, len(opts.TripCounts))
		for l := range opts.TripCounts {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			fmt.Fprintf(&b, "|trip%d=%d", l, opts.TripCounts[l])
		}
	}
	if len(opts.Values) > 0 {
		names := make([]string, 0, len(opts.Values))
		for n := range opts.Values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := opts.Values[n]
			fmt.Fprintf(&b, "|val%s=%d:%d:%g:%t", n, v.Type, v.I, v.R, v.B)
		}
	}
	return b.String(), true
}

// touch moves an LRU element to the front (caller holds c.mu).
func touch(lru *list.List, elem *list.Element) {
	if elem != nil {
		lru.MoveToFront(elem)
	}
}

// evictCompiles trims the compile map to cap (caller holds c.mu).
func (c *Cache) evictCompiles() {
	for len(c.compiles) > c.cap {
		back := c.compileLRU.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		if e, ok := c.compiles[key]; ok {
			e.elem = nil
			delete(c.compiles, key)
		}
		c.compileLRU.Remove(back)
		c.compileEvictions.Add(1)
	}
}

// evictPredicts trims the compiled-prediction map to cap (caller holds
// c.mu).
func (c *Cache) evictPredicts() {
	for len(c.predicts) > c.cap {
		back := c.predictLRU.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		if e, ok := c.predicts[key]; ok {
			e.elem = nil
			delete(c.predicts, key)
		}
		c.predictLRU.Remove(back)
		c.predictEvictions.Add(1)
	}
}

// evictMeasures trims the measurement map to cap (caller holds c.mu).
func (c *Cache) evictMeasures() {
	for len(c.measures) > c.cap {
		back := c.measureLRU.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		if e, ok := c.measures[key]; ok {
			e.elem = nil
			delete(c.measures, key)
		}
		c.measureLRU.Remove(back)
		c.measureEvictions.Add(1)
	}
}

// evictReports trims the report map to cap (caller holds c.mu).
func (c *Cache) evictReports() {
	for len(c.reports) > c.cap {
		back := c.reportLRU.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		if e, ok := c.reports[key]; ok {
			e.elem = nil
			delete(c.reports, key)
		}
		c.reportLRU.Remove(back)
		c.reportEvictions.Add(1)
	}
}

// dropReport removes a report entry if it still maps to e (used to
// un-cache results poisoned by the builder's context).
func (c *Cache) dropReport(key string, e *reportEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.reports[key]; ok && cur == e {
		delete(c.reports, key)
		if e.elem != nil {
			c.reportLRU.Remove(e.elem)
			e.elem = nil
		}
	}
}

// dropPredict removes a compiled-prediction entry if it still maps to e.
func (c *Cache) dropPredict(key string, e *predictEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.predicts[key]; ok && cur == e {
		delete(c.predicts, key)
		if e.elem != nil {
			c.predictLRU.Remove(e.elem)
			e.elem = nil
		}
	}
}

// dropMeasure removes a measurement entry if it still maps to e.
func (c *Cache) dropMeasure(key string, e *measureEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.measures[key]; ok && cur == e {
		delete(c.measures, key)
		if e.elem != nil {
			c.measureLRU.Remove(e.elem)
			e.elem = nil
		}
	}
}

// dropCompile removes a compile entry if it still maps to e (used to
// un-cache panicked or fault-injected builds).
func (c *Cache) dropCompile(key string, e *compileEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.compiles[key]; ok && cur == e {
		delete(c.compiles, key)
		if e.elem != nil {
			c.compileLRU.Remove(e.elem)
			e.elem = nil
		}
	}
}

// poisoned reports whether a build error must not be memoized:
// cancellations are the requester's failure, and transient failures
// (recovered panics, injected faults) may succeed on rebuild. Only
// deterministic pipeline errors stay cached.
func poisoned(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || IsTransient(err)
}

// recoverToErr converts a panic in the front end or the interpretation
// engine into a typed *PanicError, so one malformed request cannot take
// down a long-running process sharing this cache (hpfserve classifies
// it with errors.As and maps it to HTTP 500). The single-flight
// completion channel must be closed even when the builder panics, or
// waiters would park forever.
func recoverToErr(stage string, err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Stage: stage, Value: r}
	}
}

// Compile returns the compiled program for (src, opts), running the
// scanner→parser→sem→compiler pipeline at most once per live key.
// Counter updates go to stats (may be nil). A waiter whose ctx ends
// before the build completes returns the ctx error; the build itself
// always runs to completion and stays cached.
func (c *Cache) Compile(ctx context.Context, src string, opts compiler.Options, stats *Stats) (*hir.Program, error) {
	key := compileKey(src, opts)
	c.mu.Lock()
	if e, ok := c.compiles[key]; ok {
		touch(c.compileLRU, e.elem)
		c.mu.Unlock()
		if stats != nil {
			stats.CompileHits.Add(1)
		}
		cacheSpan(ctx, "compile", key, "hit")
		select {
		case <-e.done:
			return e.prog, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &compileEntry{done: make(chan struct{})}
	e.elem = c.compileLRU.PushFront(key)
	c.compiles[key] = e
	c.evictCompiles()
	c.mu.Unlock()

	if stats != nil {
		stats.CompileMisses.Add(1)
	}
	cacheSpan(ctx, "compile", key, "miss")
	start := time.Now()
	func() {
		defer recoverToErr("compile", &e.err)
		if e.err = faults.Fire(faults.SiteCompile); e.err != nil {
			return
		}
		e.prog, e.err = compiler.CompileWithContext(ctx, src, opts)
	}()
	if stats != nil {
		stats.Compiles.Add(1)
		stats.CompileNS.Add(int64(time.Since(start)))
	}
	if poisoned(e.err) {
		// A panicked or fault-injected build must not pin its key: the
		// next request rebuilds. Deterministic compile errors stay
		// cached (they will fail identically every time).
		c.dropCompile(key, e)
	}
	close(e.done)
	return e.prog, e.err
}

// CompiledPrediction returns the closure-compiled prediction form for
// (src, copts, static iopts) on the named machine abstraction, built at
// most once per live key. The form is shared and concurrency-safe; its
// subtree memoization accumulates across every EvaluateWith caller, so
// incremental sweeps that vary only Values/TripCounts re-evaluate only
// the cost terms those feed. Uncacheable options (injected CommLibrary)
// build a private form.
func (c *Cache) CompiledPrediction(ctx context.Context, src string, copts compiler.Options, iopts core.Options, machine string, stats *Stats) (*core.Compiled, error) {
	fp, cacheable := predictFingerprint(iopts)
	if !cacheable {
		prog, err := c.Compile(ctx, src, copts, stats)
		if err != nil {
			return nil, err
		}
		return buildPredict(ctx, prog, iopts, machine)
	}

	key := compileKey(src, copts) + "|mach=" + machine + "|" + fp
	c.mu.Lock()
	if e, ok := c.predicts[key]; ok {
		touch(c.predictLRU, e.elem)
		c.mu.Unlock()
		if stats != nil {
			stats.PredictHits.Add(1)
		}
		cacheSpan(ctx, "predict", key, "hit")
		select {
		case <-e.done:
			return e.cp, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &predictEntry{done: make(chan struct{})}
	e.elem = c.predictLRU.PushFront(key)
	c.predicts[key] = e
	c.evictPredicts()
	c.mu.Unlock()

	if stats != nil {
		stats.PredictMisses.Add(1)
	}
	cacheSpan(ctx, "predict", key, "miss")
	func() {
		defer recoverToErr("predict", &e.err)
		var prog *hir.Program
		prog, e.err = c.Compile(ctx, src, copts, stats)
		if e.err != nil {
			return
		}
		e.cp, e.err = buildPredict(ctx, prog, iopts, machine)
	}()
	if poisoned(e.err) {
		c.dropPredict(key, e)
	}
	close(e.done)
	return e.cp, e.err
}

// buildPredict resolves the machine abstraction and compiles the
// prediction form (one calibration + SAAG build + closure compilation).
func buildPredict(ctx context.Context, prog *hir.Program, iopts core.Options, machine string) (cp *core.Compiled, err error) {
	defer recoverToErr("predict", &err)
	var mach *sysmodel.Machine
	if machine != "" {
		mach, err = sysmodel.MachineByName(machine)
		if err != nil {
			return nil, err
		}
	}
	return core.CompilePrediction(ctx, prog, mach, iopts)
}

// Interpret returns the interpretation report for (src, copts, iopts)
// on the named machine abstraction ("" = iPSC/860 default), memoizing
// whole reports when the options are fingerprintable. Compilation
// always goes through the compile cache, and report misses evaluate the
// cached compiled prediction form instead of tree-walking (traced
// requests keep the tree-walker so the interp.<kind> span structure
// survives). The builder honors ctx: a report whose construction was
// cancelled is dropped from the cache so a later request rebuilds it.
func (c *Cache) Interpret(ctx context.Context, src string, copts compiler.Options, iopts core.Options, machine string, stats *Stats) (*core.Report, error) {
	fp, cacheable := interpFingerprint(iopts)
	if !cacheable {
		prog, err := c.Compile(ctx, src, copts, stats)
		if err != nil {
			return nil, err
		}
		return runInterp(ctx, prog, iopts, machine, stats)
	}

	key := compileKey(src, copts) + "|mach=" + machine + "|" + fp
	c.mu.Lock()
	if e, ok := c.reports[key]; ok {
		touch(c.reportLRU, e.elem)
		c.mu.Unlock()
		if stats != nil {
			stats.ReportHits.Add(1)
		}
		cacheSpan(ctx, "report", key, "hit")
		select {
		case <-e.done:
			return e.rep, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &reportEntry{done: make(chan struct{})}
	e.elem = c.reportLRU.PushFront(key)
	c.reports[key] = e
	c.evictReports()
	c.mu.Unlock()

	if stats != nil {
		stats.ReportMisses.Add(1)
	}
	cacheSpan(ctx, "report", key, "miss")
	func() {
		defer recoverToErr("interpret", &e.err)
		if e.err = faults.Fire(faults.SiteCache); e.err != nil {
			return
		}
		var prog *hir.Program
		prog, e.err = c.Compile(ctx, src, copts, stats)
		if e.err != nil {
			return
		}
		if obs.SpanFromContext(ctx) != nil {
			// A traced request wants the interp.<kind> span tree, which
			// only the tree-walking interpreter emits.
			e.rep, e.err = runInterp(ctx, prog, iopts, machine, stats)
			return
		}
		var cp *core.Compiled
		cp, e.err = c.CompiledPrediction(ctx, src, copts, iopts, machine, stats)
		if e.err != nil {
			return
		}
		start := time.Now()
		e.rep, e.err = cp.EvaluateWith(ctx, iopts.Values, iopts.TripCounts)
		if stats != nil {
			stats.Interps.Add(1)
			stats.InterpNS.Add(int64(time.Since(start)))
		}
	}()
	if poisoned(e.err) {
		// A cancelled, panicked or fault-injected build is the attempt's
		// failure, not the key's: don't poison the cache with it.
		c.dropReport(key, e)
	}
	close(e.done)
	return e.rep, e.err
}

func runInterp(ctx context.Context, prog *hir.Program, iopts core.Options, machine string, stats *Stats) (rep *core.Report, err error) {
	defer recoverToErr("interpret", &err)
	var mach *sysmodel.Machine
	if machine != "" {
		mach, err = sysmodel.MachineByName(machine)
		if err != nil {
			return nil, err
		}
	}
	ictx, span := obs.Start(ctx, "interp")
	defer span.End()
	start := time.Now()
	it, err := core.NewContext(ictx, prog, mach, iopts)
	if err != nil {
		return nil, err
	}
	rep, err = it.Interpret()
	if rep != nil {
		span.SetAttrInt("procs", rep.Procs)
	}
	if stats != nil {
		stats.Interps.Add(1)
		stats.InterpNS.Add(int64(time.Since(start)))
	}
	return rep, err
}

// MeasureSpec pins every input of a simulated-execution run. The
// simulator is deterministic for a fixed spec (the noise generator is
// seeded), so (program, spec) fully determines the *exec.Result and
// measurement becomes memoizable — the paper's experimentation loop
// spends almost all of its time here, which is what makes this cache
// the dominant sweep speedup.
type MeasureSpec struct {
	// Machine names the simulated system abstraction ("" = iPSC/860).
	Machine string
	// Runs is the number of perturbed timed runs to average (<= 0 = 1).
	Runs int
	// PerturbAmp is the per-run load-fluctuation amplitude.
	PerturbAmp float64
	// TimerResUS is the timing-routine resolution.
	TimerResUS float64
	// Seed drives the deterministic noise generator.
	Seed int64
	// CacheModel enables the simulator's data-cache miss model.
	CacheModel bool
}

// DefaultMeasureSpec mirrors ipsc.DefaultConfig with the sweep loop's
// two variable knobs: the run count and the perturbation amplitude.
func DefaultMeasureSpec(runs int, perturb float64) MeasureSpec {
	d := ipsc.DefaultConfig(1)
	if runs <= 0 {
		runs = 1
	}
	return MeasureSpec{
		Runs:       runs,
		PerturbAmp: perturb,
		TimerResUS: d.TimerResUS,
		Seed:       d.Seed,
		CacheModel: d.CacheModel,
	}
}

// fingerprint renders the spec deterministically for the cache key.
func (sp MeasureSpec) fingerprint() string {
	return fmt.Sprintf("mach=%s|runs=%d|amp=%g|timer=%g|seed=%d|cache=%t",
		sp.Machine, sp.Runs, sp.PerturbAmp, sp.TimerResUS, sp.Seed, sp.CacheModel)
}

// Measure returns the simulated-execution result for (src, copts, spec),
// running the simulator at most once per live key. Results are shared
// and must be treated as immutable by callers. A cancelled, panicked or
// fault-injected run is dropped from the cache so a later request
// re-executes it.
func (c *Cache) Measure(ctx context.Context, src string, copts compiler.Options, spec MeasureSpec, stats *Stats) (*exec.Result, error) {
	if spec.Runs <= 0 {
		spec.Runs = 1 // normalize before keying so runs=0 and runs=1 share
	}
	key := compileKey(src, copts) + "|" + spec.fingerprint()
	c.mu.Lock()
	if e, ok := c.measures[key]; ok {
		touch(c.measureLRU, e.elem)
		c.mu.Unlock()
		if stats != nil {
			stats.ExecHits.Add(1)
		}
		cacheSpan(ctx, "exec", key, "hit")
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &measureEntry{done: make(chan struct{})}
	e.elem = c.measureLRU.PushFront(key)
	c.measures[key] = e
	c.evictMeasures()
	c.mu.Unlock()

	if stats != nil {
		stats.ExecMisses.Add(1)
	}
	cacheSpan(ctx, "exec", key, "miss")
	func() {
		defer recoverToErr("execute", &e.err)
		var prog *hir.Program
		prog, e.err = c.Compile(ctx, src, copts, stats)
		if e.err != nil {
			return
		}
		e.res, e.err = runExec(ctx, prog, spec, stats)
	}()
	if poisoned(e.err) {
		c.dropMeasure(key, e)
	}
	close(e.done)
	return e.res, e.err
}

// runExec builds the simulated machine for spec and executes prog on it.
func runExec(ctx context.Context, prog *hir.Program, spec MeasureSpec, stats *Stats) (*exec.Result, error) {
	// The VM only polls ctx every few thousand statements; a small
	// program can finish before the first poll. Check upfront so an
	// already-dead request never executes (and never caches).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := ipsc.DefaultConfig(prog.Info.Grid.Size())
	if spec.Machine != "" {
		base, err := sysmodel.MachineByName(spec.Machine)
		if err != nil {
			return nil, err
		}
		cfg.Base = base
	}
	cfg.PerturbAmp = spec.PerturbAmp
	cfg.TimerResUS = spec.TimerResUS
	cfg.Seed = spec.Seed
	cfg.CacheModel = spec.CacheModel
	m, err := ipsc.New(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := exec.RunContext(ctx, prog, m, exec.Options{Runs: spec.Runs})
	if stats != nil {
		stats.Execs.Add(1)
		stats.ExecNS.Add(int64(time.Since(start)))
	}
	return res, err
}

// cacheSpan records one cache probe as an instant cache.lookup span.
// No-op (one nil check inside Start) when the context is untraced.
func cacheSpan(ctx context.Context, kind, key, outcome string) {
	_, s := obs.Start(ctx, "cache.lookup")
	if s == nil {
		return
	}
	s.SetAttr("kind", kind)
	s.SetAttr("outcome", outcome)
	if len(key) > 32 {
		key = key[:32]
	}
	s.SetAttr("key", key)
	s.End()
}

// Len reports how many compiled programs the cache holds (for tests and
// diagnostics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.compiles)
}
