package parser

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hpfperf/internal/suite"
)

func seedCorpus(f *testing.F) {
	f.Helper()
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("seed %s: %v", p, err)
		}
		f.Add(string(b))
	}
	for _, prog := range suite.All() {
		f.Add(prog.Source(prog.Sizes[0], prog.Procs[0]))
	}
	// Degenerate program shapes.
	f.Add("")
	f.Add("      END")
	f.Add("      PROGRAM P\n      END PROGRAM P\n")
	f.Add("      DO I = 1, 10\n")
	f.Add("      IF (X) THEN\n      ELSE\n")
	f.Add("!HPF$ DISTRIBUTE A(BLOCK,CYCLIC) ONTO\n")
	f.Add("      FORALL (I=1:N) A(I) = A(I\n")
}

// FuzzParser asserts the parser never panics on arbitrary input and that
// every reported syntax error carries a valid 1-based line number — the
// property the interactive tooling (hpfserve, hpfpc) relies on to anchor
// diagnostics to source lines.
func FuzzParser(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil {
			if prog == nil {
				t.Fatal("nil program with nil error")
			}
			return
		}
		var list ErrorList
		if errors.As(err, &list) {
			for _, e := range list {
				if e.Pos.Line < 1 {
					t.Fatalf("syntax error %q at invalid line %d", e.Msg, e.Pos.Line)
				}
			}
			return
		}
		var one *Error
		if errors.As(err, &one) {
			if one.Pos.Line < 1 {
				t.Fatalf("syntax error %q at invalid line %d", one.Msg, one.Pos.Line)
			}
		}
	})
}
