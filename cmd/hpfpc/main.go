// Command hpfpc is the HPF/Fortran 90D performance predictor: it compiles
// a program and interprets its performance on the abstracted iPSC/860
// without executing it.
//
// Usage:
//
//	hpfpc [flags] file.hpf          predict a source file
//	hpfpc [flags] -prog PI          predict a suite program
//
// Flags select the output form: the default profile, the interpreted AAG
// (-aag), the communication table (-comm), per-line metrics (-line N),
// the hottest lines (-hot N), the compiled SPMD program (-spmd), or a
// ParaGraph trace (-trace file).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hpfperf"
	"hpfperf/internal/obs"
)

func main() {
	var (
		progName = flag.String("prog", "", "predict a suite program by name (e.g. \"PI\", \"Laplace (Blk-X)\")")
		size     = flag.Int("size", 256, "problem size for -prog")
		procs    = flag.Int("procs", 4, "processor count for -prog")
		aag      = flag.Bool("aag", false, "print the interpreted application abstraction graph")
		aagDepth = flag.Int("aag-depth", 3, "AAG view depth (0 = unlimited)")
		comm     = flag.Bool("comm", false, "print the communication table")
		line     = flag.Int("line", 0, "print metrics for one source line")
		aau      = flag.Int("aau", 0, "print cumulative metrics of one AAU sub-graph by ID")
		hot      = flag.Int("hot", 0, "print the N hottest source lines")
		spmd     = flag.Bool("spmd", false, "print the compiled SPMD node program")
		critical = flag.Bool("critical", false, "list the program's critical variables")
		traceOut = flag.String("trace", "", "write a ParaGraph interpretation trace to this file")
		spanOut  = flag.String("trace-out", "", "write the run's observability span tree as JSON to this file (render with hpftrace -spans)")
		maskDens = flag.Float64("mask", 1.0, "assumed FORALL/WHERE mask density")
		noMem    = flag.Bool("nomem", false, "disable the memory-hierarchy model")
		avgLoad  = flag.Bool("avgload", false, "use average instead of max-loaded processor accounting")
		machine  = flag.String("machine", "", "target system abstraction (ipsc860, paragon)")
		auto     = flag.Int("auto", 0, "search directive variants for N processors and rank them")
		stats    = flag.Bool("stats", false, "print sweep engine statistics (candidate compiles, cache hits/misses) to stderr after -auto")
		noLint   = flag.Bool("nolint", false, "suppress static-analysis warnings on stderr")
	)
	flag.Parse()

	src, err := loadSource(*progName, *size, *procs, flag.Args())
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *spanOut != "" {
		tracer = obs.NewTracer(obs.NewTraceID())
		root := tracer.Root("hpfpc")
		// Registered, not deferred: fatal() exits via os.Exit, which
		// skips defers, and a failing run is exactly when the partial
		// span tree matters. fatal runs the cleanups itself.
		atExit(func() { writeSpanTree(*spanOut, tracer, root) })
		defer runAtExit()
		ctx = obs.ContextWithSpan(ctx, root)
	}
	prog, err := hpfperf.CompileContext(ctx, src)
	if err != nil {
		fatal(err)
	}
	if !*noLint {
		for _, d := range hpfperf.AnalyzeProgram(prog) {
			if d.Severity >= hpfperf.SevWarning {
				fmt.Fprintf(os.Stderr, "hpfpc: %s: line %d: %s [%s]\n", d.Severity, d.Line, d.Message, d.Code)
			}
		}
	}
	if *spmd {
		fmt.Print(prog.SPMD())
		return
	}
	if *critical {
		cvs := prog.CriticalVariables()
		if len(cvs) == 0 {
			fmt.Println("no critical variables: all control flow is constant")
			return
		}
		fmt.Println("critical variables (values affecting control flow):")
		for _, cv := range cvs {
			fmt.Printf("  %-12s %d use(s) at lines %v\n", cv.Name, cv.Uses, cv.Lines)
		}
		return
	}
	opts := &hpfperf.PredictOptions{MaskDensity: *maskDens, AverageLoad: *avgLoad, Machine: *machine}
	if *noMem {
		off := false
		opts.MemoryModel = &off
	}
	if *auto > 0 {
		cands, err := hpfperf.AutoDistributeContext(ctx, src, *auto, &hpfperf.AutoDistributeOptions{Predict: opts})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("directive search for %d processors:\n", *auto)
		for i, c := range cands {
			if c.Err != nil {
				continue
			}
			marker := "  "
			if i == 0 {
				marker = "=>"
			}
			fmt.Printf("%s %-44s %12.3fms\n", marker, c.Desc, c.EstUS/1e3)
		}
		if *stats {
			fmt.Fprintln(os.Stderr, hpfperf.SweepStatistics())
		}
		return
	}
	pred, err := hpfperf.PredictContext(ctx, prog, opts)
	if err != nil {
		fatal(err)
	}
	switch {
	case *aag:
		fmt.Print(pred.AAG(*aagDepth))
	case *comm:
		fmt.Print(pred.CommTable())
	case *line > 0:
		fmt.Println(pred.Line(*line))
	case *aau > 0:
		fmt.Println(pred.AAU(*aau))
	case *hot > 0:
		fmt.Print(pred.HotLines(*hot))
	default:
		fmt.Print(pred.Profile())
		fmt.Println("data mappings:")
		for _, m := range prog.Mappings() {
			fmt.Println("  " + m)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pred.WriteTrace(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
}

// writeSpanTree closes the root span and dumps the tracer's tree as
// JSON — the format hpftrace -spans reads back.
func writeSpanTree(path string, tracer *obs.Tracer, root *obs.Span) {
	root.End()
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tracer.Tree()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "span tree written to %s\n", path)
}

// exitFns are cleanups that must run on both the normal return path
// (via the deferred runAtExit) and the fatal path (os.Exit skips
// defers, so fatal invokes runAtExit itself).
var exitFns []func()

func atExit(f func()) { exitFns = append(exitFns, f) }

// runAtExit runs and clears the registered cleanups; clearing first
// makes it idempotent and breaks recursion when a cleanup itself
// calls fatal.
func runAtExit() {
	fns := exitFns
	exitFns = nil
	for _, f := range fns {
		f()
	}
}

func loadSource(progName string, size, procs int, args []string) (string, error) {
	if progName != "" {
		p, err := hpfperf.SuiteProgramByName(progName)
		if err != nil {
			return "", err
		}
		return p.Source(size, procs), nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: hpfpc [flags] file.hpf  (or -prog NAME); see -help")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfpc:", err)
	runAtExit()
	os.Exit(1)
}
