// Package autotune implements the paper's proposed extension (§5.2.1,
// §7): "an intelligent compiler capable of selecting appropriate
// directives and data decompositions" driven by the source-based
// interpretation model. Given a program, it enumerates distribution
// directives (processor arrangements × per-dimension BLOCK / CYCLIC / *
// formats), interprets each variant, and ranks them by predicted
// execution time — without ever executing the program.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/parser"
	"hpfperf/internal/sweep"
)

// Candidate is one directive assignment with its prediction.
type Candidate struct {
	// GridSpec is the PROCESSORS shape, e.g. "(2,4)".
	GridSpec string
	// Formats maps each DISTRIBUTE target to its format spec, e.g.
	// "(BLOCK,*)".
	Formats map[string]string
	// Source is the rewritten program.
	Source string
	// EstUS is the predicted execution time (microseconds); +Inf when the
	// variant failed to compile or interpret.
	EstUS float64
	// Err records why an invalid variant was rejected.
	Err error
}

// Desc renders a short human-readable description.
func (c Candidate) Desc() string {
	var parts []string
	targets := make([]string, 0, len(c.Formats))
	for t := range c.Formats {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		parts = append(parts, t+c.Formats[t])
	}
	return fmt.Sprintf("%s onto P%s", strings.Join(parts, ", "), c.GridSpec)
}

// Options configure the search.
type Options struct {
	// Procs is the total processor count to distribute onto (required).
	Procs int
	// NoCyclic restricts the search to BLOCK/* formats.
	NoCyclic bool
	// MaxRank bounds the processor arrangement rank (default 2).
	MaxRank int
	// Interp configures the interpretation engine.
	Interp core.Options
	// Engine evaluates candidates (worker pool + compile/prediction
	// cache); nil uses the process-wide shared engine.
	Engine *sweep.Engine
	// Checkpoint, when non-empty, is a file recording each evaluated
	// candidate so a killed search resumes from the completed ones. The
	// file is keyed by the source and search parameters (a mismatched
	// file restarts the search) and removed on success.
	Checkpoint string
	// CheckpointFlushEvery bounds completed candidates between durable
	// checkpoint writes (<= 0 = every candidate). Only meaningful with
	// Checkpoint.
	CheckpointFlushEvery int
	// CheckpointOnFlush, when set with Checkpoint, observes every
	// durable checkpoint write with the number of completed candidates
	// on file (the async jobs subsystem journals these as
	// checkpointed(n) transitions).
	CheckpointOnFlush func(done int)
}

// Search enumerates directive variants of src, interprets each on the
// sweep worker pool (cached compiles, deterministic candidate order),
// and returns them ranked by predicted time (invalid variants last).
func Search(src string, opts Options) ([]Candidate, error) {
	return SearchContext(context.Background(), src, opts)
}

// SearchContext is Search with cooperative cancellation: once ctx ends
// no further candidates are dispatched and the ctx error is returned.
func SearchContext(ctx context.Context, src string, opts Options) ([]Candidate, error) {
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("autotune: Procs must be positive")
	}
	if opts.MaxRank <= 0 {
		opts.MaxRank = 2
	}
	shape, err := analyzeShape(src)
	if err != nil {
		return nil, err
	}
	if len(shape.targets) == 0 {
		return nil, fmt.Errorf("autotune: program has no DISTRIBUTE directives to tune")
	}

	var out []Candidate
	for _, grid := range gridShapes(opts.Procs, opts.MaxRank) {
		for _, formats := range formatCombos(shape.maxTargetRank(), len(grid), opts.NoCyclic) {
			cand, skip := buildCandidate(src, shape, grid, formats)
			if skip {
				continue
			}
			out = append(out, cand)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autotune: no applicable directive variants")
	}

	eng := opts.Engine
	if eng == nil {
		eng = sweep.Default()
	}
	var ck *sweep.Checkpoint
	if opts.Checkpoint != "" {
		h := fnv.New64a()
		io.WriteString(h, src)
		ck = &sweep.Checkpoint{
			Path: opts.Checkpoint,
			Key: fmt.Sprintf("autotune|procs=%d|nocyclic=%t|rank=%d|src=%x",
				opts.Procs, opts.NoCyclic, opts.MaxRank, h.Sum64()),
			FlushEvery: opts.CheckpointFlushEvery,
			OnFlush:    opts.CheckpointOnFlush,
		}
	}
	// Candidate evaluations are independent; Map preserves index order,
	// so the stable rank below stays byte-identical to a serial loop.
	evals, err := sweep.MapCheckpointCtx(ctx, eng, len(out), ck, func(i int) (candEval, error) {
		return evalCandidate(ctx, out[i].Source, eng, opts.Interp), ctx.Err()
	})
	if err != nil {
		return nil, err
	}
	for i, ev := range evals {
		out[i].EstUS = ev.EstUS
		if ev.Err != "" {
			out[i].Err = errors.New(ev.Err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].EstUS < out[j].EstUS })
	return out, nil
}

// programShape captures the tunable directive structure of a program.
type programShape struct {
	gridName string
	gridLine int // 1-based source line of the PROCESSORS directive
	targets  map[string]targetInfo
}

type targetInfo struct {
	rank int
	line int
}

func (s *programShape) maxTargetRank() int {
	r := 0
	for _, t := range s.targets {
		if t.rank > r {
			r = t.rank
		}
	}
	return r
}

// analyzeShape locates the program's tunable directives. The analysis is
// lexical (directives are single logical lines) so that a seed program
// whose existing directives are inconsistent — e.g. a grid rank that does
// not match its DISTRIBUTE formats — can still be tuned: every variant is
// fully recompiled and invalid ones are rejected individually.
func analyzeShape(src string) (*programShape, error) {
	if _, err := parser.Parse(src); err != nil {
		return nil, err
	}
	shape := &programShape{targets: make(map[string]targetInfo)}
	for i, line := range strings.Split(src, "\n") {
		u := strings.ToUpper(strings.TrimSpace(line))
		if !strings.HasPrefix(u, "!HPF$") {
			continue
		}
		rest := strings.TrimSpace(u[len("!HPF$"):])
		switch {
		case strings.HasPrefix(rest, "PROCESSORS"):
			shape.gridLine = i + 1
			shape.gridName = directiveTarget(rest[len("PROCESSORS"):])
		case strings.HasPrefix(rest, "DISTRIBUTE"):
			name := directiveTarget(rest[len("DISTRIBUTE"):])
			if name == "" {
				return nil, fmt.Errorf("autotune: cannot parse DISTRIBUTE on line %d", i+1)
			}
			rank := 1 + strings.Count(between(rest, "(", ")"), ",")
			shape.targets[name] = targetInfo{rank: rank, line: i + 1}
		}
	}
	if shape.gridLine == 0 {
		return nil, fmt.Errorf("autotune: program has no PROCESSORS directive")
	}
	return shape, nil
}

func directiveTarget(s string) string {
	s = strings.TrimSpace(s)
	end := strings.IndexAny(s, "( ")
	if end < 0 {
		return strings.TrimSpace(s)
	}
	return strings.TrimSpace(s[:end])
}

func between(s, open, close string) string {
	i := strings.Index(s, open)
	j := strings.Index(s, close)
	if i < 0 || j < i {
		return ""
	}
	return s[i+1 : j]
}

// gridShapes enumerates processor arrangements for n processors up to
// maxRank dimensions (each factorization once, e.g. 8 → (8), (2,4), (4,2)).
func gridShapes(n, maxRank int) [][]int {
	shapes := [][]int{{n}}
	if maxRank >= 2 {
		for a := 2; a <= n/2; a++ {
			if n%a == 0 {
				shapes = append(shapes, []int{a, n / a})
			}
		}
	}
	if n == 1 && maxRank >= 2 {
		shapes = append(shapes, []int{1, 1})
	}
	return shapes
}

// formatCombos enumerates per-dimension format assignments for a
// rank-`rank` target with exactly `nDist` distributed dimensions.
func formatCombos(rank, nDist int, noCyclic bool) [][]string {
	if nDist > rank {
		return nil
	}
	kinds := []string{"BLOCK"}
	if !noCyclic {
		kinds = append(kinds, "CYCLIC")
	}
	var out [][]string
	// Choose which dimensions are distributed (combination mask), then the
	// kind of each distributed dimension.
	var rec func(dim, used int, cur []string)
	rec = func(dim, used int, cur []string) {
		if dim == rank {
			if used == nDist {
				out = append(out, append([]string(nil), cur...))
			}
			return
		}
		rec(dim+1, used, append(cur, "*"))
		if used < nDist {
			for _, k := range kinds {
				rec(dim+1, used+1, append(cur, k))
			}
		}
	}
	rec(0, 0, nil)
	return out
}

// buildCandidate rewrites the directive lines of src for one variant.
func buildCandidate(src string, shape *programShape, grid []int, formats []string) (Candidate, bool) {
	lines := strings.Split(src, "\n")
	gs := make([]string, len(grid))
	for i, g := range grid {
		gs[i] = fmt.Sprint(g)
	}
	gridSpec := "(" + strings.Join(gs, ",") + ")"
	gridName := shape.gridName
	if gridName == "" {
		gridName = "P"
	}
	lines[shape.gridLine-1] = fmt.Sprintf("!HPF$ PROCESSORS %s%s", gridName, gridSpec)

	cand := Candidate{GridSpec: gridSpec, Formats: make(map[string]string)}
	for target, ti := range shape.targets {
		if ti.rank < len(formats) {
			return cand, true // this format vector does not fit the target
		}
		fs := formats
		if ti.rank > len(formats) {
			// Pad trailing dimensions as collapsed.
			fs = append(append([]string(nil), formats...), make([]string, ti.rank-len(formats))...)
			for i := len(formats); i < ti.rank; i++ {
				fs[i] = "*"
			}
		}
		spec := "(" + strings.Join(fs, ",") + ")"
		cand.Formats[target] = spec
		lines[ti.line-1] = fmt.Sprintf("!HPF$ DISTRIBUTE %s%s ONTO %s", target, spec, gridName)
	}
	cand.Source = strings.Join(lines, "\n")
	return cand, false
}

// candEval is the checkpointable outcome of one candidate evaluation.
// Errors travel as strings so the value round-trips through JSON; a
// resumed search reconstructs Candidate.Err from the recorded text.
type candEval struct {
	EstUS float64 `json:"est_us"`
	Err   string  `json:"err,omitempty"`
}

// evalCandidate compiles (cached) and interprets one variant.
func evalCandidate(ctx context.Context, src string, eng *sweep.Engine, interp core.Options) candEval {
	const invalid = 1e308
	rep, err := eng.InterpretContext(ctx, src, compiler.Options{}, interp)
	if err != nil {
		return candEval{EstUS: invalid, Err: err.Error()}
	}
	return candEval{EstUS: rep.TotalUS()}
}
