// Command hpfsim executes an HPF/Fortran 90D program on the simulated
// iPSC/860 hypercube, reporting the "measured" execution time and the
// program's output — the measurement side of the paper's estimated vs.
// measured comparisons.
//
// Usage:
//
//	hpfsim [flags] file.hpf
//	hpfsim [flags] -prog "N-Body" -size 256 -procs 8
package main

import (
	"flag"
	"fmt"
	"os"

	"hpfperf"
)

func main() {
	var (
		progName = flag.String("prog", "", "run a suite program by name")
		size     = flag.Int("size", 256, "problem size for -prog")
		procs    = flag.Int("procs", 4, "processor count for -prog")
		runs     = flag.Int("runs", 3, "number of perturbed timed runs to average")
		perturb  = flag.Float64("perturb", 0.01, "load fluctuation amplitude (0 disables)")
		seed     = flag.Int64("seed", 1994, "noise generator seed")
		compare  = flag.Bool("compare", false, "also interpret and report the prediction error")
		machine  = flag.String("machine", "", "simulated system (ipsc860, paragon)")
	)
	flag.Parse()

	src, err := loadSource(*progName, *size, *procs, flag.Args())
	if err != nil {
		fatal(err)
	}
	prog, err := hpfperf.Compile(src)
	if err != nil {
		fatal(err)
	}
	mopts := &hpfperf.MeasureOptions{Runs: *runs, Perturb: *perturb, Seed: *seed, Machine: *machine}
	if *perturb == 0 {
		mopts.Perturb = -1
	}
	meas, err := hpfperf.Measure(prog, mopts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("program %s on %d processor(s)\n", prog.Name(), prog.Processors())
	fmt.Printf("measured execution time: %.6fs (mean of %d runs)\n", meas.Seconds(), len(meas.Runs()))
	for i, t := range meas.Runs() {
		fmt.Printf("  run %d: %.6fs\n", i+1, t/1e6)
	}
	if out := meas.Printed(); len(out) > 0 {
		fmt.Println("program output:")
		for _, l := range out {
			fmt.Println("  " + l)
		}
	}
	if *compare {
		pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{Machine: *machine})
		if err != nil {
			fatal(err)
		}
		e, m := pred.Microseconds(), meas.Microseconds()
		fmt.Printf("interpreted estimate: %.6fs (error %+.2f%%)\n", pred.Seconds(), (e-m)/m*100)
	}
}

func loadSource(progName string, size, procs int, args []string) (string, error) {
	if progName != "" {
		p, err := hpfperf.SuiteProgramByName(progName)
		if err != nil {
			return "", err
		}
		return p.Source(size, procs), nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("usage: hpfsim [flags] file.hpf  (or -prog NAME); see -help")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfsim:", err)
	os.Exit(1)
}
