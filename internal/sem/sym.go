// Package sem performs semantic analysis of a parsed HPF/Fortran 90D
// program: symbol resolution, typing, array shape analysis, constant
// folding, and resolution of the HPF mapping directives into the
// distribution descriptors of package dist.
package sem

import (
	"fmt"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/token"
)

// SymKind classifies a program name.
type SymKind int

const (
	SymScalar SymKind = iota
	SymArray
	SymConst
	SymTemplate
	SymProcs
)

func (k SymKind) String() string {
	switch k {
	case SymScalar:
		return "scalar"
	case SymArray:
		return "array"
	case SymConst:
		return "constant"
	case SymTemplate:
		return "template"
	case SymProcs:
		return "processors"
	}
	return "?"
}

// Symbol is a declared or implicitly typed name.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   ast.BaseType
	Bounds [][2]int       // constant-evaluated bounds for arrays/templates
	Const  Value          // value for SymConst
	Map    *dist.ArrayMap // mapping for SymArray (set after directive resolution)
}

// Rank returns the number of dimensions (0 for scalars).
func (s *Symbol) Rank() int { return len(s.Bounds) }

// Elems returns the total element count of an array symbol.
func (s *Symbol) Elems() int {
	n := 1
	for _, b := range s.Bounds {
		n *= b[1] - b[0] + 1
	}
	return n
}

// Value is a constant value: integer, real, or logical.
type Value struct {
	Type ast.BaseType
	I    int64
	R    float64
	B    bool
}

// IntVal builds an integer constant.
func IntVal(i int64) Value { return Value{Type: ast.TInteger, I: i} }

// RealVal builds a real constant.
func RealVal(r float64) Value { return Value{Type: ast.TReal, R: r} }

// LogicalVal builds a logical constant.
func LogicalVal(b bool) Value { return Value{Type: ast.TLogical, B: b} }

// AsFloat returns the value as float64 regardless of numeric type.
func (v Value) AsFloat() float64 {
	if v.Type == ast.TInteger {
		return float64(v.I)
	}
	return v.R
}

// AsInt returns the value as int64 (truncating reals, Fortran-style).
func (v Value) AsInt() int64 {
	if v.Type == ast.TInteger {
		return v.I
	}
	return int64(v.R)
}

func (v Value) String() string {
	switch v.Type {
	case ast.TInteger:
		return fmt.Sprint(v.I)
	case ast.TLogical:
		if v.B {
			return ".TRUE."
		}
		return ".FALSE."
	default:
		return fmt.Sprint(v.R)
	}
}

// Shape describes the extents of an array-valued expression; a nil *Shape
// denotes a scalar.
type Shape struct {
	Dims [][2]int
}

// Rank returns the number of dimensions.
func (s *Shape) Rank() int {
	if s == nil {
		return 0
	}
	return len(s.Dims)
}

// Elems returns the total number of elements.
func (s *Shape) Elems() int {
	if s == nil {
		return 1
	}
	n := 1
	for _, d := range s.Dims {
		n *= d[1] - d[0] + 1
	}
	return n
}

// Conforms reports whether two shapes have identical extents per dimension
// (Fortran conformance ignores bounds, only extents matter).
func (s *Shape) Conforms(o *Shape) bool {
	if s.Rank() != o.Rank() {
		return false
	}
	if s == nil {
		return true
	}
	for i := range s.Dims {
		if s.Dims[i][1]-s.Dims[i][0] != o.Dims[i][1]-o.Dims[i][0] {
			return false
		}
	}
	return true
}

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Info is the result of semantic analysis.
type Info struct {
	Prog    *ast.Program
	Symbols map[string]*Symbol
	Grid    *dist.Grid
	// Templates maps template name to its resolved per-dimension
	// distribution (bounds from the TEMPLATE directive).
	Templates map[string][]dist.DimDist
	// Types holds the resolved type of every analyzed expression.
	Types map[ast.Expr]ast.BaseType
	// Shapes holds the shape of array-valued expressions (nil = scalar).
	Shapes map[ast.Expr]*Shape
	// Consts holds values of named constants.
	Consts map[string]Value
}

// TypeOf returns the resolved type of e (TUnknown if unanalyzed).
func (in *Info) TypeOf(e ast.Expr) ast.BaseType { return in.Types[e] }

// ShapeOf returns the shape of e; nil means scalar.
func (in *Info) ShapeOf(e ast.Expr) *Shape { return in.Shapes[e] }

// Sym returns the symbol for a name, or nil.
func (in *Info) Sym(name string) *Symbol { return in.Symbols[name] }

// ArrayMap returns the distribution map of array name, or nil.
func (in *Info) ArrayMap(name string) *dist.ArrayMap {
	if s := in.Symbols[name]; s != nil {
		return s.Map
	}
	return nil
}
