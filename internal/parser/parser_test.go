package parser

import (
	"strings"
	"testing"

	"hpfperf/internal/ast"
	"hpfperf/internal/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func TestMinimalProgram(t *testing.T) {
	prog := mustParse(t, "PROGRAM hello\nX = 1\nEND")
	if prog.Name != "HELLO" {
		t.Errorf("name = %q, want HELLO", prog.Name)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("body len = %d, want 1", len(prog.Body))
	}
	if _, ok := prog.Body[0].(*ast.AssignStmt); !ok {
		t.Errorf("stmt = %T, want AssignStmt", prog.Body[0])
	}
}

func TestEndProgramName(t *testing.T) {
	mustParse(t, "PROGRAM p\nX = 1\nEND PROGRAM p")
	mustParse(t, "PROGRAM p\nX = 1\nEND PROGRAM")
}

func TestProgramHeaderOptional(t *testing.T) {
	prog := mustParse(t, "X = 1\nEND")
	if prog.Name != "MAIN" {
		t.Errorf("name = %q, want MAIN", prog.Name)
	}
}

func TestDeclarations(t *testing.T) {
	src := `PROGRAM d
INTEGER I, J
REAL A(100), B(0:9, 10)
DOUBLE PRECISION X
LOGICAL FLAG
PARAMETER (N = 256, PI = 3.14159)
INTEGER, PARAMETER :: M = 4
IMPLICIT NONE
I = 1
END`
	prog := mustParse(t, src)
	if len(prog.Decls) != 7 {
		t.Fatalf("decls = %d, want 7", len(prog.Decls))
	}
	td := prog.Decls[1].(*ast.TypeDecl)
	if td.Type != ast.TReal {
		t.Errorf("type = %v, want REAL", td.Type)
	}
	if len(td.Entities) != 2 {
		t.Fatalf("entities = %d", len(td.Entities))
	}
	if len(td.Entities[1].Dims) != 2 {
		t.Errorf("B dims = %d, want 2", len(td.Entities[1].Dims))
	}
	if td.Entities[1].Dims[0].Lo == nil {
		t.Error("B first dim should have explicit lower bound")
	}
	pd := prog.Decls[4].(*ast.ParameterDecl)
	if len(pd.Names) != 2 || pd.Names[0] != "N" || pd.Names[1] != "PI" {
		t.Errorf("parameter names = %v", pd.Names)
	}
	pd2 := prog.Decls[5].(*ast.ParameterDecl)
	if len(pd2.Names) != 1 || pd2.Names[0] != "M" {
		t.Errorf("attr parameter names = %v", pd2.Names)
	}
}

func TestDirectives(t *testing.T) {
	src := `PROGRAM d
REAL A(256,256)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T(256,256)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
A(1,1) = 0.0
END`
	prog := mustParse(t, src)
	if len(prog.Directives) != 4 {
		t.Fatalf("directives = %d, want 4", len(prog.Directives))
	}
	pr := prog.Directives[0].(*ast.ProcessorsDir)
	if pr.Name != "P" || len(pr.Shape) != 2 {
		t.Errorf("processors = %q shape %d", pr.Name, len(pr.Shape))
	}
	al := prog.Directives[2].(*ast.AlignDir)
	if al.Array != "A" || al.Target != "T" || len(al.Dummies) != 2 {
		t.Errorf("align = %+v", al)
	}
	di := prog.Directives[3].(*ast.DistributeDir)
	if di.Target != "T" || di.Onto != "P" || len(di.Formats) != 2 {
		t.Errorf("distribute = %+v", di)
	}
	if di.Formats[0].Kind != ast.DistBlock {
		t.Errorf("format 0 = %v, want BLOCK", di.Formats[0].Kind)
	}
}

func TestDistributeStarAndCyclic(t *testing.T) {
	src := `PROGRAM d
REAL A(16)
!HPF$ TEMPLATE T(16)
!HPF$ DISTRIBUTE T(CYCLIC)
!HPF$ TEMPLATE U(16,16)
!HPF$ DISTRIBUTE U(BLOCK,*)
A(1) = 0.0
END`
	prog := mustParse(t, src)
	d1 := prog.Directives[1].(*ast.DistributeDir)
	if d1.Formats[0].Kind != ast.DistCyclic {
		t.Errorf("want CYCLIC, got %v", d1.Formats[0].Kind)
	}
	d2 := prog.Directives[3].(*ast.DistributeDir)
	if d2.Formats[1].Kind != ast.DistStar {
		t.Errorf("want *, got %v", d2.Formats[1].Kind)
	}
}

func TestDoLoop(t *testing.T) {
	src := `PROGRAM d
DO I = 1, 10, 2
  X = X + I
END DO
DO J = 1, 5
  Y = J
ENDDO
END`
	prog := mustParse(t, src)
	if len(prog.Body) != 2 {
		t.Fatalf("body = %d stmts", len(prog.Body))
	}
	d := prog.Body[0].(*ast.DoStmt)
	if d.Var != "I" || d.Step == nil || len(d.Body) != 1 {
		t.Errorf("do = %+v", d)
	}
	d2 := prog.Body[1].(*ast.DoStmt)
	if d2.Step != nil {
		t.Error("second DO should have nil step")
	}
}

func TestDoWhile(t *testing.T) {
	src := "PROGRAM d\nDO WHILE (X .LT. 10)\nX = X + 1\nEND DO\nEND"
	prog := mustParse(t, src)
	dw := prog.Body[0].(*ast.DoWhileStmt)
	if len(dw.Body) != 1 {
		t.Errorf("body = %d", len(dw.Body))
	}
}

func TestNestedDo(t *testing.T) {
	src := `PROGRAM d
DO I = 1, N
  DO J = 1, M
    A(I,J) = 0.0
  END DO
END DO
END`
	prog := mustParse(t, src)
	outer := prog.Body[0].(*ast.DoStmt)
	inner := outer.Body[0].(*ast.DoStmt)
	if inner.Var != "J" {
		t.Errorf("inner var = %q", inner.Var)
	}
}

func TestBlockIf(t *testing.T) {
	src := `PROGRAM d
IF (X .GT. 0) THEN
  Y = 1
ELSE IF (X .LT. 0) THEN
  Y = -1
ELSE
  Y = 0
END IF
END`
	prog := mustParse(t, src)
	s := prog.Body[0].(*ast.IfStmt)
	if !s.Block || len(s.Then) != 1 || len(s.Else) != 1 {
		t.Fatalf("if = %+v", s)
	}
	nested, ok := s.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else[0] = %T, want nested IfStmt", s.Else[0])
	}
	if len(nested.Else) != 1 {
		t.Errorf("nested else = %d", len(nested.Else))
	}
}

func TestLogicalIf(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nIF (X .GT. 0) Y = 1\nEND")
	s := prog.Body[0].(*ast.IfStmt)
	if s.Block {
		t.Error("logical IF should not be Block")
	}
	if len(s.Then) != 1 {
		t.Errorf("then = %d", len(s.Then))
	}
}

func TestForallStatement(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nFORALL (I = 1:N, J = 1:N) P(I,J) = Q(I-1,J-1)\nEND")
	f := prog.Body[0].(*ast.ForallStmt)
	if len(f.Indices) != 2 || f.Mask != nil || f.Construct {
		t.Fatalf("forall = %+v", f)
	}
	if f.Indices[0].Name != "I" || f.Indices[1].Name != "J" {
		t.Errorf("indices = %v", f.Indices)
	}
}

func TestForallWithMask(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nFORALL (I = 1:N, Q(I) .NE. 0.0) P(I) = 1.0/Q(I)\nEND")
	f := prog.Body[0].(*ast.ForallStmt)
	if len(f.Indices) != 1 || f.Mask == nil {
		t.Fatalf("forall = %+v", f)
	}
}

func TestForallConstruct(t *testing.T) {
	src := `PROGRAM d
FORALL (I = 2:N-1)
  X(I) = X(I-1) + X(I+1)
  Y(I) = X(I)
END FORALL
END`
	prog := mustParse(t, src)
	f := prog.Body[0].(*ast.ForallStmt)
	if !f.Construct || len(f.Body) != 2 {
		t.Fatalf("forall = construct %v body %d", f.Construct, len(f.Body))
	}
}

func TestForallWithStride(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nFORALL (I = 1:N:2) X(I) = 0.0\nEND")
	f := prog.Body[0].(*ast.ForallStmt)
	if f.Indices[0].Stride == nil {
		t.Error("want stride expression")
	}
}

func TestWhereStatement(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nWHERE (A .GT. 0.0) B = 1.0/A\nEND")
	w := prog.Body[0].(*ast.WhereStmt)
	if w.Construct || len(w.Body) != 1 {
		t.Fatalf("where = %+v", w)
	}
}

func TestWhereConstruct(t *testing.T) {
	src := `PROGRAM d
WHERE (A .GT. 0.0)
  B = 1.0/A
ELSEWHERE
  B = 0.0
END WHERE
END`
	prog := mustParse(t, src)
	w := prog.Body[0].(*ast.WhereStmt)
	if !w.Construct || len(w.Body) != 1 || len(w.ElseBody) != 1 {
		t.Fatalf("where = %+v", w)
	}
}

func TestArrayAssignmentWithSections(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nA(2:N-1) = B(1:N-2) + B(3:N)\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	lhs := s.Lhs.(*ast.CallOrIndex)
	sec, ok := lhs.Args[0].(*ast.Section)
	if !ok {
		t.Fatalf("lhs arg = %T, want Section", lhs.Args[0])
	}
	if sec.Lo == nil || sec.Hi == nil {
		t.Error("section bounds missing")
	}
}

func TestFullSectionColon(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nA(:, 1) = B(:, 2)\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	lhs := s.Lhs.(*ast.CallOrIndex)
	sec, ok := lhs.Args[0].(*ast.Section)
	if !ok {
		t.Fatalf("arg 0 = %T", lhs.Args[0])
	}
	if sec.Lo != nil || sec.Hi != nil {
		t.Error("full section should have nil bounds")
	}
}

func TestWholeArrayAssignment(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nA = B + C\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	if _, ok := s.Lhs.(*ast.Ident); !ok {
		t.Errorf("lhs = %T", s.Lhs)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nX = 1 + 2 * 3\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	add := s.Rhs.(*ast.BinaryExpr)
	if add.Op != token.PLUS {
		t.Fatalf("top op = %v, want +", add.Op)
	}
	mul := add.Y.(*ast.BinaryExpr)
	if mul.Op != token.STAR {
		t.Errorf("inner op = %v, want *", mul.Op)
	}
}

func TestPowerRightAssociative(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nX = A ** B ** C\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	top := s.Rhs.(*ast.BinaryExpr)
	if top.Op != token.POW {
		t.Fatalf("top = %v", top.Op)
	}
	if _, ok := top.Y.(*ast.BinaryExpr); !ok {
		t.Error("** should be right-associative: right child must be BinaryExpr")
	}
}

func TestUnaryMinus(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nX = -Y + 3\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	add := s.Rhs.(*ast.BinaryExpr)
	if _, ok := add.X.(*ast.UnaryExpr); !ok {
		t.Errorf("left of + is %T, want UnaryExpr", add.X)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	// A .OR. B .AND. C  parses as  A .OR. (B .AND. C)
	prog := mustParse(t, "PROGRAM d\nX = A .OR. B .AND. C\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	or := s.Rhs.(*ast.BinaryExpr)
	if or.Op != token.OR {
		t.Fatalf("top = %v", or.Op)
	}
	and := or.Y.(*ast.BinaryExpr)
	if and.Op != token.AND {
		t.Errorf("right = %v", and.Op)
	}
}

func TestIntrinsicCallExpr(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nS = SUM(A * B)\nEND")
	s := prog.Body[0].(*ast.AssignStmt)
	c := s.Rhs.(*ast.CallOrIndex)
	if c.Name != "SUM" || len(c.Args) != 1 {
		t.Errorf("call = %+v", c)
	}
}

func TestCshiftCall(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nB = CSHIFT(A, 1, 2)\nEND")
	c := prog.Body[0].(*ast.AssignStmt).Rhs.(*ast.CallOrIndex)
	if c.Name != "CSHIFT" || len(c.Args) != 3 {
		t.Errorf("call = %+v", c)
	}
}

func TestPrintStatement(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nPRINT *, 'result', X\nEND")
	ps := prog.Body[0].(*ast.PrintStmt)
	if len(ps.Args) != 2 {
		t.Errorf("args = %d", len(ps.Args))
	}
}

func TestCallStatement(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nCALL INIT_RANDOM(A, 42)\nEND")
	cs := prog.Body[0].(*ast.CallStmt)
	if cs.Name != "INIT_RANDOM" || len(cs.Args) != 2 {
		t.Errorf("call = %+v", cs)
	}
}

func TestStopAndContinue(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nCONTINUE\nSTOP\nEND")
	if _, ok := prog.Body[0].(*ast.ContinueStmt); !ok {
		t.Errorf("stmt 0 = %T", prog.Body[0])
	}
	if _, ok := prog.Body[1].(*ast.StopStmt); !ok {
		t.Errorf("stmt 1 = %T", prog.Body[1])
	}
}

func TestContinuedExpression(t *testing.T) {
	src := "PROGRAM d\nX = 1 + 2 + &\n    3 + 4\nEND"
	prog := mustParse(t, src)
	if len(prog.Body) != 1 {
		t.Errorf("body = %d", len(prog.Body))
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse("PROGRAM d\nX = )\nEND")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should mention line 2: %v", err)
	}
}

func TestMissingEnd(t *testing.T) {
	_, err := Parse("PROGRAM d\nX = 1\n")
	if err == nil {
		t.Fatal("want error for missing END")
	}
}

func TestErrorRecoveryMultipleErrors(t *testing.T) {
	_, err := Parse("PROGRAM d\nX = )\nY = )\nEND")
	if err == nil {
		t.Fatal("want errors")
	}
	if list, ok := err.(ErrorList); ok {
		if len(list) < 2 {
			t.Errorf("want >= 2 errors after recovery, got %d", len(list))
		}
	}
}

func TestStatementLabel(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\n10 CONTINUE\nEND")
	if _, ok := prog.Body[0].(*ast.ContinueStmt); !ok {
		t.Errorf("stmt = %T", prog.Body[0])
	}
}

func TestWriteAsPrint(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nWRITE(*,*) X, Y\nEND")
	ps := prog.Body[0].(*ast.PrintStmt)
	if len(ps.Args) != 2 {
		t.Errorf("args = %d", len(ps.Args))
	}
}

func TestSemicolonSeparatedStatements(t *testing.T) {
	prog := mustParse(t, "PROGRAM d\nX = 1; Y = 2\nEND")
	if len(prog.Body) != 2 {
		t.Errorf("body = %d", len(prog.Body))
	}
}
