package ast

import (
	"strings"
	"testing"

	"hpfperf/internal/token"
)

func TestBaseTypeStringsAndBytes(t *testing.T) {
	if TReal.String() != "REAL" || TDouble.String() != "DOUBLE PRECISION" {
		t.Error("type names")
	}
	if TReal.Bytes() != 4 || TDouble.Bytes() != 8 || TInteger.Bytes() != 4 {
		t.Error("type sizes")
	}
}

func TestExprString(t *testing.T) {
	e := &BinaryExpr{
		Op: token.PLUS,
		X:  &CallOrIndex{Name: "A", Args: []Expr{&Ident{Name: "I"}}},
		Y:  &RealLit{Value: 2.5, Text: "2.5"},
	}
	if got := ExprString(e); got != "(A(I) + 2.5)" {
		t.Errorf("expr string = %q", got)
	}
	sec := &Section{Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "N"}}
	if got := ExprString(sec); got != "1:N" {
		t.Errorf("section string = %q", got)
	}
	if ExprString(&LogicalLit{Value: true}) != ".TRUE." {
		t.Error("logical literal string")
	}
	not := &UnaryExpr{Op: token.NOT, X: &Ident{Name: "B"}}
	if got := ExprString(not); !strings.Contains(got, ".NOT.") {
		t.Errorf("not string = %q", got)
	}
}

func TestStmtString(t *testing.T) {
	s := &ForallStmt{
		Indices: []ForallIndex{{Name: "I", Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "N"}}},
		Mask:    &BinaryExpr{Op: token.GT, X: &Ident{Name: "X"}, Y: &IntLit{Value: 0}},
	}
	got := StmtString(s)
	if !strings.Contains(got, "FORALL") || !strings.Contains(got, "I=1:N") {
		t.Errorf("forall string = %q", got)
	}
	as := &AssignStmt{Lhs: &Ident{Name: "X"}, Rhs: &IntLit{Value: 3}}
	if StmtString(as) != "X = 3" {
		t.Errorf("assign string = %q", StmtString(as))
	}
	do := &DoStmt{Var: "I", From: &IntLit{Value: 1}, To: &IntLit{Value: 9}, Step: &IntLit{Value: 2}}
	if got := StmtString(do); !strings.Contains(got, "DO I = 1, 9, 2") {
		t.Errorf("do string = %q", got)
	}
}

func TestInspectVisitsAll(t *testing.T) {
	prog := &Program{
		Name: "T",
		Decls: []Decl{
			&TypeDecl{Type: TReal, Entities: []Entity{{Name: "A", Dims: []ArrayBound{{Hi: &IntLit{Value: 10}}}}}},
			&ParameterDecl{Names: []string{"N"}, Values: []Expr{&IntLit{Value: 4}}},
		},
		Directives: []Directive{
			&ProcessorsDir{Name: "P", Shape: []Expr{&IntLit{Value: 4}}},
			&DistributeDir{Target: "A", Formats: []DistFormat{{Kind: DistBlock}}},
		},
		Body: []Stmt{
			&IfStmt{
				Cond: &BinaryExpr{Op: token.GT, X: &Ident{Name: "X"}, Y: &IntLit{Value: 0}},
				Then: []Stmt{&AssignStmt{Lhs: &Ident{Name: "Y"}, Rhs: &IntLit{Value: 1}}},
				Else: []Stmt{&AssignStmt{Lhs: &Ident{Name: "Y"}, Rhs: &IntLit{Value: 2}}},
			},
			&DoStmt{Var: "I", From: &IntLit{Value: 1}, To: &IntLit{Value: 10},
				Body: []Stmt{
					&ForallStmt{
						Indices: []ForallIndex{{Name: "K", Lo: &IntLit{Value: 1}, Hi: &IntLit{Value: 10}}},
						Body: []Stmt{&AssignStmt{
							Lhs: &CallOrIndex{Name: "A", Args: []Expr{&Ident{Name: "K"}}},
							Rhs: &IntLit{Value: 0},
						}},
					},
				}},
			&WhereStmt{
				Mask:     &Ident{Name: "M"},
				Body:     []Stmt{&AssignStmt{Lhs: &Ident{Name: "A"}, Rhs: &IntLit{Value: 0}}},
				ElseBody: []Stmt{&AssignStmt{Lhs: &Ident{Name: "A"}, Rhs: &IntLit{Value: 1}}},
			},
			&PrintStmt{Args: []Expr{&Ident{Name: "Y"}}},
		},
	}
	idents := map[string]int{}
	ints := 0
	Inspect(prog, func(n Node) bool {
		switch x := n.(type) {
		case *Ident:
			idents[x.Name]++
		case *IntLit:
			ints++
		}
		return true
	})
	for _, want := range []string{"X", "Y", "K", "M"} {
		if idents[want] == 0 {
			t.Errorf("Inspect missed ident %s", want)
		}
	}
	if ints < 10 {
		t.Errorf("Inspect visited only %d int literals", ints)
	}
}

func TestInspectPrune(t *testing.T) {
	e := &BinaryExpr{Op: token.PLUS, X: &Ident{Name: "A"}, Y: &Ident{Name: "B"}}
	seen := 0
	Inspect(e, func(n Node) bool {
		seen++
		return false // prune at the root
	})
	if seen != 1 {
		t.Errorf("prune failed, visited %d nodes", seen)
	}
}

func TestDistKindString(t *testing.T) {
	if DistBlock.String() != "BLOCK" || DistCyclic.String() != "CYCLIC" || DistStar.String() != "*" {
		t.Error("dist kind names")
	}
}

func TestPositions(t *testing.T) {
	id := &Ident{Name: "X", NamePos: token.Pos{Line: 3, Col: 7}}
	if id.Pos().Line != 3 {
		t.Error("position lost")
	}
	as := &AssignStmt{Lhs: id, Rhs: &IntLit{Value: 1}}
	if as.Pos().Line != 3 {
		t.Error("assign position should come from LHS")
	}
}
