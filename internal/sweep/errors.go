package sweep

import (
	"errors"
	"fmt"
)

// PanicError is a recovered panic from the compilation pipeline, the
// interpretation engine, or a sweep point body. It replaces the old
// string-matched "internal panic" errors: callers classify it with
// errors.As (hpfserve maps it to HTTP 500) instead of substring
// matching. Panics are treated as transient for retry purposes — a
// point that panicked gets its bounded retries before the sweep gives
// up on it.
type PanicError struct {
	// Stage names where the panic was recovered ("compile",
	// "interpret", "sweep point 12", ...).
	Stage string
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal panic: %v", e.Stage, e.Value)
}

// Transient marks the error retryable (see IsTransient).
func (e *PanicError) Transient() bool { return true }

// IsTransient reports whether err is marked retryable: any error in
// its chain implementing `Transient() bool` and returning true
// (faults.InjectedError, PanicError). Deterministic pipeline errors
// (parse/compile/interpret failures) and context errors are permanent —
// retrying them would re-derive the same failure.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}
