package ipsc

import (
	"context"

	"hpfperf/internal/sysmodel"
)

// This file reproduces the paper's off-line system characterization
// methodology (§4.4): "The communication component was parameterized
// using benchmarking runs. These parameters abstracted both low-level
// primitives as well as the high-level collective communication library
// used by the compiler."
//
// Calibrate runs the simulator's collective library over a range of
// message sizes and fits linear cost models t = A + B·bytes, which the
// interpretation engine then uses as the SAU communication parameters.

// LinModel is a fitted linear cost model in microseconds per operation.
type LinModel struct {
	A float64 // fixed cost (startup, tree stages)
	B float64 // per-byte cost
}

// Eval returns the modeled cost for a payload of n bytes.
func (m LinModel) Eval(n int) float64 {
	if n < 0 {
		n = 0
	}
	return m.A + m.B*float64(n)
}

// Piecewise is a two-segment linear model capturing the short/long
// message protocol switch of the NX communication layer.
type Piecewise struct {
	Short     LinModel
	Long      LinModel
	Threshold int
}

// Eval returns the modeled cost for a payload of n bytes.
func (p Piecewise) Eval(n int) float64 {
	if n <= p.Threshold {
		return p.Short.Eval(n)
	}
	return p.Long.Eval(n)
}

// CommLibrary holds the benchmarked models of the collective library for
// one machine configuration (number of nodes).
type CommLibrary struct {
	Nodes int
	// Shift is the nearest-neighbour exchange (halo / cshift transfer)
	// as a function of the per-node strip volume.
	Shift Piecewise
	// Reduce is the global combining tree (sum/product/maxloc) as a
	// function of the element payload (always short messages).
	Reduce LinModel
	// Bcast is the one-to-all broadcast as a function of payload.
	Bcast Piecewise
	// Gather is the all-to-all concatenation as a function of the total
	// array volume.
	Gather Piecewise
}

// fitLine least-squares fits y = A + B·x.
func fitLine(xs, ys []float64) LinModel {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinModel{A: sy / n}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	return LinModel{A: a, B: b}
}

// Calibrate benchmarks the collective library of the iPSC/860 (see
// CalibrateMachine).
func Calibrate(n int) (*CommLibrary, error) {
	return CalibrateMachine(nil, n)
}

// CalibrateMachine benchmarks the collective library on a noise-free
// simulated machine (base nil = iPSC/860) with n nodes and fits the
// linear models. It mirrors the paper's one-time off-line system
// abstraction step.
func CalibrateMachine(base *sysmodel.Machine, n int) (*CommLibrary, error) {
	return CalibrateMachineContext(context.Background(), base, n)
}

// CalibrateMachineContext is CalibrateMachine with cooperative
// cancellation between benchmark points, so a cancelled request does
// not pay for the remaining characterization sweep.
func CalibrateMachineContext(ctx context.Context, base *sysmodel.Machine, n int) (*CommLibrary, error) {
	cfg := DefaultConfig(n)
	cfg.Base = base
	cfg.PerturbAmp = 0
	cfg.TimerResUS = 0
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	lib := &CommLibrary{Nodes: n}
	if n == 1 {
		return lib, nil // single node: all collectives are free
	}
	threshold := m.Node().C.LongThresholdBytes
	shortSizes := []int{4, 16, 48, 96}
	longSizes := []int{128, 512, 4096, 16384, 65536}

	time := func(f func()) float64 {
		m.NewRun()
		f()
		return m.MaxTime()
	}

	fitBoth := func(bench func(s int) float64) Piecewise {
		var xs, ys []float64
		for _, s := range shortSizes {
			xs = append(xs, float64(s))
			ys = append(ys, bench(s))
		}
		short := fitLine(xs, ys)
		xs, ys = nil, nil
		for _, s := range longSizes {
			xs = append(xs, float64(s))
			ys = append(ys, bench(s))
		}
		return Piecewise{Short: short, Long: fitLine(xs, ys), Threshold: threshold}
	}

	lib.Shift = fitBoth(func(s int) float64 {
		return time(func() {
			m.ShiftExchange(
				func(rank int) int { return s },
				func(rank int) int {
					if rank+1 < n {
						return rank + 1
					}
					return -1
				})
		})
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var xs, ys []float64
	for _, s := range []int{4, 8, 16, 32} {
		xs = append(xs, float64(s))
		ys = append(ys, time(func() { m.AllReduce(s) }))
	}
	lib.Reduce = fitLine(xs, ys)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	lib.Bcast = fitBoth(func(s int) float64 {
		return time(func() { m.Broadcast(0, s) })
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	lib.Gather = fitBoth(func(s int) float64 {
		local := s / n
		if local < 1 {
			local = 1
		}
		return time(func() {
			m.AllGatherV(func(rank int) int { return local })
		})
	})
	// The gather model is indexed by total volume; rescale thresholds so
	// small totals still use the short fit.
	lib.Gather.Threshold = threshold * n
	return lib, nil
}
