package scanner

import (
	"os"
	"path/filepath"
	"testing"

	"hpfperf/internal/suite"
	"hpfperf/internal/token"
)

// seedCorpus gathers the checked-in example programs and the generated
// validation-suite sources as fuzz seeds, so mutation starts from real
// HPF/Fortran 90D rather than random bytes.
func seedCorpus(f *testing.F) {
	f.Helper()
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("seed %s: %v", p, err)
		}
		f.Add(string(b))
	}
	for _, prog := range suite.All() {
		f.Add(prog.Source(prog.Sizes[0], prog.Procs[0]))
	}
	// Edge shapes that line/column arithmetic tends to get wrong.
	f.Add("")
	f.Add("\n")
	f.Add("      X = 1.0E")
	f.Add("!HPF$ DISTRIBUTE")
	f.Add("      S = 'unterminated")
	f.Add("      X = 1.\r\n      Y = 2.")
}

// FuzzScanner asserts the lexer never panics and that every token and
// diagnostic it produces carries a valid source position.
func FuzzScanner(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, errs := ScanAll(src)
		for _, tok := range toks {
			if tok.Pos.Line < 1 {
				t.Fatalf("token %v at invalid line %d", tok.Kind, tok.Pos.Line)
			}
		}
		for _, e := range errs {
			if e.Pos.Line < 1 {
				t.Fatalf("diagnostic %q at invalid line %d", e.Msg, e.Pos.Line)
			}
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("token stream does not end in EOF (%d tokens)", len(toks))
		}
	})
}
