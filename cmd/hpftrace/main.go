// Command hpftrace renders a ParaGraph-format interpretation trace (as
// produced by hpfpc -trace) as a per-processor utilization timeline — a
// text-mode stand-in for the ParaGraph visualization package the paper
// feeds its traces to.
//
// Usage:
//
//	hpfpc -prog "Laplace (Blk-X)" -trace lap.trc
//	hpftrace lap.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"hpfperf/internal/trace"
)

func main() {
	width := flag.Int("width", 72, "timeline width in buckets")
	summary := flag.Bool("summary", false, "print per-processor activity totals instead")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpftrace [-width N] [-summary] trace-file")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Parse(f)
	if err != nil {
		fatal(err)
	}
	if *summary {
		st := tr.Summarize()
		fmt.Printf("%d processors, %0.1fus total\n", st.Procs, st.TotalUS)
		for p := 0; p < st.Procs; p++ {
			busyPct, commPct := 0.0, 0.0
			if st.TotalUS > 0 {
				busyPct = st.BusyUS[p] / st.TotalUS * 100
				commPct = st.CommUS[p] / st.TotalUS * 100
			}
			fmt.Printf("  P%-3d busy %6.1fus (%5.1f%%)  comm %6.1fus (%5.1f%%)\n",
				p, st.BusyUS[p], busyPct, st.CommUS[p], commPct)
		}
		return
	}
	fmt.Print(tr.Gantt(*width))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpftrace:", err)
	os.Exit(1)
}
