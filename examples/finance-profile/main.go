// Application performance debugging (paper §5.2.2): profile the parallel
// stock option pricing model phase by phase using only the interpretive
// framework — no instrumentation, no execution, no running application —
// reproducing Figures 6 and 7.
package main

import (
	"fmt"
	"log"
	"strings"

	"hpfperf"
)

func main() {
	fin, err := hpfperf.SuiteProgramByName("Finance")
	if err != nil {
		log.Fatal(err)
	}
	src := fin.Source(256, 4)

	prog, err := hpfperf.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := hpfperf.Predict(prog, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Locate the two phases of Figure 6 in the source.
	p1 := lineOf(src, "PHASE 1")
	p2 := lineOf(src, "PHASE 2")
	end := lineOf(src, "CHK =")
	fmt.Print(pred.PhaseProfile(
		"Stock Option Pricing — Interpreted Performance Profile (Procs = 4; Size = 256)",
		[]hpfperf.Phase{
			{Name: "Phase 1", FromLine: p1, ToLine: p2 - 1},
			{Name: "Phase 2", FromLine: p2, ToLine: end - 1},
		}))

	// The same information at finer granularity: the hottest lines.
	fmt.Println("\nhottest source lines:")
	fmt.Print(pred.HotLines(5))

	// Conclusion mirrors the paper: Phase 1 (lattice creation) carries all
	// the communication; Phase 2 (call price computation) is pure local
	// computation.
	c1, m1, _ := pred.PhaseMetrics(p1, p2-1)
	c2, m2, _ := pred.PhaseMetrics(p2, end-1)
	fmt.Printf("\nPhase 1: comp %.1fus comm %.1fus — the shift communication bottleneck\n", c1, m1)
	fmt.Printf("Phase 2: comp %.1fus comm %.1fus — communication-free\n", c2, m2)
}

func lineOf(src, marker string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	log.Fatalf("marker %q not found", marker)
	return 0
}
