package hir

import (
	"math"

	"hpfperf/internal/ast"
	"hpfperf/internal/sem"
)

// EvalConst abstractly evaluates a scalar HIR expression against an
// abstract scalar store (§4.2 definition tracing: a critical variable is
// "a variable whose value effects the flow of execution, e.g. a loop
// limit"). lookup resolves scalar references; ok is false when the value
// depends on run-time data (array elements, unresolved scalars, division
// by an unknown zero, ...). Both the interpretation engine (package core)
// and the static-analysis tracer (package analysis) evaluate through this
// one definition so their notions of "statically determinable" agree.
func EvalConst(e Expr, lookup func(name string) (sem.Value, bool)) (sem.Value, bool) {
	switch x := e.(type) {
	case *Const:
		return x.Val, true
	case *Ref:
		return lookup(x.Name)
	case *Elem:
		return sem.Value{}, false
	case *Un:
		v, ok := EvalConst(x.X, lookup)
		if !ok {
			return v, false
		}
		switch x.Op {
		case OpNeg:
			if v.Type == ast.TInteger {
				return sem.IntVal(-v.I), true
			}
			return sem.RealVal(-v.AsFloat()), true
		case OpNot:
			return sem.LogicalVal(!v.B), true
		}
		return sem.Value{}, false
	case *Bin:
		a, ok := EvalConst(x.X, lookup)
		if !ok {
			return a, false
		}
		b, ok := EvalConst(x.Y, lookup)
		if !ok {
			return b, false
		}
		return evalBin(x, a, b)
	case *Intr:
		args := make([]sem.Value, len(x.Args))
		for i, a := range x.Args {
			v, ok := EvalConst(a, lookup)
			if !ok {
				return v, false
			}
			args[i] = v
		}
		return evalIntr(x.Name, args)
	}
	return sem.Value{}, false
}

func evalBin(x *Bin, a, b sem.Value) (sem.Value, bool) {
	switch x.Op {
	case OpAnd:
		return sem.LogicalVal(a.B && b.B), true
	case OpOr:
		return sem.LogicalVal(a.B || b.B), true
	}
	if x.Op.IsCompare() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case OpEq:
			return sem.LogicalVal(af == bf), true
		case OpNe:
			return sem.LogicalVal(af != bf), true
		case OpLt:
			return sem.LogicalVal(af < bf), true
		case OpLe:
			return sem.LogicalVal(af <= bf), true
		case OpGt:
			return sem.LogicalVal(af > bf), true
		case OpGe:
			return sem.LogicalVal(af >= bf), true
		}
	}
	if x.Typ == ast.TInteger {
		ai, bi := a.AsInt(), b.AsInt()
		switch x.Op {
		case OpAdd:
			return sem.IntVal(ai + bi), true
		case OpSub:
			return sem.IntVal(ai - bi), true
		case OpMul:
			return sem.IntVal(ai * bi), true
		case OpDiv:
			if bi == 0 {
				return sem.Value{}, false
			}
			return sem.IntVal(ai / bi), true
		case OpPow:
			if bi < 0 {
				return sem.IntVal(0), true
			}
			r := int64(1)
			for k := int64(0); k < bi; k++ {
				r *= ai
			}
			return sem.IntVal(r), true
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch x.Op {
	case OpAdd:
		return sem.RealVal(af + bf), true
	case OpSub:
		return sem.RealVal(af - bf), true
	case OpMul:
		return sem.RealVal(af * bf), true
	case OpDiv:
		return sem.RealVal(af / bf), true
	case OpPow:
		return sem.RealVal(math.Pow(af, bf)), true
	}
	return sem.Value{}, false
}

func evalIntr(name string, args []sem.Value) (sem.Value, bool) {
	f1 := func(fn func(float64) float64) (sem.Value, bool) {
		return sem.RealVal(fn(args[0].AsFloat())), true
	}
	switch name {
	case "ABS":
		if args[0].Type == ast.TInteger {
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return sem.IntVal(v), true
		}
		return f1(math.Abs)
	case "SQRT":
		return f1(math.Sqrt)
	case "EXP":
		return f1(math.Exp)
	case "LOG":
		return f1(math.Log)
	case "SIN":
		return f1(math.Sin)
	case "COS":
		return f1(math.Cos)
	case "TAN":
		return f1(math.Tan)
	case "ATAN":
		return f1(math.Atan)
	case "INT":
		return sem.IntVal(args[0].AsInt()), true
	case "REAL", "FLOAT", "DBLE":
		return sem.RealVal(args[0].AsFloat()), true
	case "MOD":
		if args[0].Type == ast.TInteger && args[1].Type == ast.TInteger {
			if args[1].I == 0 {
				return sem.Value{}, false
			}
			return sem.IntVal(args[0].I % args[1].I), true
		}
		return sem.RealVal(math.Mod(args[0].AsFloat(), args[1].AsFloat())), true
	case "MIN":
		out := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() < out.AsFloat() {
				out = a
			}
		}
		return out, true
	case "MAX":
		out := args[0]
		for _, a := range args[1:] {
			if a.AsFloat() > out.AsFloat() {
				out = a
			}
		}
		return out, true
	}
	return sem.Value{}, false
}

// ScalarRefs lists the scalar names referenced anywhere in an expression,
// including inside array subscripts (for critical-variable diagnostics).
func ScalarRefs(e Expr) []string {
	var out []string
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Ref:
			out = append(out, x.Name)
		case *Bin:
			walk(x.X)
			walk(x.Y)
		case *Un:
			walk(x.X)
		case *Intr:
			for _, a := range x.Args {
				walk(a)
			}
		case *Elem:
			for _, s := range x.Subs {
				walk(s)
			}
		}
	}
	walk(e)
	return out
}
