// Command hpftrace renders a ParaGraph-format interpretation trace (as
// produced by hpfpc -trace) as a per-processor utilization timeline — a
// text-mode stand-in for the ParaGraph visualization package the paper
// feeds its traces to. With -spans it instead renders an observability
// span tree (as written by hpfpc/hpfexp -trace-out, or the "trace"
// field of an X-HPF-Trace response) through the same gantt path: one
// lane per nesting depth, like a flame graph on its side.
//
// Usage:
//
//	hpfpc -prog "Laplace (Blk-X)" -trace lap.trc
//	hpftrace lap.trc
//	hpfpc -prog "Laplace (Blk-X)" -trace-out lap.span.json
//	hpftrace -spans lap.span.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hpfperf/internal/obs"
	"hpfperf/internal/trace"
)

func main() {
	width := flag.Int("width", 72, "timeline width in buckets")
	summary := flag.Bool("summary", false, "print per-processor activity totals instead")
	spans := flag.Bool("spans", false, "input is a JSON span tree (from -trace-out or an X-HPF-Trace response), not a PICL trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpftrace [-width N] [-summary] [-spans] trace-file")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if *spans {
		tree, err := parseSpanTree(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.RenderSpanTree(tree))
		fmt.Print(trace.FromSpanTree(tree).Gantt(*width))
		return
	}
	tr, err := trace.Parse(f)
	if err != nil {
		fatal(err)
	}
	if *summary {
		st := tr.Summarize()
		fmt.Printf("%d processors, %0.1fus total\n", st.Procs, st.TotalUS)
		for p := 0; p < st.Procs; p++ {
			busyPct, commPct := 0.0, 0.0
			if st.TotalUS > 0 {
				busyPct = st.BusyUS[p] / st.TotalUS * 100
				commPct = st.CommUS[p] / st.TotalUS * 100
			}
			fmt.Printf("  P%-3d busy %6.1fus (%5.1f%%)  comm %6.1fus (%5.1f%%)\n",
				p, st.BusyUS[p], busyPct, st.CommUS[p], commPct)
		}
		return
	}
	fmt.Print(tr.Gantt(*width))
}

// parseSpanTree accepts either a bare obs.Tree document or a full API
// response that carries the tree in its "trace" field.
func parseSpanTree(f *os.File) (*obs.Tree, error) {
	var envelope struct {
		Trace *obs.Tree `json:"trace"`
		obs.Tree
	}
	if err := json.NewDecoder(f).Decode(&envelope); err != nil {
		return nil, fmt.Errorf("parsing span tree: %w", err)
	}
	if envelope.Trace != nil {
		return envelope.Trace, nil
	}
	if envelope.Root == nil {
		return nil, fmt.Errorf("no span tree in %s (want a -trace-out file or a response with a trace field)", f.Name())
	}
	return &envelope.Tree, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpftrace:", err)
	os.Exit(1)
}
