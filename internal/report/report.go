// Package report implements the Output Module of the interpretive
// framework (§3.4, §4.2): cumulative execution-time profiles with their
// computation / communication / overhead breakup, per-AAU and sub-AAG
// views, per-source-line queries, and plain-text tables and charts used
// by the experiment harnesses.
package report

import (
	"fmt"
	"sort"
	"strings"

	"hpfperf/internal/core"
)

// FormatUS renders a microsecond quantity with an adaptive unit.
func FormatUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.3fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.1fus", us)
	}
}

// Profile renders the generic performance profile of an interpretation
// report: the total estimate and its breakup.
func Profile(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Program %s on %d processor(s)\n", rep.Program, rep.Procs)
	fmt.Fprintf(&b, "Estimated execution time: %s\n", FormatUS(rep.TotalUS()))
	t := rep.TotalUS()
	if t <= 0 {
		t = 1
	}
	fmt.Fprintf(&b, "  computation:   %12s  (%5.1f%%)\n", FormatUS(rep.Total.CompUS), rep.Total.CompUS/t*100)
	fmt.Fprintf(&b, "  communication: %12s  (%5.1f%%)\n", FormatUS(rep.Total.CommUS), rep.Total.CommUS/t*100)
	fmt.Fprintf(&b, "  overhead:      %12s  (%5.1f%%)\n", FormatUS(rep.Total.OvhdUS), rep.Total.OvhdUS/t*100)
	for _, w := range rep.Warnings {
		fmt.Fprintf(&b, "  warning: %s\n", w)
	}
	return b.String()
}

// Phase names a contiguous source-line region for per-phase profiling
// (the application-phase analysis of §5.2.2).
type Phase struct {
	Name     string
	FromLine int
	ToLine   int
}

// PhaseBreakdown is the interpreted profile of one phase.
type PhaseBreakdown struct {
	Phase   string
	Metrics core.Metrics
}

// PhaseProfile computes per-phase breakdowns from the line-indexed
// metrics of a report.
func PhaseProfile(rep *core.Report, phases []Phase) []PhaseBreakdown {
	out := make([]PhaseBreakdown, 0, len(phases))
	for _, p := range phases {
		out = append(out, PhaseBreakdown{Phase: p.Name, Metrics: rep.LineRangeMetrics(p.FromLine, p.ToLine)})
	}
	return out
}

// RenderPhaseProfile renders per-phase stacked breakdowns (Figure 7).
func RenderPhaseProfile(title string, phases []PhaseBreakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxT := 0.0
	for _, p := range phases {
		if t := p.Metrics.TotalUS(); t > maxT {
			maxT = t
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	const width = 44
	for _, p := range phases {
		m := p.Metrics
		fmt.Fprintf(&b, "%-10s total %10s  comp %10s  comm %10s  ovhd %10s\n",
			p.Phase, FormatUS(m.TotalUS()), FormatUS(m.CompUS), FormatUS(m.CommUS), FormatUS(m.OvhdUS))
		nComp := int(m.CompUS / maxT * width)
		nComm := int(m.CommUS / maxT * width)
		nOvhd := int(m.OvhdUS / maxT * width)
		fmt.Fprintf(&b, "%-10s [%s%s%s]\n", "",
			strings.Repeat("#", nComp), strings.Repeat("~", nComm), strings.Repeat(".", nOvhd))
	}
	b.WriteString("legend: # computation, ~ communication, . overhead\n")
	return b.String()
}

// CommTable renders the communication table of the SAAG with its
// interpreted volumes and costs.
func CommTable(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-10s %-12s %6s %12s %12s %10s\n",
		"id", "kind", "array", "line", "bytes/op", "cost/op", "count")
	for _, rec := range rep.SAAG.Table {
		fmt.Fprintf(&b, "%-4d %-10s %-12s %6d %12.0f %12s %10.0f\n",
			rec.ID, rec.Kind, rec.Array, rec.Line, rec.Bytes, FormatUS(rec.CostUS), rec.Count)
	}
	return b.String()
}

// AAGView renders the interpreted AAG tree down to the given depth
// (0 = unlimited).
func AAGView(rep *core.Report, maxDepth int) string {
	var b strings.Builder
	var walk func(a *core.AAU, depth int)
	walk = func(a *core.AAU, depth int) {
		if maxDepth > 0 && depth > maxDepth {
			return
		}
		m := a.Metrics
		fmt.Fprintf(&b, "%s[%s] %-30s %10s (comp %s, comm %s, ovhd %s)\n",
			strings.Repeat("  ", depth), a.Kind, a.Label,
			FormatUS(m.TotalUS()), FormatUS(m.CompUS), FormatUS(m.CommUS), FormatUS(m.OvhdUS))
		for _, c := range a.Children {
			walk(c, depth+1)
		}
	}
	walk(rep.SAAG.Root, 0)
	return b.String()
}

// AAUQuery renders the cumulative metrics of the sub-AAG rooted at the
// AAU with the given ID (the per-AAU / sub-AAG query of §3.4).
func AAUQuery(rep *core.Report, id int) string {
	a := rep.SAAG.FindAAU(id)
	if a == nil {
		return fmt.Sprintf("AAU %d: not found", id)
	}
	m := core.SubgraphMetrics(a)
	return fmt.Sprintf("AAU %d [%s] %s (line %d): total %s (comp %s, comm %s, ovhd %s), clock %s",
		a.ID, a.Kind, a.Label, a.Line,
		FormatUS(m.TotalUS()), FormatUS(m.CompUS), FormatUS(m.CommUS), FormatUS(m.OvhdUS),
		FormatUS(a.ClockUS))
}

// LineQuery renders the metrics of one source line.
func LineQuery(rep *core.Report, line int) string {
	m := rep.LineMetrics(line)
	return fmt.Sprintf("line %d: total %s (comp %s, comm %s, ovhd %s, execs %.0f)",
		line, FormatUS(m.TotalUS()), FormatUS(m.CompUS), FormatUS(m.CommUS), FormatUS(m.OvhdUS), m.Execs)
}

// HotLines lists the top-n source lines by total time (performance
// debugging aid).
func HotLines(rep *core.Report, n int) string {
	type lm struct {
		line int
		m    *core.Metrics
	}
	var all []lm
	for l, m := range rep.ByLine {
		all = append(all, lm{l, m})
	}
	// Ties break on line number: ByLine is a map, so without a total
	// order two equally-hot lines would render in random order from one
	// call to the next.
	sort.Slice(all, func(i, j int) bool {
		if all[i].m.TotalUS() != all[j].m.TotalUS() {
			return all[i].m.TotalUS() > all[j].m.TotalUS()
		}
		return all[i].line < all[j].line
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	var b strings.Builder
	for _, e := range all {
		fmt.Fprintf(&b, "%s\n", LineQuery(rep, e.line))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Generic tables and charts

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one line of an XY chart.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart renders series as a text-mode scatter/line chart (used for the
// estimated-vs-measured figures).
func Chart(title, xlabel, ylabel string, series []Series) string {
	const w, h = 64, 18
	minX, maxX := series[0].X[0], series[0].X[0]
	minY, maxY := 0.0, series[0].Y[0]
	for _, s := range series {
		for i := range s.X {
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := "ox+*sdvA"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(h-1))
			row := h - 1 - cy
			grid[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (max %.4g)\n", ylabel, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, " %-10.4g%*s%.4g  (%s)\n", minX, w-20, "", maxX, xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}

// Bars renders labeled horizontal bars (used for Figure 8).
func Bars(title, unit string, labels []string, values []float64) string {
	const width = 48
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, l := range labels {
		n := int(values[i] / maxV * width)
		fmt.Fprintf(&b, "%-22s %8.1f %s |%s\n", l, values[i], unit, strings.Repeat("#", n))
	}
	return b.String()
}
