// Package e2e boots the full hpfserve stack in-process and drives it
// through the public hpfclient — the same path an external consumer
// takes: client → HTTP → gate/breaker → pipeline → response. It pins
// the end-to-end contracts no single-package test can: every route
// round-trips through the client types, traced requests return
// well-formed span trees, and a drained server leaks no goroutines.
package e2e

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hpfperf"
	"hpfperf/hpfclient"
	"hpfperf/internal/faults"
	"hpfperf/internal/obs"
	"hpfperf/internal/server"
)

// laplace returns the suite's Laplace solver (block-X decomposition) —
// the paper's running example — at a modest size on 4 processors.
var laplace = sync.OnceValue(func() string {
	p, err := hpfperf.SuiteProgramByName("Laplace (Blk-X)")
	if err != nil {
		panic(err)
	}
	return p.Source(64, 4)
})

// harness is one in-process server plus a client pointed at it.
type harness struct {
	srv *server.Server
	ts  *httptest.Server
	cli *hpfclient.Client
}

func newHarness(t *testing.T, cfg server.Config, clientCfg hpfclient.Config) *harness {
	t.Helper()
	// The harness plays a trusted deployment where the client may read
	// the trace ring; hpfserve itself only mounts /v1/traces on the
	// isolated -debug-addr listener (server.TracesHandler).
	cfg.ExposeTraces = true
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	clientCfg.BaseURL = ts.URL
	return &harness{srv: srv, ts: ts, cli: hpfclient.New(clientCfg)}
}

// checkTree asserts the span-tree invariants the API promises: a tree
// is present, has a single root named for the route, no orphan spans,
// and no child outlives its parent's duration budget.
func checkTree(t *testing.T, tree *obs.Tree, wantRoot string) {
	t.Helper()
	if tree == nil || tree.Root == nil {
		t.Fatalf("no span tree on a traced %s response", wantRoot)
	}
	if tree.Orphans != 0 {
		t.Errorf("%s trace has %d orphan spans", wantRoot, tree.Orphans)
	}
	if tree.Root.Name != wantRoot {
		t.Errorf("root span = %q, want %q", tree.Root.Name, wantRoot)
	}
	spans := 0
	tree.Root.Walk(func(_ int, n *obs.Node) {
		spans++
		if n.DurUS < 0 {
			t.Errorf("span %s: negative duration %g", n.Name, n.DurUS)
		}
		// Children may run concurrently (autotune fans candidates out
		// over the worker pool), so their durations can sum past the
		// parent's wall time — but each must still fit inside the
		// parent's window (1% + 1us slack for clock granularity).
		end := n.StartUS + n.DurUS*1.01 + 1
		for _, c := range n.Children {
			if c.StartUS+1 < n.StartUS || c.StartUS+c.DurUS > end {
				t.Errorf("span %s [%.1f..%.1f]us escapes parent %s [%.1f..%.1f]us",
					c.Name, c.StartUS, c.StartUS+c.DurUS, n.Name, n.StartUS, n.StartUS+n.DurUS)
			}
		}
	})
	if spans != tree.Spans {
		t.Errorf("tree advertises %d spans, walk found %d", tree.Spans, spans)
	}
}

// TestAllRoutesThroughClient drives every API route through the traced
// client and checks each response's span tree.
func TestAllRoutesThroughClient(t *testing.T) {
	h := newHarness(t, server.Config{}, hpfclient.Config{Trace: true})
	ctx := context.Background()

	pr, err := h.cli.Predict(ctx, &hpfclient.PredictRequest{Source: laplace()})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if pr.Procs != 4 || pr.EstUS <= 0 {
		t.Errorf("predict: procs=%d est=%g", pr.Procs, pr.EstUS)
	}
	checkTree(t, pr.Trace, "server.predict")

	mr, err := h.cli.Measure(ctx, &hpfclient.MeasureRequest{Source: laplace(), NoPerturb: true})
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if mr.MeasuredUS <= 0 {
		t.Errorf("measure: measured=%g", mr.MeasuredUS)
	}
	checkTree(t, mr.Trace, "server.measure")

	ar, err := h.cli.Autotune(ctx, &hpfclient.AutotuneRequest{Source: laplace(), Procs: 4})
	if err != nil {
		t.Fatalf("autotune: %v", err)
	}
	if len(ar.Candidates) == 0 {
		t.Error("autotune returned no candidates")
	}
	checkTree(t, ar.Trace, "server.autotune")

	nr, err := h.cli.Analyze(ctx, &hpfclient.AnalyzeRequest{Source: laplace()})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if nr.Diagnostics == nil {
		t.Error("analyze: diagnostics must be present (possibly empty)")
	}
	checkTree(t, nr.Trace, "server.analyze")

	// The four traced requests are all retrievable from the ring,
	// newest first.
	tr, err := h.cli.Traces(ctx)
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(tr.Traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(tr.Traces))
	}
	wantRoutes := []string{"analyze", "autotune", "measure", "predict"}
	for i, rec := range tr.Traces {
		if rec.Route != wantRoutes[i] {
			t.Errorf("trace %d: route %q, want %q", i, rec.Route, wantRoutes[i])
		}
	}
}

// TestTracedPredictAccountsLatency is the end-to-end acceptance check:
// through the real client, the compile+interp span durations of a
// cache-miss Laplace predict sum to within 10% of the reported
// server-side latency.
func TestTracedPredictAccountsLatency(t *testing.T) {
	const tries = 5
	var last float64
	for attempt := 0; attempt < tries; attempt++ {
		h := newHarness(t, server.Config{}, hpfclient.Config{Trace: true})
		pr, err := h.cli.Predict(context.Background(), &hpfclient.PredictRequest{Source: laplace()})
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		checkTree(t, pr.Trace, "server.predict")
		var sum float64
		pr.Trace.Root.Walk(func(_ int, n *obs.Node) {
			if n.Name == "compile" || n.Name == "interp" {
				sum += n.DurUS
			}
		})
		if pr.ElapsedUS <= 0 {
			t.Fatalf("elapsed_us = %g", pr.ElapsedUS)
		}
		last = sum / pr.ElapsedUS
		if last >= 0.9 && last <= 1.01 {
			return
		}
	}
	t.Fatalf("compile+interp spans account for %.0f%% of request latency, want >= 90%%", last*100)
}

// TestClientRetriesUntilDrainRefusal: a draining server answers 503;
// the client classifies that as temporary and retries, then surfaces a
// structured APIError with correlation IDs intact.
func TestClientRetriesUntilDrainRefusal(t *testing.T) {
	h := newHarness(t, server.Config{}, hpfclient.Config{
		Retry: hpfclient.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := h.cli.Predict(ctx, &hpfclient.PredictRequest{Source: laplace()})
	if err == nil {
		t.Fatal("predict succeeded against a draining server")
	}
	apiErr, ok := err.(*hpfclient.APIError)
	if !ok {
		t.Fatalf("error type %T, want *APIError", err)
	}
	if apiErr.Status != 503 || apiErr.Stage != "overload" {
		t.Errorf("drain refusal = %d (%s), want 503 overload", apiErr.Status, apiErr.Stage)
	}
}

// TestNoGoroutineLeakAfterDrain: serve a traced workload, drain the
// server, and require the goroutine count to return to its baseline —
// the worker pool, queue waiters, and span bookkeeping must all stop.
func TestNoGoroutineLeakAfterDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	h := newHarness(t, server.Config{Workers: 4}, hpfclient.Config{Trace: true})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := h.cli.Predict(ctx, &hpfclient.PredictRequest{Source: laplace()}); err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.ts.Close()

	// httptest teardown and idle HTTP keep-alives unwind asynchronously;
	// poll with a deadline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // allow the test framework's own helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after drain\n%s", before, now, firstLines(string(buf[:n]), 80))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// chaosRate mirrors the internal/chaos convention: HPFPERF_CHAOS_RATE
// scales the injection rate (default 0.01 here — light chaos; this is
// an e2e suite, not the dedicated chaos harness).
func chaosRate(t *testing.T) float64 {
	t.Helper()
	v := os.Getenv("HPFPERF_CHAOS_RATE")
	if v == "" {
		return 0.01
	}
	r, err := strconv.ParseFloat(v, 64)
	if err != nil || r < 0 || r > 1 {
		t.Fatalf("bad HPFPERF_CHAOS_RATE %q", v)
	}
	return r
}

// TestTracedWorkloadUnderChaos forces tracing on for every request
// while transient faults fire across the pipeline: the client's retry
// loop must absorb them, every surviving response must still carry a
// well-formed span tree, and the drained server must not leak
// goroutines. This is the CI e2e job's contract (tracing on + chaos).
func TestTracedWorkloadUnderChaos(t *testing.T) {
	rate := chaosRate(t)
	spec := fmt.Sprintf("server.predict:%g:error,interp:%g:error,sweep:%g:error", rate, rate, rate)
	inj, err := faults.Parse(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(inj)
	t.Cleanup(faults.Deactivate)

	before := runtime.NumGoroutine()
	h := newHarness(t,
		server.Config{TraceAll: true, BreakerThreshold: -1},
		hpfclient.Config{Trace: true, Retry: hpfclient.RetryPolicy{
			MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond,
		}})
	ctx := context.Background()

	const requests = 30
	failed := 0
	for i := 0; i < requests; i++ {
		pr, err := h.cli.Predict(ctx, &hpfclient.PredictRequest{Source: laplace()})
		if err != nil {
			failed++
			continue
		}
		checkTree(t, pr.Trace, "server.predict")
	}
	// Residual failures are those that exhausted 6 retry attempts; at
	// light rates that is vanishingly rare, so a third of the workload
	// is a generous budget even for the 10% chaos matrix entry.
	if failed > requests/3 {
		t.Errorf("%d/%d traced requests failed through retries at rate %g", failed, requests, rate)
	}

	// The ring survived the churn and holds well-formed trees.
	faults.Deactivate()
	tr, err := h.cli.Traces(ctx)
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(tr.Traces) == 0 {
		t.Fatal("no traces recorded under chaos")
	}
	for _, rec := range tr.Traces {
		if rec.Status == 200 {
			checkTree(t, rec.Tree, "server.predict")
		}
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	h.ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after chaos drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
