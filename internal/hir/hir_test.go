package hir

import (
	"strings"
	"testing"

	"hpfperf/internal/ast"
	"hpfperf/internal/sem"
)

func intC(v int64) *Const    { return &Const{Val: sem.IntVal(v)} }
func realC(v float64) *Const { return &Const{Val: sem.RealVal(v)} }

func TestOpStrings(t *testing.T) {
	if OpAdd.String() != "+" || OpPow.String() != "**" || OpNot.String() != ".NOT." {
		t.Error("operator names wrong")
	}
	if !OpLt.IsCompare() || OpMul.IsCompare() {
		t.Error("IsCompare wrong")
	}
}

func TestExprStrings(t *testing.T) {
	e := &Bin{Op: OpAdd, X: &Ref{Name: "X", Typ: ast.TReal}, Y: realC(1.5), Typ: ast.TReal}
	if got := e.String(); got != "(X + 1.5)" {
		t.Errorf("bin string = %q", got)
	}
	el := &Elem{Array: "A", Subs: []Expr{intC(3)}, Typ: ast.TReal}
	if el.String() != "A(3)" {
		t.Errorf("elem string = %q", el.String())
	}
	sh := &Elem{Array: "A", Subs: []Expr{intC(3)}, Shadow: true, Typ: ast.TReal}
	if !strings.HasPrefix(sh.String(), "$") {
		t.Error("shadow marker missing")
	}
}

func TestCountExprBasics(t *testing.T) {
	// A(I) * B(I+1) + 2.0  (reals)
	i := &Ref{Name: "I", Kind: Private, Typ: ast.TInteger}
	e := &Bin{
		Op: OpAdd,
		X: &Bin{
			Op: OpMul,
			X:  &Elem{Array: "A", Subs: []Expr{i}, Typ: ast.TReal},
			Y: &Elem{Array: "B", Subs: []Expr{
				&Bin{Op: OpAdd, X: i, Y: intC(1), Typ: ast.TInteger},
			}, Typ: ast.TReal},
			Typ: ast.TReal,
		},
		Y:   realC(2.0),
		Typ: ast.TReal,
	}
	c := CountExpr(e)
	if c.FAdd != 1 || c.FMul != 1 {
		t.Errorf("float ops = %d/%d", c.FAdd, c.FMul)
	}
	if c.Elems != 2 {
		t.Errorf("elems = %d", c.Elems)
	}
	// Loads: 2 elements + 1 subscript Ref (I) + 1 Ref inside I+1.
	if c.Load != 4 {
		t.Errorf("loads = %d", c.Load)
	}
	// IntOp: address arithmetic (1 per sub) ×2 + the I+1 addition.
	if c.IntOp != 3 {
		t.Errorf("intops = %d", c.IntOp)
	}
}

func TestCountExprIntrinsicsAndShadow(t *testing.T) {
	e := &Intr{Name: "SQRT", Args: []Expr{
		&Elem{Array: "A", Subs: []Expr{intC(1)}, Shadow: true, Typ: ast.TReal},
	}, Typ: ast.TReal}
	c := CountExpr(e)
	if c.Intrinsics["SQRT"] != 1 {
		t.Errorf("intrinsics = %v", c.Intrinsics)
	}
	if c.ShadowLoad != 1 {
		t.Errorf("shadow loads = %d", c.ShadowLoad)
	}
}

func TestCountExprLogicalAndCompare(t *testing.T) {
	e := &Bin{
		Op:  OpAnd,
		X:   &Bin{Op: OpGt, X: realC(1), Y: realC(0), Typ: ast.TLogical},
		Y:   &Un{Op: OpNot, X: &Ref{Name: "B", Typ: ast.TLogical}, Typ: ast.TLogical},
		Typ: ast.TLogical,
	}
	c := CountExpr(e)
	if c.Cmp != 1 || c.Logical != 2 {
		t.Errorf("cmp=%d logical=%d", c.Cmp, c.Logical)
	}
}

func TestOpCountAddScaling(t *testing.T) {
	var a OpCount
	b := OpCount{FAdd: 2, Load: 3, Elems: 1, Intrinsics: map[string]int{"EXP": 1}}
	a.Add(b, 4)
	if a.FAdd != 8 || a.Load != 12 || a.Elems != 4 || a.Intrinsics["EXP"] != 4 {
		t.Errorf("scaled add = %+v", a)
	}
}

func TestReduceOpString(t *testing.T) {
	if RSum.String() != "SUM" || RMaxLoc.String() != "MAXLOC" {
		t.Error("reduce op names")
	}
}

func TestDumpCoversStatements(t *testing.T) {
	p := &Program{
		Name: "T",
		Info: &sem.Info{},
		Body: []Stmt{
			&Assign{Lhs: &ScalarLV{Name: "X", Typ: ast.TReal}, Rhs: realC(1)},
			&Loop{Var: "I", Lo: intC(1), Hi: intC(10), Step: intC(1), Label: "DO",
				Body: []Stmt{
					&If{Cond: &Ref{Name: "B", Typ: ast.TLogical}, Then: []Stmt{
						&Assign{Lhs: &ElemLV{Array: "A", Subs: []Expr{intC(1)}, Typ: ast.TReal}, Rhs: realC(0), Guard: true},
					}},
				}},
			&Shift{Array: "A", Dim: 0, Offset: 1},
			&AllGather{Array: "A"},
			&CShift{Dst: "B", Src: "A", Dim: 0, Shift: intC(1)},
			&EOShift{Dst: "B", Src: "A", Dim: 0, Shift: intC(1)},
			&Reduce{Op: RSum, Dst: "S", Src: "$ACC"},
			&FetchElem{Array: "A", Subs: []Expr{intC(1)}, Dst: "$F", Typ: ast.TReal},
			&Print{Args: []Expr{realC(3)}},
			&While{Cond: &Ref{Name: "B", Typ: ast.TLogical}},
		},
	}
	// Info.Grid is needed by Dump's header.
	p.Info.Grid = nil
	d := p.Dump()
	for _, want := range []string{"X = 1", "LOOP I", "[owner]", "SHIFT A", "ALLGATHER",
		"CSHIFT", "EOSHIFT", "REDUCE SUM", "FETCH", "PRINT", "WHILE", "IF"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestStmtLines(t *testing.T) {
	stmts := []Stmt{
		&Assign{SrcLine: 5},
		&Loop{SrcLine: 6},
		&While{SrcLine: 7},
		&If{SrcLine: 8},
		&Reduce{SrcLine: 9},
		&Shift{SrcLine: 10},
		&AllGather{SrcLine: 11},
		&CShift{SrcLine: 12},
		&EOShift{SrcLine: 13},
		&FetchElem{SrcLine: 14},
		&Print{SrcLine: 15},
	}
	for i, s := range stmts {
		if s.Line() != 5+i {
			t.Errorf("stmt %d line = %d", i, s.Line())
		}
	}
}
