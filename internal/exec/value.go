// Package exec executes a compiled SPMD node program (package hir) on the
// simulated iPSC/860 machine (package ipsc), producing both functional
// results and "measured" execution times.
//
// The execution model is trace-driven: the program data is held once
// (loosely synchronous SPMD execution keeps replicated copies identical,
// and distributed arrays have a single authoritative owner per element),
// while time is accounted per node through the machine's cost models —
// computation is charged to the owners of each partitioned iteration,
// communication statements advance the participating nodes' clocks
// through the network model.
package exec

import (
	"fmt"

	"hpfperf/internal/ast"
	"hpfperf/internal/sem"
)

// val is a runtime scalar value.
type val struct {
	isInt  bool
	isBool bool
	f      float64
	i      int64
	b      bool
}

func intV(i int64) val     { return val{isInt: true, i: i} }
func floatV(f float64) val { return val{f: f} }
func boolV(b bool) val     { return val{isBool: true, b: b} }

func (v val) asF() float64 {
	if v.isInt {
		return float64(v.i)
	}
	if v.isBool {
		if v.b {
			return 1
		}
		return 0
	}
	return v.f
}

func (v val) asI() int64 {
	if v.isInt {
		return v.i
	}
	if v.isBool {
		if v.b {
			return 1
		}
		return 0
	}
	return int64(v.f)
}

func (v val) asB() bool {
	if v.isBool {
		return v.b
	}
	if v.isInt {
		return v.i != 0
	}
	return v.f != 0
}

func (v val) String() string {
	switch {
	case v.isBool:
		if v.b {
			return "T"
		}
		return "F"
	case v.isInt:
		return fmt.Sprint(v.i)
	default:
		return fmt.Sprintf("%g", v.f)
	}
}

func fromSem(s sem.Value) val {
	switch s.Type {
	case ast.TInteger:
		return intV(s.I)
	case ast.TLogical:
		return boolV(s.B)
	default:
		return floatV(s.R)
	}
}

// convertTo coerces a value to a declared type (Fortran assignment
// conversion: reals truncate to integers).
func convertTo(v val, t ast.BaseType) val {
	switch t {
	case ast.TInteger:
		return intV(v.asI())
	case ast.TLogical:
		return boolV(v.asB())
	default:
		return floatV(v.asF())
	}
}

// array is the global storage of one program array, Fortran column-major
// (first subscript varies fastest).
type array struct {
	name    string
	typ     ast.BaseType
	bounds  [][2]int
	strides []int
	data    []float64
}

func newArray(name string, typ ast.BaseType, bounds [][2]int) *array {
	a := &array{name: name, typ: typ, bounds: bounds}
	a.strides = make([]int, len(bounds))
	size := 1
	for d, b := range bounds {
		a.strides[d] = size
		size *= b[1] - b[0] + 1
	}
	a.data = make([]float64, size)
	return a
}

// offset computes the linear offset of a global index vector, with bounds
// checking.
func (a *array) offset(idx []int) (int, error) {
	off := 0
	for d, g := range idx {
		b := a.bounds[d]
		if g < b[0] || g > b[1] {
			return 0, fmt.Errorf("subscript %d of %s is %d, outside [%d,%d]", d+1, a.name, g, b[0], b[1])
		}
		off += (g - b[0]) * a.strides[d]
	}
	return off, nil
}

func (a *array) get(idx []int) (val, error) {
	off, err := a.offset(idx)
	if err != nil {
		return val{}, err
	}
	f := a.data[off]
	switch a.typ {
	case ast.TInteger:
		return intV(int64(f)), nil
	case ast.TLogical:
		return boolV(f != 0), nil
	default:
		return floatV(f), nil
	}
}

func (a *array) set(idx []int, v val) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	switch a.typ {
	case ast.TInteger:
		a.data[off] = float64(v.asI())
	case ast.TLogical:
		if v.asB() {
			a.data[off] = 1
		} else {
			a.data[off] = 0
		}
	default:
		a.data[off] = v.asF()
	}
	return nil
}

// elems returns the total element count.
func (a *array) elems() int { return len(a.data) }
