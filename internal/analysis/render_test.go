package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"hpfperf/internal/analysis/dep"
)

// reportOf compiles a program and builds its full report (diagnostics
// plus price), as hpflint and /v1/analyze do.
func reportOf(t *testing.T, src string) *Report {
	t.Helper()
	return NewReport("prog.hpf", mustCompile(t, src))
}

// TestReportSeverityAccounting: Counts and Max agree with the
// diagnostics, across empty, warning-only, and mixed-severity reports.
func TestReportSeverityAccounting(t *testing.T) {
	clean := reportOf(t, preamble+`FORALL (I=2:N-1) B(I) = 0.5*(A(I-1) + A(I+1))
END`)
	if e, w, i := clean.Counts(); e+w+i != len(clean.Diagnostics) {
		t.Fatalf("counts %d+%d+%d disagree with %d diagnostics", e, w, i, len(clean.Diagnostics))
	}

	empty := &Report{Diagnostics: []Diagnostic{}}
	if _, ok := empty.Max(); ok {
		t.Error("Max on an empty report must report absence")
	}

	mixed := &Report{Diagnostics: []Diagnostic{
		{Code: "X1", Severity: SevInfo},
		{Code: "X2", Severity: SevError},
		{Code: "X3", Severity: SevWarning},
		{Code: "X4", Severity: SevWarning},
	}}
	if max, ok := mixed.Max(); !ok || max != SevError {
		t.Errorf("Max = %v,%v, want error,true", max, ok)
	}
	e, w, i := mixed.Counts()
	if e != 1 || w != 2 || i != 1 {
		t.Errorf("Counts = %d,%d,%d, want 1,2,1", e, w, i)
	}
	if !(SevError > SevWarning && SevWarning > SevInfo) {
		t.Error("severity ordering must be error > warning > info")
	}
}

// TestReportOrdering: NewReport emits diagnostics sorted by line, then
// code, regardless of pass registration order.
func TestReportOrdering(t *testing.T) {
	rep := reportOf(t, preamble+`INTEGER M
M = INT(A(1))
DO I = 1, M
  X = X + 1.0
END DO
DO K = 10, 1
  X = X + 1.0
END DO
FORALL (J=2:N) A(J) = A(J-1)
END`)
	if len(rep.Diagnostics) < 3 {
		t.Fatalf("expected several diagnostics, got %v", rep.Diagnostics)
	}
	for i := 1; i < len(rep.Diagnostics); i++ {
		prev, cur := rep.Diagnostics[i-1], rep.Diagnostics[i]
		if cur.Line < prev.Line || (cur.Line == prev.Line && cur.Code < prev.Code) {
			t.Errorf("diagnostics out of (line, code) order at %d: %v then %v", i, prev, cur)
		}
	}
}

// TestReportJSONSchema pins the wire schema of /v1/analyze and
// hpflint -json: stable key names, diagnostics `[]` (never null) on
// clean programs, a price block with positive cost, and severities as
// their lowercase string forms.
func TestReportJSONSchema(t *testing.T) {
	rep := reportOf(t, preamble+`FORALL (J=2:N) A(J) = A(J-1)
END`)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "program", "procs", "diagnostics", "price"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("schema key %q missing from %s", key, raw)
		}
	}
	diags, ok := decoded["diagnostics"].([]any)
	if !ok || len(diags) == 0 {
		t.Fatalf("diagnostics must be a non-empty array, got %s", raw)
	}
	first, ok := diags[0].(map[string]any)
	if !ok {
		t.Fatalf("diagnostic shape: %s", raw)
	}
	for _, key := range []string{"code", "severity", "line", "message"} {
		if _, ok := first[key]; !ok {
			t.Errorf("diagnostic key %q missing from %s", key, raw)
		}
	}
	if sev, _ := first["severity"].(string); sev != "error" && sev != "warning" && sev != "info" {
		t.Errorf("severity must serialize as its name, got %v", first["severity"])
	}
	price, ok := decoded["price"].(map[string]any)
	if !ok {
		t.Fatalf("price block missing: %s", raw)
	}
	if cu, _ := price["cost_units"].(float64); cu <= 0 {
		t.Errorf("price.cost_units must be positive, got %v", price["cost_units"])
	}

	// Clean program: diagnostics must serialize as [] rather than null.
	clean := reportOf(t, preamble+`FORALL (I=2:N-1) B(I) = 0.5*(A(I-1) + A(I+1))
END`)
	clean.Diagnostics = clean.Diagnostics[:0]
	raw, err = json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"diagnostics":null`) {
		t.Errorf("empty diagnostics must marshal as [], got %s", raw)
	}
}

// TestReportText: the text rendering carries one line per diagnostic
// (plus indented hints) and a trailing summary naming the program.
func TestReportText(t *testing.T) {
	rep := reportOf(t, preamble+`FORALL (J=2:N) A(J) = A(J-1)
DO K = 10, 1
  X = X + 1.0
END DO
END`)
	text := rep.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	var hints int
	for _, l := range lines[:len(lines)-1] {
		if strings.HasPrefix(l, "    hint: ") {
			hints++
			continue
		}
		if !strings.HasPrefix(l, "prog.hpf:") {
			t.Errorf("diagnostic line lacks file prefix: %q", l)
		}
	}
	if len(lines)-1-hints != len(rep.Diagnostics) {
		t.Errorf("%d diagnostic lines for %d diagnostics", len(lines)-1-hints, len(rep.Diagnostics))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, rep.Program) || !strings.Contains(last, "error(s)") {
		t.Errorf("summary line malformed: %q", last)
	}

	// Unnamed input falls back to the <source> label.
	rep.File = ""
	if !strings.HasPrefix(rep.Text(), "<source>:") {
		t.Error("empty file name must render as <source>")
	}
}

// TestDirListTruncation: diagnostics over many feasible direction
// vectors cap the rendered list at three entries plus a count, keeping
// multi-diagnostic reports readable.
func TestDirListTruncation(t *testing.T) {
	dirs := [][]dep.Dir{
		{dep.DirLT, dep.DirLT},
		{dep.DirLT, dep.DirEQ},
		{dep.DirLT, dep.DirGT},
		{dep.DirEQ, dep.DirLT},
		{dep.DirGT, dep.DirGT},
	}
	got := dirList(dirs)
	if !strings.Contains(got, "+2 more") {
		t.Errorf("dirList = %q, want a +2 more suffix", got)
	}
	if strings.Contains(got, "(=,<)") || strings.Contains(got, "(>,>)") {
		t.Errorf("dirList = %q leaked entries past the cap", got)
	}
	if got := dirList(dirs[:2]); strings.Contains(got, "more") {
		t.Errorf("dirList below the cap must not truncate: %q", got)
	}
}
