// Package suite provides the validation application set of the paper
// (Table 1): kernels from the Livermore Fortran Kernels and the Purdue
// Benchmark Set, plus the PI, N-Body, stock-option pricing (Finance) and
// Laplace solver applications of the NPAC HPF/Fortran 90D Benchmark
// Suite, as parameterized HPF/Fortran 90D sources.
package suite

import (
	"fmt"
	"strings"
)

// Program is one validation application.
type Program struct {
	// Name as listed in Table 1 (e.g. "LFK 1").
	Name string
	// Description from Table 1.
	Description string
	// Class groups programs: "LFK", "PBS" or "APP".
	Class string
	// Sizes is the paper's problem-size sweep for Table 2.
	Sizes []int
	// Procs is the paper's system-size sweep.
	Procs []int
	// Source generates the HPF/Fortran 90D text for a problem size and
	// processor count.
	Source func(size, procs int) string
}

// Grid1D renders a one-dimensional PROCESSORS spec.
func Grid1D(p int) string { return fmt.Sprintf("(%d)", p) }

// Grid2D factors a processor count into the 2-D arrangement used by the
// paper (4 → 2×2, 8 → 2×4).
func Grid2D(p int) string {
	switch p {
	case 1:
		return "(1,1)"
	case 2:
		return "(1,2)"
	case 4:
		return "(2,2)"
	case 8:
		return "(2,4)"
	}
	// General fallback: most square factorization.
	a := 1
	for f := 2; f*f <= p; f++ {
		if p%f == 0 {
			a = f
		}
	}
	return fmt.Sprintf("(%d,%d)", a, p/a)
}

// LineOf returns the 1-based line number of the first source line
// containing substr (0 when absent). Used to anchor per-phase queries.
func LineOf(src, substr string) int {
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, substr) {
			return i + 1
		}
	}
	return 0
}

var stdProcs = []int{1, 2, 4, 8}

// All returns the complete validation application set in Table 1 order.
func All() []*Program {
	return []*Program{
		LFK1(), LFK2(), LFK3(), LFK9(), LFK14(), LFK22(),
		PBS1(), PBS2(), PBS3(), PBS4(),
		PI(), NBody(), Finance(),
		LaplaceBB(), LaplaceBX(), LaplaceXB(),
	}
}

// ByName returns the named program or nil.
func ByName(name string) *Program {
	for _, p := range All() {
		if strings.EqualFold(p.Name, name) {
			return p
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Livermore Fortran Kernels

// LFK1 is the hydro fragment: X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11)).
func LFK1() *Program {
	return &Program{
		Name: "LFK 1", Description: "Hydro Fragment", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk1
PARAMETER (N = %d)
REAL X(N), Y(N), Z(N+11)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N+11)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN Y(I) WITH TPL(I)
!HPF$ ALIGN Z(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
Q = 0.5
R = 0.2
S = 0.1
FORALL (K=1:N+11) Z(K) = 0.001*REAL(K)
FORALL (K=1:N) Y(K) = 0.002*REAL(K)
DO L = 1, 10
  FORALL (K=1:N) X(K) = Q + Y(K)*(R*Z(K+10) + S*Z(K+11))
END DO
CHK = SUM(X)
END`, n, Grid1D(p))
		},
	}
}

// LFK2 is the ICCG excerpt (incomplete Cholesky, conjugate gradient): a
// strided reduction sweep that "tasks the compiler" — the non-unit-stride
// accesses defeat the aligned-communication fast paths.
func LFK2() *Program {
	return &Program{
		Name: "LFK 2", Description: "ICCG Excerpt (Incomplete Cholesky; Conj. Grad.)", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk2
PARAMETER (N = %d)
REAL X(N), V(N), XH(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN V(I) WITH TPL(I)
!HPF$ ALIGN XH(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (K=1:N) X(K) = 0.01*REAL(K)
FORALL (K=1:N) V(K) = 0.003*REAL(K)
DO L = 1, 5
  FORALL (K=1:N/2) XH(K) = X(2*K) - V(2*K)*X(2*K-1)
  FORALL (K=1:N/2) X(K) = XH(K)
END DO
CHK = SUM(X)
END`, n, Grid1D(p))
		},
	}
}

// LFK3 is the inner product.
func LFK3() *Program {
	return &Program{
		Name: "LFK 3", Description: "Inner Product", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk3
PARAMETER (N = %d)
REAL X(N), Z(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN Z(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (K=1:N) X(K) = 0.01*REAL(K)
FORALL (K=1:N) Z(K) = 0.02*REAL(K)
Q = 0.0
DO L = 1, 10
  Q = Q + DOT_PRODUCT(Z, X)
END DO
END`, n, Grid1D(p))
		},
	}
}

// LFK9 is the integrate-predictors kernel: a 13-term polynomial predictor
// over a (*,BLOCK) distributed 2-D array (all terms on-processor).
func LFK9() *Program {
	return &Program{
		Name: "LFK 9", Description: "Integrate Predictors", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk9
PARAMETER (N = %d)
REAL PX(13,N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(13,N)
!HPF$ ALIGN PX(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL(*,BLOCK) ONTO P
PARAMETER (DM22=0.2, DM23=0.3, DM24=0.4, DM25=0.5, DM26=0.6, DM27=0.7, DM28=0.8, C0=1.1)
FORALL (I=1:13, J=1:N) PX(I,J) = 0.001*REAL(I+J)
DO L = 1, 10
  FORALL (J=1:N) PX(1,J) = DM28*PX(13,J) + DM27*PX(12,J) + DM26*PX(11,J) + &
      DM25*PX(10,J) + DM24*PX(9,J) + DM23*PX(8,J) + DM22*PX(7,J) + &
      C0*(PX(5,J) + PX(6,J)) + PX(3,J)
END DO
CHK = SUM(PX)
END`, n, Grid1D(p))
		},
	}
}

// LFK14 is the 1-D particle-in-cell kernel: indirection-driven gathers
// and a scatter deposit — the irregular access pattern forces the
// compiler's gather fallback (large communication, cache-hostile reads).
func LFK14() *Program {
	return &Program{
		Name: "LFK 14", Description: "1-D PIC (Particle In Cell)", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk14
PARAMETER (N = %d, NG = 64)
REAL XX(N), VX(N), EX(NG), DEX(NG), RH(NG)
INTEGER IR(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN XX(I) WITH TPL(I)
!HPF$ ALIGN VX(I) WITH TPL(I)
!HPF$ ALIGN IR(I) WITH TPL(I)
!HPF$ TEMPLATE TG(NG)
!HPF$ ALIGN EX(I) WITH TG(I)
!HPF$ ALIGN DEX(I) WITH TG(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
!HPF$ DISTRIBUTE TG(BLOCK) ONTO P
FORALL (I=1:NG) EX(I) = SIN(0.1*REAL(I))
FORALL (I=1:NG) DEX(I) = COS(0.1*REAL(I))
FORALL (K=1:N) XX(K) = 1.0 + MOD(0.618034*REAL(K), 1.0)*REAL(NG-2)
FORALL (K=1:N) VX(K) = 0.0
FORALL (I=1:NG) RH(I) = 0.0
DO ISTEP = 1, 4
  FORALL (K=1:N) IR(K) = INT(XX(K))
  FORALL (K=1:N) VX(K) = VX(K) + EX(IR(K)) + (XX(K) - REAL(IR(K)))*DEX(IR(K))
  FORALL (K=1:N) XX(K) = 1.0 + MOD(XX(K) + 0.01*VX(K), REAL(NG-2))
  FORALL (K=1:N) RH(IR(K)) = RH(IR(K)) + 1.0
END DO
CHK = SUM(RH)
END`, n, Grid1D(p))
		},
	}
}

// LFK22 is the Planckian distribution kernel with its overflow guard mask
// and EXP evaluation.
func LFK22() *Program {
	return &Program{
		Name: "LFK 22", Description: "Planckian Distribution", Class: "LFK",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM lfk22
PARAMETER (N = %d)
REAL U(N), V(N), W(N), X(N), Y(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN U(I) WITH TPL(I)
!HPF$ ALIGN V(I) WITH TPL(I)
!HPF$ ALIGN W(I) WITH TPL(I)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN Y(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (K=1:N) U(K) = 1.5 + 0.001*REAL(K)
FORALL (K=1:N) V(K) = 0.5 + 0.0002*REAL(K)
FORALL (K=1:N) X(K) = 0.7
DO L = 1, 10
  FORALL (K=1:N) Y(K) = U(K)/V(K)
  FORALL (K=1:N, Y(K) .LE. 20.0) W(K) = X(K)/(EXP(Y(K)) - 1.0)
END DO
CHK = SUM(W)
END`, n, Grid1D(p))
		},
	}
}

// ---------------------------------------------------------------------------
// Purdue Benchmarking Set

// PBS1 estimates an integral of f(x) by the trapezoidal rule.
func PBS1() *Program {
	return &Program{
		Name: "PBS 1", Description: "Trapezoidal rule estimate of an integral of f(x)", Class: "PBS",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM pbs1
PARAMETER (N = %d)
REAL F(N)
!HPF$ PROCESSORS P%s
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
A = 0.0
B = 2.0
H = (B - A)/REAL(N-1)
FORALL (K=1:N) F(K) = EXP(-(A + REAL(K-1)*H)**2)
T1 = SUM(F)
E1 = F(1)
E2 = F(N)
TRAP = H*(T1 - 0.5*E1 - 0.5*E2)
END`, n, Grid1D(p))
		},
	}
}

// PBS2 computes e = sum_i prod_j (1 + 0.5^(|i-j|+0.001)).
func PBS2() *Program {
	return &Program{
		Name: "PBS 2", Description: "Compute e = sum_i prod_j (1 + 0.5**(|i-j|+0.001))", Class: "PBS",
		Sizes: []int{256, 4096, 16384, 65536}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM pbs2
PARAMETER (N = %d, M = 8)
REAL A(N), PRD(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN A(I) WITH TPL(I)
!HPF$ ALIGN PRD(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (K=1:N) A(K) = REAL(K)
FORALL (K=1:N) PRD(K) = 1.0
DO J = 1, M
  FORALL (K=1:N) PRD(K) = PRD(K)*(1.0 + 0.5**(ABS(A(K) - REAL(J)) + 0.001))
END DO
E = SUM(PRD)
END`, n, Grid1D(p))
		},
	}
}

// PBS3 computes S = sum_i prod_j a_ij over a (BLOCK,*) matrix.
func PBS3() *Program {
	return &Program{
		Name: "PBS 3", Description: "Compute S = sum_i prod_j a(i,j)", Class: "PBS",
		Sizes: []int{256, 4096, 16384, 65536}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM pbs3
PARAMETER (N = %d, M = 8)
REAL A2(N,M), PRD(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN PRD(I) WITH TPL(I)
!HPF$ ALIGN A2(I,J) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (I=1:N, J=1:M) A2(I,J) = 1.0 + 0.001*REAL(I+J)
FORALL (I=1:N) PRD(I) = 1.0
DO J = 1, M
  FORALL (I=1:N) PRD(I) = PRD(I)*A2(I,J)
END DO
S = SUM(PRD)
END`, n, Grid1D(p))
		},
	}
}

// PBS4 computes R = sum_i 1/x_i.
func PBS4() *Program {
	return &Program{
		Name: "PBS 4", Description: "Compute R = sum_i 1/x(i)", Class: "PBS",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM pbs4
PARAMETER (N = %d)
REAL X(N), RX(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN RX(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (K=1:N) X(K) = 1.0 + 0.01*REAL(K)
FORALL (K=1:N) RX(K) = 1.0/X(K)
R = SUM(RX)
END`, n, Grid1D(p))
		},
	}
}

// ---------------------------------------------------------------------------
// Applications

// PI approximates pi by the n-point quadrature rule.
func PI() *Program {
	return &Program{
		Name: "PI", Description: "Approximation of pi by n-point quadrature", Class: "APP",
		Sizes: []int{128, 512, 1024, 4096}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM pi
PARAMETER (N = %d)
REAL F(N)
!HPF$ PROCESSORS P%s
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
H = 1.0/REAL(N)
FORALL (K=1:N) F(K) = 4.0/(1.0 + ((REAL(K) - 0.5)*H)**2)
API = H*SUM(F)
END`, n, Grid1D(p))
		},
	}
}

// NBody is the Newtonian gravitational n-body simulation in its systolic
// CSHIFT formulation.
func NBody() *Program {
	return &Program{
		Name: "N-Body", Description: "Newtonian gravitational n-body simulation", Class: "APP",
		Sizes: []int{16, 64, 256, 1024}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM nbody
PARAMETER (N = %d, G = 0.667, EPS = 0.01)
REAL X(N), FM(N), F(N), XT(N), MT(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN FM(I) WITH TPL(I)
!HPF$ ALIGN F(I) WITH TPL(I)
!HPF$ ALIGN XT(I) WITH TPL(I)
!HPF$ ALIGN MT(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
FORALL (I=1:N) X(I) = REAL(I) + 0.3*SIN(REAL(I))
FORALL (I=1:N) FM(I) = 1.0 + 0.5*COS(REAL(I))
FORALL (I=1:N) F(I) = 0.0
XT = X
MT = FM
DO K = 1, N-1
  XT = CSHIFT(XT, 1)
  MT = CSHIFT(MT, 1)
  FORALL (I=1:N) F(I) = F(I) + G*FM(I)*MT(I)/((X(I) - XT(I))**2 + EPS)
END DO
CHK = SUM(F)
END`, n, Grid1D(p))
		},
	}
}

// FinancePhase1Marker and FinancePhase2Marker anchor the two phases of the
// stock option pricing model for per-phase profiling (Figures 6 and 7).
const (
	FinancePhase1Marker = "PHASE 1"
	FinancePhase2Marker = "PHASE 2"
)

// Finance is the parallel stock option pricing model: Phase 1 builds the
// distributed option price lattice with shift communication; Phase 2
// computes the call prices with pure local computation.
func Finance() *Program {
	return &Program{
		Name: "Finance", Description: "Parallel stock option pricing model", Class: "APP",
		Sizes: []int{32, 64, 128, 256, 512}, Procs: stdProcs,
		Source: func(n, p int) string {
			return fmt.Sprintf(`PROGRAM finance
PARAMETER (N = %d, NSTEP = 16)
REAL S(N), C(N), SH(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN S(I) WITH TPL(I)
!HPF$ ALIGN C(I) WITH TPL(I)
!HPF$ ALIGN SH(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL(BLOCK) ONTO P
S0 = 50.0
UP = 1.05
STRIKE = 52.0
RATE = 0.004
! PHASE 1: create the stock price lattice (shift)
FORALL (I=1:N) S(I) = S0
DO K = 1, NSTEP
  SH = EOSHIFT(S, 1, 0.0)
  FORALL (I=1:N) S(I) = 0.5*(S(I)*UP + SH(I)/UP) + 0.01
END DO
! PHASE 2: compute call prices
FORALL (I=1:N) C(I) = MAX(S(I) - STRIKE, 0.0)
FORALL (I=1:N) C(I) = C(I)*EXP(-RATE*REAL(NSTEP)) + 0.2*SQRT(ABS(S(I) - STRIKE) + 1.0)
CHK = SUM(C)
END`, n, Grid1D(p))
		},
	}
}

// laplaceSource renders the Jacobi Laplace solver for one distribution.
func laplaceSource(n, iters int, distSpec, gridSpec string) string {
	return fmt.Sprintf(`PROGRAM laplace
PARAMETER (N = %d, MAXIT = %d)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N,N)
!HPF$ ALIGN U(I,J) WITH TPL(I,J)
!HPF$ ALIGN V(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
FORALL (J=1:N) U(1,J) = 100.0
FORALL (J=1:N) U(N,J) = 25.0
DO ITER = 1, MAXIT
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
CHK = SUM(U)
END`, n, iters, gridSpec, distSpec)
}

// LaplaceIters is the fixed Jacobi iteration count used across the
// Laplace experiments (the paper's per-size times scale linearly in it).
const LaplaceIters = 10

// LaplaceBB is the Laplace solver with the (BLOCK,BLOCK) distribution.
func LaplaceBB() *Program {
	return &Program{
		Name: "Laplace (Blk-Blk)", Description: "Laplace solver, (BLOCK,BLOCK) distribution", Class: "APP",
		Sizes: []int{16, 64, 128, 256}, Procs: stdProcs,
		Source: func(n, p int) string {
			return laplaceSource(n, LaplaceIters, "(BLOCK,BLOCK)", Grid2D(p))
		},
	}
}

// LaplaceBX is the Laplace solver with the (BLOCK,*) distribution.
func LaplaceBX() *Program {
	return &Program{
		Name: "Laplace (Blk-X)", Description: "Laplace solver, (BLOCK,*) distribution", Class: "APP",
		Sizes: []int{16, 64, 128, 256}, Procs: stdProcs,
		Source: func(n, p int) string {
			return laplaceSource(n, LaplaceIters, "(BLOCK,*)", Grid1D(p))
		},
	}
}

// LaplaceXB is the Laplace solver with the (*,BLOCK) distribution.
func LaplaceXB() *Program {
	return &Program{
		Name: "Laplace (X-Blk)", Description: "Laplace solver, (*,BLOCK) distribution", Class: "APP",
		Sizes: []int{16, 64, 128, 256}, Procs: stdProcs,
		Source: func(n, p int) string {
			return laplaceSource(n, LaplaceIters, "(*,BLOCK)", Grid1D(p))
		},
	}
}
