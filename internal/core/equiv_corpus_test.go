package core_test

// Corpus leg of the tree-walker ↔ compiled-closure equivalence suite:
// where equiv_test.go exercises the fixed testdata programs, this file
// sweeps seeded generator output across all kernel families, so every
// template shape (FORALL masks, block-cyclic mappings, CSHIFT chains,
// triangular loops) is diffed bit-for-bit between the two engines.
//
// It lives in the external test package: internal/corpus imports
// internal/core, so the corpus-driven test must sit outside package
// core to avoid the import cycle. Everything it needs is exported.

import (
	"context"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/corpus"
)

// TestEquivCorpusPrograms asserts InterpretTree and Interpret produce
// byte-identical reports for generator output across seeds and families.
func TestEquivCorpusPrograms(t *testing.T) {
	seeds := []int64{1, 42}
	n := 36
	if testing.Short() {
		seeds = seeds[:1]
		n = 12
	}
	for _, seed := range seeds {
		for _, p := range corpus.Generate(seed, n) {
			prog, err := compiler.Compile(p.Source)
			if err != nil {
				t.Fatalf("%s (seed %d): compile: %v", p.Name, seed, err)
			}
			opts := core.DefaultOptions()
			opts.MaskDensity = p.MaskDensity()

			itTree, err := core.NewContext(context.Background(), prog, nil, opts)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			treeRep, err := itTree.InterpretTree()
			if err != nil {
				t.Fatalf("%s: tree walker: %v", p.Name, err)
			}
			itComp, err := core.NewContext(context.Background(), prog, nil, opts)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			compRep, err := itComp.Interpret()
			if err != nil {
				t.Fatalf("%s: compiled closures: %v", p.Name, err)
			}
			if d := core.DiffReports(treeRep, compRep); d != "" {
				t.Errorf("%s (seed %d, %s): tree/compiled divergence: %s",
					p.Name, seed, p.Family, d)
			}
		}
	}
}
