// Benchmarks regenerating the paper's evaluation artifacts. Each
// BenchmarkTable2/* entry runs one program's estimated-vs-measured
// comparison and reports the error band as custom metrics; the Figure*
// benchmarks regenerate the corresponding figures. Ablation benchmarks
// quantify the design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package hpfperf_test

import (
	"testing"

	"hpfperf"
	"hpfperf/internal/experiments"
	"hpfperf/internal/suite"
	"hpfperf/internal/sweep"
)

// benchCfg keeps benchmark iterations affordable while exercising the
// real sweep machinery.
func benchCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Runs = 1
	return cfg
}

// BenchmarkTable2 regenerates Table 2 row by row: for every program of
// the validation set, the estimated and measured times are compared over
// the (reduced) problem/system size sweep. The min/max error percentages
// are attached as benchmark metrics.
func BenchmarkTable2(b *testing.B) {
	for _, p := range suite.All() {
		p := p
		b.Run(sanitize(p.Name), func(b *testing.B) {
			var row experiments.AccuracyRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.Table2Row(p, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.MinErrPct(), "minErr%")
			b.ReportMetric(row.MaxErrPct(), "maxErr%")
		})
	}
}

// benchSweepGrid runs the full flattened Table 2 quick grid (16
// programs × 2 sizes × 2 system sizes) on a pool of the given width,
// with a cold cache every iteration so the compile stage is really
// exercised. Comparing BenchmarkSweepSerial with BenchmarkSweepParallel
// isolates the worker-pool speedup (≈ core count on unloaded 4+ core
// machines).
func benchSweepGrid(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Engine = sweep.New(sweep.Options{Workers: workers})
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the single-worker baseline of the point sweep.
func BenchmarkSweepSerial(b *testing.B) { benchSweepGrid(b, 1) }

// BenchmarkSweepParallel runs the same grid on a GOMAXPROCS-wide pool.
func BenchmarkSweepParallel(b *testing.B) { benchSweepGrid(b, 0) }

// BenchmarkSweepCached reruns the grid against a warm engine: every
// compile, interpretation and (since the simulator is deterministic per
// MeasureSpec) simulated execution is served from cache. The points/sec
// metric here includes the untimed warmup in the engine's wall clock;
// BENCH_PR6.json carries the steady-state rate measured after a stats
// reset.
func BenchmarkSweepCached(b *testing.B) {
	cfg := benchCfg()
	cfg.Engine = sweep.New(sweep.Options{})
	if _, err := experiments.Table2(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	snap := cfg.Engine.Snapshot()
	b.ReportMetric(float64(snap.CompileHits)/float64(snap.CompileHits+snap.CompileMisses), "hitRate")
	b.ReportMetric(snap.PointsPerSec, "points/sec")
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', ',', '*':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFigure3 renders the Laplace decomposition pictures.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the 4-processor Laplace
// estimated/measured sweep.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure45(4, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the 8-processor Laplace sweep.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure45(8, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the financial-model phase profile.
func BenchmarkFigure7(b *testing.B) {
	var p1comm float64
	for i := 0; i < b.N; i++ {
		phases, err := experiments.Figure7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		p1comm = phases[0].Metrics.CommUS
	}
	b.ReportMetric(p1comm, "phase1CommUS")
}

// BenchmarkFigure8 regenerates the experimentation-time comparison.
func BenchmarkFigure8(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		times, err := experiments.Figure8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		speedup = times[0].IPSCMin / times[0].InterpreterMin
	}
	b.ReportMetric(speedup, "workflowSpeedup")
}

// ---------------------------------------------------------------------------
// Ablations (design choices from DESIGN.md §5)

func ablationSrc() string { return suite.LaplaceBX().Source(128, 4) }

// BenchmarkAblationMemoryModel compares prediction error with the SAU
// memory model on and off.
func BenchmarkAblationMemoryModel(b *testing.B) {
	src := ablationSrc()
	prog, err := hpfperf.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				v := on
				pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{MemoryModel: &v})
				if err != nil {
					b.Fatal(err)
				}
				errPct = (pred.Microseconds() - meas.Microseconds()) / meas.Microseconds() * 100
			}
			b.ReportMetric(errPct, "err%")
		})
	}
}

// BenchmarkAblationLoadModel compares the max-loaded-processor model with
// the average model on a strongly imbalanced BLOCK distribution
// (N = 10 over 8 processors: shares 2,2,2,2,2,0,0,0).
func BenchmarkAblationLoadModel(b *testing.B) {
	src := `PROGRAM imb
PARAMETER (N = 10)
REAL A(N)
!HPF$ PROCESSORS P(8)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
DO IT = 1, 200
  FORALL (K=1:N) A(K) = SQRT(A(K)*1.5 + 2.0)
END DO
CHK = SUM(A)
END`
	prog, err := hpfperf.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		b.Fatal(err)
	}
	for _, avg := range []bool{false, true} {
		avg := avg
		name := "maxloaded"
		if avg {
			name = "average"
		}
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{AverageLoad: avg})
				if err != nil {
					b.Fatal(err)
				}
				errPct = (pred.Microseconds() - meas.Microseconds()) / meas.Microseconds() * 100
			}
			b.ReportMetric(errPct, "err%")
		})
	}
}

// BenchmarkAblationCommModel compares the piecewise (protocol-aware)
// collective characterization with single linear fits on a
// communication-heavy small problem.
func BenchmarkAblationCommModel(b *testing.B) {
	src := suite.LaplaceBB().Source(16, 8)
	prog, err := hpfperf.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Perturb: -1})
	if err != nil {
		b.Fatal(err)
	}
	for _, simple := range []bool{false, true} {
		simple := simple
		name := "piecewise"
		if simple {
			name = "linear"
		}
		b.Run(name, func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{SimpleCommModel: simple})
				if err != nil {
					b.Fatal(err)
				}
				errPct = (pred.Microseconds() - meas.Microseconds()) / meas.Microseconds() * 100
			}
			b.ReportMetric(errPct, "err%")
		})
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks

// BenchmarkCompile measures phase-1 compilation throughput.
func BenchmarkCompile(b *testing.B) {
	src := suite.LaplaceBB().Source(64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hpfperf.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures the interpretation cost (the paper's
// cost-effectiveness claim: prediction is data-size independent).
func BenchmarkPredict(b *testing.B) {
	for _, n := range []int{64, 256} {
		n := n
		b.Run(sanitize(suite.LaplaceBB().Name)+"_"+itoa(n), func(b *testing.B) {
			prog, err := hpfperf.Compile(suite.LaplaceBB().Source(n, 4))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hpfperf.Predict(prog, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasure measures simulated-execution cost (grows with the
// problem size, unlike prediction).
func BenchmarkMeasure(b *testing.B) {
	for _, n := range []int{64, 256} {
		n := n
		b.Run(sanitize(suite.LaplaceBB().Name)+"_"+itoa(n), func(b *testing.B) {
			prog, err := hpfperf.Compile(suite.LaplaceBB().Source(n, 4))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Perturb: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationLoopReorder quantifies the §4.2 loop re-ordering
// optimization: measured time with and without cache-locality ordering.
func BenchmarkAblationLoopReorder(b *testing.B) {
	src := suite.LaplaceBX().Source(96, 4)
	for _, reorder := range []bool{true, false} {
		reorder := reorder
		name := "reordered"
		if !reorder {
			name = "source-order"
		}
		b.Run(name, func(b *testing.B) {
			prog, err := hpfperf.CompileWith(src, hpfperf.CompileOptions{NoLoopReorder: !reorder})
			if err != nil {
				b.Fatal(err)
			}
			var us float64
			for i := 0; i < b.N; i++ {
				meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Perturb: -1})
				if err != nil {
					b.Fatal(err)
				}
				us = meas.Microseconds()
			}
			b.ReportMetric(us, "measuredUS")
		})
	}
}
