// Package server implements hpfserve, the long-running HTTP/JSON
// prediction service over the interpretation framework. The paper
// frames performance interpretation as an interactive tool — users
// query predictions per source line and per directive variant during
// development (§4.2, §5.2) — and this package is the serving stack for
// that workflow: POST /v1/predict (interpret), /v1/measure (simulated
// execution), /v1/autotune (directive search), with a bounded LRU
// compile/report cache, per-request deadlines and cooperative
// cancellation, a concurrency gate, request-size caps, panic recovery
// and graceful drain.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"hpfperf/internal/analysis"
	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/obs"
	"hpfperf/internal/sem"
)

// ResponseMeta carries the per-request correlation identifiers (and,
// when the client opted in with X-HPF-Trace: 1, the span tree) on every
// success response. It is embedded in each response type.
type ResponseMeta struct {
	// RequestID uniquely identifies this request in the server logs.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the request's W3C trace ID (client-supplied via
	// traceparent, or minted by the server).
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the request's span tree (only with X-HPF-Trace: 1).
	Trace *obs.Tree `json:"trace,omitempty"`
}

func (m *ResponseMeta) setMeta(reqID, traceID string, tree *obs.Tree) {
	m.RequestID = reqID
	m.TraceID = traceID
	m.Trace = tree
}

// metaSetter is what api() uses to stamp correlation IDs onto a
// handler's response without knowing its concrete type.
type metaSetter interface {
	setMeta(reqID, traceID string, tree *obs.Tree)
}

// PredictOptions selects the model options of one interpretation
// request (the JSON mirror of core.Options plus compile options).
type PredictOptions struct {
	// NoMemoryModel disables the SAU memory-hierarchy model.
	NoMemoryModel bool `json:"no_memory_model,omitempty"`
	// AverageLoad charges the mean instead of the max-loaded processor.
	AverageLoad bool `json:"average_load,omitempty"`
	// MaskDensity is the assumed FORALL/WHERE mask truth density (0 = 1.0).
	MaskDensity float64 `json:"mask_density,omitempty"`
	// BranchProb is the assumed THEN probability of unresolved branches.
	BranchProb float64 `json:"branch_prob,omitempty"`
	// SimpleCommModel collapses the piecewise communication models.
	SimpleCommModel bool `json:"simple_comm_model,omitempty"`
	// NoCommOpt disables redundant-communication elimination.
	NoCommOpt bool `json:"no_comm_opt,omitempty"`
	// NoLoopReorder disables cache-locality loop re-ordering.
	NoLoopReorder bool `json:"no_loop_reorder,omitempty"`
	// TripCounts supplies loop trip counts by source line.
	TripCounts map[int]int `json:"trip_counts,omitempty"`
	// IntValues supplies integer critical-variable values.
	IntValues map[string]int64 `json:"int_values,omitempty"`
}

func (o *PredictOptions) compilerOptions() compiler.Options {
	if o == nil {
		return compiler.Options{}
	}
	return compiler.Options{NoCommOpt: o.NoCommOpt, NoLoopReorder: o.NoLoopReorder}
}

func (o *PredictOptions) coreOptions() core.Options {
	opts := core.DefaultOptions()
	if o == nil {
		return opts
	}
	opts.MemoryModel = !o.NoMemoryModel
	if o.AverageLoad {
		opts.LoadModel = core.Average
	}
	if o.MaskDensity > 0 {
		opts.MaskDensity = o.MaskDensity
	}
	if o.BranchProb > 0 {
		opts.BranchProb = o.BranchProb
	}
	opts.SimpleCommModel = o.SimpleCommModel
	opts.TripCounts = o.TripCounts
	if len(o.IntValues) > 0 {
		opts.Values = make(map[string]sem.Value, len(o.IntValues))
		for k, v := range o.IntValues {
			opts.Values[k] = sem.IntVal(v)
		}
	}
	return opts
}

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	// Source is the HPF/Fortran 90D program text (required).
	Source string `json:"source"`
	// Machine selects the target system abstraction ("" = ipsc860).
	Machine string `json:"machine,omitempty"`
	// TimeoutMS caps this request's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options configure the interpretation model.
	Options *PredictOptions `json:"options,omitempty"`
	// Profile includes the rendered performance profile in the response.
	Profile bool `json:"profile,omitempty"`
	// HotLines includes the N hottest source lines in the response.
	HotLines int `json:"hot_lines,omitempty"`
}

// PredictResponse is the body of a successful predict call.
type PredictResponse struct {
	ResponseMeta
	Program  string   `json:"program"`
	Procs    int      `json:"procs"`
	EstUS    float64  `json:"est_us"`
	Seconds  float64  `json:"seconds"`
	CompUS   float64  `json:"comp_us"`
	CommUS   float64  `json:"comm_us"`
	OvhdUS   float64  `json:"ovhd_us"`
	Warnings []string `json:"warnings,omitempty"`
	Profile  string   `json:"profile,omitempty"`
	HotLines string   `json:"hot_lines,omitempty"`
	// ElapsedUS is the server-side wall time spent on this request.
	ElapsedUS float64 `json:"elapsed_us"`
}

// MeasureRequest is the body of POST /v1/measure.
type MeasureRequest struct {
	Source    string  `json:"source"`
	Machine   string  `json:"machine,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	Runs      int     `json:"runs,omitempty"`
	Perturb   float64 `json:"perturb,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// NoCacheModel disables the simulator's cache model.
	NoCacheModel bool `json:"no_cache_model,omitempty"`
	// NoPerturb forces noise-free deterministic runs.
	NoPerturb bool `json:"no_perturb,omitempty"`
}

// MeasureResponse is the body of a successful measure call.
type MeasureResponse struct {
	ResponseMeta
	Program    string    `json:"program"`
	Procs      int       `json:"procs"`
	MeasuredUS float64   `json:"measured_us"`
	Seconds    float64   `json:"seconds"`
	RunsUS     []float64 `json:"runs_us,omitempty"`
	PerNodeUS  []float64 `json:"per_node_us,omitempty"`
	Printed    []string  `json:"printed,omitempty"`
	ElapsedUS  float64   `json:"elapsed_us"`
}

// AutotuneRequest is the body of POST /v1/autotune.
type AutotuneRequest struct {
	Source    string `json:"source"`
	Procs     int    `json:"procs"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	NoCyclic  bool   `json:"no_cyclic,omitempty"`
	// Options configure the interpretation of each variant.
	Options *PredictOptions `json:"options,omitempty"`
	// IncludeSource returns the rewritten program of the best variant.
	IncludeSource bool `json:"include_source,omitempty"`
	// Limit truncates the ranked list (0 = all variants).
	Limit int `json:"limit,omitempty"`
}

// AutotuneCandidate is one ranked directive variant.
type AutotuneCandidate struct {
	Desc  string  `json:"desc"`
	EstUS float64 `json:"est_us,omitempty"`
	Error string  `json:"error,omitempty"`
}

// AutotuneResponse is the body of a successful autotune call.
type AutotuneResponse struct {
	ResponseMeta
	Candidates []AutotuneCandidate `json:"candidates"`
	// BestSource is the recommended rewritten program (when requested).
	BestSource string  `json:"best_source,omitempty"`
	ElapsedUS  float64 `json:"elapsed_us"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Source is the HPF/Fortran 90D program text (required).
	Source string `json:"source"`
	// TimeoutMS caps this request's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AnalyzeResponse is the body of a successful analyze call. Diagnostics
// is always present (possibly empty) so the schema is stable for clean
// programs.
type AnalyzeResponse struct {
	ResponseMeta
	Program     string                `json:"program"`
	Procs       int                   `json:"procs"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
	Infos       int                   `json:"infos"`
	// Price is the static cost pre-estimate the admission gate uses; a
	// client can check it against the server's advertised budget before
	// submitting an expensive predict request.
	Price     *analysis.PriceReport `json:"price,omitempty"`
	ElapsedUS float64               `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-2xx API response. RequestID
// and TraceID are present on every response path — including shed
// (429), breaker-open, and drain rejections — so a refused request is
// still correlatable with server logs and traces.
type ErrorResponse struct {
	Error string `json:"error"`
	// Stage names the pipeline stage that failed ("decode", "compile",
	// "interpret", "execute", "search", "deadline", "internal",
	// "overload" for shed/breaker/drain rejections, "transient" for
	// retryable failures worth resubmitting).
	Stage string `json:"stage,omitempty"`
	// RequestID identifies the request in the server logs.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the request's W3C trace ID.
	TraceID string `json:"trace_id,omitempty"`
	// EstimatedCostUnits carries the static cost estimate on 429
	// responses from the cost-admission gate ("admission" stage), so a
	// rejected client knows how far over budget the program priced.
	EstimatedCostUnits float64 `json:"estimated_cost_units,omitempty"`
	// CostLimitUnits is the budget the estimate was checked against.
	CostLimitUnits float64 `json:"cost_limit_units,omitempty"`
}

// TracesResponse is the body of GET /v1/traces: the most recent traced
// requests, newest first.
type TracesResponse struct {
	Traces []obs.TraceRecord `json:"traces"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Inflight int64  `json:"inflight"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// The status line is already out; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, stage string, err error, meta reqMeta) {
	writeJSON(w, status, ErrorResponse{
		Error: err.Error(), Stage: stage,
		RequestID: meta.reqID, TraceID: meta.traceID,
	})
}

// apiError carries an HTTP status and stage label through a handler.
// estCost/costLimit are set by the cost-admission gate so its 429s can
// carry the static estimate in the response body.
type apiError struct {
	status    int
	stage     string
	err       error
	estCost   float64
	costLimit float64
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %v", e.stage, e.err) }

func errf(status int, stage, format string, args ...any) *apiError {
	return &apiError{status: status, stage: stage, err: fmt.Errorf(format, args...)}
}
