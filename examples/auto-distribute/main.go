// Intelligent compiler (paper §7): automatically evaluate directive and
// distribution choices through the source-based interpretation model and
// pick the best one — no execution, no hand-tuning.
package main

import (
	"fmt"
	"log"
	"strings"

	"hpfperf"
)

// A 2-D ADI-like sweep whose best distribution is not obvious: the row
// sweep favours row distributions, the column reduction favours column
// locality.
const src = `PROGRAM adi
PARAMETER (N = 96, STEPS = 4)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = REAL(I)*0.01 + REAL(J)*0.02
DO ISTEP = 1, STEPS
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
CHK = SUM(U)
END`

func main() {
	const procs = 8
	cands, err := hpfperf.AutoDistribute(src, procs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("automatic directive search, %d processors — %d variants evaluated:\n\n",
		procs, len(cands))
	shown := 0
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		marker := "  "
		if shown == 0 {
			marker = "=>"
		}
		fmt.Printf("%s %-40s %10.3fms\n", marker, c.Desc, c.EstUS/1e3)
		shown++
		if shown >= 10 {
			break
		}
	}

	// Verify the winner against simulated measurement.
	best := cands[0]
	prog, err := hpfperf.Compile(best.Source)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Runs: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected %s\n", best.Desc)
	fmt.Printf("predicted %.3fms, measured %.3fms (%+.2f%%)\n",
		best.EstUS/1e3, meas.Microseconds()/1e3,
		(best.EstUS-meas.Microseconds())/meas.Microseconds()*100)

	// Show the rewritten directive lines of the winning program.
	fmt.Println("\nselected directives:")
	for _, line := range strings.Split(best.Source, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "!HPF$") {
			fmt.Println("  " + line)
		}
	}
}
