package core

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/exec"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/sem"
)

func interpret(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	it, err := New(prog, nil, opts)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rep, err := it.Interpret()
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return rep
}

// measure runs the program on the deterministic simulator.
func measure(t *testing.T, src string) float64 {
	t.Helper()
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := ipsc.DefaultConfig(prog.Info.Grid.Size())
	cfg.PerturbAmp = 0
	cfg.TimerResUS = 0
	m, err := ipsc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, m, exec.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.MeasuredUS
}

func errPct(est, meas float64) float64 {
	return math.Abs(est-meas) / meas * 100
}

const piSrcN = `PROGRAM pi
PARAMETER (N = %N%)
REAL F(%N%)
!HPF$ PROCESSORS P(%P%)
!HPF$ DISTRIBUTE F(BLOCK) ONTO P
H = 1.0 / REAL(N)
FORALL (K=1:N) F(K) = 4.0 / (1.0 + ((REAL(K)-0.5)*H)**2)
API = H * SUM(F)
END`

func piSrc(n, p int) string {
	s := strings.ReplaceAll(piSrcN, "%N%", strconv.Itoa(n))
	return strings.ReplaceAll(s, "%P%", strconv.Itoa(p))
}

func TestSAAGStructure(t *testing.T) {
	rep := interpret(t, piSrc(1024, 4), DefaultOptions())
	g := rep.SAAG
	if g.Count() < 5 {
		t.Errorf("AAG has only %d AAUs", g.Count())
	}
	kinds := map[Kind]int{}
	g.Walk(func(a *AAU) { kinds[a.Kind]++ })
	if kinds[IterD] < 2 {
		t.Errorf("IterD AAUs = %d, want >= 2 (forall + reduction)", kinds[IterD])
	}
	if kinds[Comm] < 1 {
		t.Errorf("Comm AAUs = %d, want >= 1 (reduce)", kinds[Comm])
	}
	if len(g.Table) < 1 {
		t.Error("communication table empty")
	}
}

func TestCommTableFilled(t *testing.T) {
	rep := interpret(t, piSrc(1024, 4), DefaultOptions())
	found := false
	for _, rec := range rep.SAAG.Table {
		if rec.Kind == CommReduce {
			found = true
			if rec.CostUS <= 0 || rec.Count != 1 {
				t.Errorf("reduce rec = %+v", rec)
			}
		}
	}
	if !found {
		t.Error("no reduce entry in comm table")
	}
}

func TestPredictionPositiveAndDecomposed(t *testing.T) {
	rep := interpret(t, piSrc(4096, 4), DefaultOptions())
	if rep.TotalUS() <= 0 {
		t.Fatal("zero prediction")
	}
	if rep.Total.CompUS <= 0 || rep.Total.CommUS <= 0 {
		t.Errorf("breakdown = %+v", rep.Total)
	}
	sum := rep.Total.CompUS + rep.Total.CommUS + rep.Total.OvhdUS
	if math.Abs(sum-rep.TotalUS()) > 1e-9 {
		t.Error("components do not sum to total")
	}
}

func TestAccuracyPiAcrossSizes(t *testing.T) {
	for _, n := range []int{128, 512, 4096} {
		for _, p := range []int{1, 2, 4, 8} {
			src := piSrc(n, p)
			est := interpret(t, src, DefaultOptions()).TotalUS()
			meas := measure(t, src)
			if e := errPct(est, meas); e > 20 {
				t.Errorf("PI n=%d p=%d: est=%.1fus meas=%.1fus err=%.1f%%", n, p, est, meas, e)
			}
		}
	}
}

func laplaceSrc(n, iters int, dist string, procs string) string {
	return `PROGRAM lap
PARAMETER (N = ` + strconv.Itoa(n) + `, MAXIT = ` + strconv.Itoa(iters) + `)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P` + procs + `
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T` + dist + ` ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
FORALL (J=1:N) U(1,J) = 100.0
DO ITER = 1, MAXIT
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J)+U(I+1,J)+U(I,J-1)+U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
END`
}

func TestAccuracyLaplace(t *testing.T) {
	for _, cse := range []struct{ dist, procs string }{
		{"(BLOCK,BLOCK)", "(2,2)"},
		{"(BLOCK,*)", "(4)"},
		{"(*,BLOCK)", "(4)"},
	} {
		src := laplaceSrc(64, 5, cse.dist, cse.procs)
		est := interpret(t, src, DefaultOptions()).TotalUS()
		meas := measure(t, src)
		if e := errPct(est, meas); e > 15 {
			t.Errorf("Laplace %s: est=%.0f meas=%.0f err=%.1f%%", cse.dist, est, meas, e)
		}
	}
}

func TestDirectiveRankingMatchesMeasurement(t *testing.T) {
	// The key §5.2.1 claim: predicted ordering of distributions matches
	// the measured ordering.
	type r struct {
		name     string
		est, mea float64
	}
	var rs []r
	for _, cse := range []struct{ name, dist, procs string }{
		{"BB", "(BLOCK,BLOCK)", "(2,2)"},
		{"BX", "(BLOCK,*)", "(4)"},
		{"XB", "(*,BLOCK)", "(4)"},
	} {
		src := laplaceSrc(128, 4, cse.dist, cse.procs)
		rs = append(rs, r{cse.name,
			interpret(t, src, DefaultOptions()).TotalUS(),
			measure(t, src)})
	}
	for i := range rs {
		for j := range rs {
			if i == j {
				continue
			}
			if (rs[i].est < rs[j].est) != (rs[i].mea < rs[j].mea) {
				t.Errorf("ranking mismatch: %s est=%.0f mea=%.0f vs %s est=%.0f mea=%.0f",
					rs[i].name, rs[i].est, rs[i].mea, rs[j].name, rs[j].est, rs[j].mea)
			}
		}
	}
}

func TestCriticalVariableTracing(t *testing.T) {
	// M is assigned from a constant expression before use as a bound.
	src := `PROGRAM c
PARAMETER (N = 64)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
INTEGER M
M = N / 2
DO I = 1, M
  FORALL (K=1:N) A(K) = A(K) + 1.0
END DO
END`
	rep := interpret(t, src, DefaultOptions())
	if rep.TotalUS() <= 0 {
		t.Error("prediction failed with traced critical variable")
	}
}

func TestUnresolvableBoundErrors(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N = 64)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
INTEGER M
M = INT(A(1))
DO I = 1, M
  X = X + 1.0
END DO
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it, err := New(prog, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = it.Interpret()
	if err == nil {
		t.Fatal("want unresolved-bounds error, got nil")
	}
	// The error must name the blocking definition and its source line
	// (M is assigned from a distributed array element at line 7).
	for _, want := range []string{"loop bounds of I", "blocked by", "M", "line 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestUserSuppliedCriticalValue(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N = 64)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
INTEGER M
M = INT(A(1))
DO I = 1, M
  X = X + 1.0
END DO
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Values = map[string]sem.Value{"M": sem.IntVal(10)}
	it, err := New(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := it.Interpret()
	if err != nil {
		t.Fatalf("interpret with user value: %v", err)
	}
	if rep.TotalUS() <= 0 {
		t.Error("no prediction")
	}
}

func TestTripCountOverrideForWhile(t *testing.T) {
	src := `PROGRAM c
!HPF$ PROCESSORS P(1)
X = 1.0
DO WHILE (X .LT. 100.0)
  X = X * 2.0
END DO
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Without a trip count the while loop is an unresolved critical value.
	it, _ := New(prog, nil, DefaultOptions())
	if _, err := it.Interpret(); err == nil {
		t.Error("want error without trip count")
	}
	opts := DefaultOptions()
	opts.TripCounts = map[int]int{4: 7}
	it2, _ := New(prog, nil, opts)
	rep, err := it2.Interpret()
	if err != nil {
		t.Fatalf("with trip count: %v", err)
	}
	if rep.TotalUS() <= 0 {
		t.Error("no prediction")
	}
}

func TestMaskDensityScalesCost(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N = 1024)
REAL A(N), B(N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH T(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
FORALL (K=1:N, B(K) .GT. 0.0) A(K) = SQRT(B(K))
END`
	full := DefaultOptions()
	half := DefaultOptions()
	half.MaskDensity = 0.5
	tf := interpret(t, src, full).TotalUS()
	th := interpret(t, src, half).TotalUS()
	if th >= tf {
		t.Errorf("mask density 0.5 should predict less time: %.1f vs %.1f", th, tf)
	}
}

func TestLoadModelAblation(t *testing.T) {
	// N=10 on 4 procs: block sizes 3,3,3,1 — max-loaded predicts more
	// compute than average.
	src := `PROGRAM c
PARAMETER (N = 10)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
DO IT = 1, 100
  FORALL (K=1:N) A(K) = A(K)*1.5 + 2.0
END DO
END`
	maxOpts := DefaultOptions()
	avgOpts := DefaultOptions()
	avgOpts.LoadModel = Average
	tm := interpret(t, src, maxOpts).TotalUS()
	ta := interpret(t, src, avgOpts).TotalUS()
	if tm <= ta {
		t.Errorf("max-loaded %.1f should exceed average %.1f", tm, ta)
	}
}

func TestByLineMetrics(t *testing.T) {
	rep := interpret(t, piSrc(1024, 4), DefaultOptions())
	// Line 7 is the forall; it must carry compute time.
	m := rep.LineMetrics(7)
	if m.TotalUS() <= 0 {
		t.Errorf("line 7 metrics = %+v", m)
	}
	rng := rep.LineRangeMetrics(1, 100)
	if math.Abs(rng.TotalUS()-rep.TotalUS()) > rep.TotalUS()*0.01 {
		t.Errorf("line-range sum %.1f != total %.1f", rng.TotalUS(), rep.TotalUS())
	}
}

func TestScalarIfBranchResolution(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N = 512)
REAL A(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
MODE = 1
IF (MODE .EQ. 1) THEN
  FORALL (K=1:N) A(K) = 1.0
ELSE
  DO IT = 1, 1000
    FORALL (K=1:N) A(K) = A(K) + 1.0
  END DO
END IF
END`
	rep := interpret(t, src, DefaultOptions())
	// The ELSE branch (1000 iterations) must not be charged.
	quick := interpret(t, strings.Replace(src, "MODE = 1", "MODE = 2", 1), DefaultOptions())
	if rep.TotalUS() >= quick.TotalUS()/10 {
		t.Errorf("branch resolution failed: then=%.1f else=%.1f", rep.TotalUS(), quick.TotalUS())
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", rep.Warnings)
	}
}

func TestDumpWithMetrics(t *testing.T) {
	rep := interpret(t, piSrc(256, 4), DefaultOptions())
	d := rep.SAAG.Dump()
	if !strings.Contains(d, "IterD") || !strings.Contains(d, "comp=") {
		t.Errorf("dump missing metrics:\n%s", d)
	}
}

func TestSingleProcessorNoComm(t *testing.T) {
	rep := interpret(t, piSrc(512, 1), DefaultOptions())
	if rep.Total.CommUS != 0 {
		t.Errorf("single-node comm = %.2f, want 0", rep.Total.CommUS)
	}
}

func TestInterpretationMuchCheaperThanSimulation(t *testing.T) {
	// Cost-effectiveness (§5.3): interpretation work must not grow with
	// the data size the way execution does. We check it completes and
	// produces a sane value for a large size quickly.
	rep := interpret(t, piSrc(65536, 8), DefaultOptions())
	if rep.TotalUS() <= 0 {
		t.Error("no prediction for large problem")
	}
}

func TestGlobalClockMonotone(t *testing.T) {
	rep := interpret(t, piSrc(512, 4), DefaultOptions())
	last := 0.0
	for _, a := range rep.SAAG.Root.Children {
		if a.ClockUS < last {
			t.Fatalf("clock went backwards at AAU %d (%s): %g < %g", a.ID, a.Label, a.ClockUS, last)
		}
		last = a.ClockUS
	}
	final := rep.SAAG.Root.Children[len(rep.SAAG.Root.Children)-1].ClockUS
	if math.Abs(final-rep.TotalUS()) > rep.TotalUS()*0.01 {
		t.Errorf("final clock %g != total %g", final, rep.TotalUS())
	}
}

func TestSAAGConsumerEdges(t *testing.T) {
	rep := interpret(t, piSrc(512, 4), DefaultOptions())
	// The reduce communication must feed a following computation or be
	// terminal; at least one comm record should carry a consumer edge in a
	// multi-statement program.
	linked := 0
	for _, rec := range rep.SAAG.Table {
		if rec.Consumer != 0 {
			linked++
		}
	}
	if linked == 0 {
		t.Error("no SAAG consumer edges recorded")
	}
}

func TestSubgraphMetrics(t *testing.T) {
	rep := interpret(t, piSrc(512, 4), DefaultOptions())
	total := SubgraphMetrics(rep.SAAG.Root)
	if math.Abs(total.TotalUS()-rep.TotalUS()) > 1e-9 {
		t.Errorf("subgraph total %g != report total %g", total.TotalUS(), rep.TotalUS())
	}
	// A loop AAU's subgraph must include its body's time.
	var loop *AAU
	rep.SAAG.Walk(func(a *AAU) {
		if loop == nil && a.Kind == IterD {
			loop = a
		}
	})
	if loop == nil {
		t.Fatal("no IterD AAU")
	}
	sub := SubgraphMetrics(loop)
	if sub.TotalUS() <= loop.Metrics.TotalUS() {
		t.Error("subgraph should exceed the loop's self time")
	}
	if rep.SAAG.FindAAU(loop.ID) != loop {
		t.Error("FindAAU lookup failed")
	}
	if rep.SAAG.FindAAU(99999) != nil {
		t.Error("FindAAU should return nil for unknown IDs")
	}
}

func TestCriticalVariables(t *testing.T) {
	src := `PROGRAM cv
PARAMETER (NN = 64)
REAL A(NN)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
INTEGER M
M = NN/2
MODE = 1
DO I = 1, M
  FORALL (K=1:NN) A(K) = A(K) + 1.0
END DO
IF (MODE .GT. 0) THEN
  X = 1.0
END IF
END`
	prog, err := compiler.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cvs := CriticalVariables(prog)
	names := map[string]CriticalVariable{}
	for _, cv := range cvs {
		names[cv.Name] = cv
	}
	if _, ok := names["M"]; !ok {
		t.Errorf("M (loop bound) should be critical: %v", cvs)
	}
	if _, ok := names["MODE"]; !ok {
		t.Errorf("MODE (branch condition) should be critical: %v", cvs)
	}
	if cv, ok := names["M"]; ok && (cv.Uses == 0 || len(cv.Lines) == 0) {
		t.Errorf("M record incomplete: %+v", cv)
	}
	// Forall index K is a private loop variable, not a user scalar read in
	// the bound expressions.
	if _, ok := names["K"]; ok {
		t.Error("K should not be listed")
	}
}
