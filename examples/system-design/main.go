// System design evaluation (paper §7): use the interpretive framework to
// compare machine designs before buying or building one — the same
// program and directives, predicted against two system abstractions
// (the iPSC/860 and a Paragon XP/S-like successor).
package main

import (
	"fmt"
	"log"

	"hpfperf"
)

func main() {
	nbody, err := hpfperf.SuiteProgramByName("N-Body")
	if err != nil {
		log.Fatal(err)
	}
	lap, err := hpfperf.SuiteProgramByName("Laplace (Blk-X)")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("What-if analysis: same programs, two machine abstractions")
	fmt.Printf("available machines: %v\n\n", hpfperf.Machines())

	for _, cse := range []struct {
		name string
		prog hpfperf.SuiteProgram
		size int
	}{
		{"N-Body (comm: systolic cshift)", nbody, 256},
		{"Laplace (comm: halo exchange)", lap, 128},
	} {
		fmt.Printf("%s, size %d:\n", cse.name, cse.size)
		fmt.Printf("  %5s  %14s %14s %9s\n", "procs", "iPSC/860", "Paragon XP/S", "ratio")
		for _, procs := range []int{1, 4, 8} {
			prog, err := hpfperf.Compile(cse.prog.Source(cse.size, procs))
			if err != nil {
				log.Fatal(err)
			}
			ipsc, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{Machine: "ipsc860"})
			if err != nil {
				log.Fatal(err)
			}
			para, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{Machine: "paragon"})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5d  %12.2fms %12.2fms %8.2fx\n",
				procs, ipsc.Microseconds()/1e3, para.Microseconds()/1e3,
				ipsc.Microseconds()/para.Microseconds())
		}
		fmt.Println()
	}

	fmt.Println("The communication-bound N-Body gains more from the Paragon's")
	fmt.Println("faster interconnect at higher processor counts than the")
	fmt.Println("computation-bound Laplace sweep — the kind of design insight")
	fmt.Println("the paper proposes extracting from the framework (§7).")
}
