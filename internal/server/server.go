package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpfperf/internal/analysis"
	"hpfperf/internal/autotune"
	"hpfperf/internal/compiler"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/jobs"
	"hpfperf/internal/obs"
	"hpfperf/internal/report"
	"hpfperf/internal/sweep"
	"hpfperf/internal/sysmodel"
)

// Config configures a Server.
type Config struct {
	// Engine evaluates requests (worker pool + bounded cache); nil
	// creates a private engine with CacheEntries capacity.
	Engine *sweep.Engine
	// CacheEntries bounds the private engine's LRU cache (<= 0 uses
	// sweep.DefaultCacheEntries). Ignored when Engine is set.
	CacheEntries int
	// Workers bounds the private engine's pool (<= 0 = GOMAXPROCS).
	// Ignored when Engine is set.
	Workers int
	// MaxBodyBytes caps request body size (<= 0 = 1 MiB).
	MaxBodyBytes int64
	// MaxConcurrent bounds requests evaluated simultaneously; further
	// requests join a bounded wait queue (<= 0 = 4×workers).
	MaxConcurrent int
	// QueueWait bounds how long a request may wait for a worker slot
	// before being shed with 429 + Retry-After (<= 0 = 10s).
	QueueWait time.Duration
	// MaxQueueDepth bounds how many requests may wait for a slot at
	// once; beyond it requests are shed immediately with 429
	// (<= 0 = 4×MaxConcurrent).
	MaxQueueDepth int
	// MaxCostUnits caps the static cost pre-estimate (analysis.Price) of
	// a single predict/measure request; over-budget programs are rejected
	// with 429 carrying the estimate before any interpretation sweep runs
	// (0 = no per-request cost limit).
	MaxCostUnits float64
	// MaxInflightCostUnits bounds the summed static cost of admitted
	// in-flight predict/measure requests — the priced variant of the
	// bounded queue: cheap requests keep flowing while one expensive
	// request is in flight, and expensive ones queue on cost rather than
	// raw concurrency (0 = no aggregate cost budget). A request is always
	// admitted when no priced work is in flight, so a single request
	// larger than the budget cannot starve.
	MaxInflightCostUnits float64
	// BreakerThreshold is the consecutive internal-failure (HTTP 500)
	// count that opens a route's circuit breaker (0 = 8, < 0 disables
	// the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds a route before
	// admitting a half-open probe (<= 0 = 5s).
	BreakerCooldown time.Duration
	// MaxBatchPoints caps how many points one POST /v1/batch request may
	// carry (<= 0 = 1024). Larger tables should split; each sub-batch
	// still shares compiles through the engine cache.
	MaxBatchPoints int
	// SSEHeartbeat is the idle-comment interval of the
	// GET /v1/jobs/{id}/events stream, keeping proxies from timing the
	// connection out between state transitions (<= 0 = 15s).
	SSEHeartbeat time.Duration
	// DefaultTimeout applies when a request carries no timeout_ms
	// (<= 0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (<= 0 = 5m).
	MaxTimeout time.Duration
	// Log receives structured request logs (nil = silent). Request logs
	// carry request_id and trace_id attributes for correlation with
	// traced responses and /v1/traces.
	Log *slog.Logger
	// TraceAll forces tracing of every request, as if each carried
	// X-HPF-Trace: 1 (the span tree is still only inlined in responses
	// to requests that asked for it; forced traces land in the ring).
	TraceAll bool
	// TraceRing bounds the /v1/traces ring buffer (<= 0 = 64).
	TraceRing int
	// ExposeTraces also serves GET /v1/traces on the public API mux.
	// Off by default: traces expose every request's route, timing and
	// span attributes, so like pprof they belong on the isolated debug
	// listener (TracesHandler / hpfserve -debug-addr).
	ExposeTraces bool
}

// Server is the hpfserve HTTP API. Create with New, expose with
// Handler, and drain with Shutdown before process exit.
type Server struct {
	cfg      Config
	eng      *sweep.Engine
	mux      *http.ServeMux
	sem      chan struct{}
	met      *metrics
	ring     *obs.Ring           // last N request traces (GET /v1/traces)
	breakers map[string]*breaker // per-route; nil map when disabled
	jobs     *jobs.Manager       // durable async jobs; nil until OpenJobs

	reqMu    sync.Mutex // guards met.requests growth
	inflight sync.WaitGroup
	draining atomic.Bool

	// priceMu/prices memoize the static cost estimate per compiled
	// program: the engine's LRU hands back pointer-identical *hir.Program
	// values for cached sources, and pricing (which re-runs definition
	// tracing) would otherwise dominate a cache-hot predict request.
	priceMu sync.Mutex
	prices  map[*hir.Program]*analysis.PriceReport
}

const (
	routePredict  = "predict"
	routeMeasure  = "measure"
	routeAutotune = "autotune"
	routeAnalyze  = "analyze"
	routeBatch    = "batch"
	routeJobs     = "jobs"
	routeEvents   = "jobs_events"
)

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sweep.New(sweep.Options{
			Workers: cfg.Workers,
			Cache:   sweep.NewCacheSize(cfg.CacheEntries),
		})
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4 * eng.Workers()
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 10 * time.Second
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 4 * cfg.MaxConcurrent
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 64
	}
	if cfg.MaxBatchPoints <= 0 {
		cfg.MaxBatchPoints = 1024
	}
	if cfg.SSEHeartbeat <= 0 {
		cfg.SSEHeartbeat = 15 * time.Second
	}
	routes := []string{routePredict, routeMeasure, routeAutotune, routeAnalyze, routeBatch, routeJobs}
	s := &Server{
		cfg:  cfg,
		eng:  eng,
		mux:  http.NewServeMux(),
		sem:  make(chan struct{}, cfg.MaxConcurrent),
		met:  newMetrics(routes),
		ring: obs.NewRing(cfg.TraceRing),
	}
	if cfg.BreakerThreshold > 0 {
		s.breakers = make(map[string]*breaker, len(routes))
		for _, r := range routes {
			s.breakers[r] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	s.mux.HandleFunc("/v1/predict", s.api(routePredict, s.handlePredict))
	s.mux.HandleFunc("/v1/measure", s.api(routeMeasure, s.handleMeasure))
	s.mux.HandleFunc("/v1/autotune", s.api(routeAutotune, s.handleAutotune))
	s.mux.HandleFunc("/v1/analyze", s.api(routeAnalyze, s.handleAnalyze))
	s.mux.HandleFunc("/v1/batch", s.api(routeBatch, s.handleBatch))
	// Async job surfaces (jobs.go). Registered unconditionally so the
	// routes answer with a typed error when OpenJobs was not called.
	s.mux.HandleFunc("POST /v1/jobs", s.api(routeJobs, s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	if cfg.ExposeTraces {
		s.mux.HandleFunc("/v1/traces", s.handleTraces)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Engine returns the sweep engine serving this server's requests.
func (s *Server) Engine() *sweep.Engine { return s.eng }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admitting API requests, drains the job subsystem (a
// graceful handoff: running jobs flush their final sweep checkpoint and
// are re-marked submitted in the journal, so the next process resumes
// them), and waits for in-flight requests (or for ctx to end, returning
// its error). Pair it with http.Server.Shutdown for connection-level
// draining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.jobs != nil {
		if err := s.jobs.Drain(ctx); err != nil {
			return err
		}
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// reqMeta is the per-request correlation state: the request ID (always
// minted), the trace ID (from a client traceparent header or minted),
// and the tracer when this request records spans.
type reqMeta struct {
	reqID   string
	traceID string
	tracer  *obs.Tracer // nil when the request is untraced
	inline  bool        // client asked for the tree in the response
}

// newMeta mints the request's correlation IDs, honoring a well-formed
// client traceparent, and decides whether to trace: the client opts in
// with X-HPF-Trace: 1, or Config.TraceAll forces it.
func (s *Server) newMeta(r *http.Request) reqMeta {
	m := reqMeta{reqID: obs.NewSpanID()}
	if tp := r.Header.Get("traceparent"); tp != "" {
		if id, err := obs.ParseTraceparent(tp); err == nil {
			m.traceID = id
		}
	}
	if m.traceID == "" {
		m.traceID = obs.NewTraceID()
	}
	m.inline = r.Header.Get("X-HPF-Trace") == "1"
	if m.inline || s.cfg.TraceAll {
		m.tracer = obs.NewTracer(m.traceID)
	}
	return m
}

func (s *Server) log(level slog.Level, msg string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Log(context.Background(), level, msg, args...)
	}
}

func (s *Server) recordRequest(route string, code int) {
	s.reqMu.Lock()
	k := s.met.key(route, code)
	c, ok := s.met.requests[k]
	if !ok {
		c = &atomic.Int64{}
		s.met.requests[k] = c
	}
	s.reqMu.Unlock()
	c.Add(1)
}

// timeout resolves a request's timeout_ms against the server limits.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// retryAfterHeader advertises when a shed client should come back;
// whole seconds, never below 1 (the header's granularity).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
}

// shed rejects a request with 429 + Retry-After and counts it in the
// dedicated shed counter (distinguishable from other rejections in
// /metrics).
func (s *Server) shed(w http.ResponseWriter, hint time.Duration, err error, meta reqMeta) int {
	s.met.shed.Add(1)
	retryAfterHeader(w, hint)
	writeError(w, http.StatusTooManyRequests, "overload", err, meta)
	return http.StatusTooManyRequests
}

// acquireSlot runs the load-shedding concurrency gate: take a free
// slot immediately, otherwise join the bounded wait queue for at most
// QueueWait. A full queue or an expired wait sheds the request (429 +
// Retry-After); a client that goes away while queued gets 503. ok
// reports whether a slot was acquired (the caller must release it).
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request, meta reqMeta) (code int, ok bool) {
	select {
	case s.sem <- struct{}{}:
		return http.StatusOK, true
	default:
	}
	if s.met.queued.Add(1) > int64(s.cfg.MaxQueueDepth) {
		s.met.queued.Add(-1)
		return s.shed(w, s.cfg.QueueWait/2, fmt.Errorf("server saturated: %d requests in flight and wait queue full", cap(s.sem)), meta), false
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		s.met.queued.Add(-1)
		return http.StatusOK, true
	case <-timer.C:
		s.met.queued.Add(-1)
		return s.shed(w, s.cfg.QueueWait/2, fmt.Errorf("no worker slot within %v", s.cfg.QueueWait), meta), false
	case <-r.Context().Done():
		s.met.queued.Add(-1)
		s.met.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "overload", fmt.Errorf("cancelled while waiting for a worker slot"), meta)
		return http.StatusServiceUnavailable, false
	}
}

// api wraps one POST handler with the serving-stack concerns: method
// filtering, drain refusal, the circuit breaker, the load-shedding
// concurrency gate, the body-size cap, fault injection, panic
// recovery, latency/metrics accounting and JSON error rendering.
func (s *Server) api(route string, h func(ctx context.Context, body []byte) (any, *apiError)) http.HandlerFunc {
	br := s.breakers[route] // nil when breakers are disabled
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		// Correlation IDs are minted before any branch, and echoed both
		// as headers and in every JSON body — including shed, breaker,
		// drain and method rejections — so no response is anonymous.
		meta := s.newMeta(r)
		w.Header().Set("X-HPF-Request-Id", meta.reqID)
		w.Header().Set("traceparent", obs.FormatTraceparent(meta.traceID))

		var root *obs.Span
		if meta.tracer != nil {
			root = meta.tracer.Root("server." + route)
		}
		defer func() {
			elapsed := time.Since(start)
			var exemplarID string
			if meta.tracer != nil {
				root.End()
				exemplarID = meta.traceID
				s.ring.Add(obs.TraceRecord{
					TraceID: meta.traceID,
					Route:   route,
					Status:  code,
					DurUS:   float64(elapsed) / float64(time.Microsecond),
					Start:   start,
					Tree:    meta.tracer.Tree(),
				})
			}
			s.met.latency[route].observe(elapsed.Seconds(), exemplarID)
			s.recordRequest(route, code)
		}()

		if r.Method != http.MethodPost {
			code = http.StatusMethodNotAllowed
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, code, "decode", fmt.Errorf("use POST"), meta)
			return
		}
		if s.draining.Load() {
			code = http.StatusServiceUnavailable
			s.met.rejected.Add(1)
			retryAfterHeader(w, s.cfg.QueueWait)
			writeError(w, code, "overload", fmt.Errorf("server is draining"), meta)
			return
		}

		// The circuit breaker fails fast before any work when the route's
		// pipeline has been failing consecutively; only internal failures
		// (HTTP 500) count against it.
		if retry, ok := br.allow(start); !ok {
			code = http.StatusServiceUnavailable
			s.met.breakerRejected.Add(1)
			retryAfterHeader(w, retry)
			writeError(w, code, "overload", fmt.Errorf("circuit breaker open for %s", route), meta)
			return
		}
		// Every path below reports its outcome, so a half-open probe can
		// never be leaked in flight.
		defer func() { br.report(code == http.StatusInternalServerError, time.Now()) }()

		s.inflight.Add(1)
		defer s.inflight.Done()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
				writeError(w, code, "decode", fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), meta)
			} else {
				code = http.StatusBadRequest
				writeError(w, code, "decode", err, meta)
			}
			return
		}

		var ok bool
		if code, ok = s.acquireSlot(w, r, meta); !ok {
			return
		}
		defer func() { <-s.sem }()

		ctx := r.Context()
		if root != nil {
			ctx = obs.ContextWithSpan(ctx, root)
		}
		var resp any
		var aerr *apiError
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					s.met.panics.Add(1)
					aerr = errf(http.StatusInternalServerError, "internal", "panic: %v", rec)
				}
			}()
			// Chaos hook: -chaos / HPFPERF_FAULTS can error, panic or
			// delay any route here; the panic kind exercises the recover
			// above.
			if ferr := faults.Fire(faults.ServerSite(route)); ferr != nil {
				aerr = &apiError{status: http.StatusInternalServerError, stage: "internal", err: ferr}
				return
			}
			resp, aerr = h(ctx, body)
		}()
		if aerr != nil {
			code = aerr.status
			if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
				retryAfterHeader(w, time.Second)
			}
			s.log(slog.LevelWarn, "request failed",
				"route", route, "code", code, "stage", aerr.stage, "err", aerr.err.Error(),
				"request_id", meta.reqID, "trace_id", meta.traceID)
			writeJSON(w, code, ErrorResponse{
				Error: aerr.err.Error(), Stage: aerr.stage,
				RequestID: meta.reqID, TraceID: meta.traceID,
				EstimatedCostUnits: aerr.estCost, CostLimitUnits: aerr.costLimit,
			})
			return
		}
		if m, isMeta := resp.(metaSetter); isMeta {
			var tree *obs.Tree
			if meta.tracer != nil && meta.inline {
				// Close the root now so the inlined tree carries the final
				// request duration (the deferred End keeps this first end).
				root.End()
				tree = meta.tracer.Tree()
			}
			m.setMeta(meta.reqID, meta.traceID, tree)
		}
		s.log(slog.LevelInfo, "request served",
			"route", route, "code", code, "elapsed", time.Since(start).Round(time.Microsecond).String(),
			"request_id", meta.reqID, "trace_id", meta.traceID)
		writeJSON(w, code, resp)
	}
}

// TracesHandler returns the GET /v1/traces handler for mounting on a
// separate trusted listener (hpfserve serves it on -debug-addr next to
// pprof). Config.ExposeTraces instead mounts it on the public mux.
func (s *Server) TracesHandler() http.Handler { return http.HandlerFunc(s.handleTraces) }

// handleTraces serves the retained recent request traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	// Mint correlation IDs so even this endpoint's refusals are
	// correlatable; the tracer is dropped — listing traces is not work
	// worth spanning (and must not feed the ring it serves).
	meta := s.newMeta(r)
	meta.tracer = nil
	w.Header().Set("X-HPF-Request-Id", meta.reqID)
	w.Header().Set("traceparent", obs.FormatTraceparent(meta.traceID))
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "decode", fmt.Errorf("use GET"), meta)
		return
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.ring.Snapshot()})
}

// ctxErr classifies a pipeline error: deadline and cancellation get
// timeout statuses, recovered panics are typed (*sweep.PanicError →
// 500), other transient failures advertise 503 so well-behaved clients
// retry, and everything else falls through to fallback.
func ctxErr(err error, fallbackStatus int, stage string) *apiError {
	var pe *sweep.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, stage: "deadline", err: err}
	case errors.Is(err, context.Canceled):
		return &apiError{status: http.StatusServiceUnavailable, stage: "deadline", err: err}
	case errors.As(err, &pe):
		return &apiError{status: http.StatusInternalServerError, stage: "internal", err: err}
	case sweep.IsTransient(err):
		return &apiError{status: http.StatusServiceUnavailable, stage: "transient", err: err}
	}
	return &apiError{status: fallbackStatus, stage: stage, err: err}
}

func decode[T any](body []byte, req *T) *apiError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return errf(http.StatusBadRequest, "decode", "invalid request: %v", err)
	}
	return nil
}

// validatePredict applies the pre-compile request checks of
// /v1/predict; /v1/batch applies the same checks per point so a point's
// error is byte-identical to the sequential call's.
func validatePredict(req *PredictRequest) *apiError {
	if strings.TrimSpace(req.Source) == "" {
		return errf(http.StatusBadRequest, "decode", "source is required")
	}
	if req.Machine != "" {
		if _, err := sysmodel.MachineByName(req.Machine); err != nil {
			return errf(http.StatusBadRequest, "decode", "%v", err)
		}
	}
	return nil
}

// evalPredict runs the interpretation pipeline for one validated,
// compiled and cost-admitted predict request. ElapsedUS is left zero:
// the synchronous handler stamps wall time afterwards, while batch
// points and async jobs keep the deterministic form.
func (s *Server) evalPredict(ctx context.Context, req *PredictRequest) (*PredictResponse, *apiError) {
	rep, err := s.eng.InterpretMachine(ctx, req.Machine, req.Source, req.Options.compilerOptions(), req.Options.coreOptions())
	if err != nil {
		return nil, ctxErr(err, http.StatusUnprocessableEntity, "interpret")
	}
	resp := &PredictResponse{
		Program:  rep.Program,
		Procs:    rep.Procs,
		EstUS:    rep.TotalUS(),
		Seconds:  rep.EstimatedSeconds(),
		CompUS:   rep.Total.CompUS,
		CommUS:   rep.Total.CommUS,
		OvhdUS:   rep.Total.OvhdUS,
		Warnings: rep.Warnings,
	}
	if req.Profile {
		resp.Profile = report.Profile(rep)
	}
	if req.HotLines > 0 {
		resp.HotLines = report.HotLines(rep, req.HotLines)
	}
	return resp, nil
}

func (s *Server) handlePredict(ctx context.Context, body []byte) (any, *apiError) {
	var req PredictRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if aerr := validatePredict(&req); aerr != nil {
		return nil, aerr
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	prog, err := s.eng.CompileContext(ctx, req.Source, req.Options.compilerOptions())
	if err != nil {
		return nil, ctxErr(err, http.StatusBadRequest, "compile")
	}
	// Cost-admission gate: price the compiled program statically and
	// check it against the per-request and in-flight budgets before the
	// interpretation sweep runs.
	_, releaseCost, aerr := s.admitCost(prog)
	if aerr != nil {
		return nil, aerr
	}
	defer releaseCost()
	resp, aerr := s.evalPredict(ctx, &req)
	if aerr != nil {
		return nil, aerr
	}
	resp.ElapsedUS = float64(time.Since(start)) / float64(time.Microsecond)
	return resp, nil
}

// validateMeasure applies the pre-compile request checks of
// /v1/measure. Machine validation deliberately stays in evalMeasure:
// the sequential handler checks it only after a successful compile, and
// batch points must fail in the same order.
func validateMeasure(req *MeasureRequest) *apiError {
	if strings.TrimSpace(req.Source) == "" {
		return errf(http.StatusBadRequest, "decode", "source is required")
	}
	return nil
}

// measureSpec resolves a measure request against its compiled program:
// machine selection, perturbation/seed/cache-model knobs, and an eager
// machine construction so misconfiguration stays a 400 before the
// cached execution path runs.
func measureSpec(req *MeasureRequest, prog *hir.Program) (sweep.MeasureSpec, *apiError) {
	cfg := ipsc.DefaultConfig(prog.Info.Grid.Size())
	if req.Machine != "" {
		base, err := sysmodel.MachineByName(req.Machine)
		if err != nil {
			return sweep.MeasureSpec{}, errf(http.StatusBadRequest, "decode", "%v", err)
		}
		cfg.Base = base
	}
	if req.Perturb > 0 {
		cfg.PerturbAmp = req.Perturb
	}
	if req.NoPerturb {
		cfg.PerturbAmp = 0
		cfg.TimerResUS = 0
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.NoCacheModel {
		cfg.CacheModel = false
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	if _, err := ipsc.New(cfg); err != nil {
		return sweep.MeasureSpec{}, errf(http.StatusBadRequest, "decode", "%v", err)
	}
	return sweep.MeasureSpec{
		Machine:    req.Machine,
		Runs:       runs,
		PerturbAmp: cfg.PerturbAmp,
		TimerResUS: cfg.TimerResUS,
		Seed:       cfg.Seed,
		CacheModel: cfg.CacheModel,
	}, nil
}

// evalMeasure runs the simulated-execution pipeline for one validated,
// compiled and cost-admitted measure request. ElapsedUS is left zero
// (see evalPredict).
func (s *Server) evalMeasure(ctx context.Context, req *MeasureRequest, prog *hir.Program) (*MeasureResponse, *apiError) {
	spec, aerr := measureSpec(req, prog)
	if aerr != nil {
		return nil, aerr
	}
	res, err := s.eng.MeasureContext(ctx, req.Source, compiler.Options{}, spec)
	if err != nil {
		return nil, ctxErr(err, http.StatusUnprocessableEntity, "execute")
	}
	return &MeasureResponse{
		Program:    prog.Name,
		Procs:      prog.Info.Grid.Size(),
		MeasuredUS: res.MeasuredUS,
		Seconds:    res.MeasuredUS / 1e6,
		RunsUS:     res.RunsUS,
		PerNodeUS:  res.PerNodeUS,
		Printed:    res.Printed,
	}, nil
}

func (s *Server) handleMeasure(ctx context.Context, body []byte) (any, *apiError) {
	var req MeasureRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if aerr := validateMeasure(&req); aerr != nil {
		return nil, aerr
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	prog, err := s.eng.CompileContext(ctx, req.Source, compiler.Options{})
	if err != nil {
		return nil, ctxErr(err, http.StatusBadRequest, "compile")
	}
	_, releaseCost, aerr := s.admitCost(prog)
	if aerr != nil {
		return nil, aerr
	}
	defer releaseCost()
	resp, aerr := s.evalMeasure(ctx, &req, prog)
	if aerr != nil {
		return nil, aerr
	}
	resp.ElapsedUS = float64(time.Since(start)) / float64(time.Microsecond)
	return resp, nil
}

func (s *Server) handleAutotune(ctx context.Context, body []byte) (any, *apiError) {
	var req AutotuneRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, errf(http.StatusBadRequest, "decode", "source is required")
	}
	if req.Procs <= 0 {
		return nil, errf(http.StatusBadRequest, "decode", "procs must be positive")
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	cands, err := autotune.SearchContext(ctx, req.Source, autotune.Options{
		Procs:    req.Procs,
		NoCyclic: req.NoCyclic,
		Interp:   req.Options.coreOptions(),
		Engine:   s.eng,
	})
	if err != nil {
		return nil, ctxErr(err, http.StatusBadRequest, "search")
	}
	resp := &AutotuneResponse{ElapsedUS: float64(time.Since(start)) / float64(time.Microsecond)}
	for i, c := range cands {
		if req.Limit > 0 && i >= req.Limit {
			break
		}
		ac := AutotuneCandidate{Desc: c.Desc()}
		if c.Err != nil {
			ac.Error = c.Err.Error()
		} else {
			ac.EstUS = c.EstUS
		}
		resp.Candidates = append(resp.Candidates, ac)
	}
	if req.IncludeSource && len(cands) > 0 && cands[0].Err == nil {
		resp.BestSource = cands[0].Source
	}
	return resp, nil
}

func (s *Server) handleAnalyze(ctx context.Context, body []byte) (any, *apiError) {
	var req AnalyzeRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, errf(http.StatusBadRequest, "decode", "source is required")
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	prog, err := s.eng.CompileContext(ctx, req.Source, compiler.Options{})
	if err != nil {
		return nil, ctxErr(err, http.StatusBadRequest, "compile")
	}
	// The passes themselves are not context-aware (they are bounded by
	// the tracer's statement budget); honor an already-expired deadline
	// before starting them.
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err, http.StatusGatewayTimeout, "analyze")
	}
	rep := analysis.NewReport("", prog)
	e, w, i := rep.Counts()
	return &AnalyzeResponse{
		Program:     rep.Program,
		Procs:       rep.Procs,
		Diagnostics: rep.Diagnostics,
		Errors:      e,
		Warnings:    w,
		Infos:       i,
		Price:       rep.Price,
		ElapsedUS:   float64(time.Since(start)) / float64(time.Microsecond),
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{Status: status, Inflight: s.met.inflight.Load()})
}

// acceptsOpenMetrics reports whether the scrape client negotiated the
// OpenMetrics exposition format via its Accept header. Only that
// format may carry exemplars; the classic text parser fails the whole
// scrape on the exemplar's `#`.
func acceptsOpenMetrics(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var brs []breakerStat
	for _, route := range []string{routeAnalyze, routeAutotune, routeMeasure, routePredict} {
		if b, ok := s.breakers[route]; ok {
			state, opens := b.snapshot()
			brs = append(brs, breakerStat{route: route, state: state, opens: opens})
		}
	}
	om := acceptsOpenMetrics(r)
	var b strings.Builder
	s.reqMu.Lock()
	s.met.render(&b, s.eng.Snapshot(), s.eng.Cache().CacheStats(), brs, om)
	s.reqMu.Unlock()
	if s.jobs != nil {
		renderJobsMetrics(&b, s.jobs.Metrics())
	}
	if om {
		b.WriteString("# EOF\n")
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	_, _ = io.WriteString(w, b.String())
}
