package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"hpfperf/internal/sweep"
)

// latencyBuckets are the upper bounds (seconds) of the request latency
// histogram, chosen to straddle the spread between a cache-hit predict
// (~µs) and a full measurement sweep (~s).
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// exemplar links one histogram bucket to a recent trace that landed in
// it, so a tail-latency bucket on /metrics can be followed to the
// corresponding span tree on /v1/traces.
type exemplar struct {
	traceID string
	seconds float64
}

// histogram is a fixed-bucket latency histogram with atomic counters
// (one per route; written on every request, read by /metrics).
type histogram struct {
	counts    []atomic.Int64 // len(latencyBuckets)+1; last is +Inf
	exemplars []atomic.Value // of exemplar; last traced request per bucket
	sumNS     atomic.Int64
	total     atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{
		counts:    make([]atomic.Int64, len(latencyBuckets)+1),
		exemplars: make([]atomic.Value, len(latencyBuckets)+1),
	}
}

// observe records one request latency. traceID is non-empty only for
// traced requests; it becomes the bucket's exemplar.
func (h *histogram) observe(seconds float64, traceID string) {
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(exemplar{traceID: traceID, seconds: seconds})
	}
	h.sumNS.Add(int64(seconds * 1e9))
	h.total.Add(1)
}

// metrics aggregates the server's own counters. Sweep-engine counters
// (compiles, cache hits, evictions) are read live from the engine at
// render time rather than duplicated here.
type metrics struct {
	requests        map[string]*atomic.Int64 // "route|code" -> count
	latency         map[string]*histogram    // route -> histogram
	inflight        atomic.Int64
	queued          atomic.Int64 // requests currently waiting for a worker slot
	rejected        atomic.Int64 // drain refusals + clients gone while queued
	shed            atomic.Int64 // requests shed by the gate with 429 + Retry-After
	breakerRejected atomic.Int64 // requests refused by an open circuit breaker
	panics          atomic.Int64 // handler panics recovered

	// Cost-admission gate counters (see admission.go). The in-flight
	// accumulator is in milli-units so reservation stays one CAS.
	costRejected      atomic.Int64 // requests refused over a cost budget (429)
	costInflightMilli atomic.Int64 // reserved static cost of admitted requests
	costAdmittedMilli atomic.Int64 // cumulative admitted static cost

	// Batch data plane and SSE streaming counters (batch.go, events.go).
	batchPointsOK     atomic.Int64 // batch points answered with a result
	batchPointsFailed atomic.Int64 // batch points answered with a per-point error
	sseStreams        atomic.Int64 // live /v1/jobs/{id}/events streams (gauge)
	sseEvents         atomic.Int64 // SSE events written to clients
	sseHeartbeats     atomic.Int64 // SSE heartbeat comments written
}

// writeExemplar appends an OpenMetrics exemplar (` # {trace_id=
// "..."} value`) to a bucket line when a traced request has landed in
// that bucket, linking the histogram to GET /v1/traces. Exemplars are
// only legal in the OpenMetrics exposition format — the classic
// Prometheus text parser rejects the whole scrape on the `#` — so om
// gates them on the client having negotiated OpenMetrics via Accept.
func writeExemplar(b *strings.Builder, v *atomic.Value, om bool) {
	if !om {
		return
	}
	ex, ok := v.Load().(exemplar)
	if !ok {
		return
	}
	fmt.Fprintf(b, " # {trace_id=%q} %g", ex.traceID, ex.seconds)
}

// breakerStat is one route's circuit-breaker view for /metrics.
type breakerStat struct {
	route string
	state BreakerState
	opens int64
}

func newMetrics(routes []string) *metrics {
	m := &metrics{
		requests: make(map[string]*atomic.Int64),
		latency:  make(map[string]*histogram),
	}
	for _, r := range routes {
		m.latency[r] = newHistogram()
	}
	return m
}

// countRequest records a completed request. The requests map is only
// grown under the registry lock of Server.recordRequest.
func (m *metrics) key(route string, code int) string {
	return fmt.Sprintf("%s|%d", route, code)
}

// render writes the text exposition of the server counters plus the
// live sweep-engine and cache counters. om selects the OpenMetrics
// format (exemplars on histogram buckets, trailing # EOF); false emits
// the classic Prometheus text format, which has no exemplar syntax.
func (m *metrics) render(b *strings.Builder, snap sweep.Snapshot, cs sweep.CacheStats, brs []breakerStat, om bool) {
	fmt.Fprintf(b, "# HELP hpfserve_requests_total Completed requests by route and status code.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "|", 2)
		fmt.Fprintf(b, "hpfserve_requests_total{route=%q,code=%q} %d\n", parts[0], parts[1], m.requests[k].Load())
	}

	fmt.Fprintf(b, "# HELP hpfserve_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_request_duration_seconds histogram\n")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := m.latency[r]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "hpfserve_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d", r, ub, cum)
			writeExemplar(b, &h.exemplars[i], om)
			b.WriteByte('\n')
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(b, "hpfserve_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d", r, cum)
		writeExemplar(b, &h.exemplars[len(latencyBuckets)], om)
		b.WriteByte('\n')
		fmt.Fprintf(b, "hpfserve_request_duration_seconds_sum{route=%q} %g\n", r, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(b, "hpfserve_request_duration_seconds_count{route=%q} %d\n", r, h.total.Load())
	}

	fmt.Fprintf(b, "# HELP hpfserve_inflight_requests Requests currently being served.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_inflight_requests gauge\n")
	fmt.Fprintf(b, "hpfserve_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(b, "# HELP hpfserve_queued_requests Requests currently waiting for a worker slot.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_queued_requests gauge\n")
	fmt.Fprintf(b, "hpfserve_queued_requests %d\n", m.queued.Load())
	fmt.Fprintf(b, "# HELP hpfserve_rejected_total Requests refused during drain or abandoned by their client while queued.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_rejected_total counter\n")
	fmt.Fprintf(b, "hpfserve_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(b, "# HELP hpfserve_shed_total Requests shed by the saturated concurrency gate (429 + Retry-After).\n")
	fmt.Fprintf(b, "# TYPE hpfserve_shed_total counter\n")
	fmt.Fprintf(b, "hpfserve_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(b, "# HELP hpfserve_breaker_rejected_total Requests refused by an open circuit breaker.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_breaker_rejected_total counter\n")
	fmt.Fprintf(b, "hpfserve_breaker_rejected_total %d\n", m.breakerRejected.Load())
	fmt.Fprintf(b, "# HELP hpfserve_breaker_state Circuit breaker state by route (0=closed, 1=half-open, 2=open).\n")
	fmt.Fprintf(b, "# TYPE hpfserve_breaker_state gauge\n")
	for _, br := range brs {
		fmt.Fprintf(b, "hpfserve_breaker_state{route=%q} %d\n", br.route, int(br.state))
	}
	fmt.Fprintf(b, "# HELP hpfserve_breaker_opens_total Circuit breaker open transitions by route.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_breaker_opens_total counter\n")
	for _, br := range brs {
		fmt.Fprintf(b, "hpfserve_breaker_opens_total{route=%q} %d\n", br.route, br.opens)
	}
	fmt.Fprintf(b, "# HELP hpfserve_cost_rejected_total Requests refused by the static cost-admission gate (429 with the estimate in the body).\n")
	fmt.Fprintf(b, "# TYPE hpfserve_cost_rejected_total counter\n")
	fmt.Fprintf(b, "hpfserve_cost_rejected_total %d\n", m.costRejected.Load())
	fmt.Fprintf(b, "# HELP hpfserve_cost_inflight_units Reserved static cost of admitted in-flight requests.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_cost_inflight_units gauge\n")
	fmt.Fprintf(b, "hpfserve_cost_inflight_units %g\n", float64(m.costInflightMilli.Load())/1000)
	fmt.Fprintf(b, "# HELP hpfserve_cost_admitted_units_total Cumulative static cost admitted through the gate.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_cost_admitted_units_total counter\n")
	fmt.Fprintf(b, "hpfserve_cost_admitted_units_total %g\n", float64(m.costAdmittedMilli.Load())/1000)
	fmt.Fprintf(b, "# HELP hpfserve_batch_points_total Batch points by per-point outcome.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_batch_points_total counter\n")
	fmt.Fprintf(b, "hpfserve_batch_points_total{outcome=\"ok\"} %d\n", m.batchPointsOK.Load())
	fmt.Fprintf(b, "hpfserve_batch_points_total{outcome=\"error\"} %d\n", m.batchPointsFailed.Load())
	fmt.Fprintf(b, "# HELP hpfserve_sse_streams Live job event streams.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_sse_streams gauge\n")
	fmt.Fprintf(b, "hpfserve_sse_streams %d\n", m.sseStreams.Load())
	fmt.Fprintf(b, "# HELP hpfserve_sse_events_total SSE events written to clients.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_sse_events_total counter\n")
	fmt.Fprintf(b, "hpfserve_sse_events_total %d\n", m.sseEvents.Load())
	fmt.Fprintf(b, "# HELP hpfserve_sse_heartbeats_total SSE heartbeat comments written on idle streams.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_sse_heartbeats_total counter\n")
	fmt.Fprintf(b, "hpfserve_sse_heartbeats_total %d\n", m.sseHeartbeats.Load())
	fmt.Fprintf(b, "# HELP hpfserve_panics_total Handler panics recovered into error responses.\n")
	fmt.Fprintf(b, "# TYPE hpfserve_panics_total counter\n")
	fmt.Fprintf(b, "hpfserve_panics_total %d\n", m.panics.Load())
	fmt.Fprintf(b, "# HELP sweep_point_retries_total Transient sweep-point failures retried with backoff.\n")
	fmt.Fprintf(b, "# TYPE sweep_point_retries_total counter\n")
	fmt.Fprintf(b, "sweep_point_retries_total %d\n", snap.Retries)
	fmt.Fprintf(b, "# HELP sweep_point_panics_total Sweep-point panics recovered into typed errors.\n")
	fmt.Fprintf(b, "# TYPE sweep_point_panics_total counter\n")
	fmt.Fprintf(b, "sweep_point_panics_total %d\n", snap.PointPanics)
	fmt.Fprintf(b, "# HELP sweep_checkpoint_skipped_total Sweep results excluded from checkpoints (no JSON round-trip); a resumed run re-evaluates them.\n")
	fmt.Fprintf(b, "# TYPE sweep_checkpoint_skipped_total counter\n")
	fmt.Fprintf(b, "sweep_checkpoint_skipped_total %d\n", snap.CheckpointSkips)

	fmt.Fprintf(b, "# HELP sweep_stage_runs_total Pipeline stage executions (cache misses that did work).\n")
	fmt.Fprintf(b, "# TYPE sweep_stage_runs_total counter\n")
	fmt.Fprintf(b, "sweep_stage_runs_total{stage=\"compile\"} %d\n", snap.Compiles)
	fmt.Fprintf(b, "sweep_stage_runs_total{stage=\"interpret\"} %d\n", snap.Interps)
	fmt.Fprintf(b, "sweep_stage_runs_total{stage=\"execute\"} %d\n", snap.Execs)
	fmt.Fprintf(b, "# HELP sweep_stage_seconds_total Cumulative wall time per pipeline stage.\n")
	fmt.Fprintf(b, "# TYPE sweep_stage_seconds_total counter\n")
	fmt.Fprintf(b, "sweep_stage_seconds_total{stage=\"compile\"} %g\n", snap.CompileTime.Seconds())
	fmt.Fprintf(b, "sweep_stage_seconds_total{stage=\"interpret\"} %g\n", snap.InterpTime.Seconds())
	fmt.Fprintf(b, "sweep_stage_seconds_total{stage=\"execute\"} %g\n", snap.ExecTime.Seconds())
	fmt.Fprintf(b, "# HELP sweep_cache_lookups_total Cache lookups by kind and outcome.\n")
	fmt.Fprintf(b, "# TYPE sweep_cache_lookups_total counter\n")
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"compile\",outcome=\"hit\"} %d\n", snap.CompileHits)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"compile\",outcome=\"miss\"} %d\n", snap.CompileMisses)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"predict\",outcome=\"hit\"} %d\n", snap.PredictHits)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"predict\",outcome=\"miss\"} %d\n", snap.PredictMisses)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"report\",outcome=\"hit\"} %d\n", snap.ReportHits)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"report\",outcome=\"miss\"} %d\n", snap.ReportMisses)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"exec\",outcome=\"hit\"} %d\n", snap.ExecHits)
	fmt.Fprintf(b, "sweep_cache_lookups_total{kind=\"exec\",outcome=\"miss\"} %d\n", snap.ExecMisses)
	fmt.Fprintf(b, "# HELP sweep_cache_entries Live entries in the bounded LRU cache.\n")
	fmt.Fprintf(b, "# TYPE sweep_cache_entries gauge\n")
	fmt.Fprintf(b, "sweep_cache_entries{kind=\"compile\"} %d\n", cs.CompileEntries)
	fmt.Fprintf(b, "sweep_cache_entries{kind=\"predict\"} %d\n", cs.PredictEntries)
	fmt.Fprintf(b, "sweep_cache_entries{kind=\"report\"} %d\n", cs.ReportEntries)
	fmt.Fprintf(b, "sweep_cache_entries{kind=\"exec\"} %d\n", cs.MeasureEntries)
	fmt.Fprintf(b, "# HELP sweep_cache_capacity_entries Per-kind LRU capacity.\n")
	fmt.Fprintf(b, "# TYPE sweep_cache_capacity_entries gauge\n")
	fmt.Fprintf(b, "sweep_cache_capacity_entries %d\n", cs.Cap)
	fmt.Fprintf(b, "# HELP sweep_cache_evictions_total LRU evictions by kind.\n")
	fmt.Fprintf(b, "# TYPE sweep_cache_evictions_total counter\n")
	fmt.Fprintf(b, "sweep_cache_evictions_total{kind=\"compile\"} %d\n", cs.CompileEvictions)
	fmt.Fprintf(b, "sweep_cache_evictions_total{kind=\"predict\"} %d\n", cs.PredictEvictions)
	fmt.Fprintf(b, "sweep_cache_evictions_total{kind=\"report\"} %d\n", cs.ReportEvictions)
	fmt.Fprintf(b, "sweep_cache_evictions_total{kind=\"exec\"} %d\n", cs.MeasureEvictions)
}
