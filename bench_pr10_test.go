// BENCH_PR10.json harness: batch data plane vs sequential requests.
//
// POST /v1/batch exists so a table-shaped workload (N points over one
// source) costs one HTTP round trip, one compile and one admission
// decision instead of N. TestEmitBenchPR10 (HPFPERF_EMIT_BENCH)
// records the wall-clock p50/p95 of a 24-point single-source batch
// next to the same 24 points issued as sequential /v1/predict calls,
// plus the speedup ratio; TestCheckBenchPR10 (HPFPERF_CHECK_BENCH)
// fails when the batch stops beating sequential on the p50 — the CI
// batch-equivalence job's perf gate. Samples are interleaved so host
// drift affects both sides equally.
package hpfperf_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"hpfperf/internal/server"
)

const benchPR10File = "BENCH_PR10.json"

// batchBenchRecord is one row of BENCH_PR10.json.
type batchBenchRecord struct {
	Name    string  `json:"name"`
	P50US   float64 `json:"p50_us,omitempty"`
	P95US   float64 `json:"p95_us,omitempty"`
	Speedup float64 `json:"speedup_p50,omitempty"`
}

const batchBenchPoints = 24

// batchBenchBodies builds the two equivalent workloads: one batch body
// holding 24 predict points over the shared bench source (hot-line and
// load options varied so the points are distinct work), and the same
// 24 points as standalone /v1/predict bodies.
func batchBenchBodies(t testing.TB) (batch []byte, seq [][]byte) {
	t.Helper()
	points := make([]server.BatchPoint, batchBenchPoints)
	for i := range points {
		pr := &server.PredictRequest{
			Source:   admissionBenchSource,
			HotLines: i % 4,
			Options:  &server.PredictOptions{AverageLoad: i%2 == 0},
		}
		points[i] = server.BatchPoint{Predict: pr}
		body, err := json.Marshal(pr)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, body)
	}
	batch, err := json.Marshal(server.BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	return batch, seq
}

func batchOnce(t testing.TB, url string, body []byte) time.Duration {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	elapsed := time.Since(start)
	var br server.BatchResponse
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || br.Failed != 0 {
		t.Fatalf("batch: status %d, failed %d, err %v", resp.StatusCode, br.Failed, err)
	}
	return elapsed
}

func sequentialOnce(t testing.TB, url string, bodies [][]byte) time.Duration {
	t.Helper()
	start := time.Now()
	for _, body := range bodies {
		predictOnce(t, url, body)
	}
	return time.Since(start)
}

func p95(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)*95/100].Microseconds())
}

// measureBatchVsSequential interleaves whole-workload samples against
// one warm server and returns both sample sets.
func measureBatchVsSequential(t testing.TB, samples int) (batch, seq []time.Duration) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	batchBody, seqBodies := batchBenchBodies(t)
	for i := 0; i < 2; i++ { // warm compile/report caches and connections
		batchOnce(t, ts.URL, batchBody)
		sequentialOnce(t, ts.URL, seqBodies)
	}
	for i := 0; i < samples; i++ {
		batch = append(batch, batchOnce(t, ts.URL, batchBody))
		seq = append(seq, sequentialOnce(t, ts.URL, seqBodies))
	}
	return batch, seq
}

// TestEmitBenchPR10 writes the batch-vs-sequential snapshot to
// BENCH_PR10.json when HPFPERF_EMIT_BENCH is set.
func TestEmitBenchPR10(t *testing.T) {
	if os.Getenv("HPFPERF_EMIT_BENCH") == "" {
		t.Skip("set HPFPERF_EMIT_BENCH=1 to emit " + benchPR10File)
	}
	batch, seq := measureBatchVsSequential(t, 40)
	bp50, sp50 := p50(batch), p50(seq)
	records := []batchBenchRecord{
		{Name: "Batch24PointP50", P50US: bp50, P95US: p95(batch)},
		{Name: "Sequential24PointP50", P50US: sp50, P95US: p95(seq)},
		{Name: "BatchSpeedup", Speedup: sp50 / bp50},
	}
	f, err := os.Create(benchPR10File)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		t.Logf("%s: p50 %.0fus, p95 %.0fus, speedup %.2fx", r.Name, r.P50US, r.P95US, r.Speedup)
	}
}

// TestCheckBenchPR10 re-measures and fails when the batch no longer
// beats the equivalent sequential calls on the p50. The check is a
// same-run ratio, so no host normalization is needed; the committed
// snapshot must still exist and parse so its numbers stay honest.
func TestCheckBenchPR10(t *testing.T) {
	if os.Getenv("HPFPERF_CHECK_BENCH") == "" {
		t.Skip("set HPFPERF_CHECK_BENCH=1 to check the batch speedup")
	}
	data, err := os.ReadFile(benchPR10File)
	if err != nil {
		t.Fatalf("no committed snapshot: %v", err)
	}
	var committed []batchBenchRecord
	if err := json.Unmarshal(data, &committed); err != nil {
		t.Fatalf("malformed %s: %v", benchPR10File, err)
	}
	if len(committed) < 3 {
		t.Fatalf("snapshot incomplete: %+v", committed)
	}

	// Best-of-three absorbs scheduler hiccups; the true gap is large
	// (one round trip and one compile against 24 of each).
	best := 0.0
	for i := 0; i < 3; i++ {
		batch, seq := measureBatchVsSequential(t, 20)
		speedup := p50(seq) / p50(batch)
		t.Logf("round %d: batch p50 %.0fus, sequential p50 %.0fus, speedup %.2fx", i+1, p50(batch), p50(seq), speedup)
		if speedup > best {
			best = speedup
		}
		if best > 1.0 {
			break
		}
	}
	if best <= 1.0 {
		t.Errorf("batch p50 is %.2fx sequential — the batch data plane no longer pays for itself", 1/best)
	}
}
