package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"hpfperf/internal/analysis"
	"hpfperf/internal/dist"
	"hpfperf/internal/faults"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/obs"
	"hpfperf/internal/sem"
	"hpfperf/internal/sysmodel"
)

// LoadModel selects how per-processor iteration counts of distributed
// loops enter the prediction.
type LoadModel int

const (
	// MaxLoaded charges the most loaded processor's share (the loosely
	// synchronous completion time; the paper's model).
	MaxLoaded LoadModel = iota
	// Average charges the mean share (an ablation alternative).
	Average
)

// Options configure the interpretation engine (§3.3: "models and
// heuristics ... and user experimentation with system and run-time
// parameters").
type Options struct {
	// MemoryModel enables the SAU memory-hierarchy model (footprint-based
	// average miss cost per access).
	MemoryModel bool
	// LoadModel selects MaxLoaded (default) or Average accounting.
	LoadModel LoadModel
	// MaskDensity is the assumed truth density of elemental masks
	// (FORALL/WHERE conditionals); default 1.0 like the paper's
	// worst-case assumption.
	MaskDensity float64
	// BranchProb is the assumed probability of unresolvable scalar
	// conditionals taking the THEN branch.
	BranchProb float64
	// TripCounts supplies iteration counts, keyed by source line, for
	// loops whose critical variables cannot be traced (e.g. DO WHILE).
	TripCounts map[int]int
	// Values supplies user-specified critical variable values (§4.2:
	// "or by allowing the user to explicitly specify their values").
	Values map[string]sem.Value
	// CommLibrary overrides the calibrated collective models (when nil
	// the engine calibrates against the simulated machine off-line).
	CommLibrary *ipsc.CommLibrary
	// SimpleCommModel collapses the piecewise (short/long protocol)
	// collective models into single linear fits — an ablation of the
	// characterization fidelity.
	SimpleCommModel bool
}

// DefaultOptions returns the paper-faithful default configuration.
func DefaultOptions() Options {
	return Options{MemoryModel: true, LoadModel: MaxLoaded, MaskDensity: 1.0, BranchProb: 0.5}
}

// Report is the output of the interpretation engine.
type Report struct {
	Program  string
	Procs    int
	SAAG     *SAAG
	Total    Metrics
	ByLine   map[int]*Metrics
	Warnings []string
}

// TotalUS is the predicted execution time in microseconds.
func (r *Report) TotalUS() float64 { return r.Total.TotalUS() }

// EstimatedSeconds is the predicted execution time in seconds.
func (r *Report) EstimatedSeconds() float64 { return r.TotalUS() / 1e6 }

// LineMetrics returns the metrics accumulated for a source line (the
// per-line query of the output module).
func (r *Report) LineMetrics(line int) Metrics {
	if m, ok := r.ByLine[line]; ok {
		return *m
	}
	return Metrics{}
}

// LineRangeMetrics sums metrics over an inclusive source line range
// (a sub-AAG query). The scan is ascending by line so the floating-point
// accumulation order — and therefore the result, bit for bit — matches
// the original sorted-keys implementation without allocating or sorting.
func (r *Report) LineRangeMetrics(lo, hi int) Metrics {
	var out Metrics
	if len(r.ByLine) == 0 || hi < lo {
		return out
	}
	// Clamp the window to lines that actually occur, bounding the scan by
	// the program length rather than the caller's range.
	first := true
	minLine, maxLine := 0, 0
	for l := range r.ByLine {
		if first || l < minLine {
			minLine = l
		}
		if first || l > maxLine {
			maxLine = l
		}
		first = false
	}
	if lo < minLine {
		lo = minLine
	}
	if hi > maxLine {
		hi = maxLine
	}
	for l := lo; l <= hi; l++ {
		if m, ok := r.ByLine[l]; ok {
			out.Accumulate(*m)
		}
	}
	return out
}

// costParts splits a statement's one-execution cost into computation and
// overhead microseconds.
type costParts struct {
	compUS float64
	ovhdUS float64
}

// Interpreter is the interpretation engine: it recursively applies the
// per-AAU-kind interpretation functions to the SAAG.
type Interpreter struct {
	prog  *hir.Program
	mach  *sysmodel.Machine
	lib   *ipsc.CommLibrary
	opts  Options
	saag  *SAAG
	costs map[hir.Stmt]costParts

	byLine   map[int]*Metrics
	warnings []string
	pinned   map[string]bool // user-specified critical values never invalidated
	clock    float64         // running global clock (predicted microseconds)

	// trace holds the definition-tracing result (§4.2): loop bounds the
	// static analyzer resolved are consulted when the inline abstract
	// environment cannot resolve them, before demanding Options.Values.
	trace *analysis.Trace

	ctx       context.Context // cooperative cancellation for Interpret
	ctxStride int             // AAU interpretations since the last ctx check

	// span is the context's obs span, cached once at construction: when
	// tracing is off it is nil and each AAU pays one nil check.
	span *obs.Span
}

// New builds an interpreter for a compiled program on the given machine
// abstraction.
func New(prog *hir.Program, mach *sysmodel.Machine, opts Options) (*Interpreter, error) {
	return NewContext(context.Background(), prog, mach, opts)
}

// NewContext builds an interpreter whose calibration step and Interpret
// run honor ctx: once ctx ends, interpretation stops at the next AAU
// boundary and returns the ctx error instead of a report.
func NewContext(ctx context.Context, prog *hir.Program, mach *sysmodel.Machine, opts Options) (*Interpreter, error) {
	if mach == nil {
		mach = sysmodel.IPSC860()
	}
	if opts.MaskDensity <= 0 {
		opts.MaskDensity = 1.0
	}
	if opts.BranchProb <= 0 {
		opts.BranchProb = 0.5
	}
	procs := prog.Info.Grid.Size()
	if procs > mach.MaxNodes {
		return nil, fmt.Errorf("core: program needs %d processors, %s has %d", procs, mach.Name, mach.MaxNodes)
	}
	span := obs.SpanFromContext(ctx)
	lib := opts.CommLibrary
	if lib == nil {
		cs := span.StartChild("calibrate")
		cs.SetAttrInt("procs", procs)
		var err error
		lib, err = calibratedLib(ctx, mach, procs)
		cs.End()
		if err != nil {
			return nil, err
		}
	}
	pinned := make(map[string]bool)
	for k := range opts.Values {
		pinned[k] = true
	}
	return &Interpreter{prog: prog, mach: mach, lib: lib, opts: opts, pinned: pinned, ctx: ctx, span: span}, nil
}

// calibCache memoizes machine calibration: CalibrateMachineContext is
// deterministic (noise-free simulation of a registry-built machine), so
// one library per (machine, size, procs) serves every interpreter.
// Machines are only ever constructed by the sysmodel registry and only
// vary by MaxNodes, which the key includes.
var calibCache sync.Map // "name|maxnodes|procs" -> *ipsc.CommLibrary

func calibratedLib(ctx context.Context, mach *sysmodel.Machine, procs int) (*ipsc.CommLibrary, error) {
	// A cache hit must not weaken the cancellation contract the
	// uncached calibration run provided.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%d|%d", mach.Name, mach.MaxNodes, procs)
	if v, ok := calibCache.Load(key); ok {
		return v.(*ipsc.CommLibrary), nil
	}
	lib, err := ipsc.CalibrateMachineContext(ctx, mach, procs)
	if err != nil {
		// Calibration errors (e.g. ctx cancellation) are never cached.
		return nil, err
	}
	calibCache.Store(key, lib)
	return lib, nil
}

// Interpret runs the interpretation over the SAAG and returns the
// predicted performance report. The hot path compiles the program to the
// closure-based prediction form (see compile.go) and evaluates it; the
// reference tree-walking interpreter is used when per-AAU tracing is
// active (the compiled form does not emit interp.<kind> spans) or when
// HPFPERF_TREEWALK=1 forces it.
func (it *Interpreter) Interpret() (*Report, error) {
	if it.span != nil || treeWalkOnly {
		return it.InterpretTree()
	}
	c, err := compile(it)
	if err != nil {
		return nil, err
	}
	return c.evaluate(it.ctx, it.opts.Values, it.opts.TripCounts, false)
}

// InterpretTree runs the reference tree-walking interpretation algorithm
// over the SAAG. It is the semantic baseline the compiled form is
// differentially tested against, and the path taken under tracing.
func (it *Interpreter) InterpretTree() (*Report, error) {
	// Chaos hook at entry, so the interp site is reachable even for
	// programs too small to hit the per-stride hook below.
	if err := faults.Fire(faults.SiteInterp); err != nil {
		return nil, err
	}
	it.saag = BuildSAAG(it.prog)
	it.byLine = make(map[int]*Metrics)
	it.costs = make(map[hir.Stmt]costParts)
	it.prepass(it.prog.Body, 0)
	it.trace = analysis.TraceProgram(it.prog, it.opts.Values)

	env := make(absEnv)
	for k, v := range it.opts.Values {
		env[k] = v
	}
	total, err := it.interpAAUs(it.saag.Root.Children, env, 1.0)
	if err != nil {
		return nil, err
	}
	// The root AAU carries no self time; its sub-AAG (SubgraphMetrics)
	// yields the program total.
	it.saag.Root.ClockUS = it.clock
	return &Report{
		Program:  it.prog.Name,
		Procs:    it.prog.Info.Grid.Size(),
		SAAG:     it.saag,
		Total:    total,
		ByLine:   it.byLine,
		Warnings: it.warnings,
	}, nil
}

func (it *Interpreter) warnf(format string, args ...any) {
	it.warnings = append(it.warnings, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Cost prepass

// loadCycles returns the modeled per-access memory cost under the SAU
// memory model (flat cache-hit cost plus a footprint-dependent average
// miss contribution when the memory model is enabled).
func (it *Interpreter) accessCycles(fp int) float64 {
	M := it.mach.Node.M
	c := M.LoadCycles
	if !it.opts.MemoryModel {
		return c
	}
	if fp > M.DCacheBytes {
		c += M.MissPenaltyCycles * 4.0 / float64(M.LineBytes)
	} else {
		c += M.MissPenaltyCycles * 0.03
	}
	return c
}

// opCost converts an operation tally into cost parts. Array element
// accesses (c.Elems) pay the memory-model cost; scalar references are
// register/cache resident and pay the hit cost only.
func (it *Interpreter) opCost(c hir.OpCount, fp int) costParts {
	P := it.mach.Node.P
	M := it.mach.Node.M
	acc := it.accessCycles(fp)
	elemAcc := float64(c.Elems)
	scalarAcc := float64(c.Load+c.Store) - elemAcc
	if scalarAcc < 0 {
		scalarAcc = 0
	}
	// Irregular (gathered) accesses defeat spatial locality; the memory
	// model charges most of a miss per such access when the working set
	// exceeds the cache, and a small residual when it fits.
	shadowExtra := 0.0
	if it.opts.MemoryModel {
		rate := 0.2
		if fp > M.DCacheBytes {
			rate = 0.7
		}
		shadowExtra = float64(c.ShadowLoad) * rate * M.MissPenaltyCycles
	}
	comp := float64(c.FAdd)*P.FAddCycles +
		float64(c.FMul)*P.FMulCycles +
		float64(c.FDiv)*P.FDivCycles +
		float64(c.Pow)*P.PowCycles +
		float64(c.IntOp)*P.IntOpCycles +
		float64(c.Cmp)*P.CmpCycles +
		float64(c.Logical)*P.LogicalCycles +
		elemAcc*acc +
		shadowExtra +
		scalarAcc*M.LoadCycles
	for name, n := range c.Intrinsics {
		ic, ok := P.IntrinsicCycles[name]
		if !ok {
			ic = 20
		}
		comp += float64(n) * (ic + P.IntrinsicCallCycles)
	}
	ovhd := P.StartupStatueCycles + float64(c.Elems)*P.IndexCycles
	return costParts{compUS: P.CyclesToUS(comp), ovhdUS: P.CyclesToUS(ovhd)}
}

func (it *Interpreter) prepass(ss []hir.Stmt, fp int) {
	for _, s := range ss {
		switch x := s.(type) {
		case *hir.Assign:
			it.costs[s] = it.opCost(x.Cost, fp)
		case *hir.Loop:
			it.costs[s] = it.opCost(x.BoundCost, fp)
			inner := fp
			if inner == 0 {
				inner = it.nestFootprint(x)
			}
			it.prepass(x.Body, inner)
		case *hir.While:
			it.costs[s] = it.opCost(x.Cost, fp)
			it.prepass(x.Body, fp)
		case *hir.If:
			it.costs[s] = it.opCost(x.Cost, fp)
			it.prepass(x.Then, fp)
			it.prepass(x.Else, fp)
		case *hir.FetchElem:
			it.costs[s] = it.opCost(x.Cost, fp)
		case *hir.Print:
			it.costs[s] = it.opCost(x.Cost, fp)
		}
	}
}

// nestFootprint estimates the per-node bytes touched within a loop nest
// (the SAU memory model's working-set input).
func (it *Interpreter) nestFootprint(loop *hir.Loop) int {
	seen := make(map[string]int)
	add := func(name string, shadow bool) {
		sym := it.prog.Info.Sym(name)
		if sym == nil || sym.Kind != sem.SymArray {
			return
		}
		b := sym.Elems() * sym.Type.Bytes()
		if sym.Map != nil && !sym.Map.Replicated && !shadow {
			b = sym.Map.MaxLocalCount() * sym.Type.Bytes()
		}
		if b > seen[name] {
			seen[name] = b
		}
	}
	var scanExpr func(e hir.Expr)
	scanExpr = func(e hir.Expr) {
		switch x := e.(type) {
		case *hir.Elem:
			add(x.Array, x.Shadow)
			for _, sub := range x.Subs {
				scanExpr(sub)
			}
		case *hir.Bin:
			scanExpr(x.X)
			scanExpr(x.Y)
		case *hir.Un:
			scanExpr(x.X)
		case *hir.Intr:
			for _, a := range x.Args {
				scanExpr(a)
			}
		}
	}
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				scanExpr(x.Rhs)
				if lhs, ok := x.Lhs.(*hir.ElemLV); ok {
					add(lhs.Array, false)
					for _, sub := range lhs.Subs {
						scanExpr(sub)
					}
				}
			case *hir.Loop:
				scan(x.Body)
			case *hir.While:
				scanExpr(x.Cond)
				scan(x.Body)
			case *hir.If:
				scanExpr(x.Cond)
				scan(x.Then)
				scan(x.Else)
			}
		}
	}
	scan(loop.Body)
	total := 0
	for _, b := range seen {
		total += b
	}
	return total
}

// ---------------------------------------------------------------------------
// Interpretation functions

// add accumulates a one-execution cost, scaled by the multiplicity, into
// an AAU and the line index, and returns the scaled metrics.
func (it *Interpreter) add(a *AAU, mult float64, m Metrics) Metrics {
	m.CompUS *= mult
	m.CommUS *= mult
	m.OvhdUS *= mult
	m.Execs *= mult
	a.Metrics.Accumulate(m)
	it.clock += m.TotalUS()
	if a.Line > 0 {
		lm, ok := it.byLine[a.Line]
		if !ok {
			lm = &Metrics{}
			it.byLine[a.Line] = lm
		}
		lm.Accumulate(m)
	}
	return m
}

// ctxCheckStride bounds how many AAU interpretations may pass between
// cooperative cancellation checks. The interpretation algorithm visits
// each AAU a bounded number of times (bodies are interpreted once and
// scaled, not iterated), so the stride keeps the check off the common
// path while still bounding cancellation latency for deeply conditional
// programs.
const ctxCheckStride = 64

func (it *Interpreter) interpAAUs(aaus []*AAU, env absEnv, mult float64) (Metrics, error) {
	var total Metrics
	for _, a := range aaus {
		if it.ctxStride++; it.ctxStride >= ctxCheckStride {
			it.ctxStride = 0
			if err := it.ctx.Err(); err != nil {
				return total, err
			}
			// Chaos hook: shares the stride so the happy path stays one
			// counter increment per AAU.
			if err := faults.Fire(faults.SiteInterp); err != nil {
				return total, err
			}
		}
		m, err := it.interpAAU(a, env, mult)
		if err != nil {
			return total, err
		}
		a.ClockUS = it.clock
		total.Accumulate(m)
	}
	return total, nil
}

func (it *Interpreter) interpAAU(a *AAU, env absEnv, mult float64) (Metrics, error) {
	if it.span != nil {
		return it.interpAAUTraced(a, env, mult)
	}
	return it.interpAAUKind(a, env, mult)
}

// interpAAUTraced wraps one AAU interpretation in an interp.<kind> span.
// The current span is swapped so nested AAUs parent correctly, then
// restored: the interpreter is single-goroutine so a plain field works.
func (it *Interpreter) interpAAUTraced(a *AAU, env absEnv, mult float64) (Metrics, error) {
	parent := it.span
	s := parent.StartChild("interp." + a.Kind.String())
	if a.Line > 0 {
		s.SetAttrInt("line", a.Line)
	}
	it.span = s
	m, err := it.interpAAUKind(a, env, mult)
	s.End()
	it.span = parent
	return m, err
}

func (it *Interpreter) interpAAUKind(a *AAU, env absEnv, mult float64) (Metrics, error) {
	switch a.Kind {
	case Seq:
		return it.interpSeq(a, env, mult), nil
	case Iter, IterD:
		return it.interpIter(a, env, mult)
	case Condt, CondtD:
		return it.interpCondt(a, env, mult)
	case Comm:
		return it.interpComm(a, env, mult), nil
	case IO:
		return it.interpIO(a, mult), nil
	}
	return Metrics{}, fmt.Errorf("core: cannot interpret AAU kind %s", a.Kind)
}

// interpSeq interprets straight-line computation and traces critical
// variable definitions.
func (it *Interpreter) interpSeq(a *AAU, env absEnv, mult float64) Metrics {
	x := a.Stmt.(*hir.Assign)
	parts := it.costs[a.Stmt]
	m := Metrics{CompUS: parts.compUS, OvhdUS: parts.ovhdUS, Execs: 1}
	if x.Guard {
		m.OvhdUS += it.mach.Node.P.CyclesToUS(it.mach.Node.P.GuardCycles)
	}
	if lv, ok := x.Lhs.(*hir.ScalarLV); ok && !it.pinned[lv.Name] {
		if v, ok2 := evalScalar(x.Rhs, env); ok2 {
			env[lv.Name] = v
		} else {
			delete(env, lv.Name)
		}
	}
	return it.add(a, mult, m)
}

// interpIter interprets Iter and IterD AAUs: trip counts are resolved
// from critical variables; distributed loops charge the maximum-loaded
// (or average) processor's share.
func (it *Interpreter) interpIter(a *AAU, env absEnv, mult float64) (Metrics, error) {
	if w, ok := a.Stmt.(*hir.While); ok {
		trips, ok := it.opts.TripCounts[a.Line]
		if !ok {
			// Definition tracing can still prove the loop never runs.
			if wt := it.trace.Whiles[w]; wt != nil && wt.CondResolved && !wt.CondValue {
				trips = 0
			} else {
				return Metrics{}, fmt.Errorf("core: line %d: DO WHILE trip count is a critical value; supply Options.TripCounts[%d]", a.Line, a.Line)
			}
		}
		condParts := it.costs[a.Stmt]
		m := Metrics{CompUS: condParts.compUS * float64(trips+1), OvhdUS: condParts.ovhdUS * float64(trips+1), Execs: 1}
		self := it.add(a, mult, m)
		body, err := it.interpAAUs(a.Children, env, mult*float64(trips))
		if err != nil {
			return Metrics{}, err
		}
		it.killAssigned(w.Body, env)
		self.Accumulate(body)
		return self, nil
	}

	x := a.Stmt.(*hir.Loop)
	lo, hi, step, resolved := it.resolveTriplet(x, env)
	if !resolved {
		// Fall back to the definition-tracing result: the fixpoint
		// analysis resolves bounds the one-pass inline environment loses
		// (e.g. loop-invariant redefinitions inside an enclosing loop).
		if lt := it.trace.Loops[x]; lt != nil && lt.Resolved {
			lo, hi, step, resolved = lt.Lo, lt.Hi, lt.Step, true
		}
	}
	var trips, localTrips float64
	if !resolved {
		if t, ok := it.opts.TripCounts[a.Line]; ok {
			trips, localTrips = float64(t), float64(t)
			if x.Par != nil {
				localTrips = it.partitionTrips(x.Par, 1, t, 1)
			}
		} else {
			return Metrics{}, it.loopBoundsErr(a.Line, x, env)
		}
	} else {
		trips = float64(countTrips(lo, hi, step))
		localTrips = trips
		if x.Par != nil {
			localTrips = it.partitionTrips(x.Par, lo, hi, step)
		}
	}

	P := it.mach.Node.P
	bound := it.costs[a.Stmt]
	m := Metrics{
		CompUS: bound.compUS,
		OvhdUS: bound.ovhdUS + localTrips*P.CyclesToUS(P.LoopOverheadCycles),
		Execs:  1,
	}
	self := it.add(a, mult, m)

	// Interpret the body once at the midpoint index value and scale by the
	// local trip count.
	if resolved {
		env[x.Var] = sem.IntVal(int64((lo + hi) / 2))
	} else {
		delete(env, x.Var)
	}
	body, err := it.interpAAUs(a.Children, env, mult*localTrips)
	if err != nil {
		return Metrics{}, err
	}
	it.killAssigned(x.Body, env)
	delete(env, x.Var)
	self.Accumulate(body)
	return self, nil
}

// resolveTriplet resolves loop bounds through the abstract environment.
func (it *Interpreter) resolveTriplet(x *hir.Loop, env absEnv) (lo, hi, step int, ok bool) {
	return resolveTriplet(x, env)
}

func resolveTriplet(x *hir.Loop, env absEnv) (lo, hi, step int, ok bool) {
	lv, ok1 := evalScalar(x.Lo, env)
	hv, ok2 := evalScalar(x.Hi, env)
	sv, ok3 := evalScalar(x.Step, env)
	if !ok1 || !ok2 || !ok3 {
		return 0, 0, 0, false
	}
	step = int(sv.AsInt())
	if step == 0 {
		return 0, 0, 0, false
	}
	return int(lv.AsInt()), int(hv.AsInt()), step, true
}

func countTrips(lo, hi, step int) int {
	if step > 0 {
		if hi < lo {
			return 0
		}
		return (hi-lo)/step + 1
	}
	if hi > lo {
		return 0
	}
	return (lo-hi)/(-step) + 1
}

// partitionTrips returns the per-processor iteration share of a
// partitioned loop under the configured load model.
func (it *Interpreter) partitionTrips(par *hir.ParSpec, lo, hi, step int) float64 {
	return partitionTrips(it.prog.Info.ArrayMap(par.Array), par, it.opts.LoadModel, lo, hi, step)
}

func partitionTrips(m *dist.ArrayMap, par *hir.ParSpec, load LoadModel, lo, hi, step int) float64 {
	if m == nil || m.Replicated {
		return float64(countTrips(lo, hi, step))
	}
	dd := m.Dims[par.Dim]
	if dd.Kind == dist.Collapsed || dd.NProc <= 1 {
		return float64(countTrips(lo, hi, step))
	}
	glo, ghi := lo+par.Offset, hi+par.Offset
	if load == Average {
		return float64(countTrips(lo, hi, step)) / float64(dd.NProc)
	}
	return float64(dd.MaxLoopCount(glo, ghi, step))
}

// loopBoundsErr builds the last-resort unresolved-bounds error. When the
// tracer recorded blocking definitions it names each one with its source
// line; otherwise it falls back to listing the unresolved variables.
func (it *Interpreter) loopBoundsErr(line int, x *hir.Loop, env absEnv) error {
	return loopBoundsErr(it.trace, line, x, env)
}

func loopBoundsErr(tr *analysis.Trace, line int, x *hir.Loop, env absEnv) error {
	if bs := tr.LoopBlockers(x); len(bs) > 0 {
		parts := make([]string, len(bs))
		for i, b := range bs {
			parts[i] = b.String()
		}
		return fmt.Errorf(
			"core: line %d: cannot resolve loop bounds of %s (blocked by: %s); supply Options.Values or Options.TripCounts[%d]",
			line, x.Var, strings.Join(parts, "; "), line)
	}
	return fmt.Errorf(
		"core: line %d: cannot resolve loop bounds of %s (critical variables: %s); supply Options.Values or Options.TripCounts",
		line, x.Var, strings.Join(criticalVars(x, env), ", "))
}

// criticalVars lists the unresolved variable names in loop bounds.
func criticalVars(x *hir.Loop, env absEnv) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range []hir.Expr{x.Lo, x.Hi, x.Step} {
		for _, v := range exprVars(e) {
			if _, ok := env[v]; !ok && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	if len(out) == 0 {
		out = append(out, "<expression>")
	}
	return out
}

// interpCondt interprets conditional AAUs: data-dependent (CondtD)
// conditionals use the mask density model; replicated scalar conditionals
// resolve through critical variables when possible.
func (it *Interpreter) interpCondt(a *AAU, env absEnv, mult float64) (Metrics, error) {
	x := a.Stmt.(*hir.If)
	parts := it.costs[a.Stmt]
	P := it.mach.Node.P
	m := Metrics{CompUS: parts.compUS, OvhdUS: parts.ovhdUS + P.CyclesToUS(P.BranchCycles), Execs: 1}
	self := it.add(a, mult, m)

	then := a.Children[:a.ElseStart]
	els := a.Children[a.ElseStart:]

	if a.Kind == CondtD {
		d := it.opts.MaskDensity
		tm, err := it.interpAAUs(then, env, mult*d)
		if err != nil {
			return Metrics{}, err
		}
		em, err := it.interpAAUs(els, env, mult*(1-d))
		if err != nil {
			return Metrics{}, err
		}
		it.killAssigned(x.Then, env)
		it.killAssigned(x.Else, env)
		self.Accumulate(tm)
		self.Accumulate(em)
		return self, nil
	}

	if v, ok := evalScalar(x.Cond, env); ok {
		branch := then
		if !v.B {
			branch = els
		}
		bm, err := it.interpAAUs(branch, env, mult)
		if err != nil {
			return Metrics{}, err
		}
		self.Accumulate(bm)
		return self, nil
	}
	it.warnf("line %d: IF condition depends on run-time data; weighting branches %.2f/%.2f",
		a.Line, it.opts.BranchProb, 1-it.opts.BranchProb)
	tm, err := it.interpAAUs(then, env, mult*it.opts.BranchProb)
	if err != nil {
		return Metrics{}, err
	}
	em, err := it.interpAAUs(els, env, mult*(1-it.opts.BranchProb))
	if err != nil {
		return Metrics{}, err
	}
	it.killAssigned(x.Then, env)
	it.killAssigned(x.Else, env)
	self.Accumulate(tm)
	self.Accumulate(em)
	return self, nil
}

// ---------------------------------------------------------------------------
// Communication interpretation

// evalPW evaluates a piecewise collective model, optionally degraded to
// its long-message segment only (the SimpleCommModel ablation).
func (it *Interpreter) evalPW(p ipsc.Piecewise, n int) float64 {
	return evalPW(it.opts.SimpleCommModel, p, n)
}

func evalPW(simple bool, p ipsc.Piecewise, n int) float64 {
	if simple {
		return p.Long.Eval(n)
	}
	return p.Eval(n)
}

// killAssigned invalidates traced values assigned in a subtree, keeping
// user-pinned values intact.
func (it *Interpreter) killAssigned(ss []hir.Stmt, env absEnv) {
	if len(it.pinned) == 0 {
		killAssigned(ss, env)
		return
	}
	saved := make(map[string]sem.Value)
	for k := range it.pinned {
		if v, ok := env[k]; ok {
			saved[k] = v
		}
	}
	killAssigned(ss, env)
	for k, v := range saved {
		env[k] = v
	}
}

// stripBytesMax returns the worst per-node halo volume of a shift.
func (it *Interpreter) stripBytesMax(m *dist.ArrayMap, elemBytes, dim, delta int) int {
	return stripBytesMax(m, elemBytes, dim, delta)
}

func stripBytesMax(m *dist.ArrayMap, elemBytes, dim, delta int) int {
	if delta < 0 {
		delta = -delta
	}
	dd := m.Dims[dim]
	rows := delta
	switch dd.Kind {
	case dist.Block:
		if rows > dd.BlockSize() {
			rows = dd.BlockSize()
		}
	case dist.Cyclic:
		rows = dist.CyclicShiftRows(dd.MaxLocalSize(), dd.BlockSize(), delta)
	}
	vol := rows
	for d, o := range m.Dims {
		if d != dim {
			vol *= o.MaxLocalSize()
		}
	}
	return vol * elemBytes
}

func (it *Interpreter) interpComm(a *AAU, env absEnv, mult float64) Metrics {
	rec := a.CommRec
	var commUS, compUS float64
	var bytes float64
	switch x := a.Stmt.(type) {
	case *hir.Shift:
		sym := it.prog.Info.Sym(x.Array)
		switch {
		case sym == nil:
			it.warnf("line %d: shift of unknown array %s ignored", a.Line, x.Array)
		case sym.Map != nil && (x.Dim < 0 || x.Dim >= len(sym.Map.Dims)):
			it.warnf("line %d: shift of %s along invalid dimension %d ignored", a.Line, x.Array, x.Dim)
		case sym.Map != nil && !sym.Map.Replicated && sym.Map.Dims[x.Dim].NProc > 1:
			vol := it.stripBytesMax(sym.Map, sym.Type.Bytes(), x.Dim, x.Offset)
			bytes = float64(vol)
			commUS = it.evalPW(it.lib.Shift, vol)
		}
	case *hir.CShift, *hir.EOShift:
		var src string
		var dim int
		var shiftE hir.Expr
		if cs, ok := x.(*hir.CShift); ok {
			src, dim, shiftE = cs.Src, cs.Dim, cs.Shift
		} else {
			eo := x.(*hir.EOShift)
			src, dim, shiftE = eo.Src, eo.Dim, eo.Shift
		}
		sym := it.prog.Info.Sym(src)
		if sym == nil {
			it.warnf("line %d: shift of unknown array %s ignored", a.Line, src)
			break
		}
		shift := 1
		if v, ok := evalScalar(shiftE, env); ok {
			shift = int(v.AsInt())
		} else {
			it.warnf("line %d: shift amount unresolved; assuming 1", a.Line)
		}
		if sym.Map != nil && !sym.Map.Replicated && dim < len(sym.Map.Dims) && sym.Map.Dims[dim].NProc > 1 {
			vol := it.stripBytesMax(sym.Map, sym.Type.Bytes(), dim, shift)
			bytes = float64(vol)
			commUS = it.evalPW(it.lib.Shift, vol)
		}
		// Local data movement of the shifted copy.
		M := it.mach.Node.M
		local := sym.Elems()
		if sym.Map != nil && !sym.Map.Replicated {
			local = sym.Map.MaxLocalCount()
		}
		compUS = it.mach.Node.P.CyclesToUS(float64(local) * (M.LoadCycles + M.StoreCycles + 2))
	case *hir.Reduce:
		b := 8
		if x.LocSrc != "" {
			b = 16
		}
		bytes = float64(b)
		commUS = it.lib.Reduce.Eval(b)
	case *hir.AllGather:
		sym := it.prog.Info.Sym(x.Array)
		total := sym.Elems() * sym.Type.Bytes()
		bytes = float64(total)
		commUS = it.evalPW(it.lib.Gather, total)
	case *hir.FetchElem:
		bytes = float64(x.Typ.Bytes())
		commUS = it.evalPW(it.lib.Bcast, x.Typ.Bytes())
		parts := it.costs[a.Stmt]
		compUS += parts.compUS
	}
	rec.Bytes = bytes
	rec.CostUS = commUS
	rec.Count += mult
	return it.add(a, mult, Metrics{CompUS: compUS, CommUS: commUS, Execs: 1})
}

func (it *Interpreter) interpIO(a *AAU, mult float64) Metrics {
	x := a.Stmt.(*hir.Print)
	io := it.mach.Node.IO
	parts := it.costs[a.Stmt]
	commUS := io.HostStartupUS + float64(16*len(x.Args))*io.HostPerByteUS
	a.CommRec.Bytes = float64(16 * len(x.Args))
	a.CommRec.CostUS = commUS
	a.CommRec.Count += mult
	return it.add(a, mult, Metrics{CompUS: parts.compUS, CommUS: commUS, Execs: 1})
}
