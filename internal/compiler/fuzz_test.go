package compiler

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hpfperf/internal/suite"
)

func seedCorpus(f *testing.F) {
	f.Helper()
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hpf"))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("seed %s: %v", p, err)
		}
		f.Add(string(b))
	}
	for _, prog := range suite.All() {
		f.Add(prog.Source(prog.Sizes[0], prog.Procs[0]))
	}
	// Semantically suspicious but parseable shapes: undistributed use,
	// rank mismatches, alignment to a missing template.
	f.Add("      PROGRAM P\n      REAL A(10)\n      A(11) = 1.0\n      END\n")
	f.Add("      PROGRAM P\n!HPF$ PROCESSORS Q(0)\n      END\n")
	f.Add("      PROGRAM P\n      REAL A(4,4)\n!HPF$ ALIGN A WITH T\n      END\n")
}

// FuzzCompile runs the whole front end (scan, parse, semantic analysis,
// lowering, optimization) on arbitrary input, asserting it never panics
// and that every diagnostic carries a valid line number.
func FuzzCompile(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := CompileWith(src, Options{})
		if err == nil && prog == nil {
			t.Fatal("nil program with nil error")
		}
		if err != nil {
			var ce *Error
			if errors.As(err, &ce) && ce.Pos.Line < 1 {
				t.Fatalf("compile error %q at invalid line %d", ce.Msg, ce.Pos.Line)
			}
		}
		// Optimization flags must not change acceptance: a program that
		// compiles with comm-opt must also compile without it (a mismatch
		// would mean the optimizer introduces or masks rejections).
		if _, err2 := CompileWith(src, Options{NoCommOpt: true, NoLoopReorder: true}); (err == nil) != (err2 == nil) {
			t.Fatalf("optimization flags changed acceptance: opt=%v noopt=%v", err, err2)
		}
	})
}
