package corpus

import (
	"context"
	"fmt"
	"strings"

	"hpfperf/internal/analysis"
	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/sweep"
)

// Verdict is the differential-validation outcome of one generated
// program. It round-trips through encoding/json unchanged (all fields
// are integers, shortest-form floats, strings and bools), which is what
// lets checkpointed corpus runs resume byte-identically.
type Verdict struct {
	Params
	PredUS float64 `json:"pred_us"` // interpreted prediction
	MeasUS float64 `json:"meas_us"` // deterministic simulated execution
	RelErr float64 `json:"rel_err"` // |pred-meas|/meas
	Bound  float64 `json:"bound"`   // family error bound
	// PlainUS is the prediction of the directive-stripped twin, recorded
	// for programs with a provable INDEPENDENT annotation (Indep == 1):
	// the harness requires PredUS < PlainUS.
	PlainUS float64 `json:"plain_us,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Pass reports whether the program cleared every validation gate.
func (v Verdict) Pass() bool { return v.Err == "" && v.RelErr <= v.Bound }

// Options configure a validation run.
type Options struct {
	// Engine is the sweep engine to run on (nil = the shared default:
	// compile results and deterministic measurements are cached).
	Engine *sweep.Engine
	// Checkpoint enables durable progress: a killed run resumes from the
	// completed programs and still produces a byte-identical report.
	Checkpoint *sweep.Checkpoint
}

// measureSpec pins the deterministic simulated execution every corpus
// program is validated against: one run, no load perturbation, no timer
// quantization — (program, spec) fully determines the measured time.
func measureSpec() sweep.MeasureSpec {
	spec := sweep.DefaultMeasureSpec(1, 0)
	spec.TimerResUS = 0
	return spec
}

// interpOptions are the prediction options for one program: engine
// defaults plus the template's declared mask density.
func interpOptions(p Params) core.Options {
	opts := core.DefaultOptions()
	opts.MaskDensity = p.MaskDensity()
	return opts
}

// ValidateOne drives one generated program through the differential
// gates: (1) compile and lint clean at error severity, (2) bit-identical
// reports from the tree-walking and closure-compiled prediction engines,
// (3) prediction within the family's relative-error bound of the
// simulated execution. The returned Verdict carries the numbers either
// way; gate failures land in Err.
func ValidateOne(ctx context.Context, eng *sweep.Engine, pr Program) Verdict {
	v := Verdict{Params: pr.Params, Bound: pr.Family.ErrorBound()}

	prog, err := eng.CompileContext(ctx, pr.Source, compiler.Options{})
	if err != nil {
		v.Err = fmt.Sprintf("compile: %v", err)
		return v
	}
	refuted := false
	for _, d := range analysis.Analyze(prog) {
		if d.Code == "HPF0501" && d.Severity >= analysis.SevError {
			refuted = true
			if !pr.ExpectRefuted() {
				v.Err = fmt.Sprintf("lint: %s", d.String())
				return v
			}
			continue
		}
		if d.Severity >= analysis.SevError {
			v.Err = fmt.Sprintf("lint: %s", d.String())
			return v
		}
	}
	if pr.ExpectRefuted() && !refuted {
		v.Err = "verifier accepted an INDEPENDENT annotation built to be refutable (no HPF0501)"
		return v
	}

	opts := interpOptions(pr.Params)
	itTree, err := core.NewContext(ctx, prog, nil, opts)
	if err != nil {
		v.Err = fmt.Sprintf("interp: %v", err)
		return v
	}
	treeRep, err := itTree.InterpretTree()
	if err != nil {
		v.Err = fmt.Sprintf("interp(tree): %v", err)
		return v
	}
	itComp, err := core.NewContext(ctx, prog, nil, opts)
	if err != nil {
		v.Err = fmt.Sprintf("interp: %v", err)
		return v
	}
	compRep, err := itComp.Interpret()
	if err != nil {
		v.Err = fmt.Sprintf("interp(compiled): %v", err)
		return v
	}
	if d := core.DiffReports(treeRep, compRep); d != "" {
		v.Err = fmt.Sprintf("tree/compiled divergence: %s", d)
		return v
	}
	v.PredUS = compRep.TotalUS()

	if pr.Indep == 1 {
		// Differential directive gate: the identical program with the
		// INDEPENDENT lines stripped keeps the serialized DO loop, so
		// the annotated prediction must come out strictly lower.
		plain := strings.ReplaceAll(pr.Source, "!HPF$ INDEPENDENT\n", "")
		plainRep, err := eng.InterpretContext(ctx, plain, compiler.Options{}, opts)
		if err != nil {
			v.Err = fmt.Sprintf("interp(plain twin): %v", err)
			return v
		}
		v.PlainUS = plainRep.TotalUS()
		if v.PredUS >= v.PlainUS {
			v.Err = fmt.Sprintf("proven INDEPENDENT did not lower the prediction: %.1fus annotated vs %.1fus plain", v.PredUS, v.PlainUS)
			return v
		}
	}

	res, err := eng.MeasureContext(ctx, pr.Source, compiler.Options{}, measureSpec())
	if err != nil {
		v.Err = fmt.Sprintf("execute: %v", err)
		return v
	}
	v.MeasUS = res.MeasuredUS
	if v.MeasUS > 0 {
		v.RelErr = (v.PredUS - v.MeasUS) / v.MeasUS
		if v.RelErr < 0 {
			v.RelErr = -v.RelErr
		}
	} else {
		v.Err = "execute: zero measured time"
	}
	return v
}

// Validate runs the differential harness over a generated corpus and
// aggregates the verdicts into a metrics report. Programs are validated
// concurrently on the sweep engine; with a Checkpoint, completed
// programs survive a kill and a resumed run reproduces the exact bytes
// of an uninterrupted one (every gate is deterministic).
func Validate(ctx context.Context, progs []Program, opts Options) (*Report, error) {
	eng := opts.Engine
	if eng == nil {
		eng = sweep.Default()
	}
	verdicts, err := sweep.MapCheckpointCtx(ctx, eng, len(progs), opts.Checkpoint, func(i int) (Verdict, error) {
		return ValidateOne(ctx, eng, progs[i]), nil
	})
	if err != nil {
		return nil, err
	}
	return BuildReport(verdicts), nil
}
