package obs

import "fmt"

// ParseTraceparent extracts the trace ID from a W3C trace-context
// `traceparent` header (version 00: `00-<32 hex>-<16 hex>-<2 hex>`).
// It returns the trace ID, or an error for malformed values; callers
// typically fall back to NewTraceID then.
func ParseTraceparent(h string) (traceID string, err error) {
	if len(h) < 55 {
		return "", fmt.Errorf("traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", fmt.Errorf("traceparent: bad field separators")
	}
	id := h[3:35]
	allZero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", fmt.Errorf("traceparent: non-hex trace ID")
		}
		if c != '0' {
			allZero = false
		}
	}
	if allZero {
		return "", fmt.Errorf("traceparent: all-zero trace ID")
	}
	return id, nil
}

// FormatTraceparent renders a version-00 traceparent header for the
// given trace ID, minting a fresh parent span ID.
func FormatTraceparent(traceID string) string {
	return "00-" + traceID + "-" + NewSpanID() + "-01"
}
