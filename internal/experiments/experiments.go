// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5):
//
//	Table 1  — the validation application set (package suite)
//	Table 2  — accuracy: min/max absolute error between estimated and
//	           measured times over problem and system sizes
//	Figure 3 — the three Laplace data decompositions
//	Figure 4 — Laplace estimated/measured times on 4 processors
//	Figure 5 — Laplace estimated/measured times on 8 processors
//	Figure 7 — interpreted per-phase profile of the stock option pricing
//	           model (with Figure 6's phase structure)
//	Figure 8 — experimentation time: interpreter vs. iPSC/860 measurement
//
// "Measured" times come from executing the compiled SPMD program on the
// simulated iPSC/860 (packages exec and ipsc); "estimated" times come
// from the interpretation engine (package core).
//
// Every sweep flattens its (program × size × procs) point grid onto the
// shared worker pool of package sweep, so points of different programs
// evaluate concurrently while rows and curves come back in their
// deterministic order, and repeated sources (Figure 8 reuses the
// Laplace programs of Figures 4/5) hit the compile/prediction cache.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/report"
	"hpfperf/internal/suite"
	"hpfperf/internal/sweep"
)

// Config controls experiment execution.
type Config struct {
	// Quick restricts sweeps to a small subset (for tests and smoke runs).
	Quick bool
	// Runs is the number of perturbed measured runs to average
	// (the paper averaged 1000; the deterministic simulator converges with
	// a handful). Default 3.
	Runs int
	// Perturb enables measured-run load fluctuation. Default true via
	// DefaultConfig.
	Perturb float64
	// Log receives progress output (may be nil). Sweep points log
	// concurrently; writes are serialized by the package.
	Log io.Writer
	// Engine runs the sweep points; nil uses the process-wide shared
	// engine (sweep.Default()), whose cache lets later figures reuse
	// programs compiled by earlier ones.
	Engine *sweep.Engine
	// Workers bounds pool concurrency when Engine is nil (<= 0 uses
	// GOMAXPROCS); the derived engine still shares the default cache.
	Workers int
	// Ctx, when non-nil, flows into every sweep point: it carries
	// cancellation and, when it holds an obs span, traces each
	// artifact's compiles and interpretations (hpfexp -trace-out).
	Ctx context.Context
	// CheckpointDir, when non-empty, makes each sweep record completed
	// points to <dir>/<artifact>.ckpt so a killed run resumes from
	// where it stopped; point evaluation is deterministic, so a resumed
	// run renders byte-identical output. The file is removed when the
	// sweep completes.
	CheckpointDir string
	// CheckpointFlush, when set with CheckpointDir, observes every
	// durable checkpoint write: the artifact name and the number of
	// completed points on file. The async jobs subsystem journals these
	// as checkpointed(n) state transitions.
	CheckpointFlush func(artifact string, done int)
}

// DefaultConfig returns the full-fidelity experiment configuration.
func DefaultConfig() Config {
	return Config{Runs: 3, Perturb: 0.01}
}

// QuickConfig returns a reduced configuration for smoke tests.
func QuickConfig() Config {
	return Config{Quick: true, Runs: 1, Perturb: 0.01}
}

func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) engine() *sweep.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	if c.Workers > 0 {
		d := sweep.Default()
		return sweep.New(sweep.Options{Workers: c.Workers, Cache: d.Cache(), Stats: d.Stats()})
	}
	return sweep.Default()
}

// checkpoint returns the durable-progress configuration for one
// artifact's sweep, or nil when checkpointing is off. The key
// fingerprints every Config field that changes point values or the
// point grid, so stale state from a different configuration is
// discarded rather than resumed.
func (c Config) checkpoint(artifact string) *sweep.Checkpoint {
	if c.CheckpointDir == "" {
		return nil
	}
	ck := &sweep.Checkpoint{
		Path: filepath.Join(c.CheckpointDir, artifact+".ckpt"),
		Key:  fmt.Sprintf("%s|quick=%t|runs=%d|perturb=%g", artifact, c.Quick, c.Runs, c.Perturb),
	}
	if c.CheckpointFlush != nil {
		ck.OnFlush = func(done int) { c.CheckpointFlush(artifact, done) }
	}
	if c.Log != nil {
		ck.Warnf = func(format string, args ...any) { c.logf(format+"\n", args...) }
	}
	return ck
}

var logMu sync.Mutex

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(c.Log, format, args...)
	}
}

// EstimateAndMeasure compiles one source (through the sweep cache),
// interprets it and runs it on the simulated machine, returning
// (estimated, measured) microseconds.
func EstimateAndMeasure(src string, cfg Config) (estUS, measUS float64, err error) {
	return cfg.engine().EstimateAndMeasureContext(cfg.ctx(), src, cfg.Runs, cfg.Perturb)
}

// ---------------------------------------------------------------------------
// Table 2 — accuracy of the performance prediction framework

// AccuracyPoint is one (problem size, system size) comparison.
type AccuracyPoint struct {
	Size   int
	Procs  int
	EstUS  float64
	MeasUS float64
}

// ErrPct is the absolute error as a percentage of the measured time.
// A divergent prediction against a zero measurement (EstUS != 0 while
// MeasUS == 0) is +Inf, not 0: the prediction is unboundedly wrong, not
// perfect.
func (p AccuracyPoint) ErrPct() float64 {
	if p.MeasUS == 0 {
		if p.EstUS == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(p.EstUS-p.MeasUS) / p.MeasUS * 100
}

// AccuracyRow is one program's row of Table 2.
type AccuracyRow struct {
	Name      string
	SizeRange string
	ProcRange string
	Points    []AccuracyPoint
}

// MinErrPct returns the minimum absolute error over all points, or NaN
// for a row with no points ("no data" must stay distinguishable from a
// perfect 0% prediction).
func (r AccuracyRow) MinErrPct() float64 {
	if len(r.Points) == 0 {
		return math.NaN()
	}
	m := math.Inf(1)
	for _, p := range r.Points {
		if e := p.ErrPct(); e < m {
			m = e
		}
	}
	return m
}

// MaxErrPct returns the maximum absolute error over all points, or NaN
// for a row with no points.
func (r AccuracyRow) MaxErrPct() float64 {
	if len(r.Points) == 0 {
		return math.NaN()
	}
	m := 0.0
	for _, p := range r.Points {
		if e := p.ErrPct(); e > m {
			m = e
		}
	}
	return m
}

// sweepGrid returns the (sizes, procs) grid for one program under cfg.
// Quick mode keeps the first two problem sizes and intersects the
// quick system sizes {1, 4} with the program's declared Procs, so a
// program is never swept at a system size it does not declare; a
// program declaring neither falls back to its first two declared
// counts.
func sweepGrid(p *suite.Program, cfg Config) (sizes, procs []int) {
	if !cfg.Quick {
		return p.Sizes, p.Procs
	}
	sizes = p.Sizes[:min(2, len(p.Sizes))]
	for _, np := range p.Procs {
		if np == 1 || np == 4 {
			procs = append(procs, np)
		}
	}
	if len(procs) == 0 {
		procs = p.Procs[:min(2, len(p.Procs))]
	}
	return sizes, procs
}

// Table2 reproduces the accuracy validation (§5.1): for every program of
// the validation set, estimated and measured times are compared while
// varying the problem size and the number of processing elements. The
// full (program × size × procs) grid is flattened onto one worker pool;
// rows come back in Table 1 order with points in sweep order.
func Table2(cfg Config) ([]AccuracyRow, error) {
	progs := suite.All()
	rows := make([]AccuracyRow, len(progs))
	type point struct {
		row         int
		size, procs int
	}
	var pts []point
	for i, p := range progs {
		sizes, procs := sweepGrid(p, cfg)
		rows[i] = AccuracyRow{
			Name:      p.Name,
			SizeRange: fmt.Sprintf("%d - %d", sizes[0], sizes[len(sizes)-1]),
			ProcRange: fmt.Sprintf("%d - %d", procs[0], procs[len(procs)-1]),
		}
		for _, n := range sizes {
			for _, np := range procs {
				pts = append(pts, point{row: i, size: n, procs: np})
			}
		}
	}
	eng := cfg.engine()
	res, err := sweep.MapCheckpointCtx(cfg.ctx(), eng, len(pts), cfg.checkpoint("table2"), func(k int) (AccuracyPoint, error) {
		pt := pts[k]
		p := progs[pt.row]
		ap, err := accuracyPoint(eng, p, pt.size, pt.procs, cfg)
		if err != nil {
			return ap, fmt.Errorf("%s: %w", p.Name, err)
		}
		return ap, nil
	})
	if err != nil {
		return nil, err
	}
	for k, ap := range res {
		rows[pts[k].row].Points = append(rows[pts[k].row].Points, ap)
	}
	return rows, nil
}

// Table2Row runs the accuracy sweep for one program on the worker pool.
func Table2Row(p *suite.Program, cfg Config) (AccuracyRow, error) {
	sizes, procs := sweepGrid(p, cfg)
	row := AccuracyRow{
		Name:      p.Name,
		SizeRange: fmt.Sprintf("%d - %d", sizes[0], sizes[len(sizes)-1]),
		ProcRange: fmt.Sprintf("%d - %d", procs[0], procs[len(procs)-1]),
	}
	type point struct{ size, procs int }
	var pts []point
	for _, n := range sizes {
		for _, np := range procs {
			pts = append(pts, point{size: n, procs: np})
		}
	}
	eng := cfg.engine()
	res, err := sweep.MapCtx(cfg.ctx(), eng, len(pts), func(k int) (AccuracyPoint, error) {
		return accuracyPoint(eng, p, pts[k].size, pts[k].procs, cfg)
	})
	if err != nil {
		return row, err
	}
	row.Points = res
	return row, nil
}

// accuracyPoint evaluates one (size, procs) comparison of one program.
func accuracyPoint(eng *sweep.Engine, p *suite.Program, size, procs int, cfg Config) (AccuracyPoint, error) {
	est, meas, err := eng.EstimateAndMeasureContext(cfg.ctx(), p.Source(size, procs), cfg.Runs, cfg.Perturb)
	if err != nil {
		return AccuracyPoint{}, fmt.Errorf("size %d procs %d: %w", size, procs, err)
	}
	pt := AccuracyPoint{Size: size, Procs: procs, EstUS: est, MeasUS: meas}
	cfg.logf("%-18s n=%-6d p=%d est=%-12s meas=%-12s err=%.2f%%\n",
		p.Name, size, procs, report.FormatUS(est), report.FormatUS(meas), pt.ErrPct())
	return pt, nil
}

// fmtPct renders an error percentage, keeping the degenerate cases
// distinguishable: NaN (no data) renders "n/a", +Inf (divergent
// prediction against a zero measurement) renders ">100%".
func fmtPct(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return ">100%"
	}
	return fmt.Sprintf("%.2f%%", v)
}

// RenderTable2 renders rows in the layout of the paper's Table 2.
func RenderTable2(rows []AccuracyRow) string {
	headers := []string{"Name", "Problem Sizes", "System Size", "Min Abs Error", "Max Abs Error"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Name, r.SizeRange + " (data elements)", r.ProcRange + " (# procs)",
			fmtPct(r.MinErrPct()), fmtPct(r.MaxErrPct()),
		})
	}
	return "Table 2: Accuracy of the Performance Prediction Framework\n" +
		report.Table(headers, body)
}

// ---------------------------------------------------------------------------
// Figure 3 — Laplace solver data distributions

// Figure3 renders the three template distributions of the Laplace solver
// on 4 processors as ownership pictures.
func Figure3() (string, error) {
	out := "Figure 3: Laplace Solver - Data Distributions (4 processors)\n\n"
	eng := sweep.Default()
	for _, cse := range []struct {
		name string
		prog *suite.Program
	}{
		{"(Block,Block)", suite.LaplaceBB()},
		{"(Block,*)", suite.LaplaceBX()},
		{"(*,Block)", suite.LaplaceXB()},
	} {
		prog, err := eng.Compile(cse.prog.Source(16, 4), compiler.Options{})
		if err != nil {
			return "", err
		}
		m := prog.Info.ArrayMap("U")
		out += cse.name + ":\n" + m.AsciiDecomposition(8) + "\n"
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 4 and 5 — Laplace estimated/measured times

// LaplaceSeries is one curve of Figures 4/5.
type LaplaceSeries struct {
	Label  string
	Kind   string // "Estimated" or "Measured"
	Sizes  []int
	TimeUS []float64
}

// laplaceCases returns the three Laplace variants in figure order.
func laplaceCases(procs int) []struct {
	label string
	prog  *suite.Program
} {
	return []struct {
		label string
		prog  *suite.Program
	}{
		{"(Blk,Blk) - " + gridLabel(procs), suite.LaplaceBB()},
		{"(Blk,*) - " + fmt.Sprintf("%d Procs", procs), suite.LaplaceBX()},
		{"(*,Blk) - " + fmt.Sprintf("%d Procs", procs), suite.LaplaceXB()},
	}
}

// Figure45 reproduces Figure 4 (procs = 4) or Figure 5 (procs = 8): the
// estimated and measured execution times of the three Laplace variants
// over the problem-size sweep, all (variant × size) points evaluated on
// the worker pool.
func Figure45(procs int, cfg Config) ([]LaplaceSeries, error) {
	sizes := []int{16, 64, 128, 192, 256}
	if cfg.Quick {
		sizes = []int{16, 64}
	}
	cases := laplaceCases(procs)
	type point struct{ cse, sizeIdx int }
	var pts []point
	for c := range cases {
		for s := range sizes {
			pts = append(pts, point{cse: c, sizeIdx: s})
		}
	}
	eng := cfg.engine()
	res, err := sweep.MapCheckpointCtx(cfg.ctx(), eng, len(pts), cfg.checkpoint(fmt.Sprintf("fig45-p%d", procs)), func(k int) ([2]float64, error) {
		pt := pts[k]
		cse := cases[pt.cse]
		n := sizes[pt.sizeIdx]
		e, m, err := eng.EstimateAndMeasureContext(cfg.ctx(), cse.prog.Source(n, procs), cfg.Runs, cfg.Perturb)
		if err != nil {
			return [2]float64{}, fmt.Errorf("%s n=%d: %w", cse.label, n, err)
		}
		cfg.logf("laplace %-22s n=%-4d est=%-12s meas=%-12s\n",
			cse.label, n, report.FormatUS(e), report.FormatUS(m))
		return [2]float64{e, m}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []LaplaceSeries
	for c, cse := range cases {
		est := LaplaceSeries{Label: cse.label, Kind: "Estimated", Sizes: sizes}
		mea := LaplaceSeries{Label: cse.label, Kind: "Measured", Sizes: sizes}
		for s := range sizes {
			em := res[c*len(sizes)+s]
			est.TimeUS = append(est.TimeUS, em[0])
			mea.TimeUS = append(mea.TimeUS, em[1])
		}
		out = append(out, est, mea)
	}
	return out, nil
}

func gridLabel(procs int) string {
	return fmt.Sprintf("%s Proc Grid", map[int]string{1: "1x1", 2: "1x2", 4: "2x2", 8: "2x4"}[procs])
}

// RenderFigure45 renders the series as a text chart plus a value table.
func RenderFigure45(fig int, procs int, series []LaplaceSeries) string {
	var cs []report.Series
	for _, s := range series {
		xs := make([]float64, len(s.Sizes))
		ys := make([]float64, len(s.TimeUS))
		for i := range s.Sizes {
			xs[i] = float64(s.Sizes[i])
			ys[i] = s.TimeUS[i] / 1e6
		}
		cs = append(cs, report.Series{Label: s.Kind + " " + s.Label, X: xs, Y: ys})
	}
	title := fmt.Sprintf("Figure %d: Laplace Solver (%d Procs) - Estimated/Measured Times", fig, procs)
	out := report.Chart(title, "Problem Size", "Execution Time (sec)", cs)
	headers := []string{"series", "kind"}
	for _, n := range series[0].Sizes {
		headers = append(headers, fmt.Sprint(n))
	}
	var rows [][]string
	for _, s := range series {
		row := []string{s.Label, s.Kind}
		for _, t := range s.TimeUS {
			row = append(row, report.FormatUS(t))
		}
		rows = append(rows, row)
	}
	return out + "\n" + report.Table(headers, rows)
}

// ---------------------------------------------------------------------------
// Figure 7 — Financial model interpreted performance profile

// Figure7 interprets the stock option pricing model (4 processors,
// size 256) and returns its per-phase profile (Figure 6 defines the two
// phases: lattice creation with shift communication, then call price
// computation without communication).
func Figure7(cfg Config) ([]report.PhaseBreakdown, error) {
	p := suite.Finance()
	size := 256
	if cfg.Quick {
		size = 64
	}
	src := p.Source(size, 4)
	rep, err := cfg.engine().Interpret(src, compiler.Options{}, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	l1 := suite.LineOf(src, suite.FinancePhase1Marker)
	l2 := suite.LineOf(src, suite.FinancePhase2Marker)
	lend := suite.LineOf(src, "CHK =")
	phases := []report.Phase{
		{Name: "Phase 1", FromLine: l1, ToLine: l2 - 1},
		{Name: "Phase 2", FromLine: l2, ToLine: lend - 1},
	}
	return report.PhaseProfile(rep, phases), nil
}

// RenderFigure7 renders the phase profile.
func RenderFigure7(phases []report.PhaseBreakdown) string {
	return report.RenderPhaseProfile(
		"Figure 7: Stock Option Pricing - Interpreted Performance Profile (Procs = 4; Size = 256)",
		phases)
}

// ---------------------------------------------------------------------------
// Figure 8 — experimentation time

// WorkflowModel parameterizes the cost (in minutes) of one experimentation
// cycle, following §5.3's description of the two workflows. The iPSC/860
// cycle is: edit code, compile and link with a cross compiler, transfer
// the executable to the front end, load it onto the i860 nodes, and run
// it (1000 timed runs per instance), repeated for each problem size; the
// machine is shared, adding a queue wait per instance. The interpreter
// cycle is: adjust directives/parameters in the interface and re-run the
// source-driven interpretation on a workstation.
type WorkflowModel struct {
	// Measured workflow (per experiment instance).
	EditMin      float64
	CompileMin   float64
	TransferMin  float64
	LoadMin      float64
	QueueWaitMin float64
	TimedRuns    int
	// Interpreted workflow.
	InterpEditMin   float64
	InterpPerRunMin float64
	InterpSetupMin  float64
}

// DefaultWorkflow returns the model calibrated to the paper's reported
// experimentation times (≈10 min per variant interpreted; 27–60 min
// measured).
func DefaultWorkflow() WorkflowModel {
	return WorkflowModel{
		EditMin:         1.0,
		CompileMin:      2.5,
		TransferMin:     1.0,
		LoadMin:         0.5,
		QueueWaitMin:    1.0,
		TimedRuns:       1000,
		InterpEditMin:   1.5,
		InterpPerRunMin: 0.5,
		InterpSetupMin:  2.0,
	}
}

// ExperimentTime is one bar pair of Figure 8.
type ExperimentTime struct {
	Impl           string
	InterpreterMin float64
	IPSCMin        float64
}

// Figure8 reproduces the experimentation-time comparison for the three
// Laplace implementations: each variant is evaluated over the problem
// size sweep, measured runs costing real (simulated) machine time. The
// sources are the same Laplace programs Figures 4/5 sweep, so on the
// shared engine every compile here is a cache hit.
func Figure8(cfg Config) ([]ExperimentTime, error) {
	wm := DefaultWorkflow()
	sizes := []int{16, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{16, 64}
	}
	cases := []struct {
		label string
		prog  *suite.Program
	}{
		{"(Blk,Blk)", suite.LaplaceBB()},
		{"(Blk,*)", suite.LaplaceBX()},
		{"(*,Blk)", suite.LaplaceXB()},
	}
	type point struct{ cse, sizeIdx int }
	var pts []point
	for c := range cases {
		for s := range sizes {
			pts = append(pts, point{cse: c, sizeIdx: s})
		}
	}
	eng := cfg.engine()
	res, err := sweep.MapCheckpointCtx(cfg.ctx(), eng, len(pts), cfg.checkpoint("fig8"), func(k int) (float64, error) {
		pt := pts[k]
		src := cases[pt.cse].prog.Source(sizes[pt.sizeIdx], 4)
		_, meas, err := eng.EstimateAndMeasureContext(cfg.ctx(), src, cfg.Runs, cfg.Perturb)
		return meas, err
	})
	if err != nil {
		return nil, err
	}
	var out []ExperimentTime
	for c, cse := range cases {
		et := ExperimentTime{Impl: cse.label}
		et.InterpreterMin = wm.InterpSetupMin
		for s := range sizes {
			meas := res[c*len(sizes)+s]
			// Measured workflow: full edit-compile-transfer-load cycle plus
			// the timed runs on the machine.
			runMin := meas / 1e6 / 60 * float64(wm.TimedRuns)
			et.IPSCMin += wm.EditMin + wm.CompileMin + wm.TransferMin + wm.LoadMin + wm.QueueWaitMin + runMin
			// Interpreted workflow: directive edit plus an interpretation run.
			et.InterpreterMin += wm.InterpEditMin + wm.InterpPerRunMin
		}
		cfg.logf("figure8 %-10s interp=%.1fmin ipsc=%.1fmin\n", et.Impl, et.InterpreterMin, et.IPSCMin)
		out = append(out, et)
	}
	return out, nil
}

// RenderFigure8 renders the experimentation-time bars.
func RenderFigure8(times []ExperimentTime) string {
	var labels []string
	var values []float64
	for _, t := range times {
		labels = append(labels, t.Impl+" interpreter")
		values = append(values, t.InterpreterMin)
		labels = append(labels, t.Impl+" iPSC/860")
		values = append(values, t.IPSCMin)
	}
	return report.Bars("Figure 8: Experimentation Time - Laplace Solver", "min", labels, values)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
