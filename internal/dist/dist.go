// Package dist implements the HPF data-mapping algebra used by the
// partitioning step of compilation (§4.1 step 2): processor arrangements,
// BLOCK / CYCLIC / collapsed dimension distributions, and the global↔local
// index transformations needed for owner-computes partitioning.
package dist

import (
	"fmt"
	"strings"
)

// Grid is a rectilinear arrangement of abstract processors, as declared by
// a PROCESSORS directive. Ranks are row-major over the shape.
type Grid struct {
	Name  string
	Shape []int
}

// NewGrid builds a grid, validating that all extents are positive.
func NewGrid(name string, shape ...int) (*Grid, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("dist: processor grid %s has no dimensions", name)
	}
	for i, e := range shape {
		if e <= 0 {
			return nil, fmt.Errorf("dist: processor grid %s dimension %d extent %d must be positive", name, i+1, e)
		}
	}
	return &Grid{Name: name, Shape: append([]int(nil), shape...)}, nil
}

// Size returns the total number of processors in the grid.
func (g *Grid) Size() int {
	n := 1
	for _, e := range g.Shape {
		n *= e
	}
	return n
}

// Rank converts grid coordinates (0-based) to a linear rank (row-major).
func (g *Grid) Rank(coords []int) int {
	if len(coords) != len(g.Shape) {
		panic(fmt.Sprintf("dist: coords rank %d != grid rank %d", len(coords), len(g.Shape)))
	}
	r := 0
	for i, c := range coords {
		if c < 0 || c >= g.Shape[i] {
			panic(fmt.Sprintf("dist: coordinate %d out of range [0,%d)", c, g.Shape[i]))
		}
		r = r*g.Shape[i] + c
	}
	return r
}

// Coords converts a linear rank to grid coordinates.
func (g *Grid) Coords(rank int) []int {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, g.Size()))
	}
	coords := make([]int, len(g.Shape))
	for i := len(g.Shape) - 1; i >= 0; i-- {
		coords[i] = rank % g.Shape[i]
		rank /= g.Shape[i]
	}
	return coords
}

func (g *Grid) String() string {
	parts := make([]string, len(g.Shape))
	for i, e := range g.Shape {
		parts[i] = fmt.Sprint(e)
	}
	return fmt.Sprintf("%s(%s)", g.Name, strings.Join(parts, ","))
}

// Kind is the distribution format of one dimension.
type Kind int

const (
	Collapsed Kind = iota // '*': whole dimension on every owning processor
	Block                 // BLOCK: contiguous chunks of size ceil(N/P)
	Cyclic                // CYCLIC: round-robin single elements
)

func (k Kind) String() string {
	switch k {
	case Collapsed:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	}
	return "?"
}

// DimDist describes how one array/template dimension is mapped.
//
// A Collapsed dimension lives whole on each processor that owns the other
// dimensions (ProcDim is -1). Block and Cyclic dimensions are spread over
// grid dimension ProcDim with NProc processors.
type DimDist struct {
	Kind    Kind
	Lo, Hi  int // global index bounds (inclusive)
	ProcDim int // grid dimension this maps to; -1 for Collapsed
	NProc   int // extent of that grid dimension;  1 for Collapsed
	// Blk is an explicit BLOCK(n) chunk size; 0 selects the default
	// ceil(extent/nproc). Must satisfy Blk*NProc >= extent.
	Blk int
}

// Extent returns the global number of elements in the dimension.
func (d DimDist) Extent() int { return d.Hi - d.Lo + 1 }

// BlockSize returns the per-processor chunk size for Block distributions
// (ceil(extent/nproc)); it is the full extent for Collapsed and 1-ish for
// Cyclic (where it is not meaningful and returns 1).
func (d DimDist) BlockSize() int {
	switch d.Kind {
	case Collapsed:
		return d.Extent()
	case Block:
		if d.Blk > 0 {
			return d.Blk
		}
		return ceilDiv(d.Extent(), d.NProc)
	default:
		return 1
	}
}

// Owner returns the processor coordinate (within grid dimension ProcDim)
// owning global index g.
func (d DimDist) Owner(g int) int {
	d.check(g)
	switch d.Kind {
	case Collapsed:
		return 0
	case Block:
		return (g - d.Lo) / d.BlockSize()
	case Cyclic:
		return (g - d.Lo) % d.NProc
	}
	panic("dist: bad kind")
}

// ToLocal converts a global index to the owner's local 0-based offset.
func (d DimDist) ToLocal(g int) int {
	d.check(g)
	switch d.Kind {
	case Collapsed:
		return g - d.Lo
	case Block:
		return (g - d.Lo) % d.BlockSize()
	case Cyclic:
		return (g - d.Lo) / d.NProc
	}
	panic("dist: bad kind")
}

// ToGlobal converts a processor coordinate and local offset back to the
// global index. It is the inverse of (Owner, ToLocal) for owned elements.
func (d DimDist) ToGlobal(p, l int) int {
	switch d.Kind {
	case Collapsed:
		return d.Lo + l
	case Block:
		return d.Lo + p*d.BlockSize() + l
	case Cyclic:
		return d.Lo + l*d.NProc + p
	}
	panic("dist: bad kind")
}

// LocalSize returns the number of elements of the dimension owned by
// processor coordinate p.
func (d DimDist) LocalSize(p int) int {
	switch d.Kind {
	case Collapsed:
		return d.Extent()
	case Block:
		b := d.BlockSize()
		lo := d.Lo + p*b
		hi := lo + b - 1
		if hi > d.Hi {
			hi = d.Hi
		}
		if lo > d.Hi {
			return 0
		}
		return hi - lo + 1
	case Cyclic:
		n := d.Extent()
		size := n / d.NProc
		if p < n%d.NProc {
			size++
		}
		return size
	}
	panic("dist: bad kind")
}

// MaxLocalSize returns the largest per-processor share (the share of the
// most loaded processor). The interpretation engine models loosely
// synchronous execution time with the maximum-loaded processor.
func (d DimDist) MaxLocalSize() int {
	switch d.Kind {
	case Collapsed:
		return d.Extent()
	case Block:
		return min(d.BlockSize(), d.Extent())
	case Cyclic:
		return ceilDiv(d.Extent(), d.NProc)
	}
	panic("dist: bad kind")
}

// OwnedRange returns the inclusive global range [lo,hi] owned by processor
// p for Block/Collapsed distributions. ok is false when p owns nothing.
// For Cyclic dimensions the owned set is not contiguous and ok is false.
func (d DimDist) OwnedRange(p int) (lo, hi int, ok bool) {
	switch d.Kind {
	case Collapsed:
		return d.Lo, d.Hi, true
	case Block:
		b := d.BlockSize()
		lo = d.Lo + p*b
		hi = lo + b - 1
		if hi > d.Hi {
			hi = d.Hi
		}
		if lo > d.Hi {
			return 0, 0, false
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// LoopCount returns how many iterations of the global loop lo:hi:step fall
// on processor coordinate p (owner-computes partitioning of a parallel
// loop aligned with this dimension). Unit-stride loops use closed forms so
// that interpretation cost is independent of the problem size (the
// framework's cost-effectiveness property, §5.3).
func (d DimDist) LoopCount(p, lo, hi, step int) int {
	if step == 0 {
		return 0
	}
	if step == 1 {
		// Clip to the dimension bounds.
		if lo < d.Lo {
			lo = d.Lo
		}
		if hi > d.Hi {
			hi = d.Hi
		}
		if hi < lo {
			return 0
		}
		switch d.Kind {
		case Collapsed:
			if p != 0 {
				return 0
			}
			return hi - lo + 1
		case Block:
			oLo, oHi, ok := d.OwnedRange(p)
			if !ok {
				return 0
			}
			if lo > oLo {
				oLo = lo
			}
			if hi < oHi {
				oHi = hi
			}
			if oHi < oLo {
				return 0
			}
			return oHi - oLo + 1
		case Cyclic:
			// Count g in [lo,hi] with (g-d.Lo) mod NProc == p.
			count := func(upTo int) int {
				// Number of g in [d.Lo, upTo] owned by p.
				n := upTo - d.Lo + 1
				if n <= 0 {
					return 0
				}
				full := n / d.NProc
				if n%d.NProc > p {
					full++
				}
				return full
			}
			return count(hi) - count(lo-1)
		}
	}
	n := 0
	if step > 0 {
		for g := lo; g <= hi; g += step {
			if d.contains(g) && d.Owner(g) == p {
				n++
			}
		}
	} else {
		for g := lo; g >= hi; g += step {
			if d.contains(g) && d.Owner(g) == p {
				n++
			}
		}
	}
	return n
}

// MaxLoopCount returns the largest per-processor iteration count of the
// global loop lo:hi:step over this dimension.
func (d DimDist) MaxLoopCount(lo, hi, step int) int {
	maxN := 0
	for p := 0; p < d.procCount(); p++ {
		if n := d.LoopCount(p, lo, hi, step); n > maxN {
			maxN = n
		}
	}
	return maxN
}

func (d DimDist) procCount() int {
	if d.Kind == Collapsed {
		return 1
	}
	return d.NProc
}

func (d DimDist) contains(g int) bool { return g >= d.Lo && g <= d.Hi }

func (d DimDist) check(g int) {
	if !d.contains(g) {
		panic(fmt.Sprintf("dist: global index %d outside [%d,%d]", g, d.Lo, d.Hi))
	}
}

func (d DimDist) String() string {
	if d.Kind == Collapsed {
		return "*"
	}
	return fmt.Sprintf("%s/p%d", d.Kind, d.ProcDim)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
