package suite

import (
	"fmt"
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/exec"
	"hpfperf/internal/ipsc"
)

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("suite has %d programs, want 16 (Table 1)", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		if names[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		names[p.Name] = true
		if len(p.Sizes) == 0 || len(p.Procs) == 0 {
			t.Errorf("%s missing sweep configuration", p.Name)
		}
	}
	for _, want := range []string{"LFK 1", "LFK 2", "LFK 3", "LFK 9", "LFK 14", "LFK 22",
		"PBS 1", "PBS 2", "PBS 3", "PBS 4", "PI", "N-Body", "Finance",
		"Laplace (Blk-Blk)", "Laplace (Blk-X)", "Laplace (X-Blk)"} {
		if !names[want] {
			t.Errorf("missing program %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("pi") == nil {
		t.Error("ByName should be case-insensitive")
	}
	if ByName("nope") != nil {
		t.Error("unknown name should return nil")
	}
}

// TestAllProgramsCompileAndRun compiles, interprets and executes every
// suite program at its smallest size on 1 and 4 processors.
func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, procs := range []int{1, 4} {
				src := p.Source(p.Sizes[0], procs)
				prog, err := compiler.Compile(src)
				if err != nil {
					t.Fatalf("procs=%d: compile: %v\nsource:\n%s", procs, err, src)
				}
				it, err := core.New(prog, nil, core.DefaultOptions())
				if err != nil {
					t.Fatalf("procs=%d: interpreter: %v", procs, err)
				}
				rep, err := it.Interpret()
				if err != nil {
					t.Fatalf("procs=%d: interpret: %v", procs, err)
				}
				if rep.TotalUS() <= 0 {
					t.Errorf("procs=%d: zero prediction", procs)
				}
				cfg := ipsc.DefaultConfig(procs)
				cfg.PerturbAmp = 0
				m, err := ipsc.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := exec.Run(prog, m, exec.Options{})
				if err != nil {
					t.Fatalf("procs=%d: run: %v", procs, err)
				}
				if res.MeasuredUS <= 0 {
					t.Errorf("procs=%d: zero measured time", procs)
				}
			}
		})
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int]string{1: "(1,1)", 2: "(1,2)", 4: "(2,2)", 8: "(2,4)", 6: "(2,3)"}
	for p, want := range cases {
		if got := Grid2D(p); got != want {
			t.Errorf("Grid2D(%d) = %s, want %s", p, got, want)
		}
	}
}

func TestLineOf(t *testing.T) {
	p := Finance()
	src := p.Source(64, 4)
	l1 := LineOf(src, FinancePhase1Marker)
	l2 := LineOf(src, FinancePhase2Marker)
	if l1 == 0 || l2 == 0 || l2 <= l1 {
		t.Errorf("phase markers at %d, %d", l1, l2)
	}
}

// TestFunctionalResults checks suite programs against closed-form or
// reference values computed directly in Go.
func TestFunctionalResults(t *testing.T) {
	runProg := func(t *testing.T, src string) []string {
		t.Helper()
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ipsc.DefaultConfig(prog.Info.Grid.Size())
		cfg.PerturbAmp = 0
		m, _ := ipsc.New(cfg)
		res, err := exec.Run(prog, m, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Printed
	}

	t.Run("PI converges", func(t *testing.T) {
		// PI's suite source has no PRINT; append one before END.
		src := withPrint(PI().Source(2048, 4), "API")
		out := runProg(t, src)
		v := parseLast(t, out)
		if v < 3.141 || v > 3.142 {
			t.Errorf("pi = %g", v)
		}
	})

	t.Run("PBS4 harmonic-like sum", func(t *testing.T) {
		src := withPrint(PBS4().Source(128, 4), "R")
		out := runProg(t, src)
		want := 0.0
		for k := 1; k <= 128; k++ {
			want += 1.0 / (1.0 + 0.01*float64(k))
		}
		v := parseLast(t, out)
		if diff := v - want; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("R = %g, want %g", v, want)
		}
	})

	t.Run("LFK22 guarded", func(t *testing.T) {
		src := withPrint(LFK22().Source(128, 4), "CHK")
		out := runProg(t, src)
		v := parseLast(t, out)
		// W = X/(EXP(Y)-1) with X=0.7, Y∈[1.5,3.1]: each term positive and
		// below 0.7/(e^1.5-1) ≈ 0.2; the sum over 128 elements is bounded.
		if v <= 0 || v > 0.2*128 {
			t.Errorf("LFK22 CHK = %g out of physical range", v)
		}
	})

	t.Run("Finance prices positive", func(t *testing.T) {
		src := withPrint(Finance().Source(64, 4), "CHK")
		out := runProg(t, src)
		if v := parseLast(t, out); v <= 0 {
			t.Errorf("total option value = %g", v)
		}
	})
}

// withPrint inserts a PRINT of one scalar before the final END.
func withPrint(src, name string) string {
	return strings.TrimSuffix(src, "END") + "PRINT *, " + name + "\nEND"
}

func parseLast(t *testing.T, printed []string) float64 {
	t.Helper()
	if len(printed) == 0 {
		t.Fatal("no output")
	}
	var v float64
	if _, err := fmt.Sscanf(printed[len(printed)-1], "%g", &v); err != nil {
		t.Fatalf("parse %q: %v", printed[len(printed)-1], err)
	}
	return v
}
