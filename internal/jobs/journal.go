// Package jobs is the durable async job subsystem: long-running
// requests (experiment sweeps, autotune searches, corpus validations)
// are recorded in a crash-safe write-ahead journal, executed on a
// bounded worker pool threaded through the sweep checkpoint machinery,
// and survive SIGKILL, OOM and node loss — a restarted process replays
// the journal and resumes every in-flight job from its last checkpoint,
// producing byte-identical final output to an uninterrupted run.
//
// The journal is append-only JSONL: each line frames one state
// transition as `crc32c<HEX8> <json>\n`, fsynced before the transition
// is acted on. Replay reconciles torn or corrupt tails by truncating at
// the first bad record (counted, never refusing to boot). Segments
// rotate by compaction: a snapshot of the live jobs is written to a
// fresh segment with an atomic temp+rename, and older segments are
// removed only after the new one is durable.
package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// State is a job's lifecycle state. "checkpointed" appears only as a
// journal transition (progress while running); a job's effective state
// is always one of the five below.
type State string

const (
	StateSubmitted State = "submitted"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"

	// StateCheckpointed is the journal-only progress transition
	// checkpointed(n): the job stays running, n points are durable. It
	// never appears as a job's effective state, but event-stream
	// consumers see it on every durable progress step.
	StateCheckpointed State = "checkpointed"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// record is one journaled state transition (or a compaction snapshot of
// a whole job, which carries every surviving field).
type record struct {
	Job     string          `json:"job"`
	State   State           `json:"state"`
	Time    time.Time       `json:"time"`
	Kind    string          `json:"kind,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Options *Options        `json:"options,omitempty"`
	Done    int             `json:"done,omitempty"`  // checkpointed(n): points durable
	Ckpts   int             `json:"ckpts,omitempty"` // snapshot: checkpoint transitions so far
	Runs    int             `json:"runs,omitempty"`  // running transitions so far
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Submitted preserves the original submit time on snapshot records.
	Submitted time.Time `json:"submitted,omitempty"`
	// Started/Finished preserve run timestamps on snapshot records.
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame renders one journal line: crc32c of the JSON payload (hex, 8
// digits), a space, the payload, a newline. The CRC covers exactly the
// payload bytes, so any torn or bit-flipped line fails verification.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = fmt.Appendf(out, "%08x ", crc32.Checksum(payload, crcTable))
	out = append(out, payload...)
	out = append(out, '\n')
	return out
}

// parseLine verifies and decodes one framed line (without the trailing
// newline). ok is false for malformed framing or a CRC mismatch.
func parseLine(line []byte) (rec record, ok bool) {
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != crc {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Job == "" || rec.State == "" {
		return rec, false
	}
	return rec, true
}

// journal is the segment writer/replayer. All methods are called under
// the manager's mutex; the journal itself holds no lock.
type journal struct {
	dir    string
	seq    int      // active segment sequence number
	f      *os.File // active segment, O_APPEND
	bytes  int64    // size of the active segment
	ntrunc int64    // torn/corrupt records truncated during replay
	ncomp  int64    // compactions performed
}

func segName(seq int) string { return fmt.Sprintf("journal-%08d.wal", seq) }

// openJournal lists the existing segments (ascending), replays every
// record, reconciles torn tails, and opens the newest segment for
// appending (creating the first one in an empty dir).
func openJournal(dir string) (*journal, []record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	j := &journal{dir: dir}
	var recs []record
	for _, name := range names {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(name), "journal-%d.wal", &seq); err != nil {
			continue // foreign file; never fatal
		}
		j.seq = seq
		segRecs, err := j.replaySegment(name)
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, segRecs...)
	}
	if j.seq == 0 {
		j.seq = 1
	}
	path := filepath.Join(dir, segName(j.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j.f, j.bytes = f, st.Size()
	return j, recs, nil
}

// replaySegment reads one segment's records in order. The first torn
// line (no trailing newline), malformed frame, CRC mismatch or
// undecodable payload truncates the segment at the last good offset —
// counted, logged by the manager, never an error: a journal must not
// refuse to boot on the damage a crash legitimately leaves behind.
func (j *journal) replaySegment(path string) ([]record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []record
	good := 0 // offset after the last verified record
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		rec, ok := parseLine(raw[off : off+nl])
		if !ok {
			break // corrupt record: truncate here
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	if good < len(raw) {
		j.ntrunc++
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("jobs: truncating torn journal %s at %d: %w", path, good, err)
		}
	}
	return recs, nil
}

// append frames, writes and fsyncs one record to the active segment.
// The record is durable when append returns.
func (j *journal) append(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := frame(payload)
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.bytes += int64(len(line))
	crash("append:" + string(rec.State))
	return nil
}

// compact rotates the journal: the snapshot records (one per surviving
// job) are written to the next-sequence segment via temp file + rename,
// the directory entry is fsynced, and only then are the older segments
// removed. A crash at any point leaves either the old segments (rename
// not yet visible) or old + new (replayed in order, snapshot records
// win by recency) — never a half-written active segment.
func (j *journal) compact(snapshot []record) error {
	next := j.seq + 1
	tmp, err := os.CreateTemp(j.dir, ".journal-*.tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	var size int64
	for _, rec := range snapshot {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		line := frame(payload)
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		size += int64(len(line))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	newPath := filepath.Join(j.dir, segName(next))
	if err := os.Rename(tmp.Name(), newPath); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(j.dir)
	f, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// The new segment is durable and open; retire the old ones.
	old := j.f
	oldSeq := j.seq
	j.f, j.seq, j.bytes = f, next, size
	j.ncomp++
	old.Close()
	for seq := oldSeq; seq > 0; seq-- {
		path := filepath.Join(j.dir, segName(seq))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return err
		}
	}
	syncDir(j.dir)
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// syncDir fsyncs a directory so renames and removals are durable.
// Best-effort: not every filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
