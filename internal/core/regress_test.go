package core

import (
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
)

// pinnedIfSrc assigns the pinned critical variable N inside an IF whose
// condition depends on run-time data (S is a reduction result). The
// engine must weight the branches, but the user-pinned value of N has to
// survive the branch kill so the second IF and the trailing DO still
// resolve against it.
const pinnedIfSrc = `PROGRAM pin
REAL A(64)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
S = SUM(A)
IF (S .GT. 0.5) THEN
N = 3
ELSE
N = 7
ENDIF
IF (N .GT. 0) THEN
Y = 1.0
ELSE
Y = 2.0
ENDIF
DO I = 1, N
X = X + 1.0
ENDDO
END`

// TestPinnedValueSurvivesUnresolvedIf is the regression test for the
// unresolved-scalar-IF path invalidating Options.Values: before the fix
// it called the package-level killAssigned instead of the pinned-aware
// method, so the second IF lost N and spuriously warned + weighted its
// branches.
func TestPinnedValueSurvivesUnresolvedIf(t *testing.T) {
	opts := DefaultOptions()
	opts.Values = map[string]sem.Value{"N": sem.IntVal(5)}
	rep := interpret(t, pinnedIfSrc, opts)

	if len(rep.Warnings) != 1 {
		t.Fatalf("want exactly 1 branch-weighting warning (the S IF), got %d: %q",
			len(rep.Warnings), rep.Warnings)
	}
	if !strings.Contains(rep.Warnings[0], "line 6:") {
		t.Errorf("warning should be about the run-time IF at line 6, got %q", rep.Warnings[0])
	}
	// The second IF must resolve N=5 > 0: its THEN body (Y = 1.0 at line
	// 12) runs at full weight, the ELSE body (line 14) not at all.
	if got := rep.LineMetrics(12).Execs; got != 1 {
		t.Errorf("resolved THEN branch Execs = %v, want 1 (full weight)", got)
	}
	if got := rep.LineMetrics(14).Execs; got != 0 {
		t.Errorf("dead ELSE branch Execs = %v, want 0", got)
	}
	// And the trailing DO I = 1, N still resolves its bounds from the
	// pinned value: body line 17 executes N=5 times.
	if got := rep.LineMetrics(17).Execs; got != 5 {
		t.Errorf("loop body Execs = %v, want 5 (pinned N)", got)
	}
}

// shiftSrc produces an overlap Shift for B (nearest-neighbor read on a
// block-distributed array).
const shiftSrc = `PROGRAM sh
REAL A(64), B(64)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE A(BLOCK) ONTO P
!HPF$ DISTRIBUTE B(BLOCK) ONTO P
FORALL (K=2:63) A(K) = B(K-1)
END`

// findShifts walks a statement tree collecting every *hir.Shift.
func findShifts(ss []hir.Stmt) []*hir.Shift {
	var out []*hir.Shift
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Shift:
				out = append(out, x)
			case *hir.Loop:
				scan(x.Body)
			case *hir.While:
				scan(x.Body)
			case *hir.If:
				scan(x.Then)
				scan(x.Else)
			}
		}
	}
	scan(ss)
	return out
}

// TestShiftMalformedDimWarns is the regression test for the unguarded
// sym.Map.Dims[x.Dim] index in the *hir.Shift case: a malformed HIR node
// must degrade to a warning, not a panic.
func TestShiftMalformedDimWarns(t *testing.T) {
	prog, err := compiler.Compile(shiftSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	shifts := findShifts(prog.Body)
	if len(shifts) == 0 {
		t.Fatal("no Shift comm inserted; test program no longer exercises the overlap path")
	}
	shifts[0].Dim = 7 // out of range for a 1-D map

	it, err := New(prog, nil, DefaultOptions())
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rep, err := it.Interpret()
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "dimension") {
			found = true
		}
	}
	if !found {
		t.Errorf("want an invalid-dimension warning, got %q", rep.Warnings)
	}
}

// TestShiftUnknownArrayWarns covers the sym == nil guard of the same
// case: a Shift naming a symbol the program does not declare.
func TestShiftUnknownArrayWarns(t *testing.T) {
	prog, err := compiler.Compile(shiftSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	shifts := findShifts(prog.Body)
	if len(shifts) == 0 {
		t.Fatal("no Shift comm inserted; test program no longer exercises the overlap path")
	}
	shifts[0].Array = "NOSUCHARRAY"

	it, err := New(prog, nil, DefaultOptions())
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rep, err := it.Interpret()
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "NOSUCHARRAY") {
			found = true
		}
	}
	if !found {
		t.Errorf("want an unknown-array warning, got %q", rep.Warnings)
	}
}

// lineRangeMetricsRef is the pre-PR-6 implementation of
// Report.LineRangeMetrics (allocate every key, sort, sum the subset),
// kept verbatim as the equality reference for the sort-free rewrite.
func lineRangeMetricsRef(r *Report, lo, hi int) Metrics {
	var out Metrics
	lines := make([]int, 0, len(r.ByLine))
	for l := range r.ByLine {
		lines = append(lines, l)
	}
	sortInts(lines)
	for _, l := range lines {
		if l >= lo && l <= hi {
			out.Accumulate(*r.ByLine[l])
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestLineRangeMetricsMatchesSorted pins the rewritten LineRangeMetrics
// to the old sorted-iteration implementation, bit for bit, across
// partial, full, inverted, and out-of-range windows.
func TestLineRangeMetricsMatchesSorted(t *testing.T) {
	rep := interpret(t, pinnedIfSrc, func() Options {
		o := DefaultOptions()
		o.Values = map[string]sem.Value{"N": sem.IntVal(5)}
		return o
	}())
	ranges := [][2]int{{1, 100}, {6, 11}, {13, 13}, {0, 5}, {50, 40}, {-10, 3}, {19, 1 << 30}}
	for _, r := range ranges {
		got := rep.LineRangeMetrics(r[0], r[1])
		want := lineRangeMetricsRef(rep, r[0], r[1])
		if got != want {
			t.Errorf("LineRangeMetrics(%d,%d) = %+v, want %+v", r[0], r[1], got, want)
		}
	}
}
