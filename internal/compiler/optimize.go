package compiler

import (
	"context"

	"hpfperf/internal/hir"
	"hpfperf/internal/obs"
)

// Options control compilation. They correspond to the generated-code
// optimizations of §4.2 that "can be turned on/off by the user".
type Options struct {
	// NoCommOpt disables redundant-communication elimination.
	NoCommOpt bool
	// NoLoopReorder disables cache-locality loop re-ordering of
	// sequentialized nests (column-major innermost).
	NoLoopReorder bool
}

// CompileWith compiles with explicit options.
func CompileWith(src string, opts Options) (*hir.Program, error) {
	return CompileWithContext(context.Background(), src, opts)
}

// CompileWithContext compiles with explicit options under a context.
// When the context carries an active obs span, the phases record as
// child spans: compile > {parse, sem > partition, comm-insert}.
func CompileWithContext(ctx context.Context, src string, opts Options) (*hir.Program, error) {
	cctx, span := obs.Start(ctx, "compile")
	defer span.End()
	prog, err := compileNoOpt(cctx, src, opts)
	if err != nil {
		return nil, err
	}
	if !opts.NoCommOpt {
		prog.Body = optimizeComm(prog.Body)
	}
	return prog, nil
}

// optimizeComm removes redundant communication at each nesting level: a
// Shift or AllGather whose array has not been written (nor re-shifted)
// since an identical earlier operation at the same level is dropped.
// This mirrors the redundant-communication elimination of the HPF
// compiler: consecutive foralls reading the same halo exchange it once.
func optimizeComm(ss []hir.Stmt) []hir.Stmt {
	type commKey struct {
		kind   string
		array  string
		dim    int
		offset int
	}
	valid := make(map[commKey]bool)
	// invalidate drops the cached communications of one array.
	invalidate := func(array string) {
		for k := range valid {
			if k.array == array {
				delete(valid, k)
			}
		}
	}
	invalidateAll := func() {
		for k := range valid {
			delete(valid, k)
		}
	}

	out := ss[:0]
	for _, s := range ss {
		switch x := s.(type) {
		case *hir.Shift:
			k := commKey{kind: "shift", array: x.Array, dim: x.Dim, offset: x.Offset}
			if valid[k] {
				continue // redundant halo exchange
			}
			valid[k] = true
			out = append(out, s)
		case *hir.AllGather:
			k := commKey{kind: "gather", array: x.Array}
			if valid[k] {
				continue
			}
			valid[k] = true
			out = append(out, s)
		case *hir.Assign:
			if lv, ok := x.Lhs.(*hir.ElemLV); ok {
				invalidate(lv.Array)
			}
			out = append(out, s)
		case *hir.CShift:
			invalidate(x.Dst)
			out = append(out, s)
		case *hir.EOShift:
			invalidate(x.Dst)
			out = append(out, s)
		case *hir.Loop:
			// Writes inside the loop invalidate before AND after: before,
			// because the loop body may consume halos refreshed inside;
			// after, because the final iteration leaves arrays modified.
			for _, w := range writtenArraysHIR(x.Body) {
				invalidate(w)
			}
			x.Body = optimizeComm(x.Body)
			for _, w := range writtenArraysHIR(x.Body) {
				invalidate(w)
			}
			out = append(out, s)
		case *hir.While:
			for _, w := range writtenArraysHIR(x.Body) {
				invalidate(w)
			}
			x.Body = optimizeComm(x.Body)
			for _, w := range writtenArraysHIR(x.Body) {
				invalidate(w)
			}
			out = append(out, s)
		case *hir.If:
			// Branches execute conditionally: their communications cannot
			// be assumed afterwards, and their writes invalidate.
			x.Then = optimizeComm(x.Then)
			x.Else = optimizeComm(x.Else)
			invalidateAll()
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// writtenArraysHIR collects arrays assigned (or shift targets) in a
// statement subtree.
func writtenArraysHIR(ss []hir.Stmt) []string {
	seen := make(map[string]bool)
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				if lv, ok := x.Lhs.(*hir.ElemLV); ok {
					seen[lv.Array] = true
				}
			case *hir.CShift:
				seen[x.Dst] = true
			case *hir.EOShift:
				seen[x.Dst] = true
			case *hir.Loop:
				scan(x.Body)
			case *hir.While:
				scan(x.Body)
			case *hir.If:
				scan(x.Then)
				scan(x.Else)
			}
		}
	}
	scan(ss)
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	return out
}
