// Command hpfexp regenerates the paper's evaluation artifacts: Table 2
// and Figures 3, 4, 5, 7 and 8 (§5). With -all it reproduces everything;
// individual flags select single artifacts. -quick runs reduced sweeps.
// With -server and -submit the selected artifact runs as a durable
// async job on an hpfserve instance instead of in-process; -job ID
// re-attaches to a submitted job, surviving client and server restarts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hpfperf/internal/experiments"
	"hpfperf/internal/faults"
	"hpfperf/internal/obs"
	"hpfperf/internal/sweep"
)

func main() {
	var (
		all     = flag.Bool("all", false, "regenerate every table and figure")
		table2  = flag.Bool("table2", false, "Table 2: prediction accuracy")
		fig3    = flag.Bool("fig3", false, "Figure 3: Laplace data distributions")
		fig4    = flag.Bool("fig4", false, "Figure 4: Laplace est/meas times, 4 procs")
		fig5    = flag.Bool("fig5", false, "Figure 5: Laplace est/meas times, 8 procs")
		fig7    = flag.Bool("fig7", false, "Figure 7: financial model phase profile")
		fig8    = flag.Bool("fig8", false, "Figure 8: experimentation time")
		abl     = flag.Bool("ablations", false, "model design-choice ablation table")
		quick   = flag.Bool("quick", false, "reduced sweeps (smoke run)")
		runs    = flag.Int("runs", 3, "measured runs to average")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		stats   = flag.Bool("stats", false, "print sweep engine statistics (compile/interpret/execute counters, cache hits/misses, points/sec) to stderr")
		ckpt    = flag.String("checkpoint", "", "directory for sweep checkpoints; a killed run resumes from completed points")
		spanOut = flag.String("trace-out", "", "write the run's observability span tree as JSON to this file (render with hpftrace -spans)")

		serverURL = flag.String("server", "", "hpfserve base URL (e.g. http://localhost:8080); -submit and -job run against it instead of in-process")
		submit    = flag.Bool("submit", false, "submit the selected artifact (one of -table2/-fig4/-fig5/-fig7/-fig8) as a durable async job on -server")
		jobID     = flag.String("job", "", "re-attach to an existing job on -server by ID")
		wait      = flag.Bool("wait", true, "with -submit/-job: block until the job is terminal and print its output (-wait=false prints the job ID or a status snapshot)")
	)
	flag.Parse()

	if *submit || *jobID != "" {
		if *serverURL == "" {
			fmt.Fprintln(os.Stderr, "hpfexp: -submit/-job require -server")
			os.Exit(2)
		}
		artifact := ""
		if *jobID == "" {
			var err error
			artifact, err = selectArtifact(map[string]bool{
				"table2": *table2, "fig4": *fig4, "fig5": *fig5, "fig7": *fig7, "fig8": *fig8,
			})
			check(err)
		}
		check(runRemote(*serverURL, artifact, *quick, *runs, *jobID, *wait))
		return
	}

	if !(*all || *table2 || *fig3 || *fig4 || *fig5 || *fig7 || *fig8 || *abl) {
		flag.Usage()
		os.Exit(2)
	}

	// HPFPERF_FAULTS activates deterministic fault injection (chaos
	// testing of sweeps, retries and checkpoint/resume).
	if spec := os.Getenv("HPFPERF_FAULTS"); spec != "" {
		inj, err := faults.Parse(spec, 1)
		check(err)
		faults.Activate(inj)
		fmt.Fprintf(os.Stderr, "hpfexp: CHAOS MODE: injecting faults (%s)\n", spec)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Runs = *runs
	cfg.CheckpointDir = *ckpt
	if !*quiet {
		cfg.Log = os.Stderr
	}
	eng := sweep.New(sweep.Options{Workers: *workers})
	cfg.Engine = eng
	if *spanOut != "" {
		tracer := obs.NewTracer(obs.NewTraceID())
		root := tracer.Root("hpfexp")
		cfg.Ctx = obs.ContextWithSpan(context.Background(), root)
		// Registered, not deferred: check() exits via os.Exit, which
		// skips defers, and a failing experiment is exactly when the
		// partial span tree matters. check runs the cleanups itself.
		atExit(func() { writeSpanTree(*spanOut, tracer, root) })
		defer runAtExit()
	}

	if *all || *fig3 {
		out, err := experiments.Figure3()
		check(err)
		fmt.Println(out)
	}
	if *all || *table2 {
		rows, err := experiments.Table2(cfg)
		check(err)
		fmt.Println(experiments.RenderTable2(rows))
		fmt.Println()
	}
	if *all || *fig4 {
		series, err := experiments.Figure45(4, cfg)
		check(err)
		fmt.Println(experiments.RenderFigure45(4, 4, series))
		fmt.Println()
	}
	if *all || *fig5 {
		series, err := experiments.Figure45(8, cfg)
		check(err)
		fmt.Println(experiments.RenderFigure45(5, 8, series))
		fmt.Println()
	}
	if *all || *fig7 {
		phases, err := experiments.Figure7(cfg)
		check(err)
		fmt.Println(experiments.RenderFigure7(phases))
		fmt.Println()
	}
	if *all || *fig8 {
		times, err := experiments.Figure8(cfg)
		check(err)
		fmt.Println(experiments.RenderFigure8(times))
		fmt.Println()
	}
	if *all || *abl {
		rows, err := experiments.Ablations(cfg)
		check(err)
		fmt.Println(experiments.RenderAblations(rows))
	}
	if *stats {
		fmt.Fprintln(os.Stderr, eng.Snapshot())
	}
}

// writeSpanTree closes the root span and dumps the tracer's tree as
// JSON — the format hpftrace -spans reads back.
func writeSpanTree(path string, tracer *obs.Tracer, root *obs.Span) {
	root.End()
	f, err := os.Create(path)
	check(err)
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(tracer.Tree()))
	fmt.Fprintf(os.Stderr, "span tree written to %s\n", path)
}

// exitFns are cleanups that must run on both the normal return path
// (via the deferred runAtExit) and the check() failure path (os.Exit
// skips defers, so check invokes runAtExit itself).
var exitFns []func()

func atExit(f func()) { exitFns = append(exitFns, f) }

// runAtExit runs and clears the registered cleanups; clearing first
// makes it idempotent and breaks recursion when a cleanup itself
// fails its check.
func runAtExit() {
	fns := exitFns
	exitFns = nil
	for _, f := range fns {
		f()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpfexp:", err)
		runAtExit()
		os.Exit(1)
	}
}
