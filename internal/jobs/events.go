// Event history and subscriptions: every journaled state transition
// (submitted, running, checkpointed(n), done/failed/cancelled, drain
// handoffs) is numbered per job and fanned out to subscribers — the
// feed behind GET /v1/jobs/{id}/events. The history is rebuilt from the
// WAL on Open, so a subscriber attaching after a crash replays the same
// state sequence the journal records (compaction collapses a job's
// prior transitions into one snapshot record, and the rebuilt history
// collapses identically). Sequence numbers restart with the history:
// a resume cursor larger than the newest retained event means a new
// server generation, and the subscription replays from the start.

package jobs

import (
	"errors"
	"time"
)

// Event is one numbered state transition of one job. Seq increases by 1
// per transition within a server generation; checkpointed events carry
// the cumulative durable point count in Done, so a trimmed or skipped
// event never loses progress information.
type Event struct {
	Seq   int       `json:"seq"`
	Job   string    `json:"job"`
	State State     `json:"state"` // submitted|running|checkpointed|done|failed|cancelled
	Done  int       `json:"done,omitempty"`
	Error string    `json:"error,omitempty"`
	Time  time.Time `json:"time"`
	// Terminal marks the stream-ending event (done/failed/cancelled).
	Terminal bool `json:"terminal,omitempty"`
}

// ErrSubscriberLimit is returned by Subscribe when the manager-wide
// fan-out bound is reached; the caller should fall back to polling.
var ErrSubscriberLimit = errors.New("jobs: too many event subscribers")

// subscriberBuffer is the live-event headroom of a subscription channel
// beyond the replayed backlog. A consumer that falls further behind is
// dropped (channel closed) and resumes via its last seen Seq.
const subscriberBuffer = 64

type subscriber struct {
	ch   chan Event
	done bool // closed (terminal delivered, dropped, cancelled or drained)
}

// Subscription is one live event feed. Read C until it closes; if the
// last event received was not Terminal, the stream was cut (drain or
// slow-consumer drop) and the caller should resubscribe with the last
// Seq it saw. Always Cancel when done reading.
type Subscription struct {
	C   <-chan Event
	m   *Manager
	j   *job
	sub *subscriber
}

// Cancel detaches the subscription. Idempotent; safe after the channel
// closed.
func (s *Subscription) Cancel() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if s.sub.done {
		return
	}
	s.sub.done = true
	close(s.sub.ch)
	s.m.nsubs--
	s.j.compactSubs()
}

// Subscribe attaches a bounded live feed to one job, first replaying
// the retained events with Seq > afterSeq. A cursor beyond the newest
// retained event (a previous server generation) replays everything
// retained. For a terminal job the channel closes right after the
// backlog. Returns ErrNotFound for unknown jobs, ErrDraining during
// shutdown, and ErrSubscriberLimit at the fan-out bound.
func (m *Manager) Subscribe(id string, afterSeq int) (*Subscription, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.draining {
		return nil, ErrDraining
	}
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if m.nsubs >= m.cfg.MaxSubscribers {
		return nil, ErrSubscriberLimit
	}
	if afterSeq > j.eventSeq {
		afterSeq = 0
	}
	backlog := make([]Event, 0, len(j.events))
	for _, ev := range j.events {
		if ev.Seq > afterSeq {
			backlog = append(backlog, ev)
		}
	}
	sub := &subscriber{ch: make(chan Event, len(backlog)+subscriberBuffer)}
	for _, ev := range backlog {
		sub.ch <- ev
	}
	s := &Subscription{C: sub.ch, m: m, j: j, sub: sub}
	if j.state.Terminal() {
		sub.done = true
		close(sub.ch)
		return s, nil
	}
	j.compactSubs()
	j.subs = append(j.subs, sub)
	m.nsubs++
	return s, nil
}

// Events returns a copy of one job's retained event history in order.
func (m *Manager) Events(id string) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out, nil
}

// appendEventLocked numbers and records one transition, fans it out to
// the job's subscribers, and closes every feed after a terminal event.
// A subscriber whose buffer is full is dropped (closed) rather than
// blocking the journal path; it resumes from its cursor. Requires m.mu.
func (m *Manager) appendEventLocked(j *job, state State, done int, errMsg string, t time.Time) {
	j.eventSeq++
	ev := Event{
		Seq: j.eventSeq, Job: j.id, State: state,
		Done: done, Error: errMsg, Time: t,
		Terminal: state.Terminal(),
	}
	j.events = append(j.events, ev)
	if max := m.cfg.MaxEventsPerJob; len(j.events) > max {
		j.events = append(j.events[:0:0], j.events[len(j.events)-max:]...)
	}
	m.eventsTotal++
	for _, sub := range j.subs {
		if sub.done {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			sub.done = true
			close(sub.ch)
			m.nsubs--
			m.subDrops++
		}
	}
	if ev.Terminal {
		m.closeSubsLocked(j)
	} else {
		j.compactSubs()
	}
}

// closeSubsLocked ends every live feed of one job. Requires m.mu.
func (m *Manager) closeSubsLocked(j *job) {
	for _, sub := range j.subs {
		if !sub.done {
			sub.done = true
			close(sub.ch)
			m.nsubs--
		}
	}
	j.subs = nil
}

// compactSubs drops finished subscriber slots from the fan-out list.
func (j *job) compactSubs() {
	live := j.subs[:0]
	for _, sub := range j.subs {
		if !sub.done {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(j.subs); i++ {
		j.subs[i] = nil
	}
	j.subs = live
}
