package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/hir"
)

// Cache memoizes the results of the compilation pipeline (and of whole
// interpretation runs) across sweep points. It is safe for concurrent
// use; a key being built by one worker blocks other workers asking for
// the same key (single-flight), so each distinct (source, options) pair
// is compiled exactly once no matter how many workers race for it.
//
// Cached *hir.Program and *core.Report values are shared between
// callers: both are treated as immutable after construction everywhere
// in this module (the simulator and the report renderers only read
// them), which is what makes the memoization sound.
type Cache struct {
	mu       sync.Mutex
	compiles map[string]*compileEntry
	reports  map[string]*reportEntry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		compiles: make(map[string]*compileEntry),
		reports:  make(map[string]*reportEntry),
	}
}

type compileEntry struct {
	once sync.Once
	prog *hir.Program
	err  error
}

type reportEntry struct {
	once sync.Once
	rep  *core.Report
	err  error
}

// srcHash fingerprints source text. Sources are generated per (size,
// procs) point and can be tens of kilobytes; hashing keeps the key map
// small and comparison O(1).
func srcHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:16])
}

// compileKey is srcHash + the compile options that affect the produced
// program.
func compileKey(src string, opts compiler.Options) string {
	return fmt.Sprintf("%s|commopt=%t|reorder=%t", srcHash(src), !opts.NoCommOpt, !opts.NoLoopReorder)
}

// interpFingerprint renders core.Options deterministically, or reports
// that the options cannot be fingerprinted (an injected CommLibrary has
// no stable identity across mutations, so such runs are never cached).
func interpFingerprint(opts core.Options) (string, bool) {
	if opts.CommLibrary != nil {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mem=%t|load=%d|mask=%g|branch=%g|simple=%t",
		opts.MemoryModel, opts.LoadModel, opts.MaskDensity, opts.BranchProb, opts.SimpleCommModel)
	if len(opts.TripCounts) > 0 {
		lines := make([]int, 0, len(opts.TripCounts))
		for l := range opts.TripCounts {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			fmt.Fprintf(&b, "|trip%d=%d", l, opts.TripCounts[l])
		}
	}
	if len(opts.Values) > 0 {
		names := make([]string, 0, len(opts.Values))
		for n := range opts.Values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := opts.Values[n]
			fmt.Fprintf(&b, "|val%s=%d:%d:%g:%t", n, v.Type, v.I, v.R, v.B)
		}
	}
	return b.String(), true
}

// Compile returns the compiled program for (src, opts), running the
// scanner→parser→sem→compiler pipeline at most once per key. Counter
// updates go to stats (may be nil).
func (c *Cache) Compile(src string, opts compiler.Options, stats *Stats) (*hir.Program, error) {
	key := compileKey(src, opts)
	c.mu.Lock()
	e, ok := c.compiles[key]
	if !ok {
		e = &compileEntry{}
		c.compiles[key] = e
	}
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		start := time.Now()
		e.prog, e.err = compiler.CompileWith(src, opts)
		if stats != nil {
			stats.Compiles.Add(1)
			stats.CompileNS.Add(int64(time.Since(start)))
		}
	})
	if stats != nil {
		if hit {
			stats.CompileHits.Add(1)
		} else {
			stats.CompileMisses.Add(1)
		}
	}
	return e.prog, e.err
}

// Interpret returns the interpretation report for (src, copts, iopts)
// on the default machine abstraction, memoizing whole reports when the
// options are fingerprintable. Compilation always goes through the
// compile cache.
func (c *Cache) Interpret(src string, copts compiler.Options, iopts core.Options, stats *Stats) (*core.Report, error) {
	fp, cacheable := interpFingerprint(iopts)
	if !cacheable {
		prog, err := c.Compile(src, copts, stats)
		if err != nil {
			return nil, err
		}
		return runInterp(prog, iopts, stats)
	}

	key := compileKey(src, copts) + "|" + fp
	c.mu.Lock()
	e, ok := c.reports[key]
	if !ok {
		e = &reportEntry{}
		c.reports[key] = e
	}
	c.mu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		var prog *hir.Program
		prog, e.err = c.Compile(src, copts, stats)
		if e.err != nil {
			return
		}
		e.rep, e.err = runInterp(prog, iopts, stats)
	})
	if stats != nil {
		if hit {
			stats.ReportHits.Add(1)
		} else {
			stats.ReportMisses.Add(1)
		}
	}
	return e.rep, e.err
}

func runInterp(prog *hir.Program, iopts core.Options, stats *Stats) (*core.Report, error) {
	start := time.Now()
	it, err := core.New(prog, nil, iopts)
	if err != nil {
		return nil, err
	}
	rep, err := it.Interpret()
	if stats != nil {
		stats.Interps.Add(1)
		stats.InterpNS.Add(int64(time.Since(start)))
	}
	return rep, err
}

// Len reports how many compiled programs the cache holds (for tests and
// diagnostics).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.compiles)
}
