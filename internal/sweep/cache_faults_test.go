package sweep

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/faults"
)

// withFaults installs an injector for the duration of one test. Tests
// using it must not run in parallel with each other (the injector is
// process-global).
func withFaults(t *testing.T, spec string, seed int64) {
	t.Helper()
	inj, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(inj)
	t.Cleanup(faults.Deactivate)
}

// TestCacheSurvivesFaultChurn is the satellite acceptance test: the
// LRU must never be poisoned by cancelled, panicked or fault-injected
// builds. Concurrent lookups race cancellation and eviction churn
// while the builders inject errors and panics; afterwards, with faults
// off, every key must compile and interpret cleanly — a poisoned entry
// would replay its failure from cache.
func TestCacheSurvivesFaultChurn(t *testing.T) {
	withFaults(t, "compile:0.2:error,compile:0.05:panic,cache:0.2:error,cache:0.05:panic", 7)

	const (
		cacheCap = 8 // far fewer slots than keys: constant eviction churn
		keys     = 32
		workers  = 8
		rounds   = 40
	)
	c := NewCacheSize(cacheCap)
	var stats Stats
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for r := 0; r < rounds; r++ {
				key := int(rng.Int64N(keys))
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Int64N(4) == 0 {
					// Race a cancellation against the build.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Int64N(200))*time.Microsecond)
				}
				if rng.Int64N(2) == 0 {
					_, _ = c.Compile(ctx, tinySource(key), compiler.Options{}, &stats)
				} else {
					_, _ = c.Interpret(ctx, tinySource(key), compiler.Options{}, core.DefaultOptions(), "ipsc860", &stats)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	// Faults off: every key must now build cleanly. A cached injected
	// error or cached panic would fail here.
	faults.Deactivate()
	for key := 0; key < keys; key++ {
		if _, err := c.Compile(context.Background(), tinySource(key), compiler.Options{}, &stats); err != nil {
			t.Errorf("key %d: compile poisoned: %v", key, err)
		}
		rep, err := c.Interpret(context.Background(), tinySource(key), compiler.Options{}, core.DefaultOptions(), "ipsc860", &stats)
		if err != nil {
			t.Errorf("key %d: report poisoned: %v", key, err)
		} else if rep.TotalUS() <= 0 {
			t.Errorf("key %d: empty report from cache", key)
		}
	}
	if cs := c.CacheStats(); cs.CompileEntries > cacheCap || cs.ReportEntries > cacheCap {
		t.Errorf("cache exceeded cap under fault churn: %+v", cs)
	}
}

// TestFaultInjectedCompileNotCached pins the poison rule directly: an
// injected compile fault must not be memoized, while a deterministic
// front-end error must stay cached (intentional negative caching).
func TestFaultInjectedCompileNotCached(t *testing.T) {
	withFaults(t, "compile:1:error", 1)
	c := NewCacheSize(4)
	var stats Stats
	src := tinySource(1)
	if _, err := c.Compile(context.Background(), src, compiler.Options{}, &stats); err == nil {
		t.Fatal("want injected error at rate 1.0")
	}
	faults.Deactivate()
	if _, err := c.Compile(context.Background(), src, compiler.Options{}, &stats); err != nil {
		t.Fatalf("injected error was cached: %v", err)
	}
	// Two compile runs for one key: the failure was not memoized.
	if got := stats.Compiles.Load(); got != 2 {
		t.Errorf("compiles = %d, want 2", got)
	}
}

// TestDeterministicCompileErrorStaysCached guards the boundary of the
// poison rule: real (non-transient) compile errors are still negative-
// cached, so a broken program is not re-parsed on every lookup.
func TestDeterministicCompileErrorStaysCached(t *testing.T) {
	c := NewCacheSize(4)
	var stats Stats
	src := "      PROGRAM BAD\n      THIS IS NOT FORTRAN (\n      END\n"
	_, err1 := c.Compile(context.Background(), src, compiler.Options{}, &stats)
	_, err2 := c.Compile(context.Background(), src, compiler.Options{}, &stats)
	if err1 == nil || err2 == nil {
		t.Fatalf("errs = %v / %v, want deterministic failure", err1, err2)
	}
	if got := stats.Compiles.Load(); got != 1 {
		t.Errorf("compiles = %d, want 1 (error should be cached)", got)
	}
	if got := stats.CompileHits.Load(); got != 1 {
		t.Errorf("compile hits = %d, want 1", got)
	}
}

// TestInterpFaultSiteReachable proves the interp site is actually
// threaded through the AAU loop (a site that never fires would make
// chaos specs silently meaningless).
func TestInterpFaultSiteReachable(t *testing.T) {
	withFaults(t, fmt.Sprintf("%s:1:error", faults.SiteInterp), 1)
	c := NewCacheSize(4)
	var stats Stats
	_, err := c.Interpret(context.Background(), tinySource(2), compiler.Options{}, core.DefaultOptions(), "ipsc860", &stats)
	if err == nil {
		t.Fatal("interp site did not fire at rate 1.0")
	}
	if !IsTransient(err) {
		t.Errorf("injected interp error not transient: %v", err)
	}
}
