// Package compiler implements phase 1 of the paper (§4.1): it translates a
// semantically analyzed HPF/Fortran 90D program into a loosely synchronous
// SPMD node program (package hir) through the five steps of the
// HPF/Fortran 90D compilation model:
//
//  1. parsing (package parser),
//  2. partitioning via the HPF directives (package sem + dist),
//  3. forall normalization: array assignments and WHERE become foralls,
//  4. sequentialization: parallel constructs become owner-computes loops,
//  5. communication detection and insertion (Shift / AllGather /
//     FetchElem / CShift / Reduce collective calls),
//
// producing alternating phases of local computation and collective
// communication.
package compiler

import (
	"context"
	"fmt"

	"hpfperf/internal/analysis/dep"
	"hpfperf/internal/ast"
	"hpfperf/internal/hir"
	"hpfperf/internal/obs"
	"hpfperf/internal/parser"
	"hpfperf/internal/sem"
	"hpfperf/internal/token"
)

// Error is a compilation error with source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Compile parses, analyzes and lowers an HPF/Fortran 90D source text
// with default options (communication optimization enabled).
func Compile(src string) (*hir.Program, error) {
	return CompileWith(src, Options{})
}

func compileNoOpt(ctx context.Context, src string, opts Options) (*hir.Program, error) {
	_, ps := obs.Start(ctx, "parse")
	prog, err := parser.Parse(src)
	ps.End()
	if err != nil {
		return nil, err
	}
	sctx, ss := obs.Start(ctx, "sem")
	info, err := sem.AnalyzeContext(sctx, prog)
	ss.End()
	if err != nil {
		return nil, err
	}
	// Lowering performs sequentialization plus communication detection
	// and insertion (steps 3-5), so it carries the comm-insert span.
	_, ls := obs.Start(ctx, "comm-insert")
	defer ls.End()
	return LowerWith(info, opts)
}

// Lower translates an analyzed program into the SPMD node program with
// default options.
func Lower(info *sem.Info) (*hir.Program, error) {
	return LowerWith(info, Options{})
}

// LowerWith translates an analyzed program with explicit options.
func LowerWith(info *sem.Info, opts Options) (*hir.Program, error) {
	lw := &lowerer{
		info: info,
		opts: opts,
		out:  &hir.Program{Name: info.Prog.Name, Info: info},
	}
	body, err := lw.lowerStmts(info.Prog.Body, nil)
	if err != nil {
		return nil, err
	}
	lw.out.Body = body
	return lw.out, nil
}

// lowerer carries lowering state.
type lowerer struct {
	info    *sem.Info
	opts    Options
	out     *hir.Program
	tmpN    int
	privTyp map[string]ast.BaseType
	gctx    *gatherCtx // active sequential-loop gather scope, or nil
}

func (lw *lowerer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// newPriv allocates a private per-processor scalar.
func (lw *lowerer) newPriv(prefix string, t ast.BaseType) string {
	lw.tmpN++
	name := fmt.Sprintf("$%s%d", prefix, lw.tmpN)
	if lw.privTyp == nil {
		lw.privTyp = make(map[string]ast.BaseType)
	}
	lw.privTyp[name] = t
	lw.out.PrivScalars = append(lw.out.PrivScalars, name)
	if lw.out.PrivTypes == nil {
		lw.out.PrivTypes = make(map[string]ast.BaseType)
	}
	lw.out.PrivTypes[name] = t
	return name
}

// newRepl allocates a replicated scalar temporary (registered as an
// ordinary scalar symbol).
func (lw *lowerer) newRepl(prefix string, t ast.BaseType) string {
	lw.tmpN++
	name := fmt.Sprintf("$%s%d", prefix, lw.tmpN)
	lw.info.Symbols[name] = &sem.Symbol{Name: name, Kind: sem.SymScalar, Type: t}
	return name
}

// newTempArray allocates a compiler temporary array cloning the bounds,
// type and mapping of origin.
func (lw *lowerer) newTempArray(origin string) string {
	lw.tmpN++
	name := fmt.Sprintf("$A%d", lw.tmpN)
	os := lw.info.Symbols[origin]
	m := *os.Map
	m.Name = name
	sym := &sem.Symbol{Name: name, Kind: sem.SymArray, Type: os.Type, Bounds: os.Bounds, Map: &m}
	lw.info.Symbols[name] = sym
	lw.out.Temps = append(lw.out.Temps, hir.TempArray{Name: name, Origin: origin, Typ: os.Type})
	return name
}

// idxEnv maps active loop-index names to their HIR private refs.
type idxEnv struct {
	parent *idxEnv
	name   string
}

func (e *idxEnv) bound(name string) bool {
	for s := e; s != nil; s = s.parent {
		if s.name == name {
			return true
		}
	}
	return false
}

func (e *idxEnv) push(name string) *idxEnv { return &idxEnv{parent: e, name: name} }

// lowerStmts lowers a statement list.
func (lw *lowerer) lowerStmts(stmts []ast.Stmt, env *idxEnv) ([]hir.Stmt, error) {
	var out []hir.Stmt
	for _, s := range stmts {
		lowered, err := lw.lowerStmt(s, env)
		if err != nil {
			return nil, err
		}
		out = append(out, lowered...)
	}
	return out, nil
}

func (lw *lowerer) lowerStmt(s ast.Stmt, env *idxEnv) ([]hir.Stmt, error) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		return lw.lowerAssign(x, env)
	case *ast.DoStmt:
		return lw.lowerDo(x, env)
	case *ast.DoWhileStmt:
		return lw.lowerDoWhile(x, env)
	case *ast.IfStmt:
		return lw.lowerIf(x, env)
	case *ast.ForallStmt:
		return lw.lowerForall(x, env)
	case *ast.WhereStmt:
		return lw.lowerWhere(x, env)
	case *ast.PrintStmt:
		return lw.lowerPrint(x, env)
	case *ast.StopStmt, *ast.ContinueStmt:
		return nil, nil
	case *ast.CallStmt:
		return nil, lw.errf(x.Pos(), "CALL %s: external subroutines are outside the supported subset", x.Name)
	}
	return nil, lw.errf(s.Pos(), "unsupported statement %T", s)
}

// lowerDo lowers a sequential DO loop: replicated control flow; the body
// may contain parallel constructs and guarded element assignments. A DO
// carrying a *proven* INDEPENDENT annotation is re-lowered as a forall
// nest instead, giving it an owner-computes partition.
func (lw *lowerer) lowerDo(x *ast.DoStmt, env *idxEnv) ([]hir.Stmt, error) {
	if x.Independent && forallConvertible(x.Body) && lw.verifyIndependentDo(x) == dep.Proven {
		if stmts, err := lw.lowerForall(forallFromDo(x), env); err == nil {
			return stmts, nil
		}
		// The nest builder rejected a shape the verifier accepted (e.g. a
		// non-unit subscript scale on a distributed dimension): fall back
		// to the exact sequential lowering.
	}
	var pre []hir.Stmt
	lo, p1, err := lw.lowerScalarExpr(x.From, env)
	if err != nil {
		return nil, err
	}
	pre = append(pre, p1...)
	hi, p2, err := lw.lowerScalarExpr(x.To, env)
	if err != nil {
		return nil, err
	}
	pre = append(pre, p2...)
	var step hir.Expr = &hir.Const{Val: sem.IntVal(1)}
	if x.Step != nil {
		var p3 []hir.Stmt
		step, p3, err = lw.lowerScalarExpr(x.Step, env)
		if err != nil {
			return nil, err
		}
		pre = append(pre, p3...)
	}
	saved := lw.gctx
	lw.gctx = &gatherCtx{written: lw.writtenArrays(x.Body), gathered: make(map[string]bool)}
	body, err := lw.lowerStmts(x.Body, env.push(x.Var))
	hoisted := lw.gctx.hoisted
	lw.gctx = saved
	if err != nil {
		return nil, err
	}
	var bc hir.OpCount
	bc.Add(hir.CountExpr(lo), 1)
	bc.Add(hir.CountExpr(hi), 1)
	bc.Add(hir.CountExpr(step), 1)
	loop := &hir.Loop{
		Var: x.Var, Lo: lo, Hi: hi, Step: step,
		Body: body, Par: nil, SrcLine: x.Pos().Line, BoundCost: bc, Label: "DO",
	}
	pre = append(pre, hoisted...)
	return append(pre, loop), nil
}

func (lw *lowerer) lowerDoWhile(x *ast.DoWhileStmt, env *idxEnv) ([]hir.Stmt, error) {
	cond, pre, err := lw.lowerScalarExpr(x.Cond, env)
	if err != nil {
		return nil, err
	}
	if len(pre) > 0 {
		// The condition re-evaluates each iteration; hoisted fetches would
		// go stale. Keep the subset strict.
		return nil, lw.errf(x.Pos(), "DO WHILE condition may not read distributed array elements")
	}
	saved := lw.gctx
	lw.gctx = &gatherCtx{written: lw.writtenArrays(x.Body), gathered: make(map[string]bool)}
	body, err := lw.lowerStmts(x.Body, env)
	hoisted := lw.gctx.hoisted
	lw.gctx = saved
	if err != nil {
		return nil, err
	}
	out := append([]hir.Stmt{}, hoisted...)
	return append(out, &hir.While{
		Cond: cond, Body: body, SrcLine: x.Pos().Line, Cost: hir.CountExpr(cond),
	}), nil
}

func (lw *lowerer) lowerIf(x *ast.IfStmt, env *idxEnv) ([]hir.Stmt, error) {
	cond, pre, err := lw.lowerScalarExpr(x.Cond, env)
	if err != nil {
		return nil, err
	}
	then, err := lw.lowerStmts(x.Then, env)
	if err != nil {
		return nil, err
	}
	els, err := lw.lowerStmts(x.Else, env)
	if err != nil {
		return nil, err
	}
	return append(pre, &hir.If{
		Cond: cond, Then: then, Else: els, SrcLine: x.Pos().Line, Cost: hir.CountExpr(cond),
	}), nil
}

func (lw *lowerer) lowerPrint(x *ast.PrintStmt, env *idxEnv) ([]hir.Stmt, error) {
	var pre []hir.Stmt
	var args []hir.Expr
	var cost hir.OpCount
	for _, a := range x.Args {
		if _, isStr := a.(*ast.StringLit); isStr {
			args = append(args, &hir.Const{Val: sem.Value{Type: ast.TCharacter}})
			continue
		}
		if sh := lw.info.ShapeOf(a); sh != nil {
			return nil, lw.errf(a.Pos(), "PRINT of whole arrays is outside the supported subset")
		}
		e, p, err := lw.lowerScalarExpr(a, env)
		if err != nil {
			return nil, err
		}
		pre = append(pre, p...)
		args = append(args, e)
		cost.Add(hir.CountExpr(e), 1)
	}
	return append(pre, &hir.Print{Args: args, SrcLine: x.Pos().Line, Cost: cost}), nil
}
