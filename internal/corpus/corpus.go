// Package corpus generates seeded, deterministic HPF/Fortran 90D
// benchmark-kernel programs and differentially validates them: every
// generated program must compile, lint clean at error severity, produce
// bit-identical reports from the tree-walking and closure-compiled
// prediction engines, and predict within a per-kernel relative-error
// bound of its simulated execution. The families are the classic
// distributed-memory kernels the HPF literature is built on — 1-D and
// 2-D stencils, relaxation sweeps, blocked LU, FFT butterflies, and
// systolic N-body — composed from parameterized templates over the
// accepted HPF subset (including CYCLIC(k) block-cyclic mappings).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Family names one kernel template family.
type Family string

// The six kernel families.
const (
	Stencil1D Family = "stencil1d" // 3/5-point 1-D stencil sweeps
	Stencil2D Family = "stencil2d" // 5/9-point Laplace-style 2-D stencils
	Relax     Family = "relax"     // Jacobi / red-black relaxation with residual
	LU        Family = "lu"        // right-looking LU on (*,CYCLIC(k)) columns
	FFT       Family = "fft"       // butterfly stages with literal CSHIFT strides
	NBody     Family = "nbody"     // systolic force accumulation via CSHIFT
)

// Families returns the kernel families in generation (round-robin) order.
func Families() []Family {
	return []Family{Stencil1D, Stencil2D, Relax, LU, FFT, NBody}
}

// FamilyByName resolves a family name (case-insensitive), or "" == all.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if strings.EqualFold(string(f), name) {
			return f, nil
		}
	}
	return "", fmt.Errorf("corpus: unknown kernel family %q (have %v)", name, Families())
}

// ErrorBound is the per-family relative-error bound |pred-meas|/meas the
// validation harness enforces, calibrated at roughly twice the worst
// error observed over 1000-program sweeps against the deterministic
// simulator. Uniform sweeps (N-body's fixed-shape systolic loop, FFT's
// unrolled stages) interpret tightest; LU's triangular elimination and
// red-black's masked sweeps carry the interpretation engine's midpoint
// and mask-density approximations and need more headroom; 2-D stencils
// add block-boundary communication the abstract model rounds hardest.
func (f Family) ErrorBound() float64 {
	switch f {
	case Stencil1D:
		return 0.10
	case Stencil2D:
		return 0.20
	case Relax:
		return 0.15
	case LU:
		return 0.15
	case FFT:
		return 0.08
	case NBody:
		return 0.05
	}
	return 0.25
}

// Params pins every degree of freedom of one generated program; the
// rendered source is a pure function of Params, which is what makes a
// corpus reproducible from (seed, index) alone.
type Params struct {
	Family  Family `json:"family"`
	Seed    int64  `json:"seed"`
	Index   int    `json:"index"`   // ordinal within the family
	Variant int    `json:"variant"` // template variant (stencil order, mask flavor, shift stride)
	N       int    `json:"N"`       // problem size (per dimension)
	NB      int    `json:"NB"`      // CYCLIC(k)/BLOCK(n) chunk; 0 = format default
	Steps   int    `json:"steps"`   // outer iteration count
	Procs   int    `json:"procs"`   // total processors
	GridP   int    `json:"grid_p"`  // processor grid extents (GridQ 0 for 1-D)
	GridQ   int    `json:"grid_q"`
	Dist    string `json:"dist"` // DISTRIBUTE format spec, e.g. "(*,CYCLIC(2))"
	Name    string `json:"name"`
	// Indep selects the INDEPENDENT-directive exercise of the template:
	// 0 none, 1 a provable annotation on the main update loop (the
	// harness checks the directive lowers the prediction), 2 an
	// intentionally refutable annotation (the harness checks the
	// verifier rejects it with HPF0501 at error severity).
	Indep int `json:"indep,omitempty"`
}

// ExpectRefuted reports that the program carries an INDEPENDENT
// annotation the dependence verifier must refute.
func (p Params) ExpectRefuted() bool { return p.Indep == 2 }

// MaskDensity is the FORALL mask truth density the prediction engine
// should assume for this program: red-black relaxation updates half the
// interior per sweep, everything else is unmasked.
func (p Params) MaskDensity() float64 {
	if p.Family == Relax && p.Variant == 1 {
		return 0.5
	}
	return 1.0
}

// Flops returns the nominal floating-point operation count of the
// kernel (HPL-style conventions: 2/3·N³+2·N² for LU, 5·N·log2 N for
// FFT), used for the Gflops column of the metrics report.
func (p Params) Flops() float64 {
	n, s := float64(p.N), float64(p.Steps)
	switch p.Family {
	case Stencil1D:
		pts := 3.0
		if p.Variant == 1 {
			pts = 5
		}
		return 2 * pts * (n - 2) * s
	case Stencil2D:
		pts := 5.0
		if p.Variant == 1 {
			pts = 9
		}
		return 2 * pts * (n - 2) * (n - 2) * s
	case Relax:
		return 6 * (n - 2) * s
	case LU:
		return 2.0/3.0*n*n*n + 2*n*n
	case FFT:
		stages := 0.0
		for m := 1; m < p.N; m *= 2 {
			stages++
		}
		return 5 * n * stages
	case NBody:
		return 9 * n * s
	}
	return 0
}

// Program is one generated kernel with its rendered source.
type Program struct {
	Params
	Source string `json:"source"`
}

// splitmix64 is the per-program seed mixer: one 64-bit avalanche step,
// so program (seed, family, index) is independent of how many programs
// are generated around it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func familyTag(f Family) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(f); i++ {
		h = (h ^ uint64(f[i])) * 1099511628211
	}
	return h
}

// programRNG derives the deterministic RNG of program (seed, family, index).
func programRNG(seed int64, f Family, index int) *rand.Rand {
	mix := splitmix64(uint64(seed) ^ familyTag(f) ^ splitmix64(uint64(index)))
	return rand.New(rand.NewSource(int64(mix & 0x7fffffffffffffff)))
}

// Generate produces n distinct programs, round-robin across the six
// families, deterministically from seed: program i is always identical
// for a given seed regardless of n.
func Generate(seed int64, n int) []Program {
	fams := Families()
	out := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, GenerateOne(seed, fams[i%len(fams)], i/len(fams)))
	}
	return out
}

// GenerateFamily produces the first n programs of one family.
func GenerateFamily(seed int64, f Family, n int) []Program {
	out := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, GenerateOne(seed, f, i))
	}
	return out
}

// GenerateOne renders program (seed, family, index).
func GenerateOne(seed int64, f Family, index int) Program {
	rng := programRNG(seed, f, index)
	p := Params{Family: f, Seed: seed, Index: index}
	p.Name = fmt.Sprintf("%s-%04d", f, index)
	switch f {
	case Stencil1D:
		drawStencil1D(&p, rng)
	case Stencil2D:
		drawStencil2D(&p, rng)
	case Relax:
		drawRelax(&p, rng)
	case LU:
		drawLU(&p, rng)
	case FFT:
		drawFFT(&p, rng)
	case NBody:
		drawNBody(&p, rng)
	default:
		panic(fmt.Sprintf("corpus: unknown family %q", f))
	}
	return Program{Params: p, Source: Render(p)}
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs ...T) T { return xs[rng.Intn(len(xs))] }

// coef derives a small positive coefficient from the variant stream;
// rendered with %g these stay short and byte-stable.
func coef(rng *rand.Rand) float64 { return float64(1+rng.Intn(9)) / 16 }

// oneDimDist draws a 1-D distribution format over procs processors of a
// dimension with extent elements, setting NB for chunked formats.
func oneDimDist(p *Params, rng *rand.Rand, extent int) string {
	switch rng.Intn(4) {
	case 0, 1:
		return "(BLOCK)"
	case 2:
		return "(CYCLIC)"
	default:
		p.NB = pick(rng, 2, 3, 4, 8)
		return fmt.Sprintf("(CYCLIC(%d))", p.NB)
	}
}

// ---------------------------------------------------------------------------
// Family parameter draws

func drawStencil1D(p *Params, rng *rand.Rand) {
	p.Variant = rng.Intn(2) // 0: 3-point, 1: 5-point
	p.N = pick(rng, 64, 128, 256, 512)
	p.Steps = pick(rng, 2, 4, 6, 8)
	p.Procs = pick(rng, 2, 4, 8)
	p.GridP = p.Procs
	p.Dist = oneDimDist(p, rng, p.N)
	// Annotate the update DO on half the large BLOCK-distributed
	// programs: there the parallel lowering strictly wins. Under CYCLIC
	// mappings the stencil's neighbor communication costs more than the
	// serialization the directive removes, and at small N the shadow-
	// exchange startup does; both would fail the strictly-lower gate.
	// The draw is unconditional to keep the rng stream aligned with
	// Render.
	if indep := rng.Intn(2); indep == 1 && p.Dist == "(BLOCK)" && p.N >= 128 {
		p.Indep = 1
	}
}

func drawStencil2D(p *Params, rng *rand.Rand) {
	p.Variant = rng.Intn(2) // 0: 5-point, 1: 9-point
	p.N = pick(rng, 12, 16, 24, 32)
	p.Steps = pick(rng, 2, 3, 4)
	p.Procs = pick(rng, 2, 4, 8)
	switch rng.Intn(4) {
	case 0:
		p.GridP, p.GridQ = grid2D(p.Procs)
		p.Dist = "(BLOCK,BLOCK)"
	case 1:
		p.GridP = p.Procs
		p.Dist = "(BLOCK,*)"
	case 2:
		p.GridP = p.Procs
		p.Dist = "(*,BLOCK)"
	default:
		p.GridP = p.Procs
		p.NB = pick(rng, 2, 3, 4)
		p.Dist = fmt.Sprintf("(CYCLIC(%d),*)", p.NB)
	}
}

func drawRelax(p *Params, rng *rand.Rand) {
	p.Variant = rng.Intn(2) // 0: weighted Jacobi, 1: red-black (masked)
	p.N = pick(rng, 64, 128, 256)
	p.Steps = pick(rng, 4, 8, 12)
	p.Procs = pick(rng, 2, 4, 8)
	p.GridP = p.Procs
	p.Dist = oneDimDist(p, rng, p.N)
}

func drawLU(p *Params, rng *rand.Rand) {
	p.N = pick(rng, 8, 12, 16, 20)
	p.Steps = p.N - 1 // elimination steps; fixed by N
	p.Procs = pick(rng, 2, 4)
	p.GridP = p.Procs
	if k := pick(rng, 1, 1, 2, 3, 4); k > 1 {
		p.NB = k
		p.Dist = fmt.Sprintf("(*,CYCLIC(%d))", k)
	} else {
		p.Dist = "(*,CYCLIC)"
	}
}

func drawFFT(p *Params, rng *rand.Rand) {
	p.N = pick(rng, 32, 64, 128, 256)
	for m := 1; m < p.N; m *= 2 {
		p.Steps++ // log2 N butterfly stages
	}
	p.Procs = pick(rng, 2, 4, 8)
	p.GridP = p.Procs
	p.Dist = oneDimDist(p, rng, p.N)
}

func drawNBody(p *Params, rng *rand.Rand) {
	p.Variant = pick(rng, 1, 1, 2, 3) // systolic CSHIFT stride
	p.N = pick(rng, 16, 32, 64)
	p.Steps = pick(rng, 4, 6, 8, 10)
	if p.Steps > p.N-1 {
		p.Steps = p.N - 1
	}
	p.Procs = pick(rng, 2, 4, 8)
	p.GridP = p.Procs
	p.Dist = "(BLOCK)"
	if rng.Intn(4) == 0 {
		p.Indep = 2 // refutable: annotate the prefix-sum force pass
	}
}

// ---------------------------------------------------------------------------
// Template rendering

// Render produces the HPF/Fortran 90D source of a parameter set. It is
// a pure function: same Params, same bytes.
func Render(p Params) string {
	rng := programRNG(p.Seed, p.Family, p.Index)
	// Re-draw the structural parameters to advance the stream to the same
	// point drawXxx left it, then burn coefficients off the same stream so
	// Render(p) matches the source GenerateOne built.
	var scratch Params
	scratch.Family = p.Family
	switch p.Family {
	case Stencil1D:
		drawStencil1D(&scratch, rng)
		return renderStencil1D(p, rng)
	case Stencil2D:
		drawStencil2D(&scratch, rng)
		return renderStencil2D(p, rng)
	case Relax:
		drawRelax(&scratch, rng)
		return renderRelax(p, rng)
	case LU:
		drawLU(&scratch, rng)
		return renderLU(p, rng)
	case FFT:
		drawFFT(&scratch, rng)
		return renderFFT(p, rng)
	case NBody:
		drawNBody(&scratch, rng)
		return renderNBody(p, rng)
	}
	panic(fmt.Sprintf("corpus: unknown family %q", p.Family))
}

func grid2D(procs int) (int, int) {
	a := 1
	for f := 2; f*f <= procs; f++ {
		if procs%f == 0 {
			a = f
		}
	}
	return a, procs / a
}

func (p Params) gridSpec() string {
	if p.GridQ > 0 {
		return fmt.Sprintf("(%d,%d)", p.GridP, p.GridQ)
	}
	return fmt.Sprintf("(%d)", p.GridP)
}

func (p Params) unitName() string {
	return strings.ReplaceAll(p.Name, "-", "_")
}

func renderStencil1D(p Params, rng *rand.Rand) string {
	c1, c2, c3 := coef(rng), coef(rng), coef(rng)
	amp := coef(rng)
	var body string
	switch {
	case p.Variant == 1 && p.Indep == 1:
		c4, c5 := coef(rng), coef(rng)
		body = fmt.Sprintf("!HPF$ INDEPENDENT\n"+
			"  DO I = 3, N-2\n"+
			"    B(I) = %g*A(I-2) + %g*A(I-1) + %g*A(I) + %g*A(I+1) + %g*A(I+2)\n"+
			"  END DO\n"+
			"  FORALL (I=3:N-2) A(I) = B(I)", c1, c2, c3, c4, c5)
	case p.Variant == 1:
		c4, c5 := coef(rng), coef(rng)
		body = fmt.Sprintf("  FORALL (I=3:N-2) B(I) = %g*A(I-2) + %g*A(I-1) + %g*A(I) + %g*A(I+1) + %g*A(I+2)\n"+
			"  FORALL (I=3:N-2) A(I) = B(I)", c1, c2, c3, c4, c5)
	case p.Indep == 1:
		body = fmt.Sprintf("!HPF$ INDEPENDENT\n"+
			"  DO I = 2, N-1\n"+
			"    B(I) = %g*A(I-1) + %g*A(I) + %g*A(I+1)\n"+
			"  END DO\n"+
			"  FORALL (I=2:N-1) A(I) = B(I)", c1, c2, c3)
	default:
		body = fmt.Sprintf("  FORALL (I=2:N-1) B(I) = %g*A(I-1) + %g*A(I) + %g*A(I+1)\n"+
			"  FORALL (I=2:N-1) A(I) = B(I)", c1, c2, c3)
	}
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d, STEPS = %d)
REAL A(N), B(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN A(I) WITH TPL(I)
!HPF$ ALIGN B(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N) A(I) = 1.0 + %g*SIN(0.1*REAL(I))
FORALL (I=1:N) B(I) = 0.0
DO IT = 1, STEPS
%s
END DO
CHK = SUM(A)
PRINT *, CHK
END
`, p.unitName(), p.N, p.Steps, p.gridSpec(), p.Dist, amp, body)
}

func renderStencil2D(p Params, rng *rand.Rand) string {
	w := coef(rng)
	hot, cold := 50+float64(rng.Intn(100)), float64(rng.Intn(30))
	var update string
	if p.Variant == 1 {
		wd := coef(rng) / 4
		update = fmt.Sprintf("  FORALL (I=2:N-1, J=2:N-1) V(I,J) = %g*(U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1)) + %g*(U(I-1,J-1) + U(I-1,J+1) + U(I+1,J-1) + U(I+1,J+1))", w/4, wd)
	} else {
		update = fmt.Sprintf("  FORALL (I=2:N-1, J=2:N-1) V(I,J) = %g*(U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))", w/4)
	}
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d, STEPS = %d)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N,N)
!HPF$ ALIGN U(I,J) WITH TPL(I,J)
!HPF$ ALIGN V(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.01*REAL(I+J)
FORALL (J=1:N) U(1,J) = %0.1f
FORALL (J=1:N) U(N,J) = %0.1f
DO IT = 1, STEPS
%s
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
CHK = SUM(U)
PRINT *, CHK
END
`, p.unitName(), p.N, p.Steps, p.gridSpec(), p.Dist, hot, cold, update)
}

func renderRelax(p Params, rng *rand.Rand) string {
	w := 0.5 + coef(rng)
	amp := coef(rng)
	var sweep string
	if p.Variant == 1 {
		// Red-black: two half-density masked sweeps per step.
		sweep = "  FORALL (I=2:N-1, MOD(I,2) .EQ. 0) U(I) = U(I) + W*(0.5*(U(I-1) + U(I+1)) - U(I))\n" +
			"  FORALL (I=2:N-1, MOD(I,2) .EQ. 1) U(I) = U(I) + W*(0.5*(U(I-1) + U(I+1)) - U(I))"
	} else {
		sweep = "  FORALL (I=2:N-1) R(I) = 0.5*(U(I-1) + U(I+1)) - U(I)\n" +
			"  FORALL (I=2:N-1) U(I) = U(I) + W*R(I)"
	}
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d, STEPS = %d, W = %g)
REAL U(N), R(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN U(I) WITH TPL(I)
!HPF$ ALIGN R(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N) U(I) = %g*REAL(I)
FORALL (I=1:N) R(I) = 0.0
DO IT = 1, STEPS
%s
END DO
RES = SUM(R)
UM = MAXVAL(U)
CHK = RES + UM
PRINT *, CHK
END
`, p.unitName(), p.N, p.Steps, w, p.gridSpec(), p.Dist, amp, sweep)
}

func renderLU(p Params, rng *rand.Rand) string {
	shift := coef(rng)
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d)
REAL A(N,N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N,N)
!HPF$ ALIGN A(I,J) WITH TPL(I,J)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N, J=1:N) A(I,J) = 1.0/(REAL(I+J) + %g)
FORALL (I=1:N, J=1:N, I .EQ. J) A(I,J) = A(I,J) + REAL(N)
DO K = 1, N-1
  FORALL (I=K+1:N) A(I,K) = A(I,K)/A(K,K)
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)*A(K,J)
END DO
CHK = SUM(A)
PRINT *, CHK
END
`, p.unitName(), p.N, p.gridSpec(), p.Dist, shift)
}

func renderFFT(p Params, rng *rand.Rand) string {
	wr, wi := coef(rng), coef(rng)
	var stages strings.Builder
	for sh := 1; sh < p.N; sh *= 2 {
		// One butterfly stage per power-of-two stride, textually unrolled
		// so every CSHIFT amount is a resolvable literal.
		fmt.Fprintf(&stages, "TR = CSHIFT(XR, %d)\n", sh)
		fmt.Fprintf(&stages, "TI = CSHIFT(XI, %d)\n", sh)
		fmt.Fprintf(&stages, "FORALL (I=1:N) XR(I) = %g*XR(I) + %g*TR(I) - %g*TI(I)\n", wr, wi, wi/2)
		fmt.Fprintf(&stages, "FORALL (I=1:N) XI(I) = %g*XI(I) + %g*TI(I) + %g*TR(I)\n", wr, wi, wi/2)
	}
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d)
REAL XR(N), XI(N), TR(N), TI(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN XR(I) WITH TPL(I)
!HPF$ ALIGN XI(I) WITH TPL(I)
!HPF$ ALIGN TR(I) WITH TPL(I)
!HPF$ ALIGN TI(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N) XR(I) = COS(0.05*REAL(I))
FORALL (I=1:N) XI(I) = SIN(0.05*REAL(I))
%sC1 = SUM(XR)
C2 = SUM(XI)
CHK = C1 + C2
PRINT *, CHK
END
`, p.unitName(), p.N, p.gridSpec(), p.Dist, stages.String())
}

func renderNBody(p Params, rng *rand.Rand) string {
	g := 0.5 + coef(rng)
	eps := 0.01
	amp := coef(rng)
	var smooth string
	if p.Indep == 2 {
		// A prefix-style smoothing pass over the accumulated forces:
		// F(I) reads F(I-1), a genuine loop-carried flow dependence, so
		// the INDEPENDENT annotation is a lie the verifier must refute
		// (HPF0501) and the compiler must not honor.
		smooth = "!HPF$ INDEPENDENT\nDO I = 2, N\n  F(I) = F(I) + G*F(I-1)\nEND DO\n"
	}
	return fmt.Sprintf(`PROGRAM %s
PARAMETER (N = %d, STEPS = %d, G = %g, EPS = %g)
REAL X(N), FM(N), F(N), XT(N), MT(N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE TPL(N)
!HPF$ ALIGN X(I) WITH TPL(I)
!HPF$ ALIGN FM(I) WITH TPL(I)
!HPF$ ALIGN F(I) WITH TPL(I)
!HPF$ ALIGN XT(I) WITH TPL(I)
!HPF$ ALIGN MT(I) WITH TPL(I)
!HPF$ DISTRIBUTE TPL%s ONTO P
FORALL (I=1:N) X(I) = REAL(I) + %g*SIN(REAL(I))
FORALL (I=1:N) FM(I) = 1.0 + %g*COS(REAL(I))
FORALL (I=1:N) F(I) = 0.0
XT = X
MT = FM
DO K = 1, STEPS
  XT = CSHIFT(XT, %d)
  MT = CSHIFT(MT, %d)
  FORALL (I=1:N) F(I) = F(I) + G*FM(I)*MT(I)/((X(I) - XT(I))**2 + EPS)
END DO
%sCHK = SUM(F)
PRINT *, CHK
END
`, p.unitName(), p.N, p.Steps, g, eps, p.gridSpec(), p.Dist, amp, amp/2, p.Variant, p.Variant, smooth)
}
