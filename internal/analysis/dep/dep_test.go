package dep_test

import (
	"fmt"
	"strings"
	"testing"

	"hpfperf/internal/analysis/dep"
	"hpfperf/internal/ast"
	"hpfperf/internal/parser"
	"hpfperf/internal/sem"
)

// exprOf parses src as the RHS of an assignment and returns the
// expression, using a tiny wrapper program so the full scanner/parser
// stack is exercised.
func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	prog, err := parser.Parse("PROGRAM E\nINTEGER :: X\nX = " + src + "\nEND PROGRAM E\n")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	for _, s := range prog.Body {
		if as, ok := s.(*ast.AssignStmt); ok {
			return as.Rhs
		}
	}
	t.Fatalf("no assignment in wrapper for %q", src)
	return nil
}

func TestNormalize(t *testing.T) {
	consts := map[string]int64{"N": 100, "C": 3}
	idx := map[string]bool{"I": true, "J": true}
	cases := []struct {
		src    string
		ok     bool
		cnst   int64
		coeffs map[string]int64
	}{
		{"7", true, 7, nil},
		{"I", true, 0, map[string]int64{"I": 1}},
		{"I + 1", true, 1, map[string]int64{"I": 1}},
		{"I - 1", true, -1, map[string]int64{"I": 1}},
		{"2*I + 3", true, 3, map[string]int64{"I": 2}},
		{"I*2 - N", true, -100, map[string]int64{"I": 2}},
		{"-I", true, 0, map[string]int64{"I": -1}},
		{"N - I", true, 100, map[string]int64{"I": -1}},
		{"C*I + J", true, 0, map[string]int64{"I": 3, "J": 1}},
		{"I - I", true, 0, nil},
		{"I*I", false, 0, nil},
		{"I*J", false, 0, nil},
		{"K", false, 0, nil}, // unresolved scalar
		{"I/2", false, 0, nil},
	}
	for _, c := range cases {
		s := dep.Normalize(exprOf(t, c.src), consts, idx)
		if s.OK != c.ok {
			t.Errorf("Normalize(%q).OK = %v, want %v", c.src, s.OK, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if s.Const != c.cnst {
			t.Errorf("Normalize(%q).Const = %d, want %d", c.src, s.Const, c.cnst)
		}
		for v, want := range c.coeffs {
			if got := s.Coeff(v); got != want {
				t.Errorf("Normalize(%q).Coeff(%s) = %d, want %d", c.src, v, got, want)
			}
		}
		for v := range s.Coeffs {
			if _, ok := c.coeffs[v]; !ok {
				t.Errorf("Normalize(%q) has unexpected coeff %s=%d", c.src, v, s.Coeffs[v])
			}
		}
	}
}

// sub builds an affine subscript a*idx + c for the one-index helpers.
func sub(name string, a, c int64) dep.Sub {
	s := dep.Sub{Const: c, OK: true}
	if a != 0 {
		s.Coeffs = map[string]int64{name: a}
	}
	return s
}

func TestZIVAndGCD(t *testing.T) {
	i := []dep.Index{{Name: "I", Lo: 1, Hi: 10, Bounded: true}}

	// ZIV: A(3) vs A(5) — constants differ, independent.
	r := dep.TestPair([]dep.Sub{sub("I", 0, 3)}, []dep.Sub{sub("I", 0, 5)}, i)
	if r.Kind != dep.Independent {
		t.Errorf("ZIV unequal consts: got %v, want independent", r.Kind)
	}
	// ZIV: A(3) vs A(3) — dependent, but not loop-carried-proven (every
	// carried direction is feasible, but the same-iteration pair already
	// proves reuse; carried pairs exist too since the span is > 1).
	r = dep.TestPair([]dep.Sub{sub("I", 0, 3)}, []dep.Sub{sub("I", 0, 3)}, i)
	if r.Kind != dep.Dependent {
		t.Errorf("ZIV equal consts: got %v, want dependent", r.Kind)
	}
	if !r.CarriedProven {
		t.Errorf("ZIV equal consts over 10 iterations: want CarriedProven")
	}

	// GCD screen: A(2*I) vs A(2*I+1) — parity mismatch, independent.
	r = dep.TestPair([]dep.Sub{sub("I", 2, 0)}, []dep.Sub{sub("I", 2, 1)}, i)
	if r.Kind != dep.Independent {
		t.Errorf("GCD parity: got %v, want independent", r.Kind)
	}
}

func TestStrongSIV(t *testing.T) {
	bounded := []dep.Index{{Name: "I", Lo: 2, Hi: 99, Bounded: true}}

	// A(I) written, A(I-1) read: flow dependence, distance 1, direction <.
	r := dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 1, -1)}, bounded)
	if r.Kind != dep.Dependent || !r.CarriedProven {
		t.Fatalf("A(I) vs A(I-1): got %v carried=%v, want proven dependent", r.Kind, r.CarriedProven)
	}
	if !r.DistKnown || r.Dist != 1 {
		t.Errorf("A(I) vs A(I-1): dist = %d known=%v, want 1", r.Dist, r.DistKnown)
	}
	carried := r.CarriedDirs()
	if len(carried) != 1 || dep.DirVector(carried[0]) != "(<)" {
		t.Errorf("A(I) vs A(I-1): carried dirs %v, want exactly (<)", carried)
	}

	// A(I) vs A(I): only the "=" vector survives; dependent but not carried.
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 1, 0)}, bounded)
	if r.Kind != dep.Dependent || r.CarriedProven {
		t.Errorf("A(I) vs A(I): got %v carried=%v, want same-iteration dependent only", r.Kind, r.CarriedProven)
	}
	if len(r.CarriedDirs()) != 0 {
		t.Errorf("A(I) vs A(I): carried dirs %v, want none", r.CarriedDirs())
	}

	// Distance exceeding the span: A(I) vs A(I-200) over 98 iterations.
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 1, -200)}, bounded)
	if r.Kind != dep.Independent {
		t.Errorf("distance > span: got %v, want independent", r.Kind)
	}

	// Unbounded index: the distance is pinned but existence is unproven.
	unbounded := []dep.Index{{Name: "I"}}
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 1, -1)}, unbounded)
	if r.Kind != dep.Unknown || r.CarriedProven {
		t.Errorf("unbounded strong SIV: got %v carried=%v, want unknown", r.Kind, r.CarriedProven)
	}
}

func TestWeakSIVAndBanerjee(t *testing.T) {
	i := []dep.Index{{Name: "I", Lo: 1, Hi: 10, Bounded: true}}

	// Weak-zero SIV: A(I) vs A(5) — iteration 5 collides with all others;
	// not exhibited exactly by the strong-SIV path, so Unknown (sound).
	r := dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 0, 5)}, i)
	if r.Kind == dep.Independent {
		t.Errorf("A(I) vs A(5): must not be disproven")
	}
	// Weak-zero out of range: A(I) vs A(42) with I in [1,10].
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 0, 42)}, i)
	if r.Kind != dep.Independent {
		t.Errorf("A(I) vs A(42): got %v, want independent (42 out of range)", r.Kind)
	}
	// Weak-crossing: A(I) vs A(20-I) never collides within [1,10] ranges
	// only if 2I=20-c has no solution in range... here 2I = 20 → I = 10:
	// feasible, so must not be disproven.
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", -1, 20)}, i)
	if r.Kind == dep.Independent {
		t.Errorf("A(I) vs A(20-I): must not be disproven (I=10 collides)")
	}
	// Crossing out of range: A(I) vs A(100-I), 2I = 100 → I = 50 ∉ [1,10].
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", -1, 100)}, i)
	if r.Kind != dep.Independent {
		t.Errorf("A(I) vs A(100-I): got %v, want independent (Banerjee bound)", r.Kind)
	}
}

func TestMIVDirections(t *testing.T) {
	idxs := []dep.Index{
		{Name: "I", Lo: 1, Hi: 8, Bounded: true},
		{Name: "J", Lo: 1, Hi: 8, Bounded: true},
	}
	two := func(ai, ci, aj, cj int64) []dep.Sub {
		mk := func(a int64, v string, c int64) dep.Sub {
			s := dep.Sub{Const: c, OK: true}
			if a != 0 {
				s.Coeffs = map[string]int64{v: a}
			}
			return s
		}
		return []dep.Sub{mk(ai, "I", ci), mk(aj, "J", cj)}
	}

	// A(I,J) = A(I-1,J): carried on the first index only, direction (<,=).
	r := dep.TestPair(two(1, 0, 1, 0), two(1, -1, 1, 0), idxs)
	if !r.CarriedProven {
		t.Fatalf("A(I,J) vs A(I-1,J): want proven carried dependence, got %v", r.Kind)
	}
	var vecs []string
	for _, d := range r.CarriedDirs() {
		vecs = append(vecs, dep.DirVector(d))
	}
	if got := strings.Join(vecs, " "); got != "(<,=)" {
		t.Errorf("A(I,J) vs A(I-1,J): carried dirs %q, want (<,=)", got)
	}

	// A(I,J) = A(I,J): no carried vector at all.
	r = dep.TestPair(two(1, 0, 1, 0), two(1, 0, 1, 0), idxs)
	if len(r.CarriedDirs()) != 0 {
		t.Errorf("A(I,J) self: carried dirs %v, want none", r.CarriedDirs())
	}

	// Disjoint dimensions: A(2*I, J) vs A(2*I+1, J) independent by GCD in
	// dimension 0 for every direction vector.
	r = dep.TestPair(two(2, 0, 1, 0), two(2, 1, 1, 0), idxs)
	if r.Kind != dep.Independent {
		t.Errorf("2I vs 2I+1 in dim 0: got %v, want independent", r.Kind)
	}
	if r.Dim != 0 {
		t.Errorf("deciding dim = %d, want 0", r.Dim)
	}
}

func TestRankMismatchUnknown(t *testing.T) {
	i := []dep.Index{{Name: "I", Lo: 1, Hi: 4, Bounded: true}}
	r := dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 1, 0), sub("I", 0, 1)}, i)
	if r.Kind != dep.Unknown {
		t.Errorf("rank mismatch: got %v, want unknown", r.Kind)
	}
}

// loopOf compiles a program with a single top-level DO around body lines
// and returns the pieces VerifyLoop needs.
func loopOf(t *testing.T, decls, lo, hi string, body ...string) ([]dep.Index, []ast.Stmt, map[string]int64, map[string]bool) {
	t.Helper()
	src := "PROGRAM V\n" + decls + "\nDO I = " + lo + ", " + hi + "\n" +
		strings.Join(body, "\n") + "\nEND DO\nEND PROGRAM V\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v\n%s", err, src)
	}
	consts := map[string]int64{}
	for n, v := range info.Consts {
		if v.Type == ast.TInteger {
			consts[n] = v.I
		}
	}
	arrays := map[string]bool{}
	for n, s := range info.Symbols {
		if s.Kind == sem.SymArray {
			arrays[n] = true
		}
	}
	for _, s := range prog.Body {
		if d, ok := s.(*ast.DoStmt); ok {
			idx := dep.IndexFromRange(d.Var, d.From, d.To, d.Step, consts)
			return []dep.Index{idx}, d.Body, consts, arrays
		}
	}
	t.Fatalf("no DO loop found in:\n%s", src)
	return nil, nil, nil, nil
}

const vDecls = "PARAMETER (N = 64)\nREAL A(N), B(N)\nREAL S"

func TestVerifyLoopProven(t *testing.T) {
	for _, body := range [][]string{
		{"A(I) = B(I) + 1.0"},
		{"A(I) = A(I) * 2.0"},
		{"A(I) = B(I)", "B(I) = B(I) + A(I)"},
	} {
		idxs, stmts, consts, arrays := loopOf(t, vDecls, "1", "N", body...)
		v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
		if v != dep.Proven {
			t.Errorf("%v: verdict %v (evidence %v), want proven", body, v, ev)
		}
	}
}

func TestVerifyLoopRefuted(t *testing.T) {
	cases := []struct {
		body []string
		want string // substring of the evidence
	}{
		{[]string{"A(I) = A(I - 1) + 1.0"}, "read on another"},
		{[]string{"A(I + 1) = B(I)", "B(I) = A(I)"}, "read on another"},
		{[]string{"A(5) = B(I)"}, "written on two iterations"},
		{[]string{"S = S + A(I)"}, "scalar"},
	}
	for _, c := range cases {
		idxs, stmts, consts, arrays := loopOf(t, vDecls, "1", "N", c.body...)
		v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
		if v != dep.Refuted {
			t.Errorf("%v: verdict %v, want refuted", c.body, v)
			continue
		}
		if len(ev) == 0 {
			t.Errorf("%v: refuted with no evidence", c.body)
			continue
		}
		joined := ""
		for _, e := range ev {
			joined += e.String() + "; "
		}
		if !strings.Contains(joined, c.want) {
			t.Errorf("%v: evidence %q does not mention %q", c.body, joined, c.want)
		}
	}
}

func TestVerifyLoopUnproven(t *testing.T) {
	// Unresolved bound: scalar write cannot be refuted (loop may run once)
	// and cannot be proven.
	idxs, stmts, consts, arrays := loopOf(t, "REAL A(64), B(64)\nREAL S", "1", "M",
		"S = A(I)", "B(I) = S")
	v, _ := dep.VerifyLoop(idxs, stmts, consts, arrays)
	if v != dep.Unproven {
		t.Errorf("unbounded scalar write: verdict %v, want unproven", v)
	}

	// I/O pins iteration order.
	idxs, stmts, consts, arrays = loopOf(t, vDecls, "1", "N", "PRINT *, A(I)")
	v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
	if v != dep.Unproven {
		t.Errorf("print in body: verdict %v, want unproven", v)
	}
	found := false
	for _, e := range ev {
		if strings.Contains(e.String(), "I/O") {
			found = true
		}
	}
	if !found {
		t.Errorf("print in body: evidence %v does not mention I/O", ev)
	}
}

func TestVerifyLoopNestedDoPrivate(t *testing.T) {
	// A nested DO reusing its own index across outer iterations is benign;
	// the inner write pattern decides.
	decls := "PARAMETER (N = 16)\nREAL A(N, N)"
	idxs, stmts, consts, arrays := loopOf(t, decls, "1", "N",
		"DO J = 1, N", "A(J, I) = A(J, I) + 1.0", "END DO")
	v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
	if v != dep.Proven {
		t.Errorf("nested DO with disjoint columns: verdict %v (evidence %v), want proven", v, ev)
	}
}

func TestIndexFromRange(t *testing.T) {
	consts := map[string]int64{"N": 10}
	mk := func(src string) ast.Expr { return exprOf(t, src) }

	ix := dep.IndexFromRange("I", mk("1"), mk("N"), nil, consts)
	if !ix.Bounded || ix.Lo != 1 || ix.Hi != 10 {
		t.Errorf("1..N: got %+v, want bounded [1,10]", ix)
	}
	ix = dep.IndexFromRange("I", mk("1"), mk("N"), mk("2"), consts)
	if ix.Bounded {
		t.Errorf("stride 2 must not be Bounded (exactness relies on unit stride): %+v", ix)
	}
	ix = dep.IndexFromRange("I", mk("1"), mk("M"), nil, consts)
	if ix.Bounded {
		t.Errorf("unresolved hi bound must not be Bounded: %+v", ix)
	}
	if ix.Name != "I" {
		t.Errorf("name: got %q", ix.Name)
	}
}

func TestDirVectorFormat(t *testing.T) {
	got := dep.DirVector([]dep.Dir{dep.DirLT, dep.DirEQ, dep.DirGT})
	if got != "(<,=,>)" {
		t.Errorf("DirVector = %q, want (<,=,>)", got)
	}
	if dep.Carried([]dep.Dir{dep.DirEQ, dep.DirEQ}) {
		t.Error("all-= vector must not be carried")
	}
	if !dep.Carried([]dep.Dir{dep.DirEQ, dep.DirGT}) {
		t.Error("(=,>) vector must be carried")
	}
	for k, want := range map[dep.Kind]string{dep.Independent: "independent", dep.Dependent: "dependent", dep.Unknown: "unknown"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	for v, want := range map[dep.Verdict]string{dep.Proven: "proven", dep.Refuted: "refuted", dep.Unproven: "unproven"} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func ExampleTestPair() {
	idxs := []dep.Index{{Name: "I", Lo: 2, Hi: 99, Bounded: true}}
	w := []dep.Sub{{Coeffs: map[string]int64{"I": 1}, OK: true}}
	r := []dep.Sub{{Coeffs: map[string]int64{"I": 1}, Const: -1, OK: true}}
	res := dep.TestPair(w, r, idxs)
	fmt.Println(res.Kind, res.CarriedProven, res.Dist)
	// Output: dependent true 1
}

// TestBanerjeeGTAsymmetric pins the direction-">" Banerjee bound for
// asymmetric coefficients: coupledBounds(-b, -a) already bounds the GT
// term (a−b)·i' + a·d directly, and a regression once negated that
// interval a second time, testing −diff instead of diff — wrongly
// disproving real backward-carried dependences.
func TestBanerjeeGTAsymmetric(t *testing.T) {
	i := []dep.Index{{Name: "I", Lo: 0, Hi: 10, Bounded: true}}

	// Write A(I), read A(2*I+9) over I in [0,10]: A(9) is written at
	// I=9 and read at I=0 — a backward (">") carried dependence. The box
	// test cannot exhibit it exactly, but it must NOT disprove it.
	r := dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 2, 9)}, i)
	if r.Kind == dep.Independent {
		t.Fatalf("A(I) vs A(2I+9) over [0,10]: disproven, but A(9) collides (w@9, r@0)")
	}
	var vecs []string
	for _, d := range r.CarriedDirs() {
		vecs = append(vecs, dep.DirVector(d))
	}
	if got := strings.Join(vecs, " "); got != "(>)" {
		t.Errorf("A(I) vs A(2I+9): carried dirs %q, want exactly (>)", got)
	}

	// Negative control with the same asymmetric shape: shifting the read
	// out of reach (A(2*I+100)) must still be disproven in every
	// direction, including ">".
	r = dep.TestPair([]dep.Sub{sub("I", 1, 0)}, []dep.Sub{sub("I", 2, 100)}, i)
	if r.Kind != dep.Independent {
		t.Errorf("A(I) vs A(2I+100) over [0,10]: got %v, want independent", r.Kind)
	}
}

// TestVerifyLoopAsymmetricGT is the VerifyLoop-level regression for the
// same bug: an INDEPENDENT claim over this loop must not verify.
func TestVerifyLoopAsymmetricGT(t *testing.T) {
	idxs, stmts, consts, arrays := loopOf(t, "REAL A(64)", "0", "10",
		"A(I + 1) = A(2*I + 9)")
	v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
	if v == dep.Proven {
		t.Fatalf("A(I+1) = A(2I+9) over [0,10]: proven independent, but A(9) is written at I=8 and read at I=0 (evidence %v)", ev)
	}
}

// TestVerifyLoopGuardedCapsAtUnproven pins that a carried dependence
// exhibited only inside a conditionally-executed branch refutes nothing:
// the branch may never be taken, so the verdict is capped at Unproven.
func TestVerifyLoopGuardedCapsAtUnproven(t *testing.T) {
	cases := []struct {
		name string
		body []string
	}{
		{"guarded array flow", []string{
			"IF (B(I) > 0.0) THEN",
			"A(I) = A(I - 1) + 1.0",
			"END IF",
		}},
		{"guarded scalar write", []string{
			"IF (B(I) > 0.0) THEN",
			"S = S + A(I)",
			"END IF",
		}},
	}
	for _, c := range cases {
		idxs, stmts, consts, arrays := loopOf(t, vDecls, "1", "N", c.body...)
		v, ev := dep.VerifyLoop(idxs, stmts, consts, arrays)
		if v != dep.Unproven {
			t.Errorf("%s: verdict %v (evidence %v), want unproven", c.name, v, ev)
		}
		if v == dep.Refuted {
			t.Errorf("%s: refuted a dependence that may never execute", c.name)
		}
	}

	// The unguarded twins stay refuted — the cap must not leak outside
	// conditional contexts.
	for _, body := range [][]string{
		{"A(I) = A(I - 1) + 1.0"},
		{"S = S + A(I)"},
	} {
		idxs, stmts, consts, arrays := loopOf(t, vDecls, "1", "N", body...)
		if v, _ := dep.VerifyLoop(idxs, stmts, consts, arrays); v != dep.Refuted {
			t.Errorf("%v unguarded: verdict %v, want refuted", body, v)
		}
	}
}
