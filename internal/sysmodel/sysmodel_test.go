package sysmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIPSC860Structure(t *testing.T) {
	m := IPSC860()
	if m.Name != "iPSC/860" || m.MaxNodes != 8 {
		t.Fatalf("machine = %s/%d", m.Name, m.MaxNodes)
	}
	if m.Node == nil || m.Node.P == nil || m.Node.M == nil || m.Node.C == nil {
		t.Fatal("node SAU incomplete")
	}
	if m.Host == nil || m.Host.P == nil {
		t.Fatal("host SAU incomplete")
	}
	// Paper's hardware description: 40 MHz clock, 4KB I-cache, 8KB
	// D-cache, 8MB memory per node.
	if m.Node.P.ClockMHz != 40 {
		t.Errorf("clock = %g", m.Node.P.ClockMHz)
	}
	if m.Node.M.DCacheBytes != 8*1024 || m.Node.M.ICacheBytes != 4*1024 {
		t.Errorf("caches = %d/%d", m.Node.M.DCacheBytes, m.Node.M.ICacheBytes)
	}
	if m.Node.M.MainMemoryBytes != 8*1024*1024 {
		t.Errorf("memory = %d", m.Node.M.MainMemoryBytes)
	}
}

func TestSAGHierarchy(t *testing.T) {
	m := IPSC860()
	// Root → {SRM host, cube} → 8 nodes → {cpu, mem, nic}.
	if m.SAG.Root == nil || len(m.SAG.Root.Children) != 2 {
		t.Fatal("SAG root shape wrong")
	}
	if m.SAG.Find("SRM-host") == nil {
		t.Error("host SAU missing from SAG")
	}
	if m.SAG.Find("node-7") == nil || m.SAG.Find("node-7-nic") == nil {
		t.Error("node decomposition missing")
	}
	if m.SAG.Find("nope") != nil {
		t.Error("Find should return nil for unknown names")
	}
	d := m.SAG.Dump()
	if !strings.Contains(d, "i860-cube") || strings.Count(d, "node-") < 8 {
		t.Errorf("dump:\n%s", d)
	}
}

func TestCyclesToUS(t *testing.T) {
	p := &Processing{ClockMHz: 40}
	if got := p.CyclesToUS(80); got != 2 {
		t.Errorf("80 cycles at 40MHz = %gus, want 2", got)
	}
}

func TestMsgTimeProtocolSwitch(t *testing.T) {
	c := IPSC860().Node.C
	short := c.MsgTimeUS(50, 1)
	long := c.MsgTimeUS(150, 1)
	if long <= short {
		t.Error("long message must cost more")
	}
	// Startup jump at the threshold.
	below := c.MsgTimeUS(c.LongThresholdBytes, 1)
	above := c.MsgTimeUS(c.LongThresholdBytes+1, 1)
	if above-below < c.LongStartupUS-c.ShortStartupUS-1 {
		t.Errorf("protocol switch jump %g too small", above-below)
	}
}

func TestMsgTimeHops(t *testing.T) {
	c := IPSC860().Node.C
	h1 := c.MsgTimeUS(100, 1)
	h3 := c.MsgTimeUS(100, 3)
	if h3-h1 != 2*c.PerHopUS {
		t.Errorf("hop cost = %g, want %g", h3-h1, 2*c.PerHopUS)
	}
	if c.MsgTimeUS(-5, 1) != c.MsgTimeUS(0, 1) {
		t.Error("negative sizes should clamp to zero")
	}
}

func TestHypercubeHops(t *testing.T) {
	cases := [][3]int{{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {0, 7, 3}, {5, 6, 2}}
	for _, c := range cases {
		if got := HypercubeHops(c[0], c[1]); got != c[2] {
			t.Errorf("hops(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestHypercubeHopsSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a%8), int(b%8)
		return HypercubeHops(x, y) == HypercubeHops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCubeDimAndLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3}
	for n, want := range cases {
		if got := CubeDim(n); got != want {
			t.Errorf("CubeDim(%d) = %d, want %d", n, got, want)
		}
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIntrinsicCostsPresent(t *testing.T) {
	p := IPSC860().Node.P
	for _, name := range []string{"SQRT", "EXP", "LOG", "SIN", "COS", "MOD", "INT"} {
		if p.IntrinsicCycles[name] <= 0 {
			t.Errorf("missing intrinsic cost for %s", name)
		}
	}
	// Transcendentals must dominate simple ops.
	if p.IntrinsicCycles["EXP"] < 10*p.FMulCycles {
		t.Error("EXP should cost much more than a multiply")
	}
}

func TestParagonMachine(t *testing.T) {
	m := ParagonXPS()
	if m.Node == nil || m.Node.C == nil {
		t.Fatal("paragon node incomplete")
	}
	ipsc := IPSC860()
	// The successor machine is faster in every first-order respect.
	if m.Node.P.ClockMHz <= ipsc.Node.P.ClockMHz {
		t.Error("paragon should clock higher")
	}
	if m.Node.C.PerByteUS >= ipsc.Node.C.PerByteUS {
		t.Error("paragon links should be faster")
	}
	if m.Node.C.ShortStartupUS >= ipsc.Node.C.ShortStartupUS {
		t.Error("paragon latency should be lower")
	}
	if m.Node.M.DCacheBytes <= ipsc.Node.M.DCacheBytes {
		t.Error("paragon cache should be larger")
	}
}

func TestMachineByName(t *testing.T) {
	if m, err := MachineByName(""); err != nil || m.Name != "iPSC/860" {
		t.Errorf("default machine = %v, %v", m, err)
	}
	if m, err := MachineByName("PARAGON"); err != nil || m.Name != "Paragon XP/S" {
		t.Errorf("paragon lookup = %v, %v", m, err)
	}
	if _, err := MachineByName("cray"); err == nil {
		t.Error("want error for unknown machine")
	}
	names := MachineNames()
	if len(names) != 2 || names[0] != "ipsc860" {
		t.Errorf("names = %v", names)
	}
}

func TestIPSC860Sized(t *testing.T) {
	m, err := IPSC860Sized(64)
	if err != nil || m.MaxNodes != 64 {
		t.Fatalf("sized cube: %v %v", m, err)
	}
	for _, bad := range []int{0, 3, 256} {
		if _, err := IPSC860Sized(bad); err == nil {
			t.Errorf("size %d should be rejected", bad)
		}
	}
}

func TestMachineByNameSized(t *testing.T) {
	m, err := MachineByName("ipsc860:32")
	if err != nil || m.MaxNodes != 32 {
		t.Fatalf("sized lookup: %v %v", m, err)
	}
	if _, err := MachineByName("ipsc860:7"); err == nil {
		t.Error("non-power-of-two cube should be rejected")
	}
	if _, err := MachineByName("ipsc860:x"); err == nil {
		t.Error("bad suffix should be rejected")
	}
	p, err := MachineByName("paragon:16")
	if err != nil || p.MaxNodes != 16 {
		t.Fatalf("paragon sized: %v %v", p, err)
	}
}
