// Package hpfperf is a source-driven performance prediction framework for
// HPF/Fortran 90D programs, reproducing "Interpreting the Performance of
// HPF/Fortran 90D" (Parashar, Hariri, Haupt, Fox — Supercomputing '94).
//
// The framework compiles an HPF/Fortran 90D program into a loosely
// synchronous SPMD node program (the paper's phase 1), abstracts it into
// a Synchronized Application Abstraction Graph, and interprets its
// performance against a hierarchical System Abstraction Graph of the
// target machine — an 8-node iPSC/860 hypercube — without executing it
// (the paper's phase 2). A detailed machine simulator stands in for the
// physical iPSC/860, providing the "measured" times the paper compares
// against.
//
// Basic use:
//
//	prog, err := hpfperf.Compile(src)
//	pred, err := hpfperf.Predict(prog, nil)     // interpretation
//	meas, err := hpfperf.Measure(prog, nil)     // simulated execution
//	fmt.Println(pred.Profile(), meas.Seconds())
package hpfperf

import (
	"context"
	"fmt"
	"io"

	"hpfperf/internal/analysis"
	"hpfperf/internal/autotune"
	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/corpus"
	"hpfperf/internal/exec"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
	"hpfperf/internal/obs"
	"hpfperf/internal/report"
	"hpfperf/internal/sem"
	"hpfperf/internal/suite"
	"hpfperf/internal/sweep"
	"hpfperf/internal/sysmodel"
	"hpfperf/internal/trace"
)

// Program is a compiled HPF/Fortran 90D program: the SPMD node program
// plus its data mapping information.
type Program struct {
	hir *hir.Program
}

// Compile parses, analyzes and compiles HPF/Fortran 90D source text
// through the five compilation steps of the framework's phase 1.
func Compile(src string) (*Program, error) {
	return CompileContext(context.Background(), src)
}

// CompileContext is Compile under a context. When the context carries
// an active obs trace (see internal/obs), the compilation phases record
// as spans: compile > {parse, sem > partition, comm-insert}.
func CompileContext(ctx context.Context, src string) (*Program, error) {
	p, err := compiler.CompileWithContext(ctx, src, compiler.Options{})
	if err != nil {
		return nil, err
	}
	return &Program{hir: p}, nil
}

// CompileOptions expose the generated-code optimizations of §4.2, which
// "can be turned on/off by the user".
type CompileOptions struct {
	// NoCommOpt disables redundant-communication elimination.
	NoCommOpt bool
	// NoLoopReorder disables cache-locality loop re-ordering.
	NoLoopReorder bool
}

// CompileWith compiles with explicit optimization options.
func CompileWith(src string, opts CompileOptions) (*Program, error) {
	p, err := compiler.CompileWith(src, compiler.Options{
		NoCommOpt:     opts.NoCommOpt,
		NoLoopReorder: opts.NoLoopReorder,
	})
	if err != nil {
		return nil, err
	}
	return &Program{hir: p}, nil
}

// Name returns the PROGRAM unit name.
func (p *Program) Name() string { return p.hir.Name }

// Processors returns the number of abstract processors the program is
// mapped onto (the size of its PROCESSORS arrangement).
func (p *Program) Processors() int { return p.hir.Info.Grid.Size() }

// SPMD renders the compiled loosely synchronous node program (for
// inspection and debugging).
func (p *Program) SPMD() string { return p.hir.Dump() }

// Mappings lists the resolved distribution of every program array.
func (p *Program) Mappings() []string {
	var out []string
	for _, name := range sortedArrayNames(p.hir.Info) {
		out = append(out, p.hir.Info.Symbols[name].Map.String())
	}
	return out
}

func sortedArrayNames(info *sem.Info) []string {
	var names []string
	for name, s := range info.Symbols {
		if s.Kind == sem.SymArray && s.Map != nil && name[0] != '$' {
			names = append(names, name)
		}
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j-1] > names[j]; j-- {
			names[j-1], names[j] = names[j], names[j-1]
		}
	}
	return names
}

// ---------------------------------------------------------------------------
// Static analysis (hpflint)

// Diagnostic is one finding of the static-analysis layer: a stable
// machine-readable code (HPFnnnn), a severity ("info", "warning",
// "error"), the producing pass, the source line, and an optional fix
// hint. It is the element type of hpflint's -json output and of
// hpfserve's /v1/analyze response.
type Diagnostic = analysis.Diagnostic

// Severity levels of Diagnostic, re-exported for threshold filtering.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Analyze compiles HPF/Fortran 90D source and runs every registered
// static-analysis pass over it: critical-variable definition tracing
// (§4.2), communication anti-pattern lints, FORALL dependence tests,
// directive hygiene, and degenerate control-flow detection. Diagnostics
// come back ordered by source line.
func Analyze(src string) ([]Diagnostic, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(p), nil
}

// AnalyzeProgram runs the static-analysis passes over an already
// compiled program.
func AnalyzeProgram(p *Program) []Diagnostic {
	return analysis.Analyze(p.hir)
}

// ---------------------------------------------------------------------------
// Prediction (the interpretive framework)

// PredictOptions configure the interpretation engine.
type PredictOptions struct {
	// MemoryModel enables the SAU memory-hierarchy model. Default true.
	MemoryModel *bool
	// AverageLoad charges the mean (instead of maximum) per-processor
	// iteration share of distributed loops.
	AverageLoad bool
	// MaskDensity is the assumed truth density of FORALL/WHERE masks
	// (default 1.0).
	MaskDensity float64
	// SimpleCommModel replaces the piecewise (short/long protocol)
	// communication models with single linear fits (ablation).
	SimpleCommModel bool
	// TripCounts supplies loop trip counts by source line for loops whose
	// bounds cannot be traced statically.
	TripCounts map[int]int
	// IntValues supplies user-specified integer critical-variable values.
	IntValues map[string]int64
	// Machine selects the target system abstraction ("ipsc860" default,
	// "paragon"); see Machines().
	Machine string
}

func (o *PredictOptions) toCore() core.Options {
	opts := core.DefaultOptions()
	if o == nil {
		return opts
	}
	if o.MemoryModel != nil {
		opts.MemoryModel = *o.MemoryModel
	}
	if o.AverageLoad {
		opts.LoadModel = core.Average
	}
	if o.MaskDensity > 0 {
		opts.MaskDensity = o.MaskDensity
	}
	opts.SimpleCommModel = o.SimpleCommModel
	opts.TripCounts = o.TripCounts
	if len(o.IntValues) > 0 {
		opts.Values = make(map[string]sem.Value, len(o.IntValues))
		for k, v := range o.IntValues {
			opts.Values[k] = sem.IntVal(v)
		}
	}
	return opts
}

// Prediction is an interpreted performance estimate.
type Prediction struct {
	rep *core.Report
}

// Predict interprets the performance of a compiled program on the
// abstracted target machine (opts may be nil: iPSC/860 defaults).
func Predict(p *Program, opts *PredictOptions) (*Prediction, error) {
	return PredictContext(context.Background(), p, opts)
}

// PredictContext is Predict with cooperative cancellation: once ctx
// ends, the interpretation (including the off-line machine calibration
// step) stops and returns the ctx error. This is what lets a
// long-running service (cmd/hpfserve) honor per-request deadlines.
func PredictContext(ctx context.Context, p *Program, opts *PredictOptions) (*Prediction, error) {
	var machName string
	if opts != nil {
		machName = opts.Machine
	}
	mach, err := sysmodel.MachineByName(machName)
	if err != nil {
		return nil, err
	}
	ictx, span := obs.Start(ctx, "interp")
	defer span.End()
	span.SetAttrInt("procs", p.Processors())
	it, err := core.NewContext(ictx, p.hir, mach, opts.toCore())
	if err != nil {
		return nil, err
	}
	rep, err := it.Interpret()
	if err != nil {
		return nil, err
	}
	return &Prediction{rep: rep}, nil
}

// Seconds returns the predicted execution time.
func (pr *Prediction) Seconds() float64 { return pr.rep.EstimatedSeconds() }

// Microseconds returns the predicted execution time in microseconds.
func (pr *Prediction) Microseconds() float64 { return pr.rep.TotalUS() }

// Breakdown returns (computation, communication, overhead) microseconds.
func (pr *Prediction) Breakdown() (compUS, commUS, ovhdUS float64) {
	return pr.rep.Total.CompUS, pr.rep.Total.CommUS, pr.rep.Total.OvhdUS
}

// Profile renders the generic performance profile.
func (pr *Prediction) Profile() string { return report.Profile(pr.rep) }

// AAG renders the interpreted application abstraction graph down to
// maxDepth levels (0 = unlimited).
func (pr *Prediction) AAG(maxDepth int) string { return report.AAGView(pr.rep, maxDepth) }

// CommTable renders the communication table of the SAAG.
func (pr *Prediction) CommTable() string { return report.CommTable(pr.rep) }

// Line returns the metrics of one source line as a formatted string.
func (pr *Prediction) Line(line int) string { return report.LineQuery(pr.rep, line) }

// AAU returns the cumulative sub-AAG metrics of one application
// abstraction unit by its ID (IDs are visible in the AAG view).
func (pr *Prediction) AAU(id int) string { return report.AAUQuery(pr.rep, id) }

// CompiledPrediction is the closure-compiled prediction form of a
// program: the SAAG is lowered once into pre-compiled cost thunks, and
// each evaluation runs those thunks instead of re-dispatching on the
// statement tree. Build it once per program, then evaluate repeatedly
// (and concurrently) with varying critical-variable values and trip
// counts — unchanged cost subtrees are served from the form's internal
// memo, which is what makes parameter sweeps incremental.
type CompiledPrediction struct {
	cp *core.Compiled
}

// CompilePrediction lowers the program's abstraction graph into the
// compiled prediction form for the machine selected by opts (nil =
// iPSC/860 defaults). Static options (memory model, load model, mask
// density, comm model, machine) are bound at compile time; IntValues
// and TripCounts act as defaults that EvaluateWith can override per
// evaluation.
func (p *Program) CompilePrediction(opts *PredictOptions) (*CompiledPrediction, error) {
	return p.CompilePredictionContext(context.Background(), opts)
}

// CompilePredictionContext is CompilePrediction with cooperative
// cancellation of the machine-calibration step.
func (p *Program) CompilePredictionContext(ctx context.Context, opts *PredictOptions) (*CompiledPrediction, error) {
	var machName string
	if opts != nil {
		machName = opts.Machine
	}
	mach, err := sysmodel.MachineByName(machName)
	if err != nil {
		return nil, err
	}
	cp, err := core.CompilePrediction(ctx, p.hir, mach, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &CompiledPrediction{cp: cp}, nil
}

// Evaluate runs the compiled prediction under the values and trip
// counts bound at compile time. The result is byte-identical to
// Predict with the same options.
func (cp *CompiledPrediction) Evaluate() (*Prediction, error) {
	rep, err := cp.cp.Evaluate(context.Background())
	if err != nil {
		return nil, err
	}
	return &Prediction{rep: rep}, nil
}

// EvaluateWith re-evaluates the prediction under new critical-variable
// values and trip counts (both may be nil), reusing memoized subtree
// costs whose resolved inputs are unchanged.
func (cp *CompiledPrediction) EvaluateWith(intValues map[string]int64, tripCounts map[int]int) (*Prediction, error) {
	return cp.EvaluateWithContext(context.Background(), intValues, tripCounts)
}

// EvaluateWithContext is EvaluateWith with cooperative cancellation.
func (cp *CompiledPrediction) EvaluateWithContext(ctx context.Context, intValues map[string]int64, tripCounts map[int]int) (*Prediction, error) {
	var values map[string]sem.Value
	if len(intValues) > 0 {
		values = make(map[string]sem.Value, len(intValues))
		for k, v := range intValues {
			values[k] = sem.IntVal(v)
		}
	}
	rep, err := cp.cp.EvaluateWith(ctx, values, tripCounts)
	if err != nil {
		return nil, err
	}
	return &Prediction{rep: rep}, nil
}

// CriticalVariable reports one variable whose value affects control flow
// (§4.2: loop limits, branch conditions, shift amounts).
type CriticalVariable struct {
	Name  string
	Lines []int
	Uses  int
}

// CriticalVariables identifies the critical variables of a compiled
// program. Unresolvable ones must be supplied to Predict through
// PredictOptions.IntValues or TripCounts.
func (p *Program) CriticalVariables() []CriticalVariable {
	var out []CriticalVariable
	for _, cv := range core.CriticalVariables(p.hir) {
		out = append(out, CriticalVariable{Name: cv.Name, Lines: cv.Lines, Uses: cv.Uses})
	}
	return out
}

// HotLines lists the top-n source lines by predicted time.
func (pr *Prediction) HotLines(n int) string { return report.HotLines(pr.rep, n) }

// Phase is a named source-line range for per-phase profiling.
type Phase = report.Phase

// PhaseProfile renders the per-phase profile (application performance
// debugging, §5.2.2).
func (pr *Prediction) PhaseProfile(title string, phases []Phase) string {
	return report.RenderPhaseProfile(title, report.PhaseProfile(pr.rep, phases))
}

// PhaseMetrics returns (comp, comm, ovhd) microseconds for a line range.
func (pr *Prediction) PhaseMetrics(fromLine, toLine int) (compUS, commUS, ovhdUS float64) {
	m := pr.rep.LineRangeMetrics(fromLine, toLine)
	return m.CompUS, m.CommUS, m.OvhdUS
}

// Warnings returns interpretation warnings (unresolved branches etc.).
func (pr *Prediction) Warnings() []string { return pr.rep.Warnings }

// WriteTrace emits a ParaGraph-compatible interpretation trace.
func (pr *Prediction) WriteTrace(w io.Writer) error {
	return trace.FromReport(pr.rep).Write(w)
}

// ---------------------------------------------------------------------------
// Measurement (simulated iPSC/860 execution)

// MeasureOptions configure simulated execution.
type MeasureOptions struct {
	// Runs is the number of perturbed timed runs to average (default 1).
	Runs int
	// Perturb is the load-fluctuation amplitude (default 0.01; set
	// negative for 0).
	Perturb float64
	// Seed drives the deterministic noise generator.
	Seed int64
	// CacheModel can disable the simulator's cache model (default on).
	CacheModel *bool
	// Machine selects the simulated system ("ipsc860" default, "paragon").
	Machine string
}

// Measurement is the result of executing a program on the simulated
// machine.
type Measurement struct {
	res *exec.Result
}

// Measure executes the compiled program on the simulated iPSC/860
// (opts may be nil for defaults).
func Measure(p *Program, opts *MeasureOptions) (*Measurement, error) {
	return MeasureContext(context.Background(), p, opts)
}

// MeasureContext is Measure with cooperative cancellation: the
// simulator's statement loop observes ctx, so a timed-out request
// escapes mid-run instead of simulating to completion.
func MeasureContext(ctx context.Context, p *Program, opts *MeasureOptions) (*Measurement, error) {
	cfg := ipsc.DefaultConfig(p.Processors())
	runs := 1
	if opts != nil && opts.Machine != "" {
		base, err := sysmodel.MachineByName(opts.Machine)
		if err != nil {
			return nil, err
		}
		cfg.Base = base
	}
	if opts != nil {
		if opts.Perturb > 0 {
			cfg.PerturbAmp = opts.Perturb
		} else if opts.Perturb < 0 {
			cfg.PerturbAmp = 0
			cfg.TimerResUS = 0
		}
		if opts.Seed != 0 {
			cfg.Seed = opts.Seed
		}
		if opts.CacheModel != nil {
			cfg.CacheModel = *opts.CacheModel
		}
		if opts.Runs > 0 {
			runs = opts.Runs
		}
	}
	m, err := ipsc.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := exec.RunContext(ctx, p.hir, m, exec.Options{Runs: runs})
	if err != nil {
		return nil, err
	}
	return &Measurement{res: res}, nil
}

// Seconds returns the measured execution time.
func (m *Measurement) Seconds() float64 { return m.res.MeasuredUS / 1e6 }

// Microseconds returns the measured execution time in microseconds.
func (m *Measurement) Microseconds() float64 { return m.res.MeasuredUS }

// Runs returns the individual run times in microseconds.
func (m *Measurement) Runs() []float64 { return m.res.RunsUS }

// Printed returns the program's list-directed output lines.
func (m *Measurement) Printed() []string { return m.res.Printed }

// PerNode returns the final per-node clocks in microseconds.
func (m *Measurement) PerNode() []float64 { return m.res.PerNodeUS }

// ---------------------------------------------------------------------------
// Directive selection (§5.2.1)

// Candidate is one directive/distribution alternative of a program.
type Candidate struct {
	Name   string
	Source string
}

// Ranked is a candidate with its prediction.
type Ranked struct {
	Candidate
	Prediction *Prediction
}

// SelectDistribution predicts every candidate and returns them ranked by
// predicted execution time, best first — the building block of the
// "intelligent compiler" the paper proposes (§5.2.1, §7). Candidates are
// evaluated concurrently on the shared sweep engine; repeated sources
// are compiled once.
func SelectDistribution(cands []Candidate, opts *PredictOptions) ([]Ranked, error) {
	return SelectDistributionContext(context.Background(), cands, opts)
}

// SelectDistributionContext is SelectDistribution with cooperative
// cancellation of the candidate sweep.
func SelectDistributionContext(ctx context.Context, cands []Candidate, opts *PredictOptions) ([]Ranked, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("hpfperf: no candidates")
	}
	eng := sweep.Default()
	out, err := sweep.MapCtx(ctx, eng, len(cands), func(i int) (Ranked, error) {
		c := cands[i]
		prog, err := eng.CompileContext(ctx, c.Source, compiler.Options{})
		if err != nil {
			return Ranked{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		pred, err := PredictContext(ctx, &Program{hir: prog}, opts)
		if err != nil {
			return Ranked{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		return Ranked{Candidate: c, Prediction: pred}, nil
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Prediction.Microseconds() > out[j].Prediction.Microseconds(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Automatic directive selection (the "intelligent compiler" of paper section 7)

// AutoCandidate is one automatically generated directive variant.
type AutoCandidate struct {
	// Desc describes the variant, e.g. "T(BLOCK,*) onto P(4)".
	Desc string
	// Source is the program rewritten with the variant's directives.
	Source string
	// EstUS is the predicted execution time in microseconds (a huge
	// sentinel when the variant was rejected).
	EstUS float64
	// Err explains a rejected variant.
	Err error
}

// AutoDistributeOptions configure the automatic search.
type AutoDistributeOptions struct {
	// NoCyclic restricts formats to BLOCK and '*'.
	NoCyclic bool
	// Predict configures the interpretation of each variant.
	Predict *PredictOptions
}

// AutoDistribute enumerates PROCESSORS/DISTRIBUTE directive variants of
// an HPF/Fortran 90D program for the given processor count, interprets
// each, and returns them ranked by predicted execution time - the
// intelligent-compiler capability the paper proposes as future work.
// The first candidate's Source is the recommended program.
func AutoDistribute(src string, procs int, opts *AutoDistributeOptions) ([]AutoCandidate, error) {
	return AutoDistributeContext(context.Background(), src, procs, opts)
}

// AutoDistributeContext is AutoDistribute with cooperative cancellation
// of the directive-variant sweep.
func AutoDistributeContext(ctx context.Context, src string, procs int, opts *AutoDistributeOptions) ([]AutoCandidate, error) {
	var aOpts autotune.Options
	aOpts.Procs = procs
	if opts != nil {
		aOpts.NoCyclic = opts.NoCyclic
		aOpts.Interp = opts.Predict.toCore()
	} else {
		aOpts.Interp = (*PredictOptions)(nil).toCore()
	}
	cands, err := autotune.SearchContext(ctx, src, aOpts)
	if err != nil {
		return nil, err
	}
	out := make([]AutoCandidate, 0, len(cands))
	for _, c := range cands {
		out = append(out, AutoCandidate{Desc: c.Desc(), Source: c.Source, EstUS: c.EstUS, Err: c.Err})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sweep engine statistics

// SweepStats is a snapshot of the shared sweep engine's per-stage
// counters: compile/interpret/execute runs and wall-times, cache
// hits/misses and points-per-second throughput.
type SweepStats = sweep.Snapshot

// SweepStatistics returns a snapshot of the shared sweep engine that
// backs SelectDistribution, AutoDistribute and the experiment harness.
func SweepStatistics() SweepStats { return sweep.Default().Snapshot() }

// ResetSweepStatistics zeroes the shared engine's counters (the cache
// itself is retained).
func ResetSweepStatistics() { sweep.Default().Stats().Reset() }

// ---------------------------------------------------------------------------
// Benchmark suite access

// SuiteProgram describes one program of the paper's validation set
// (Table 1).
type SuiteProgram struct {
	Name        string
	Description string
	Class       string
	Sizes       []int
	Procs       []int
	source      func(size, procs int) string
}

// Source renders the program for a problem size and processor count.
func (s SuiteProgram) Source(size, procs int) string { return s.source(size, procs) }

// Suite returns the paper's validation application set.
func Suite() []SuiteProgram {
	var out []SuiteProgram
	for _, p := range suite.All() {
		out = append(out, SuiteProgram{
			Name: p.Name, Description: p.Description, Class: p.Class,
			Sizes: p.Sizes, Procs: p.Procs, source: p.Source,
		})
	}
	return out
}

// Machines lists the available target system abstractions.
func Machines() []string { return sysmodel.MachineNames() }

// ---------------------------------------------------------------------------
// Kernel corpus generation and differential validation

// CorpusProgram is one generated benchmark-kernel program.
type CorpusProgram = corpus.Program

// CorpusReport is the validation report of a corpus run: per-program
// rows in the HPL metrics shape (N/NB/P/Q/time/Gflops + validity) plus
// per-family aggregates.
type CorpusReport = corpus.Report

// CorpusOptions configure GenerateCorpus / ValidateCorpus.
type CorpusOptions struct {
	// Kernel restricts generation to one family ("stencil1d",
	// "stencil2d", "relax", "lu", "fft", "nbody"); "" round-robins all.
	Kernel string
	// CheckpointPath enables durable progress: a killed validation run
	// resumes from this file with byte-identical results.
	CheckpointPath string
}

// GenerateCorpus deterministically generates n benchmark-kernel
// programs from seed: stencils, relaxation sweeps, blocked LU on
// block-cyclic columns, FFT butterflies and systolic N-body, composed
// from parameterized templates over the accepted HPF subset. The same
// (seed, options) always yields the same programs.
func GenerateCorpus(seed int64, n int, opts *CorpusOptions) ([]CorpusProgram, error) {
	if opts != nil && opts.Kernel != "" {
		fam, err := corpus.FamilyByName(opts.Kernel)
		if err != nil {
			return nil, err
		}
		return corpus.GenerateFamily(seed, fam, n), nil
	}
	return corpus.Generate(seed, n), nil
}

// ValidateCorpus generates a corpus and drives every program through
// the differential validation harness: compile + lint clean at error
// severity, bit-identical tree-walking vs closure-compiled prediction
// reports, and prediction within the per-kernel relative-error bound of
// the deterministic simulated execution.
func ValidateCorpus(ctx context.Context, seed int64, n int, opts *CorpusOptions) (*CorpusReport, error) {
	progs, err := GenerateCorpus(seed, n, opts)
	if err != nil {
		return nil, err
	}
	vopts := corpus.Options{}
	if opts != nil && opts.CheckpointPath != "" {
		kernel := ""
		if opts != nil {
			kernel = opts.Kernel
		}
		vopts.Checkpoint = &sweep.Checkpoint{
			Path: opts.CheckpointPath,
			Key:  fmt.Sprintf("hpfgen-seed%d-n%d-kernel%s", seed, n, kernel),
		}
	}
	return corpus.Validate(ctx, progs, vopts)
}

// SuiteProgramByName returns the named suite program.
func SuiteProgramByName(name string) (SuiteProgram, error) {
	p := suite.ByName(name)
	if p == nil {
		return SuiteProgram{}, fmt.Errorf("hpfperf: unknown suite program %q", name)
	}
	return SuiteProgram{
		Name: p.Name, Description: p.Description, Class: p.Class,
		Sizes: p.Sizes, Procs: p.Procs, source: p.Source,
	}, nil
}
