package analysis

import (
	"fmt"

	"hpfperf/internal/ast"
	"hpfperf/internal/sem"
	"hpfperf/internal/token"
)

// forallPass applies classic ZIV/SIV subscript dependence tests to every
// FORALL: when a statement assigns A(f(i)) while reading A(g(i)), a
// nonzero dependence distance means the FORALL's evaluate-all-then-assign
// semantics differ from a plain loop — the compiler must double-buffer,
// and every such statement carries a hidden full-array copy (and often a
// shift) in the predicted profile. Subscripts the tests cannot classify
// are flagged as unprovable rather than silently assumed independent.
//
// Codes: HPF0201 loop-carried dependence (forces double-buffering),
// HPF0202 independence not provable by ZIV/SIV tests.
type forallPass struct{}

func (forallPass) Name() string { return "forall-deps" }

func (forallPass) Run(u *Unit) []Diagnostic {
	info := u.Prog.Info
	var out []Diagnostic
	var walkStmts func(ss []ast.Stmt)
	walkStmts = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *ast.DoStmt:
				walkStmts(x.Body)
			case *ast.DoWhileStmt:
				walkStmts(x.Body)
			case *ast.IfStmt:
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *ast.WhereStmt:
				walkStmts(x.Body)
				walkStmts(x.ElseBody)
			case *ast.ForallStmt:
				out = append(out, checkForall(info, x)...)
				walkStmts(x.Body)
			}
		}
	}
	walkStmts(info.Prog.Body)
	return out
}

// lin is an affine form c + Σ coeffs[v]*v over FORALL index variables.
type lin struct {
	coeffs map[string]int64
	c      int64
	ok     bool
}

// linearize classifies a subscript expression as affine in the FORALL
// indices, with all other terms folded through named constants.
func linearize(e ast.Expr, consts map[string]int64, idx map[string]bool) lin {
	switch x := e.(type) {
	case *ast.IntLit:
		return lin{c: x.Value, ok: true}
	case *ast.Ident:
		if idx[x.Name] {
			return lin{coeffs: map[string]int64{x.Name: 1}, ok: true}
		}
		if v, ok := consts[x.Name]; ok {
			return lin{c: v, ok: true}
		}
		return lin{}
	case *ast.UnaryExpr:
		l := linearize(x.X, consts, idx)
		if !l.ok {
			return lin{}
		}
		switch x.Op {
		case token.PLUS:
			return l
		case token.MINUS:
			return l.scale(-1)
		}
		return lin{}
	case *ast.BinaryExpr:
		a := linearize(x.X, consts, idx)
		b := linearize(x.Y, consts, idx)
		if !a.ok || !b.ok {
			return lin{}
		}
		switch x.Op {
		case token.PLUS:
			return a.add(b, 1)
		case token.MINUS:
			return a.add(b, -1)
		case token.STAR:
			if len(a.coeffs) == 0 {
				return b.scale(a.c)
			}
			if len(b.coeffs) == 0 {
				return a.scale(b.c)
			}
		}
		return lin{}
	}
	return lin{}
}

func (l lin) scale(k int64) lin {
	out := lin{c: l.c * k, ok: true}
	if len(l.coeffs) > 0 {
		out.coeffs = make(map[string]int64, len(l.coeffs))
		for v, a := range l.coeffs {
			if a*k != 0 {
				out.coeffs[v] = a * k
			}
		}
	}
	return out
}

func (l lin) add(o lin, sign int64) lin {
	out := lin{c: l.c + sign*o.c, ok: true, coeffs: make(map[string]int64)}
	for v, a := range l.coeffs {
		out.coeffs[v] = a
	}
	for v, a := range o.coeffs {
		out.coeffs[v] += sign * a
	}
	for v, a := range out.coeffs {
		if a == 0 {
			delete(out.coeffs, v)
		}
	}
	return out
}

const (
	depNone    = iota // proven independent in this dimension
	depZero           // distance 0 (same iteration)
	depCarried        // nonzero constant distance
	depUnknown        // tests cannot classify
)

// dimTest runs the ZIV / strong-SIV test on one (write, read) subscript
// pair, returning the classification and the distance for depCarried.
func dimTest(w, r lin) (int, int64) {
	if !w.ok || !r.ok {
		return depUnknown, 0
	}
	if len(w.coeffs) == 0 && len(r.coeffs) == 0 {
		// ZIV: constant subscripts.
		if w.c != r.c {
			return depNone, 0
		}
		return depZero, 0
	}
	if len(w.coeffs) == 1 && len(r.coeffs) == 1 {
		var wi, ri string
		var wa, ra int64
		for v, a := range w.coeffs {
			wi, wa = v, a
		}
		for v, a := range r.coeffs {
			ri, ra = v, a
		}
		if wi == ri && wa == ra {
			// Strong SIV: a*i + c1 vs a*i + c2; distance (c1-c2)/a.
			d := w.c - r.c
			if d%wa != 0 {
				return depNone, 0
			}
			if d == 0 {
				return depZero, 0
			}
			return depCarried, d / wa
		}
	}
	return depUnknown, 0
}

func checkForall(info *sem.Info, x *ast.ForallStmt) []Diagnostic {
	idx := make(map[string]bool, len(x.Indices))
	for _, ix := range x.Indices {
		idx[ix.Name] = true
	}
	consts := make(map[string]int64)
	for n, v := range info.Consts {
		if v.Type == ast.TInteger {
			consts[n] = v.I
		}
	}
	var out []Diagnostic
	for _, s := range x.Body {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		w, ok := as.Lhs.(*ast.CallOrIndex)
		if !ok || w.Resolved != ast.RefArray {
			continue
		}
		line := as.Pos().Line
		if line == 0 {
			line = x.ForPos.Line
		}
		wsubs := make([]lin, len(w.Args))
		for i, a := range w.Args {
			wsubs[i] = linearize(a, consts, idx)
		}
		var reads []*ast.CallOrIndex
		var collect func(e ast.Expr)
		collect = func(e ast.Expr) {
			switch t := e.(type) {
			case *ast.CallOrIndex:
				if t.Resolved == ast.RefArray && t.Name == w.Name && len(t.Args) == len(w.Args) {
					reads = append(reads, t)
				}
				for _, a := range t.Args {
					collect(a)
				}
			case *ast.BinaryExpr:
				collect(t.X)
				collect(t.Y)
			case *ast.UnaryExpr:
				collect(t.X)
			case *ast.Section:
				for _, p := range []ast.Expr{t.Lo, t.Hi, t.Stride} {
					if p != nil {
						collect(p)
					}
				}
			}
		}
		collect(as.Rhs)
		if x.Mask != nil {
			collect(x.Mask)
		}
		unknown := false
		var maxDist int64
		for _, r := range reads {
			kind, d := refTest(wsubs, r, consts, idx)
			switch kind {
			case depUnknown:
				unknown = true
			case depCarried:
				if d < 0 {
					d = -d
				}
				if d > maxDist {
					maxDist = d
				}
			}
		}
		switch {
		case maxDist > 0:
			out = append(out, Diagnostic{
				Code:     "HPF0201",
				Severity: SevWarning,
				Line:     line,
				Message:  fmt.Sprintf("FORALL assignment to %s reads %s at a loop-carried dependence distance of %d: evaluate-then-assign semantics force a double-buffer copy of the array", w.Name, w.Name, maxDist),
				Hint:     "assign into a separate destination array to make the copy explicit (or use a DO loop if loop-carried semantics are intended)",
			})
		case unknown:
			out = append(out, Diagnostic{
				Code:     "HPF0202",
				Severity: SevWarning,
				Line:     line,
				Message:  fmt.Sprintf("cannot prove FORALL independence for %s: subscripts are not affine in the FORALL indices", w.Name),
				Hint:     "keep subscripts of the assigned array affine (a*index + c) so dependence tests apply",
			})
		}
	}
	return out
}

// refTest aggregates the per-dimension tests for one (write, read) pair
// of references to the same array: independence in any dimension proves
// the whole pair independent; otherwise an unknown dimension makes the
// pair unprovable, and the distance is the strongest carried dimension.
func refTest(wsubs []lin, r *ast.CallOrIndex, consts map[string]int64, idx map[string]bool) (int, int64) {
	agg, dist := depZero, int64(0)
	for i, a := range r.Args {
		rl := linearize(a, consts, idx)
		kind, d := dimTest(wsubs[i], rl)
		switch kind {
		case depNone:
			return depNone, 0
		case depUnknown:
			agg = depUnknown
		case depCarried:
			if agg != depUnknown {
				agg = depCarried
			}
			if d < 0 {
				d = -d
			}
			if d > dist {
				dist = d
			}
		}
	}
	return agg, dist
}
