package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hpfperf/internal/obs"
)

// postTraced is post with the X-HPF-Trace opt-in header (and optionally
// a client traceparent).
func postTraced(t *testing.T, url string, body any, traceparent string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-HPF-Trace", "1")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// collectSpans flattens a span tree into name -> cumulative duration.
func collectSpans(root *obs.Node) map[string]float64 {
	out := make(map[string]float64)
	root.Walk(func(_ int, n *obs.Node) { out[n.Name] += n.DurUS })
	return out
}

// checkWellFormed asserts the structural trace invariants: single root,
// no orphans, every child inside its parent's duration budget.
func checkWellFormed(t *testing.T, tree *obs.Tree) {
	t.Helper()
	if tree == nil || tree.Root == nil {
		t.Fatal("trace tree missing")
	}
	if tree.Orphans != 0 {
		t.Errorf("trace has %d orphan spans", tree.Orphans)
	}
	if tree.TraceID == "" {
		t.Error("trace has no trace ID")
	}
	tree.Root.Walk(func(_ int, n *obs.Node) {
		if n.DurUS < 0 {
			t.Errorf("span %s has negative duration %g", n.Name, n.DurUS)
		}
		// Children may run concurrently, so durations need not sum below
		// the parent's — but each must fit inside the parent's window
		// (1% + 1us slack for clock granularity).
		end := n.StartUS + n.DurUS*1.01 + 1
		for _, c := range n.Children {
			if c.StartUS+1 < n.StartUS || c.StartUS+c.DurUS > end {
				t.Errorf("span %s [%.1f..%.1f]us escapes parent %s [%.1f..%.1f]us",
					c.Name, c.StartUS, c.StartUS+c.DurUS, n.Name, n.StartUS, n.StartUS+n.DurUS)
			}
		}
	})
}

// TestPredictTraceSpanTree is the tentpole acceptance check: a traced
// predict on the Laplace example returns a well-formed span tree whose
// compile+interp durations account for the reported request latency
// (within 10% on a cache-miss request).
func TestPredictTraceSpanTree(t *testing.T) {
	const tries = 5
	var lastErr string
	for attempt := 0; attempt < tries; attempt++ {
		_, ts := newTestServer(t, Config{})
		resp, body := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": bigSource(10)}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d: %s", resp.StatusCode, body)
		}
		var out PredictResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.RequestID == "" || out.TraceID == "" {
			t.Fatalf("missing correlation IDs: %+v", out.ResponseMeta)
		}
		checkWellFormed(t, out.Trace)
		if got := out.Trace.Root.Name; got != "server.predict" {
			t.Fatalf("root span = %q, want server.predict", got)
		}
		spans := collectSpans(out.Trace.Root)
		for _, want := range []string{"compile", "parse", "sem", "partition", "comm-insert", "interp", "cache.lookup"} {
			if _, ok := spans[want]; !ok {
				t.Fatalf("span %q missing from trace (have %v)", want, keys(spans))
			}
		}
		// interp.<kind> child spans decompose the interpretation.
		var kindSpans int
		for name := range spans {
			if strings.HasPrefix(name, "interp.") {
				kindSpans++
			}
		}
		if kindSpans == 0 {
			t.Fatalf("no interp.<aau-kind> spans in trace (have %v)", keys(spans))
		}
		// The phase decomposition accounts for the reported latency.
		sum := spans["compile"] + spans["interp"]
		if out.ElapsedUS <= 0 {
			t.Fatalf("elapsed_us = %g", out.ElapsedUS)
		}
		ratio := sum / out.ElapsedUS
		if ratio >= 0.9 && ratio <= 1.01 {
			return // acceptance met
		}
		lastErr = strings.TrimSpace(
			strings.Join([]string{"compile+interp spans sum to", js(sum), "us vs elapsed", js(out.ElapsedUS), "us"}, " "))
	}
	t.Fatalf("span durations never accounted for request latency in %d attempts: %s", tries, lastErr)
}

func js(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestUntracedRequestHasIDsButNoTree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-HPF-Request-Id") == "" {
		t.Error("missing X-HPF-Request-Id header")
	}
	if resp.Header.Get("traceparent") == "" {
		t.Error("missing traceparent header")
	}
	var out PredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID == "" || out.TraceID == "" {
		t.Errorf("untraced response lost correlation IDs: %+v", out.ResponseMeta)
	}
	if out.Trace != nil {
		t.Error("untraced response carries a span tree")
	}
}

func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	clientID := obs.NewTraceID()
	tp := obs.FormatTraceparent(clientID)
	resp, body := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram}, tp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	var out PredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != clientID {
		t.Errorf("trace_id = %q, want client-supplied %q", out.TraceID, clientID)
	}
	if got := resp.Header.Get("traceparent"); !strings.Contains(got, clientID) {
		t.Errorf("traceparent response header %q does not carry trace ID %q", got, clientID)
	}
	// A malformed traceparent falls back to a fresh server-minted ID.
	resp2, body2 := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram}, "garbage")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp2.StatusCode, body2)
	}
	var out2 PredictResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if len(out2.TraceID) != 32 {
		t.Errorf("fallback trace_id = %q, want fresh 32-hex ID", out2.TraceID)
	}
}

func TestTracesRing(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 4, ExposeTraces: true})
	for i := 0; i < 6; i++ {
		resp, body := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces: %d", resp.StatusCode)
	}
	var out TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(out.Traces))
	}
	for i, rec := range out.Traces {
		if rec.Route != "predict" || rec.Status != http.StatusOK {
			t.Errorf("trace %d: route=%q status=%d", i, rec.Route, rec.Status)
		}
		checkWellFormed(t, rec.Tree)
		if i > 0 && rec.Start.After(out.Traces[i-1].Start) {
			t.Errorf("traces not newest-first at index %d", i)
		}
	}
	// POST is rejected on the traces endpoint, with correlation IDs on
	// the refusal like every other response path.
	presp, pbody := post(t, ts.URL+"/v1/traces", map[string]any{})
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/traces = %d, want 405", presp.StatusCode)
	}
	var perr ErrorResponse
	if err := json.Unmarshal(pbody, &perr); err != nil {
		t.Fatalf("decode 405 body: %v", err)
	}
	if perr.RequestID == "" || perr.TraceID == "" {
		t.Errorf("405 refusal lost correlation IDs: %+v", perr)
	}
}

// TestTracesHiddenByDefault pins the isolation contract: without
// Config.ExposeTraces the ring is not reachable on the public mux
// (hpfserve mounts TracesHandler on -debug-addr instead, next to
// pprof).
func TestTracesHiddenByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	gresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/traces on public mux = %d, want 404", gresp.StatusCode)
	}
	// The ring is still populated and served by the standalone handler.
	dbg := httptest.NewServer(s.TracesHandler())
	defer dbg.Close()
	tresp, err := http.Get(dbg.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var out TracesResponse
	if err := json.NewDecoder(tresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Errorf("debug handler served %d traces, want 1", len(out.Traces))
	}
}

func TestTraceAllConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceAll: true, ExposeTraces: true})
	// No opt-in header: the tree must land in the ring but stay out of
	// the response body.
	resp, body := post(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	var out PredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != nil {
		t.Error("trace-all inlined a tree without the opt-in header")
	}
	tresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var traces TracesResponse
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("trace-all recorded nothing in the ring")
	}
	checkWellFormed(t, traces.Traces[0].Tree)
}

// scrape fetches /metrics with the given Accept header and returns the
// response content type and body text.
func scrape(t *testing.T, url, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.Header.Get("Content-Type"), buf.String()
}

// TestMetricsExemplars pins the exposition-format contract: exemplars
// (which only the OpenMetrics format may carry) appear exactly when
// the scraper negotiates OpenMetrics via Accept; the default classic
// Prometheus text format stays exemplar-free so its parser never sees
// a `#` after a sample value.
func TestMetricsExemplars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postTraced(t, ts.URL+"/v1/predict", map[string]any{"source": tinyProgram}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	var out PredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	// A classic text-format scrape must carry no exemplars: every
	// non-comment line is exactly `name{labels} value`.
	ctype, text := scrape(t, ts.URL, "")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("default scrape content type = %q, want text/plain", ctype)
	}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "#") && strings.Contains(line, "# {") {
			t.Errorf("classic-format line carries an exemplar: %s", line)
		}
	}
	if strings.Contains(text, "# EOF") {
		t.Error("classic-format scrape carries an OpenMetrics EOF marker")
	}

	// An OpenMetrics scrape carries the exemplar and the EOF marker.
	ctype, text = scrape(t, ts.URL, "application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Errorf("openmetrics scrape content type = %q", ctype)
	}
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Error("openmetrics scrape does not end with # EOF")
	}
	if !strings.Contains(text, `# {trace_id="`+out.TraceID+`"}`) {
		t.Errorf("openmetrics scrape carries no exemplar for trace %s", out.TraceID)
	}
	// The exemplar rides a predict histogram bucket line.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `hpfserve_request_duration_seconds_bucket{route="predict"`) &&
			strings.Contains(line, "# {trace_id=") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no predict bucket line carries an exemplar")
	}
}
