package compiler

import (
	"fmt"

	"hpfperf/internal/analysis/dep"
	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
	"hpfperf/internal/token"
)

// lowerForall sequentializes a FORALL statement or construct into
// owner-computes partitioned loop nests (§4.3 of the paper, Figure 2):
// a communication level fetching off-processor data, a local computation
// level, and (via write buffering) a final level writing computed values.
func (lw *lowerer) lowerForall(x *ast.ForallStmt, env *idxEnv) ([]hir.Stmt, error) {
	var out []hir.Stmt
	type trip struct{ lo, hi, step hir.Expr }
	trips := make([]trip, len(x.Indices))
	for i, ix := range x.Indices {
		lo, p, err := lw.lowerScalarExpr(ix.Lo, env)
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		hi, p2, err := lw.lowerScalarExpr(ix.Hi, env)
		if err != nil {
			return nil, err
		}
		out = append(out, p2...)
		var step hir.Expr = &hir.Const{Val: sem.IntVal(1)}
		if ix.Stride != nil {
			var p3 []hir.Stmt
			step, p3, err = lw.lowerScalarExpr(ix.Stride, env)
			if err != nil {
				return nil, err
			}
			out = append(out, p3...)
		}
		trips[i] = trip{lo, hi, step}
	}

	// A proven INDEPENDENT annotation lets every body nest skip the
	// double-buffer copy (no iteration reads another iteration's write).
	noBuffer := x.Independent && lw.verifyIndependentForall(x) == dep.Proven

	// Each body assignment is an independent forall (construct semantics:
	// statements complete in sequence).
	for _, body := range x.Body {
		as, ok := body.(*ast.AssignStmt)
		if !ok {
			return nil, lw.errf(body.Pos(), "FORALL body must contain only assignments")
		}
		ctx := newNestCtx(lw, env, as.Pos().Line)
		ctx.noBuffer = noBuffer
		for _, ix := range x.Indices {
			ctx.addIndex(ix.Name)
		}
		bounds := make([][3]hir.Expr, len(x.Indices))
		for i := range x.Indices {
			bounds[i] = [3]hir.Expr{trips[i].lo, trips[i].hi, trips[i].step}
		}
		stmts, err := lw.lowerNestAssign(ctx, as, x.Mask, bounds, "FORALL")
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

// lowerWhere lowers a WHERE statement/construct: each branch assignment is
// a masked array assignment (§4.3: WHERE is a special case of forall).
func (lw *lowerer) lowerWhere(x *ast.WhereStmt, env *idxEnv) ([]hir.Stmt, error) {
	var out []hir.Stmt
	for _, body := range x.Body {
		as, ok := body.(*ast.AssignStmt)
		if !ok {
			return nil, lw.errf(body.Pos(), "WHERE body must contain only array assignments")
		}
		stmts, err := lw.lowerArrayAssign(as, x.Mask, env, "WHERE")
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	if len(x.ElseBody) > 0 {
		neg := &ast.UnaryExpr{Op: token.NOT, X: x.Mask, OpPos: x.Pos()}
		lw.info.Types[neg] = ast.TLogical
		if s := lw.info.Shapes[x.Mask]; s != nil {
			lw.info.Shapes[neg] = s
		}
		for _, body := range x.ElseBody {
			as, ok := body.(*ast.AssignStmt)
			if !ok {
				return nil, lw.errf(body.Pos(), "ELSEWHERE body must contain only array assignments")
			}
			stmts, err := lw.lowerArrayAssign(as, neg, env, "WHERE")
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		}
	}
	return out, nil
}

// lowerArrayAssign normalizes an array(-section) assignment (optionally
// masked, for WHERE) into an equivalent forall nest with synthetic
// positional indices.
func (lw *lowerer) lowerArrayAssign(as *ast.AssignStmt, mask ast.Expr, env *idxEnv, label string) ([]hir.Stmt, error) {
	if mask == nil {
		if stmts, ok, err := lw.directShiftAssign(as, env); err != nil || ok {
			return stmts, err
		}
	}
	ctx := newNestCtx(lw, env, as.Pos().Line)

	var lhsName string
	var lhsDescs []accessDesc
	var bounds [][3]hir.Expr

	one := &hir.Const{Val: sem.IntVal(1)}
	switch lhs := as.Lhs.(type) {
	case *ast.Ident:
		sym := lw.info.Sym(lhs.Name)
		lhsName = lhs.Name
		for d, b := range sym.Bounds {
			lw.tmpN++
			idx := fmt.Sprintf("$I%d", lw.tmpN)
			ctx.addIndex(idx)
			ctx.bind(idx, d, b[0]-1)
			lhsDescs = append(lhsDescs, accessDesc{kind: descIdx, idx: idx, off: b[0] - 1, scale: 1})
			bounds = append(bounds, [3]hir.Expr{one, &hir.Const{Val: sem.IntVal(int64(b[1] - b[0] + 1))}, one})
		}
	case *ast.CallOrIndex:
		sym := lw.info.Sym(lhs.Name)
		if sym == nil || sym.Kind != sem.SymArray {
			return nil, lw.errf(as.Pos(), "assignment target %s is not an array", lhs.Name)
		}
		lhsName = lhs.Name
		for d, a := range lhs.Args {
			sec, isSec := a.(*ast.Section)
			if !isSec {
				// Scalar subscript on this dimension.
				desc := accessDesc{kind: descConst, src: a}
				if v, err := sem.EvalConstInt(a, lw.info.Consts); err == nil {
					desc.cval, desc.cvalOK = v, true
				}
				lhsDescs = append(lhsDescs, desc)
				continue
			}
			lo, hi := sym.Bounds[d][0], sym.Bounds[d][1]
			loOK, hiOK := true, true
			if sec.Lo != nil {
				if v, err := sem.EvalConstInt(sec.Lo, lw.info.Consts); err == nil {
					lo = v
				} else {
					loOK = false
				}
			}
			if sec.Hi != nil {
				if v, err := sem.EvalConstInt(sec.Hi, lw.info.Consts); err == nil {
					hi = v
				} else {
					hiOK = false
				}
			}
			stride := 1
			if sec.Stride != nil {
				v, err := sem.EvalConstInt(sec.Stride, lw.info.Consts)
				if err != nil {
					return nil, lw.errf(as.Pos(), "section stride on assignment target must be constant")
				}
				stride = v
			}
			distributed := sym.Map != nil && !sym.Map.Replicated && sym.Map.Dims[d].Kind != dist.Collapsed
			if distributed && (!loOK || !hiOK || stride != 1) {
				return nil, lw.errf(as.Pos(), "assignment to %s: distributed dimension %d requires a constant unit-stride section", lhs.Name, d+1)
			}
			lw.tmpN++
			idx := fmt.Sprintf("$I%d", lw.tmpN)
			ctx.addIndex(idx)
			if stride == 1 {
				ctx.bind(idx, d, lo-1)
			}
			lhsDescs = append(lhsDescs, accessDesc{kind: descIdx, idx: idx, off: lo - stride, scale: stride})
			if loOK && hiOK {
				ext := (hi-lo)/stride + 1
				if ext < 0 {
					ext = 0
				}
				bounds = append(bounds, [3]hir.Expr{one, &hir.Const{Val: sem.IntVal(int64(ext))}, one})
			} else {
				// Non-constant extent on a collapsed dimension.
				loE, p, err := lw.lowerScalarExpr(orDefault(sec.Lo, lo, as.Pos()), env)
				if err != nil {
					return nil, err
				}
				ctx.pre = append(ctx.pre, p...)
				hiE, p2, err := lw.lowerScalarExpr(orDefault(sec.Hi, hi, as.Pos()), env)
				if err != nil {
					return nil, err
				}
				ctx.pre = append(ctx.pre, p2...)
				extent := mkBin(hir.OpAdd,
					mkBin(hir.OpDiv, mkBin(hir.OpSub, hiE, loE), &hir.Const{Val: sem.IntVal(int64(stride))}),
					one)
				bounds = append(bounds, [3]hir.Expr{one, extent, one})
				// The descriptor must rebuild the exact global index.
				lhsDescs[len(lhsDescs)-1] = accessDesc{kind: descOther, src: sectionIndexAST(sec, sym.Bounds[d][0], stride, idx, as.Pos())}
			}
		}
	default:
		return nil, lw.errf(as.Pos(), "unsupported assignment target")
	}

	return lw.finishNestAssign(ctx, lhsName, lhsDescs, bounds, as, mask, label)
}

// orDefault returns e, or an IntLit of def when e is nil.
func orDefault(e ast.Expr, def int, pos token.Pos) ast.Expr {
	if e != nil {
		return e
	}
	return &ast.IntLit{Value: int64(def), ValuePos: pos}
}

// sectionIndexAST builds the AST of "lo + stride*idx - stride" for a
// non-constant section on the assignment target.
func sectionIndexAST(sec *ast.Section, deflo int, stride int, idx string, pos token.Pos) ast.Expr {
	lo := orDefault(sec.Lo, deflo, pos)
	return &ast.BinaryExpr{
		Op:    token.MINUS,
		X:     &ast.BinaryExpr{Op: token.PLUS, X: lo, Y: mulAST(stride, idx, pos), OpPos: pos},
		Y:     &ast.IntLit{Value: int64(stride), ValuePos: pos},
		OpPos: pos,
	}
}

// lowerNestAssign lowers a forall body assignment with named indices.
func (lw *lowerer) lowerNestAssign(ctx *nestCtx, as *ast.AssignStmt, mask ast.Expr, bounds [][3]hir.Expr, label string) ([]hir.Stmt, error) {
	lhs, ok := as.Lhs.(*ast.CallOrIndex)
	if !ok {
		return nil, lw.errf(as.Pos(), "FORALL assignment target must be an array element")
	}
	sym := lw.info.Sym(lhs.Name)
	if sym == nil || sym.Kind != sem.SymArray {
		return nil, lw.errf(as.Pos(), "FORALL assignment target %s is not an array", lhs.Name)
	}
	distributedLHS := sym.Map != nil && !sym.Map.Replicated
	var lhsDescs []accessDesc
	for d, a := range lhs.Args {
		if _, isSec := a.(*ast.Section); isSec {
			return nil, lw.errf(as.Pos(), "array sections are not allowed inside FORALL bodies")
		}
		desc := ctx.classifySub(a)
		switch desc.kind {
		case descIdx:
			if _, dup := ctx.dimOf[desc.idx]; dup {
				return nil, lw.errf(as.Pos(), "FORALL index %s used in two subscripts of %s", desc.idx, lhs.Name)
			}
			ctx.bind(desc.idx, d, desc.off)
		case descConst:
			if v, err := sem.EvalConstInt(a, lw.info.Consts); err == nil {
				desc.cval, desc.cvalOK = v, true
			}
		case descOther:
			if distributedLHS && sym.Map.Dims[d].Kind != dist.Collapsed {
				return nil, lw.errf(as.Pos(),
					"FORALL: subscript %s of distributed dimension %d of %s is not affine in a single index",
					ast.ExprString(a), d+1, lhs.Name)
			}
		}
		lhsDescs = append(lhsDescs, desc)
	}
	return lw.finishNestAssign(ctx, lhs.Name, lhsDescs, bounds, as, mask, label)
}

// finishNestAssign elementizes mask and RHS, detects write/read overlap
// (forall right-hand sides are fully evaluated before assignment), and
// assembles the communication and loop statements.
func (lw *lowerer) finishNestAssign(ctx *nestCtx, lhsName string, lhsDescs []accessDesc, bounds [][3]hir.Expr, as *ast.AssignStmt, mask ast.Expr, label string) ([]hir.Stmt, error) {
	ctx.lhsArray = lhsName
	sym := lw.info.Sym(lhsName)

	var pre []hir.Stmt
	rhsAst, err := lw.rewriteShifts(as.Rhs, ctx.env, &pre)
	if err != nil {
		return nil, err
	}
	var maskH hir.Expr
	if mask != nil {
		maskAst, err := lw.rewriteShifts(mask, ctx.env, &pre)
		if err != nil {
			return nil, err
		}
		maskH, err = ctx.elementize(maskAst)
		if err != nil {
			return nil, err
		}
	}
	rhsH, err := ctx.elementize(rhsAst)
	if err != nil {
		return nil, err
	}

	needBuffer := !ctx.noBuffer && overlaps(ctx.reads, lhsName, lhsDescs)
	target := lhsName
	if needBuffer {
		target = lw.newTempArray(lhsName)
	}
	lhsSubs, err := ctx.descExprs(lhsDescs)
	if err != nil {
		return nil, err
	}

	var cost hir.OpCount
	cost.Add(hir.CountExpr(rhsH), 1)
	for _, s := range lhsSubs {
		cost.Add(hir.CountExpr(s), 1)
	}
	cost.Store++
	cost.Elems++

	guard := sym.Map != nil && !sym.Map.Replicated
	assign := &hir.Assign{
		Lhs:     &hir.ElemLV{Array: target, Subs: lhsSubs, Typ: sym.Type},
		Rhs:     rhsH,
		Guard:   guard,
		SrcLine: ctx.line,
		Cost:    cost,
	}
	var body []hir.Stmt
	if maskH != nil {
		body = []hir.Stmt{&hir.If{Cond: maskH, Then: []hir.Stmt{assign}, SrcLine: ctx.line, Cost: hir.CountExpr(maskH)}}
	} else {
		body = []hir.Stmt{assign}
	}
	ctx.permuteForLocality(bounds)
	par := ctx.parSpecs(target, lhsDescs)
	out := append(pre, ctx.nestStmts(ctx.buildLoops(body, bounds, par, label))...)

	if needBuffer {
		var ccost hir.OpCount
		ccost.Load++
		ccost.Store++
		ccost.Elems += 2
		copyAssign := &hir.Assign{
			Lhs:     &hir.ElemLV{Array: lhsName, Subs: lhsSubs, Typ: sym.Type},
			Rhs:     &hir.Elem{Array: target, Subs: lhsSubs, Typ: sym.Type},
			Guard:   guard,
			SrcLine: ctx.line,
			Cost:    ccost,
		}
		var cbody []hir.Stmt = []hir.Stmt{copyAssign}
		if maskH != nil {
			cbody = []hir.Stmt{&hir.If{Cond: maskH, Then: cbody, SrcLine: ctx.line, Cost: hir.CountExpr(maskH)}}
		}
		out = append(out, ctx.buildLoops(cbody, bounds, ctx.parSpecs(lhsName, lhsDescs), "COPY")...)
	}
	return out, nil
}

// parSpecs builds the per-loop partition specs from the LHS binding.
func (c *nestCtx) parSpecs(targetArray string, lhsDescs []accessDesc) []*hir.ParSpec {
	m := c.lw.info.ArrayMap(c.lhsArray)
	par := make([]*hir.ParSpec, len(c.idxNames))
	for i, idx := range c.idxNames {
		d, bound := c.dimOf[idx]
		if !bound || m == nil || m.Replicated {
			continue
		}
		if m.Dims[d].Kind == dist.Collapsed {
			continue
		}
		par[i] = &hir.ParSpec{Array: targetArray, Dim: d, Offset: c.offOf[idx]}
	}
	return par
}

// overlaps reports whether any recorded read of the assignment target may
// alias an element written by a different iteration (in which case forall
// semantics require a temporary). A read is harmless when it is
// element-wise identical to the write reference, or provably disjoint
// from it (two constant subscripts that differ select disjoint slices).
func overlaps(reads []readRec, lhs string, lhsDescs []accessDesc) bool {
	for _, r := range reads {
		if r.array != lhs {
			continue
		}
		if r.shadow || len(r.descs) != len(lhsDescs) {
			return true
		}
		identical := true
		disjoint := false
		for d := range r.descs {
			if !sameDesc(r.descs[d], lhsDescs[d]) {
				identical = false
			}
			a, b := r.descs[d], lhsDescs[d]
			if a.kind == descConst && b.kind == descConst && a.cvalOK && b.cvalOK && a.cval != b.cval {
				disjoint = true
			}
		}
		if !identical && !disjoint {
			return true
		}
	}
	return false
}

func sameDesc(a, b accessDesc) bool {
	if a.kind == descIdx && b.kind == descIdx {
		return a.idx == b.idx && a.off == b.off && a.scale == b.scale
	}
	if a.kind == descConst && b.kind == descConst {
		return a.cvalOK && b.cvalOK && a.cval == b.cval
	}
	return false
}
