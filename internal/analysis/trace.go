package analysis

import (
	"fmt"
	"strings"

	"hpfperf/internal/hir"
	"hpfperf/internal/sem"
)

// This file implements critical-variable definition tracing (§4.2) as a
// forward dataflow analysis over the node program on the standard
// constants lattice (unknown-yet / known value / not-a-constant). Unlike
// the interpretation engine's inline first-iteration propagation — which
// deletes every loop-body-assigned scalar after one body walk — the
// tracer runs loop bodies to a fixpoint, so loop-invariant redefinitions
// (NITER = 25 inside a setup loop) survive and statically determinable
// bounds no longer require Options.Values. When a value cannot be traced
// the analysis records *why* and *where*, so the interpreter's fallback
// error can name the blocking definitions.

// Blocker explains why one scalar has no statically traceable value.
type Blocker struct {
	Name   string `json:"name"`
	Line   int    `json:"line,omitempty"` // 0 when no single definition site applies
	Reason string `json:"reason"`
}

func (b Blocker) String() string {
	if b.Line > 0 {
		return fmt.Sprintf("%s (%s at line %d)", b.Name, b.Reason, b.Line)
	}
	return fmt.Sprintf("%s (%s)", b.Name, b.Reason)
}

// LoopTrace is the traced resolution of one counted loop's bound triplet.
type LoopTrace struct {
	Line     int
	Var      string
	Resolved bool
	Lo, Hi   int
	Step     int
	Trips    int
	// Dynamic reports that at least one bound referenced a scalar (the
	// resolution required tracing rather than literal constants).
	Dynamic bool
	// Blockers lists, for unresolved loops, the definitions that blocked
	// tracing.
	Blockers []Blocker
}

// WhileTrace is the traced entry condition of a DO WHILE loop.
type WhileTrace struct {
	Line         int
	CondResolved bool
	CondValue    bool // meaningful when CondResolved
	Blockers     []Blocker
}

// CondTrace is the traced value of a scalar (non-elemental) IF condition.
type CondTrace struct {
	Line     int
	Resolved bool
	Value    bool // meaningful when Resolved
	HasElse  bool
	HasThen  bool
	// Pinned reports that the resolution rests (transitively) on a
	// user-pinned value. Pinned values are hypotheses supplied via
	// Options.Values, not program facts, so degenerate-control-flow
	// lints must not treat such a resolution as a proof.
	Pinned bool
}

// Trace is the result of definition tracing: per-construct resolutions
// keyed by HIR node identity (several constructs can share a source line,
// e.g. the loops of a multi-index FORALL). The *Order slices preserve
// program order for deterministic diagnostics.
type Trace struct {
	Loops  map[*hir.Loop]*LoopTrace
	Whiles map[*hir.While]*WhileTrace
	Conds  map[*hir.If]*CondTrace

	LoopOrder  []*hir.Loop
	WhileOrder []*hir.While
	CondOrder  []*hir.If
}

// LoopBlockers returns the blocking definitions recorded for a loop, or
// nil when it was resolved (or never reached by the tracer).
func (t *Trace) LoopBlockers(x *hir.Loop) []Blocker {
	if lt := t.Loops[x]; lt != nil {
		return lt.Blockers
	}
	return nil
}

// cell is one abstract scalar: a known constant or an explained unknown.
type cell struct {
	known  bool
	val    sem.Value
	pinned bool    // value derives (transitively) from a pinned hypothesis
	line   int     // defining source line (0 for initial/pinned values)
	blk    Blocker // why the value is unknown (meaningful when !known)
}

// state maps scalar names to abstract cells. A missing key means the
// scalar was never assigned on this path.
type state map[string]cell

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func valueEq(a, b sem.Value) bool {
	return a.Type == b.Type && a.I == b.I && a.R == b.R && a.B == b.B
}

// statesEqual compares the lattice content of two states (blocker
// explanations are ignored: they do not affect convergence).
func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ca := range a {
		cb, ok := b[k]
		if !ok || ca.known != cb.known {
			return false
		}
		if ca.known && !valueEq(ca.val, cb.val) {
			return false
		}
	}
	return true
}

// maxFixpointIters bounds the rounds of one loop-body fixpoint. The
// constants lattice has height 2 per variable, so real programs converge
// in a handful of rounds; the cap (with traceBudget) keeps hostile
// nesting bounded.
const maxFixpointIters = 8

// traceBudget bounds total abstract statement visits per TraceProgram
// call; once exhausted, in-flight fixpoints stop refining and degrade to
// the sound "kill everything assigned in the body" answer.
const traceBudget = 1 << 18

type tracer struct {
	tr     *Trace
	pinned map[string]bool
	budget int
}

// TraceProgram runs definition tracing over a compiled program. pinned
// supplies user-specified critical values (Options.Values); they seed the
// initial state and are never invalidated, matching the interpretation
// engine's pinning semantics.
func TraceProgram(p *hir.Program, pinned map[string]sem.Value) *Trace {
	t := &tracer{
		tr: &Trace{
			Loops:  make(map[*hir.Loop]*LoopTrace),
			Whiles: make(map[*hir.While]*WhileTrace),
			Conds:  make(map[*hir.If]*CondTrace),
		},
		pinned: make(map[string]bool, len(pinned)),
		budget: traceBudget,
	}
	s := make(state)
	for k, v := range pinned {
		t.pinned[k] = true
		s[k] = cell{known: true, val: v, pinned: true}
	}
	t.stmts(p.Body, s)
	return t.tr
}

func (t *tracer) eval(e hir.Expr, s state) (sem.Value, bool) {
	return hir.EvalConst(e, func(name string) (sem.Value, bool) {
		c, ok := s[name]
		if !ok || !c.known {
			return sem.Value{}, false
		}
		return c.val, true
	})
}

// kill marks a scalar untraceable with an explanation.
func (t *tracer) kill(name string, line int, reason string, s state) {
	if t.pinned[name] {
		return
	}
	s[name] = cell{line: line, blk: Blocker{Name: name, Line: line, Reason: reason}}
}

// meet joins two control-flow branches: values known and equal on both
// sides survive; everything else becomes an explained unknown. Pinned
// names always keep their pinned value.
func (t *tracer) meet(a, b state) state {
	out := make(state, len(a))
	for k, ca := range a {
		cb, ok := b[k]
		switch {
		case t.pinned[k]:
			out[k] = ca
		case !ok:
			if ca.known {
				out[k] = cell{line: ca.line, blk: Blocker{Name: k, Line: ca.line, Reason: "assigned on only one control path"}}
			} else {
				out[k] = ca
			}
		case ca.known && cb.known && valueEq(ca.val, cb.val):
			ca.pinned = ca.pinned || cb.pinned
			out[k] = ca
		case !ca.known:
			out[k] = ca
		case !cb.known:
			out[k] = cb
		default:
			line := cb.line
			if line == 0 {
				line = ca.line
			}
			out[k] = cell{line: line, blk: Blocker{Name: k, Line: line, Reason: "assigned a varying value"}}
		}
	}
	for k, cb := range b {
		if _, ok := a[k]; ok {
			continue
		}
		if cb.known && !t.pinned[k] {
			out[k] = cell{line: cb.line, blk: Blocker{Name: k, Line: cb.line, Reason: "assigned on only one control path"}}
		} else {
			out[k] = cb
		}
	}
	return out
}

// blockers collects one explained Blocker per untraced scalar referenced
// by the expressions.
func (t *tracer) blockers(es []hir.Expr, s state) []Blocker {
	seen := make(map[string]bool)
	var out []Blocker
	for _, e := range es {
		if e == nil {
			continue
		}
		for _, name := range hir.ScalarRefs(e) {
			if seen[name] {
				continue
			}
			seen[name] = true
			c, ok := s[name]
			if ok && c.known {
				continue
			}
			if !ok {
				out = append(out, Blocker{Name: name, Reason: "never assigned a traceable value"})
			} else {
				out = append(out, c.blk)
			}
		}
	}
	return out
}

// assignBlocker explains why one scalar assignment is untraceable,
// propagating the root cause through compiler temporaries.
func (t *tracer) assignBlocker(name string, x *hir.Assign, s state) Blocker {
	b := Blocker{Name: name, Line: x.SrcLine}
	for _, r := range hir.ScalarRefs(x.Rhs) {
		c, ok := s[r]
		if ok && c.known {
			continue
		}
		if ok && c.blk.Reason != "" {
			if r == name || strings.HasPrefix(r, "$") {
				// Self-reference or compiler temporary: surface the
				// root cause directly instead of a vacuous indirection.
				b.Reason = c.blk.Reason
			} else {
				b.Reason = fmt.Sprintf("assigned from untraced %s", r)
			}
			return b
		}
		b.Reason = fmt.Sprintf("assigned from undefined %s", r)
		return b
	}
	if exprReadsElem(x.Rhs) {
		b.Reason = "assigned from array element data"
		return b
	}
	b.Reason = "assigned from run-time data"
	return b
}

func exprReadsElem(e hir.Expr) bool {
	switch x := e.(type) {
	case *hir.Elem:
		return true
	case *hir.Bin:
		return exprReadsElem(x.X) || exprReadsElem(x.Y)
	case *hir.Un:
		return exprReadsElem(x.X)
	case *hir.Intr:
		for _, a := range x.Args {
			if exprReadsElem(a) {
				return true
			}
		}
	}
	return false
}

// assignedNames lists every scalar assigned (or otherwise clobbered)
// anywhere in a statement subtree.
func assignedNames(ss []hir.Stmt) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	var scan func(ss []hir.Stmt)
	scan = func(ss []hir.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *hir.Assign:
				if lv, ok := x.Lhs.(*hir.ScalarLV); ok {
					add(lv.Name)
				}
			case *hir.Loop:
				add(x.Var)
				scan(x.Body)
			case *hir.While:
				scan(x.Body)
			case *hir.If:
				scan(x.Then)
				scan(x.Else)
			case *hir.Reduce:
				add(x.Dst)
				add(x.LocDst)
			case *hir.FetchElem:
				add(x.Dst)
			}
		}
	}
	scan(ss)
	return out
}

// ---------------------------------------------------------------------------
// Transfer functions

// stmts applies the transfer function of each statement in order. The
// input state is consumed and the out state returned.
func (t *tracer) stmts(ss []hir.Stmt, s state) state {
	for _, st := range ss {
		s = t.stmt(st, s)
	}
	return s
}

func (t *tracer) stmt(st hir.Stmt, s state) state {
	t.budget--
	switch x := st.(type) {
	case *hir.Assign:
		lv, ok := x.Lhs.(*hir.ScalarLV)
		if !ok || t.pinned[lv.Name] {
			return s
		}
		if v, ok := t.eval(x.Rhs, s); ok {
			s[lv.Name] = cell{known: true, val: v, pinned: t.pinnedDerived(x.Rhs, s), line: x.SrcLine}
		} else {
			s[lv.Name] = cell{line: x.SrcLine, blk: t.assignBlocker(lv.Name, x, s)}
		}
		return s
	case *hir.Loop:
		return t.loop(x, s)
	case *hir.While:
		return t.while(x, s)
	case *hir.If:
		return t.cond(x, s)
	case *hir.Reduce:
		t.kill(x.Dst, x.SrcLine, "global "+x.Op.String()+" reduction result", s)
		if x.LocDst != "" {
			t.kill(x.LocDst, x.SrcLine, "global "+x.Op.String()+" reduction result", s)
		}
		return s
	case *hir.FetchElem:
		t.kill(x.Dst, x.SrcLine, "fetched from distributed array "+x.Array, s)
		return s
	}
	return s
}

// fixpointBody iterates a loop body to a fixpoint starting from entry
// (with the loop index already invalidated). It returns the out state of
// one body application from the stabilized head — i.e. the state after a
// final iteration. On non-convergence (budget or round cap) it degrades
// soundly by killing everything the body assigns.
func (t *tracer) fixpointBody(body []hir.Stmt, entry state) state {
	head := entry
	out := t.stmts(body, head.clone())
	for i := 0; ; i++ {
		merged := t.meet(head, out)
		if statesEqual(merged, head) {
			return out
		}
		head = merged
		if i >= maxFixpointIters || t.budget <= 0 {
			for _, n := range assignedNames(body) {
				t.kill(n, 0, "assigned in a loop whose analysis did not converge", out)
			}
			return out
		}
		out = t.stmts(body, head.clone())
	}
}

func (t *tracer) recordLoop(x *hir.Loop, lt *LoopTrace) {
	if _, ok := t.tr.Loops[x]; !ok {
		t.tr.LoopOrder = append(t.tr.LoopOrder, x)
	}
	t.tr.Loops[x] = lt
}

func (t *tracer) loop(x *hir.Loop, s state) state {
	lt := &LoopTrace{Line: x.SrcLine, Var: x.Var}
	lt.Dynamic = len(hir.ScalarRefs(x.Lo))+len(hir.ScalarRefs(x.Hi))+len(hir.ScalarRefs(x.Step)) > 0
	lv, ok1 := t.eval(x.Lo, s)
	hv, ok2 := t.eval(x.Hi, s)
	sv, ok3 := t.eval(x.Step, s)
	switch {
	case ok1 && ok2 && ok3 && sv.AsInt() != 0:
		lt.Resolved = true
		lt.Lo, lt.Hi, lt.Step = int(lv.AsInt()), int(hv.AsInt()), int(sv.AsInt())
		lt.Trips = countTrips(lt.Lo, lt.Hi, lt.Step)
	case ok1 && ok2 && ok3:
		lt.Blockers = []Blocker{{Name: x.Var, Line: x.SrcLine, Reason: "zero loop step"}}
	default:
		lt.Blockers = t.blockers([]hir.Expr{x.Lo, x.Hi, x.Step}, s)
		if len(lt.Blockers) == 0 {
			lt.Blockers = []Blocker{{Name: x.Var, Line: x.SrcLine, Reason: "bounds depend on array element data"}}
		}
	}
	t.recordLoop(x, lt)

	if lt.Resolved && lt.Trips == 0 {
		// The body never executes: walk it once for recording only
		// (nested constructs still get traces) and discard its effects.
		dead := s.clone()
		t.kill(x.Var, x.SrcLine, "index of a zero-trip loop", dead)
		t.stmts(x.Body, dead)
		return s
	}

	entry := s.clone()
	t.kill(x.Var, x.SrcLine, "loop index", entry)
	out := t.fixpointBody(x.Body, entry)
	if lt.Resolved {
		// The loop ran at least once: the post-loop state is the final
		// iteration's out state; the DO index lands one step past the
		// last executed value.
		if !t.pinned[x.Var] {
			last := lt.Lo + lt.Trips*lt.Step
			out[x.Var] = cell{known: true, val: sem.IntVal(int64(last)), line: x.SrcLine}
		}
		return out
	}
	// Unknown trip count: the loop may have run zero times, so join the
	// entry state with the traced exit.
	exit := t.meet(s, out)
	t.kill(x.Var, x.SrcLine, "index of a loop with untraced bounds", exit)
	return exit
}

func (t *tracer) while(x *hir.While, s state) state {
	wt := &WhileTrace{Line: x.SrcLine}
	if v, ok := t.eval(x.Cond, s); ok {
		wt.CondResolved, wt.CondValue = true, v.B
	} else {
		wt.Blockers = t.blockers([]hir.Expr{x.Cond}, s)
	}
	if _, ok := t.tr.Whiles[x]; !ok {
		t.tr.WhileOrder = append(t.tr.WhileOrder, x)
	}
	t.tr.Whiles[x] = wt

	if wt.CondResolved && !wt.CondValue {
		// Never entered; walk for recording only.
		t.stmts(x.Body, s.clone())
		return s
	}
	out := t.fixpointBody(x.Body, s.clone())
	return t.meet(s, out)
}

func (t *tracer) cond(x *hir.If, s state) state {
	if !exprIsElemental(x.Cond) {
		ct := &CondTrace{Line: x.SrcLine, HasThen: len(x.Then) > 0, HasElse: len(x.Else) > 0}
		if v, ok := t.eval(x.Cond, s); ok {
			ct.Resolved, ct.Value = true, v.B
			ct.Pinned = t.pinnedDerived(x.Cond, s)
		}
		if _, ok := t.tr.Conds[x]; !ok {
			t.tr.CondOrder = append(t.tr.CondOrder, x)
		}
		t.tr.Conds[x] = ct
		if ct.Resolved {
			taken, dead := x.Then, x.Else
			if !ct.Value {
				taken, dead = x.Else, x.Then
			}
			t.stmts(dead, s.clone()) // recording only
			return t.stmts(taken, s)
		}
	}
	outThen := t.stmts(x.Then, s.clone())
	outElse := t.stmts(x.Else, s)
	return t.meet(outThen, outElse)
}

// pinnedDerived reports whether any scalar the expression references
// carries a value derived (transitively) from a pinned hypothesis.
func (t *tracer) pinnedDerived(e hir.Expr, s state) bool {
	for _, name := range hir.ScalarRefs(e) {
		if c, ok := s[name]; ok && c.known && c.pinned {
			return true
		}
	}
	return false
}

// exprIsElemental mirrors the SAAG builder's notion of a data-dependent
// (per-element) expression: it reads array elements or per-processor
// private scalars, so it has no single replicated value to trace.
func exprIsElemental(e hir.Expr) bool {
	switch x := e.(type) {
	case *hir.Elem:
		return true
	case *hir.Ref:
		return x.Kind == hir.Private
	case *hir.Bin:
		return exprIsElemental(x.X) || exprIsElemental(x.Y)
	case *hir.Un:
		return exprIsElemental(x.X)
	case *hir.Intr:
		for _, a := range x.Args {
			if exprIsElemental(a) {
				return true
			}
		}
	}
	return false
}

// countTrips mirrors the interpretation engine's trip-count rule.
func countTrips(lo, hi, step int) int {
	if step > 0 {
		if hi < lo {
			return 0
		}
		return (hi-lo)/step + 1
	}
	if hi > lo {
		return 0
	}
	return (lo-hi)/(-step) + 1
}
