package sweep

import (
	"math/rand/v2"
	"time"
)

// RetryPolicy bounds the per-point retry loop of Map/MapCtx. Only
// transient failures (IsTransient: injected faults, recovered panics)
// are retried; deterministic pipeline errors fail the point on the
// first attempt exactly as before. The zero value selects the
// defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per point, including
	// the first (<= 0 selects 3; 1 disables retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (<= 0 selects 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (<= 0 selects 100ms).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy engines use when Options.Retry is
// the zero value.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
}

func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// backoff returns the sleep before retry number `retry` (1-based):
// full-jitter exponential backoff, uniform in (0, min(MaxDelay,
// BaseDelay*2^(retry-1))]. Jitter decorrelates workers that failed on
// the same contended resource; the sweep's results stay deterministic
// regardless of sleep durations because Map orders results by index.
func (p RetryPolicy) backoff(retry int) time.Duration {
	ceil := p.BaseDelay << uint(retry-1)
	if ceil > p.MaxDelay || ceil <= 0 { // <= 0 guards shift overflow
		ceil = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(ceil))) + 1
}
