package obs

import (
	"sync"
	"time"
)

// TraceRecord is one completed request trace retained in the ring.
type TraceRecord struct {
	TraceID string    `json:"trace_id"`
	Route   string    `json:"route"`
	Status  int       `json:"status"`
	DurUS   float64   `json:"dur_us"`
	Start   time.Time `json:"start"`
	Tree    *Tree     `json:"tree"`
}

// Ring retains the last N traces served, for GET /v1/traces. It is a
// fixed-size overwrite buffer: adds never block or allocate beyond the
// initial capacity.
type Ring struct {
	mu   sync.Mutex
	recs []TraceRecord
	next int
	full bool
}

// NewRing returns a ring retaining up to n traces (n < 1 is clamped to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{recs: make([]TraceRecord, n)}
}

// Add inserts a record, evicting the oldest when full.
func (r *Ring) Add(rec TraceRecord) {
	r.mu.Lock()
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.recs)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.recs)
		}
		out = append(out, r.recs[idx])
	}
	return out
}
