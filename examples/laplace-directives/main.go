// Directive selection (paper §5.2.1): use the interpretive framework to
// choose the best DISTRIBUTE directive for the Laplace solver without
// running the program — then verify the ranking against simulated
// measurements, reproducing the experiment behind Figures 4 and 5.
package main

import (
	"fmt"
	"log"

	"hpfperf"
)

func laplace(distSpec, gridSpec string, n int) string {
	return fmt.Sprintf(`PROGRAM laplace
PARAMETER (N = %d, MAXIT = 10)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P%s
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T%s ONTO P
FORALL (I=1:N, J=1:N) U(I,J) = 0.0
FORALL (J=1:N) U(1,J) = 100.0
DO ITER = 1, MAXIT
  FORALL (I=2:N-1, J=2:N-1) V(I,J) = 0.25*(U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) U(I,J) = V(I,J)
END DO
END`, n, gridSpec, distSpec)
}

func main() {
	const n = 128
	candidates := []hpfperf.Candidate{
		{Name: "(Block,Block) on 2x2", Source: laplace("(BLOCK,BLOCK)", "(2,2)", n)},
		{Name: "(Block,*)     on 4", Source: laplace("(BLOCK,*)", "(4)", n)},
		{Name: "(*,Block)     on 4", Source: laplace("(*,BLOCK)", "(4)", n)},
	}

	// Rank the alternatives by interpreted performance — seconds of
	// workstation time instead of an iPSC/860 session per variant.
	ranked, err := hpfperf.SelectDistribution(candidates, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Laplace solver, N=%d, 4 processors — predicted ranking:\n\n", n)
	for i, r := range ranked {
		comp, comm, ovhd := r.Prediction.Breakdown()
		fmt.Printf("%d. %-22s %9.3fms  (comp %.3fms, comm %.3fms, ovhd %.3fms)\n",
			i+1, r.Name, r.Prediction.Microseconds()/1e3, comp/1e3, comm/1e3, ovhd/1e3)
	}
	fmt.Printf("\n=> select %s\n\n", ranked[0].Name)

	// Cross-check the ranking against simulated measurement.
	fmt.Println("verification against the simulated iPSC/860:")
	for _, r := range ranked {
		prog, err := hpfperf.Compile(r.Source)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := hpfperf.Measure(prog, &hpfperf.MeasureOptions{Runs: 3})
		if err != nil {
			log.Fatal(err)
		}
		e, m := r.Prediction.Microseconds(), meas.Microseconds()
		fmt.Printf("  %-22s est %9.3fms  meas %9.3fms  err %+5.2f%%\n",
			r.Name, e/1e3, m/1e3, (e-m)/m*100)
	}
}
