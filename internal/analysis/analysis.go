// Package analysis is the static-analysis layer over the compiled SPMD
// node program (the typed HIR the SAAG is abstracted from): an ordered
// pass manager producing structured diagnostics instead of fatal errors.
//
// The paper's Application Module resolves "critical variables" — values
// that drive control flow, e.g. loop limits — by definition tracing,
// falling back to user input only when tracing fails (§4.2). This package
// implements that tracing as a proper forward dataflow analysis (package
// trace.go) and layers advisory passes on top of it: communication
// anti-patterns, FORALL dependence tests, directive hygiene, and
// degenerate control flow that would skew a predicted profile. The
// diagnostics feed cmd/hpflint, the hpfperf.Analyze facade, hpfserve's
// POST /v1/analyze, and hpfpc's warning output.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"hpfperf/internal/hir"
)

// Severity ranks a diagnostic: Info (advisory), Warning (likely
// performance or correctness hazard), Error (the tool itself failed,
// e.g. the program does not compile).
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity parses "info", "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return SevInfo, nil
	case "warning":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("analysis: unknown severity %q (want info, warning or error)", s)
}

// MarshalJSON renders the severity as its stable string name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the string names produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Diagnostic is one finding of a static pass. Code is the stable
// machine-readable identifier (HPFnnnn); the block a code belongs to
// names its pass family (00xx critical variables, 01xx communication,
// 02xx forall dependence, 03xx directive hygiene, 04xx degenerate
// control flow, 05xx INDEPENDENT verification, HPF0000 compile failure).
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Pass     string   `json:"pass"`
	Line     int      `json:"line"`
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("line %d: %s: %s [%s]", d.Line, d.Severity, d.Message, d.Code)
	if d.Hint != "" {
		s += "\n    hint: " + d.Hint
	}
	return s
}

// Unit is the analyzed compilation unit handed to every pass: the
// compiled node program plus the shared definition trace (computed once,
// consumed by several passes).
type Unit struct {
	Prog  *hir.Program
	Trace *Trace
}

// NewUnit builds the analysis unit for a compiled program, running the
// definition tracer with no user-pinned values.
func NewUnit(prog *hir.Program) *Unit {
	return &Unit{Prog: prog, Trace: TraceProgram(prog, nil)}
}

// Pass is one static analysis. Passes must not mutate the Unit; they run
// in registration order and may rely on Unit.Trace being populated.
type Pass interface {
	Name() string
	Run(u *Unit) []Diagnostic
}

// Passes returns the registered passes in execution order.
func Passes() []Pass {
	return []Pass{
		critVarPass{},
		commPass{},
		forallPass{},
		independentPass{},
		directivePass{},
		degeneratePass{},
	}
}

// Analyze runs every registered pass over a compiled program and returns
// the merged diagnostics ordered by source line, then code.
func Analyze(prog *hir.Program) []Diagnostic {
	return AnalyzeUnit(NewUnit(prog))
}

// AnalyzeUnit runs every registered pass over an existing unit.
func AnalyzeUnit(u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, p := range Passes() {
		ds := p.Run(u)
		for i := range ds {
			if ds[i].Pass == "" {
				ds[i].Pass = p.Name()
			}
		}
		out = append(out, ds...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Code < out[j].Code
	})
	return out
}
