package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/core"
	"hpfperf/internal/suite"
)

func TestMapPreservesOrder(t *testing.T) {
	e := New(Options{Workers: 4})
	res, err := Map(e, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d", i, v)
		}
	}
	if got := e.Snapshot().Points; got != 100 {
		t.Errorf("points = %d", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(Options{Workers: workers})
	var inFlight, peak atomic.Int64
	_, err := Map(e, 50, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds pool bound %d", p, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	e := New(Options{Workers: 8})
	wantErr := errors.New("boom-3")
	_, err := Map(e, 20, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, wantErr
		case 11:
			return 0, errors.New("boom-11")
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want first-by-index %v", err, wantErr)
	}
}

// TestRepeatedSweepCompilesOnce asserts the memoization contract: two
// sweeps over identical sources run the compilation pipeline exactly
// once per distinct source, with every repeat served from cache.
func TestRepeatedSweepCompilesOnce(t *testing.T) {
	e := New(Options{Workers: 4})
	sources := []string{
		suite.LaplaceBB().Source(16, 4),
		suite.LaplaceBX().Source(16, 4),
		suite.PI().Source(128, 4),
	}
	sweepOnce := func() {
		_, err := Map(e, len(sources), func(i int) (float64, error) {
			est, _, err := e.EstimateAndMeasure(sources[i], 1, 0.01)
			return est, err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sweepOnce()
	sweepOnce()

	snap := e.Snapshot()
	if snap.Compiles != int64(len(sources)) {
		t.Errorf("compiles = %d, want exactly %d (one per distinct source)", snap.Compiles, len(sources))
	}
	if snap.CompileMisses != int64(len(sources)) {
		t.Errorf("compile misses = %d, want %d", snap.CompileMisses, len(sources))
	}
	if snap.CompileHits == 0 {
		t.Error("second sweep produced no compile-cache hits")
	}
	if snap.Interps != int64(len(sources)) {
		t.Errorf("interps = %d, want %d (reports memoized)", snap.Interps, len(sources))
	}
	if snap.ReportHits != int64(len(sources)) {
		t.Errorf("report hits = %d, want %d", snap.ReportHits, len(sources))
	}
	if snap.Execs != int64(len(sources)) {
		t.Errorf("execs = %d, want %d (deterministic measurements memoized)", snap.Execs, len(sources))
	}
	if snap.ExecHits != int64(len(sources)) {
		t.Errorf("exec hits = %d, want %d", snap.ExecHits, len(sources))
	}
	if e.Cache().Len() != len(sources) {
		t.Errorf("cache holds %d programs, want %d", e.Cache().Len(), len(sources))
	}
}

// TestConcurrentCompileSingleflight races many workers for one key: the
// pipeline must run exactly once while everyone receives the result.
func TestConcurrentCompileSingleflight(t *testing.T) {
	e := New(Options{Workers: 8})
	src := suite.LaplaceXB().Source(16, 4)
	res, err := Map(e, 16, func(i int) (string, error) {
		prog, err := e.Compile(src, compiler.Options{})
		if err != nil {
			return "", err
		}
		return prog.Name, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res {
		if name != res[0] {
			t.Fatalf("inconsistent programs: %q vs %q", name, res[0])
		}
	}
	snap := e.Snapshot()
	if snap.Compiles != 1 {
		t.Errorf("compiles = %d, want 1", snap.Compiles)
	}
	if snap.CompileHits != 15 || snap.CompileMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 15/1", snap.CompileHits, snap.CompileMisses)
	}
}

func TestCompileErrorIsCachedToo(t *testing.T) {
	e := New(Options{})
	const bad = "PROGRAM nope\nTHIS IS NOT FORTRAN\nEND"
	for i := 0; i < 3; i++ {
		if _, err := e.Compile(bad, compiler.Options{}); err == nil {
			t.Fatal("expected compile error")
		}
	}
	if n := e.Snapshot().Compiles; n != 1 {
		t.Errorf("failing source compiled %d times, want 1", n)
	}
}

func TestInterpFingerprintDistinguishesOptions(t *testing.T) {
	a := core.DefaultOptions()
	b := core.DefaultOptions()
	b.MaskDensity = 0.5
	fa, ok := interpFingerprint(a)
	if !ok {
		t.Fatal("default options must be fingerprintable")
	}
	fb, _ := interpFingerprint(b)
	if fa == fb {
		t.Error("different options share a fingerprint")
	}
	c := core.DefaultOptions()
	c.TripCounts = map[int]int{4: 10, 2: 7}
	d := core.DefaultOptions()
	d.TripCounts = map[int]int{2: 7, 4: 10}
	fc, _ := interpFingerprint(c)
	fd, _ := interpFingerprint(d)
	if fc != fd {
		t.Error("map iteration order leaked into the fingerprint")
	}
}

func TestSnapshotString(t *testing.T) {
	e := New(Options{})
	if _, _, err := e.EstimateAndMeasure(suite.PI().Source(128, 4), 1, 0.01); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot().String()
	for _, want := range []string{"points", "compile", "interpret", "execute", "1 miss"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultEngineIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one shared engine")
	}
}
