// Batch data plane: POST /v1/batch evaluates many predict/measure
// points — mixed sizes, procs, options and sources — in one request.
// The paper's whole workflow is table-shaped (Table 2 and Figures 4/5/8
// are dozens of points over one source), and a batch makes a table cost
// what it should: points are deduplicated per (source, compile options)
// so one source compiles exactly once through the engine's single-
// flight cache, the whole batch is cost-priced once through the
// admission gate (a 429 carries the aggregate estimate), and the points
// fan out onto the sweep worker pool under per-point "sweep.point"
// spans. Points are isolated: one invalid or failing point becomes a
// per-point error object in the results array, never a failed batch,
// and each per-point report is byte-identical to the corresponding
// sequential /v1/predict or /v1/measure call (ElapsedUS excepted, which
// stays zero on batch points).

package server

import (
	"context"
	"net/http"
	"time"

	"hpfperf/internal/compiler"
	"hpfperf/internal/hir"
	"hpfperf/internal/sweep"
)

// BatchPoint is one point of a batch: exactly one of Predict or Measure
// must be set. Per-point timeout_ms fields are ignored — the batch-
// level timeout governs every point.
type BatchPoint struct {
	Predict *PredictRequest `json:"predict,omitempty"`
	Measure *MeasureRequest `json:"measure,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Points are the batch's evaluation points (required, at most
	// Config.MaxBatchPoints).
	Points []BatchPoint `json:"points"`
	// TimeoutMS caps the whole batch's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchPointError is the per-point failure object: the status, stage
// and message the same request would have produced as a standalone
// call, without failing the surrounding batch.
type BatchPointError struct {
	Status int    `json:"status"`
	Stage  string `json:"stage,omitempty"`
	Error  string `json:"error"`
	// EstimatedCostUnits/CostLimitUnits mirror the admission gate's 429
	// body for a point over the per-request cost ceiling.
	EstimatedCostUnits float64 `json:"estimated_cost_units,omitempty"`
	CostLimitUnits     float64 `json:"cost_limit_units,omitempty"`
}

// BatchResult is one point's outcome: exactly one of Predict, Measure
// or Error is set.
type BatchResult struct {
	Index   int              `json:"index"`
	Predict *PredictResponse `json:"predict,omitempty"`
	Measure *MeasureResponse `json:"measure,omitempty"`
	Error   *BatchPointError `json:"error,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch response. Results keeps
// request order (Results[i].Index == i always).
type BatchResponse struct {
	ResponseMeta
	Results   []BatchResult `json:"results"`
	OK        int           `json:"ok"`
	Failed    int           `json:"failed"`
	ElapsedUS float64       `json:"elapsed_us"`
}

func pointError(aerr *apiError) *BatchPointError {
	return &BatchPointError{
		Status: aerr.status, Stage: aerr.stage, Error: aerr.err.Error(),
		EstimatedCostUnits: aerr.estCost, CostLimitUnits: aerr.costLimit,
	}
}

// compileKey deduplicates batch compiles: the engine caches per
// (source, compile options), so pricing and evaluation share one
// compile per distinct key no matter how many points reference it.
type compileKey struct {
	src  string
	opts compiler.Options
}

func (s *Server) handleBatch(ctx context.Context, body []byte) (any, *apiError) {
	var req BatchRequest
	if aerr := decode(body, &req); aerr != nil {
		return nil, aerr
	}
	if len(req.Points) == 0 {
		return nil, errf(http.StatusBadRequest, "decode", "points is required")
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, errf(http.StatusBadRequest, "decode", "batch of %d points exceeds the %d-point limit", len(req.Points), s.cfg.MaxBatchPoints)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	results := make([]BatchResult, len(req.Points))
	fail := func(i int, aerr *apiError) { results[i].Error = pointError(aerr) }

	// Validate and compile, one compile per distinct (source, options):
	// a compile failure marks every point sharing the key, in the same
	// (status, stage, message) form the standalone call produces.
	type compiled struct {
		prog *hir.Program
		aerr *apiError
	}
	progs := make([]*hir.Program, len(req.Points))
	byKey := make(map[compileKey]compiled)
	for i := range req.Points {
		results[i].Index = i
		p := &req.Points[i]
		var key compileKey
		switch {
		case p.Predict != nil && p.Measure != nil, p.Predict == nil && p.Measure == nil:
			fail(i, errf(http.StatusBadRequest, "decode", "point %d: exactly one of predict or measure must be set", i))
			continue
		case p.Predict != nil:
			if aerr := validatePredict(p.Predict); aerr != nil {
				fail(i, aerr)
				continue
			}
			key = compileKey{src: p.Predict.Source, opts: p.Predict.Options.compilerOptions()}
		default:
			if aerr := validateMeasure(p.Measure); aerr != nil {
				fail(i, aerr)
				continue
			}
			key = compileKey{src: p.Measure.Source}
		}
		cv, ok := byKey[key]
		if !ok {
			prog, err := s.eng.CompileContext(ctx, key.src, key.opts)
			if err != nil {
				cv = compiled{aerr: ctxErr(err, http.StatusBadRequest, "compile")}
			} else {
				cv = compiled{prog: prog}
			}
			byKey[key] = cv
		}
		if cv.aerr != nil {
			fail(i, cv.aerr)
			continue
		}
		progs[i] = cv.prog
	}

	// Cost admission: the per-request ceiling applies per point (an
	// over-budget point fails alone), then the batch's aggregate is
	// reserved against the in-flight budget in a single admission — one
	// decision for the whole table, with the aggregate estimate on a
	// rejection.
	release := func() {}
	if s.cfg.MaxCostUnits > 0 || s.cfg.MaxInflightCostUnits > 0 {
		var aggregate float64
		for i, prog := range progs {
			if prog == nil {
				continue
			}
			price := s.priceOf(prog)
			if aerr := s.ceiling(price); aerr != nil {
				fail(i, aerr)
				progs[i] = nil
				continue
			}
			aggregate += price.CostUnits
		}
		var aerr *apiError
		if release, aerr = s.admitUnits("batch", aggregate); aerr != nil {
			return nil, aerr
		}
	}
	defer release()

	// Fan the surviving points onto the sweep worker pool: per-point
	// panic isolation, transient retry with backoff, and a "sweep.point"
	// span per point under the request root when traced — the same
	// machinery a Table 2 sweep runs on. The closure never returns an
	// error; failures become per-point error objects.
	idx := make([]int, 0, len(req.Points))
	for i := range results {
		if results[i].Error == nil {
			idx = append(idx, i)
		}
	}
	_, err := sweep.MapCtx(ctx, s.eng, len(idx), func(k int) (struct{}, error) {
		i := idx[k]
		p := &req.Points[i]
		var aerr *apiError
		if p.Predict != nil {
			results[i].Predict, aerr = s.evalPredict(ctx, p.Predict)
		} else {
			results[i].Measure, aerr = s.evalMeasure(ctx, p.Measure, progs[i])
		}
		if aerr != nil {
			results[i].Predict, results[i].Measure = nil, nil
			fail(i, aerr)
		}
		return struct{}{}, nil
	})
	if err != nil {
		// The closure cannot fail, so err is batch-level: cancellation
		// left points undispatched, or injected sweep-site chaos outran
		// its retries. Mark the points that never produced an outcome and
		// keep every finished one.
		for _, i := range idx {
			if results[i].Error == nil && results[i].Predict == nil && results[i].Measure == nil {
				fail(i, ctxErr(err, http.StatusServiceUnavailable, "transient"))
			}
		}
	}

	resp := &BatchResponse{Results: results}
	for i := range results {
		if results[i].Error != nil {
			resp.Failed++
		} else {
			resp.OK++
		}
	}
	s.met.batchPointsOK.Add(int64(resp.OK))
	s.met.batchPointsFailed.Add(int64(resp.Failed))
	resp.ElapsedUS = float64(time.Since(start)) / float64(time.Microsecond)
	return resp, nil
}
