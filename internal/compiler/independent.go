package compiler

import (
	"hpfperf/internal/analysis/dep"
	"hpfperf/internal/ast"
	"hpfperf/internal/sem"
)

// This file implements the compiler half of the INDEPENDENT directive:
// a proven annotation on a DO loop re-lowers the loop as a forall nest,
// so sequentialization assigns it an owner-computes partition (Par) and
// the serialization penalty — full trip counts on every processor plus
// per-element FetchElem / hoisted AllGather traffic — disappears from
// the predicted profile. A proven annotation on a FORALL additionally
// lets the nest skip the evaluate-then-assign double buffer. Refuted or
// unprovable annotations are ignored here (the loop keeps its exact
// sequential semantics); the analysis layer reports them (HPF05xx).

// depConsts projects the integer named constants for subscript
// normalization.
func (lw *lowerer) depConsts() map[string]int64 {
	consts := make(map[string]int64, len(lw.info.Consts))
	for n, v := range lw.info.Consts {
		if v.Type == ast.TInteger {
			consts[n] = v.I
		}
	}
	return consts
}

// depArrays lists the declared array names (so bare-identifier writes in
// a loop body are classified as whole-array assignments).
func (lw *lowerer) depArrays() map[string]bool {
	arrays := make(map[string]bool)
	for n, s := range lw.info.Symbols {
		if s.Kind == sem.SymArray {
			arrays[n] = true
		}
	}
	return arrays
}

// verifyIndependentDo runs the dependence verifier over an annotated DO.
func (lw *lowerer) verifyIndependentDo(x *ast.DoStmt) dep.Verdict {
	consts := lw.depConsts()
	idxs := []dep.Index{dep.IndexFromRange(x.Var, x.From, x.To, x.Step, consts)}
	v, _ := dep.VerifyLoop(idxs, x.Body, consts, lw.depArrays())
	return v
}

// verifyIndependentForall runs the dependence verifier over an annotated
// FORALL.
func (lw *lowerer) verifyIndependentForall(x *ast.ForallStmt) dep.Verdict {
	consts := lw.depConsts()
	idxs := make([]dep.Index, len(x.Indices))
	for i, ix := range x.Indices {
		idxs[i] = dep.IndexFromRange(ix.Name, ix.Lo, ix.Hi, ix.Stride, consts)
	}
	v, _ := dep.VerifyLoop(idxs, x.Body, consts, lw.depArrays())
	return v
}

// forallFromDo rewrites a proven-independent DO as a single-index FORALL
// construct over the same body (legal exactly because independence makes
// iteration order — and evaluate/assign interleaving — unobservable).
// Expression nodes are shared with the original AST so the semantic
// type/shape tables keep applying.
func forallFromDo(x *ast.DoStmt) *ast.ForallStmt {
	return &ast.ForallStmt{
		Indices:     []ast.ForallIndex{{Name: x.Var, Lo: x.From, Hi: x.To, Stride: x.Step}},
		Body:        x.Body,
		Construct:   true,
		Independent: true,
		ForPos:      x.DoPos,
	}
}

// forallConvertible pre-checks the structural subset the forall lowering
// accepts, so an honored DO does not fail compilation on a shape the
// nest builder rejects (element assignments only, no sections).
func forallConvertible(body []ast.Stmt) bool {
	for _, s := range body {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return false
		}
		lhs, ok := as.Lhs.(*ast.CallOrIndex)
		if !ok || lhs.Resolved != ast.RefArray {
			return false
		}
		for _, a := range lhs.Args {
			if _, isSec := a.(*ast.Section); isSec {
				return false
			}
		}
	}
	return true
}
