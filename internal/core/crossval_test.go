package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"hpfperf/internal/compiler"
	"hpfperf/internal/exec"
	"hpfperf/internal/hir"
	"hpfperf/internal/ipsc"
)

// TestAbstractEvalMatchesVM cross-validates the two independent
// evaluators: the interpreter's critical-variable tracer (abstract
// evaluation over the HIR) must compute the same scalar values as the
// executing VM for randomly generated straight-line integer programs.
// Divergence would mean predicted trip counts silently drift from real
// execution.
func TestAbstractEvalMatchesVM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		src, expectVar := randomScalarProgram(rng, trial)
		prog, err := compiler.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}

		// VM execution result.
		cfg := ipsc.DefaultConfig(1)
		cfg.PerturbAmp = 0
		cfg.TimerResUS = 0
		m, _ := ipsc.New(cfg)
		res, err := exec.Run(prog, m, exec.Options{})
		if err != nil {
			t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
		}
		if len(res.Printed) != 1 {
			t.Fatalf("trial %d: printed %v", trial, res.Printed)
		}
		vmVal, err := strconv.ParseInt(strings.TrimSpace(res.Printed[0]), 10, 64)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, res.Printed[0], err)
		}

		// Abstract evaluation, as the interpretation engine traces it.
		env := make(absEnv)
		for _, s := range prog.Body {
			as, ok := s.(*hir.Assign)
			if !ok {
				continue
			}
			lv, ok := as.Lhs.(*hir.ScalarLV)
			if !ok {
				continue
			}
			if v, ok2 := evalScalar(as.Rhs, env); ok2 {
				env[lv.Name] = v
			} else {
				delete(env, lv.Name)
			}
		}
		got, ok := env[expectVar]
		if !ok {
			t.Fatalf("trial %d: abstract evaluation failed to resolve %s\n%s", trial, expectVar, src)
		}
		if got.AsInt() != vmVal {
			t.Fatalf("trial %d: abstract %d != VM %d\n%s", trial, got.AsInt(), vmVal, src)
		}
	}
}

// randomScalarProgram builds a straight-line integer program:
//
//	K0 = <const expr>
//	K1 = <expr over constants and earlier Ks>
//	...
//	PRINT *, K<last>
func randomScalarProgram(rng *rand.Rand, trial int) (src, lastVar string) {
	var b strings.Builder
	nv := 3 + rng.Intn(5)
	fmt.Fprintf(&b, "PROGRAM rnd%d\n!HPF$ PROCESSORS P(1)\nINTEGER ", trial)
	for i := 0; i < nv; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "K%d", i)
	}
	b.WriteString("\n")
	for i := 0; i < nv; i++ {
		fmt.Fprintf(&b, "K%d = %s\n", i, randomIntExpr(rng, i, 3))
	}
	lastVar = fmt.Sprintf("K%d", nv-1)
	fmt.Fprintf(&b, "PRINT *, %s\nEND\n", lastVar)
	return b.String(), lastVar
}

func randomIntExpr(rng *rand.Rand, avail, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		if avail > 0 && rng.Intn(2) == 0 {
			return fmt.Sprintf("K%d", rng.Intn(avail))
		}
		return strconv.Itoa(rng.Intn(19) - 9)
	}
	a := randomIntExpr(rng, avail, depth-1)
	bx := randomIntExpr(rng, avail, depth-1)
	switch rng.Intn(6) {
	case 0:
		return "(" + a + " + " + bx + ")"
	case 1:
		return "(" + a + " - " + bx + ")"
	case 2:
		return "(" + a + " * " + bx + ")"
	case 3:
		return fmt.Sprintf("MAX(%s, %s)", a, bx)
	case 4:
		return fmt.Sprintf("MIN(%s, %s)", a, bx)
	default:
		return fmt.Sprintf("ABS(%s)", a)
	}
}
