package sem

import (
	"strings"
	"testing"

	"hpfperf/internal/ast"
	"hpfperf/internal/dist"
	"hpfperf/internal/parser"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(prog)
	if err == nil {
		t.Fatal("want semantic error")
	}
	return err
}

const laplaceHeader = `PROGRAM lap
PARAMETER (N = 16)
REAL U(N,N), V(N,N)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ ALIGN V(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
`

func TestSymbolsAndConsts(t *testing.T) {
	info := analyze(t, laplaceHeader+"U(1,1) = 0.0\nEND")
	if v, ok := info.Consts["N"]; !ok || v.I != 16 {
		t.Errorf("N = %v", v)
	}
	u := info.Sym("U")
	if u == nil || u.Kind != SymArray || u.Type != ast.TReal || u.Rank() != 2 {
		t.Fatalf("U symbol = %+v", u)
	}
	if u.Bounds[0] != [2]int{1, 16} {
		t.Errorf("U bounds = %v", u.Bounds)
	}
}

func TestGridResolution(t *testing.T) {
	info := analyze(t, laplaceHeader+"U(1,1) = 0.0\nEND")
	if info.Grid == nil || info.Grid.Size() != 4 || len(info.Grid.Shape) != 2 {
		t.Fatalf("grid = %v", info.Grid)
	}
}

func TestBlockBlockMapping(t *testing.T) {
	info := analyze(t, laplaceHeader+"U(1,1) = 0.0\nEND")
	m := info.ArrayMap("U")
	if m == nil {
		t.Fatal("no map for U")
	}
	if m.Replicated {
		t.Error("U should be distributed")
	}
	if m.Dims[0].Kind != dist.Block || m.Dims[1].Kind != dist.Block {
		t.Errorf("dims = %v,%v", m.Dims[0].Kind, m.Dims[1].Kind)
	}
	if m.Dims[0].ProcDim != 0 || m.Dims[1].ProcDim != 1 {
		t.Errorf("procdims = %d,%d", m.Dims[0].ProcDim, m.Dims[1].ProcDim)
	}
	if m.MaxLocalCount() != 64 {
		t.Errorf("max local = %d, want 64", m.MaxLocalCount())
	}
}

func TestBlockStarMapping(t *testing.T) {
	src := `PROGRAM lap
PARAMETER (N = 16)
REAL U(N,N)
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(N,N)
!HPF$ ALIGN U(I,J) WITH T(I,J)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
U(1,1) = 0.0
END`
	info := analyze(t, src)
	m := info.ArrayMap("U")
	if m.Dims[0].Kind != dist.Block || m.Dims[1].Kind != dist.Collapsed {
		t.Errorf("dims = %v,%v", m.Dims[0].Kind, m.Dims[1].Kind)
	}
	if m.Dims[0].NProc != 4 {
		t.Errorf("nproc = %d", m.Dims[0].NProc)
	}
}

func TestCyclicMapping(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N = 12)
REAL X(N)
!HPF$ PROCESSORS P(3)
!HPF$ DISTRIBUTE X(CYCLIC) ONTO P
X(1) = 0.0
END`
	info := analyze(t, src)
	m := info.ArrayMap("X")
	if m.Dims[0].Kind != dist.Cyclic {
		t.Errorf("kind = %v", m.Dims[0].Kind)
	}
}

func TestDirectArrayDistribute(t *testing.T) {
	src := `PROGRAM c
REAL X(100)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE X(BLOCK) ONTO P
X(1) = 0.0
END`
	info := analyze(t, src)
	m := info.ArrayMap("X")
	if m == nil || m.Dims[0].Kind != dist.Block {
		t.Fatalf("map = %v", m)
	}
	if m.Dims[0].BlockSize() != 25 {
		t.Errorf("block size = %d", m.Dims[0].BlockSize())
	}
}

func TestUnmappedArrayReplicated(t *testing.T) {
	src := `PROGRAM c
REAL X(10), Y(10)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE X(BLOCK) ONTO P
Y(1) = 0.0
END`
	info := analyze(t, src)
	if m := info.ArrayMap("Y"); m == nil || !m.Replicated {
		t.Errorf("Y map = %v", m)
	}
}

func TestAlignToAlignedArrayChain(t *testing.T) {
	src := `PROGRAM c
REAL A(8), B(8)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE T(8)
!HPF$ ALIGN A(I) WITH T(I)
!HPF$ ALIGN B(I) WITH A(I)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
A(1) = 0.0
END`
	info := analyze(t, src)
	bm := info.ArrayMap("B")
	if bm == nil || bm.Replicated || bm.Dims[0].Kind != dist.Block {
		t.Fatalf("B map = %v", bm)
	}
	if !bm.SameMapping(info.ArrayMap("A")) {
		t.Error("B should share A's mapping")
	}
}

func TestAlignOffset(t *testing.T) {
	src := `PROGRAM c
REAL A(8)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE T(0:9)
!HPF$ ALIGN A(I) WITH T(I+1)
!HPF$ DISTRIBUTE T(BLOCK) ONTO P
A(1) = 0.0
END`
	info := analyze(t, src)
	m := info.ArrayMap("A")
	// T owner of g is (g-0)/5; A(i) lives where T(i+1) lives.
	if m.Dims[0].Owner(1) != dist.DimDist.Owner(dist.DimDist{Kind: dist.Block, Lo: 0, Hi: 9, ProcDim: 0, NProc: 2}, 2) {
		t.Error("offset alignment owner mismatch")
	}
	if m.Dims[0].Owner(4) != 1 { // T(5): second half
		t.Errorf("owner(4) = %d, want 1", m.Dims[0].Owner(4))
	}
}

func TestWholeArrayAlign(t *testing.T) {
	src := `PROGRAM c
REAL A(8,8), B(8,8)
!HPF$ PROCESSORS P(2,2)
!HPF$ TEMPLATE T(8,8)
!HPF$ ALIGN A(I,J) WITH T(I,J)
!HPF$ ALIGN B WITH T
!HPF$ DISTRIBUTE T(BLOCK,BLOCK) ONTO P
A(1,1) = 0.0
END`
	info := analyze(t, src)
	if !info.ArrayMap("B").SameMapping(info.ArrayMap("A")) {
		t.Error("whole-array alignment should match identity alignment")
	}
}

func TestTransposedAlign(t *testing.T) {
	src := `PROGRAM c
REAL A(4,8)
!HPF$ PROCESSORS P(2)
!HPF$ TEMPLATE T(8,4)
!HPF$ ALIGN A(I,J) WITH T(J,I)
!HPF$ DISTRIBUTE T(BLOCK,*) ONTO P
A(1,1) = 0.0
END`
	info := analyze(t, src)
	m := info.ArrayMap("A")
	// A's second dim follows T's first (distributed) dim.
	if m.Dims[1].Kind != dist.Block || m.Dims[0].Kind != dist.Collapsed {
		t.Errorf("dims = %v,%v", m.Dims[0].Kind, m.Dims[1].Kind)
	}
}

func TestTypingPromotion(t *testing.T) {
	src := `PROGRAM c
INTEGER I
REAL X
X = I + 1.5
I = 2 * 3
X = X / 2
END`
	info := analyze(t, src)
	for _, s := range info.Prog.Body {
		as := s.(*ast.AssignStmt)
		_ = as
	}
	// Find the first RHS: I + 1.5 must be REAL.
	rhs := info.Prog.Body[0].(*ast.AssignStmt).Rhs
	if tp := info.TypeOf(rhs); tp != ast.TReal {
		t.Errorf("I + 1.5 type = %v, want REAL", tp)
	}
	rhs2 := info.Prog.Body[1].(*ast.AssignStmt).Rhs
	if tp := info.TypeOf(rhs2); tp != ast.TInteger {
		t.Errorf("2*3 type = %v, want INTEGER", tp)
	}
}

func TestImplicitTyping(t *testing.T) {
	info := analyze(t, "PROGRAM c\nK = 1\nX = 2.0\nEND")
	if info.Sym("K").Type != ast.TInteger {
		t.Error("K should be INTEGER")
	}
	if info.Sym("X").Type != ast.TReal {
		t.Error("X should be REAL")
	}
}

func TestImplicitNoneRejectsUndeclared(t *testing.T) {
	err := analyzeErr(t, "PROGRAM c\nIMPLICIT NONE\nK = 1\nEND")
	if !strings.Contains(err.Error(), "not declared") {
		t.Errorf("err = %v", err)
	}
}

func TestArrayShapeOfWholeArray(t *testing.T) {
	info := analyze(t, "PROGRAM c\nREAL A(4,5)\nS = SUM(A)\nEND")
	sum := info.Prog.Body[0].(*ast.AssignStmt).Rhs.(*ast.CallOrIndex)
	if sum.Resolved != ast.RefIntrinsic {
		t.Error("SUM should resolve to intrinsic")
	}
	sh := info.ShapeOf(sum.Args[0])
	if sh.Rank() != 2 || sh.Elems() != 20 {
		t.Errorf("shape = %+v", sh)
	}
	if info.ShapeOf(sum) != nil {
		t.Error("SUM(A) should be scalar")
	}
}

func TestSectionShape(t *testing.T) {
	info := analyze(t, "PROGRAM c\nPARAMETER (N=10)\nREAL A(N), B(N)\nA(2:N-1) = B(2:N-1)\nEND")
	lhs := info.Prog.Body[0].(*ast.AssignStmt).Lhs
	sh := info.ShapeOf(lhs)
	if sh.Rank() != 1 || sh.Elems() != 8 {
		t.Errorf("section shape = %+v", sh)
	}
}

func TestElementRefIsScalar(t *testing.T) {
	info := analyze(t, "PROGRAM c\nREAL A(10)\nX = A(3)\nEND")
	rhs := info.Prog.Body[0].(*ast.AssignStmt).Rhs.(*ast.CallOrIndex)
	if rhs.Resolved != ast.RefArray {
		t.Error("A(3) should resolve to array ref")
	}
	if info.ShapeOf(rhs) != nil {
		t.Error("A(3) should be scalar")
	}
}

func TestCshiftShape(t *testing.T) {
	info := analyze(t, "PROGRAM c\nREAL A(10), B(10)\nB = CSHIFT(A, 1)\nEND")
	rhs := info.Prog.Body[0].(*ast.AssignStmt).Rhs
	if sh := info.ShapeOf(rhs); sh.Rank() != 1 || sh.Elems() != 10 {
		t.Errorf("CSHIFT shape = %+v", sh)
	}
}

func TestRankMismatchError(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL A(10)\nX = A(1,2)\nEND")
}

func TestUnknownFunctionError(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nX = FROBNICATE(1)\nEND")
}

func TestNonConformingAssignment(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL A(10), B(9)\nA = B\nEND")
}

func TestArrayToScalarAssignmentError(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL A(10)\nX = A\nEND")
}

func TestAssignToConstError(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nPARAMETER (N=4)\nN = 5\nEND")
}

func TestLogicalMixError(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nLOGICAL B\nB = 1 + 2\nEND")
}

func TestIfConditionMustBeLogical(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nIF (1 + 2) THEN\nX = 1\nEND IF\nEND")
}

func TestForallMaskMustBeLogical(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL A(10)\nFORALL (I=1:10, A(I)) A(I) = 0.0\nEND")
}

func TestForallBodyOnlyAssignments(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL A(10)\nFORALL (I=1:10)\nPRINT *, A(I)\nEND FORALL\nEND")
}

func TestDistributeGridRankMismatch(t *testing.T) {
	err := analyzeErr(t, `PROGRAM c
REAL A(8,8)
!HPF$ PROCESSORS P(2,2)
!HPF$ DISTRIBUTE A(BLOCK,*) ONTO P
A(1,1) = 0.0
END`)
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("err = %v", err)
	}
}

func TestAlignCycleError(t *testing.T) {
	analyzeErr(t, `PROGRAM c
REAL A(8), B(8)
!HPF$ PROCESSORS P(2)
!HPF$ ALIGN A(I) WITH B(I)
!HPF$ ALIGN B(I) WITH A(I)
A(1) = 0.0
END`)
}

func TestDoVarMustBeIntegerScalar(t *testing.T) {
	analyzeErr(t, "PROGRAM c\nREAL X\nDO X = 1, 10\nEND DO\nEND")
}

func TestConstantFolding(t *testing.T) {
	info := analyze(t, "PROGRAM c\nPARAMETER (N=4, M=N*2+1, P=2**3)\nX = 1\nEND")
	if info.Consts["M"].I != 9 {
		t.Errorf("M = %v", info.Consts["M"])
	}
	if info.Consts["P"].I != 8 {
		t.Errorf("P = %v", info.Consts["P"])
	}
}

func TestConstIntrinsics(t *testing.T) {
	info := analyze(t, "PROGRAM c\nPARAMETER (A=MAX(3,7), B=MOD(10,3), C=MIN(2,5))\nX = 1\nEND")
	if info.Consts["A"].I != 7 || info.Consts["B"].I != 1 || info.Consts["C"].I != 2 {
		t.Errorf("consts = %v %v %v", info.Consts["A"], info.Consts["B"], info.Consts["C"])
	}
}

func TestRealParameter(t *testing.T) {
	info := analyze(t, "PROGRAM c\nPARAMETER (PI=3.14159)\nX = PI\nEND")
	if v := info.Consts["PI"]; v.Type != ast.TReal || v.R < 3.14 {
		t.Errorf("PI = %v", v)
	}
}

func TestDefaultGridWithoutProcessors(t *testing.T) {
	info := analyze(t, "PROGRAM c\nX = 1\nEND")
	if info.Grid == nil || info.Grid.Size() != 1 {
		t.Errorf("default grid = %v", info.Grid)
	}
}

func TestMaskedForallAnalyzes(t *testing.T) {
	src := `PROGRAM c
PARAMETER (N=8)
REAL X(N), V(N)
!HPF$ PROCESSORS P(2)
!HPF$ DISTRIBUTE X(BLOCK) ONTO P
!HPF$ ALIGN V(I) WITH X(I)
FORALL (K=2:N-1, V(K) .GT. 0.0) X(K) = X(K-1) + X(K+1)
END`
	info := analyze(t, src)
	vm := info.ArrayMap("V")
	if vm == nil || vm.Replicated {
		t.Errorf("V map = %v", vm)
	}
}
