// Command hpfgen generates seeded benchmark-kernel corpora and runs the
// differential prediction↔execution validation harness over them.
//
// Usage:
//
//	hpfgen [flags]
//
//	-n COUNT          number of programs to generate (default 1)
//	-seed SEED        corpus seed (default 1); same seed, same corpus
//	-kernel FAMILY    restrict to one family (stencil1d, stencil2d,
//	                  relax, lu, fft, nbody); default round-robins all
//	-out DIR          write each program to DIR/<name>.hpf
//	-predict          print the prediction profile after each program
//	-validate         run the differential validation harness
//	-json             emit the validation report as JSON (with -validate)
//	-report FILE      also write the JSON report to FILE
//	-checkpoint FILE  durable progress for -validate: a killed run
//	                  resumes from FILE with byte-identical results
//
// Without -out or -validate the generated source is printed to stdout.
//
// Exit status: 0 success (all programs valid), 1 validation failures,
// 2 usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hpfperf"
	"hpfperf/internal/corpus"
	"hpfperf/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hpfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 1, "number of programs to generate")
	seed := fs.Int64("seed", 1, "corpus seed")
	kernel := fs.String("kernel", "", "restrict to one kernel family")
	outDir := fs.String("out", "", "write programs to this directory")
	predict := fs.Bool("predict", false, "print the prediction profile after each program")
	validate := fs.Bool("validate", false, "run the differential validation harness")
	jsonOut := fs.Bool("json", false, "emit the validation report as JSON")
	reportPath := fs.String("report", "", "also write the JSON report to this file")
	ckptPath := fs.String("checkpoint", "", "checkpoint file for resumable validation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "hpfgen: -n must be positive")
		return 2
	}

	var progs []corpus.Program
	if *kernel != "" {
		fam, err := corpus.FamilyByName(*kernel)
		if err != nil {
			fmt.Fprintln(stderr, "hpfgen:", err)
			return 2
		}
		progs = corpus.GenerateFamily(*seed, fam, *n)
	} else {
		progs = corpus.Generate(*seed, *n)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "hpfgen:", err)
			return 2
		}
		for _, p := range progs {
			path := filepath.Join(*outDir, p.Name+".hpf")
			if err := os.WriteFile(path, []byte(p.Source), 0o644); err != nil {
				fmt.Fprintln(stderr, "hpfgen:", err)
				return 2
			}
		}
		fmt.Fprintf(stdout, "wrote %d programs to %s\n", len(progs), *outDir)
	}

	if *validate {
		opts := corpus.Options{}
		if *ckptPath != "" {
			opts.Checkpoint = &sweep.Checkpoint{
				Path: *ckptPath,
				Key:  fmt.Sprintf("hpfgen-seed%d-n%d-kernel%s", *seed, *n, *kernel),
			}
		}
		rep, err := corpus.Validate(context.Background(), progs, opts)
		if err != nil {
			fmt.Fprintln(stderr, "hpfgen:", err)
			return 2
		}
		if *reportPath != "" {
			if err := os.WriteFile(*reportPath, rep.JSON(), 0o644); err != nil {
				fmt.Fprintln(stderr, "hpfgen:", err)
				return 2
			}
		}
		if *jsonOut {
			stdout.Write(rep.JSON())
		} else {
			fmt.Fprint(stdout, rep.Text())
		}
		if !rep.Pass() {
			return 1
		}
		return 0
	}

	if *outDir == "" {
		for i, p := range progs {
			if len(progs) > 1 {
				if i > 0 {
					fmt.Fprintln(stdout)
				}
				fmt.Fprintf(stdout, "! === %s (seed %d) ===\n", p.Name, *seed)
			}
			fmt.Fprint(stdout, p.Source)
			if *predict {
				if rc := printProfile(stdout, stderr, p); rc != 0 {
					return rc
				}
			}
		}
	} else if *predict {
		for _, p := range progs {
			if rc := printProfile(stdout, stderr, p); rc != 0 {
				return rc
			}
		}
	}
	return 0
}

// printProfile predicts one generated program (with its template's mask
// density) and prints the generic performance profile.
func printProfile(stdout, stderr *os.File, p corpus.Program) int {
	prog, err := hpfperf.Compile(p.Source)
	if err != nil {
		fmt.Fprintf(stderr, "hpfgen: %s: %v\n", p.Name, err)
		return 2
	}
	pred, err := hpfperf.Predict(prog, &hpfperf.PredictOptions{MaskDensity: p.MaskDensity()})
	if err != nil {
		fmt.Fprintf(stderr, "hpfgen: %s: %v\n", p.Name, err)
		return 2
	}
	fmt.Fprint(stdout, pred.Profile())
	return 0
}
